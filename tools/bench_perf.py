#!/usr/bin/env python
"""Perf-regression benchmark for the vectorized fast paths
(``make bench-perf``).

Two suites, each run twice -- once with every fast path enabled (the
default configuration) and once with the scalar reference paths -- on
shared pre-warmed trace caches:

* the **core** suite: the full 8-workload set under three paradigms on
  the default single-switch topology (``--gpus``/``--iterations`` and
  the ``--topology``/``--fanout``/``--oversubscription``/``--planes``
  flags reshape it);
* the **collectives** suite: the five collective workloads under three
  paradigms on a 16-GPU fat tree (fanout 4) -- the hop-overlapping
  shape the event-ordered batch transport keeps on the fast path.

A third suite, **trace_stream**, measures memory instead of time: two
subprocesses generate the same ~13M-op CT trace through the trace
cache, one spilling column chunks as they are produced (streaming, the
default) and one materializing the whole trace first, and each reports
its peak RSS *above its own post-import baseline* (import residency is
page-cache-state noise).  The gate requires the streamed delta to be
at most ``--max-stream-rss-ratio`` (default 0.5) of the whole-trace
delta.

``BENCH_core.json`` records, per suite: per-run wall clock and
per-stage breakdowns (fast and scalar), the end-to-end speedup
``scalar_s / fast_s``, and a byte-identity verdict -- every run's
``RunMetrics`` fingerprint must match between modes, else the exit
status is non-zero.

Gates (all must pass for exit 0):

* absolute speedup floors: core >= ``--min-speedup`` (default 2.5x),
  collectives >= ``--min-collective-speedup`` (default 2.0x);
* ``--check BASELINE`` additionally compares against a committed
  ``BENCH_core.json`` and fails if a measured speedup drops below
  ``--threshold`` (default 0.75) times the baseline's.  The gate is a
  *ratio of ratios*, so it is machine-independent: absolute seconds
  differ across CI runners, but "how much faster is fast than scalar
  on the same box" should not.

Usage::

    python tools/bench_perf.py [--out BENCH_core.json]
                               [--check BENCH_core.json] [--threshold 0.75]
                               [--min-speedup 2.5] [--min-collective-speedup 2.0]
                               [--skip-collectives]
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
import time
from pathlib import Path

_SRC = Path(__file__).resolve().parent.parent / "src"
sys.path.insert(0, str(_SRC))

from repro.perf.harness import profile_run  # noqa: E402
from repro.run import RunSpec, TraceCache  # noqa: E402

WORKLOADS = ("als", "ct", "diffusion", "eqwp", "hit", "jacobi", "pagerank", "sssp")
COLLECTIVES = ("allreduce_ring", "allreduce_tree", "allgather", "alltoall", "pipeline")
PARADIGMS = ("p2p", "dma", "finepack")

#: The collectives-at-scale shape: hop-overlapping fat tree.
COLLECTIVE_SUITE = {
    "n_gpus": 16,
    "iterations": 2,
    "topology": "fat_tree",
    "topology_params": {"fanout": 4},
}


def _topology_params(args) -> dict:
    params = {}
    if args.fanout is not None:
        params["fanout"] = args.fanout
    if args.oversubscription is not None:
        params["oversubscription"] = args.oversubscription
    if args.planes is not None:
        params["planes"] = args.planes
    return params


def build_core_suite(args) -> list[RunSpec]:
    params = _topology_params(args)
    return [
        RunSpec(
            workload=w,
            paradigm=p,
            n_gpus=args.gpus,
            iterations=args.iterations,
            topology=args.topology,
            topology_params=params,
        )
        for w in WORKLOADS
        for p in PARADIGMS
    ]


def build_collective_suite() -> list[RunSpec]:
    shape = COLLECTIVE_SUITE
    return [
        RunSpec(
            workload=w,
            paradigm=p,
            n_gpus=shape["n_gpus"],
            iterations=shape["iterations"],
            topology=shape["topology"],
            topology_params=shape["topology_params"],
        )
        for w in COLLECTIVES
        for p in PARADIGMS
    ]


def run_suite(specs, cache, scalar: bool) -> tuple[float, list[dict]]:
    start = time.perf_counter()
    rows = []
    for spec in specs:
        result = profile_run(spec, scalar=scalar, trace_cache=cache)
        rows.append(
            {
                "workload": spec.workload,
                "paradigm": spec.paradigm,
                "wall_ms": result.wall_ns / 1e6,
                "stages": result.stages,
                "fingerprint": result.fingerprint,
            }
        )
    return time.perf_counter() - start, rows


def stage_totals(rows) -> dict[str, float]:
    totals: dict[str, float] = {}
    for row in rows:
        for stage in row["stages"]:
            totals[stage["stage"]] = (
                totals.get(stage["stage"], 0.0) + stage["ns"] / 1e6
            )
    return {k: round(v, 2) for k, v in sorted(totals.items())}


def bench(name: str, specs) -> dict:
    """Warm a cache, run fast + scalar passes, return the report block."""
    cache = TraceCache()
    print(f"[{name}] warming trace cache ({len(specs)} runs) ...", flush=True)
    for spec in specs:
        cache.get_or_generate(spec)

    print(f"[{name}] fast pass ...", flush=True)
    fast_s, fast_rows = run_suite(specs, cache, scalar=False)
    print(f"  {fast_s:.2f} s")
    print(f"[{name}] scalar pass ...", flush=True)
    scalar_s, scalar_rows = run_suite(specs, cache, scalar=True)
    print(f"  {scalar_s:.2f} s")

    mismatches = [
        (f["workload"], f["paradigm"])
        for f, s in zip(fast_rows, scalar_rows)
        if f["fingerprint"] != s["fingerprint"]
    ]
    speedup = scalar_s / fast_s if fast_s else float("inf")
    return {
        "fast_s": round(fast_s, 3),
        "scalar_s": round(scalar_s, 3),
        "speedup": round(speedup, 3),
        "byte_identical": not mismatches,
        "mismatches": mismatches,
        "stage_totals_ms": {
            "fast": stage_totals(fast_rows),
            "scalar": stage_totals(scalar_rows),
        },
        "runs": {"fast": fast_rows, "scalar": scalar_rows},
    }


#: Self-reporting child for the trace_stream suite: generates one
#: sizeable CT trace through the cache in the requested mode and prints
#: its own peak RSS (ru_maxrss is per-process and monotonic, so each
#: mode needs a fresh process).  The interpreter+numpy import footprint
#: is recorded as a baseline and subtracted by the parent: import-time
#: residency varies with system page-cache state (a warm cache
#: fault-arounds whole .so files in), and only the *generation delta*
#: above it is the quantity under test.
_STREAM_PROBE = """
import json, resource, sys, tempfile, time
from repro.run import RunSpec, TraceCache

stream = sys.argv[1] == "stream"
baseline_kb = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
spec = RunSpec(
    workload="ct", paradigm="finepack", n_gpus=2, iterations=16,
    workload_params={
        "volume_voxels": 500_000_000,
        "total_corrections": 1_600_000,
        "cluster": 1,
    },
)
t0 = time.perf_counter()
with tempfile.TemporaryDirectory() as root:
    cache = TraceCache(root, stream=stream, chunk_ops=262_144)
    trace = cache.get_or_generate(spec)
    ops = sum(p.stores.count for it in trace.iterations for p in it.phases)
print(json.dumps({
    "ops": ops,
    "baseline_kb": baseline_kb,
    "peak_kb": resource.getrusage(resource.RUSAGE_SELF).ru_maxrss,
    "wall_s": round(time.perf_counter() - t0, 3),
}))
"""


def bench_trace_stream() -> dict:
    """Peak-RSS comparison: streamed vs whole-trace cache generation."""

    def probe(mode: str) -> dict:
        env = dict(os.environ)
        env["PYTHONPATH"] = str(_SRC)
        out = subprocess.run(
            [sys.executable, "-c", _STREAM_PROBE, mode],
            capture_output=True,
            text=True,
            env=env,
            check=True,
        )
        row = json.loads(out.stdout.strip().splitlines()[-1])
        row["delta_kb"] = row["peak_kb"] - row["baseline_kb"]
        return row

    # Whole-trace mode runs first: its large allocation can perturb the
    # *later* child's import baseline only in the direction that shrinks
    # the streamed delta, so ordering keeps the gate deterministic.
    print("[trace_stream] whole-trace generation ...", flush=True)
    whole = probe("whole")
    print(f"  +{whole['delta_kb'] / 1024:.0f} MiB over import baseline")
    print("[trace_stream] streamed generation ...", flush=True)
    streamed = probe("stream")
    print(f"  +{streamed['delta_kb'] / 1024:.0f} MiB over import baseline")
    return {
        "ops": streamed["ops"],
        "streamed_peak_kb": streamed["peak_kb"],
        "streamed_delta_kb": streamed["delta_kb"],
        "whole_peak_kb": whole["peak_kb"],
        "whole_delta_kb": whole["delta_kb"],
        "rss_ratio": round(
            streamed["delta_kb"] / max(1, whole["delta_kb"]), 3
        ),
        "streamed_s": streamed["wall_s"],
        "whole_s": whole["wall_s"],
        "same_ops": streamed["ops"] == whole["ops"],
    }


def gate_trace_stream(block: dict, max_ratio: float) -> bool:
    """``True`` means the memory gate failed."""
    failed = False
    if not block["same_ops"]:
        print("FAIL [trace_stream]: streamed and whole traces differ in ops")
        failed = True
    if block["rss_ratio"] > max_ratio:
        print(
            f"FAIL [trace_stream]: streamed generation's peak RSS over "
            f"the import baseline is {block['rss_ratio']:.2f}x the "
            f"whole-trace mode's (gate: <= {max_ratio:.2f}x)"
        )
        failed = True
    return failed


def gate(name: str, block: dict, floor: float, baseline_speedup, threshold) -> bool:
    """Print verdicts for one suite; ``True`` means failed."""
    failed = False
    if block["mismatches"]:
        print(
            f"FAIL [{name}]: {len(block['mismatches'])} run(s) not "
            f"byte-identical: {block['mismatches']}"
        )
        failed = True
    if block["speedup"] < floor:
        print(
            f"FAIL [{name}]: speedup {block['speedup']:.2f}x below the "
            f"absolute floor {floor:.2f}x"
        )
        failed = True
    if baseline_speedup is not None:
        rel_floor = threshold * baseline_speedup
        print(
            f"[{name}] baseline speedup {baseline_speedup:.2f}x; "
            f"gate: >= {rel_floor:.2f}x"
        )
        if block["speedup"] < rel_floor:
            print(
                f"FAIL [{name}]: speedup {block['speedup']:.2f}x regressed "
                f"below {threshold} x baseline ({rel_floor:.2f}x)"
            )
            failed = True
    return failed


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--out", default="BENCH_core.json")
    ap.add_argument(
        "--check",
        default=None,
        metavar="BASELINE",
        help="fail if a speedup < threshold * the baseline's speedup",
    )
    ap.add_argument("--threshold", type=float, default=0.75)
    ap.add_argument(
        "--min-speedup",
        type=float,
        default=2.5,
        help="absolute fast-over-scalar floor for the core suite",
    )
    ap.add_argument(
        "--min-collective-speedup",
        type=float,
        default=2.0,
        help="absolute fast-over-scalar floor for the collectives suite",
    )
    ap.add_argument(
        "--skip-collectives",
        action="store_true",
        help="run only the core suite (quick local iteration)",
    )
    ap.add_argument(
        "--skip-trace-stream",
        action="store_true",
        help="skip the streamed-generation peak-RSS suite",
    )
    ap.add_argument(
        "--max-stream-rss-ratio",
        type=float,
        default=0.5,
        help="memory gate: streamed generation's peak RSS must be at "
        "most this fraction of whole-trace generation's (default 0.5, "
        "i.e. a >=2x reduction)",
    )
    ap.add_argument("--gpus", type=int, default=4, help="core-suite GPU count")
    ap.add_argument("--iterations", type=int, default=3)
    ap.add_argument(
        "--topology",
        default=None,
        help="core-suite topology registry kind (default: single_switch)",
    )
    ap.add_argument("--fanout", type=int, default=None)
    ap.add_argument("--oversubscription", type=float, default=None)
    ap.add_argument("--planes", type=int, default=None)
    args = ap.parse_args(argv)

    if args.topology is None and _topology_params(args):
        ap.error("--fanout/--oversubscription/--planes require --topology")

    # Read the baseline up front: --check and --out may name the same
    # committed file (the refresh-in-place workflow).
    baseline = None
    if args.check:
        baseline = json.loads(Path(args.check).read_text())

    core = bench("core", build_core_suite(args))
    report = {
        "suite": {
            "workloads": list(WORKLOADS),
            "paradigms": list(PARADIGMS),
            "n_gpus": args.gpus,
            "iterations": args.iterations,
            "topology": args.topology,
            "topology_params": _topology_params(args),
        },
        **{k: v for k, v in core.items() if k != "mismatches"},
    }

    collectives = None
    if not args.skip_collectives:
        collectives = bench("collectives", build_collective_suite())
        report["collectives"] = {
            "suite": {
                "workloads": list(COLLECTIVES),
                "paradigms": list(PARADIGMS),
                **COLLECTIVE_SUITE,
            },
            **{k: v for k, v in collectives.items() if k != "mismatches"},
        }

    trace_stream = None
    if not args.skip_trace_stream:
        trace_stream = bench_trace_stream()
        report["trace_stream"] = trace_stream

    Path(args.out).write_text(json.dumps(report, indent=2) + "\n")
    line = f"wrote {args.out}: core speedup {core['speedup']:.2f}x"
    if collectives is not None:
        line += f", collectives speedup {collectives['speedup']:.2f}x"
    if trace_stream is not None:
        line += f", stream RSS ratio {trace_stream['rss_ratio']:.2f}x"
    print(line)

    failed = gate(
        "core",
        core,
        args.min_speedup,
        baseline["speedup"] if baseline is not None else None,
        args.threshold,
    )
    if collectives is not None:
        base_coll = (
            baseline.get("collectives", {}).get("speedup")
            if baseline is not None
            else None
        )
        failed |= gate(
            "collectives",
            collectives,
            args.min_collective_speedup,
            base_coll,
            args.threshold,
        )
    if trace_stream is not None:
        failed |= gate_trace_stream(trace_stream, args.max_stream_rss_ratio)
    return 1 if failed else 0


if __name__ == "__main__":
    raise SystemExit(main())
