#!/usr/bin/env python
"""Perf-regression benchmark for the vectorized fast paths
(``make bench-perf``).

Runs the full 8-workload suite under three paradigms twice -- once with
every fast path enabled (the default configuration) and once with the
scalar reference paths -- on a shared pre-warmed trace cache, and
writes ``BENCH_core.json`` with:

* per-run wall clock and per-stage breakdowns (fast and scalar);
* the end-to-end speedup ``scalar_s / fast_s``;
* a byte-identity verdict: every run's ``RunMetrics`` fingerprint must
  match between modes, else the exit status is non-zero.

``--check BASELINE`` compares against a committed ``BENCH_core.json``
and fails if the measured speedup drops below ``--threshold`` (default
0.75) times the baseline speedup.  The gate is a *ratio of ratios*, so
it is machine-independent: absolute seconds differ across CI runners,
but "how much faster is fast than scalar on the same box" should not.

Usage::

    python tools/bench_perf.py [--out BENCH_core.json]
                               [--check BENCH_core.json] [--threshold 0.75]
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.perf.harness import profile_run  # noqa: E402
from repro.run import RunSpec, TraceCache  # noqa: E402

WORKLOADS = ("als", "ct", "diffusion", "eqwp", "hit", "jacobi", "pagerank", "sssp")
PARADIGMS = ("p2p", "dma", "finepack")


def build_suite() -> list[RunSpec]:
    return [
        RunSpec(workload=w, paradigm=p, n_gpus=4, iterations=3)
        for w in WORKLOADS
        for p in PARADIGMS
    ]


def run_suite(specs, cache, scalar: bool) -> tuple[float, list[dict]]:
    start = time.perf_counter()
    rows = []
    for spec in specs:
        result = profile_run(spec, scalar=scalar, trace_cache=cache)
        rows.append(
            {
                "workload": spec.workload,
                "paradigm": spec.paradigm,
                "wall_ms": result.wall_ns / 1e6,
                "stages": result.stages,
                "fingerprint": result.fingerprint,
            }
        )
    return time.perf_counter() - start, rows


def stage_totals(rows) -> dict[str, float]:
    totals: dict[str, float] = {}
    for row in rows:
        for stage in row["stages"]:
            totals[stage["stage"]] = (
                totals.get(stage["stage"], 0.0) + stage["ns"] / 1e6
            )
    return {k: round(v, 2) for k, v in sorted(totals.items())}


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--out", default="BENCH_core.json")
    ap.add_argument(
        "--check",
        default=None,
        metavar="BASELINE",
        help="fail if speedup < threshold * baseline speedup",
    )
    ap.add_argument("--threshold", type=float, default=0.75)
    args = ap.parse_args(argv)

    # Read the baseline up front: --check and --out may name the same
    # committed file (the refresh-in-place workflow).
    baseline = None
    if args.check:
        baseline = json.loads(Path(args.check).read_text())

    specs = build_suite()
    cache = TraceCache()
    print(f"warming trace cache ({len(specs)} runs) ...", flush=True)
    for spec in specs:
        cache.get_or_generate(spec)

    print("fast pass ...", flush=True)
    fast_s, fast_rows = run_suite(specs, cache, scalar=False)
    print(f"  {fast_s:.2f} s")
    print("scalar pass ...", flush=True)
    scalar_s, scalar_rows = run_suite(specs, cache, scalar=True)
    print(f"  {scalar_s:.2f} s")

    mismatches = [
        (f["workload"], f["paradigm"])
        for f, s in zip(fast_rows, scalar_rows)
        if f["fingerprint"] != s["fingerprint"]
    ]
    speedup = scalar_s / fast_s if fast_s else float("inf")
    report = {
        "suite": {
            "workloads": list(WORKLOADS),
            "paradigms": list(PARADIGMS),
            "n_gpus": 4,
            "iterations": 3,
        },
        "fast_s": round(fast_s, 3),
        "scalar_s": round(scalar_s, 3),
        "speedup": round(speedup, 3),
        "byte_identical": not mismatches,
        "stage_totals_ms": {
            "fast": stage_totals(fast_rows),
            "scalar": stage_totals(scalar_rows),
        },
        "runs": {"fast": fast_rows, "scalar": scalar_rows},
    }
    Path(args.out).write_text(json.dumps(report, indent=2) + "\n")
    print(
        f"wrote {args.out}: speedup {speedup:.2f}x "
        f"({scalar_s:.2f} s scalar / {fast_s:.2f} s fast)"
    )

    failed = False
    if mismatches:
        print(f"FAIL: {len(mismatches)} run(s) not byte-identical: {mismatches}")
        failed = True
    if baseline is not None:
        floor = args.threshold * baseline["speedup"]
        print(
            f"baseline speedup {baseline['speedup']:.2f}x; "
            f"gate: >= {floor:.2f}x"
        )
        if speedup < floor:
            print(
                f"FAIL: speedup {speedup:.2f}x regressed below "
                f"{args.threshold} x baseline ({floor:.2f}x)"
            )
            failed = True
    return 1 if failed else 0


if __name__ == "__main__":
    raise SystemExit(main())
