#!/usr/bin/env python
"""Calibration harness for the analytical fidelity tier (``make calibrate``).

Cross-validates :func:`repro.analytical.predict_metrics` against the
discrete-event simulator over the calibration grid -- the 8-workload
core suite on the default 4-GPU single switch plus the 5 collectives
on an 8-GPU fat tree, each under p2p, dma and finepack -- and records
a per-metric relative-error table into ``BENCH_core.json`` (under the
``"analytical"`` key, next to the fast-path perf suites).

Two gates (both must pass for exit 0):

* **error budget** -- the median relative error of the analytical
  wire/payload/goodput predictions across the grid must be at most
  ``--budget`` (default 0.10).  Byte errors are deterministic: the
  same grid produces the same table on every machine.
* **sweep speedup** -- a design-space sweep of >= 500 specs (the
  calibration cells fanned across PCIe generations, sub-header sizes,
  queue capacities and barrier costs) must run at least
  ``--min-sweep-speedup`` (default 50) times faster analytically than
  the DES would take.  The analytical side is *measured* wall clock
  (traces pre-generated, exactly like a warm-cache DES sweep); the DES
  side is *extrapolated* -- each sweep spec is priced at its
  (workload, paradigm) calibration cell's measured DES replay time,
  since gen/sub-header/barrier variations do not change the event
  count materially.  The report labels the DES figure as an
  extrapolation; per-cell measured DES/analytical ratios are also
  recorded.

Usage::

    python tools/calibrate_analytical.py [--out BENCH_core.json]
        [--budget 0.10] [--min-sweep-speedup 50] [--skip-sweep]
"""

from __future__ import annotations

import argparse
import json
import statistics
import sys
import time
from pathlib import Path

_SRC = Path(__file__).resolve().parent.parent / "src"
sys.path.insert(0, str(_SRC))

from repro.interconnect.pcie import GENERATIONS  # noqa: E402
from repro.core.config import FinePackConfig  # noqa: E402
from repro.run import RunContext, RunSpec, TraceCache  # noqa: E402

HPC_WORKLOADS = ("als", "ct", "diffusion", "eqwp", "hit", "jacobi", "pagerank", "sssp")
COLLECTIVES = ("allreduce_ring", "allreduce_tree", "allgather", "alltoall", "pipeline")
PARADIGMS = ("p2p", "dma", "finepack")

#: Collective cells run at fabric scale (hop-overlapping fat tree).
COLLECTIVE_SHAPE = {"n_gpus": 8, "topology": "fat_tree"}

#: Metrics the error table covers.  The budget is asserted on the
#: starred subset; the rest are reported for the docs' error table.
ERROR_METRICS = ("wire", "payload", "useful", "goodput", "messages", "time")
BUDGET_METRICS = ("wire", "payload", "goodput")


def _grid_specs() -> list[RunSpec]:
    specs = []
    for w in HPC_WORKLOADS:
        for p in PARADIGMS:
            specs.append(RunSpec(workload=w, paradigm=p))
    for w in COLLECTIVES:
        for p in PARADIGMS:
            specs.append(RunSpec(workload=w, paradigm=p, **COLLECTIVE_SHAPE))
    return specs


def _rel_err(predicted: float, measured: float) -> float:
    if measured == 0:
        return 0.0 if predicted == 0 else float("inf")
    return abs(predicted - measured) / measured


def _cell_errors(ana, des) -> dict[str, float]:
    return {
        "wire": _rel_err(ana.bytes.total, des.bytes.total),
        "payload": _rel_err(ana.bytes.payload, des.bytes.payload),
        "useful": _rel_err(ana.bytes.useful, des.bytes.useful),
        "goodput": _rel_err(ana.goodput, des.goodput),
        "messages": _rel_err(ana.packets.messages, des.packets.messages),
        "time": _rel_err(ana.total_time_ns, des.total_time_ns),
    }


def _timed_run(spec: RunSpec, cache: TraceCache):
    """(metrics, wall seconds) with trace generation excluded."""
    ctx = RunContext(spec, trace_cache=cache)
    ctx.trace  # pre-generate so the clock sees only the replay/model
    t0 = time.perf_counter()
    metrics = ctx.run()
    return metrics, time.perf_counter() - t0


def calibrate(cache: TraceCache) -> tuple[list[dict], dict[str, float]]:
    """Run the grid at both fidelities; per-cell error/timing rows."""
    cells = []
    des_times: dict[tuple[str, str], float] = {}
    for spec in _grid_specs():
        des, des_s = _timed_run(spec, cache)
        ana, ana_s = _timed_run(spec.with_options(fidelity="analytical"), cache)
        des_times[(spec.workload, spec.paradigm)] = des_s
        cells.append(
            {
                "workload": spec.workload,
                "paradigm": spec.paradigm,
                "topology": spec.topology or "single_switch",
                "n_gpus": spec.n_gpus,
                "errors": {k: round(v, 6) for k, v in _cell_errors(ana, des).items()},
                "des_ms": round(des_s * 1e3, 3),
                "analytical_ms": round(ana_s * 1e3, 3),
                "cell_speedup": round(des_s / ana_s, 2) if ana_s else None,
            }
        )
        print(
            f"  {spec.workload:>14}/{spec.paradigm:<8} "
            f"wire_err={cells[-1]['errors']['wire']:.4f} "
            f"des={des_s * 1e3:7.1f}ms ana={ana_s * 1e3:6.1f}ms",
            flush=True,
        )
    return cells, des_times


def design_sweep_specs() -> list[RunSpec]:
    """The >= 500-spec design space swept analytically.

    Every calibration cell fanned across PCIe generations; finepack
    cells additionally across sub-header sizes and queue capacities,
    p2p/dma cells across barrier costs: 42 variants per workload.
    """
    shapes = [(w, {}) for w in HPC_WORKLOADS]
    shapes += [(w, COLLECTIVE_SHAPE) for w in COLLECTIVES]
    specs = []
    for workload, shape in shapes:
        for gen in (3, 4, 5):
            generation = GENERATIONS[gen]
            for paradigm in ("p2p", "dma"):
                for barrier in (1_000.0, 2_000.0):
                    specs.append(
                        RunSpec(
                            workload=workload,
                            paradigm=paradigm,
                            generation=generation,
                            barrier_ns=barrier,
                            fidelity="analytical",
                            **shape,
                        )
                    )
            for sub in (2, 3, 4, 5, 6):
                for entries in (32, 64):
                    specs.append(
                        RunSpec(
                            workload=workload,
                            paradigm="finepack",
                            generation=generation,
                            finepack=FinePackConfig(
                                subheader_bytes=sub,
                                queue_entries_per_partition=entries,
                            ),
                            fidelity="analytical",
                            **shape,
                        )
                    )
    return specs


def run_sweep(
    cache: TraceCache, des_times: dict[tuple[str, str], float]
) -> dict:
    """Measured analytical sweep vs extrapolated DES cost."""
    specs = design_sweep_specs()
    for spec in specs:  # warm the trace cache outside the clock
        RunContext(spec, trace_cache=cache).trace
    t0 = time.perf_counter()
    results = [RunContext(s, trace_cache=cache).run() for s in specs]
    analytical_s = time.perf_counter() - t0
    des_s = sum(des_times[(s.workload, s.paradigm)] for s in specs)
    best = max(zip(specs, results), key=lambda sr: sr[1].efficiency)
    return {
        "specs": len(specs),
        "analytical_s": round(analytical_s, 3),
        "des_extrapolated_s": round(des_s, 3),
        "des_basis": "extrapolated: each spec priced at its (workload, "
        "paradigm) calibration cell's measured DES replay time",
        "speedup": round(des_s / analytical_s, 1),
        "best_efficiency_spec": {
            "workload": best[0].workload,
            "paradigm": best[0].paradigm,
            "efficiency": round(best[1].efficiency, 4),
        },
    }


def summarize(cells: list[dict]) -> dict:
    """Median/max error per metric, overall and per paradigm."""
    def table(rows):
        out = {}
        for m in ERROR_METRICS:
            errs = [r["errors"][m] for r in rows]
            out[m] = {
                "median": round(statistics.median(errs), 6),
                "max": round(max(errs), 6),
            }
        return out

    per_paradigm = {
        p: table([c for c in cells if c["paradigm"] == p]) for p in PARADIGMS
    }
    return {"overall": table(cells), "per_paradigm": per_paradigm}


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--out", default=None, metavar="FILE",
                    help="merge the report into this JSON file under the "
                    "'analytical' key (existing keys preserved)")
    ap.add_argument("--budget", type=float, default=0.10,
                    help="max median relative error for wire/payload/"
                    "goodput (default 0.10)")
    ap.add_argument("--min-sweep-speedup", type=float, default=50.0,
                    help="min analytical-vs-DES speedup at design-sweep "
                    "scale (default 50)")
    ap.add_argument("--skip-sweep", action="store_true",
                    help="calibrate the error table only (skip the "
                    "speedup gate)")
    args = ap.parse_args(argv)

    cache = TraceCache()
    print(f"calibrating {len(_grid_specs())} cells (DES + analytical)...")
    cells, des_times = calibrate(cache)
    errors = summarize(cells)

    report = {
        "grid": {
            "hpc_workloads": list(HPC_WORKLOADS),
            "collectives": list(COLLECTIVES),
            "paradigms": list(PARADIGMS),
            "collective_shape": COLLECTIVE_SHAPE,
        },
        "cells": cells,
        "errors": errors,
        "error_budget": {m: args.budget for m in BUDGET_METRICS},
    }

    failures = []
    for m in BUDGET_METRICS:
        med = errors["overall"][m]["median"]
        if med > args.budget:
            failures.append(
                f"median {m} error {med:.4f} exceeds budget {args.budget:.2f}"
            )
    print("\nerror medians (overall):")
    for m in ERROR_METRICS:
        e = errors["overall"][m]
        gate = " <= budget" if m in BUDGET_METRICS else ""
        print(f"  {m:>8}: median={e['median']:.4f} max={e['max']:.4f}{gate}")

    if not args.skip_sweep:
        print("\ndesign-space sweep (analytical, measured)...")
        sweep = run_sweep(cache, des_times)
        report["sweep"] = {**sweep, "min_speedup": args.min_sweep_speedup}
        print(
            f"  {sweep['specs']} specs in {sweep['analytical_s']:.2f}s "
            f"analytical vs {sweep['des_extrapolated_s']:.1f}s DES "
            f"(extrapolated): {sweep['speedup']:.0f}x"
        )
        if sweep["speedup"] < args.min_sweep_speedup:
            failures.append(
                f"sweep speedup {sweep['speedup']:.1f}x below the "
                f"{args.min_sweep_speedup:.0f}x floor"
            )

    report["passed"] = not failures

    if args.out:
        path = Path(args.out)
        doc = json.loads(path.read_text()) if path.exists() else {}
        doc["analytical"] = report
        path.write_text(json.dumps(doc, indent=2) + "\n")
        print(f"\nwrote {path} ['analytical']")

    if failures:
        for f in failures:
            print(f"GATE FAILED: {f}", file=sys.stderr)
        return 1
    print("all calibration gates passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
