#!/usr/bin/env python
"""Crash-injection smoke test for the supervised executor (CI gate).

Runs a small grid whose workers deliberately misbehave -- one cell
crashes its worker process (``os._exit``), one hangs past the per-cell
timeout, one fails until its third retry -- and asserts the resilience
contract end to end:

1. the grid *completes* in ``strict=False`` mode despite the carnage,
   with accurate ``CellFailure`` accounting for the cell that exhausts
   its retry budget;
2. retries/timeouts/pool breaks are counted in ``retry_stats``;
3. a second invocation with ``resume=True`` against the same journal +
   outcome store replays every finished cell from the store (zero
   re-simulation) and finishes the quarantined cell, whose injected
   fault has "cleared" by then (attempt slots are persisted on disk);
4. resumed outcomes equal the originals.

Exit status is non-zero on any violation, so CI can gate on it.

Usage::

    python tools/crash_smoke.py [--timeout 4.0]
"""

from __future__ import annotations

import argparse
import sys
import tempfile
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.run import RunSpec, execute_grid  # noqa: E402


def faulty(mode: str, budget: int, token_dir: str, token: str, **kw) -> RunSpec:
    params = {
        "n": 16,
        "mode": mode,
        "budget": budget,
        "token_dir": token_dir,
        "token": token,
        **kw,
    }
    return RunSpec(
        workload="faulty",
        paradigm="p2p",
        n_gpus=2,
        iterations=1,
        workload_params=params,
    )


def check(ok: bool, label: str, failures: list) -> None:
    print(f"  [{'ok' if ok else 'FAIL'}] {label}")
    if not ok:
        failures.append(label)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--timeout", type=float, default=4.0)
    args = parser.parse_args(argv)

    failures: list[str] = []
    with tempfile.TemporaryDirectory(prefix="repro-crash-smoke-") as tmp:
        tokens = str(Path(tmp) / "tokens")
        cache = str(Path(tmp) / "cache")
        # The crash cell goes first so the pool break lands while only
        # it and the healthy cell are in flight -- the hang cell's
        # fault slot must be consumed by an actual timeout, not by the
        # crash's collateral pool kill.
        specs = [
            faulty("crash", 1, tokens, "crash"),
            RunSpec(workload="jacobi", workload_params={"n": 64},
                    paradigm="p2p", n_gpus=2, iterations=1),
            faulty("hang", 1, tokens, "hang", hang_s=60.0),
            # Fails attempts 1..3; attempt 4 succeeds -- but the first
            # invocation only gets 2 attempts, so this cell quarantines
            # and is finished by the resumed invocation.
            faulty("raise", 3, tokens, "flaky"),
        ]

        print("pass 1: crash + hang + flaky grid, strict=False")
        t0 = time.perf_counter()
        grid = execute_grid(
            specs, jobs=2, trace_cache=cache,
            strict=False, timeout=args.timeout, retries=1,
            journal=cache,
        )
        elapsed = time.perf_counter() - t0
        stats = grid.retry_stats
        print(f"  completed in {elapsed:.1f}s: retry_stats={stats} "
              f"failures={[f.as_dict() for f in grid.failures()]}")

        check(len(grid.cells) == len(specs), "grid drained every cell", failures)
        check(len(grid.outcomes()) == 3, "3 cells recovered", failures)
        check(len(grid.failures()) == 1, "1 cell quarantined", failures)
        if grid.failures():
            f = grid.failures()[0]
            check(f.quarantined and f.attempts == 2 and f.kind == "error",
                  "CellFailure accounting (error, 2 attempts)", failures)
        check(stats["pool_breaks"] >= 1, "worker crash observed", failures)
        check(stats["timeouts"] >= 1, "hung worker timed out", failures)
        check(stats["retried"] >= 2, "retries counted", failures)
        check(stats["quarantined"] == 1, "quarantine counted", failures)

        print("pass 2: resume from journal + outcome store")
        resumed = execute_grid(
            specs, jobs=2, trace_cache=cache,
            strict=False, timeout=args.timeout, retries=1,
            journal=cache, resume=True,
        )
        print(f"  retry_stats={resumed.retry_stats} "
              f"outcome_cache={resumed.outcome_cache}")

        check(resumed.ok, "resume finished the grid", failures)
        check(resumed.outcome_cache.get("hits", 0) >= 3,
              "finished cells replayed from outcome store", failures)
        check(all(resumed.cells[i].cached for i in range(3)),
              "replayed cells marked cached", failures)
        flaky_cell = resumed.cells[3]
        check(getattr(flaky_cell, "cached", None) is False
              and flaky_cell.attempts == 2,
              "quarantined cell re-ran on resume", failures)
        check(
            all(resumed.cells[i].metrics == grid.cells[i].metrics
                for i in range(3)),
            "resumed outcomes equal originals", failures,
        )

    if failures:
        print(f"FAIL: {len(failures)} check(s) failed: {failures}",
              file=sys.stderr)
        return 1
    print("crash smoke: all checks passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
