#!/usr/bin/env python
"""Smoke benchmark for the parallel sweep executor (``make bench-smoke``).

Runs one small sweep grid three ways and writes ``BENCH_sweep.json``:

1. serial, cold trace cache;
2. parallel (``--jobs``), same on-disk trace cache (now warm);
3. serial again on the warm cache, to isolate the cache's effect.

Asserts the serial and parallel metrics tables are identical (the
executor's core guarantee) and that the warm-cache pass generated no
traces (every lookup is a cache hit).  Exit status is non-zero if
either property fails, so CI can gate on it.

Usage::

    python tools/bench_smoke.py [--jobs 2] [--out BENCH_sweep.json]
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import tempfile
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.run import RunSpec, aggregate_cache_stats, execute_grid  # noqa: E402


def build_grid() -> list[RunSpec]:
    """Three workloads x two paradigms -- small but parallelizable.

    The grid includes one collective (ring all-reduce on a 4-GPU
    switched mesh) so the sweep benchmark also covers the collective
    lowering path and topology parameter plumbing.
    """
    specs = []
    for workload, params in (("jacobi", {"n": 512}), ("diffusion", {"n": 96})):
        base = RunSpec(
            workload=workload,
            workload_params=params,
            n_gpus=2,
            iterations=2,
        )
        specs += [base.with_options(paradigm=p) for p in ("p2p", "finepack")]
    collective = RunSpec(
        workload="allreduce_ring",
        workload_params={"message_bytes": 8192, "chunk_bytes": 2048},
        topology="switched_mesh",
        topology_params={"planes": 2},
        n_gpus=4,
        iterations=1,
    )
    specs += [collective.with_options(paradigm=p) for p in ("dma", "finepack")]
    return specs


def timed_run(specs, jobs: int, cache_dir: str) -> tuple[float, list, dict]:
    start = time.perf_counter()
    outcomes = execute_grid(specs, jobs=jobs, trace_cache=cache_dir)
    elapsed = time.perf_counter() - start
    return elapsed, outcomes, aggregate_cache_stats(outcomes)


def table(outcomes) -> list[dict]:
    return [
        {
            "workload": o.spec.workload,
            "paradigm": o.spec.paradigm,
            "total_time_ns": o.metrics.total_time_ns,
            "wire_bytes": o.metrics.wire_bytes,
        }
        for o in outcomes
    ]


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--jobs", type=int, default=2)
    parser.add_argument("--out", default="BENCH_sweep.json")
    args = parser.parse_args(argv)

    specs = build_grid()
    with tempfile.TemporaryDirectory(prefix="repro-bench-cache-") as cache:
        serial_s, serial, serial_stats = timed_run(specs, 1, cache)
        parallel_s, parallel, parallel_stats = timed_run(specs, args.jobs, cache)
        warm_s, warm, warm_stats = timed_run(specs, 1, cache)

    serial_table, parallel_table, warm_table = map(table, (serial, parallel, warm))
    identical = serial_table == parallel_table == warm_table
    warm_skipped_generation = warm_stats["misses"] == 0

    report = {
        "grid": [s.canonical() for s in specs],
        "jobs": args.jobs,
        "cpu_count": os.cpu_count(),
        "wall_clock_s": {
            "serial_cold": round(serial_s, 4),
            "parallel_warm_cache": round(parallel_s, 4),
            "serial_warm_cache": round(warm_s, 4),
        },
        "cache_stats": {
            "serial_cold": serial_stats,
            "parallel_warm_cache": parallel_stats,
            "serial_warm_cache": warm_stats,
        },
        "metrics_table": serial_table,
        "serial_parallel_identical": identical,
        "warm_cache_skipped_generation": warm_skipped_generation,
    }
    Path(args.out).write_text(json.dumps(report, indent=2) + "\n")

    print(f"wrote {args.out}")
    print(
        f"serial(cold) {serial_s:.2f}s  "
        f"jobs={args.jobs}(warm) {parallel_s:.2f}s  "
        f"serial(warm) {warm_s:.2f}s"
    )
    print(f"serial == parallel tables: {identical}")
    print(
        f"warm cache: {warm_stats['hits']} hits, "
        f"{warm_stats['misses']} misses (generation skipped: "
        f"{warm_skipped_generation})"
    )
    if not identical:
        print("FAIL: parallel metrics diverge from serial", file=sys.stderr)
        return 1
    if not warm_skipped_generation:
        print("FAIL: warm cache still generated traces", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
