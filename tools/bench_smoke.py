#!/usr/bin/env python
"""Smoke benchmark for the parallel sweep executor (``make bench-smoke``).

Runs one small sweep grid four ways and writes ``BENCH_sweep.json``:

1. serial, cold trace cache;
2. parallel (``--jobs``), same on-disk trace cache (now warm);
3. serial again on the warm cache, to isolate the trace cache's effect
   (this pass also populates an ``OutcomeStore``);
4. serial against the warm outcome store, to isolate the store's
   effect -- every cell is served without simulating.

Asserts the serial and parallel metrics tables are identical (the
executor's core guarantee), that the warm-cache pass generated no
traces, that the store pass simulated nothing (100% outcome-cache
hits), and that no healthy pass retried or quarantined a cell
(``retry_stats`` summarized per pass).  Exit status is non-zero if any
property fails, so CI can gate on it.

Usage::

    python tools/bench_smoke.py [--jobs 2] [--out BENCH_sweep.json]
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import tempfile
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.run import (  # noqa: E402
    OutcomeStore,
    RunSpec,
    aggregate_cache_stats,
    execute_grid,
)


def build_grid() -> list[RunSpec]:
    """Three workloads x two paradigms -- small but parallelizable.

    The grid includes one collective (ring all-reduce on a 4-GPU
    switched mesh) so the sweep benchmark also covers the collective
    lowering path and topology parameter plumbing.
    """
    specs = []
    for workload, params in (("jacobi", {"n": 512}), ("diffusion", {"n": 96})):
        base = RunSpec(
            workload=workload,
            workload_params=params,
            n_gpus=2,
            iterations=2,
        )
        specs += [base.with_options(paradigm=p) for p in ("p2p", "finepack")]
    collective = RunSpec(
        workload="allreduce_ring",
        workload_params={"message_bytes": 8192, "chunk_bytes": 2048},
        topology="switched_mesh",
        topology_params={"planes": 2},
        n_gpus=4,
        iterations=1,
    )
    specs += [collective.with_options(paradigm=p) for p in ("dma", "finepack")]
    return specs


def timed_run(specs, jobs: int, cache_dir: str, store=None):
    start = time.perf_counter()
    grid = execute_grid(
        specs, jobs=jobs, trace_cache=cache_dir,
        strict=False, outcome_store=store,
    )
    elapsed = time.perf_counter() - start
    return elapsed, grid, aggregate_cache_stats(grid)


def table(grid) -> list[dict]:
    return [
        {
            "workload": o.spec.workload,
            "paradigm": o.spec.paradigm,
            "total_time_ns": o.metrics.total_time_ns,
            "wire_bytes": o.metrics.wire_bytes,
        }
        for o in grid.outcomes()
    ]


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--jobs", type=int, default=2)
    parser.add_argument("--out", default="BENCH_sweep.json")
    args = parser.parse_args(argv)

    specs = build_grid()
    with tempfile.TemporaryDirectory(prefix="repro-bench-cache-") as cache:
        store = OutcomeStore(Path(cache) / "outcomes")
        serial_s, serial, serial_stats = timed_run(specs, 1, cache)
        parallel_s, parallel, parallel_stats = timed_run(specs, args.jobs, cache)
        warm_s, warm, warm_stats = timed_run(specs, 1, cache, store=store)
        store.clear_memory()  # force the disk layer, like a fresh process
        stored_s, stored, stored_stats = timed_run(specs, 1, cache, store=store)

    passes = {
        "serial_cold": serial,
        "parallel_warm_cache": parallel,
        "serial_warm_cache": warm,
        "serial_warm_outcomes": stored,
    }
    tables = {name: table(grid) for name, grid in passes.items()}
    identical = len({json.dumps(t) for t in tables.values()}) == 1
    warm_skipped_generation = warm_stats["misses"] == 0
    store_served_all = (
        stored.outcome_cache.get("hits", 0) == len(specs)
        and stored.retry_stats.get("attempts", 0) == 0
    )
    grids_healthy = all(
        grid.ok
        and grid.retry_stats.get("retried", 0) == 0
        and grid.retry_stats.get("quarantined", 0) == 0
        for grid in passes.values()
    )

    report = {
        "grid": [s.canonical() for s in specs],
        "jobs": args.jobs,
        "cpu_count": os.cpu_count(),
        "wall_clock_s": {
            "serial_cold": round(serial_s, 4),
            "parallel_warm_cache": round(parallel_s, 4),
            "serial_warm_cache": round(warm_s, 4),
            "serial_warm_outcomes": round(stored_s, 4),
        },
        "cache_stats": {
            "serial_cold": serial_stats,
            "parallel_warm_cache": parallel_stats,
            "serial_warm_cache": warm_stats,
            "serial_warm_outcomes": stored_stats,
        },
        "retry_stats": {name: grid.retry_stats for name, grid in passes.items()},
        "outcome_cache": stored.outcome_cache,
        "metrics_table": tables["serial_cold"],
        "serial_parallel_identical": identical,
        "warm_cache_skipped_generation": warm_skipped_generation,
        "outcome_store_served_all": store_served_all,
        "grids_healthy": grids_healthy,
    }
    Path(args.out).write_text(json.dumps(report, indent=2) + "\n")

    print(f"wrote {args.out}")
    print(
        f"serial(cold) {serial_s:.2f}s  "
        f"jobs={args.jobs}(warm) {parallel_s:.2f}s  "
        f"serial(warm) {warm_s:.2f}s  "
        f"outcomes(warm) {stored_s:.2f}s"
    )
    print(f"serial == parallel tables: {identical}")
    print(
        f"warm cache: {warm_stats['hits']} hits, "
        f"{warm_stats['misses']} misses (generation skipped: "
        f"{warm_skipped_generation})"
    )
    print(
        f"outcome store: {stored.outcome_cache.get('hits', 0)}/{len(specs)} "
        f"served, {stored.retry_stats.get('attempts', 0)} simulated"
    )
    print(
        "retry_stats: "
        + "  ".join(
            f"{name}: {grid.retry_stats.get('retried', 0)} retried, "
            f"{grid.retry_stats.get('quarantined', 0)} quarantined"
            for name, grid in passes.items()
        )
    )
    if not identical:
        print("FAIL: parallel metrics diverge from serial", file=sys.stderr)
        return 1
    if not warm_skipped_generation:
        print("FAIL: warm cache still generated traces", file=sys.stderr)
        return 1
    if not store_served_all:
        print("FAIL: warm outcome store still simulated cells", file=sys.stderr)
        return 1
    if not grids_healthy:
        print("FAIL: a healthy grid retried or quarantined cells", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
