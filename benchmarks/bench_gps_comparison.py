"""Sec. VI-B comparison: FinePack vs GPS and vs write combining.

GPS (MICRO'21) is modelled by its two first-order mechanisms: dynamic
page-granularity replica subscription (epoch 0 publishes everything,
written-but-unread pages unsubscribe) and sector-granularity transfers
(32 B rounding -- the paper's "unneeded transfers within a cacheline").

Shape targets: the designs land in the same performance class (the
paper reports FinePack 17.8% slower than GPS on average), and each
wins in its regime -- GPS where subscription has broadcast traffic to
elide ("GPS performs best where subscription benefits offset the
inefficiency"), FinePack on the fine-grained graph workloads ("in
other workloads FinePack performs better than GPS").  Write combining
alone always trails FinePack in wire bytes (Sec. VI-A: ~24%).
"""

import numpy as np

from repro.analysis import format_table
from repro.gpu.compute import KernelWork
from repro.gpu.memory import MemorySpace
from repro.sim.paradigms import GPSParadigm
from repro.sim.runner import ExperimentConfig, compare_paradigms, geomean
from repro.trace.intervals import IntervalSet
from repro.trace.stream import (
    DMATransfer,
    IterationTrace,
    KernelPhase,
    RemoteStoreBatch,
    WorkloadTrace,
)
from repro.workloads import MultiGPUWorkload, push_elements
from repro.workloads.base import interleave
from repro.workloads.datasets import partition_bounds


class _BroadcastWorkload(MultiGPUWorkload):
    """The regime where GPS's subscription shines (paper Sec. VI-B):
    producers broadcast every update to every replica, but each
    consumer reads only a contiguous quarter of each producer's range
    -- 75% of the broadcast is elidable, and because consumption is
    clustered, page-granularity learning finds it.  Records are 32 B
    (sector-aligned, like ALS factors), so GPS pays no rounding tax."""

    name = "broadcast"
    comm_pattern = "all-to-all"

    def __init__(self, n: int = 24_000):
        self.n = n

    def generate_trace(self, n_gpus, iterations=3, seed=7):
        bounds = partition_bounds(self.n, n_gpus)
        memory = MemorySpace(n_gpus)
        buf = memory.alloc_replicated("broadcast.data", self.n * 32)
        phases = []
        for g in range(n_gpus):
            lo, hi = int(bounds[g]), int(bounds[g + 1])
            owned = hi - lo
            work = KernelWork(flops=6.0 * owned, dram_bytes=24.0 * owned)
            batches, dma = [], []
            ids = interleave(np.arange(lo, hi, dtype=np.int64), 64)
            for d in range(n_gpus):
                if d == g:
                    continue
                batches.append(push_elements(ids, 32, d, buf.replicas[d]))
                dma.append(
                    DMATransfer(
                        dst=d, dst_addr=buf.replicas[d] + lo * 32, nbytes=owned * 32
                    )
                )
            # Consumer g reads a contiguous quarter of every producer's
            # block (its region of interest).
            starts, lens = [], []
            for o in range(n_gpus):
                if o == g:
                    continue
                olo, ohi = int(bounds[o]), int(bounds[o + 1])
                span = (ohi - olo) // 4
                offset = olo + (g % 4) * span
                starts.append(buf.replicas[g] + offset * 32)
                lens.append(span * 32)
            phases.append(
                KernelPhase(
                    gpu=g,
                    work=work,
                    stores=RemoteStoreBatch.concat(batches),
                    reads=IntervalSet.from_ranges(starts, lens),
                    dma=dma,
                )
            )
        return WorkloadTrace(
            name=self.name,
            n_gpus=n_gpus,
            iterations=[IterationTrace(phases)] * iterations,
            metadata={},
        )


def test_gps_and_wc_comparison(benchmark, suite_results, emit):
    def collect():
        rows = []
        for name, res in suite_results.items():
            rows.append(
                [
                    name,
                    res.speedup("finepack"),
                    res.speedup("gps"),
                    res.speedup("wc"),
                    res.runs["wc"].wire_bytes / max(res.runs["finepack"].wire_bytes, 1),
                ]
            )
        # The broadcast regime: consumers read a quarter of what they
        # receive, clustered -- GPS's home turf.
        bc = compare_paradigms(
            _BroadcastWorkload(),
            paradigms=("finepack", GPSParadigm(subscription="learned"), "p2p"),
            config=ExperimentConfig(iterations=4),
        )
        return rows, bc

    rows, bc = benchmark.pedantic(collect, rounds=1, iterations=1)

    fp_geo = geomean([r[1] for r in rows])
    gps_geo = geomean([r[2] for r in rows])
    wc_geo = geomean([r[3] for r in rows])
    rows.append(["GEOMEAN", fp_geo, gps_geo, wc_geo, float("nan")])
    table = format_table(
        "Sec. VI-B: FinePack vs GPS (learned subscription) vs write "
        "combining (paper: FinePack 17.8% slower than GPS on average)",
        ["workload", "finepack", "gps", "wc", "wc/fp wire"],
        rows,
        float_fmt="{:.2f}",
    )
    bc_fp, bc_gps, bc_p2p = (
        bc.speedup("finepack"), bc.speedup("gps"), bc.speedup("p2p")
    )
    table += (
        f"\nbroadcast regime (consumers read 25% of what they receive): "
        f"GPS {bc_gps:.2f} vs FinePack {bc_fp:.2f} vs raw P2P {bc_p2p:.2f} "
        f"-- learned subscription wins where it has traffic to elide "
        f"(paper Sec. VI-B)."
        f"\nNote: the suite's graph workloads push subscription-exact "
        f"sets, so page-granular learning finds nothing to trim there "
        f"and GPS trails FinePack overall, unlike the paper's "
        f"broadcast-style reference implementations (EXPERIMENTS.md)."
    )
    emit("gps_comparison", table)

    # The designs are in the same performance class.
    assert 0.9 < fp_geo / gps_geo < 1.9
    # Each design wins in its regime (the paper's two-sided finding).
    assert bc_gps > bc_fp > bc_p2p
    by_name = {r[0]: r for r in rows[:-1]}
    assert by_name["pagerank"][1] > by_name["pagerank"][2]  # FP > GPS
    # Write combining alone never beats FinePack's wire efficiency.
    wire_ratios = [r[4] for r in rows[:-1] if r[4] == r[4]]
    assert geomean(wire_ratios) > 1.05
