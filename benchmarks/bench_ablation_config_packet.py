"""Sec. VI-B ablation: the stateful configuration-packet alternative.

Replays every FinePack window the suite actually produces through the
config-packet cost model and compares wire bytes.  Shape target: the
alternative is ~18% less efficient for typical payload-full windows
because each store remains an independent TLP paying its own sequence
number and CRCs (a 10-byte-per-store penalty).
"""

import numpy as np

from repro.analysis import format_table
from repro.core.alt_designs import ConfigPacketDesign
from repro.core.config import FinePackConfig
from repro.core.egress import FinePackEgress
from repro.interconnect.pcie import PCIE_GEN4, PCIeProtocol
from repro.workloads import PagerankWorkload, SSSPWorkload


def _collect_ratios():
    """Per-window wire-byte ratio (config-packet design / FinePack)."""
    config = FinePackConfig()
    protocol = PCIeProtocol(PCIE_GEN4)
    design = ConfigPacketDesign(config, protocol)
    out = {}
    for workload in (PagerankWorkload(), SSSPWorkload()):
        trace = workload.generate_trace(n_gpus=4, iterations=1, seed=7)
        ratios, packed = [], []
        for phase in trace.iterations[0].phases:
            engine = FinePackEgress(config, protocol, phase.gpu, trace.n_gpus)
            msgs = []
            s = phase.stores
            for a, n, d in zip(s.addrs.tolist(), s.sizes.tolist(), s.dsts.tolist()):
                msgs += engine.on_store(a, n, d, 0.0)
            msgs += engine.on_release(0.0)
            for m in msgs:
                packet = m.meta["packet"]
                ratios.append(design.efficiency_vs_finepack(packet))
                packed.append(packet.stores_absorbed)
        out[workload.name] = (
            float(np.mean(ratios)),
            float(np.mean(packed)),
        )
    return out


def test_ablation_config_packet_design(benchmark, emit):
    results = benchmark.pedantic(_collect_ratios, rounds=1, iterations=1)

    rows = [
        [name, mean_packed, ratio, f"{(ratio - 1) * 100:.0f}% worse"]
        for name, (ratio, mean_packed) in results.items()
    ]
    emit(
        "ablation_config_packet",
        format_table(
            "Sec. VI-B ablation: config-packet design vs FinePack "
            "(paper: ~18% less efficient at 32-64 stores)",
            ["workload", "stores/window", "wire ratio", "penalty"],
            rows,
            float_fmt="{:.2f}",
        ),
    )

    for name, (ratio, _) in results.items():
        # The alternative always moves more bytes; for these fine-grained
        # workloads the penalty is well beyond the paper's 18% floor.
        assert ratio > 1.15, name
