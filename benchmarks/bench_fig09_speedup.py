"""Figure 9: 4-GPU speedups over a single GPU for each paradigm.

Shape targets from the paper: infinite bandwidth exposes a ~3.4x
geomean opportunity; FinePack lands around 2.4x, capturing ~71% of it;
bulk DMA sits between FinePack and raw P2P stores in aggregate; raw
P2P stores suffer net slowdowns on the irregular applications while
matching FinePack on the regular ones.
"""

from repro.analysis import format_speedup_table, format_table
from repro.sim.runner import geomean

PARADIGMS = ("p2p", "dma", "finepack", "infinite")


def test_fig09_speedups(benchmark, suite_results, emit):
    speedups = benchmark.pedantic(
        lambda: {
            name: {p: r.speedup(p) for p in PARADIGMS}
            for name, r in suite_results.items()
        },
        rounds=1,
        iterations=1,
    )

    table = format_speedup_table("Figure 9: 4-GPU speedup over 1 GPU", speedups)
    geo = {p: geomean([row[p] for row in speedups.values()]) for p in PARADIGMS}
    table += "\n" + format_table(
        "geometric means",
        ["paradigm", "speedup", "paper"],
        [
            ["p2p", geo["p2p"], "~0.8"],
            ["dma", geo["dma"], "~1.7"],
            ["finepack", geo["finepack"], "~2.4"],
            ["infinite", geo["infinite"], "~3.4"],
        ],
        float_fmt="{:.2f}",
    )
    captured = geo["finepack"] / geo["infinite"]
    table += f"\nFinePack captures {captured:.0%} of the opportunity (paper: 71%)."
    emit("fig09_speedups", table)

    # --- shape assertions -------------------------------------------
    # Aggregate ordering: p2p-ish low, dma middle, finepack high, inf top.
    assert geo["dma"] < geo["finepack"] < geo["infinite"]
    assert geo["finepack"] > 1.4 * geo["dma"] * 0.8  # FP ~1.4x over DMA
    assert 0.55 < captured < 0.95

    # Regular apps: P2P already scales; FinePack matches it.
    for name in ("jacobi", "diffusion", "eqwp"):
        assert speedups[name]["p2p"] > 2.5, name
        assert abs(speedups[name]["finepack"] - speedups[name]["p2p"]) < 0.3

    # Irregular apps: P2P is a net slowdown or near it; FinePack recovers.
    for name in ("pagerank", "sssp"):
        assert speedups[name]["p2p"] < 1.0, name
        assert speedups[name]["finepack"] > 2.0 * speedups[name]["p2p"], name

    # Every paradigm stays within the infinite-bandwidth envelope.
    for name, row in speedups.items():
        for p in ("p2p", "dma", "finepack"):
            assert row[p] <= row["infinite"] * 1.01, (name, p)
