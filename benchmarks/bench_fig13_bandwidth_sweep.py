"""Figure 13: performance sensitivity to interconnect bandwidth.

Sweeps PCIe 3.0 through the projected 6.0 (16 to 128 GB/s per
direction).  Shape targets: every paradigm improves with bandwidth, the
baselines improve faster (they waste more wire bytes), but neither bulk
DMA nor raw P2P stores catch FinePack at any bandwidth step.
"""

from repro.analysis import format_table
from repro.interconnect import GENERATIONS
from repro.sim.paradigms import make_paradigm
from repro.sim.runner import geomean
from repro.sim.system import MultiGPUSystem
from repro.workloads import default_suite

PARADIGMS = ("p2p", "dma", "finepack")


def _sweep():
    geo: dict[int, dict[str, float]] = {}
    suite = default_suite()
    traces = {
        w.name: (
            w.generate_trace(n_gpus=4, iterations=2, seed=7),
            w.generate_trace(n_gpus=1, iterations=2, seed=7),
        )
        for w in suite
    }
    t1 = {
        name: MultiGPUSystem.build(n_gpus=1)
        .run(single, make_paradigm("infinite"))
        .total_time_ns
        for name, (_, single) in traces.items()
    }
    for gen, generation in sorted(GENERATIONS.items()):
        per_paradigm: dict[str, list[float]] = {p: [] for p in PARADIGMS}
        for name, (trace, _) in traces.items():
            for p in PARADIGMS:
                system = MultiGPUSystem.build(n_gpus=4, generation=generation)
                m = system.run(trace, make_paradigm(p))
                per_paradigm[p].append(t1[name] / m.total_time_ns)
        geo[gen] = {p: geomean(v) for p, v in per_paradigm.items()}
    return geo


def test_fig13_bandwidth_sensitivity(benchmark, emit):
    geo = benchmark.pedantic(_sweep, rounds=1, iterations=1)

    rows = [
        [GENERATIONS[gen].name, *(geo[gen][p] for p in PARADIGMS)]
        for gen in sorted(geo)
    ]
    emit(
        "fig13_bandwidth_sweep",
        format_table(
            "Figure 13: geomean speedup vs interconnect bandwidth",
            ["link", *PARADIGMS],
            rows,
            float_fmt="{:.2f}",
        ),
    )

    # --- shape assertions -------------------------------------------
    for p in PARADIGMS:
        series = [geo[g][p] for g in sorted(geo)]
        # Monotone improvement with bandwidth.
        assert all(b >= a - 1e-9 for a, b in zip(series, series[1:])), p
    for gen in geo:
        # FinePack stays ahead of both baselines at every step.
        assert geo[gen]["finepack"] >= geo[gen]["dma"], gen
        assert geo[gen]["finepack"] >= geo[gen]["p2p"], gen
    # The baselines close part of the gap as bandwidth grows.
    gens = sorted(geo)
    gap_first = geo[gens[0]]["finepack"] / geo[gens[0]]["p2p"]
    gap_last = geo[gens[-1]]["finepack"] / geo[gens[-1]]["p2p"]
    assert gap_last < gap_first
