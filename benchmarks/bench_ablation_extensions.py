"""Ablations of the paper's optional/extension designs.

Three design points the paper discusses but does not evaluate:

* **Inactivity-timeout flush** (Sec. IV-B): the paper argues flushing
  only on full/miss/release already keeps the link busy; the ablation
  confirms a timeout changes little at sane values and hurts packing
  when too aggressive.
* **Multi-window partitions** (Sec. IV-C): extra concurrent aggregation
  windows rescue workloads that thrash a single window -- CT, the
  Figure 11 outlier, is the stress case.
* **Atomic port** (Sec. IV-C): FinePack never coalesces atomics, so an
  atomicAdd-based port sees zero benefit -- quantified on PageRank.
"""

import pytest

from repro.analysis import format_table
from repro.sim.paradigms import FinePackParadigm, make_paradigm
from repro.sim.runner import ExperimentConfig, compare_paradigms
from repro.sim.system import MultiGPUSystem
from repro.workloads import CTWorkload, PagerankWorkload, SSSPWorkload


def _timeout_sweep():
    """Drive a bursty store stream through the FinePack egress.

    The paper's motivation for the (unused) timeout is latency and
    burstiness: between bursts the queue sits on buffered data.  The
    sweep measures the tradeoff directly -- mean buffering latency
    (store issue to packet egress) vs wire bytes and packing.
    """
    import numpy as np

    from repro.core.config import FinePackConfig
    from repro.core.egress import FinePackEgress
    from repro.interconnect.pcie import PCIE_GEN4, PCIeProtocol

    base = 1 << 34
    rng = np.random.default_rng(7)
    bursts = 64
    per_burst = 16
    gap_ns = 20_000.0
    rows = []
    for timeout in (None, 100_000.0, 5_000.0, 500.0):
        engine = FinePackEgress(
            FinePackConfig(),
            PCIeProtocol(PCIE_GEN4),
            src=0,
            n_gpus=2,
            flush_timeout_ns=timeout,
        )
        pending: list[tuple[int, float]] = []  # (count, issue_time)
        latencies: list[float] = []
        wire = 0
        packets = 0

        def drain(msgs):
            nonlocal wire, packets
            for m in msgs:
                wire += m.wire_bytes
                packets += 1
                absorbed = m.meta["packet"].stores_absorbed
                taken = 0
                while pending and taken < absorbed:
                    count, t0 = pending.pop(0)
                    take = min(count, absorbed - taken)
                    latencies.extend([m.issue_time - t0] * take)
                    taken += take
                    if take < count:
                        pending.insert(0, (count - take, t0))

        t = 0.0
        for _ in range(bursts):
            for _ in range(per_burst):
                addr = base + int(rng.integers(0, 1 << 14)) * 8
                pending.append((1, t))
                drain(engine.on_store(addr, 8, 1, t))
                t += 20.0
            t += gap_ns
        drain(engine.on_release(t))
        rows.append(
            [
                "off" if timeout is None else f"{timeout/1e3:.1f}us",
                float(np.mean(latencies)) / 1e3,
                wire / 1e3,
                (bursts * per_burst) / packets,
            ]
        )
    return rows


def _window_sweep():
    trace = CTWorkload().generate_trace(n_gpus=4, iterations=2, seed=7)
    rows = []
    for windows in (1, 2, 4, 8):
        system = MultiGPUSystem.build(n_gpus=4)
        m = system.run(trace, FinePackParadigm(windows=windows))
        rows.append(
            [
                windows,
                m.total_time_ns / 1e3,
                m.wire_bytes / 1e6,
                m.packets.mean_stores_per_packet,
            ]
        )
    return rows


def test_ablation_timeout_flush(benchmark, emit):
    rows = benchmark.pedantic(_timeout_sweep, rounds=1, iterations=1)
    emit(
        "ablation_timeout",
        format_table(
            "Sec. IV-B ablation: inactivity-timeout flush "
            "(bursty synthetic stream, 16-store bursts / 20us gaps)",
            ["timeout", "mean_latency_us", "wire_kB", "stores/pkt"],
            rows,
            float_fmt="{:.1f}",
        ),
    )
    by = {r[0]: r for r in rows}
    # An aggressive timeout slashes buffering latency ...
    assert by["0.5us"][1] < 0.25 * by["off"][1]
    # ... at the cost of fragmented packets and more wire bytes
    # (why the paper leaves the timeout off to maximize coalescing).
    assert by["0.5us"][3] < by["off"][3]
    assert by["0.5us"][2] > by["off"][2]
    # A generous timeout barely changes the wire traffic.
    assert by["100.0us"][2] <= by["off"][2] * 1.05


def test_ablation_multi_window(benchmark, emit):
    rows = benchmark.pedantic(_window_sweep, rounds=1, iterations=1)
    emit(
        "ablation_multiwindow",
        format_table(
            "Sec. IV-C ablation: concurrent aggregation windows (ct)",
            ["windows", "time_us", "wire_MB", "stores/pkt"],
            rows,
            float_fmt="{:.1f}",
        ),
    )
    by = {r[0]: r for r in rows}
    # CT thrashes one window; more windows recover packing and bytes.
    assert by[4][3] > 1.5 * by[1][3]
    assert by[4][2] < by[1][2]


def test_ablation_atomic_port(benchmark, emit):
    def run():
        out = {}
        for use_atomics in (False, True):
            res = compare_paradigms(
                PagerankWorkload(n=40_000, use_atomics=use_atomics),
                paradigms=("p2p", "finepack"),
                config=ExperimentConfig(iterations=2),
            )
            out["atomicAdd port" if use_atomics else "store port"] = (
                res.speedup("p2p"),
                res.speedup("finepack"),
            )
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [[k, v[0], v[1]] for k, v in results.items()]
    emit(
        "ablation_atomics",
        format_table(
            "Sec. IV-C ablation: store port vs atomic port (pagerank)",
            ["port", "p2p speedup", "finepack speedup"],
            rows,
            float_fmt="{:.2f}",
        ),
    )
    store_gain = results["store port"][1] / results["store port"][0]
    atomic_gain = results["atomicAdd port"][1] / results["atomicAdd port"][0]
    # FinePack helps the store port substantially, the atomic port not at all.
    assert store_gain > 1.5
    assert atomic_gain == pytest.approx(1.0, rel=0.02)
