"""Figure 11: average stores aggregated into one FinePack packet.

Shape targets from the paper: tens of stores per packet on average
(the paper reports a 42-store mean), with CT the clear outlier -- its
ray-interleaved corrections have minimal spatial locality, so packets
carry only a handful of stores.
"""

import numpy as np

from repro.analysis import format_table


def test_fig11_stores_per_packet(benchmark, suite_results, emit):
    per_workload = benchmark.pedantic(
        lambda: {
            name: res.runs["finepack"].packets.mean_stores_per_packet
            for name, res in suite_results.items()
        },
        rounds=1,
        iterations=1,
    )

    mean = float(np.mean(list(per_workload.values())))
    rows = [[name, v] for name, v in per_workload.items()]
    rows.append(["MEAN", mean])
    emit(
        "fig11_coalescing",
        format_table(
            "Figure 11: stores aggregated per FinePack packet (paper mean: 42)",
            ["workload", "stores/packet"],
            rows,
            float_fmt="{:.1f}",
        ),
    )

    # Suite mean in the tens of stores.
    assert 20 <= mean <= 90
    # CT is the low outlier.
    ct = per_workload["ct"]
    assert ct == min(per_workload.values())
    assert ct < 10
    # Everyone else achieves real aggregation.
    for name, v in per_workload.items():
        if name != "ct":
            assert v > 15, name
