"""Shared fixtures for the figure-reproduction benchmark harness.

The full-suite comparison (all 8 workloads x 6 paradigms + single-GPU
baselines) is computed once per session and shared by the Figure 9, 10
and 11 benches.  Each bench prints the paper-format table to stdout and
also writes it under ``benchmarks/results/`` so the numbers survive the
pytest run.
"""

from __future__ import annotations

import os
from pathlib import Path

import numpy as np
import pytest

from repro.core.config import FinePackConfig
from repro.interconnect.pcie import PCIE_GEN4, PCIeProtocol
from repro.run import TraceCache
from repro.sim.runner import ComparisonResult, ExperimentConfig, compare_paradigms
from repro.workloads import default_suite


@pytest.fixture
def protocol() -> PCIeProtocol:
    return PCIeProtocol(PCIE_GEN4)


@pytest.fixture
def config() -> FinePackConfig:
    return FinePackConfig()


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)

ALL_PARADIGMS = ("p2p", "dma", "finepack", "wc", "gps", "infinite")

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def experiment_config() -> ExperimentConfig:
    return ExperimentConfig(n_gpus=4, iterations=3, seed=7)


@pytest.fixture(scope="session")
def suite_results(experiment_config) -> dict[str, ComparisonResult]:
    """The paper's core experiment over the whole application suite.

    Runs through the grid executor: ``REPRO_BENCH_JOBS`` (default 1)
    fans the per-workload paradigm grids over worker processes, and one
    shared in-process trace cache keeps each workload's trace generated
    exactly once.  Metrics are identical at any job count.
    """
    jobs = int(os.environ.get("REPRO_BENCH_JOBS", "1"))
    cache = TraceCache(os.environ.get("REPRO_TRACE_CACHE") or None)
    results: dict[str, ComparisonResult] = {}
    for workload in default_suite():
        results[workload.name] = compare_paradigms(
            workload,
            paradigms=ALL_PARADIGMS,
            config=experiment_config,
            jobs=jobs,
            trace_cache=cache,
        )
    return results


@pytest.fixture(scope="session")
def emit():
    """Print a report table and persist it under benchmarks/results/."""
    RESULTS_DIR.mkdir(exist_ok=True)

    def _emit(name: str, text: str) -> None:
        print("\n" + text)
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")

    return _emit
