"""Figure 12 (and Table II): sensitivity to sub-header size.

Sweeps the sub-transaction header from 2 to 6 bytes (64 B to 256 GB
aggregation windows per Table II) across the workload suite.  Shape
targets: performance rises to a maximum at 4 bytes, changes little at
5, and degrades for tiny windows (2 bytes thrash the write queue).
"""

from repro.analysis import format_table
from repro.core.config import FinePackConfig, addressable_window
from repro.sim.paradigms import FinePackParadigm, make_paradigm
from repro.sim.runner import geomean
from repro.sim.system import MultiGPUSystem
from repro.workloads import default_suite

SUBHEADER_BYTES = (2, 3, 4, 5, 6)


def _sweep():
    speedups: dict[str, dict[int, float]] = {}
    for workload in default_suite():
        trace = workload.generate_trace(n_gpus=4, iterations=2, seed=7)
        single = workload.generate_trace(n_gpus=1, iterations=2, seed=7)
        t1 = (
            MultiGPUSystem.build(n_gpus=1)
            .run(single, make_paradigm("infinite"))
            .total_time_ns
        )
        row = {}
        for b in SUBHEADER_BYTES:
            cfg = FinePackConfig(subheader_bytes=b)
            system = MultiGPUSystem.build(n_gpus=4, finepack_config=cfg)
            m = system.run(trace, FinePackParadigm(cfg))
            row[b] = t1 / m.total_time_ns
        speedups[workload.name] = row
    return speedups


def test_fig12_subheader_sensitivity(benchmark, emit):
    speedups = benchmark.pedantic(_sweep, rounds=1, iterations=1)

    geo = {
        b: geomean([row[b] for row in speedups.values()]) for b in SUBHEADER_BYTES
    }
    rows = [
        [name, *(row[b] for b in SUBHEADER_BYTES)] for name, row in speedups.items()
    ]
    rows.append(["GEOMEAN", *(geo[b] for b in SUBHEADER_BYTES)])
    header_note = [
        ["window"]
        + [f"{addressable_window(b):,} B" for b in SUBHEADER_BYTES]
    ]
    table = format_table(
        "Table II: addressable window per sub-header size",
        ["", *(f"{b}B" for b in SUBHEADER_BYTES)],
        header_note,
    )
    table += "\n" + format_table(
        "Figure 12: FinePack speedup vs sub-header bytes",
        ["workload", *(f"{b}B" for b in SUBHEADER_BYTES)],
        rows,
        float_fmt="{:.2f}",
    )
    emit("fig12_subheader_sweep", table)

    # --- shape assertions -------------------------------------------
    # Tiny (64 B) windows are the worst configuration.
    assert geo[2] == min(geo.values())
    # The maximum sits at 4-5 bytes ...
    best = max(geo, key=geo.get)
    assert best in (4, 5)
    # ... with virtually no change between 4 and 5 ...
    assert abs(geo[4] - geo[5]) / geo[5] < 0.07
    # ... and no improvement from growing the header beyond 5.
    assert geo[6] <= geo[5] * 1.01
