"""Component micro-benchmarks (simulator throughput, not paper figures).

Times the hot paths of the reproduction itself -- remote-write-queue
insertion, packetization, warp coalescing, interval algebra -- so
regressions in the simulator's own performance are visible.
"""

import numpy as np

from repro.core.config import FinePackConfig
from repro.core.egress import FinePackEgress
from repro.core.packetizer import Packetizer
from repro.core.remote_write_queue import FlushReason, QueuePartition
from repro.gpu.coalescer import coalesce_stream
from repro.interconnect.pcie import PCIE_GEN4, PCIeProtocol
from repro.trace.intervals import IntervalSet

BASE = 1 << 34


def test_bench_queue_insert_throughput(benchmark):
    config = FinePackConfig()
    rng = np.random.default_rng(0)
    addrs = (BASE + rng.integers(0, 1 << 20, 4096) * 8).tolist()

    def insert_all():
        p = QueuePartition(config, dst=1)
        for a in addrs:
            p.insert(a, 8)
        p.flush(FlushReason.RELEASE)

    benchmark(insert_all)


def test_bench_finepack_egress_throughput(benchmark):
    config = FinePackConfig()
    protocol = PCIeProtocol(PCIE_GEN4)
    rng = np.random.default_rng(0)
    addrs = (BASE + rng.integers(0, 1 << 20, 4096) * 8).tolist()

    def run():
        eg = FinePackEgress(config, protocol, src=0, n_gpus=2)
        for a in addrs:
            eg.on_store(a, 8, 1, 0.0)
        eg.on_release(0.0)

    benchmark(run)


def test_bench_packetizer(benchmark, config, protocol):
    p = QueuePartition(config, dst=1)
    for i in range(64):
        p.insert(BASE + i * 128, 8)
    window = p.flush(FlushReason.RELEASE)
    packetizer = Packetizer(config, protocol)
    benchmark(lambda: packetizer.packetize(window))


def test_bench_warp_coalescer(benchmark, rng):
    addrs = rng.integers(0, 1 << 24, 100_000).astype(np.int64) * 4
    sizes = np.full(100_000, 8, dtype=np.int64)
    benchmark(lambda: coalesce_stream(addrs, sizes))


def test_bench_interval_algebra(benchmark, rng):
    a = IntervalSet.from_ranges(
        rng.integers(0, 1 << 22, 20_000).astype(np.int64),
        rng.integers(1, 64, 20_000).astype(np.int64),
    )
    b = IntervalSet.from_ranges(
        rng.integers(0, 1 << 22, 20_000).astype(np.int64),
        rng.integers(1, 64, 20_000).astype(np.int64),
    )
    benchmark(lambda: a.intersect(b).total_bytes)
