"""Figure 2: interconnect goodput vs. peer-to-peer store size.

Regenerates the percentage-of-useful-bytes curve for PCIe and NVLink
over the paper's 4 B - 16 KB size sweep.  Shape targets: sub-32 B
stores at or below ~half efficiency, near-1.0 goodput for multi-KB
transfers, and the NVLink byte-enable-flit non-monotonicity.
"""

from repro.analysis import format_table, goodput_curve


def test_fig02_goodput_curve(benchmark, emit):
    points = benchmark.pedantic(goodput_curve, rounds=1, iterations=1)

    rows = [
        [p.size, p.pcie, p.nvlink, "measured" if p.measured else "projected"]
        for p in points
    ]
    emit(
        "fig02_goodput",
        format_table(
            "Figure 2: goodput vs transfer size",
            ["size_B", "pcie", "nvlink", "regime"],
            rows,
        ),
    )

    by_size = {p.size: p for p in points}
    # Paper: 32 B transfers roughly half as efficient as >=128 B.
    assert by_size[32].pcie / by_size[128].pcie < 0.75
    assert by_size[32].pcie <= 0.55
    # Bulk transfers approach full efficiency.
    assert by_size[16384].pcie > 0.98
    assert by_size[16384].nvlink > 0.9
    # Goodput grows with size on PCIe.
    pcie = [p.pcie for p in points]
    assert pcie == sorted(pcie)
