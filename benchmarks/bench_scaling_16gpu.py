"""Sec. VI-B: scaling beyond 4 GPUs.

Runs the communication-heavy workloads on a 16-GPU, two-level PCIe 6.0
tree (the paper's projected system).  Shape targets: FinePack still
outperforms raw P2P stores (paper: 3x) and bulk DMA (paper: 1.9x), and
its per-GPU remote-write-queue SRAM stays at the paper's 120 kB.
"""

from repro.analysis import format_table
from repro.core.config import FinePackConfig
from repro.interconnect import PCIE_GEN6
from repro.sim.paradigms import make_paradigm
from repro.sim.runner import geomean
from repro.sim.system import MultiGPUSystem
from repro.workloads import ALSWorkload, HITWorkload, PagerankWorkload, SSSPWorkload

PARADIGMS = ("p2p", "dma", "finepack")


def _suite_16():
    # Communication-bound applications, scaled so 16 GPUs stay busy.
    return [
        PagerankWorkload(n=200_000, band_fraction=0.2),
        SSSPWorkload(n=200_000),
        ALSWorkload(n_users=32_000, n_items=8_000),
        HITWorkload(n=128),
    ]


def _run():
    rows = {}
    for workload in _suite_16():
        trace = workload.generate_trace(n_gpus=16, iterations=2, seed=7)
        single = workload.generate_trace(n_gpus=1, iterations=2, seed=7)
        t1 = (
            MultiGPUSystem.build(n_gpus=1)
            .run(single, make_paradigm("infinite"))
            .total_time_ns
        )
        row = {}
        for p in PARADIGMS:
            system = MultiGPUSystem.build(
                n_gpus=16, generation=PCIE_GEN6, two_level=True
            )
            row[p] = t1 / system.run(trace, make_paradigm(p)).total_time_ns
        rows[workload.name] = row
    return rows


def test_scaling_16_gpus(benchmark, emit):
    rows = benchmark.pedantic(_run, rounds=1, iterations=1)

    geo = {p: geomean([r[p] for r in rows.values()]) for p in PARADIGMS}
    table_rows = [[name, *(r[p] for p in PARADIGMS)] for name, r in rows.items()]
    table_rows.append(["GEOMEAN", *(geo[p] for p in PARADIGMS)])
    table = format_table(
        "Sec. VI-B: 16-GPU speedups over 1 GPU on PCIe 6.0 "
        "(paper: FinePack 3x over P2P, 1.9x over DMA)",
        ["workload", *PARADIGMS],
        table_rows,
        float_fmt="{:.2f}",
    )
    sram = FinePackConfig().queue_sram_bytes(16)
    table += f"\nremote write queue SRAM per GPU: {sram // 1024} kB (paper: 120 kB)"
    emit("scaling_16gpu", table)

    assert sram == 120 * 1024
    assert geo["finepack"] > geo["p2p"]
    assert geo["finepack"] > geo["dma"]
    # FinePack's lead over raw P2P widens on comm-bound apps at scale.
    assert geo["finepack"] / geo["p2p"] > 1.3
