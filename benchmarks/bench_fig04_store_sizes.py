"""Figure 4: size distribution of remote stores exiting the L1.

Traces every workload at 4 GPUs and buckets the L1-coalesced remote
store transactions by size.  Shape targets: the irregular applications
(pagerank, sssp, ct) emit predominantly sub-32 B transfers while the
stencils and HIT emit full 128 B lines, and the suite-wide share of
sub-32 B transfers is large (the paper reports 63% on average).
"""

import numpy as np

from repro.analysis import format_table
from repro.gpu import size_histogram
from repro.workloads import default_suite

BUCKETS = ("<=4B", "<=8B", "<=16B", "<=32B", "<=64B", "<=128B")


def _collect():
    out = {}
    for workload in default_suite():
        trace = workload.generate_trace(n_gpus=4, iterations=2, seed=7)
        sizes = trace.all_store_sizes()
        out[workload.name] = (size_histogram(sizes), sizes)
    return out


def test_fig04_store_size_distribution(benchmark, emit):
    data = benchmark.pedantic(_collect, rounds=1, iterations=1)

    rows = []
    small_shares = {}
    for name, (hist, sizes) in data.items():
        small = sum(hist.get(b, 0.0) for b in BUCKETS[:4])
        small_shares[name] = small
        rows.append(
            [name, *(hist.get(b, 0.0) for b in BUCKETS), float(np.mean(sizes))]
        )
    emit(
        "fig04_store_sizes",
        format_table(
            "Figure 4: remote store sizes exiting the L1",
            ["workload", *BUCKETS, "mean_B"],
            rows,
        ),
    )

    # Irregular applications are dominated by sub-32 B stores.
    for name in ("pagerank", "sssp", "ct"):
        assert small_shares[name] > 0.9, name
    # Regular stencils coalesce to full cache lines.
    for name in ("jacobi", "diffusion", "hit"):
        assert small_shares[name] < 0.1, name
    # Suite-wide average of small transfers is large (paper: 63%).
    mean_small = float(np.mean(list(small_shares.values())))
    assert mean_small > 0.35
