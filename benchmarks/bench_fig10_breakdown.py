"""Figure 10: breakdown of bytes on the wire, normalized to bulk DMA.

Shape targets from the paper: bulk DMA has negligible protocol overhead
but large wasted (over-transferred) bytes on the irregular apps; raw
P2P stores move far more total data than FinePack (paper: 2.7x) with
protocol overhead the dominant waste; FinePack also moves less than
bulk DMA in aggregate (paper: 1.3x) and ~24% less than cacheline write
combining alone.
"""

from repro.analysis import breakdown_rows, data_reduction_factors, format_table
from repro.sim.runner import geomean


def test_fig10_byte_breakdown(benchmark, suite_results, emit):
    rows = benchmark.pedantic(
        lambda: [r for res in suite_results.values() for r in breakdown_rows(res)],
        rounds=1,
        iterations=1,
    )
    table = format_table(
        "Figure 10: wire bytes normalized to bulk DMA",
        ["workload", "paradigm", "useful", "overhead", "wasted", "total"],
        rows,
    )

    reductions = {
        name: data_reduction_factors(res) for name, res in suite_results.items()
    }
    geo_p2p = geomean([r["p2p"] for r in reductions.values()])
    geo_dma = geomean([r["dma"] for r in reductions.values()])
    geo_wc = geomean([r["wc"] for r in reductions.values()])
    table += "\n" + format_table(
        "FinePack data-reduction factors (geomean)",
        ["vs", "factor", "paper"],
        [
            ["p2p", geo_p2p, "2.7x"],
            ["dma", geo_dma, "1.3x"],
            ["write-combining", geo_wc, "~1.24x"],
        ],
        float_fmt="{:.2f}",
    )
    emit("fig10_breakdown", table)

    # --- shape assertions -------------------------------------------
    assert geo_p2p > 1.3          # FinePack moves less than raw P2P
    assert geo_dma > 0.9          # ... and no more than bulk DMA overall
    assert geo_wc > 1.05          # ... and less than write combining alone

    by_key = {(r[0], r[1]): r for r in rows}
    for name in suite_results:
        useful, overhead, wasted, total = by_key[(name, "dma")][2:]
        # Bulk DMA: negligible protocol overhead.
        assert overhead < 0.05 * total, name
    for name in ("pagerank", "sssp", "als"):
        # Irregular apps: DMA over-transfers (wasted bytes dominate) ...
        assert by_key[(name, "dma")][4] > 0.3, name
        # ... and raw P2P pays heavy protocol overhead.
        p2p = by_key[(name, "p2p")]
        assert p2p[3] > 0.5 * p2p[2], name
    # On the heavy-redundancy app, P2P moves several times more data
    # than FinePack (paper: order-of-magnitude class gaps).
    sssp = suite_results["sssp"]
    assert sssp.runs["p2p"].wire_bytes > 2.5 * sssp.runs["finepack"].wire_bytes
