"""Counter, gauge, histogram and registry unit tests."""

import pytest

from repro.obs import Counter, CounterRegistry, Gauge, Histogram


class TestCounter:
    def test_monotonic(self):
        c = Counter("x")
        c.inc()
        c.inc(41)
        assert c.value == 42

    def test_decrement_rejected(self):
        c = Counter("x")
        with pytest.raises(ValueError, match="cannot decrease"):
            c.inc(-1)


class TestGauge:
    def test_moves_both_ways(self):
        g = Gauge("depth")
        g.set(10)
        g.add(-4)
        assert g.value == 6


class TestHistogram:
    def test_bucketing(self):
        h = Histogram("sizes", bounds=(4, 8, 16))
        for v in (1, 4, 5, 100):
            h.observe(v)
        assert h.total == 4
        assert h.mean == pytest.approx((1 + 4 + 5 + 100) / 4)
        assert h.nonzero_buckets() == {"<=4": 2, "<=8": 1, ">16": 1}

    def test_empty_mean_zero(self):
        assert Histogram("x").mean == 0.0

    def test_default_bounds_power_of_two(self):
        h = Histogram("x")
        assert h.bounds[0] == 1
        assert all(b == 1 << i for i, b in enumerate(h.bounds))

    def test_unsorted_bounds_rejected(self):
        with pytest.raises(ValueError, match="strictly increasing"):
            Histogram("x", bounds=(8, 4))


class TestRegistry:
    def test_create_or_get_returns_same_object(self):
        reg = CounterRegistry()
        assert reg.counter("a") is reg.counter("a")
        assert reg.gauge("b") is reg.gauge("b")
        assert reg.histogram("c") is reg.histogram("c")

    def test_snapshot_sorted_scalars(self):
        reg = CounterRegistry()
        reg.counter("zeta").inc(3)
        reg.counter("alpha").inc(1)
        reg.gauge("mid").set(2)
        snap = reg.snapshot()
        assert snap == {"alpha": 1, "zeta": 3, "mid": 2}
        # counters first (sorted), then gauges (sorted) -- stable order
        # is what makes exports byte-deterministic.
        assert list(snap) == ["alpha", "zeta", "mid"]

    def test_histogram_summary(self):
        reg = CounterRegistry()
        reg.histogram("sz").observe(3)
        summary = reg.histogram_summary()
        assert summary["sz"]["total"] == 1
        assert summary["sz"]["mean"] == 3
        assert summary["sz"]["buckets"] == {"<=4": 1}
