"""Exporter tests: Chrome trace validity, JSONL round-trip, determinism."""

import io
import json

import pytest

from repro.obs import (
    EventKind,
    TraceSchemaError,
    Tracer,
    chrome_trace_dict,
    read_jsonl,
    validate_chrome_trace,
    validate_chrome_trace_file,
    write_chrome_trace,
    write_jsonl,
)
from repro.sim.runner import ExperimentConfig, run_workload
from repro.workloads import JacobiWorkload


def traced_run(iterations=1):
    tracer = Tracer()
    run_workload(
        JacobiWorkload(n=256),
        "finepack",
        ExperimentConfig(n_gpus=2, iterations=iterations),
        tracer=tracer,
    )
    return tracer


@pytest.fixture(scope="module")
def tracer():
    return traced_run()


class TestChromeTrace:
    def test_valid_and_loads(self, tracer, tmp_path):
        path = tmp_path / "trace.json"
        obj = write_chrome_trace(str(path), tracer)
        validate_chrome_trace(obj)
        reloaded = validate_chrome_trace_file(str(path))
        assert reloaded == json.loads(json.dumps(obj))

    def test_phases_match_kinds(self, tracer):
        obj = chrome_trace_dict(tracer)
        phases = {e["cat"]: e["ph"] for e in obj["traceEvents"] if "cat" in e}
        assert phases["link_tx"] == "X"
        assert phases["kernel"] == "X"
        assert phases["msg_injected"] == "i"
        assert phases["counter_sample"] == "C"

    def test_tracks_become_named_threads(self, tracer):
        obj = chrome_trace_dict(tracer)
        thread_names = {
            e["args"]["name"]
            for e in obj["traceEvents"]
            if e["ph"] == "M" and e["name"] == "thread_name"
        }
        assert "system" in thread_names
        assert any(t.startswith("gpu") for t in thread_names)
        assert any(t.startswith("flow ") for t in thread_names)

    def test_multiple_tracers_merge_as_processes(self, tracer):
        other = traced_run(iterations=2)
        obj = chrome_trace_dict({"a": tracer, "b": other}, metadata={"k": 1})
        pids = {e["pid"] for e in obj["traceEvents"]}
        assert pids == {0, 1}
        assert set(obj["metadata"]["runs"]) == {"a", "b"}
        assert obj["metadata"]["k"] == 1

    def test_timestamps_are_microseconds(self, tracer):
        obj = chrome_trace_dict(tracer)
        spans = [e for e in obj["traceEvents"] if e["ph"] == "X"]
        native_max = max(e.end_ns for e in tracer.events)
        assert max(e["ts"] + e["dur"] for e in spans) <= native_max * 1e-3 + 1e-9

    def test_accepts_file_object(self, tracer):
        buf = io.StringIO()
        write_chrome_trace(buf, tracer)
        validate_chrome_trace(json.loads(buf.getvalue()))


class TestValidator:
    def test_rejects_non_dict(self):
        with pytest.raises(TraceSchemaError):
            validate_chrome_trace([])

    def test_rejects_missing_events(self):
        with pytest.raises(TraceSchemaError, match="traceEvents"):
            validate_chrome_trace({})

    def test_rejects_bad_phase(self):
        bad = {"traceEvents": [{"name": "x", "ph": "Z", "ts": 0, "pid": 0, "tid": 0}]}
        with pytest.raises(TraceSchemaError, match="phase"):
            validate_chrome_trace(bad)

    def test_rejects_span_without_duration(self):
        bad = {"traceEvents": [{"name": "x", "ph": "X", "ts": 0, "pid": 0, "tid": 0}]}
        with pytest.raises(TraceSchemaError, match="dur"):
            validate_chrome_trace(bad)

    def test_rejects_non_numeric_counter(self):
        bad = {
            "traceEvents": [
                {"name": "c", "ph": "C", "ts": 0, "pid": 0, "tid": 0, "args": {"v": "hi"}}
            ]
        }
        with pytest.raises(TraceSchemaError, match="numeric"):
            validate_chrome_trace(bad)


class TestJsonl:
    def test_round_trip(self, tracer, tmp_path):
        path = tmp_path / "events.jsonl"
        write_jsonl(str(path), tracer)
        events = read_jsonl(str(path))
        assert len(events) == len(tracer.events)
        for a, b in zip(events, tracer.events):
            assert a.kind is b.kind
            assert a.time_ns == b.time_ns
            assert a.track == b.track
            assert a.dur_ns == b.dur_ns
            assert a.attrs == b.attrs

    def test_round_trip_supports_replay(self, tracer):
        from repro.obs import InvariantChecker

        buf = io.StringIO()
        write_jsonl(buf, tracer)
        buf.seek(0)
        checker = InvariantChecker.replay(read_jsonl(buf))
        assert checker.events_checked == len(tracer.events)
        assert checker.barriers_checked >= 1


class TestDeterminism:
    def test_identical_runs_export_identically(self):
        a, b = io.StringIO(), io.StringIO()
        write_chrome_trace(a, traced_run())
        write_chrome_trace(b, traced_run())
        assert a.getvalue() == b.getvalue()

    def test_different_configs_differ(self, tracer):
        a, b = io.StringIO(), io.StringIO()
        write_chrome_trace(a, tracer)
        write_chrome_trace(b, traced_run(iterations=2))
        assert a.getvalue() != b.getvalue()
