"""Invariant-checker tests.

Two halves: hand-built event streams exercising every violation class,
and whole-simulation property coverage -- the checker must stay silent
on every workload under every paradigm, and must catch a deliberately
corrupted stream.
"""

import pytest

from repro.obs import EventKind, InvariantChecker, InvariantViolation, TraceEvent, Tracer
from repro.sim.paradigms import PARADIGMS
from repro.sim.runner import ExperimentConfig, run_workload
from repro.workloads import small_suite


def ev(kind, time_ns, track="t", name="x", dur_ns=0.0, **attrs):
    return TraceEvent(
        kind=kind, time_ns=time_ns, track=track, name=name, dur_ns=dur_ns, attrs=attrs
    )


def inject(mid, t=0.0, payload=64):
    return ev(
        EventKind.MSG_INJECTED, t, track="flow", msg_id=mid, payload_bytes=payload
    )


def deliver(mid, t=1.0, payload=64):
    return ev(
        EventKind.MSG_DELIVERED, t, track="flow", msg_id=mid, payload_bytes=payload
    )


def drain(mid, t=2.0):
    return ev(EventKind.MSG_DRAINED, t, track="flow", msg_id=mid)


class TestMessageLifecycle:
    def test_clean_lifecycle_passes(self):
        checker = InvariantChecker.replay([inject(0), deliver(0), drain(0)])
        assert checker.events_checked == 3

    def test_double_injection(self):
        with pytest.raises(InvariantViolation, match="injected twice"):
            InvariantChecker.replay([inject(0), inject(0)])

    def test_delivery_without_injection(self):
        with pytest.raises(InvariantViolation, match="without injection"):
            InvariantChecker.replay([deliver(7)])

    def test_delivery_before_injection_time(self):
        with pytest.raises(InvariantViolation, match="before its"):
            InvariantChecker.replay([inject(0, t=10.0), deliver(0, t=5.0)])

    def test_drain_without_delivery(self):
        with pytest.raises(InvariantViolation, match="drained without delivery"):
            InvariantChecker.replay([inject(0), drain(0)])

    def test_undrained_message_caught_at_finish(self):
        with pytest.raises(InvariantViolation, match="never\\s+drained"):
            InvariantChecker.replay([inject(0), deliver(0)])

    def test_dropped_messages_conserve(self):
        # Drops only conserve bytes legally in runs that declared faults
        # (tests/faults/test_resilience.py covers the illegal case).
        events = [
            ev(EventKind.FAULT_INJECTED, 0.0, track="faults",
               fault="link_fail", link="*"),
            inject(0),
            ev(EventKind.MSG_DROPPED, 1.0, track="flow", msg_id=0, payload_bytes=64),
        ]
        checker = InvariantChecker.replay(events)
        assert checker.events_checked == 3


class TestConservationAtBarriers:
    def test_inflight_at_barrier(self):
        events = [inject(0), ev(EventKind.BARRIER, 5.0, track="system", iteration=0)]
        with pytest.raises(InvariantViolation, match="in flight at barrier"):
            InvariantChecker.replay(events)

    def test_rwq_not_empty_at_barrier(self):
        events = [
            ev(
                EventKind.RWQ_ENQUEUE,
                1.0,
                track="rwq gpu0->gpu1",
                addr=0,
                size=4,
                pending_entries=2,
            ),
            ev(EventKind.BARRIER, 5.0, track="system", iteration=0),
        ]
        with pytest.raises(InvariantViolation, match="write queue not empty"):
            InvariantChecker.replay(events)

    def test_negative_rwq_occupancy(self):
        event = ev(
            EventKind.RWQ_ENQUEUE,
            1.0,
            track="rwq gpu0->gpu1",
            addr=0,
            size=4,
            pending_entries=-1,
        )
        with pytest.raises(InvariantViolation, match="negative RWQ"):
            InvariantChecker.replay([event])


class TestLinksAndTime:
    def test_overlapping_transmissions(self):
        events = [
            ev(EventKind.LINK_TX, 0.0, track="gpu0->sw0", dur_ns=10.0, wire_bytes=64),
            ev(EventKind.LINK_TX, 5.0, track="gpu0->sw0", dur_ns=10.0, wire_bytes=64),
        ]
        with pytest.raises(InvariantViolation, match="while busy"):
            InvariantChecker.replay(events)

    def test_distinct_links_may_overlap(self):
        events = [
            ev(EventKind.LINK_TX, 0.0, track="gpu0->sw0", dur_ns=10.0, wire_bytes=64),
            ev(EventKind.LINK_TX, 5.0, track="gpu1->sw0", dur_ns=10.0, wire_bytes=64),
        ]
        InvariantChecker.replay(events)

    def test_negative_credit_occupancy(self):
        event = ev(
            EventKind.LINK_TX,
            0.0,
            track="gpu0->sw0",
            dur_ns=1.0,
            wire_bytes=64,
            credit_bytes=-8,
        )
        with pytest.raises(InvariantViolation, match="negative flow-control"):
            InvariantChecker.replay([event])

    def test_engine_time_must_be_monotonic(self):
        checker = InvariantChecker()
        checker.engine_time(10.0)
        with pytest.raises(InvariantViolation, match="backwards"):
            checker.engine_time(9.0)

    def test_iterations_must_close_in_order(self):
        events = [
            ev(EventKind.ITERATION, 0.0, track="system", dur_ns=1.0, index=0),
            ev(EventKind.ITERATION, 1.0, track="system", dur_ns=1.0, index=2),
        ]
        with pytest.raises(InvariantViolation, match="iteration 2 closed"):
            InvariantChecker.replay(events)

    def test_violation_carries_event_window(self):
        try:
            InvariantChecker.replay([inject(0), deliver(9)])
        except InvariantViolation as exc:
            assert exc.event is not None
            assert len(exc.window) == 2
            assert "recent events" in str(exc)
        else:
            pytest.fail("expected a violation")


SMALL = {w.name: w for w in small_suite()}


@pytest.mark.parametrize("n_gpus", [2, 4])
@pytest.mark.parametrize("name", sorted(SMALL))
def test_every_workload_passes_under_every_paradigm(name, n_gpus):
    """The property the whole layer exists to defend: real simulations
    never violate an invariant, for any workload x paradigm x scale."""
    workload = SMALL[name]
    config = ExperimentConfig(n_gpus=n_gpus, iterations=2)
    trace = workload.generate_trace(n_gpus=n_gpus, iterations=2, seed=7)
    for paradigm in sorted(PARADIGMS):
        tracer = Tracer()  # online InvariantChecker attached by default
        run_workload(workload, paradigm, config, trace=trace, tracer=tracer)
        assert tracer.checker is not None
        assert tracer.checker.events_checked == len(tracer.events)
        assert tracer.checker.barriers_checked == 2, paradigm


def test_corrupted_stream_is_caught():
    """Dropping one delivery event from a real recorded stream must
    break conservation at the next barrier."""
    tracer = Tracer()
    run_workload(
        SMALL["jacobi"],
        "finepack",
        ExperimentConfig(n_gpus=2, iterations=1),
        tracer=tracer,
    )
    victim = next(e for e in tracer.events if e.kind is EventKind.MSG_DELIVERED)
    corrupted = [e for e in tracer.events if e is not victim]
    with pytest.raises(InvariantViolation):
        InvariantChecker.replay(corrupted)
