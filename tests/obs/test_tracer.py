"""Tracer unit tests: event emission, counters, cadence sampling."""

import pytest

from repro.interconnect.message import MessageKind, WireMessage
from repro.obs import EventKind, Tracer


def msg(src=0, dst=1, payload=64, overhead=30, stores=4):
    return WireMessage(
        src=src,
        dst=dst,
        payload_bytes=payload,
        overhead_bytes=overhead,
        kind=MessageKind.FINEPACK,
        stores_packed=stores,
    )


class TestMessageLifecycle:
    def test_inject_deliver_drain(self):
        t = Tracer(sample_every_ns=None)
        m = msg()
        mid = t.message_injected(m, 10.0)
        t.message_delivered(mid, m, 20.0)
        t.message_drained(mid, m, 25.0)
        t.finish()
        kinds = [e.kind for e in t.events]
        assert kinds == [
            EventKind.MSG_INJECTED,
            EventKind.MSG_DELIVERED,
            EventKind.MSG_DRAINED,
        ]
        assert t.events[0].track == "flow gpu0->gpu1"
        assert t.events[0].attrs["msg_id"] == mid

    def test_msg_ids_unique_and_sequential(self):
        t = Tracer(sample_every_ns=None)
        ids = [t.message_injected(msg(), float(i)) for i in range(5)]
        assert ids == list(range(5))

    def test_counters_track_bytes(self):
        t = Tracer(sample_every_ns=None)
        m = msg(payload=100, overhead=28)
        mid = t.message_injected(m, 0.0)
        snap = t.counters.snapshot()
        assert snap["payload_bytes_injected"] == 100
        assert snap["wire_bytes_injected"] == 128
        assert snap["payload_bytes_in_flight"] == 100
        t.message_delivered(mid, m, 1.0)
        snap = t.counters.snapshot()
        assert snap["payload_bytes_delivered"] == 100
        assert snap["payload_bytes_in_flight"] == 0

    def test_histograms_observe_packets(self):
        t = Tracer(sample_every_ns=None)
        t.message_injected(msg(payload=60, overhead=4, stores=7), 0.0)
        h = t.counters.histograms["stores_per_packet"]
        assert h.total == 1 and h.sum == 7


class TestSampling:
    def test_cadence_emits_counter_samples(self):
        t = Tracer(sample_every_ns=100.0, check_invariants=False)
        for i in range(4):
            t.message_injected(msg(), 90.0 + i * 100.0)
        samples = [e for e in t.events if e.kind is EventKind.COUNTER_SAMPLE]
        assert len(samples) == 3  # crossings at 100, 200, 300
        assert all(e.track == "counters" for e in samples)
        # samples carry the registry snapshot at the crossing
        assert samples[0].attrs["messages_injected"] == 2

    def test_big_jump_emits_single_sample(self):
        t = Tracer(sample_every_ns=10.0, check_invariants=False)
        t.message_injected(msg(), 5.0)
        t.message_injected(msg(), 1_000.0)
        samples = [e for e in t.events if e.kind is EventKind.COUNTER_SAMPLE]
        assert len(samples) == 1

    def test_sampling_disabled(self):
        t = Tracer(sample_every_ns=None, check_invariants=False)
        t.message_injected(msg(), 1e9)
        assert all(e.kind is not EventKind.COUNTER_SAMPLE for e in t.events)

    def test_invalid_cadence_rejected(self):
        with pytest.raises(ValueError):
            Tracer(sample_every_ns=0)

    def test_finish_emits_final_sample_once(self):
        t = Tracer(sample_every_ns=1e6, check_invariants=False)
        t.message_injected(msg(), 3.0)
        t.finish()
        t.finish()  # idempotent
        samples = [e for e in t.events if e.kind is EventKind.COUNTER_SAMPLE]
        assert len(samples) == 1


class TestSpansAndStructure:
    def test_kernel_and_barrier_spans(self):
        t = Tracer(sample_every_ns=None, check_invariants=False)
        t.kernel(2, 0.0, 50.0, iteration=0)
        t.barrier(0, 60.0, 62.0)
        t.iteration(0, 0.0, 62.0)
        kernel, barrier, iteration = t.events
        assert kernel.track == "gpu2" and kernel.dur_ns == 50.0
        assert barrier.attrs == {"iteration": 0}
        assert iteration.end_ns == 62.0

    def test_rwq_pending_gauge_tracks_occupancy(self):
        t = Tracer(sample_every_ns=None, check_invariants=False)
        t.rwq_enqueue(0, 1, addr=0x100, size=4, time_ns=0.0, pending_entries=1)
        t.rwq_enqueue(0, 1, addr=0x200, size=4, time_ns=1.0, pending_entries=2)
        t.rwq_enqueue(0, 2, addr=0x300, size=4, time_ns=2.0, pending_entries=1)
        assert t.counters.gauges["rwq_pending_entries"].value == 3

    def test_subscriber_sees_every_event(self):
        t = Tracer(sample_every_ns=None, check_invariants=False)
        seen = []
        t.subscribe(seen.append)
        t.fence_release(0, 1.0)
        t.kernel(0, 0.0, 1.0, iteration=0)
        assert [e.kind for e in seen] == [EventKind.FENCE_RELEASE, EventKind.KERNEL]

    def test_summary_rollup(self):
        t = Tracer(sample_every_ns=None)
        m = msg()
        mid = t.message_injected(m, 5.0)
        t.message_delivered(mid, m, 9.0)
        t.message_drained(mid, m, 9.5)
        s = t.summary()
        assert s["events"] == 3
        assert s["max_time_ns"] == 9.5
        assert s["counters"]["messages_injected"] == 1
        assert "packet_wire_bytes" in s["histograms"]
