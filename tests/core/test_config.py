"""FinePack configuration tests (paper Tables II and III)."""

import pytest

from repro.core.config import (
    DEFAULT_CONFIG,
    LENGTH_FIELD_BITS,
    FinePackConfig,
    addressable_window,
    offset_bits_for,
)


class TestTableII:
    """The sub-header size <-> addressable range table."""

    @pytest.mark.parametrize(
        "subheader_bytes,offset_bits,window",
        [
            (2, 6, 64),
            (3, 14, 16 * 1024),
            (4, 22, 4 * 1024 * 1024),
            (5, 30, 1024**3),
            (6, 38, 256 * 1024**3),
        ],
    )
    def test_rows(self, subheader_bytes, offset_bits, window):
        assert offset_bits_for(subheader_bytes) == offset_bits
        assert addressable_window(subheader_bytes) == window

    def test_length_field_always_10_bits(self):
        assert LENGTH_FIELD_BITS == 10

    def test_one_byte_header_impossible(self):
        with pytest.raises(ValueError):
            offset_bits_for(1)


class TestTableIIIDefaults:
    """FinePack structure parameters from Table III."""

    def test_defaults(self):
        cfg = DEFAULT_CONFIG
        assert cfg.subheader_bytes == 5
        assert cfg.offset_bits == 30
        assert cfg.max_payload_bytes == 4096
        assert cfg.entry_bytes == 128

    def test_192_entries_on_4_gpu_system(self):
        """Table III: 192 remote-write-queue entries (3 partitions x 64)."""
        cfg = DEFAULT_CONFIG
        assert 3 * cfg.queue_entries_per_partition == 192

    def test_16_gpu_sram_is_120kB(self):
        """Sec. VI-B: 120 kB of queue data storage per GPU at 16 GPUs."""
        assert DEFAULT_CONFIG.queue_sram_bytes(16) == 120 * 1024


class TestValidation:
    def test_subheader_bounds(self):
        with pytest.raises(ValueError):
            FinePackConfig(subheader_bytes=1)
        with pytest.raises(ValueError):
            FinePackConfig(subheader_bytes=9)

    def test_positive_payload(self):
        with pytest.raises(ValueError):
            FinePackConfig(max_payload_bytes=0)

    def test_entry_power_of_two(self):
        with pytest.raises(ValueError):
            FinePackConfig(entry_bytes=100)

    def test_entry_must_fit_payload(self):
        with pytest.raises(ValueError):
            FinePackConfig(max_payload_bytes=64, entry_bytes=128)

    def test_sram_needs_multiple_gpus(self):
        with pytest.raises(ValueError):
            DEFAULT_CONFIG.queue_sram_bytes(1)


class TestWindowMath:
    def test_window_base_masks_low_bits(self):
        cfg = FinePackConfig(subheader_bytes=3)  # 16 KB window
        assert cfg.window_base(0x12345) == 0x10000

    def test_in_window(self):
        cfg = FinePackConfig(subheader_bytes=3)
        base = cfg.window_base(0x10000)
        assert cfg.in_window(base, 0x13FFF)
        assert not cfg.in_window(base, 0x14000)

    def test_max_length_value(self):
        assert DEFAULT_CONFIG.max_length_value == 1023

    def test_partition_data_bytes(self):
        assert DEFAULT_CONFIG.partition_data_bytes == 64 * 128
