"""Config-packet alternate design tests (paper Sec. VI-B)."""

import pytest

from repro.core.alt_designs import ConfigPacketDesign
from repro.core.packet import FinePackPacket, SubTransaction


@pytest.fixture
def design(config, protocol):
    return ConfigPacketDesign(config, protocol)


def window_packet(n_stores: int, store_len: int = 8) -> FinePackPacket:
    return FinePackPacket(
        base_addr=0,
        subs=[
            SubTransaction(offset=i * 128, length=store_len)
            for i in range(n_stores)
        ],
        stores_absorbed=n_stores,
    )


class TestConfigPacketDesign:
    def test_config_packet_cost(self, design):
        assert design.config_packet_bytes == 30  # full TLP minus DLLP share

    def test_per_store_pays_own_crcs(self, design):
        """Each slim packet still carries seq + LCRC + ECRC (the 10-byte
        cost the paper quotes) plus framing and its slim header."""
        overhead = design.per_store_overhead(8)
        assert overhead >= 4 + 2 + 4 + 4 + design.config.subheader_bytes

    def test_less_efficient_than_finepack_at_42_stores(self, design):
        """Sec. VI-B: ~18% less efficient for a typical payload-full
        FinePack packet (42 stores filling the 4 KB payload)."""
        store_len = design.config.max_payload_bytes // 42 - design.config.subheader_bytes
        packet = window_packet(42, store_len=store_len)
        ratio = design.efficiency_vs_finepack(packet)
        assert 1.08 <= ratio <= 1.30

    def test_much_worse_for_tiny_stores(self, design):
        """For 8 B scatters the per-store CRCs dominate completely."""
        ratio = design.efficiency_vs_finepack(window_packet(42, store_len=8))
        assert ratio > 1.8

    def test_inefficiency_grows_with_store_count(self, design):
        r8 = design.efficiency_vs_finepack(window_packet(8))
        r64 = design.efficiency_vs_finepack(window_packet(64))
        assert r64 >= r8

    def test_wire_cost_components(self, design):
        payload, overhead = design.wire_cost(window_packet(10))
        assert payload == 80
        assert overhead == design.config_packet_bytes + 10 * design.per_store_overhead(8)
