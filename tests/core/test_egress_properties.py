"""Property-based invariants shared by every egress engine."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import FinePackConfig
from repro.core.egress import (
    FinePackEgress,
    PassthroughEgress,
    WriteCombiningEgress,
)
from repro.interconnect.pcie import PCIE_GEN4, PCIeProtocol
from repro.trace.intervals import IntervalSet

BASE = 1 << 34


@st.composite
def store_streams(draw):
    n = draw(st.integers(1, 120))
    return [
        (
            draw(st.integers(0, 1 << 14)),
            draw(st.integers(1, 32)),
        )
        for _ in range(n)
    ]


def delivered_union(msgs) -> IntervalSet:
    starts, lens = [], []
    for m in msgs:
        single = m.meta.get("range1")
        if single is not None:
            starts.append(single[0])
            lens.append(single[1])
        else:
            s, l = m.meta["ranges"]
            starts.extend(np.asarray(s).tolist())
            lens.extend(np.asarray(l).tolist())
    return IntervalSet.from_ranges(starts, lens)


def engines():
    protocol = PCIeProtocol(PCIE_GEN4)
    yield "passthrough", PassthroughEgress(protocol, src=0)
    yield "wc", WriteCombiningEgress(protocol, src=0, n_gpus=2)
    yield "wc-sector", WriteCombiningEgress(
        protocol, src=0, n_gpus=2, sector_bytes=32
    )
    yield "finepack", FinePackEgress(FinePackConfig(), protocol, src=0, n_gpus=2)
    yield "finepack-multiwindow", FinePackEgress(
        FinePackConfig(subheader_bytes=3), protocol, src=0, n_gpus=2, windows=4
    )


class TestByteCoverage:
    @given(stream=store_streams())
    @settings(max_examples=40, deadline=None)
    def test_delivered_bytes_cover_stored_bytes(self, stream):
        """Every engine must deliver (at least) every byte stored --
        under-delivery is a correctness bug; over-delivery is allowed
        only for sector/line-granular engines."""
        stored = IntervalSet.from_ranges(
            [BASE + a for a, _ in stream], [s for _, s in stream]
        )
        for name, engine in engines():
            msgs = []
            for addr, size in stream:
                msgs += engine.on_store(BASE + addr, size, 1, 0.0)
            msgs += engine.on_release(0.0)
            union = delivered_union(msgs)
            missing = stored.difference(union)
            assert not missing, f"{name} lost bytes: {missing.starts[:3]}"

    @given(stream=store_streams())
    @settings(max_examples=40, deadline=None)
    def test_exact_engines_never_overdeliver(self, stream):
        stored = IntervalSet.from_ranges(
            [BASE + a for a, _ in stream], [s for _, s in stream]
        )
        for name, engine in engines():
            if name in ("wc-sector",):
                continue  # sector rounding over-delivers by design
            msgs = []
            for addr, size in stream:
                msgs += engine.on_store(BASE + addr, size, 1, 0.0)
            msgs += engine.on_release(0.0)
            extra = delivered_union(msgs).difference(stored)
            assert not extra, f"{name} invented bytes"

    @given(stream=store_streams())
    @settings(max_examples=30, deadline=None)
    def test_release_leaves_nothing(self, stream):
        for name, engine in engines():
            for addr, size in stream:
                engine.on_store(BASE + addr, size, 1, 0.0)
            engine.on_release(0.0)
            assert engine.on_release(0.0) == [], name


class TestMultiWindowEquivalence:
    @given(stream=store_streams())
    @settings(max_examples=30, deadline=None)
    def test_windows_1_matches_plain_partition(self, stream):
        """A multi-window engine with windows=1 is byte-identical to
        the plain design."""
        protocol = PCIeProtocol(PCIE_GEN4)
        cfg = FinePackConfig(subheader_bytes=3)
        plain = FinePackEgress(cfg, protocol, src=0, n_gpus=2, windows=1)
        multi = FinePackEgress(cfg, protocol, src=0, n_gpus=2, windows=1)
        a, b = [], []
        for addr, size in stream:
            a += plain.on_store(BASE + addr, size, 1, 0.0)
            b += multi.on_store(BASE + addr, size, 1, 0.0)
        a += plain.on_release(0.0)
        b += multi.on_release(0.0)
        assert [m.wire_bytes for m in a] == [m.wire_bytes for m in b]
        assert [m.stores_packed for m in a] == [m.stores_packed for m in b]

    @given(stream=store_streams())
    @settings(max_examples=30, deadline=None)
    def test_multi_window_never_loses_payload(self, stream):
        protocol = PCIeProtocol(PCIE_GEN4)
        cfg = FinePackConfig(subheader_bytes=3)
        engine = FinePackEgress(cfg, protocol, src=0, n_gpus=2, windows=4)
        stored = IntervalSet.from_ranges(
            [BASE + a for a, _ in stream], [s for _, s in stream]
        )
        msgs = []
        for addr, size in stream:
            msgs += engine.on_store(BASE + addr, size, 1, 0.0)
        msgs += engine.on_release(0.0)
        assert not stored.difference(delivered_union(msgs))
