"""Memory-model conformance: FinePack must be invisible to software.

Random store/fence streams are pushed through the full FinePack path
(remote write queue -> packetizer -> wire encode -> de-packetizer) and
the resulting memory image at the receiver must equal the last-writer-
wins image of the program-order stream -- exactly what the GPU's weak
memory model guarantees software at synchronization points.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import FinePackConfig
from repro.core.depacketizer import Depacketizer
from repro.core.egress import FinePackEgress
from repro.interconnect.message import MessageKind
from repro.interconnect.pcie import PCIE_GEN4, PCIeProtocol

BASE = 1 << 34
REGION = 1 << 16


@st.composite
def programs(draw):
    """A random program: stores (addr, size) and fence points."""
    n = draw(st.integers(1, 150))
    ops = []
    for _ in range(n):
        if draw(st.booleans()) or len(ops) == 0:
            addr = draw(st.integers(0, REGION - 33))
            size = draw(st.integers(1, 32))
            ops.append(("store", addr, size))
        else:
            ops.append(("fence", 0, 0))
    return ops


def run_program(ops, config) -> tuple[dict[int, int], dict[int, int]]:
    """Returns (reference_image, delivered_image) keyed by address."""
    protocol = PCIeProtocol(PCIE_GEN4)
    egress = FinePackEgress(config, protocol, src=0, n_gpus=2)
    depack = Depacketizer(config)
    reference: dict[int, int] = {}
    delivered: dict[int, int] = {}
    messages = []

    def apply_messages(msgs):
        # PCIe delivers posted writes in order; apply them in sequence.
        for msg in msgs:
            assert msg.kind is MessageKind.FINEPACK
            packet = msg.meta["packet"]
            raw = packet.encode_payload(config)
            for s in depack.decode_wire_payload(packet.base_addr, raw):
                for i in range(s.size):
                    delivered[s.addr + i] = s.data[i]

    seq = 0
    for op, addr, size in ops:
        if op == "store":
            seq += 1
            data = bytes(((seq + i) % 251 for i in range(size)))
            for i in range(size):
                reference[BASE + addr + i] = data[i]
            msgs = egress.on_store(BASE + addr, size, dst=1, time=0.0, data=data)
            messages += msgs
            apply_messages(msgs)
        else:
            msgs = egress.on_release(0.0)
            apply_messages(msgs)
            # After a release everything must be on the wire.
            assert egress.on_release(0.0) == []
            assert reference == delivered, "release visibility broken"
    apply_messages(egress.on_release(0.0))
    return reference, delivered


class TestConformance:
    @given(programs())
    @settings(max_examples=60, deadline=None)
    def test_last_writer_wins_image(self, ops):
        reference, delivered = run_program(ops, FinePackConfig())
        assert reference == delivered

    @given(programs())
    @settings(max_examples=30, deadline=None)
    def test_small_window_config_still_correct(self, ops):
        """Aggressive flushing (64 B windows) changes timing, never data."""
        reference, delivered = run_program(ops, FinePackConfig(subheader_bytes=2))
        assert reference == delivered

    @given(programs())
    @settings(max_examples=30, deadline=None)
    def test_tiny_queue_still_correct(self, ops):
        cfg = FinePackConfig(queue_entries_per_partition=2)
        reference, delivered = run_program(ops, cfg)
        assert reference == delivered


class TestReleaseSemantics:
    def test_release_flushes_every_partition(self, config, protocol):
        eg = FinePackEgress(config, protocol, src=0, n_gpus=4)
        for dst in (1, 2, 3):
            eg.on_store((dst << 34) + 64, 8, dst, 0.0)
        msgs = eg.on_release(0.0)
        assert sorted(m.dst for m in msgs) == [1, 2, 3]
        assert eg.on_release(0.0) == []
