"""Failure-injection and fuzz tests: the decode path and queue must
fail loudly (ValueError) on malformed input, never corrupt state."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import FinePackConfig
from repro.core.depacketizer import Depacketizer
from repro.core.packet import FinePackPacket
from repro.core.remote_write_queue import FlushReason, QueuePartition

BASE = 1 << 34


class TestDecodeFuzz:
    @given(raw=st.binary(min_size=0, max_size=512))
    @settings(max_examples=200, deadline=None)
    def test_decode_never_crashes_unexpectedly(self, raw):
        """Arbitrary wire bytes either parse or raise ValueError."""
        config = FinePackConfig()
        try:
            packet = FinePackPacket.decode_payload(BASE, raw, config)
        except ValueError:
            return
        # A successful parse must re-encode to the same byte count and
        # stay within the payload limit arithmetic.
        assert packet.inner_payload_bytes(config) == len(raw)

    @given(raw=st.binary(min_size=1, max_size=256))
    @settings(max_examples=100, deadline=None)
    def test_decode_reencode_roundtrip(self, raw):
        config = FinePackConfig()
        try:
            packet = FinePackPacket.decode_payload(BASE, raw, config)
        except ValueError:
            return
        assert packet.encode_payload(config) == raw

    def test_depacketizer_rejects_garbage(self):
        d = Depacketizer(FinePackConfig())
        with pytest.raises(ValueError):
            d.decode_wire_payload(BASE, b"\xff\xff\xff")


class TestQueueRobustness:
    @given(
        ops=st.lists(
            st.tuples(
                st.integers(0, (1 << 20) - 200),
                st.integers(1, 200),
                st.booleans(),
            ),
            min_size=1,
            max_size=150,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_queue_never_overcommits(self, ops):
        """Whatever the store stream (including line-crossing stores
        and interleaved flushes), the payload register stays within
        budget and flushed windows packetize within the max payload."""
        config = FinePackConfig()
        p = QueuePartition(config, dst=1)
        windows = []
        for addr, size, flush in ops:
            windows.extend(p.insert(BASE + addr, size))
            if flush:
                w = p.flush(FlushReason.RELEASE)
                if w:
                    windows.append(w)
            assert 0 <= p.available_payload <= config.max_payload_bytes
        final = p.flush(FlushReason.RELEASE)
        if final:
            windows.append(final)
        from repro.core.packetizer import Packetizer
        from repro.interconnect.pcie import PCIeProtocol

        packetizer = Packetizer(config, PCIeProtocol())
        for w in windows:
            packet = packetizer.packetize(w)
            assert packet.inner_payload_bytes(config) <= config.max_payload_bytes
            for sub in packet.subs:
                assert 0 <= sub.offset < config.window_bytes
                assert 1 <= sub.length <= config.max_length_value

    def test_huge_store_split_across_many_lines(self):
        p = QueuePartition(FinePackConfig(), dst=1)
        p.insert(BASE + 100, 1000)
        w = p.flush(FlushReason.RELEASE)
        assert sum(e.enabled_bytes() for e in w.entries) == 1000


class TestDataIntegrityFuzz:
    @given(
        stores=st.lists(
            st.tuples(st.integers(0, 2000), st.integers(1, 64)),
            min_size=1,
            max_size=60,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_wire_roundtrip_preserves_final_bytes(self, stores):
        """Random data-carrying stores -> queue -> wire -> decode keeps
        last-writer-wins bytes, under a deliberately tiny queue."""
        config = FinePackConfig(queue_entries_per_partition=4)
        from repro.core.packetizer import Packetizer
        from repro.interconnect.pcie import PCIeProtocol

        p = QueuePartition(config, dst=1)
        packetizer = Packetizer(config, PCIeProtocol())
        image: dict[int, int] = {}
        delivered: dict[int, int] = {}
        rng = np.random.default_rng(0)

        def apply(windows):
            for w in windows:
                packet = packetizer.packetize(w)
                raw = packet.encode_payload(config)
                decoded = FinePackPacket.decode_payload(
                    packet.base_addr, raw, config
                )
                for addr, size, data in decoded.stores():
                    for i in range(size):
                        delivered[addr + i] = data[i]

        for off, size in stores:
            data = bytes(rng.integers(0, 256, size, dtype=np.uint8))
            for i in range(size):
                image[BASE + off + i] = data[i]
            apply(p.insert(BASE + off, size, data))
        final = p.flush(FlushReason.RELEASE)
        apply([final] if final else [])
        assert delivered == image
