"""Egress engine tests: passthrough, write-combining, FinePack."""

import pytest

from repro.core.config import FinePackConfig
from repro.core.egress import (
    FinePackEgress,
    PassthroughEgress,
    WriteCombiningEgress,
)
from repro.interconnect.message import MessageKind

BASE = 1 << 34  # GPU 1's aperture


class TestPassthrough:
    def test_one_message_per_store(self, protocol):
        eg = PassthroughEgress(protocol, src=0)
        msgs = eg.on_store(BASE, 8, dst=1, time=3.0)
        assert len(msgs) == 1
        m = msgs[0]
        assert m.kind is MessageKind.STORE
        assert (m.payload_bytes, m.issue_time, m.stores_packed) == (8, 3.0, 1)

    def test_release_is_noop(self, protocol):
        eg = PassthroughEgress(protocol, src=0)
        assert eg.on_release(0.0) == []

    def test_atomic(self, protocol):
        eg = PassthroughEgress(protocol, src=0)
        msgs = eg.on_atomic(BASE, 8, dst=1, time=0.0)
        assert msgs[0].kind is MessageKind.ATOMIC

    def test_stats(self, protocol):
        eg = PassthroughEgress(protocol, src=0)
        eg.on_store(BASE, 8, 1, 0.0)
        eg.on_store(BASE, 8, 1, 0.0)
        assert eg.stats.stores_in == 2
        assert eg.stats.stores_per_message() == 1.0


class TestWriteCombining:
    def test_same_line_stores_combine(self, protocol):
        eg = WriteCombiningEgress(protocol, src=0, n_gpus=2)
        assert eg.on_store(BASE, 8, 1, 0.0) == []
        assert eg.on_store(BASE + 8, 8, 1, 0.0) == []
        msgs = eg.on_release(1.0)
        assert len(msgs) == 1
        assert msgs[0].payload_bytes == 16
        assert msgs[0].stores_packed == 2

    def test_non_contiguous_line_emits_runs(self, protocol):
        eg = WriteCombiningEgress(protocol, src=0, n_gpus=2)
        eg.on_store(BASE, 8, 1, 0.0)
        eg.on_store(BASE + 64, 8, 1, 0.0)
        msgs = eg.on_release(0.0)
        assert len(msgs) == 2
        assert sum(m.payload_bytes for m in msgs) == 16

    def test_capacity_eviction_fifo(self, protocol):
        eg = WriteCombiningEgress(protocol, src=0, n_gpus=2, entries=2)
        eg.on_store(BASE, 8, 1, 0.0)
        eg.on_store(BASE + 128, 8, 1, 0.0)
        msgs = eg.on_store(BASE + 256, 8, 1, 0.0)
        assert len(msgs) == 1  # oldest line evicted
        assert msgs[0].meta["range1"] == (BASE, 8)

    def test_full_line_mode_sends_whole_line(self, protocol):
        eg = WriteCombiningEgress(protocol, src=0, n_gpus=2, full_line=True)
        eg.on_store(BASE + 4, 4, 1, 0.0)
        msgs = eg.on_release(0.0)
        assert msgs[0].payload_bytes == 128
        assert msgs[0].meta["range1"] == (BASE, 128)

    def test_atomic_flushes_matching_line_first(self, protocol):
        eg = WriteCombiningEgress(protocol, src=0, n_gpus=2)
        eg.on_store(BASE, 8, 1, 0.0)
        msgs = eg.on_atomic(BASE + 8, 8, 1, 0.0)
        assert [m.kind for m in msgs] == [MessageKind.COMBINED_STORE, MessageKind.ATOMIC]

    def test_load_flushes_matching_lines(self, protocol):
        eg = WriteCombiningEgress(protocol, src=0, n_gpus=2)
        eg.on_store(BASE, 8, 1, 0.0)
        msgs = eg.on_remote_load(BASE, 4, 1, 0.0)
        assert len(msgs) == 1
        assert eg.on_release(0.0) == []

    def test_line_crossing_store(self, protocol):
        eg = WriteCombiningEgress(protocol, src=0, n_gpus=2)
        eg.on_store(BASE + 120, 16, 1, 0.0)
        msgs = eg.on_release(0.0)
        assert sum(m.payload_bytes for m in msgs) == 16
        assert len(msgs) == 2  # two lines


class TestFinePackEgress:
    def test_buffers_until_release(self, config, protocol):
        eg = FinePackEgress(config, protocol, src=0, n_gpus=2)
        assert eg.on_store(BASE, 8, 1, 0.0) == []
        msgs = eg.on_release(5.0)
        assert len(msgs) == 1
        assert msgs[0].kind is MessageKind.FINEPACK
        assert msgs[0].issue_time == 5.0

    def test_window_miss_emits_packet(self, protocol):
        cfg = FinePackConfig(subheader_bytes=3)  # 16 KB window
        eg = FinePackEgress(cfg, protocol, src=0, n_gpus=2)
        eg.on_store(BASE, 8, 1, 0.0)
        msgs = eg.on_store(BASE + (1 << 20), 8, 1, 1.0)
        assert len(msgs) == 1
        assert msgs[0].stores_packed == 1

    def test_packing_many_stores(self, config, protocol):
        eg = FinePackEgress(config, protocol, src=0, n_gpus=2)
        for i in range(40):
            assert eg.on_store(BASE + i * 128, 8, 1, 0.0) == []
        msgs = eg.on_release(0.0)
        assert len(msgs) == 1
        assert msgs[0].stores_packed == 40
        assert msgs[0].payload_bytes == 320

    def test_atomic_flushes_conflicting_window(self, config, protocol):
        eg = FinePackEgress(config, protocol, src=0, n_gpus=2)
        eg.on_store(BASE, 8, 1, 0.0)
        msgs = eg.on_atomic(BASE + 4, 4, 1, 0.0)
        kinds = [m.kind for m in msgs]
        assert kinds == [MessageKind.FINEPACK, MessageKind.ATOMIC]

    def test_atomic_without_conflict_passes_through(self, config, protocol):
        eg = FinePackEgress(config, protocol, src=0, n_gpus=2)
        eg.on_store(BASE, 8, 1, 0.0)
        msgs = eg.on_atomic(BASE + 4096, 4, 1, 0.0)
        assert [m.kind for m in msgs] == [MessageKind.ATOMIC]
        assert len(eg.on_release(0.0)) == 1  # store still buffered

    def test_load_conflict_flushes(self, config, protocol):
        eg = FinePackEgress(config, protocol, src=0, n_gpus=2)
        eg.on_store(BASE, 8, 1, 0.0)
        msgs = eg.on_remote_load(BASE + 4, 2, 1, 0.0)
        assert len(msgs) == 1
        assert eg.on_release(0.0) == []

    def test_load_without_conflict_no_flush(self, config, protocol):
        eg = FinePackEgress(config, protocol, src=0, n_gpus=2)
        eg.on_store(BASE, 8, 1, 0.0)
        assert eg.on_remote_load(BASE + 512, 8, 1, 0.0) == []

    def test_per_destination_isolation(self, config, protocol):
        eg = FinePackEgress(config, protocol, src=0, n_gpus=4)
        eg.on_store(BASE, 8, 1, 0.0)
        eg.on_store((2 << 34), 8, 2, 0.0)
        msgs = eg.on_release(0.0)
        assert sorted(m.dst for m in msgs) == [1, 2]

    def test_wire_efficiency_beats_passthrough(self, config, protocol):
        """The headline mechanism: ~3x wire efficiency for 8 B scatters."""
        fp = FinePackEgress(config, protocol, src=0, n_gpus=2)
        pt = PassthroughEgress(protocol, src=0)
        addrs = [BASE + i * 256 for i in range(512)]
        fp_msgs, pt_bytes = [], 0
        for a in addrs:
            fp_msgs += fp.on_store(a, 8, 1, 0.0)
            pt_bytes += pt.on_store(a, 8, 1, 0.0)[0].wire_bytes
        fp_msgs += fp.on_release(0.0)
        fp_bytes = sum(m.wire_bytes for m in fp_msgs)
        assert pt_bytes / fp_bytes > 2.5
