"""Tests for the paper's optional/extension designs: timeout flush
(Sec. IV-B), multi-window partitions (Sec. IV-C), and the NVLink
embedding (Sec. IV-C)."""

import pytest

from repro.core.config import FinePackConfig
from repro.core.egress import FinePackEgress
from repro.core.nvlink_embedding import NVLinkFinePackEmbedding
from repro.core.packet import FinePackPacket, SubTransaction
from repro.core.remote_write_queue import (
    FlushReason,
    MultiWindowPartition,
    RemoteWriteQueue,
)
from repro.interconnect.nvlink import NVLinkProtocol

BASE = 1 << 34


class TestTimeoutFlush:
    def test_idle_partition_flushes_at_deadline(self, config, protocol):
        eg = FinePackEgress(
            config, protocol, src=0, n_gpus=2, flush_timeout_ns=1_000.0
        )
        eg.on_store(BASE, 8, 1, time=0.0)
        msgs = eg.on_store(BASE + 4096, 8, 1, time=5_000.0)
        assert len(msgs) == 1
        assert msgs[0].meta["packet"].stores_absorbed == 1
        # The flush is stamped when the hardware timer would have fired.
        assert msgs[0].issue_time == pytest.approx(1_000.0)
        # The new store is buffered fresh.
        assert len(eg.on_release(6_000.0)) == 1

    def test_active_partition_not_flushed(self, config, protocol):
        eg = FinePackEgress(
            config, protocol, src=0, n_gpus=2, flush_timeout_ns=1_000.0
        )
        eg.on_store(BASE, 8, 1, time=0.0)
        assert eg.on_store(BASE + 128, 8, 1, time=500.0) == []
        assert eg.on_store(BASE + 256, 8, 1, time=1_400.0) == []  # idle 900 ns only

    def test_timeout_reason_recorded(self, config, protocol):
        eg = FinePackEgress(
            config, protocol, src=0, n_gpus=2, flush_timeout_ns=100.0
        )
        eg.on_store(BASE, 8, 1, time=0.0)
        eg.on_store(BASE + 128, 8, 1, time=10_000.0)
        stats = eg.queue.partition(1).stats
        assert stats.flushes.get(FlushReason.TIMEOUT) == 1

    def test_disabled_by_default(self, config, protocol):
        eg = FinePackEgress(config, protocol, src=0, n_gpus=2)
        eg.on_store(BASE, 8, 1, time=0.0)
        assert eg.on_store(BASE + 128, 8, 1, time=1e12) == []

    def test_invalid_timeout(self, config, protocol):
        with pytest.raises(ValueError):
            FinePackEgress(config, protocol, 0, 2, flush_timeout_ns=0.0)


class TestMultiWindowPartition:
    def _cfg(self):
        return FinePackConfig(subheader_bytes=3)  # 16 KB windows

    def test_two_regions_no_thrash(self):
        """Alternating far-apart regions thrash a single window but
        coexist in a two-window partition (the Sec. IV-C motivation)."""
        cfg = self._cfg()
        multi = MultiWindowPartition(cfg, dst=1, windows=2)
        flushes = []
        for i in range(16):
            region = BASE if i % 2 == 0 else BASE + (1 << 20)
            flushes += multi.insert(region + (i // 2) * 128, 8)
        assert flushes == []  # both regions held open

        single = RemoteWriteQueue(cfg, gpu=0, n_gpus=2).partition(1)
        thrash = []
        for i in range(16):
            region = BASE if i % 2 == 0 else BASE + (1 << 20)
            thrash += single.insert(region + (i // 2) * 128, 8)
        assert len(thrash) == 15  # every store after the first misses

    def test_lru_eviction_when_all_windows_busy(self):
        cfg = self._cfg()
        multi = MultiWindowPartition(cfg, dst=1, windows=2)
        multi.insert(BASE, 8)
        multi.insert(BASE + (1 << 20), 8)
        flushes = multi.insert(BASE + (2 << 20), 8)
        assert len(flushes) == 1
        assert flushes[0].reason is FlushReason.WINDOW_EVICTION
        assert flushes[0].base_addr == cfg.window_base(BASE)  # LRU victim

    def test_lru_refresh_on_reuse(self):
        cfg = self._cfg()
        multi = MultiWindowPartition(cfg, dst=1, windows=2)
        multi.insert(BASE, 8)
        multi.insert(BASE + (1 << 20), 8)
        multi.insert(BASE + 64, 8)  # refresh the first window
        flushes = multi.insert(BASE + (2 << 20), 8)
        assert flushes[0].base_addr == cfg.window_base(BASE + (1 << 20))

    def test_flush_returns_all_windows(self):
        multi = MultiWindowPartition(self._cfg(), dst=1, windows=2)
        multi.insert(BASE, 8)
        multi.insert(BASE + (1 << 20), 8)
        windows = multi.flush(FlushReason.RELEASE)
        assert len(windows) == 2
        assert multi.empty

    def test_entry_budget_divided(self):
        cfg = FinePackConfig(queue_entries_per_partition=64)
        multi = MultiWindowPartition(cfg, dst=1, windows=4)
        assert multi._subs[0].config.queue_entries_per_partition == 16

    def test_too_many_windows_rejected(self):
        cfg = FinePackConfig(queue_entries_per_partition=2)
        with pytest.raises(ValueError):
            MultiWindowPartition(cfg, dst=1, windows=4)

    def test_matches_load_across_windows(self):
        multi = MultiWindowPartition(self._cfg(), dst=1, windows=2)
        multi.insert(BASE, 8)
        multi.insert(BASE + (1 << 20), 8)
        assert multi.matches_load(BASE + (1 << 20), 4)
        assert not multi.matches_load(BASE + (3 << 20), 4)

    def test_egress_integration(self, protocol):
        cfg = self._cfg()
        eg = FinePackEgress(cfg, protocol, src=0, n_gpus=2, windows=2)
        eg.on_store(BASE, 8, 1, 0.0)
        eg.on_store(BASE + (1 << 20), 8, 1, 0.0)
        msgs = eg.on_release(0.0)
        assert len(msgs) == 2


class TestNVLinkEmbedding:
    def _packet(self, n, length=8, stride=128):
        return FinePackPacket(
            base_addr=BASE,
            subs=[
                SubTransaction(offset=i * stride, length=length) for i in range(n)
            ],
            stores_absorbed=n,
        )

    def test_small_window_single_packet(self, config):
        emb = NVLinkFinePackEmbedding(config)
        payload, overhead = emb.wire_cost(self._packet(4))
        assert payload == 32
        # 1 header flit + 4 sub-headers + pad of (32+20) to flits.
        inner = 4 * (8 + config.subheader_bytes)
        pad = -(-inner // 16) * 16 - inner
        assert overhead == 16 + 4 * config.subheader_bytes + pad

    def test_large_window_splits_into_packet_train(self, config):
        emb = NVLinkFinePackEmbedding(config)
        payload, overhead = emb.wire_cost(self._packet(64))
        # 64 subs x 13 B inner = 832 B -> at least 4 NVLink packets.
        assert overhead >= 4 * 16

    def test_beats_raw_nvlink_stores(self, config):
        emb = NVLinkFinePackEmbedding(config)
        packet = self._packet(40, length=8)
        assert emb.improvement_over_raw(packet) > 1.5

    def test_win_comparable_to_pcie(self, config, protocol):
        """Paper Sec. IV-C: the small-packet inefficiency of PCIe and
        NVLink is similar, so packing should "achieve similar benefits"
        on both -- the gains land in the same ~3x class."""
        emb = NVLinkFinePackEmbedding(config)
        packet = self._packet(64, length=8)
        nvlink_gain = emb.improvement_over_raw(packet)
        fp_payload, fp_overhead = packet.wire_cost(config, protocol)
        p, o = protocol.store_wire_cost(8)
        pcie_gain = (64 * (p + o)) / (fp_payload + fp_overhead)
        assert nvlink_gain > 2.0 and pcie_gain > 2.0
        assert 0.6 < nvlink_gain / pcie_gain < 1.6

    def test_oversized_sub_rejected(self, config):
        emb = NVLinkFinePackEmbedding(config)
        packet = FinePackPacket(
            base_addr=BASE, subs=[SubTransaction(offset=0, length=300)]
        )
        with pytest.raises(ValueError):
            emb.wire_cost(packet)

    def test_empty_packet(self, config):
        emb = NVLinkFinePackEmbedding(config)
        assert emb.wire_cost(FinePackPacket(base_addr=BASE)) == (0, 0)
