"""Remote write queue tests (paper Sec. IV-B / Figure 8)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import FinePackConfig
from repro.core.remote_write_queue import (
    FlushReason,
    QueueEntry,
    QueuePartition,
    RemoteWriteQueue,
)

BASE = 1 << 34  # inside GPU 1's aperture


@pytest.fixture
def part(config):
    return QueuePartition(config, dst=1)


class TestQueueEntryRuns:
    def test_single_run(self):
        e = QueueEntry(line_addr=0, mask=0b1111 << 4)
        assert e.runs(128) == [(4, 4)]

    def test_two_runs(self):
        e = QueueEntry(line_addr=0, mask=(0b11 << 0) | (0b111 << 10))
        assert e.runs(128) == [(0, 2), (10, 3)]

    def test_full_line(self):
        e = QueueEntry(line_addr=0, mask=(1 << 128) - 1)
        assert e.runs(128) == [(0, 128)]

    def test_empty(self):
        assert QueueEntry(line_addr=0).runs(128) == []


class TestPartitionBasics:
    def test_first_store_sets_base(self, part, config):
        part.insert(BASE + 0x1234, 8)
        assert part.base_addr == config.window_base(BASE + 0x1234)
        assert part.entry_count == 1

    def test_same_address_overwrite_is_hit(self, part):
        part.insert(BASE, 8)
        part.insert(BASE, 8)
        assert part.entry_count == 1
        assert part.stats.store_hits == 1

    def test_same_line_different_bytes_merge(self, part):
        part.insert(BASE, 8)
        part.insert(BASE + 64, 8)
        assert part.entry_count == 1

    def test_different_lines_new_entries(self, part):
        part.insert(BASE, 8)
        part.insert(BASE + 128, 8)
        assert part.entry_count == 2

    def test_available_payload_register(self, part, config):
        part.insert(BASE, 8)
        expected = config.max_payload_bytes - (8 + config.subheader_bytes)
        assert part.available_payload == expected

    def test_merging_adjacent_runs_reduces_cost(self, part, config):
        part.insert(BASE, 4)
        part.insert(BASE + 8, 4)  # two runs: 2 subheaders
        two_runs = part.available_payload
        part.insert(BASE + 4, 4)  # joins them into one run
        assert part.available_payload == two_runs + config.subheader_bytes - 4

    def test_line_crossing_store_splits(self, part):
        part.insert(BASE + 120, 16)
        assert part.entry_count == 2

    def test_non_positive_size(self, part):
        with pytest.raises(ValueError):
            part.insert(BASE, 0)


class TestFlushTriggers:
    def test_window_miss(self):
        cfg = FinePackConfig(subheader_bytes=3)  # 16 KB window
        p = QueuePartition(cfg, dst=1)
        p.insert(BASE, 8)
        flushes = p.insert(BASE + 32 * 1024, 8)
        assert len(flushes) == 1
        assert flushes[0].reason is FlushReason.WINDOW_MISS
        assert flushes[0].stores_absorbed == 1
        # The miss store starts the new window.
        assert p.entry_count == 1

    def test_entries_full(self, config):
        p = QueuePartition(config, dst=1)
        for i in range(config.queue_entries_per_partition):
            assert p.insert(BASE + i * 128, 8) == []
        flushes = p.insert(BASE + 10_000 * 128, 8)
        assert flushes[0].reason is FlushReason.ENTRIES_FULL
        assert flushes[0].stores_absorbed == config.queue_entries_per_partition

    def test_payload_full(self):
        cfg = FinePackConfig(max_payload_bytes=300, queue_entries_per_partition=64)
        p = QueuePartition(cfg, dst=1)
        flushed = []
        for i in range(6):
            flushed += p.insert(BASE + i * 128, 50)
        assert any(f.reason is FlushReason.PAYLOAD_FULL for f in flushed)

    def test_explicit_flush_returns_entries_sorted(self, part):
        part.insert(BASE + 256, 8)
        part.insert(BASE, 8)
        window = part.flush(FlushReason.RELEASE)
        assert [e.line_addr for e in window.entries] == [BASE, BASE + 256]
        assert part.empty

    def test_flush_empty_returns_none(self, part):
        assert part.flush(FlushReason.RELEASE) is None

    def test_flush_resets_register(self, part, config):
        part.insert(BASE, 8)
        part.flush(FlushReason.RELEASE)
        assert part.available_payload == config.max_payload_bytes


class TestLoadMatching:
    def test_overlapping_load_detected(self, part):
        part.insert(BASE + 100, 8)
        assert part.matches_load(BASE + 104, 4)
        assert not part.matches_load(BASE + 108, 4)

    def test_load_spanning_lines(self, part):
        part.insert(BASE + 130, 8)
        assert part.matches_load(BASE + 120, 16)


class TestRemoteWriteQueue:
    def test_partition_per_peer(self, config):
        q = RemoteWriteQueue(config, gpu=1, n_gpus=4)
        assert sorted(q.partitions) == [0, 2, 3]

    def test_no_partition_for_self(self, config):
        q = RemoteWriteQueue(config, gpu=1, n_gpus=4)
        with pytest.raises(KeyError):
            q.partition(1)

    def test_invalid_gpu(self, config):
        with pytest.raises(ValueError):
            RemoteWriteQueue(config, gpu=4, n_gpus=4)

    def test_independent_coalescing_per_destination(self, config):
        q = RemoteWriteQueue(config, gpu=1, n_gpus=4)
        q.insert(0x100, 8, dst=0)
        q.insert((2 << 34) + 0x100, 8, dst=2)
        assert q.partition(0).entry_count == 1
        assert q.partition(2).entry_count == 1

    def test_flush_all_on_release(self, config):
        q = RemoteWriteQueue(config, gpu=1, n_gpus=4)
        q.insert(0x100, 8, dst=0)
        q.insert((2 << 34) + 0x100, 8, dst=2)
        flushed = q.flush_all(FlushReason.RELEASE)
        assert [d for d, _ in flushed] == [0, 2]
        assert all(w.reason is FlushReason.RELEASE for _, w in flushed)

    def test_flush_on_load_only_when_matching(self, config):
        q = RemoteWriteQueue(config, gpu=1, n_gpus=4)
        q.insert(0x100, 8, dst=0)
        assert q.flush_on_load(0x200, 8, dst=0) == []
        hits = q.flush_on_load(0x100, 4, dst=0)
        assert len(hits) == 1
        assert hits[0][1].reason is FlushReason.LOAD_CONFLICT

    def test_sram_budget(self, config):
        q = RemoteWriteQueue(config, gpu=0, n_gpus=16)
        assert q.total_sram_data_bytes() == 120 * 1024


class TestRegisterInvariant:
    @given(
        stores=st.lists(
            st.tuples(st.integers(0, 4095), st.integers(1, 32)),
            min_size=1,
            max_size=120,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_available_payload_matches_recomputation(self, stores):
        """The 'available payload length register' always equals the
        payload budget minus the exact packetized cost of the contents."""
        cfg = FinePackConfig()
        p = QueuePartition(cfg, dst=1)
        for off, size in stores:
            p.insert(BASE + off, size)
            exact = sum(p._entry_cost(e) for e in p._entries.values())
            assert p.available_payload == cfg.max_payload_bytes - exact
            assert p.available_payload >= 0
