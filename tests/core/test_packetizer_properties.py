"""Property-based functional round-trip: packetizer -> wire -> depacketizer.

Feeds store streams carrying *real data bytes* through a FinePack
egress engine, encodes every emitted packet to raw payload bytes,
decodes them at a receiver-side depacketizer, and checks the
destination reconstructs a byte-identical memory image.  Applying the
decoded stores in delivery order must work because per-destination
delivery is in store order -- the second property checked here.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import FinePackConfig
from repro.core.depacketizer import Depacketizer
from repro.core.egress import FinePackEgress
from repro.core.packet import FinePackPacket
from repro.interconnect.pcie import PCIE_GEN4, PCIeProtocol

BASE = 1 << 34
DST = 1


@st.composite
def data_streams(draw):
    n = draw(st.integers(1, 60))
    stream = []
    for _ in range(n):
        size = draw(st.integers(1, 32))
        stream.append(
            (
                draw(st.integers(0, 1 << 12)),
                size,
                draw(st.binary(min_size=size, max_size=size)),
            )
        )
    return stream


def engines(subheader_bytes):
    cfg = FinePackConfig(subheader_bytes=subheader_bytes)
    protocol = PCIeProtocol(PCIE_GEN4)
    yield cfg, FinePackEgress(cfg, protocol, src=0, n_gpus=2)
    yield cfg, FinePackEgress(cfg, protocol, src=0, n_gpus=2, windows=4)


def feed(engine, stream):
    msgs = []
    for addr, size, data in stream:
        msgs += engine.on_store(BASE + addr, size, DST, 0.0, data=data)
    msgs += engine.on_release(0.0)
    return msgs


def expected_image(stream):
    image = {}
    for addr, size, data in stream:
        for i in range(size):
            image[BASE + addr + i] = data[i]
    return image


class TestRoundTrip:
    @given(stream=data_streams(), subheader_bytes=st.sampled_from((2, 3, 4, 5, 6)))
    @settings(max_examples=40, deadline=None)
    def test_encode_decode_is_identity(self, stream, subheader_bytes):
        """decode(encode(packet)) reproduces every (addr, len, data)."""
        for cfg, engine in engines(subheader_bytes):
            for m in feed(engine, stream):
                packet = m.meta["packet"]
                decoded = FinePackPacket.decode_payload(
                    packet.base_addr, packet.encode_payload(cfg), cfg
                )
                assert decoded.stores() == packet.stores()

    @given(stream=data_streams(), subheader_bytes=st.sampled_from((2, 4, 6)))
    @settings(max_examples=40, deadline=None)
    def test_receiver_reconstructs_memory_image(self, stream, subheader_bytes):
        """The full receive path (raw bytes -> depacketizer -> stores)
        rebuilds exactly the bytes the sender's program wrote, with
        later stores to the same address winning."""
        for cfg, engine in engines(subheader_bytes):
            depack = Depacketizer(cfg)
            image = {}
            for m in feed(engine, stream):
                packet = m.meta["packet"]
                stores = depack.decode_wire_payload(
                    packet.base_addr, packet.encode_payload(cfg)
                )
                for s in stores:
                    for i in range(s.size):
                        image[s.addr + i] = s.data[i]
            assert image == expected_image(stream)

    @given(stream=data_streams())
    @settings(max_examples=30, deadline=None)
    def test_per_destination_delivery_is_in_store_order(self, stream):
        """Messages to one destination leave the egress in the order
        their stores were issued: every address's last-writer data rides
        in the latest message touching that address."""
        cfg = FinePackConfig()
        engine = FinePackEgress(cfg, PCIeProtocol(PCIE_GEN4), src=0, n_gpus=2)
        last_value = expected_image(stream)
        last_msg_touching = {}
        for seq, m in enumerate(feed(engine, stream)):
            for addr, size, data in m.meta["packet"].stores():
                for i in range(size):
                    last_msg_touching[addr + i] = (seq, data[i])
        for addr, (_, value) in last_msg_touching.items():
            assert value == last_value[addr]
