"""Packetizer / de-packetizer tests: the full sender->receiver path."""

import pytest

from repro.core.config import FinePackConfig
from repro.core.depacketizer import Depacketizer
from repro.core.packet import FinePackPacket, SubTransaction
from repro.core.packetizer import Packetizer
from repro.core.remote_write_queue import FlushReason, QueuePartition
from repro.interconnect.message import MessageKind

BASE = 1 << 34


@pytest.fixture
def packetizer(config, protocol):
    return Packetizer(config, protocol)


def flush_after(stores, config):
    p = QueuePartition(config, dst=1)
    for addr, size, data in stores:
        p.insert(addr, size, data)
    return p.flush(FlushReason.RELEASE)


class TestPacketizer:
    def test_contiguous_entry_one_sub(self, packetizer, config):
        window = flush_after([(BASE, 8, None), (BASE + 8, 8, None)], config)
        packet = packetizer.packetize(window)
        assert len(packet.subs) == 1
        assert packet.subs[0].length == 16

    def test_non_contiguous_entry_splits(self, packetizer, config):
        """Sub-headers carry no byte enables, so holes force splits."""
        window = flush_after([(BASE, 8, None), (BASE + 16, 8, None)], config)
        packet = packetizer.packetize(window)
        assert [(s.offset % 128, s.length) for s in packet.subs] == [(0, 8), (16, 8)]

    def test_offsets_relative_to_window_base(self, packetizer, config):
        window = flush_after([(BASE + 0x4000, 8, None)], config)
        packet = packetizer.packetize(window)
        assert packet.base_addr == config.window_base(BASE + 0x4000)
        assert packet.base_addr + packet.subs[0].offset == BASE + 0x4000

    def test_stores_absorbed_preserved(self, packetizer, config):
        window = flush_after([(BASE, 8, None)] * 5, config)
        packet = packetizer.packetize(window)
        assert packet.stores_absorbed == 5
        assert len(packet.subs) == 1  # all coalesced into one value

    def test_wire_message_annotations(self, packetizer, config):
        window = flush_after([(BASE, 8, None), (BASE + 256, 4, None)], config)
        packet = packetizer.packetize(window)
        msg = packetizer.to_wire_message(packet, src=0, dst=1, time=9.0)
        assert msg.kind is MessageKind.FINEPACK
        assert msg.issue_time == 9.0
        assert msg.payload_bytes == 12
        starts, lengths = msg.meta["ranges"]
        assert starts.tolist() == [BASE, BASE + 256]
        assert lengths.tolist() == [8, 4]

    def test_carries_data(self, packetizer, config):
        window = flush_after([(BASE, 4, b"abcd")], config)
        packet = packetizer.packetize(window)
        assert packet.subs[0].data == b"abcd"


class TestDepacketizer:
    def test_address_reconstruction(self, config):
        d = Depacketizer(config)
        packet = FinePackPacket(
            base_addr=BASE,
            subs=[SubTransaction(offset=64, length=8), SubTransaction(offset=640, length=4)],
        )
        stores = d.disaggregate(packet)
        assert [(s.addr, s.size) for s in stores] == [(BASE + 64, 8), (BASE + 640, 4)]
        assert d.stats.stores_out == 2
        assert d.stats.bytes_out == 12

    def test_wire_roundtrip(self, config):
        """Encode at the sender, decode at the receiver, byte-exact."""
        d = Depacketizer(config)
        packet = FinePackPacket(
            base_addr=BASE,
            subs=[SubTransaction(offset=0, length=3, data=b"abc")],
        )
        raw = packet.encode_payload(config)
        stores = d.decode_wire_payload(BASE, raw)
        assert stores[0].addr == BASE
        assert stores[0].data == b"abc"

    def test_buffer_admission_stalls_when_full(self, config):
        d = Depacketizer(config, buffer_entries=2, drain_bytes_per_ns=0.001)
        big = FinePackPacket(
            base_addr=0, subs=[SubTransaction(offset=0, length=200)]
        )
        t1 = d.admit(big, arrival=0.0)
        t2 = d.admit(big, arrival=0.0)
        assert t2 >= t1  # second packet waits behind the first

    def test_oversized_packet_rejected(self, config):
        d = Depacketizer(config, buffer_entries=1)
        packet = FinePackPacket(
            base_addr=0,
            subs=[SubTransaction(offset=i * 128, length=128) for i in range(4)],
        )
        with pytest.raises(ValueError):
            d.admit(packet, arrival=0.0)

    def test_buffer_bytes(self, config):
        assert Depacketizer(config).buffer_bytes() == 64 * 128


class TestEndToEndThroughQueue:
    def test_sender_receiver_memory_image(self, config, protocol):
        """Stores with data pushed through queue -> packetizer ->
        encode -> decode -> disaggregate reproduce last-writer-wins."""
        part = QueuePartition(config, dst=1)
        packetizer = Packetizer(config, protocol)
        depack = Depacketizer(config)
        writes = [
            (BASE + 0, 4, b"1111"),
            (BASE + 4, 4, b"2222"),
            (BASE + 0, 4, b"3333"),  # overwrites the first
            (BASE + 300, 2, b"zz"),
        ]
        for addr, size, data in writes:
            assert part.insert(addr, size, data) == []
        window = part.flush(FlushReason.RELEASE)
        packet = packetizer.packetize(window)
        raw = packet.encode_payload(config)
        stores = depack.decode_wire_payload(packet.base_addr, raw)

        image = {}
        for s in stores:
            for i in range(s.size):
                image[s.addr + i] = s.data[i : i + 1]
        expected = {}
        for addr, size, data in writes:
            for i in range(size):
                expected[addr + i] = data[i : i + 1]
        assert image == expected
