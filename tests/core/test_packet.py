"""FinePack packet format tests (paper Table I / Figure 6)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import FinePackConfig
from repro.core.packet import FinePackPacket, SubTransaction
from repro.interconnect.pcie import PCIE_GEN4, PCIeProtocol


@pytest.fixture
def proto():
    return PCIeProtocol(PCIE_GEN4)


class TestSubTransaction:
    def test_header_roundtrip(self, config):
        sub = SubTransaction(offset=0x12345, length=37)
        raw = sub.encode_header(config)
        assert len(raw) == config.subheader_bytes
        length, offset = SubTransaction.decode_header(raw, config)
        assert (length, offset) == (37, 0x12345)

    def test_length_field_overflow(self, config):
        with pytest.raises(ValueError):
            SubTransaction(offset=0, length=1024).encode_header(config)

    def test_offset_outside_window(self):
        cfg = FinePackConfig(subheader_bytes=3)  # 16 KB window
        with pytest.raises(ValueError):
            SubTransaction(offset=16 * 1024, length=8).encode_header(cfg)

    def test_data_length_must_match(self):
        with pytest.raises(ValueError):
            SubTransaction(offset=0, length=4, data=b"12345")

    def test_non_positive_length(self):
        with pytest.raises(ValueError):
            SubTransaction(offset=0, length=0)

    def test_wrong_header_size_decode(self, config):
        with pytest.raises(ValueError):
            SubTransaction.decode_header(b"\x00\x00", config)

    def test_wire_bytes(self, config):
        assert SubTransaction(offset=0, length=8).wire_bytes(config) == 13

    @given(
        offset=st.integers(0, 2**30 - 1),
        length=st.integers(1, 1023),
    )
    @settings(max_examples=200, deadline=None)
    def test_header_roundtrip_hypothesis(self, offset, length):
        cfg = FinePackConfig()
        raw = SubTransaction(offset=offset, length=length).encode_header(cfg)
        assert SubTransaction.decode_header(raw, cfg) == (length, offset)


class TestPacketEncoding:
    def test_payload_roundtrip_with_data(self, config):
        packet = FinePackPacket(
            base_addr=1 << 34,
            subs=[
                SubTransaction(offset=0, length=4, data=b"abcd"),
                SubTransaction(offset=100, length=3, data=b"xyz"),
            ],
            stores_absorbed=5,
        )
        raw = packet.encode_payload(config)
        assert len(raw) == packet.inner_payload_bytes(config)
        decoded = FinePackPacket.decode_payload(1 << 34, raw, config)
        assert decoded.stores() == [
            ((1 << 34) + 0, 4, b"abcd"),
            ((1 << 34) + 100, 3, b"xyz"),
        ]

    def test_decode_truncated_header(self, config):
        with pytest.raises(ValueError, match="truncated"):
            FinePackPacket.decode_payload(0, b"\x01\x02", config)

    def test_decode_overrun_payload(self, config):
        raw = SubTransaction(offset=0, length=100).encode_header(config) + b"short"
        with pytest.raises(ValueError, match="overruns"):
            FinePackPacket.decode_payload(0, raw, config)

    def test_dataless_encoding_zero_fills(self, config):
        packet = FinePackPacket(
            base_addr=0, subs=[SubTransaction(offset=8, length=4)]
        )
        raw = packet.encode_payload(config)
        decoded = FinePackPacket.decode_payload(0, raw, config)
        assert decoded.subs[0].data == b"\x00" * 4


class TestWireCost:
    def test_accounting(self, config, proto):
        """Payload counts only data; headers/padding are overhead."""
        packet = FinePackPacket(
            base_addr=0,
            subs=[SubTransaction(offset=i * 64, length=8) for i in range(10)],
        )
        payload, overhead = packet.wire_cost(config, proto)
        assert payload == 80
        inner = 10 * (8 + config.subheader_bytes)  # 130
        pad = -(-inner // 4) * 4 - inner  # 2
        assert overhead == proto.per_tlp_overhead + 10 * config.subheader_bytes + pad

    def test_better_than_individual_stores(self, config, proto):
        """The whole point: one packed transaction beats N store TLPs."""
        n = 40
        packet = FinePackPacket(
            base_addr=0,
            subs=[SubTransaction(offset=i * 128, length=8) for i in range(n)],
        )
        fp_payload, fp_overhead = packet.wire_cost(config, proto)
        single_payload, single_overhead = proto.store_wire_cost(8)
        assert fp_payload + fp_overhead < n * (single_payload + single_overhead) / 2.5

    def test_payload_limit_enforced(self, proto):
        cfg = FinePackConfig(max_payload_bytes=256, entry_bytes=128)
        packet = FinePackPacket(
            base_addr=0,
            subs=[SubTransaction(offset=i * 64, length=60) for i in range(8)],
        )
        with pytest.raises(ValueError, match="exceeds max"):
            packet.wire_cost(cfg, proto)

    def test_table1_outer_header_same_size_as_pcie(self, config, proto):
        """Table I: FinePack reuses the TLP header, so the outer packet
        overhead equals a plain memory write's per-TLP overhead."""
        packet = FinePackPacket(
            base_addr=0, subs=[SubTransaction(offset=0, length=4)]
        )
        _, overhead = packet.wire_cost(config, proto)
        inner = 4 + config.subheader_bytes
        pad = -(-inner // 4) * 4 - inner
        assert overhead - config.subheader_bytes - pad == proto.per_tlp_overhead
