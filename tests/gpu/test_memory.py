"""Address space and allocation tests."""

import pytest

from repro.gpu.memory import (
    APERTURE_BYTES,
    Allocator,
    MemorySpace,
    gpu_base,
    owner_of,
)


class TestAddressSpace:
    def test_aperture_size_is_16GB(self):
        assert APERTURE_BYTES == 16 * 1024**3

    def test_gpu_base(self):
        assert gpu_base(0) == 0
        assert gpu_base(2) == 2 * APERTURE_BYTES

    def test_owner_roundtrip(self):
        for g in range(8):
            assert owner_of(gpu_base(g)) == g
            assert owner_of(gpu_base(g) + APERTURE_BYTES - 1) == g

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            gpu_base(-1)
        with pytest.raises(ValueError):
            owner_of(-5)


class TestAllocator:
    def test_alignment(self):
        a = Allocator(gpu=1)
        first = a.alloc(10, align=256)
        second = a.alloc(10, align=256)
        assert first == gpu_base(1)
        assert second == first + 256

    def test_bad_alignment(self):
        with pytest.raises(ValueError):
            Allocator(0).alloc(8, align=3)

    def test_zero_alloc_rejected(self):
        with pytest.raises(ValueError):
            Allocator(0).alloc(0)

    def test_exhaustion(self):
        a = Allocator(0)
        a.alloc(APERTURE_BYTES - 256)
        with pytest.raises(MemoryError):
            a.alloc(512)


class TestMemorySpace:
    def test_replicated_buffer_addresses(self):
        m = MemorySpace(4)
        buf = m.alloc_replicated("x", 1024)
        assert set(buf.replicas) == {0, 1, 2, 3}
        for g, addr in buf.replicas.items():
            assert owner_of(addr) == g

    def test_replica_offsets_consistent(self):
        """All replicas of the first buffer share the aperture offset --
        the spatial-locality property FinePack exploits."""
        m = MemorySpace(4)
        buf = m.alloc_replicated("x", 4096)
        offsets = {addr - gpu_base(g) for g, addr in buf.replicas.items()}
        assert len(offsets) == 1

    def test_buffer_addr_and_offset(self):
        m = MemorySpace(2)
        buf = m.alloc_replicated("x", 100)
        a = buf.addr(1, 40)
        assert buf.offset_of(a) == 40

    def test_addr_bounds_checked(self):
        m = MemorySpace(2)
        buf = m.alloc_replicated("x", 100)
        with pytest.raises(IndexError):
            buf.addr(0, 100)

    def test_offset_of_foreign_address(self):
        m = MemorySpace(2)
        buf = m.alloc_replicated("x", 100)
        other = m.alloc_replicated("y", 100)
        with pytest.raises(ValueError):
            buf.offset_of(other.replicas[0])

    def test_partial_replication(self):
        m = MemorySpace(4)
        buf = m.alloc_replicated("x", 64, gpus=[0, 2])
        assert set(buf.replicas) == {0, 2}

    def test_local_alloc(self):
        m = MemorySpace(4)
        addr = m.alloc_local("scratch", 256, gpu=3)
        assert owner_of(addr) == 3
