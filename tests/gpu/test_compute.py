"""Roofline compute model and GV100 parameter tests."""

import pytest

from repro.gpu.compute import GV100, ComputeModel, GPUParams, KernelWork


class TestGV100Params:
    def test_table3_values(self):
        """Paper Table III GPU parameters."""
        assert GV100.cache_block_bytes == 128
        assert GV100.global_memory_bytes == 16 * 1024**3
        assert GV100.num_sms == 80
        assert GV100.cuda_cores_per_sm == 64
        assert GV100.l2_bytes == 6 * 1024 * 1024
        assert GV100.warp_size == 32
        assert GV100.max_threads_per_sm == 2048
        assert GV100.max_threads_per_cta == 1024


class TestKernelWork:
    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            KernelWork(flops=-1, dram_bytes=0)

    def test_unknown_precision(self):
        with pytest.raises(ValueError):
            KernelWork(flops=1, dram_bytes=1, precision="int8")


class TestComputeModel:
    def test_memory_bound_kernel(self):
        m = ComputeModel(efficiency=1.0, launch_overhead_ns=0.0)
        work = KernelWork(flops=1.0, dram_bytes=9_000_000.0)
        assert m.duration_ns(work) == pytest.approx(10_000.0)

    def test_compute_bound_kernel(self):
        m = ComputeModel(efficiency=1.0, launch_overhead_ns=0.0)
        work = KernelWork(flops=78_000_000.0, dram_bytes=8.0)
        assert m.duration_ns(work) == pytest.approx(10_000.0)

    def test_fp32_roof_is_faster(self):
        m = ComputeModel(efficiency=1.0, launch_overhead_ns=0.0)
        w64 = KernelWork(flops=1e6, dram_bytes=0, precision="fp64")
        w32 = KernelWork(flops=1e6, dram_bytes=0, precision="fp32")
        assert m.duration_ns(w32) < m.duration_ns(w64)

    def test_launch_overhead_floor(self):
        m = ComputeModel(launch_overhead_ns=5000.0)
        assert m.duration_ns(KernelWork(flops=0, dram_bytes=0)) == 5000.0

    def test_efficiency_derates(self):
        fast = ComputeModel(efficiency=1.0, launch_overhead_ns=0.0)
        slow = ComputeModel(efficiency=0.5, launch_overhead_ns=0.0)
        w = KernelWork(flops=1e6, dram_bytes=1e6)
        assert slow.duration_ns(w) == pytest.approx(2 * fast.duration_ns(w))

    def test_bad_efficiency(self):
        with pytest.raises(ValueError):
            ComputeModel(efficiency=0.0)
        with pytest.raises(ValueError):
            ComputeModel(efficiency=1.5)

    def test_custom_params(self):
        params = GPUParams(name="toy", hbm_bytes_per_ns=1.0)
        m = ComputeModel(params=params, efficiency=1.0, launch_overhead_ns=0.0)
        assert m.duration_ns(KernelWork(flops=0, dram_bytes=100)) == 100.0
