"""Warp/L1 store coalescing tests, including hypothesis invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gpu.coalescer import LINE_BYTES, coalesce_stream, size_histogram


def coalesce(addrs, sizes, warp_size=32):
    a, s, w = coalesce_stream(
        np.asarray(addrs, dtype=np.int64),
        np.asarray(sizes, dtype=np.int64),
        warp_size=warp_size,
    )
    return list(zip(a.tolist(), s.tolist())), w.tolist()


class TestBasicPatterns:
    def test_contiguous_warp_full_line(self):
        """32 threads x 4 B consecutive = one 128 B transaction."""
        txns, _ = coalesce(np.arange(32) * 4, [4] * 32)
        assert txns == [(0, 128)]

    def test_contiguous_8B_two_lines(self):
        """32 threads x 8 B = 256 B, split at the line boundary."""
        txns, _ = coalesce(np.arange(32) * 8, [8] * 32)
        assert txns == [(0, 128), (128, 128)]

    def test_fully_scattered_no_merge(self):
        addrs = np.arange(32) * 1024
        txns, _ = coalesce(addrs, [8] * 32)
        assert txns == [(a, 8) for a in addrs.tolist()]

    def test_duplicate_addresses_merge(self):
        txns, _ = coalesce([64, 64, 64, 64], [8, 8, 8, 8], warp_size=4)
        assert txns == [(64, 8)]

    def test_overlapping_ranges_merge(self):
        txns, _ = coalesce([0, 4], [8, 8], warp_size=2)
        assert txns == [(0, 12)]

    def test_adjacent_ranges_merge(self):
        txns, _ = coalesce([0, 8], [8, 8], warp_size=2)
        assert txns == [(0, 16)]

    def test_no_merge_across_warps(self):
        """Same address in different warps stays separate."""
        txns, warps = coalesce([0, 0], [8, 8], warp_size=1)
        assert txns == [(0, 8), (0, 8)]
        assert warps == [0, 1]

    def test_store_crossing_line_boundary_splits(self):
        txns, _ = coalesce([120], [16], warp_size=1)
        assert txns == [(120, 8), (128, 8)]

    def test_partial_trailing_warp(self):
        txns, _ = coalesce([0, 8, 2048], [8, 8, 8], warp_size=32)
        assert txns == [(0, 16), (2048, 8)]

    def test_empty(self):
        txns, _ = coalesce([], [])
        assert txns == []


class TestValidation:
    def test_mismatched_shapes(self):
        with pytest.raises(ValueError):
            coalesce_stream(np.zeros(3, np.int64), np.zeros(2, np.int64))

    def test_zero_size_rejected(self):
        with pytest.raises(ValueError):
            coalesce(np.asarray([0]), np.asarray([0]))

    def test_negative_addr_rejected(self):
        with pytest.raises(ValueError):
            coalesce(np.asarray([-8]), np.asarray([8]))


class TestHistogram:
    def test_buckets(self):
        h = size_histogram(np.array([4, 8, 8, 32, 128]))
        assert h["<=4B"] == pytest.approx(0.2)
        assert h["<=8B"] == pytest.approx(0.4)
        assert h["<=32B"] == pytest.approx(0.2)
        assert h["<=128B"] == pytest.approx(0.2)

    def test_empty(self):
        h = size_histogram(np.array([]))
        assert all(v == 0.0 for v in h.values())

    def test_oversize_bucket(self):
        h = size_histogram(np.array([256]))
        assert h[">128B"] == 1.0


@st.composite
def store_streams(draw):
    n = draw(st.integers(1, 200))
    addrs = draw(
        st.lists(st.integers(0, 4096), min_size=n, max_size=n)
    )
    sizes = draw(st.lists(st.integers(1, 16), min_size=n, max_size=n))
    return np.asarray(addrs, dtype=np.int64), np.asarray(sizes, dtype=np.int64)


class TestHypothesisInvariants:
    @given(store_streams())
    @settings(max_examples=80, deadline=None)
    def test_byte_conservation_per_warp(self, stream):
        """Transactions cover exactly the union of each warp's bytes."""
        addrs, sizes = stream
        ta, ts, tw = coalesce_stream(addrs, sizes, warp_size=32)
        # Expected: per warp, the union of [a, a+s) byte sets.
        expected: dict[int, set[int]] = {}
        for i, (a, s) in enumerate(zip(addrs.tolist(), sizes.tolist())):
            expected.setdefault(i // 32, set()).update(range(a, a + s))
        got: dict[int, set[int]] = {}
        for a, s, w in zip(ta.tolist(), ts.tolist(), tw.tolist()):
            bucket = got.setdefault(w, set())
            span = set(range(a, a + s))
            assert not bucket & span, "transactions overlap"
            bucket |= span
        assert got == expected

    @given(store_streams())
    @settings(max_examples=80, deadline=None)
    def test_transactions_within_single_line(self, stream):
        addrs, sizes = stream
        ta, ts, _ = coalesce_stream(addrs, sizes)
        for a, s in zip(ta.tolist(), ts.tolist()):
            assert a // LINE_BYTES == (a + s - 1) // LINE_BYTES

    @given(store_streams())
    @settings(max_examples=50, deadline=None)
    def test_deterministic(self, stream):
        addrs, sizes = stream
        r1 = coalesce_stream(addrs, sizes)
        r2 = coalesce_stream(addrs, sizes)
        for x, y in zip(r1, r2):
            assert np.array_equal(x, y)
