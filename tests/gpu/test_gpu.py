"""GPU composition and HBM model tests."""

import pytest

from repro.gpu.compute import ComputeModel, KernelWork
from repro.gpu.gpu import GPU
from repro.gpu.hbm import HBMModel


class TestHBM:
    def test_access_time(self):
        hbm = HBMModel(bandwidth_bytes_per_ns=900.0, latency_ns=350.0)
        assert hbm.access_time_ns(0) == 0.0
        assert hbm.access_time_ns(9000) == pytest.approx(360.0)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            HBMModel().access_time_ns(-1)

    def test_drain_rate_exceeds_pcie(self):
        """Sec. IV-C: local memory can always absorb link-rate ingress."""
        assert HBMModel().drain_rate() > 128.0


class TestGPU:
    def test_kernel_time_delegates_to_compute_model(self):
        gpu = GPU(index=0, compute=ComputeModel(efficiency=1.0, launch_overhead_ns=0))
        w = KernelWork(flops=0, dram_bytes=9_000.0)
        assert gpu.kernel_time_ns(w) == pytest.approx(10.0)

    def test_l2_bound_to_gpu_index(self):
        gpu = GPU(index=2)
        assert gpu.l2.gpu == 2

    def test_negative_index_rejected(self):
        with pytest.raises(ValueError):
            GPU(index=-1)
