"""Cache model tests."""

from repro.gpu.caches import L2Cache, SetAssociativeCache
from repro.gpu.memory import gpu_base

import pytest


class TestSetAssociative:
    def test_miss_then_hit(self):
        c = SetAssociativeCache(capacity_bytes=16 * 128 * 4, ways=4)
        assert not c.access(0)
        assert c.access(0)

    def test_same_line_different_bytes_hit(self):
        c = SetAssociativeCache(capacity_bytes=16 * 128 * 4, ways=4)
        c.access(256)
        assert c.access(256 + 127)

    def test_lru_eviction(self):
        c = SetAssociativeCache(capacity_bytes=2 * 128, ways=2)  # 1 set
        c.access(0 * 128)
        c.access(1 * 128)
        c.access(0 * 128)  # refresh line 0
        c.access(2 * 128)  # evicts line 1 (LRU)
        assert c.contains(0)
        assert not c.contains(128)

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            SetAssociativeCache(capacity_bytes=1000, ways=3)

    def test_stats(self):
        c = SetAssociativeCache(capacity_bytes=4 * 128 * 2, ways=4)
        c.access(0)
        c.access(0)
        assert c.stats.hits == 1
        assert c.stats.misses == 1
        assert c.stats.hit_rate == 0.5

    def test_flush(self):
        c = SetAssociativeCache(capacity_bytes=4 * 128 * 2, ways=4)
        c.access(0)
        c.flush()
        assert not c.contains(0)


class TestL2MemorySide:
    def test_local_addresses_cached(self):
        l2 = L2Cache(gpu=0, capacity_bytes=16 * 128 * 16)
        addr = gpu_base(0) + 4096
        assert not l2.access(addr)
        assert l2.access(addr)

    def test_remote_addresses_bypass(self):
        """Paper Sec. III: remote stores are never L2-cached."""
        l2 = L2Cache(gpu=0, capacity_bytes=16 * 128 * 16)
        remote = gpu_base(1) + 4096
        assert not l2.access(remote)
        assert not l2.access(remote)
        assert l2.stats.bypasses == 2
        assert l2.stats.hits == 0
