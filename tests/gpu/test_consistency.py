"""Scoped weak memory model checker tests."""

import pytest

from repro.gpu.consistency import (
    OrderingChecker,
    OrderingViolation,
    ProgramStore,
    Scope,
)


def store(seq, addr, size=8):
    return ProgramStore(seq=seq, addr=addr, size=size)


class TestProgramStore:
    def test_overlap(self):
        assert store(0, 0, 8).overlaps(store(1, 4, 8))
        assert not store(0, 0, 8).overlaps(store(1, 8, 8))


class TestOrderingChecker:
    def test_reordering_different_addresses_allowed(self):
        """The weak model permits free reordering of non-overlapping
        stores between synchronization points (paper Sec. IV-C)."""
        c = OrderingChecker()
        c.issue(store(0, 0))
        c.issue(store(1, 64))
        c.observe_store(1)
        c.observe_store(0)  # no violation

    def test_same_address_order_enforced(self):
        c = OrderingChecker()
        c.issue(store(0, 0))
        c.issue(store(1, 0))
        c.observe_store(1)
        with pytest.raises(OrderingViolation):
            c.observe_store(0)

    def test_partial_overlap_enforced(self):
        c = OrderingChecker()
        c.issue(store(0, 0, 8))
        c.issue(store(1, 4, 8))
        c.observe_store(1)
        with pytest.raises(OrderingViolation):
            c.observe_store(0)

    def test_release_requires_prior_visibility(self):
        c = OrderingChecker()
        c.issue(store(0, 0))
        rid = c.release()
        with pytest.raises(OrderingViolation):
            c.observe_release(rid)

    def test_release_after_flush_ok(self):
        c = OrderingChecker()
        c.issue(store(0, 0))
        rid = c.release()
        c.observe_store(0)
        c.observe_release(rid)

    def test_release_scopes_only_prior_stores(self):
        c = OrderingChecker()
        c.issue(store(0, 0))
        rid = c.release()
        c.issue(store(1, 8))  # after the release; not covered by it
        c.observe_store(0)
        c.observe_release(rid)
        assert c.pending_count == 1

    def test_coalesced_observation(self):
        c = OrderingChecker()
        c.issue(store(0, 0))
        c.issue(store(1, 0))
        c.observe_coalesced([1, 0])  # merged write observes in order

    def test_double_visibility_rejected(self):
        c = OrderingChecker()
        c.issue(store(0, 0))
        c.observe_store(0)
        with pytest.raises(OrderingViolation):
            c.observe_store(0)

    def test_unknown_store_rejected(self):
        c = OrderingChecker()
        with pytest.raises(OrderingViolation):
            c.observe_store(7)

    def test_unknown_release_rejected(self):
        c = OrderingChecker()
        with pytest.raises(OrderingViolation):
            c.observe_release(3)

    def test_duplicate_seq_rejected(self):
        c = OrderingChecker()
        c.issue(store(0, 0))
        with pytest.raises(ValueError):
            c.issue(store(0, 8))

    def test_scope_enum(self):
        assert Scope.SYSTEM.value == "sys"
