"""Registry behavior: registration, lookup, did-you-mean errors."""

import pytest

from repro import registry
from repro.registry import Registry, RegistryError


class TestRegistryCore:
    def test_register_decorator_round_trip(self):
        reg = Registry("widget")

        @reg.register("frob")
        class Frob:
            pass

        assert reg.resolve("frob") is Frob
        assert "frob" in reg
        assert reg.names() == ["frob"]

    def test_duplicate_registration_rejected(self):
        reg = Registry("widget")
        reg.add("frob", object())
        with pytest.raises(ValueError, match="already registered"):
            reg.add("frob", object())

    def test_replace_opt_in(self):
        reg = Registry("widget")
        first, second = object(), object()
        reg.add("frob", first)
        reg.add("frob", second, replace=True)
        assert reg.resolve("frob") is second

    def test_empty_name_rejected(self):
        reg = Registry("widget")
        with pytest.raises(ValueError, match="non-empty"):
            reg.add("", object())

    def test_unknown_name_raises_registry_error(self):
        reg = Registry("widget")
        reg.add("frobnicator", object())
        with pytest.raises(RegistryError) as exc:
            reg.resolve("frobnicatr")
        msg = str(exc.value)
        assert "unknown widget 'frobnicatr'" in msg
        assert "did you mean 'frobnicator'" in msg
        assert "known: frobnicator" in msg

    def test_registry_error_is_key_error(self):
        """Legacy ``except KeyError`` call sites keep working."""
        reg = Registry("widget")
        with pytest.raises(KeyError):
            reg.resolve("nope")

    def test_no_suggestion_when_nothing_close(self):
        reg = Registry("widget")
        reg.add("alpha", object())
        with pytest.raises(RegistryError) as exc:
            reg.resolve("zzzzzzzz")
        assert "did you mean" not in str(exc.value)

    def test_get_returns_default(self):
        reg = Registry("widget")
        assert reg.get("nope") is None
        assert reg.get("nope", 42) == 42


class TestGlobalRegistries:
    """The four built-in registries populate lazily and completely."""

    def test_workloads_populated(self):
        expected = {"jacobi", "pagerank", "sssp", "als", "ct", "eqwp",
                    "diffusion", "hit"}
        assert expected <= set(registry.workloads.names())

    def test_paradigms_populated(self):
        expected = {"p2p", "wc", "gps", "finepack", "dma", "dma_sliced",
                    "infinite"}
        assert expected <= set(registry.paradigms.names())

    def test_topologies_populated(self):
        expected = {"single_switch", "fully_connected", "two_level_tree",
                    "two_level"}
        assert expected <= set(registry.topologies.names())

    def test_scenarios_populated(self):
        assert "flaky-retimer" in registry.scenarios
        assert "partition" in registry.scenarios

    def test_resolved_workload_class_matches_name(self):
        cls = registry.workloads.resolve("jacobi")
        assert cls.name == "jacobi"

    def test_legacy_dict_views_match_registries(self):
        from repro.sim.paradigms import PARADIGMS
        from repro.workloads import WORKLOADS

        assert WORKLOADS == dict(registry.workloads.items())
        assert PARADIGMS == dict(registry.paradigms.items())


class TestSharedValidationSurface:
    """One resolve() serves the CLI, make_paradigm, topology and chaos."""

    def test_cli_unknown_workload_suggests(self):
        from repro.cli import main

        with pytest.raises(SystemExit, match="did you mean 'jacobi'"):
            main(["run", "jacboi", "finepack"])

    def test_make_paradigm_keeps_keyerror_contract(self):
        from repro.sim.paradigms import make_paradigm

        with pytest.raises(KeyError, match="did you mean"):
            make_paradigm("finepak")

    def test_unknown_topology_keeps_valueerror_contract(self):
        from repro.sim.system import MultiGPUSystem

        with pytest.raises(ValueError, match="topology"):
            MultiGPUSystem.build(n_gpus=2, topology_kind="ring_of_fire")

    def test_unknown_scenario_suggests(self):
        from repro.faults import ScenarioError, load_scenario

        with pytest.raises(ScenarioError, match="flaky-retimer"):
            load_scenario("flaky-retimr")
