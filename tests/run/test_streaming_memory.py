"""Constant-memory regression test for streamed trace generation.

``ru_maxrss`` is a monotonic per-process high-water mark, so the two
generation modes each run in a fresh subprocess and report their own
peak.  Each child also records its post-import baseline and the test
compares the *deltas* above it: import-time residency swings with
system page-cache state (a warm cache fault-arounds whole shared
objects in), and only memory the generation itself touches is the
quantity under test.

The workload is CT with ``cluster=1`` (no coalescible locality): every
iteration draws fresh RNG corrections, so whole-trace generation must
hold every iteration's store columns at once while the streamed path
holds one ``chunk_ops`` block and spills -- the gap is the measured
guarantee (streamed delta at most half the whole-trace delta, the
>=2x peak-memory reduction gate).
"""

import json
import subprocess
import sys
from pathlib import Path

SRC = Path(__file__).resolve().parents[2] / "src"

PROBE = """
import json, resource, sys, tempfile
from repro.run import RunSpec, TraceCache

stream = sys.argv[1] == "stream"
baseline_kb = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
spec = RunSpec(
    workload="ct",
    paradigm="finepack",
    n_gpus=2,
    iterations=16,
    workload_params={
        "volume_voxels": 500_000_000,
        "total_corrections": 1_600_000,
        "cluster": 1,
    },
)
with tempfile.TemporaryDirectory() as root:
    cache = TraceCache(root, stream=stream, chunk_ops=262_144)
    trace = cache.get_or_generate(spec)
    ops = sum(p.stores.count for it in trace.iterations for p in it.phases)
print(json.dumps({
    "ops": ops,
    "baseline_kb": baseline_kb,
    "peak_kb": resource.getrusage(resource.RUSAGE_SELF).ru_maxrss,
}))
"""


def generation_rss(mode: str) -> dict:
    proc = subprocess.run(
        [sys.executable, "-c", PROBE, mode],
        capture_output=True,
        text=True,
        env={"PYTHONPATH": str(SRC), "PATH": "/usr/bin:/bin"},
        check=True,
    )
    row = json.loads(proc.stdout.strip().splitlines()[-1])
    row["delta_kb"] = row["peak_kb"] - row["baseline_kb"]
    return row


def test_streamed_generation_halves_peak_rss():
    # Whole-trace mode first: its large allocation can only perturb the
    # later streamed child's baseline in the direction that *shrinks*
    # the streamed delta, keeping the gate deterministic.
    whole = generation_rss("whole")
    streamed = generation_rss("stream")
    # Both modes produced the same trace.
    assert streamed["ops"] == whole["ops"] > 10_000_000
    # The whole-trace columns are ~300 MB of int64, so a meaningful
    # measurement must show a substantial generation footprint (the
    # floor is lax because a warm import baseline absorbs part of it).
    assert whole["delta_kb"] > 64 * 1024, whole
    # The memory gate: spill-while-generating must keep the peak at or
    # below half of materialize-then-write.  (Measured headroom is
    # ~3x; 2x is the contract.)
    assert streamed["delta_kb"] <= 0.5 * whole["delta_kb"], (
        f"streamed generation delta {streamed['delta_kb']} kB vs "
        f"whole-trace delta {whole['delta_kb']} kB"
    )
