"""Supervised executor: retry/quarantine, durability, resume identity.

Covers the resilience layer end to end: the ``faulty`` fixture workload
injects real worker crashes (``os._exit``), hangs, and exceptions; the
tests assert the supervisor's accounting (attempts, retries,
quarantine, failure kinds), the strict/degraded contract, the
content-addressed :class:`OutcomeStore` (including corruption
recovery), the grid journal, and the headline property: a grid killed
at an arbitrary cell boundary and resumed from its journal produces
outcomes identical to an uninterrupted run.
"""

import atexit
import glob
import os
import pickle
import tempfile
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro.run.executor as executor_module
from repro.faults.errors import DegradedRunError
from repro.run import (
    CellExecutionError,
    CellFailure,
    GridExecutionError,
    GridJournal,
    GridOutcome,
    OutcomeStore,
    RetryPolicy,
    RunContext,
    RunOutcome,
    RunSpec,
    execute_grid,
    grid_key,
)

JACOBI = RunSpec(workload="jacobi", workload_params={"n": 64}, n_gpus=2,
                 iterations=1)
DIFFUSION = RunSpec(workload="diffusion", workload_params={"n": 48},
                    n_gpus=2, iterations=1)
GRID = [
    JACOBI.with_options(paradigm="p2p"),
    JACOBI.with_options(paradigm="finepack"),
    DIFFUSION.with_options(paradigm="p2p"),
    DIFFUSION.with_options(paradigm="finepack"),
]


def faulty_spec(mode="ok", budget=0, token_dir="", token="cell", **kw):
    """A tiny spec over the package-registered misbehaving workload."""
    params = {"n": 16, "mode": mode, "budget": budget,
              "token_dir": token_dir, "token": token, **kw}
    return RunSpec(workload="faulty", paradigm="p2p", n_gpus=2,
                   iterations=1, workload_params=params)


def essence(outcome: RunOutcome) -> bytes:
    """The substantive content of an outcome, as bytes: everything but
    the ``compare=False`` accounting fields.

    One pickle round trip canonicalizes internal object-identity
    sharing (a freshly simulated metrics object shares sub-objects a
    store round trip does not), so byte comparison reflects content,
    not allocation history.
    """
    payload = pickle.dumps(
        (outcome.spec, outcome.metrics, outcome.degraded, outcome.reasons)
    )
    return pickle.dumps(pickle.loads(payload))


class TestRetryPolicy:
    def test_validation(self):
        with pytest.raises(ValueError, match="max_attempts"):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError, match="timeout_s"):
            RetryPolicy(timeout_s=0)
        with pytest.raises(ValueError, match="jitter"):
            RetryPolicy(jitter=-0.1)

    def test_backoff_deterministic_and_capped(self):
        p = RetryPolicy(backoff_base_s=0.1, backoff_factor=2.0,
                        backoff_max_s=0.3, jitter=0.5)
        assert p.backoff("k", 1) == p.backoff("k", 1)
        assert p.backoff("k", 1) != p.backoff("other", 1)
        # attempt 5 -> base 1.6 capped at 0.3, jitter adds <= 50%
        assert 0.3 <= p.backoff("k", 5) <= 0.45

    def test_no_jitter_is_exact(self):
        p = RetryPolicy(backoff_base_s=0.05, backoff_factor=2.0, jitter=0.0)
        assert p.backoff("k", 2) == pytest.approx(0.1)


class TestOutcomeStore:
    def test_round_trip_and_freshness(self, tmp_path):
        store = OutcomeStore(tmp_path)
        (outcome,) = execute_grid([JACOBI], jobs=1)
        store.put(outcome)
        a, b = store.get(JACOBI), store.get(JACOBI)
        assert a == outcome and a.cached and not outcome.cached
        assert a is not b and a.metrics is not b.metrics  # never aliased
        assert store.stats()["hits"] == 2

    def test_survives_process_boundary(self, tmp_path):
        store = OutcomeStore(tmp_path)
        (outcome,) = execute_grid([JACOBI], jobs=1)
        store.put(outcome)
        fresh = OutcomeStore(tmp_path)  # a different "process"
        assert fresh.get(JACOBI) == outcome
        assert JACOBI in fresh

    def test_corruption_detected_and_recovered(self, tmp_path):
        store = OutcomeStore(tmp_path)
        (outcome,) = execute_grid([JACOBI], jobs=1)
        key = store.put(outcome)
        path = store.path_for(key)
        path.write_bytes(path.read_bytes()[:40] + b"XXXX")
        fresh = OutcomeStore(tmp_path)
        assert fresh.get(JACOBI) is None
        assert fresh.stats()["corrupt"] == 1
        assert not path.exists()  # dropped, not left to fail forever

    def test_memory_only_store(self):
        store = OutcomeStore()
        (outcome,) = execute_grid([JACOBI], jobs=1)
        store.put(outcome)
        assert store.path_for(JACOBI.key()) is None
        assert store.get(JACOBI) == outcome

    def test_cached_outcome_reports_zero_trace_traffic(self, tmp_path):
        store = OutcomeStore(tmp_path)
        (outcome,) = execute_grid([JACOBI], jobs=1)
        assert outcome.cache_stats["misses"] == 1
        store.put(outcome)
        served = store.get(JACOBI)
        assert served.cache_stats == {"hits": 0, "misses": 0, "corrupt": 0}


class TestGridJournal:
    def test_resume_rejects_different_grid(self, tmp_path):
        path = tmp_path / "j.jsonl"
        with GridJournal(path, GRID) as j:
            j.record_finish(0, GRID[0])
        with pytest.raises(ValueError, match="different spec grid"):
            GridJournal(path, list(reversed(GRID)), resume=True)

    def test_resume_rejects_wrong_cell_count(self, tmp_path):
        path = tmp_path / "j.jsonl"
        GridJournal(path, GRID).close()
        # Same key prefix is impossible with different cells, so fake a
        # same-key grid by duplicating: key changes -> different-grid
        # error; the cell-count check needs an equal-key scenario, which
        # grid_key makes unreachable -- assert the key guard fires first.
        with pytest.raises(ValueError):
            GridJournal(path, GRID + [GRID[0]], resume=True)

    def test_torn_trailing_line_tolerated(self, tmp_path):
        path = tmp_path / "j.jsonl"
        with GridJournal(path, GRID) as j:
            j.record_finish(0, GRID[0])
        with open(path, "a") as fh:
            fh.write('{"e": "finish", "i": 1, "ke')  # killed mid-write
        j2 = GridJournal(path, GRID, resume=True)
        assert j2.finished(0, GRID[0])
        assert not j2.finished(1, GRID[1])
        j2.close()

    def test_quarantined_cells_not_done(self, tmp_path):
        path = tmp_path / "j.jsonl"
        with GridJournal(path, GRID) as j:
            j.record_fail(2, GRID[2], 3, "error", "RuntimeError", "boom")
            j.record_quarantine(2, GRID[2], 3)
        j2 = GridJournal(path, GRID, resume=True)
        assert not j2.finished(2, GRID[2])  # re-run on resume
        j2.close()

    def test_grid_key_orders_matter(self):
        assert grid_key(GRID) != grid_key(list(reversed(GRID)))


class TestStrictContract:
    def test_strict_raises_after_drain(self):
        specs = [faulty_spec(), faulty_spec("raise", budget=1, token="s1")]
        with pytest.raises(GridExecutionError) as err:
            execute_grid(specs, retries=1)
        grid = err.value.grid
        assert isinstance(grid, GridOutcome)
        # The healthy cell still completed before the raise.
        assert len(grid.outcomes()) == 1
        (failure,) = grid.failures()
        assert failure.index == 1 and failure.attempts == 2

    def test_degraded_grid_returns_cell_failures(self):
        specs = [faulty_spec(), faulty_spec("raise", budget=1, token="d1")]
        grid = execute_grid(specs, retries=0, strict=False)
        assert not grid.ok
        ok, fail = grid.cells
        assert isinstance(ok, RunOutcome)
        assert isinstance(fail, CellFailure)
        assert fail.kind == "error" and fail.error_type == "RuntimeError"
        assert fail.quarantined and fail.attempts == 1
        assert "injected failure" in fail.message
        assert fail.as_dict()["key"] == specs[1].key()

    def test_retry_recovers_transient_failure(self, tmp_path):
        spec = faulty_spec("raise", budget=1, token_dir=str(tmp_path),
                           token="t1")
        retry = RetryPolicy(max_attempts=3, backoff_base_s=0.0, jitter=0.0)
        grid = execute_grid([spec], retry=retry, strict=False)
        assert grid.ok
        (outcome,) = grid.cells
        assert outcome.attempts == 2
        assert grid.retry_stats == {
            "attempts": 2, "retried": 1, "quarantined": 0,
            "timeouts": 0, "crashes": 0, "errors": 1, "pool_breaks": 0,
        }

    def test_conflicting_retry_arguments_rejected(self):
        with pytest.raises(ValueError, match="not both"):
            execute_grid([JACOBI], retry=RetryPolicy(), retries=2)

    def test_resume_requires_journal_and_disk_store(self, tmp_path):
        with pytest.raises(ValueError, match="journal"):
            execute_grid([JACOBI], resume=True)
        with pytest.raises(ValueError, match="disk-backed"):
            execute_grid([JACOBI], resume=True, journal=tmp_path / "j.jsonl")


class TestWorkerFailures:
    """Real subprocess crashes and hangs through the supervised pool."""

    def test_worker_crash_is_survived_and_counted(self, tmp_path):
        specs = [
            faulty_spec(),
            faulty_spec("crash", budget=1, token_dir=str(tmp_path),
                        token="c1"),
        ]
        grid = execute_grid(specs, jobs=2, retries=2, strict=False)
        assert grid.ok  # the crash was transient: retry recovered it
        assert grid.retry_stats["pool_breaks"] >= 1
        assert all(isinstance(c, RunOutcome) for c in grid.cells)

    def test_permanent_crash_quarantines(self):
        specs = [faulty_spec(), faulty_spec("crash", budget=1, token="c2")]
        grid = execute_grid(specs, jobs=2, retries=1, strict=False)
        failures = grid.failures()
        assert len(failures) == 1
        assert failures[0].kind == "crash"
        assert failures[0].attempts == 2
        assert grid.retry_stats["quarantined"] == 1
        # The healthy cell survived the pool being broken around it.
        assert isinstance(grid.cells[0], RunOutcome)

    def test_hung_worker_detected_and_replaced(self, tmp_path):
        specs = [
            faulty_spec(),
            faulty_spec("hang", budget=1, token_dir=str(tmp_path),
                        token="h1", hang_s=60.0),
        ]
        grid = execute_grid(specs, jobs=2, timeout=3.0, retries=1,
                            strict=False)
        assert grid.ok  # killed once, retried, succeeded
        assert grid.retry_stats["timeouts"] == 1

    def test_worker_pid_recorded(self):
        grid = execute_grid(GRID[:2], jobs=2, strict=False)
        pids = {c.worker_pid for c in grid.cells}
        assert all(isinstance(p, int) for p in pids)
        assert os.getpid() not in pids


class TestDurability:
    def test_warm_store_skips_resimulation(self, tmp_path):
        store = OutcomeStore(tmp_path / "outcomes")
        cold = execute_grid(GRID, jobs=1, outcome_store=store, strict=False)
        assert cold.outcome_cache == {"hits": 0, "misses": 4, "corrupt": 0}
        warm = execute_grid(GRID, jobs=1, outcome_store=store, strict=False)
        # The acceptance bar: >= 95% hits, nothing re-simulated.
        assert warm.outcome_cache["hits"] == len(GRID)
        assert warm.outcome_cache["misses"] == 0
        assert warm.retry_stats["attempts"] == 0
        assert all(c.cached for c in warm.cells)
        assert [essence(c) for c in warm.cells] == [
            essence(c) for c in cold.cells
        ]

    def test_warm_store_across_processes(self, tmp_path):
        store_dir = tmp_path / "outcomes"
        execute_grid(GRID, jobs=2, outcome_store=store_dir, strict=False)
        warm = execute_grid(GRID, jobs=2, outcome_store=store_dir,
                            strict=False)
        assert warm.outcome_cache["hits"] == len(GRID)

    def test_journal_colocates_store_with_trace_cache(self, tmp_path):
        grid = execute_grid(GRID, jobs=1, trace_cache=tmp_path,
                            journal=tmp_path, strict=False)
        assert grid.journal_path is not None
        assert Path(grid.journal_path).exists()
        assert list((tmp_path / "outcomes").glob("outcome-*.pkl"))

    def test_resume_finishes_interrupted_grid(self, tmp_path):
        """Kill serial execution at a cell boundary; resume completes
        the rest and the combined outcomes match an uninterrupted run."""
        journal = tmp_path / "grid.jsonl"
        store = OutcomeStore(tmp_path / "outcomes")
        interrupt_after(2, GRID, journal, store)
        resumed = execute_grid(GRID, jobs=1, outcome_store=store,
                               journal=journal, resume=True, strict=False)
        uninterrupted = execute_grid(GRID, jobs=1)
        assert [essence(c) for c in resumed.cells] == [
            essence(o) for o in uninterrupted
        ]
        assert [c.cached for c in resumed.cells] == [True, True, False, False]


def interrupt_after(n_cells: int, specs, journal, store) -> None:
    """Run a journaled serial grid, raising KeyboardInterrupt at the
    ``n_cells``-th cell boundary -- a faithful mid-sweep kill."""
    real = executor_module.RunContext
    remaining = [n_cells]

    class Interrupting(real):
        def execute(self):
            if remaining[0] == 0:
                raise KeyboardInterrupt
            remaining[0] -= 1
            return super().execute()

    executor_module.RunContext = Interrupting
    try:
        if n_cells >= len(specs):
            execute_grid(specs, jobs=1, outcome_store=store, journal=journal,
                         strict=False)
        else:
            with pytest.raises(KeyboardInterrupt):
                execute_grid(specs, jobs=1, outcome_store=store,
                             journal=journal, strict=False)
    finally:
        executor_module.RunContext = real


class TestResumeDeterminism:
    """The headline property (ISSUE satellite): killing a grid at *any*
    cell boundary and resuming yields outcomes identical to an
    uninterrupted serial run."""

    _reference = None

    @classmethod
    def reference(cls):
        if cls._reference is None:
            cls._reference = [
                essence(o) for o in execute_grid(GRID, jobs=1)
            ]
        return cls._reference

    @given(kill_at=st.integers(min_value=0, max_value=len(GRID)))
    @settings(max_examples=10, deadline=None)
    def test_resume_is_byte_identical(self, kill_at):
        tmp = Path(tempfile.mkdtemp(prefix="repro-resume-test-"))
        try:
            journal = tmp / "grid.jsonl"
            store = OutcomeStore(tmp / "outcomes")
            interrupt_after(kill_at, GRID, journal, store)
            resumed = execute_grid(GRID, jobs=1, outcome_store=store,
                                   journal=journal, resume=True,
                                   strict=False)
            assert grid_ok_bytes(resumed) == self.reference()
            cached = [c.cached for c in resumed.cells]
            assert cached == [i < kill_at for i in range(len(GRID))]
        finally:
            import shutil

            shutil.rmtree(tmp, ignore_errors=True)


def grid_ok_bytes(grid: GridOutcome) -> list[bytes]:
    assert grid.ok
    return [essence(c) for c in grid.cells]


class TestExceptionFidelity:
    """Satellite: exceptions must cross the worker boundary intact."""

    def degraded_error(self):
        from repro.sim.metrics import RunMetrics

        metrics = RunMetrics(workload="jacobi", paradigm="p2p", n_gpus=2)
        return DegradedRunError(
            "fabric degraded past completion",
            metrics=metrics,
            reasons=("gpu0->gpu1 unreachable", "gpu2->gpu3 unreachable"),
        )

    def test_degraded_run_error_round_trip(self):
        err = self.degraded_error()
        back = pickle.loads(pickle.dumps(err))
        assert isinstance(back, DegradedRunError)
        assert str(back) == str(err)
        assert back.reasons == err.reasons
        assert back.metrics == err.metrics

    def test_degraded_run_error_repeated_round_trip(self):
        """Re-pickling must not re-append the reasons detail."""
        err = self.degraded_error()
        twice = pickle.loads(pickle.dumps(pickle.loads(pickle.dumps(err))))
        assert str(twice) == str(err)
        assert str(twice).count("unreachable") == 2

    def test_real_degraded_run_crosses_worker_boundary(self):
        from repro.faults import load_scenario

        schedule = load_scenario("partition")
        spec = RunSpec(
            workload="jacobi", paradigm="p2p", n_gpus=2,
            scenario=schedule.to_json(indent=None), intensity=1.0,
            topology=schedule.topology or "single_switch",
            with_credits=schedule.with_credits,
        )
        serial = RunContext(spec).execute()
        assert serial.degraded
        grid = execute_grid([spec, spec.with_options(paradigm="finepack")],
                            jobs=2, strict=False)
        assert grid.ok
        parallel = grid.cells[0]
        assert parallel.degraded
        assert parallel.reasons == serial.reasons
        assert parallel.metrics == serial.metrics

    def test_cell_execution_error_round_trip(self):
        err = CellExecutionError("ValueError", "bad input", 4321, "tb text")
        back = pickle.loads(pickle.dumps(err))
        assert back.error_type == "ValueError"
        assert back.message == "bad input"
        assert back.worker_pid == 4321
        assert back.traceback_text == "tb text"


class TestOutcomeEqualityContract:
    def test_accounting_fields_excluded_from_equality(self):
        (a,) = execute_grid([JACOBI], jobs=1)
        (b,) = execute_grid([JACOBI], jobs=1)
        b.worker_pid, b.attempts, b.cached = 999, 7, True
        b.cache_stats = {"hits": 42}
        assert a == b  # substance equal; accounting ignored


class TestEphemeralCacheCleanup:
    """Satellite: the mkdtemp shared cache must never be stranded."""

    @staticmethod
    def ephemeral_dirs():
        pattern = os.path.join(
            tempfile.gettempdir(),
            executor_module.EPHEMERAL_CACHE_PREFIX + "*",
        )
        return set(glob.glob(pattern))

    def test_happy_path_cleans_up(self):
        before = self.ephemeral_dirs()
        execute_grid(GRID[:2], jobs=2)
        assert self.ephemeral_dirs() <= before

    def test_interrupt_mid_pool_cleans_up(self):
        """A KeyboardInterrupt while the pool is executing must not
        strand the temp cache (the original leak)."""
        before = self.ephemeral_dirs()
        interrupted = executor_module._run_parallel

        def boom(*args, **kwargs):
            raise KeyboardInterrupt

        executor_module._run_parallel = boom
        try:
            with pytest.raises(KeyboardInterrupt):
                execute_grid(GRID[:2], jobs=2)
        finally:
            executor_module._run_parallel = interrupted
        assert self.ephemeral_dirs() <= before

    def test_cleanup_registered_with_atexit(self, monkeypatch):
        """Interpreter exit (sys.exit under SIGTERM handlers) runs
        atexit hooks; the ephemeral dir must be covered by one for the
        whole lifetime of the pool."""
        registered = []
        real_register = atexit.register

        def tracking_register(fn, *a, **kw):
            registered.append(fn)
            return real_register(fn, *a, **kw)

        monkeypatch.setattr(atexit, "register", tracking_register)
        from repro.run.cache import TraceCache

        with executor_module._shared_cache_root(TraceCache()) as root:
            assert os.path.isdir(root)
            assert len(registered) == 1
        assert not os.path.isdir(root)
        # And the hook was unregistered after normal cleanup: calling
        # it again is a no-op on an already-removed directory.
        registered[0]()

    def test_disk_cache_passes_through_untouched(self, tmp_path):
        from repro.run.cache import TraceCache

        cache = TraceCache(tmp_path)
        with executor_module._shared_cache_root(cache) as root:
            assert root == str(tmp_path)
        assert tmp_path.is_dir()
