"""Executor: parallel == serial, order preservation, sweep folding."""

import pytest

from repro.run import (
    RunContext,
    RunSpec,
    execute_grid,
    labeled_sweep,
)

JACOBI = RunSpec(workload="jacobi", workload_params={"n": 64}, n_gpus=2,
                 iterations=1)
DIFFUSION = RunSpec(workload="diffusion", workload_params={"n": 48},
                    n_gpus=2, iterations=1)

#: Two workloads x two paradigms -- the satellite's required shape.
GRID = [
    JACOBI.with_options(paradigm="p2p"),
    JACOBI.with_options(paradigm="finepack"),
    DIFFUSION.with_options(paradigm="p2p"),
    DIFFUSION.with_options(paradigm="finepack"),
]


class TestParallelEqualsSerial:
    def test_grid_metrics_identical(self):
        serial = execute_grid(GRID, jobs=1)
        parallel = execute_grid(GRID, jobs=4)
        assert [o.metrics for o in serial] == [o.metrics for o in parallel]
        assert [o.spec for o in serial] == GRID  # order preserved

    def test_sweep_tables_identical_including_best(self):
        labeled = {
            f"{spec.workload}/{spec.paradigm}": spec for spec in GRID
        }
        serial = labeled_sweep(labeled, jobs=1)
        parallel = labeled_sweep(labeled, jobs=4)
        assert serial.result.points == parallel.result.points
        assert serial.baseline.metrics == parallel.baseline.metrics
        assert serial.result.best() == parallel.result.best()

    def test_best_tie_break_stable_across_jobs(self):
        """Two labels, one spec -> equal speedups; best() must pick the
        lexicographically-smaller label in serial and parallel alike."""
        labeled = {"zz": JACOBI, "aa": JACOBI}
        serial = labeled_sweep(labeled, jobs=1)
        parallel = labeled_sweep(labeled, jobs=2)
        assert serial.result.best().label == "aa"
        assert parallel.result.best().label == "aa"

    def test_compare_paradigms_identical(self):
        from repro.sim.runner import ExperimentConfig, compare_paradigms
        from repro.workloads import JacobiWorkload

        cfg = ExperimentConfig(n_gpus=2, iterations=1)
        serial = compare_paradigms(
            JacobiWorkload(n=64), ("p2p", "finepack"), cfg, jobs=1
        )
        parallel = compare_paradigms(
            JacobiWorkload(n=64), ("p2p", "finepack"), cfg, jobs=2
        )
        assert serial.single_gpu == parallel.single_gpu
        assert serial.runs == parallel.runs

    def test_chaos_sweep_identical(self):
        from repro.faults import chaos_sweep, load_scenario
        from repro.sim.runner import ExperimentConfig
        from repro.workloads import JacobiWorkload

        cfg = ExperimentConfig(n_gpus=2, iterations=1)
        schedule = load_scenario("flaky-retimer")
        kwargs = dict(
            intensities=(0.0, 1.0), paradigms=("p2p", "finepack"), config=cfg
        )
        serial = chaos_sweep(JacobiWorkload(n=64), schedule, **kwargs)
        parallel = chaos_sweep(JacobiWorkload(n=64), schedule, jobs=3, **kwargs)
        assert serial.points == parallel.points


class TestExecutorContract:
    def test_results_align_with_input_order(self):
        outcomes = execute_grid(GRID, jobs=2)
        assert [o.spec for o in outcomes] == GRID

    def test_rejects_bad_jobs(self):
        with pytest.raises(ValueError, match="jobs"):
            execute_grid(GRID, jobs=0)

    def test_tracer_factory_requires_serial(self):
        with pytest.raises(ValueError, match="jobs=1"):
            execute_grid(GRID, jobs=2, tracer_factory=lambda label: None)

    def test_label_count_must_match(self):
        with pytest.raises(ValueError, match="labels"):
            execute_grid(GRID, jobs=1, labels=["just-one"])

    def test_empty_sweep_rejected(self):
        with pytest.raises(ValueError, match="empty sweep"):
            labeled_sweep({})

    def test_degraded_runs_reported_as_data(self):
        from repro.faults import load_scenario

        schedule = load_scenario("partition")
        spec = JACOBI.with_options(
            workload_params={},  # default-size run: long enough to hit the cut
            scenario=schedule.to_json(indent=None),
            intensity=1.0,
            topology=schedule.topology or "single_switch",
            with_credits=schedule.with_credits,
        )
        (outcome,) = execute_grid([spec], jobs=1)
        assert outcome.degraded
        assert outcome.reasons


class TestCacheIntegration:
    def test_parallel_grid_shares_disk_cache(self, tmp_path):
        execute_grid(GRID, jobs=4, trace_cache=tmp_path)
        # 2 workloads -> at most 2 distinct trace entries, never 4
        entries = list(tmp_path.glob("trace-*/header.json"))
        assert 1 <= len(entries) <= 2

    def test_warm_cache_skips_all_generation(self, tmp_path):
        """The observable proof: a warm cache turns every lookup into a
        hit (zero misses = zero trace generations)."""
        from repro.run import aggregate_cache_stats

        execute_grid(GRID, jobs=1, trace_cache=tmp_path)
        warm = execute_grid(GRID, jobs=1, trace_cache=tmp_path)
        stats = aggregate_cache_stats(warm)
        assert stats["misses"] == 0
        assert stats["hits"] == len(GRID)

    def test_outcomes_carry_cache_deltas(self):
        outcomes = execute_grid(GRID[:2], jobs=1)
        assert outcomes[0].cache_stats["misses"] == 1  # generated
        assert outcomes[1].cache_stats["hits"] == 1    # reused in memory


class TestRunContextOverrides:
    def test_explicit_trace_wins(self):
        from repro.workloads import JacobiWorkload

        w = JacobiWorkload(n=64)
        trace = w.generate_trace(n_gpus=2, iterations=1, seed=7)
        ctx = RunContext(JACOBI, trace=trace)
        assert ctx.trace is trace
        assert ctx.run().total_time_ns > 0

    def test_paradigm_override(self):
        from repro.sim.paradigms import make_paradigm

        p = make_paradigm("p2p")
        ctx = RunContext(JACOBI, paradigm=p)
        assert ctx.paradigm is p
