"""RunSpec: deep-freezing, content addressing, component construction."""

import dataclasses

import pytest

from repro.core.config import FabricConfig, FinePackConfig
from repro.interconnect.pcie import GENERATIONS
from repro.run import RunSpec, freeze_params
from repro.workloads import JacobiWorkload


class TestFreezeParams:
    def test_sorts_and_tuples(self):
        assert freeze_params({"b": 2, "a": 1}) == (("a", 1), ("b", 2))

    def test_none_and_empty(self):
        assert freeze_params(None) == ()
        assert freeze_params({}) == ()

    def test_rejects_non_scalar_values(self):
        with pytest.raises(TypeError, match="JSON scalar"):
            freeze_params({"a": [1, 2]})

    def test_rejects_duplicate_names(self):
        with pytest.raises(ValueError, match="duplicate"):
            freeze_params((("a", 1), ("a", 2)))

    def test_rejects_bad_names(self):
        with pytest.raises(TypeError, match="non-empty strings"):
            freeze_params({"": 1})


class TestSpecIdentity:
    def test_hashable_and_equal(self):
        a = RunSpec(workload="jacobi", workload_params={"n": 64})
        b = RunSpec(workload="jacobi", workload_params=(("n", 64),))
        assert a == b
        assert hash(a) == hash(b)
        assert a.key() == b.key()

    def test_key_changes_with_any_knob(self):
        base = RunSpec(workload="jacobi")
        assert base.key() != base.with_options(seed=8).key()
        assert base.key() != base.with_options(paradigm="p2p").key()
        assert base.key() != base.with_options(
            finepack=FinePackConfig(subheader_bytes=3)
        ).key()

    def test_trace_key_ignores_replay_only_knobs(self):
        """Every paradigm/fabric variation replays the same trace."""
        base = RunSpec(workload="jacobi", workload_params={"n": 64})
        same = [
            base.with_options(paradigm="p2p"),
            base.with_options(generation=GENERATIONS[3]),
            base.with_options(fabric=FabricConfig(error_rate=1e-6)),
            base.with_options(topology="two_level", with_credits=True),
        ]
        assert {s.trace_key() for s in same} == {base.trace_key()}

    def test_trace_key_tracks_trace_inputs(self):
        base = RunSpec(workload="jacobi", workload_params={"n": 64})
        assert base.trace_key() != base.with_options(seed=8).trace_key()
        assert base.trace_key() != base.with_options(n_gpus=2).trace_key()
        assert (
            base.trace_key()
            != base.with_options(workload_params={"n": 128}).trace_key()
        )

    def test_scenario_json_is_canonicalized(self):
        from repro.faults import load_scenario

        schedule = load_scenario("flaky-retimer")
        pretty = schedule.to_json(indent=2)
        compact = schedule.to_json(indent=None)
        a = RunSpec(workload="jacobi", scenario=pretty)
        b = RunSpec(workload="jacobi", scenario=compact)
        assert a == b and a.key() == b.key()


class TestDeepFreeze:
    """Satellite: the mutable-default sharing hazard is closed."""

    def test_spec_is_immutable(self):
        spec = RunSpec(workload="jacobi")
        with pytest.raises(dataclasses.FrozenInstanceError):
            spec.seed = 99

    def test_sub_configs_are_frozen_types(self):
        spec = RunSpec(workload="jacobi")
        with pytest.raises(dataclasses.FrozenInstanceError):
            spec.finepack.subheader_bytes = 2
        with pytest.raises(dataclasses.FrozenInstanceError):
            spec.fabric.error_rate = 0.5

    def test_rejects_mutable_stand_ins(self):
        with pytest.raises(TypeError, match="frozen FinePackConfig"):
            RunSpec(workload="jacobi", finepack={"subheader_bytes": 5})

    def test_experiment_config_is_frozen(self):
        from repro.sim.runner import ExperimentConfig

        cfg = ExperimentConfig()
        with pytest.raises(dataclasses.FrozenInstanceError):
            cfg.n_gpus = 8

    def test_default_specs_never_alias_across_instances(self):
        a, b = RunSpec(workload="jacobi"), RunSpec(workload="pagerank")
        assert a.finepack == b.finepack  # equal values...
        assert a == a.with_options()  # ...and replace() round-trips


class TestValidation:
    def test_rejects_empty_workload(self):
        with pytest.raises(ValueError, match="workload"):
            RunSpec(workload="")

    def test_rejects_bad_counts(self):
        with pytest.raises(ValueError, match="n_gpus"):
            RunSpec(workload="jacobi", n_gpus=0)
        with pytest.raises(ValueError, match="iterations"):
            RunSpec(workload="jacobi", iterations=0)
        with pytest.raises(ValueError, match="intensity"):
            RunSpec(workload="jacobi", intensity=-0.1)


class TestForWorkload:
    def test_from_name_validates_early(self):
        from repro.registry import RegistryError

        with pytest.raises(RegistryError, match="did you mean"):
            RunSpec.for_workload("jacboi")

    def test_instance_contributes_its_params(self):
        spec = RunSpec.for_workload(JacobiWorkload(n=128), n_gpus=2)
        assert spec.workload == "jacobi"
        assert dict(spec.workload_params) == {"n": 128}
        assert spec.n_gpus == 2

    def test_unregistered_class_rejected(self):
        class Rogue:
            name = "rogue"

        with pytest.raises(TypeError, match="cannot build a spec"):
            RunSpec.for_workload(Rogue())


class TestComponentConstruction:
    def test_build_workload_applies_params(self):
        spec = RunSpec(workload="jacobi", workload_params={"n": 64})
        assert spec.build_workload().n == 64

    def test_finepack_paradigm_receives_spec_config(self):
        cfg = FinePackConfig(subheader_bytes=3)
        spec = RunSpec(workload="jacobi", paradigm="finepack", finepack=cfg)
        assert spec.build_paradigm().config == cfg

    def test_single_gpu_baseline_shape(self):
        spec = RunSpec(
            workload="jacobi",
            paradigm="p2p",
            n_gpus=4,
            topology="two_level",
            scenario=None,
        )
        base = spec.single_gpu_baseline()
        assert base.n_gpus == 1
        assert base.paradigm == "infinite"
        assert base.topology is None
        assert base.scenario is None
        # the trace inputs otherwise match, so seeds line up
        assert base.seed == spec.seed and base.iterations == spec.iterations

    def test_build_schedule_scales_intensity(self):
        from repro.faults import load_scenario

        schedule = load_scenario("flaky-retimer")
        spec = RunSpec(
            workload="jacobi",
            scenario=schedule.to_json(indent=None),
            intensity=0.0,
        )
        scaled = spec.build_schedule()
        assert len(scaled) == 0  # intensity 0 disarms every fault
