"""TraceCache: content addressing, sharing, corruption recovery."""

from concurrent.futures import ProcessPoolExecutor

import pytest

from repro.run import RunSpec, TraceCache

SPEC = RunSpec(workload="jacobi", workload_params={"n": 64}, n_gpus=2,
               iterations=1)


def _cache_file_bytes(payload):
    """Worker: populate a fresh cache at ``root``, return the file bytes."""
    root, spec = payload
    cache = TraceCache(root)
    cache.get_or_generate(spec)
    return cache.path_for(spec.trace_key()).read_bytes()


class TestMemoryLayer:
    def test_second_lookup_hits(self):
        cache = TraceCache()
        a = cache.get_or_generate(SPEC)
        b = cache.get_or_generate(SPEC)
        assert a is b
        assert cache.stats() == {"hits": 1, "misses": 1, "corrupt": 0}

    def test_clear_memory_forces_regeneration(self):
        cache = TraceCache()
        cache.get_or_generate(SPEC)
        cache.clear_memory()
        cache.get_or_generate(SPEC)
        assert cache.stats()["misses"] == 2


class TestDiskLayer:
    def test_disk_file_shared_across_cache_instances(self, tmp_path):
        writer = TraceCache(tmp_path)
        generated = writer.get_or_generate(SPEC)
        reader = TraceCache(tmp_path)
        loaded = reader.get_or_generate(SPEC)
        assert reader.stats() == {"hits": 1, "misses": 0, "corrupt": 0}
        assert loaded.total_remote_bytes() == generated.total_remote_bytes()
        assert loaded.n_gpus == generated.n_gpus

    def test_same_spec_byte_identical_across_processes(self, tmp_path):
        """Two processes, two cache roots, one trace_key -> identical
        bytes on disk (the content-addressing guarantee)."""
        roots = [str(tmp_path / "a"), str(tmp_path / "b")]
        with ProcessPoolExecutor(max_workers=2) as pool:
            blobs = list(
                pool.map(_cache_file_bytes, [(r, SPEC) for r in roots])
            )
        assert blobs[0] == blobs[1]

    def test_differing_seed_and_params_miss(self, tmp_path):
        cache = TraceCache(tmp_path)
        cache.get_or_generate(SPEC)
        cache.get_or_generate(SPEC.with_options(seed=8))
        cache.get_or_generate(SPEC.with_options(workload_params={"n": 128}))
        assert cache.stats() == {"hits": 0, "misses": 3, "corrupt": 0}
        assert len(list(tmp_path.glob("trace-*.npz"))) == 3

    def test_replay_only_knobs_share_one_file(self, tmp_path):
        cache = TraceCache(tmp_path)
        cache.get_or_generate(SPEC.with_options(paradigm="p2p"))
        cache.get_or_generate(SPEC.with_options(paradigm="finepack"))
        assert cache.stats() == {"hits": 1, "misses": 1, "corrupt": 0}
        assert len(list(tmp_path.glob("trace-*.npz"))) == 1


class TestCorruption:
    def test_corrupted_file_regenerated_not_fatal(self, tmp_path):
        writer = TraceCache(tmp_path)
        writer.get_or_generate(SPEC)
        path = writer.path_for(SPEC.trace_key())
        path.write_bytes(b"this is not an npz file")

        reader = TraceCache(tmp_path)
        trace = reader.get_or_generate(SPEC)
        assert trace.n_gpus == SPEC.n_gpus
        assert reader.stats() == {"hits": 0, "misses": 1, "corrupt": 1}
        # and the bad file was replaced by a good one
        third = TraceCache(tmp_path)
        third.get_or_generate(SPEC)
        assert third.stats() == {"hits": 1, "misses": 0, "corrupt": 0}

    def test_truncated_file_regenerated(self, tmp_path):
        writer = TraceCache(tmp_path)
        writer.get_or_generate(SPEC)
        path = writer.path_for(SPEC.trace_key())
        path.write_bytes(path.read_bytes()[:40])

        reader = TraceCache(tmp_path)
        reader.get_or_generate(SPEC)
        assert reader.stats()["corrupt"] == 1


class TestEnvDefault:
    def test_from_env(self, tmp_path, monkeypatch):
        from repro.run import CACHE_ENV

        monkeypatch.setenv(CACHE_ENV, str(tmp_path))
        cache = TraceCache.from_env()
        assert cache.root == tmp_path

        monkeypatch.delenv(CACHE_ENV)
        assert TraceCache.from_env().root is None
