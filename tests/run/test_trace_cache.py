"""TraceCache: content addressing, mmap sharing, corruption recovery."""

from concurrent.futures import ProcessPoolExecutor

import numpy as np
import pytest

from repro.run import RunSpec, TraceCache
from repro.trace.tracefile import save_trace

SPEC = RunSpec(workload="jacobi", workload_params={"n": 64}, n_gpus=2,
               iterations=1)


def _entry_bytes(payload):
    """Worker: populate a fresh cache at ``root``, return the entry's
    bytes as a sorted (filename, contents) list."""
    root, spec = payload
    cache = TraceCache(root)
    cache.get_or_generate(spec)
    entry = cache.path_for(spec.trace_key())
    return [(p.name, p.read_bytes()) for p in sorted(entry.iterdir())]


class TestMemoryLayer:
    def test_second_lookup_hits(self):
        cache = TraceCache()
        a = cache.get_or_generate(SPEC)
        b = cache.get_or_generate(SPEC)
        assert a is b
        assert cache.stats() == {"hits": 1, "misses": 1, "corrupt": 0}

    def test_clear_memory_forces_regeneration(self):
        cache = TraceCache()
        cache.get_or_generate(SPEC)
        cache.clear_memory()
        cache.get_or_generate(SPEC)
        assert cache.stats()["misses"] == 2


class TestDiskLayer:
    def test_disk_entry_shared_across_cache_instances(self, tmp_path):
        writer = TraceCache(tmp_path)
        generated = writer.get_or_generate(SPEC)
        reader = TraceCache(tmp_path)
        loaded = reader.get_or_generate(SPEC)
        assert reader.stats() == {"hits": 1, "misses": 0, "corrupt": 0}
        assert loaded.total_remote_bytes() == generated.total_remote_bytes()
        assert loaded.n_gpus == generated.n_gpus

    def test_disk_loads_are_memory_mapped(self, tmp_path):
        writer = TraceCache(tmp_path)
        generated = writer.get_or_generate(SPEC)
        reader = TraceCache(tmp_path)
        loaded = reader.get_or_generate(SPEC)
        phase = loaded.iterations[0].phases[0]
        # Zero-copy: phase columns are slices of a read-only memmap
        # (shared page cache across worker processes), byte-identical
        # to the generated arrays.
        base = phase.stores.addrs.base
        while base is not None and not isinstance(base, np.memmap):
            base = base.base
        assert isinstance(base, np.memmap)
        src = generated.iterations[0].phases[0]
        assert phase.stores.addrs.tobytes() == src.stores.addrs.tobytes()
        assert phase.reads.starts.tobytes() == src.reads.starts.tobytes()

    def test_mmap_false_materializes(self, tmp_path):
        TraceCache(tmp_path).get_or_generate(SPEC)
        loaded = TraceCache(tmp_path, mmap=False).get_or_generate(SPEC)
        phase = loaded.iterations[0].phases[0]
        base = phase.stores.addrs.base
        while base is not None:
            assert not isinstance(base, np.memmap)
            base = base.base

    def test_same_spec_byte_identical_across_processes(self, tmp_path):
        """Two processes, two cache roots, one trace_key -> identical
        bytes on disk (the content-addressing guarantee)."""
        roots = [str(tmp_path / "a"), str(tmp_path / "b")]
        with ProcessPoolExecutor(max_workers=2) as pool:
            blobs = list(
                pool.map(_entry_bytes, [(r, SPEC) for r in roots])
            )
        assert blobs[0] == blobs[1]

    def test_differing_seed_and_params_miss(self, tmp_path):
        cache = TraceCache(tmp_path)
        cache.get_or_generate(SPEC)
        cache.get_or_generate(SPEC.with_options(seed=8))
        cache.get_or_generate(SPEC.with_options(workload_params={"n": 128}))
        assert cache.stats() == {"hits": 0, "misses": 3, "corrupt": 0}
        assert len(list(tmp_path.glob("trace-*/header.json"))) == 3

    def test_replay_only_knobs_share_one_entry(self, tmp_path):
        cache = TraceCache(tmp_path)
        cache.get_or_generate(SPEC.with_options(paradigm="p2p"))
        cache.get_or_generate(SPEC.with_options(paradigm="finepack"))
        assert cache.stats() == {"hits": 1, "misses": 1, "corrupt": 0}
        assert len(list(tmp_path.glob("trace-*/header.json"))) == 1

    def test_legacy_npz_entry_still_read(self, tmp_path):
        cache = TraceCache(tmp_path)
        trace = cache.get_or_generate(SPEC)
        key = SPEC.trace_key()
        # Simulate an entry written by an older version: only the
        # single-file .npz exists.
        import shutil

        shutil.rmtree(cache.path_for(key))
        save_trace(trace, tmp_path / f"trace-{key}.npz")

        reader = TraceCache(tmp_path)
        loaded = reader.get_or_generate(SPEC)
        assert reader.stats() == {"hits": 1, "misses": 0, "corrupt": 0}
        assert loaded.total_remote_bytes() == trace.total_remote_bytes()


class TestCorruption:
    def test_corrupted_entry_regenerated_not_fatal(self, tmp_path):
        writer = TraceCache(tmp_path)
        writer.get_or_generate(SPEC)
        path = writer.path_for(SPEC.trace_key())
        (path / "header.json").write_text("this is not json")

        reader = TraceCache(tmp_path)
        trace = reader.get_or_generate(SPEC)
        assert trace.n_gpus == SPEC.n_gpus
        assert reader.stats() == {"hits": 0, "misses": 1, "corrupt": 1}
        # and the bad entry was replaced by a good one
        third = TraceCache(tmp_path)
        third.get_or_generate(SPEC)
        assert third.stats() == {"hits": 1, "misses": 0, "corrupt": 0}

    def test_truncated_entry_regenerated(self, tmp_path):
        writer = TraceCache(tmp_path)
        writer.get_or_generate(SPEC)
        path = writer.path_for(SPEC.trace_key())
        # A killed worker can leave a column file truncated.
        col = path / "addrs.npy"
        col.write_bytes(col.read_bytes()[:16])

        reader = TraceCache(tmp_path)
        reader.get_or_generate(SPEC)
        assert reader.stats()["corrupt"] == 1

    def test_corrupted_legacy_npz_regenerated(self, tmp_path):
        key = SPEC.trace_key()
        (tmp_path / f"trace-{key}.npz").write_bytes(b"this is not an npz")
        cache = TraceCache(tmp_path)
        cache.get_or_generate(SPEC)
        assert cache.stats() == {"hits": 0, "misses": 1, "corrupt": 1}
        assert not (tmp_path / f"trace-{key}.npz").exists()


class TestEnvDefault:
    def test_from_env(self, tmp_path, monkeypatch):
        from repro.run import CACHE_ENV

        monkeypatch.setenv(CACHE_ENV, str(tmp_path))
        cache = TraceCache.from_env()
        assert cache.root == tmp_path

        monkeypatch.delenv(CACHE_ENV)
        assert TraceCache.from_env().root is None
