"""Unit tier for the event-ordered transport plan.

The differential test drives the same randomized message stream through
``transmit_flat`` and through the scalar ``Topology.route`` engine
order (one full-route walk per message, in global issue order) and
requires bit-identical delivery times and link statistics -- on a
hop-overlapping fat tree, the exact shape the plan generalizes to.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.interconnect.message import KIND_CODES, MessageKind, WireMessage
from repro.interconnect.topology import fat_tree, switched_mesh, two_level_tree
from repro.perf.transport import TransportPlan, build_plan, transmit_flat


def _random_stream(n_gpus: int, n_msgs: int, seed: int):
    rng = np.random.default_rng(seed)
    src = rng.integers(0, n_gpus, n_msgs)
    dst = (src + rng.integers(1, n_gpus, n_msgs)) % n_gpus
    issue = np.sort(rng.uniform(0.0, 5_000.0, n_msgs))
    payload = rng.integers(4, 257, n_msgs)
    overhead = rng.integers(8, 33, n_msgs)
    return (
        src.astype(np.int64),
        dst.astype(np.int64),
        issue.astype(np.float64),
        payload.astype(np.int64),
        overhead.astype(np.int64),
    )


def _scalar_deliveries(topology, src, dst, issue, payload, overhead):
    out = np.empty(issue.size, dtype=np.float64)
    for i in range(issue.size):
        msg = WireMessage(
            src=int(src[i]),
            dst=int(dst[i]),
            payload_bytes=int(payload[i]),
            overhead_bytes=int(overhead[i]),
            kind=MessageKind.STORE,
            issue_time=float(issue[i]),
        )
        out[i] = topology.route(msg, float(issue[i]))
    return out


@pytest.mark.parametrize(
    "factory,kwargs",
    [
        (fat_tree, {"n_gpus": 8, "fanout": 2}),
        (fat_tree, {"n_gpus": 16, "fanout": 4}),
        (two_level_tree, {"n_gpus": 8}),
        (switched_mesh, {"n_gpus": 8, "planes": 2}),
    ],
)
def test_transmit_flat_matches_scalar_routing(factory, kwargs):
    n_gpus = kwargs["n_gpus"]
    src, dst, issue, payload, overhead = _random_stream(n_gpus, 400, seed=11)
    kinds = np.full(issue.size, KIND_CODES[MessageKind.STORE], dtype=np.uint8)
    packed = np.ones(issue.size, dtype=np.int64)

    batch_topo = factory(**kwargs)
    plan = build_plan(batch_topo)
    assert plan is not None
    fast = transmit_flat(
        batch_topo,
        plan,
        src,
        dst,
        issue,
        payload + overhead,
        payload,
        overhead,
        packed,
        kinds,
    )

    scalar_topo = factory(**kwargs)
    scalar = _scalar_deliveries(scalar_topo, src, dst, issue, payload, overhead)

    # Bit-identical timings and identical per-link accounting.
    assert fast.tobytes() == scalar.tobytes()
    fast_stats = batch_topo.all_stats()
    scalar_stats = scalar_topo.all_stats()
    assert fast_stats.keys() == scalar_stats.keys()
    for edge, stats in scalar_stats.items():
        got = fast_stats[edge]
        assert (got.messages, got.wire_bytes) == (
            stats.messages,
            stats.wire_bytes,
        )
        assert got.busy_time_ns.hex() == stats.busy_time_ns.hex()


def test_link_order_respects_route_adjacency():
    plan = build_plan(fat_tree(n_gpus=16, fanout=2))
    assert plan is not None
    position = {edge: i for i, edge in enumerate(plan.link_order)}
    for edges in plan.routes.values():
        for prev, nxt in zip(edges, edges[1:]):
            assert position[prev] < position[nxt]


class _CyclicRoutes:
    """A fake topology whose route adjacency is cyclic."""

    n_gpus = 2
    forwarding_ns = 10.0
    links: dict = {}

    def _path(self, s, d):
        # (0, 1) walks a->b->c; (1, 0) walks b->c->a->b, so (a, b)
        # precedes (b, c) on one route and follows it on the other.
        return ["a", "b", "c"] if (s, d) == (0, 1) else ["b", "c", "a", "b"]


def test_cyclic_route_adjacency_refuses_plan():
    assert build_plan(_CyclicRoutes()) is None


def test_plan_shape_on_mesh():
    plan = build_plan(switched_mesh(n_gpus=4, planes=2))
    assert isinstance(plan, TransportPlan)
    assert plan.hop_disjoint
    used = {e for edges in plan.routes.values() for e in edges}
    assert set(plan.link_order) == used
    assert len(plan.link_order) == len(used)
