"""Stage profiler semantics: exclusive attribution, nesting, the
``profiled`` installer, and the ``repro profile`` CLI."""

from __future__ import annotations

import io
import json

import pytest

from repro.cli import main
from repro.perf import STAGES, StageProfiler, profiled
from repro.perf import profiler as prof_mod


class TestStageProfiler:
    def test_nested_time_is_exclusive(self):
        p = StageProfiler()
        with p.stage("egress"):
            with p.stage("packetizer_rwq"):
                pass
        ns = p.stage_ns()
        assert ns["egress"] > 0
        assert ns["packetizer_rwq"] > 0
        calls = p.stage_calls()
        assert calls["egress"] == 1
        assert calls["packetizer_rwq"] == 1
        # Total equals the sum of exclusive times, no double counting.
        assert p.total_ns() == sum(ns.values())

    def test_breakdown_shares_sum_to_one(self):
        p = StageProfiler()
        with p.stage("coalescer"):
            pass
        with p.stage("engine_dispatch"):
            pass
        rows = p.breakdown()
        assert {r["stage"] for r in rows} == {"coalescer", "engine_dispatch"}
        assert sum(r["share"] for r in rows) == pytest.approx(1.0)
        report = p.report()
        assert "coalescer" in report and "(instrumented total)" in report

    def test_end_without_begin_raises(self):
        p = StageProfiler()
        with pytest.raises(IndexError):
            p.end()

    def test_profiled_installs_and_restores(self):
        p = StageProfiler()
        assert prof_mod.ACTIVE is None
        with profiled(p):
            assert prof_mod.ACTIVE is p
            with pytest.raises(RuntimeError):
                with profiled(StageProfiler()):
                    pass
        assert prof_mod.ACTIVE is None

    def test_stage_names_are_known(self):
        # Every stage the simulator charges must be a declared stage so
        # docs and the bench report stay in sync.
        assert set(STAGES) >= {
            "trace_generation",
            "coalescer",
            "egress",
            "packetizer_rwq",
            "link_serialization",
            "ingress_drain",
            "engine_dispatch",
            "metrics_classify",
        }


class TestProfileCLI:
    def run_cli(self, *argv) -> str:
        out = io.StringIO()
        assert main(list(argv), out=out) == 0
        return out.getvalue()

    def test_profile_reports_stages(self):
        text = self.run_cli(
            "profile", "jacobi", "finepack", "--gpus", "2", "--iterations", "1"
        )
        assert "jacobi/finepack [fast]" in text
        assert "packetizer_rwq" in text
        assert "metrics fingerprint:" in text

    def test_profile_json_and_scalar_match_fast(self, tmp_path):
        fast_json = tmp_path / "fast.json"
        scalar_json = tmp_path / "scalar.json"
        self.run_cli(
            "profile", "jacobi", "p2p", "--gpus", "2", "--iterations", "1",
            "--json", str(fast_json),
        )
        self.run_cli(
            "profile", "jacobi", "p2p", "--gpus", "2", "--iterations", "1",
            "--scalar", "--json", str(scalar_json),
        )
        fast = json.loads(fast_json.read_text())
        scalar = json.loads(scalar_json.read_text())
        assert fast["mode"] == "fast" and scalar["mode"] == "scalar"
        assert fast["metrics_fingerprint"] == scalar["metrics_fingerprint"]
        assert fast["summary"] == scalar["summary"]
        assert {r["stage"] for r in scalar["stages"]} <= set(STAGES)

    def test_profile_rejects_bad_repeat(self):
        with pytest.raises(SystemExit):
            self.run_cli("profile", "jacobi", "--repeat", "0")

    def test_profile_topology_flags(self, tmp_path):
        """``repro profile`` profiles on any registered topology and
        the JSON report records which one (issue: thread the topology
        flags through the profiling entry points)."""
        report = tmp_path / "p.json"
        text = self.run_cli(
            "profile", "allreduce_ring", "finepack",
            "--gpus", "8", "--iterations", "1",
            "--topology", "fat_tree", "--fanout", "2",
            "--json", str(report),
        )
        assert "allreduce_ring/finepack [fast]" in text
        body = json.loads(report.read_text())
        assert body["topology"] == "fat_tree"
        assert body["topology_params"] == {"fanout": 2}
        # Fat trees ride the event-ordered batch transport: no
        # per-message scalar dispatch stage in the fast profile.
        assert "engine_dispatch" not in {r["stage"] for r in body["stages"]}
