"""Differential tier: collectives x paradigms x scaled-up topologies.

Every collective workload is run through the fingerprint harness under
p2p/dma/finepack on both new topology families:

* ``switched_mesh`` -- plane-pinned two-hop routes keep the vectorized
  batch transport eligible, so the fast run exercises it and must be
  byte-identical to the scalar reference;
* ``fat_tree`` -- leaf links serve several hop positions, the batch
  plan is rejected, and the fast run must *fall back* to the scalar
  engine (verified structurally below) while still fingerprinting
  identically.

A committed golden-fingerprint table pins representative cells as
regression anchors: any change to collective lowering, topology
construction, or the transport math shows up as a diff against
``golden_collective_fingerprints.json`` (regenerate with
``python tests/perf/test_collective_equivalence.py --regen``).
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.interconnect.topology import fat_tree, switched_mesh
from repro.perf.harness import profile_run
from repro.perf.transport import build_plan, links_eligible
from repro.run import RunSpec, TraceCache

COLLECTIVES = (
    "allreduce_ring",
    "allreduce_tree",
    "allgather",
    "alltoall",
    "pipeline",
)

#: Small messages keep the grid fast while still spanning several
#: chunks per transfer and several steps per invocation.
WORKLOAD_PARAMS = {
    "allreduce_ring": {"message_bytes": 4096, "chunk_bytes": 512},
    "allreduce_tree": {"message_bytes": 4096, "chunk_bytes": 1024},
    "allgather": {"message_bytes": 2048, "chunk_bytes": 512},
    "alltoall": {"message_bytes": 4096, "chunk_bytes": 512},
    "pipeline": {"message_bytes": 2048, "chunk_bytes": 512, "microbatches": 2},
}

PARADIGMS = ("p2p", "dma", "finepack")

TOPOLOGIES = {
    "switched_mesh": {"planes": 2},
    "fat_tree": {"fanout": 2},
}

GOLDEN_PATH = Path(__file__).parent / "golden_collective_fingerprints.json"


def spec_for(
    workload: str, paradigm: str, topology: str, **overrides
) -> RunSpec:
    fields = {"n_gpus": 4, "iterations": 1, **overrides}
    return RunSpec(
        workload=workload,
        workload_params=WORKLOAD_PARAMS[workload],
        paradigm=paradigm,
        topology=topology,
        topology_params=TOPOLOGIES[topology],
        **fields,
    )


def fingerprints(spec: RunSpec) -> tuple[str, str]:
    cache = TraceCache()
    fast = profile_run(spec, scalar=False, trace_cache=cache)
    scalar = profile_run(spec, scalar=True, trace_cache=cache)
    return fast.fingerprint, scalar.fingerprint


class TestFastPathEligibility:
    """The structural claims the equivalence grid relies on."""

    def test_switched_mesh_is_batch_eligible(self):
        topo = switched_mesh(n_gpus=4, planes=2)
        assert links_eligible(topo)
        plan = build_plan(topo)
        assert plan is not None
        assert all(len(edges) == 2 for edges in plan.values())

    def test_fat_tree_triggers_scalar_fallback(self):
        # Intra-leaf traffic uses a leaf link at hop 1, cross-leaf at a
        # later hop -- the plan must be refused, like the two-level tree.
        topo = fat_tree(n_gpus=4, fanout=2)
        assert links_eligible(topo)
        assert build_plan(topo) is None

    def test_large_fat_trees_also_fall_back(self):
        for n in (8, 16, 64):
            assert build_plan(fat_tree(n_gpus=n)) is None


@pytest.mark.parametrize("topology", sorted(TOPOLOGIES))
@pytest.mark.parametrize("paradigm", PARADIGMS)
@pytest.mark.parametrize("workload", COLLECTIVES)
def test_fast_matches_scalar(workload, paradigm, topology):
    fast, scalar = fingerprints(spec_for(workload, paradigm, topology))
    assert fast == scalar


def test_fine_grained_stores_match_scalar():
    # fine_grained=True keeps stores at element granularity (the
    # FinePack-relevant regime); the fast paths must still agree.
    spec = RunSpec(
        workload="allreduce_ring",
        workload_params={
            "message_bytes": 2048,
            "chunk_bytes": 512,
            "fine_grained": True,
        },
        paradigm="finepack",
        topology="switched_mesh",
        topology_params={"planes": 2},
        n_gpus=4,
        iterations=1,
    )
    fast, scalar = fingerprints(spec)
    assert fast == scalar


def test_eight_gpu_mesh_matches_scalar():
    fast, scalar = fingerprints(
        spec_for("alltoall", "finepack", "switched_mesh", n_gpus=8)
    )
    assert fast == scalar


# -- committed regression anchors -----------------------------------

def _golden_cells() -> dict[str, RunSpec]:
    """The pinned subset: every workload once, spanning both topologies
    and all three paradigms."""
    return {
        "allreduce_ring/finepack/switched_mesh": spec_for(
            "allreduce_ring", "finepack", "switched_mesh"
        ),
        "allreduce_tree/dma/fat_tree": spec_for(
            "allreduce_tree", "dma", "fat_tree"
        ),
        "allgather/p2p/switched_mesh": spec_for(
            "allgather", "p2p", "switched_mesh"
        ),
        "alltoall/finepack/fat_tree": spec_for(
            "alltoall", "finepack", "fat_tree"
        ),
        "pipeline/dma/switched_mesh": spec_for(
            "pipeline", "dma", "switched_mesh"
        ),
    }


def _current_fingerprints() -> dict[str, str]:
    cache = TraceCache()
    return {
        label: profile_run(spec, trace_cache=cache).fingerprint
        for label, spec in _golden_cells().items()
    }


def test_golden_fingerprints_unchanged():
    golden = json.loads(GOLDEN_PATH.read_text())
    current = _current_fingerprints()
    assert current == golden, (
        "collective RunMetrics fingerprints drifted; if the change is "
        "intentional, regenerate with "
        "`python tests/perf/test_collective_equivalence.py --regen`"
    )


if __name__ == "__main__":
    import sys

    if "--regen" in sys.argv:
        GOLDEN_PATH.write_text(
            json.dumps(_current_fingerprints(), indent=2, sort_keys=True)
            + "\n"
        )
        print(f"wrote {GOLDEN_PATH}")
    else:
        print(__doc__)
