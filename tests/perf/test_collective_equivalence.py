"""Differential tier: collectives x paradigms x scaled-up topologies.

Every collective workload is run through the fingerprint harness under
p2p/dma/finepack on both new topology families:

* ``switched_mesh`` -- plane-pinned two-hop routes are hop-disjoint,
  the simplest batch-eligible shape;
* ``fat_tree`` -- leaf links serve several hop positions, but the
  event-ordered transport plan (topologically ordered links, per-link
  traffic merged in global issue order) keeps fat trees on the
  vectorized fast path at every scale (verified structurally below).

In both cases the fast run must be byte-identical to the scalar
reference.

A committed golden-fingerprint table pins representative cells as
regression anchors: any change to collective lowering, topology
construction, or the transport math shows up as a diff against
``golden_collective_fingerprints.json`` (regenerate with
``python tests/perf/test_collective_equivalence.py --regen``).
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.interconnect.topology import fat_tree, switched_mesh
from repro.perf.harness import profile_run
from repro.perf.transport import build_plan, links_eligible
from repro.run import RunSpec, TraceCache

COLLECTIVES = (
    "allreduce_ring",
    "allreduce_tree",
    "allgather",
    "alltoall",
    "pipeline",
)

#: Small messages keep the grid fast while still spanning several
#: chunks per transfer and several steps per invocation.
WORKLOAD_PARAMS = {
    "allreduce_ring": {"message_bytes": 4096, "chunk_bytes": 512},
    "allreduce_tree": {"message_bytes": 4096, "chunk_bytes": 1024},
    "allgather": {"message_bytes": 2048, "chunk_bytes": 512},
    "alltoall": {"message_bytes": 4096, "chunk_bytes": 512},
    "pipeline": {"message_bytes": 2048, "chunk_bytes": 512, "microbatches": 2},
}

PARADIGMS = ("p2p", "dma", "finepack")

TOPOLOGIES = {
    "switched_mesh": {"planes": 2},
    "fat_tree": {"fanout": 2},
}

GOLDEN_PATH = Path(__file__).parent / "golden_collective_fingerprints.json"


def spec_for(
    workload: str, paradigm: str, topology: str, **overrides
) -> RunSpec:
    fields = {"n_gpus": 4, "iterations": 1, **overrides}
    return RunSpec(
        workload=workload,
        workload_params=WORKLOAD_PARAMS[workload],
        paradigm=paradigm,
        topology=topology,
        topology_params=TOPOLOGIES[topology],
        **fields,
    )


def fingerprints(spec: RunSpec) -> tuple[str, str]:
    cache = TraceCache()
    fast = profile_run(spec, scalar=False, trace_cache=cache)
    scalar = profile_run(spec, scalar=True, trace_cache=cache)
    return fast.fingerprint, scalar.fingerprint


class TestFastPathEligibility:
    """The structural claims the equivalence grid relies on."""

    def test_switched_mesh_is_batch_eligible(self):
        topo = switched_mesh(n_gpus=4, planes=2)
        assert links_eligible(topo)
        plan = build_plan(topo)
        assert plan is not None
        assert plan.hop_disjoint
        assert all(len(edges) == 2 for edges in plan.routes.values())

    def test_fat_tree_is_batch_eligible(self):
        # Intra-leaf traffic uses a leaf link at hop 1, cross-leaf at a
        # later hop -- not hop-disjoint, but the route adjacency is
        # acyclic so the event-ordered plan still covers it.
        topo = fat_tree(n_gpus=4, fanout=2)
        assert links_eligible(topo)
        plan = build_plan(topo)
        assert plan is not None
        assert not plan.hop_disjoint

    def test_large_fat_trees_stay_eligible(self):
        for n in (8, 16, 64):
            plan = build_plan(fat_tree(n_gpus=n))
            assert plan is not None
            # Every link used by some route appears exactly once in the
            # topological processing order.
            used = {e for edges in plan.routes.values() for e in edges}
            assert sorted(plan.link_order) == sorted(used)


@pytest.mark.parametrize("topology", sorted(TOPOLOGIES))
@pytest.mark.parametrize("paradigm", PARADIGMS)
@pytest.mark.parametrize("workload", COLLECTIVES)
def test_fast_matches_scalar(workload, paradigm, topology):
    fast, scalar = fingerprints(spec_for(workload, paradigm, topology))
    assert fast == scalar


def test_fine_grained_stores_match_scalar():
    # fine_grained=True keeps stores at element granularity (the
    # FinePack-relevant regime); the fast paths must still agree.
    spec = RunSpec(
        workload="allreduce_ring",
        workload_params={
            "message_bytes": 2048,
            "chunk_bytes": 512,
            "fine_grained": True,
        },
        paradigm="finepack",
        topology="switched_mesh",
        topology_params={"planes": 2},
        n_gpus=4,
        iterations=1,
    )
    fast, scalar = fingerprints(spec)
    assert fast == scalar


def test_eight_gpu_mesh_matches_scalar():
    fast, scalar = fingerprints(
        spec_for("alltoall", "finepack", "switched_mesh", n_gpus=8)
    )
    assert fast == scalar


def test_sixteen_gpu_fat_tree_matches_scalar():
    # The scale point the event-ordered plan exists for: a three-level
    # fat tree whose leaf links serve several hop positions.
    fast, scalar = fingerprints(
        spec_for("allreduce_ring", "finepack", "fat_tree", n_gpus=16)
    )
    assert fast == scalar


# -- committed regression anchors -----------------------------------

def _golden_cells() -> dict[str, RunSpec]:
    """The pinned subset: every workload once, spanning both topologies
    and all three paradigms."""
    return {
        "allreduce_ring/finepack/switched_mesh": spec_for(
            "allreduce_ring", "finepack", "switched_mesh"
        ),
        "allreduce_tree/dma/fat_tree": spec_for(
            "allreduce_tree", "dma", "fat_tree"
        ),
        "allgather/p2p/switched_mesh": spec_for(
            "allgather", "p2p", "switched_mesh"
        ),
        "alltoall/finepack/fat_tree": spec_for(
            "alltoall", "finepack", "fat_tree"
        ),
        "pipeline/dma/switched_mesh": spec_for(
            "pipeline", "dma", "switched_mesh"
        ),
    }


def _current_fingerprints() -> dict[str, str]:
    cache = TraceCache()
    return {
        label: profile_run(spec, trace_cache=cache).fingerprint
        for label, spec in _golden_cells().items()
    }


def test_golden_fingerprints_unchanged():
    golden = json.loads(GOLDEN_PATH.read_text())
    current = _current_fingerprints()
    assert current == golden, (
        "collective RunMetrics fingerprints drifted; if the change is "
        "intentional, regenerate with "
        "`python tests/perf/test_collective_equivalence.py --regen`"
    )


if __name__ == "__main__":
    import sys

    if "--regen" in sys.argv:
        GOLDEN_PATH.write_text(
            json.dumps(_current_fingerprints(), indent=2, sort_keys=True)
            + "\n"
        )
        print(f"wrote {GOLDEN_PATH}")
    else:
        print(__doc__)
