"""Byte-identity of the vectorized fast paths (the core perf contract).

Every workload x paradigm cell is run twice -- once with every fast
path enabled (:meth:`PerfConfig.all_on`, the default) and once with
the scalar reference paths (:meth:`PerfConfig.all_off`) -- and the
full :class:`RunMetrics` (including per-link :class:`LinkStats` and
order-sensitive dicts) must fingerprint identically.  "Close enough"
floats are a bug: the fast paths reorder no floating-point reduction
that the scalar code performs.
"""

from __future__ import annotations

import pytest

from repro.faults import load_scenario
from repro.perf import PerfConfig, perf_overrides
from repro.perf.harness import fingerprint_metrics, profile_run
from repro.run import RunContext, RunSpec, TraceCache

#: Small-but-representative parameters so the full grid stays fast.
WORKLOAD_PARAMS = {
    "als": {"n_users": 800, "n_items": 200},
    "ct": {"total_corrections": 3000},
    "diffusion": {"n": 48},
    "eqwp": {"n": 48},
    "hit": {"n": 32, "dram_passes": 2},
    "jacobi": {"n": 256},
    "pagerank": {"n": 4000},
    "sssp": {"n": 4000},
}

PARADIGMS = ("p2p", "dma", "finepack")


def spec_for(workload: str, paradigm: str, **overrides) -> RunSpec:
    fields = {"n_gpus": 2, "iterations": 2, **overrides}
    return RunSpec(
        workload=workload,
        workload_params=WORKLOAD_PARAMS[workload],
        paradigm=paradigm,
        **fields,
    )


def fingerprints(spec: RunSpec) -> tuple[str, str]:
    cache = TraceCache()
    fast = profile_run(spec, scalar=False, trace_cache=cache)
    scalar = profile_run(spec, scalar=True, trace_cache=cache)
    return fast.fingerprint, scalar.fingerprint


@pytest.mark.parametrize("workload", sorted(WORKLOAD_PARAMS))
@pytest.mark.parametrize("paradigm", PARADIGMS)
def test_fast_matches_scalar(workload, paradigm):
    fast, scalar = fingerprints(spec_for(workload, paradigm))
    assert fast == scalar


def test_fast_matches_scalar_with_atomics():
    spec = RunSpec(
        workload="pagerank",
        workload_params={"n": 4000, "use_atomics": True},
        paradigm="p2p",
        n_gpus=2,
        iterations=2,
    )
    fast, scalar = fingerprints(spec)
    assert fast == scalar


@pytest.mark.parametrize("paradigm", PARADIGMS)
def test_fast_matches_scalar_two_level_topology(paradigm):
    # Links appear at multiple hop positions in the tree; the
    # event-ordered transport plan keeps the run on the batch path and
    # must stay byte-identical.
    fast, scalar = fingerprints(
        spec_for("jacobi", paradigm, n_gpus=4, topology="two_level")
    )
    assert fast == scalar


def test_fast_matches_scalar_under_faults():
    # An armed fault injector disqualifies the batch transport; the
    # run (possibly degraded) must still be byte-identical.
    schedule = load_scenario("flaky-retimer")
    spec = spec_for("jacobi", "finepack").with_options(
        scenario=schedule.to_json(indent=None),
        intensity=0.5,
        topology=schedule.topology or "single_switch",
        with_credits=schedule.with_credits,
    )
    cache = TraceCache()
    outcomes = []
    for config in (PerfConfig.all_on(), PerfConfig.all_off()):
        with perf_overrides(config):
            outcomes.append(RunContext(spec, trace_cache=cache).execute())
    fast, scalar = outcomes
    assert fast.degraded == scalar.degraded
    assert fast.reasons == scalar.reasons
    assert fingerprint_metrics(fast.metrics) == fingerprint_metrics(
        scalar.metrics
    )


def test_fingerprint_is_order_sensitive():
    assert fingerprint_metrics({"a": 1, "b": 2}) != fingerprint_metrics(
        {"b": 2, "a": 1}
    )
    assert fingerprint_metrics(1.0) != fingerprint_metrics(1)
    assert fingerprint_metrics(True) != fingerprint_metrics(1)
