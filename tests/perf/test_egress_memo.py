"""Unit tier for FinePack phase memoization (``FinePackEgress.phase_ops``).

The contract: feeding a phase's op columns through ``phase_ops`` --
fresh or replayed from the content-addressed memo -- produces exactly
the messages and stat mutations of the scalar per-op path
(``on_store``/``on_atomic``/``on_release``), differing in nothing but
wall-clock cost.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import FinePackConfig
from repro.core.egress import FinePackEgress
from repro.interconnect.message import MessageKind
from repro.interconnect.pcie import PCIE_GEN4, PCIeProtocol
from repro.perf.config import PerfConfig, perf_overrides
from repro.perf.harness import fingerprint_metrics
from repro.run import RunContext, RunSpec, TraceCache

N_GPUS = 4
SRC = 0


def _engine(**kwargs) -> FinePackEgress:
    return FinePackEgress(
        FinePackConfig(), PCIeProtocol(PCIE_GEN4), SRC, N_GPUS, **kwargs
    )


def _columns(seed: int = 3, n: int = 200):
    """A store stream with window misses, tag hits and atomic conflicts."""
    rng = np.random.default_rng(seed)
    addrs = (rng.integers(0, 64, n) * 16 + rng.integers(0, 3, n) * 4096).astype(
        np.int64
    )
    sizes = rng.choice([4, 8, 16], n).astype(np.int64)
    dsts = rng.choice([d for d in range(N_GPUS) if d != SRC], n).astype(np.int64)
    is_atomic = rng.random(n) < 0.05
    times = np.linspace(10.0, 900.0, n)
    return addrs, sizes, dsts, times, is_atomic


def _run_scalar(engine, addrs, sizes, dsts, times, is_atomic, release_time):
    msgs = []
    for a, s, d, t, atomic in zip(
        addrs.tolist(),
        sizes.tolist(),
        dsts.tolist(),
        times.tolist(),
        is_atomic.tolist(),
    ):
        if atomic:
            msgs.extend(engine.on_atomic(a, s, d, t))
        else:
            msgs.extend(engine.on_store(a, s, d, t))
    msgs.extend(engine.on_release(release_time))
    return msgs


def _message_view(msg):
    view = [
        msg.src,
        msg.dst,
        msg.payload_bytes,
        msg.overhead_bytes,
        msg.kind,
        msg.issue_time.hex(),
        msg.stores_packed,
    ]
    if msg.kind is MessageKind.FINEPACK:
        starts, lengths = msg.meta["ranges"]
        view.append((starts.tolist(), lengths.tolist()))
        packet = msg.meta["packet"]
        view.append(
            (packet.base_addr, [(s.offset, s.length) for s in packet.subs])
        )
    else:
        view.append(msg.meta["range1"])
    return view


def _partition_stats(engine):
    return {
        d: (
            p.stats.stores_in,
            p.stats.store_hits,
            p.stats.packets,
            list(p.stats.flushes.items()),
            list(p.stats.stores_per_packet),
        )
        for d, p in engine.queue.partitions.items()
    }


def test_phase_ops_matches_scalar_across_repeats():
    addrs, sizes, dsts, times, is_atomic = _columns()
    fast, scalar = _engine(), _engine()
    # Three phases with the same content but shifted times: phase 1
    # records the template, phases 2-3 replay it from the memo.
    for k in range(3):
        shift = 1000.0 * k
        got = fast.phase_ops(
            addrs, sizes, dsts, times + shift, is_atomic, 1000.0 + shift
        )
        assert got is not None
        want = _run_scalar(
            scalar, addrs, sizes, dsts, times + shift, is_atomic, 1000.0 + shift
        )
        assert [_message_view(m) for m in got] == [
            _message_view(m) for m in want
        ]
    assert vars(fast.stats) == vars(scalar.stats)
    assert _partition_stats(fast) == _partition_stats(scalar)
    assert fast.packetizer.packets_built == scalar.packetizer.packets_built
    assert len(fast._memo) == 1


def test_distinct_streams_get_distinct_templates():
    a1, s1, d1, t1, at1 = _columns(seed=1)
    a2, s2, d2, t2, at2 = _columns(seed=2)
    engine = _engine()
    engine.phase_ops(a1, s1, d1, t1, at1, 1000.0)
    engine.phase_ops(a2, s2, d2, t2, at2, 1000.0)
    assert len(engine._memo) == 2


@pytest.mark.parametrize(
    "kwargs",
    [{"flush_timeout_ns": 500.0}, {"windows": 2}],
    ids=["timeout-policy", "multi-window"],
)
def test_stateful_configurations_decline(kwargs):
    engine = _engine(**kwargs)
    addrs, sizes, dsts, times, is_atomic = _columns(n=20)
    assert engine.phase_ops(addrs, sizes, dsts, times, is_atomic, 1e3) is None


def test_attached_tracer_declines():
    engine = _engine()
    engine.tracer = object()
    addrs, sizes, dsts, times, is_atomic = _columns(n=20)
    assert engine.phase_ops(addrs, sizes, dsts, times, is_atomic, 1e3) is None


def test_patched_hooks_decline():
    # Validation harnesses wrap the per-op hooks on the instance; the
    # columnar path must not route around them.
    engine = _engine()
    engine.on_store = lambda *a, **k: []
    addrs, sizes, dsts, times, is_atomic = _columns(n=20)
    assert engine.phase_ops(addrs, sizes, dsts, times, is_atomic, 1e3) is None


def test_buffered_state_declines():
    engine = _engine()
    engine.queue.insert(64, 8, 1)
    addrs, sizes, dsts, times, is_atomic = _columns(n=20)
    assert engine.phase_ops(addrs, sizes, dsts, times, is_atomic, 1e3) is None


@pytest.mark.parametrize("workload", ["jacobi", "hit", "sssp"])
def test_run_fingerprint_invariant_under_memo(workload):
    spec = RunSpec(workload=workload, paradigm="finepack", n_gpus=4, iterations=3)
    cache = TraceCache()
    with perf_overrides(PerfConfig.all_on()):
        on = fingerprint_metrics(RunContext(spec, trace_cache=cache).run())
    with perf_overrides(PerfConfig(memo_egress=False)):
        off = fingerprint_metrics(RunContext(spec, trace_cache=cache).run())
    assert on == off
