"""Unit-level equivalence of each vectorized primitive vs its scalar
reference: RWQ entry costing, run extraction, batch wire costing, batch
link serialization, and the engine's inlined dispatch loop."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import FinePackConfig
from repro.core.packetizer import Packetizer
from repro.core.remote_write_queue import (
    FlushedWindow,
    FlushReason,
    QueueEntry,
    RemoteWriteQueue,
)
from repro.interconnect.flowcontrol import CreditPool
from repro.interconnect.link import Link
from repro.interconnect.message import KIND_CODES, MessageKind, WireMessage
from repro.interconnect.pcie import PCIE_GEN3, PCIE_GEN4, PCIeProtocol
from repro.perf import PerfConfig, get_perf_config, perf_overrides
from repro.perf.batch import arrays_from_messages, masks_to_runs
from repro.sim.engine import Engine


def random_masks(rng, count: int, entry_bytes: int = 128) -> list[int]:
    masks = []
    for _ in range(count):
        mask = 0
        for _ in range(rng.integers(1, 6)):
            start = int(rng.integers(0, entry_bytes))
            length = int(rng.integers(1, entry_bytes - start + 1))
            mask |= ((1 << length) - 1) << start
        masks.append(mask)
    return masks


class TestMasksToRuns:
    def test_matches_scalar_runs(self, rng):
        entry_bytes = 128
        masks = random_masks(rng, 200, entry_bytes)
        rows, starts, lengths = masks_to_runs(masks, entry_bytes)
        expected = [
            (row, start, length)
            for row, mask in enumerate(masks)
            for start, length in QueueEntry(0, mask).runs(entry_bytes)
        ]
        got = list(zip(rows.tolist(), starts.tolist(), lengths.tolist()))
        assert got == expected

    def test_rejects_unaligned_entry_bytes(self):
        with pytest.raises(ValueError):
            masks_to_runs([1], 100)


def rwq_flush_stream(fast: bool, rng) -> list:
    """Drive an RWQ through a fixed store sequence; serialize its flushes."""
    with perf_overrides(vector_rwq=fast):
        queue = RemoteWriteQueue(FinePackConfig(), gpu=0, n_gpus=2)
        base = 1 << 20
        flushes = []
        for _ in range(400):
            addr = base + int(rng.integers(0, 4096))
            size = int(rng.integers(1, 65))
            flushes += queue.insert(addr, size, dst=1)
        flushes += queue.flush_all(FlushReason.RELEASE)
    return [
        (dst, w.base_addr, w.reason, [(e.line_addr, e.mask) for e in w.entries])
        for dst, w in flushes
    ]


class TestRWQEntryCost:
    def test_same_flush_stream(self):
        scalar = rwq_flush_stream(False, np.random.default_rng(7))
        fast = rwq_flush_stream(True, np.random.default_rng(7))
        assert fast == scalar


class TestPacketizer:
    def packetize(self, fast: bool, masks, protocol) -> list:
        with perf_overrides(vector_rwq=fast):
            pk = Packetizer(FinePackConfig(), protocol)
            base = 1 << 21
            window = FlushedWindow(
                base_addr=base,
                entries=[
                    QueueEntry(line_addr=base + i * 128, mask=m)
                    for i, m in enumerate(masks)
                ],
                stores_absorbed=len(masks),
                reason=FlushReason.RELEASE,
            )
            packet = pk.packetize(window)
        return [(s.offset, s.length) for s in packet.subs]

    def test_same_subtransactions(self, rng, protocol):
        masks = random_masks(rng, 30)
        assert self.packetize(True, masks, protocol) == self.packetize(
            False, masks, protocol
        )


class TestStoreWireCostBatch:
    @pytest.mark.parametrize("gen", (PCIE_GEN3, PCIE_GEN4))
    @pytest.mark.parametrize("flit_mode", (False, True))
    def test_matches_scalar(self, rng, gen, flit_mode):
        protocol = PCIeProtocol(gen, flit_mode=flit_mode)
        sizes = rng.integers(1, protocol.max_payload + 1, size=500)
        payload, overhead = protocol.store_wire_cost_batch(sizes)
        for i, size in enumerate(sizes.tolist()):
            p, o = protocol.store_wire_cost(size)
            assert (payload[i], overhead[i]) == (p, o)

    def test_raises_like_scalar(self, protocol):
        with pytest.raises(ValueError):
            protocol.store_wire_cost_batch(np.array([16, 0, 32]))
        with pytest.raises(ValueError):
            protocol.store_wire_cost_batch(np.array([protocol.max_payload + 1]))


def wire(size: int, issue: float, kind=MessageKind.STORE) -> WireMessage:
    return WireMessage(
        src=0,
        dst=1,
        payload_bytes=size,
        overhead_bytes=24,
        kind=kind,
        issue_time=issue,
        stores_packed=1,
    )


class TestTransmitBatch:
    def test_matches_sequential_transmit(self, rng):
        msgs = [
            wire(int(rng.integers(1, 256)), float(t))
            for t in np.sort(rng.uniform(0, 500, size=100))
        ]
        a = Link("a", bytes_per_ns=2.0)
        seq = [a.transmit(m, m.issue_time)[1] for m in msgs]

        b = Link("b", bytes_per_ns=2.0)
        _, _, payload, overhead, kind, issue, packed = arrays_from_messages(msgs)
        deliveries = b.transmit_batch(
            issue, payload + overhead, payload, overhead, packed, kind
        )
        assert deliveries.tolist() == seq
        assert b.busy_until == a.busy_until
        assert b.stats == a.stats
        assert list(b.stats.by_kind) == list(a.stats.by_kind)

    def test_rejects_stateful_links(self):
        link = Link("c", bytes_per_ns=2.0, credits=CreditPool())
        with pytest.raises(RuntimeError):
            link.transmit_batch(
                np.zeros(1),
                np.ones(1),
                np.ones(1, dtype=np.int64),
                np.zeros(1, dtype=np.int64),
                np.ones(1, dtype=np.int64),
                np.zeros(1, dtype=np.uint8),
            )


class TestArraysFromMessages:
    def test_fields_roundtrip(self, rng):
        msgs = [
            wire(int(rng.integers(1, 128)), float(i), MessageKind.FINEPACK)
            for i in range(20)
        ]
        src, dst, payload, overhead, kind, issue, packed = (
            arrays_from_messages(msgs)
        )
        assert src.tolist() == [0] * 20
        assert dst.tolist() == [1] * 20
        assert payload.tolist() == [m.payload_bytes for m in msgs]
        assert overhead.tolist() == [24] * 20
        assert issue.tolist() == [m.issue_time for m in msgs]
        assert kind.tolist() == [KIND_CODES[MessageKind.FINEPACK]] * 20


class TestEngineFastRun:
    @pytest.mark.parametrize("fast", (False, True))
    def test_same_dispatch_order(self, fast):
        with perf_overrides(batch_events=fast):
            engine = Engine()
            seen: list = []
            engine.schedule(2.0, seen.append, (2.0, "b"))
            engine.schedule(1.0, seen.append, (1.0, "a"))
            engine.schedule(1.0, seen.append, (1.0, "a2"))

            def reschedule(tag):
                seen.append((engine.now, tag))
                if tag == "c":
                    engine.schedule(engine.now + 1.0, reschedule, "d")

            engine.schedule(3.0, reschedule, "c")
            end = engine.run()
        assert end == 4.0
        assert [s[-1] for s in seen] == ["a", "a2", "b", "c", "d"]
        assert engine.events_processed == 5


class TestPerfConfigEnv:
    def test_defaults_and_keywords(self):
        assert PerfConfig.from_env("") == PerfConfig.all_on()
        assert PerfConfig.from_env("scalar") == PerfConfig.all_off()
        assert PerfConfig.from_env("off") == PerfConfig.all_off()
        cfg = PerfConfig.from_env("vector_rwq=0,batch_events=1")
        assert not cfg.vector_rwq
        assert cfg.batch_events and cfg.vector_egress

    def test_unknown_toggle_raises(self):
        with pytest.raises(ValueError):
            PerfConfig.from_env("warp_speed=1")

    def test_overrides_scoped(self):
        before = get_perf_config()
        with perf_overrides(PerfConfig.all_off()):
            assert get_perf_config() == PerfConfig.all_off()
        assert get_perf_config() == before
        with pytest.raises(TypeError):
            with perf_overrides(PerfConfig.all_off(), vector_rwq=True):
                pass
