"""Synthetic dataset generator tests."""

import numpy as np
import pytest

from repro.workloads.datasets import (
    banded_matrix,
    bipartite_ratings,
    owner_of_vertex,
    partition_bounds,
    powerlaw_graph,
)


class TestBandedMatrix:
    def test_csr_validity(self):
        g = banded_matrix(1000, band=50, avg_degree=6, seed=1)
        assert g.indptr.shape == (1001,)
        assert g.indptr[-1] == g.nnz
        assert (np.diff(g.indptr) >= 0).all()
        assert (g.dst >= 0).all() and (g.dst < 1000).all()

    def test_band_locality(self):
        g = banded_matrix(1000, band=50, avg_degree=6, seed=1)
        src = np.repeat(np.arange(1000), g.out_degree())
        assert (np.abs(src - g.dst) <= 50).all()

    def test_no_self_loops(self):
        g = banded_matrix(500, band=20, avg_degree=4, seed=2)
        src = np.repeat(np.arange(500), g.out_degree())
        assert (src != g.dst).all()

    def test_deterministic(self):
        a = banded_matrix(300, 10, 4, seed=9)
        b = banded_matrix(300, 10, 4, seed=9)
        assert np.array_equal(a.dst, b.dst)

    def test_validation(self):
        with pytest.raises(ValueError):
            banded_matrix(1, 10, 4)
        with pytest.raises(ValueError):
            banded_matrix(100, 0, 4)


class TestPowerlawGraph:
    def test_heavy_tail(self):
        """A few hub vertices should attract a large share of edges."""
        g = powerlaw_graph(10_000, avg_degree=8, seed=3)
        in_deg = np.zeros(10_000, dtype=np.int64)
        np.add.at(in_deg, g.dst, 1)
        top = np.sort(in_deg)[-100:]
        assert top.sum() > 0.2 * g.nnz  # top 1% of vertices get >20%

    def test_reaches_everywhere(self):
        """Many-to-many: every quarter-partition pair sees edges."""
        g = powerlaw_graph(4_000, avg_degree=8, seed=4)
        bounds = partition_bounds(4_000, 4)
        src = np.repeat(np.arange(4_000), g.out_degree())
        so = owner_of_vertex(src, bounds)
        do = owner_of_vertex(g.dst, bounds)
        pairs = set(zip(so.tolist(), do.tolist()))
        assert all((a, b) in pairs for a in range(4) for b in range(4) if a != b)

    def test_alpha_validated(self):
        with pytest.raises(ValueError):
            powerlaw_graph(100, 4, alpha=1.0)

    def test_deterministic(self):
        a = powerlaw_graph(500, 4, seed=5)
        b = powerlaw_graph(500, 4, seed=5)
        assert np.array_equal(a.dst, b.dst)


class TestBipartiteRatings:
    def test_csr_csc_consistency(self):
        r = bipartite_ratings(200, 50, avg_ratings=5, seed=6)
        assert r.user_indptr[-1] == r.nnz
        assert r.item_indptr[-1] == r.nnz
        assert (r.item_ids < 50).all()
        assert (r.user_ids < 200).all()
        # Same multiset of (user, item) pairs both ways.
        by_user = set()
        users = np.repeat(np.arange(200), np.diff(r.user_indptr))
        by_user = sorted(zip(users.tolist(), r.item_ids.tolist()))
        items = np.repeat(np.arange(50), np.diff(r.item_indptr))
        by_item = sorted(zip(r.user_ids.tolist(), items.tolist()))
        assert by_user == by_item

    def test_validation(self):
        with pytest.raises(ValueError):
            bipartite_ratings(0, 10, 5)


class TestPartitioning:
    def test_bounds_cover_range(self):
        b = partition_bounds(103, 4)
        assert b[0] == 0 and b[-1] == 103
        assert (np.diff(b) > 0).all()

    def test_owner_lookup(self):
        b = partition_bounds(100, 4)
        v = np.array([0, 24, 25, 99])
        assert owner_of_vertex(v, b).tolist() == [0, 0, 1, 3]

    def test_too_many_parts(self):
        with pytest.raises(ValueError):
            partition_bounds(3, 4)
