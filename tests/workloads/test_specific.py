"""Per-workload behavioural tests beyond the generic suite invariants."""

import numpy as np
import pytest

from repro.gpu.memory import owner_of
from repro.workloads import (
    ALSWorkload,
    CTWorkload,
    DiffusionWorkload,
    EQWPWorkload,
    HITWorkload,
    JacobiWorkload,
    PagerankWorkload,
    SSSPWorkload,
)


class TestStencils:
    def test_jacobi_halo_volume(self):
        """Each interior GPU exchanges exactly one n-row per side."""
        n = 256
        trace = JacobiWorkload(n=n).generate_trace(4, 1)
        phase = trace.iterations[0].phases[1]  # interior GPU
        assert phase.stores.total_bytes == 2 * n * 8

    def test_eqwp_double_depth_halo(self):
        n = 32
        shallow = DiffusionWorkload(n=n).generate_trace(4, 1)
        deep = EQWPWorkload(n=n).generate_trace(4, 1)
        # EQWP: 2 planes of fp32 vs diffusion's 1 plane of fp64 -> equal
        # bytes per side, but twice the planes.
        d_phase = deep.iterations[0].phases[1]
        s_phase = shallow.iterations[0].phases[1]
        assert d_phase.stores.total_bytes == s_phase.stores.total_bytes

    def test_neighbors_only(self):
        trace = DiffusionWorkload(n=32).generate_trace(4, 1)
        for p in trace.iterations[0].phases:
            for d in p.stores.destinations():
                assert abs(d - p.gpu) == 1

    def test_full_line_stores(self):
        trace = JacobiWorkload(n=256).generate_trace(2, 1)
        sizes = trace.all_store_sizes()
        assert (sizes == 128).all()


class TestPagerank:
    def test_band_limits_destinations(self):
        """Narrow band: traffic only reaches adjacent partitions."""
        trace = PagerankWorkload(n=8_000, band_fraction=0.05).generate_trace(4, 1)
        for p in trace.iterations[0].phases:
            for d in p.stores.destinations():
                assert abs(d - p.gpu) == 1

    def test_duplicate_pushes_present(self):
        """Per-edge pushes: the same rank is stored more than once."""
        trace = PagerankWorkload(n=8_000).generate_trace(4, 1)
        p = trace.iterations[0].phases[0]
        total = p.stores.total_bytes
        unique = p.stores.footprint().total_bytes
        assert total > unique

    def test_rank_sum_recorded(self):
        trace = PagerankWorkload(n=4_000).generate_trace(2, 1)
        assert trace.metadata["rank_sum"] == pytest.approx(1.0, abs=1e-6)


class TestSSSP:
    def test_traffic_varies_per_iteration(self):
        """The relaxation wavefront makes iterations genuinely differ."""
        trace = SSSPWorkload(n=20_000, warmup_iterations=2).generate_trace(4, 3)
        counts = [
            sum(p.stores.count for p in it.phases) for it in trace.iterations
        ]
        assert len(set(counts)) > 1

    def test_many_to_many(self):
        trace = SSSPWorkload(n=20_000).generate_trace(4, 2)
        pairs = set()
        for it in trace.iterations:
            for p in it.phases:
                for d in p.stores.destinations():
                    pairs.add((p.gpu, d))
        assert len(pairs) >= 10  # most of the 12 ordered pairs

    def test_reached_metadata(self):
        trace = SSSPWorkload(n=20_000).generate_trace(2, 2)
        assert trace.metadata["reached"] > 1


class TestALS:
    def test_alternating_phases(self):
        """Even iterations push user factors, odd push item factors."""
        w = ALSWorkload(n_users=2_000, n_items=500)
        trace = w.generate_trace(4, 4)
        user_bytes = trace.iterations[0].phases[0].stores.total_bytes
        item_bytes = trace.iterations[1].phases[0].stores.total_bytes
        assert user_bytes != item_bytes
        assert trace.iterations[2].phases[0].stores.total_bytes == user_bytes

    def test_factor_sized_stores(self):
        w = ALSWorkload(n_users=2_000, n_items=500, rank=8)
        sizes = w.generate_trace(4, 1).all_store_sizes()
        assert (sizes % 32 == 0).all() or (sizes <= 32).all()

    def test_broadcast_to_all_peers(self):
        trace = ALSWorkload(n_users=2_000, n_items=500).generate_trace(4, 1)
        for p in trace.iterations[0].phases:
            assert p.stores.destinations() == [d for d in range(4) if d != p.gpu]


class TestCT:
    def test_low_spatial_locality_in_issue_order(self):
        """Consecutive remote stores jump across the volume."""
        trace = CTWorkload(total_corrections=8_000).generate_trace(4, 1)
        p = trace.iterations[0].phases[0]
        one_dst = p.stores.for_dst(p.stores.destinations()[0])
        gaps = np.abs(np.diff(one_dst.addrs))
        assert np.median(gaps) > 1 << 20  # typically >1 MB apart

    def test_fresh_rays_each_iteration(self):
        trace = CTWorkload(total_corrections=8_000).generate_trace(4, 2)
        a = trace.iterations[0].phases[0].stores.addrs
        b = trace.iterations[1].phases[0].stores.addrs
        assert not np.array_equal(a, b)

    def test_staging_dma_aggregated(self):
        trace = CTWorkload(total_corrections=8_000).generate_trace(4, 1)
        for p in trace.iterations[0].phases:
            assert all(t.aggregated for t in p.dma)


class TestHIT:
    def test_transpose_moves_three_quarters(self):
        n = 32
        trace = HITWorkload(n=n).generate_trace(4, 1)
        pushed = sum(p.stores.total_bytes for p in trace.iterations[0].phases)
        assert pushed == n**3 * 8 * 3 // 4

    def test_all_to_all(self):
        trace = HITWorkload(n=32).generate_trace(4, 1)
        for p in trace.iterations[0].phases:
            assert p.stores.destinations() == [d for d in range(4) if d != p.gpu]

    def test_tiles_target_peer_apertures(self):
        trace = HITWorkload(n=32).generate_trace(4, 1)
        p = trace.iterations[0].phases[2]
        owners = np.unique([owner_of(int(a)) for a in p.stores.addrs[:50]])
        assert 2 not in owners
