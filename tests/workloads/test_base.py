"""Workload framework helper tests."""

import numpy as np
import pytest

from repro.gpu.memory import gpu_base
from repro.workloads.base import (
    contiguous_interval,
    element_intervals,
    interleave,
    push_elements,
)


class TestPushElements:
    def test_contiguous_elements_coalesce(self):
        """Consecutive 8 B elements become 128 B transactions."""
        batch = push_elements(np.arange(32), 8, dst_gpu=1, dst_base=gpu_base(1))
        assert batch.count == 2
        assert batch.sizes.tolist() == [128, 128]
        assert (batch.dsts == 1).all()

    def test_scattered_elements_stay_small(self):
        ids = np.arange(0, 3200, 100)
        batch = push_elements(ids, 8, dst_gpu=2, dst_base=gpu_base(2))
        assert batch.count == 32
        assert (batch.sizes == 8).all()

    def test_empty(self):
        assert push_elements(np.array([]), 8, 1, 0).count == 0

    def test_addresses_inside_destination(self):
        batch = push_elements(np.arange(10), 8, 1, gpu_base(1))
        assert (batch.addrs >> 34 == 1).all()


class TestInterleave:
    def test_round_robin(self):
        out = interleave(np.arange(8), ways=4)
        assert out.tolist() == [0, 4, 1, 5, 2, 6, 3, 7]

    def test_preserves_multiset(self):
        ids = np.arange(100)
        assert sorted(interleave(ids, 32).tolist()) == ids.tolist()

    def test_short_input_passthrough(self):
        ids = np.arange(5)
        assert np.array_equal(interleave(ids, 32), ids)

    def test_padding_dropped(self):
        out = interleave(np.arange(10), ways=4)
        assert sorted(out.tolist()) == list(range(10))

    def test_kills_l1_coalescing(self):
        contiguous = push_elements(np.arange(2048), 8, 1, gpu_base(1))
        scattered = push_elements(interleave(np.arange(2048), 32), 8, 1, gpu_base(1))
        assert scattered.count > 10 * contiguous.count


class TestIntervals:
    def test_element_intervals_merge_adjacent(self):
        s = element_intervals(np.array([0, 1, 5]), 8, base=1000)
        assert s.total_bytes == 24
        assert len(s) == 2

    def test_contiguous_interval(self):
        s = contiguous_interval(100, 50)
        assert s.total_bytes == 50
        assert s.contains(100) and not s.contains(150)
