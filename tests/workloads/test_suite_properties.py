"""Generic invariants every workload's traces must satisfy."""

import numpy as np
import pytest

from repro.gpu.memory import owner_of
from repro.workloads import small_suite


@pytest.fixture(scope="module", params=small_suite(), ids=lambda w: w.name)
def workload(request):
    return request.param


@pytest.fixture(scope="module")
def trace4(workload):
    return workload.generate_trace(n_gpus=4, iterations=3, seed=11)


@pytest.fixture(scope="module")
def trace1(workload):
    return workload.generate_trace(n_gpus=1, iterations=3, seed=11)


class TestTraceShape:
    def test_phase_per_gpu_per_iteration(self, trace4):
        assert trace4.n_gpus == 4
        assert trace4.n_iterations == 3
        for it in trace4.iterations:
            assert [p.gpu for p in it.phases] == [0, 1, 2, 3]

    def test_stores_are_remote_and_well_addressed(self, trace4):
        for it in trace4.iterations:
            for p in it.phases:
                s = p.stores
                if s.count == 0:
                    continue
                owners = s.addrs >> 34
                assert np.array_equal(owners, s.dsts), "store aperture != dst"
                assert (s.dsts != p.gpu).all(), "store to self"
                assert (s.sizes > 0).all() and (s.sizes <= 128).all()

    def test_dma_targets_are_remote(self, trace4):
        for it in trace4.iterations:
            for p in it.phases:
                for t in p.dma:
                    assert t.dst != p.gpu
                    assert owner_of(t.dst_addr) == t.dst

    def test_reads_are_local(self, trace4):
        for it in trace4.iterations:
            for p in it.phases:
                if p.reads:
                    assert (p.reads.starts >> 34 == p.gpu).all()

    def test_multi_gpu_trace_communicates(self, trace4):
        assert trace4.total_remote_stores() > 0


class TestSingleGPUBaseline:
    def test_no_remote_traffic(self, trace1):
        assert trace1.total_remote_stores() == 0
        for it in trace1.iterations:
            for p in it.phases:
                assert p.dma == []

    def test_work_is_conserved(self, trace4, trace1):
        """Strong scaling: 4 GPUs together do the single GPU's work."""
        for it4, it1 in zip(trace4.iterations, trace1.iterations):
            multi = sum(p.work.dram_bytes for p in it4.phases)
            single = it1.phases[0].work.dram_bytes
            assert multi == pytest.approx(single, rel=0.05)


class TestDeterminism:
    def test_same_seed_same_trace(self, workload):
        a = workload.generate_trace(n_gpus=2, iterations=2, seed=3)
        b = workload.generate_trace(n_gpus=2, iterations=2, seed=3)
        assert a.total_remote_stores() == b.total_remote_stores()
        for ita, itb in zip(a.iterations, b.iterations):
            for pa, pb in zip(ita.phases, itb.phases):
                assert np.array_equal(pa.stores.addrs, pb.stores.addrs)


class TestConsumption:
    def test_some_stored_bytes_are_read(self, trace4):
        """Producers and consumers must actually meet: at least part of
        what is pushed in iteration k is read in iteration k+1."""
        total_overlap = 0
        for k, it in enumerate(trace4.iterations):
            consumer = trace4.iterations[min(k + 1, trace4.n_iterations - 1)]
            reads = {p.gpu: p.reads for p in consumer.phases}
            for p in it.phases:
                for dst in p.stores.destinations():
                    foot = p.stores.for_dst(dst).footprint()
                    total_overlap += foot.intersect(reads[dst]).total_bytes
        if trace4.total_remote_stores():
            assert total_overlap > 0
