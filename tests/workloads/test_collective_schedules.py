"""Property tests for collective schedules and their trace lowering.

The schedule layer is pure data, so Hypothesis can sweep rank counts,
message sizes and chunk granularities and check the algebra every
communication library relies on: per-step byte conservation, no
self-sends, step-ordering monotonicity, and the closed-form traffic
totals (ring all-reduce moving exactly ``2*(N-1)/N * size`` per rank).

The lowering tests then pin the schedule -> trace contract: stores are
remote and transaction-sized, everything received at step ``s`` is
read by the destination's kernel at step ``s+1``, and the wire payload
of the trace equals the schedule's byte total.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gpu.memory import owner_of
from repro.workloads import (
    allgather_schedule,
    alltoall_schedule,
    collectives_suite,
    pipeline_schedule,
    ring_allreduce_schedule,
    tree_allreduce_schedule,
)
from repro.workloads.collectives import CollectiveSchedule, CollectiveTransfer

n_ranks_s = st.integers(min_value=2, max_value=12)
message_bytes_s = st.integers(min_value=1, max_value=32_768)
chunk_bytes_s = st.sampled_from([64, 256, 1024, 4096])
elem_bytes_s = st.sampled_from([1, 2, 4, 8])

ALL_BUILDERS = (
    ring_allreduce_schedule,
    tree_allreduce_schedule,
    allgather_schedule,
    alltoall_schedule,
    pipeline_schedule,
)


def _generic_invariants(s: CollectiveSchedule, chunk_bytes: int) -> None:
    # No self-sends, ranks in range (the dataclass validates, but these
    # ARE the properties under test -- assert them independently).
    for t in s.transfers:
        assert t.src != t.dst
        assert 0 <= t.src < s.n_ranks and 0 <= t.dst < s.n_ranks
        assert 0 < t.nbytes <= chunk_bytes
        assert t.dst_offset + t.nbytes <= s.buffer_bytes
    # Step-ordering monotonicity: issue order never goes back in time,
    # and steps are contiguous from zero (no dead barriers).
    steps = [t.step for t in s.transfers]
    assert steps == sorted(steps)
    assert set(steps) == set(range(s.n_steps))


class TestRingAllReduce:
    @given(n=n_ranks_s, mb=message_bytes_s, cb=chunk_bytes_s, eb=elem_bytes_s)
    @settings(max_examples=60, deadline=None)
    def test_invariants_and_closed_form(self, n, mb, cb, eb):
        s = ring_allreduce_schedule(n, mb, cb, eb)
        _generic_invariants(s, cb)
        # Padding: size covers the message and divides evenly by N.
        assert s.nbytes >= mb and s.nbytes % (n * eb) == 0
        # The paper-grade formula, exact thanks to padding: every rank
        # moves 2*(N-1)/N * size over the wire.
        expected = 2 * (n - 1) * s.nbytes // n
        for r in range(n):
            assert s.sent_bytes(r) == expected
            assert s.received_bytes(r) == expected

    @given(n=n_ranks_s, mb=message_bytes_s)
    @settings(max_examples=40, deadline=None)
    def test_per_step_conservation(self, n, mb):
        """A ring is balanced: at every step each rank sends exactly one
        size/N chunk to its successor and receives one from its
        predecessor."""
        s = ring_allreduce_schedule(n, mb)
        per_rank = s.nbytes // n
        assert s.n_steps == 2 * (n - 1)
        for step in range(s.n_steps):
            for r in range(n):
                assert s.sent_bytes(r, step) == per_rank
                assert s.received_bytes(r, step) == per_rank
                out = s.outgoing(r, step)
                assert {t.dst for t in out} == {(r + 1) % n}

    def test_reduce_steps_are_the_first_phase(self):
        s = ring_allreduce_schedule(4, 4096)
        assert s.reduce_steps == frozenset(range(3))


class TestTreeAllReduce:
    @given(n=n_ranks_s, mb=message_bytes_s, cb=chunk_bytes_s, eb=elem_bytes_s)
    @settings(max_examples=60, deadline=None)
    def test_invariants_and_total(self, n, mb, cb, eb):
        s = tree_allreduce_schedule(n, mb, cb, eb)
        _generic_invariants(s, cb)
        # Reduce: N-1 full-message sends up the binomial tree; the
        # broadcast mirrors them back down -- 2*(N-1)*size total.
        assert s.total_bytes() == 2 * (n - 1) * s.nbytes

    @given(n=n_ranks_s, mb=message_bytes_s)
    @settings(max_examples=40, deadline=None)
    def test_broadcast_mirrors_reduce(self, n, mb):
        s = tree_allreduce_schedule(n, mb)
        n_reduce = max(s.reduce_steps) + 1
        reduce_pairs = {
            (t.src, t.dst) for t in s.transfers if t.step < n_reduce
        }
        bcast_pairs = {
            (t.dst, t.src) for t in s.transfers if t.step >= n_reduce
        }
        assert reduce_pairs == bcast_pairs
        # Every rank but the root sends exactly once during reduce.
        senders = [t.src for t in s.transfers if t.step < n_reduce]
        assert sorted(set(senders)) == list(range(1, n))


class TestAllGather:
    @given(n=n_ranks_s, mb=message_bytes_s, cb=chunk_bytes_s, eb=elem_bytes_s)
    @settings(max_examples=60, deadline=None)
    def test_invariants_and_coverage(self, n, mb, cb, eb):
        s = allgather_schedule(n, mb, cb, eb)
        _generic_invariants(s, cb)
        assert s.buffer_bytes == n * s.nbytes
        for r in range(n):
            # Each rank forwards and receives N-1 contributions.
            assert s.sent_bytes(r) == (n - 1) * s.nbytes
            assert s.received_bytes(r) == (n - 1) * s.nbytes
            # Coverage: the received slots are exactly everyone else's.
            slots = {
                t.dst_offset // s.nbytes
                for t in s.transfers
                if t.dst == r
            }
            assert slots == set(range(n)) - {r}


class TestAllToAll:
    @given(n=n_ranks_s, mb=message_bytes_s, cb=chunk_bytes_s, eb=elem_bytes_s)
    @settings(max_examples=60, deadline=None)
    def test_invariants_and_step_permutations(self, n, mb, cb, eb):
        s = alltoall_schedule(n, mb, cb, eb)
        _generic_invariants(s, cb)
        slice_bytes = s.nbytes // n
        for r in range(n):
            assert s.sent_bytes(r) == (n - 1) * slice_bytes
            assert s.received_bytes(r) == (n - 1) * slice_bytes
        # Congestion-free shift schedule: every step is a perfect
        # permutation -- each rank sends exactly one slice and receives
        # exactly one.
        by_step: dict[int, set] = {}
        for t in s.transfers:
            by_step.setdefault(t.step, set()).add((t.src, t.dst))
        for pairs in by_step.values():
            assert {src for src, _ in pairs} == set(range(n))
            assert {dst for _, dst in pairs} == set(range(n))

    @given(n=n_ranks_s, mb=message_bytes_s)
    @settings(max_examples=40, deadline=None)
    def test_every_pair_communicates_once(self, n, mb):
        s = alltoall_schedule(n, mb)
        pairs = [(t.src, t.dst, t.step) for t in s.transfers]
        distinct = {(src, dst) for src, dst, _ in pairs}
        assert distinct == {
            (r, d) for r in range(n) for d in range(n) if r != d
        }


class TestPipeline:
    @given(
        n=n_ranks_s,
        mb=message_bytes_s,
        m=st.integers(min_value=1, max_value=6),
    )
    @settings(max_examples=40, deadline=None)
    def test_invariants_and_total(self, n, mb, m):
        s = pipeline_schedule(n, mb, microbatches=m)
        _generic_invariants(s, 16_384)
        # Forward + backward: each of the N-1 stage boundaries carries
        # every microbatch once in each direction.
        assert s.total_bytes() == 2 * m * (n - 1) * s.nbytes
        # Interior stages are balanced; the ends send only one way.
        for r in range(1, n - 1):
            assert s.sent_bytes(r) == s.received_bytes(r) == 2 * m * s.nbytes
        assert s.sent_bytes(0) == m * s.nbytes
        assert s.received_bytes(n - 1) == m * s.nbytes


class TestScheduleValidation:
    def test_self_send_rejected(self):
        with pytest.raises(ValueError, match="self-send"):
            CollectiveTransfer(0, 1, 1, 64, 0)

    def test_unordered_steps_rejected(self):
        with pytest.raises(ValueError, match="step-ordered"):
            CollectiveSchedule(
                op="bad",
                n_ranks=2,
                nbytes=64,
                buffer_bytes=64,
                transfers=(
                    CollectiveTransfer(1, 0, 1, 64, 0),
                    CollectiveTransfer(0, 1, 0, 64, 0),
                ),
            )

    def test_buffer_overflow_rejected(self):
        with pytest.raises(ValueError, match="exceeds buffer"):
            CollectiveSchedule(
                op="bad",
                n_ranks=2,
                nbytes=64,
                buffer_bytes=64,
                transfers=(CollectiveTransfer(0, 0, 1, 64, 32),),
            )


# -- trace lowering -------------------------------------------------

SMALL = dict(message_bytes=2048, chunk_bytes=512)


@pytest.fixture(
    scope="module",
    params=collectives_suite(**SMALL),
    ids=lambda w: w.name,
)
def workload(request):
    return request.param


@pytest.fixture(scope="module")
def trace4(workload):
    return workload.generate_trace(n_gpus=4, iterations=2, seed=11)


class TestLoweredTraces:
    def test_shape_one_step_per_iteration(self, workload, trace4):
        schedule = workload.build_schedule(4)
        assert trace4.n_gpus == 4
        assert trace4.n_iterations == schedule.n_steps * 2
        assert trace4.metadata["steps_per_invocation"] == schedule.n_steps

    def test_stores_are_remote_transactions(self, trace4):
        for it in trace4.iterations:
            for p in it.phases:
                s = p.stores
                if s.count == 0:
                    continue
                assert np.array_equal(s.addrs >> 34, s.dsts)
                assert (s.dsts != p.gpu).all()
                assert (s.sizes > 0).all() and (s.sizes <= 128).all()

    def test_dma_mirrors_stores(self, trace4):
        """The memcpy port copies exactly the pushed regions."""
        for it in trace4.iterations:
            for p in it.phases:
                dma_total = sum(t.nbytes for t in p.dma)
                assert dma_total == p.stores.total_bytes
                for t in p.dma:
                    assert t.dst != p.gpu
                    assert owner_of(t.dst_addr) == t.dst

    def test_received_bytes_are_read_next_step(self, trace4):
        """Everything delivered at step s is consumed at step s+1 --
        the schedule dependency structure, visible in the trace."""
        for k in range(trace4.n_iterations - 1):
            produced = trace4.iterations[k]
            reads = {
                p.gpu: p.reads for p in trace4.iterations[k + 1].phases
            }
            for p in produced.phases:
                for dst in p.stores.destinations():
                    foot = p.stores.for_dst(dst).footprint()
                    covered = foot.intersect(reads[dst]).total_bytes
                    assert covered == foot.total_bytes

    def test_wire_payload_matches_schedule(self, workload, trace4):
        schedule = workload.build_schedule(4)
        assert trace4.total_remote_bytes() == schedule.total_bytes() * 2
        assert (
            trace4.metadata["total_wire_payload"]
            == schedule.total_bytes() * 2
        )

    def test_deterministic(self, workload):
        a = workload.generate_trace(n_gpus=4, iterations=1, seed=3)
        b = workload.generate_trace(n_gpus=4, iterations=1, seed=3)
        for ita, itb in zip(a.iterations, b.iterations):
            for pa, pb in zip(ita.phases, itb.phases):
                assert np.array_equal(pa.stores.addrs, pb.stores.addrs)

    def test_single_gpu_baseline_is_local(self, workload):
        t = workload.generate_trace(n_gpus=1, iterations=3)
        assert t.total_remote_stores() == 0
        for it in t.iterations:
            assert it.phases[0].dma == []

    def test_fine_grained_keeps_element_granularity(self, workload):
        fg = type(workload)(**{**SMALL, "fine_grained": True})
        t = fg.generate_trace(n_gpus=4, iterations=1)
        sizes = t.all_store_sizes()
        assert sizes.size > 0
        # Interleaved CTA streams defeat the L1 coalescer: stores stay
        # well below the 128 B line the contiguous lowering reaches.
        assert sizes.max() <= 32

    def test_registered_and_spec_roundtrip(self, workload):
        from repro.run import RunSpec

        spec = RunSpec.for_workload(workload, n_gpus=4, iterations=1)
        rebuilt = spec.build_workload()
        assert type(rebuilt) is type(workload)
        assert rebuilt.message_bytes == workload.message_bytes
