"""Numeric validation of the workload algorithms against independent
implementations (networkx, scipy) and convergence properties."""

import networkx as nx
import numpy as np
import pytest
import scipy.sparse as sp
import scipy.sparse.csgraph as csgraph

from repro.workloads.datasets import (
    banded_matrix,
    bipartite_ratings,
    dedup_edges,
    powerlaw_graph,
)
from repro.workloads.reference import (
    als_factorize,
    bellman_ford,
    jacobi_poisson_2d,
    pagerank,
    spectral_roundtrip,
)


def to_scipy(graph, weights=None):
    src = np.repeat(np.arange(graph.n), graph.out_degree())
    data = weights if weights is not None else np.ones(graph.nnz)
    return sp.csr_matrix((data, (src, graph.dst)), shape=(graph.n, graph.n))


class TestPagerank:
    def test_matches_networkx(self):
        # networkx collapses parallel edges; compare on a simple graph.
        graph, _ = dedup_edges(banded_matrix(300, band=30, avg_degree=5, seed=3))
        ours = pagerank(graph, damping=0.85, iterations=100)
        src = np.repeat(np.arange(graph.n), graph.out_degree())
        g = nx.DiGraph()
        g.add_nodes_from(range(graph.n))
        g.add_edges_from(zip(src.tolist(), graph.dst.tolist()))
        theirs = nx.pagerank(g, alpha=0.85, max_iter=200, tol=1e-12)
        theirs_vec = np.array([theirs[i] for i in range(graph.n)])
        assert np.allclose(ours, theirs_vec, atol=1e-6)

    def test_ranks_sum_to_one(self):
        graph = powerlaw_graph(500, 4, seed=1)
        assert pagerank(graph).sum() == pytest.approx(1.0, abs=1e-9)

    def test_hubs_rank_higher(self):
        graph = powerlaw_graph(2000, 6, seed=2)
        in_deg = np.zeros(graph.n)
        np.add.at(in_deg, graph.dst, 1)
        x = pagerank(graph)
        top_hub = int(np.argmax(in_deg))
        assert x[top_hub] > np.median(x)


class TestBellmanFord:
    def test_matches_scipy(self):
        # scipy's csr constructor sums duplicate edges; collapse them
        # (keeping the minimum weight) before comparing.
        raw = powerlaw_graph(400, 5, seed=4)
        rng = np.random.default_rng(5)
        raw_weights = rng.integers(1, 100, raw.nnz).astype(np.int64)
        graph, weights = dedup_edges(raw, raw_weights)
        ours = bellman_ford(graph, weights, source=0)
        mat = to_scipy(graph, weights.astype(float))
        theirs = csgraph.bellman_ford(mat, indices=0, directed=True)
        inf = np.iinfo(np.int64).max // 4
        reachable = ours < inf
        assert np.array_equal(reachable, np.isfinite(theirs))
        assert np.allclose(ours[reachable], theirs[reachable])

    def test_weight_count_validated(self):
        graph = powerlaw_graph(50, 3, seed=1)
        with pytest.raises(ValueError):
            bellman_ford(graph, np.ones(3, dtype=np.int64))

    def test_early_termination_on_convergence(self):
        graph = banded_matrix(100, 10, 4, seed=6)
        weights = np.ones(graph.nnz, dtype=np.int64)
        full = bellman_ford(graph, weights)
        capped = bellman_ford(graph, weights, max_rounds=99)
        assert np.array_equal(full, capped)


class TestJacobi:
    def test_residual_decreases(self):
        _, residuals = jacobi_poisson_2d(n=48, iterations=30)
        assert residuals[-1] < residuals[0]
        # Monotone after the first couple of sweeps.
        assert all(b <= a * 1.0001 for a, b in zip(residuals[2:], residuals[3:]))


class TestALS:
    def test_rmse_decreases(self):
        ratings = bipartite_ratings(150, 40, avg_ratings=6, seed=7)
        rng = np.random.default_rng(8)
        values = rng.uniform(1, 5, ratings.nnz)
        _, _, history = als_factorize(ratings, values, rank=6, iterations=6)
        assert history[-1] < history[0]
        assert all(b <= a * 1.01 for a, b in zip(history, history[1:]))

    def test_recovers_low_rank_structure(self):
        """Ratings generated from a true low-rank model are fit well."""
        rng = np.random.default_rng(9)
        ratings = bipartite_ratings(120, 30, avg_ratings=8, seed=9)
        users = np.repeat(np.arange(120), np.diff(ratings.user_indptr))
        U0 = rng.standard_normal((120, 4))
        V0 = rng.standard_normal((30, 4))
        values = np.einsum("ij,ij->i", U0[users], V0[ratings.item_ids])
        # Slightly over-parameterized (rank 6 for rank-4 data): exact-
        # rank ALS can stall in shallow local minima.
        _, _, history = als_factorize(
            ratings, values, rank=6, iterations=40, reg=1e-4
        )
        assert history[-1] < 0.25 * float(np.std(values))

    def test_value_count_validated(self):
        ratings = bipartite_ratings(10, 5, 2, seed=0)
        with pytest.raises(ValueError):
            als_factorize(ratings, np.ones(3))


class TestSpectral:
    def test_fft_roundtrip(self):
        assert spectral_roundtrip(16) < 1e-12
