"""Examples must at least import cleanly and expose a main()."""

import importlib.util
from pathlib import Path

import pytest

EXAMPLES = sorted((Path(__file__).parent.parent / "examples").glob("*.py"))


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.stem)
def test_example_imports_and_has_main(path):
    spec = importlib.util.spec_from_file_location(f"example_{path.stem}", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    assert callable(getattr(module, "main", None))


def test_custom_workload_example_runs_small():
    """The tutorial workload works end to end at a reduced size."""
    path = Path(__file__).parent.parent / "examples" / "custom_workload.py"
    spec = importlib.util.spec_from_file_location("example_custom", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)

    from repro.sim.runner import ExperimentConfig, compare_paradigms

    w = module.HistogramWorkload(n_bins=8_000, total_samples=8_000)
    result = compare_paradigms(
        w, paradigms=("p2p", "finepack"), config=ExperimentConfig(iterations=2)
    )
    assert result.runs["finepack"].wire_bytes < result.runs["p2p"].wire_bytes
