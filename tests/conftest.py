"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import FinePackConfig
from repro.interconnect.pcie import PCIE_GEN4, PCIeProtocol


@pytest.fixture
def protocol() -> PCIeProtocol:
    return PCIeProtocol(PCIE_GEN4)


@pytest.fixture
def config() -> FinePackConfig:
    return FinePackConfig()


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)
