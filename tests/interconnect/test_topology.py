"""Switch and topology routing tests."""

import networkx as nx
import pytest

from repro.interconnect.link import Link
from repro.interconnect.message import WireMessage
from repro.interconnect.pcie import PCIE_GEN4
from repro.interconnect.switch import Switch
from repro.interconnect.topology import (
    fully_connected,
    single_switch,
    two_level_tree,
)


def msg(src, dst, payload=3200, overhead=0):
    return WireMessage(src=src, dst=dst, payload_bytes=payload, overhead_bytes=overhead)


class TestSwitch:
    def _switch(self, n=4):
        ups = [Link(f"u{i}", 32.0, propagation_ns=0.0) for i in range(n)]
        downs = [Link(f"d{i}", 32.0, propagation_ns=0.0) for i in range(n)]
        return Switch(up_links=ups, down_links=downs, forwarding_ns=10.0)

    def test_route_time(self):
        sw = self._switch()
        delivered = sw.route(msg(0, 1), 0.0)
        # 100 ns up + 10 ns forward + 100 ns down.
        assert delivered == pytest.approx(210.0)

    def test_destination_contention(self):
        sw = self._switch()
        d1 = sw.route(msg(0, 3), 0.0)
        d2 = sw.route(msg(1, 3), 0.0)
        # Both serialize on GPU 3's down link.
        assert d2 >= d1 + 100 - 1e-9

    def test_distinct_destinations_parallel(self):
        sw = self._switch()
        d1 = sw.route(msg(0, 2), 0.0)
        d2 = sw.route(msg(1, 3), 0.0)
        assert d2 == pytest.approx(d1)

    def test_local_traffic_rejected(self):
        with pytest.raises(ValueError):
            self._switch().route(msg(1, 1), 0.0)

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            self._switch().route(msg(0, 9), 0.0)

    def test_mismatched_ports_rejected(self):
        with pytest.raises(ValueError):
            Switch(up_links=[Link("u", 1.0)], down_links=[])


class TestSingleSwitch:
    def test_structure(self):
        topo = single_switch(4)
        assert topo.n_gpus == 4
        assert topo.graph.number_of_nodes() == 5
        assert all(topo.graph.has_edge(f"gpu{i}", "sw0") for i in range(4))

    def test_duplex_links(self):
        topo = single_switch(4)
        assert ("gpu0", "sw0") in topo.links and ("sw0", "gpu0") in topo.links

    def test_route_and_stats(self):
        topo = single_switch(4, generation=PCIE_GEN4)
        t = topo.route(msg(0, 1), 0.0)
        assert t > 0
        assert topo.egress_stats(0).messages == 1
        assert topo.total_wire_bytes() == 2 * 3200  # up + down links

    def test_reset(self):
        topo = single_switch(4)
        topo.route(msg(0, 1), 0.0)
        topo.reset()
        assert topo.total_wire_bytes() == 0

    def test_rejects_single_gpu(self):
        with pytest.raises(ValueError):
            single_switch(1)

    def test_rejects_local_route(self):
        with pytest.raises(ValueError):
            single_switch(4).route(msg(2, 2), 0.0)


class TestFullyConnected:
    def test_structure(self):
        topo = fully_connected(4)
        assert topo.graph.number_of_nodes() == 4
        assert topo.graph.number_of_edges() == 6
        assert nx.diameter(topo.graph) == 1

    def test_single_hop_faster_than_switched(self):
        flat = fully_connected(4)
        tree = single_switch(4)
        t_flat = flat.route(msg(0, 1), 0.0)
        t_tree = tree.route(msg(0, 1), 0.0)
        assert t_flat < t_tree  # one serialization instead of two

    def test_no_destination_port_contention(self):
        """Dedicated pairwise links: concurrent senders don't queue."""
        topo = fully_connected(4)
        t1 = topo.route(msg(0, 3), 0.0)
        t2 = topo.route(msg(1, 3), 0.0)
        assert t2 == pytest.approx(t1)

    def test_egress_stats_aggregate_all_peers(self):
        topo = fully_connected(4)
        topo.route(msg(0, 1), 0.0)
        topo.route(msg(0, 2), 0.0)
        stats = topo.egress_stats(0)
        assert stats.messages == 2
        assert stats.payload_bytes == 6400

    def test_rejects_single_gpu(self):
        with pytest.raises(ValueError):
            fully_connected(1)


class TestTwoLevelTree:
    def test_structure(self):
        topo = two_level_tree(16, fanout=4)
        assert topo.n_gpus == 16
        # 16 GPUs + 4 leaf switches + 1 root.
        assert topo.graph.number_of_nodes() == 21
        assert nx.is_tree(topo.graph)

    def test_same_leaf_two_hops(self):
        topo = two_level_tree(16, fanout=4)
        path = nx.shortest_path(topo.graph, "gpu0", "gpu1")
        assert len(path) == 3  # gpu0 -> sw1 -> gpu1

    def test_cross_leaf_goes_via_root(self):
        topo = two_level_tree(16, fanout=4)
        path = nx.shortest_path(topo.graph, "gpu0", "gpu15")
        assert "sw0" in path

    def test_cross_leaf_slower_than_same_leaf(self):
        topo = two_level_tree(16, fanout=4)
        t_near = topo.route(msg(0, 1), 0.0)
        topo.reset()
        t_far = topo.route(msg(0, 15), 0.0)
        assert t_far > t_near

    def test_fanout_must_divide(self):
        with pytest.raises(ValueError):
            two_level_tree(10, fanout=4)
