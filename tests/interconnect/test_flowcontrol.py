"""Credit-pool flow-control tests."""

import pytest

from repro.interconnect.flowcontrol import DATA_CREDIT_BYTES, CreditPool


@pytest.fixture
def pool() -> CreditPool:
    return CreditPool(
        header_credits=2, data_credit_bytes=256, drain_bytes_per_ns=1.0
    )


class TestCreditPool:
    def test_data_credit_unit(self):
        assert DATA_CREDIT_BYTES == 16

    def test_empty_pool_starts_immediately(self, pool):
        assert pool.earliest_start(10.0, 100) == 10.0

    def test_oversized_rejected(self, pool):
        with pytest.raises(ValueError):
            pool.earliest_start(0.0, 257)

    def test_data_credit_stall(self, pool):
        pool.commit(arrival=0.0, nbytes=200)  # drains at t=200
        start = pool.earliest_start(0.0, 100)
        assert start == pytest.approx(200.0)

    def test_header_credit_stall(self, pool):
        pool.commit(0.0, 10)  # drains at 10
        pool.commit(0.0, 20)  # drains at 20
        # Both header credits consumed; must wait for the first drain.
        start = pool.earliest_start(0.0, 10)
        assert start == pytest.approx(10.0)

    def test_drained_transactions_release_credits(self, pool):
        pool.commit(0.0, 200)
        assert pool.earliest_start(300.0, 200) == 300.0

    def test_occupancy(self, pool):
        pool.commit(0.0, 64)
        tlps, occupied = pool.occupancy(1.0)
        assert (tlps, occupied) == (1, 64)
        tlps, occupied = pool.occupancy(100.0)
        assert (tlps, occupied) == (0, 0)

    def test_commit_returns_drain_time(self, pool):
        assert pool.commit(5.0, 64) == pytest.approx(69.0)

    def test_reset_clears_outstanding(self, pool):
        pool.commit(0.0, 200)
        pool.reset()
        assert pool.earliest_start(0.0, 200) == 0.0
        assert pool.occupancy(0.0) == (0, 0)
