"""Structural invariants of the scaled-up topologies.

For every fat-tree size the ISSUE targets (8/16/32/64 GPUs): all-pairs
connectivity, route symmetry, hop-count bounds against the factory's
own ``meta`` contract, trunk multiplicity under oversubscription, and
fault-aware rerouting terminating on the 64-GPU tree.  Plus the
switched-mesh plane-pinning invariants the batch-transport eligibility
relies on.
"""

import networkx as nx
import pytest

from repro.faults import FaultInjector, FaultSchedule
from repro.faults.state import RouteBlockedError
from repro.interconnect.message import WireMessage
from repro.interconnect.topology import fat_tree, switched_mesh

SIZES = (8, 16, 32, 64)


def msg(src, dst, payload=3200):
    return WireMessage(src=src, dst=dst, payload_bytes=payload, overhead_bytes=0)


@pytest.fixture(scope="module", params=SIZES, ids=lambda n: f"{n}gpu")
def tree(request):
    return fat_tree(n_gpus=request.param)


class TestFatTreeStructure:
    def test_is_a_tree_and_connected(self, tree):
        assert nx.is_tree(tree.graph)
        assert nx.is_connected(tree.graph)

    def test_every_gpu_pair_connected(self, tree):
        n = tree.n_gpus
        for s in range(n):
            for d in range(n):
                if s != d:
                    assert nx.has_path(tree.graph, f"gpu{s}", f"gpu{d}")

    def test_route_symmetry(self, tree):
        """The unique tree path back is the forward path reversed."""
        n = tree.n_gpus
        for s in range(0, n, max(1, n // 8)):
            for d in range(0, n, max(1, n // 8)):
                if s != d:
                    assert tree._path(s, d) == tree._path(d, s)[::-1]

    def test_hop_counts_within_meta_bound(self, tree):
        n = tree.n_gpus
        worst = 0
        for s in range(n):
            for d in range(s + 1, n):
                hops = len(tree._path(s, d)) - 1
                assert hops >= 2  # always via at least the leaf switch
                worst = max(worst, hops)
        assert worst <= tree.meta["max_hops"]
        # The bound is tight: some pair crosses the whole tree.
        if tree.meta["levels"] > 1:
            assert worst == tree.meta["max_hops"]

    def test_same_leaf_pairs_are_two_hops(self, tree):
        fanout = tree.meta["fanout"]
        assert len(tree._path(0, 1)) - 1 == 2
        if tree.n_gpus > fanout:
            # Cross-leaf pairs must climb at least one level.
            assert len(tree._path(0, fanout)) - 1 >= 4

    def test_levels_match_size(self, tree):
        import math

        fanout = tree.meta["fanout"]
        leaves = math.ceil(tree.n_gpus / fanout)
        expected_levels = 1 + (
            0 if leaves == 1 else math.ceil(math.log(leaves, fanout))
        )
        assert tree.meta["levels"] == expected_levels

    def test_duplex_links_everywhere(self, tree):
        for a, b in tree.links:
            assert (b, a) in tree.links


class TestTrunkMultiplicity:
    def test_full_bisection_trunks(self):
        t = fat_tree(n_gpus=64, fanout=4, oversubscription=1.0)
        # Level-l uplinks aggregate fanout**l lanes: capacity of the
        # subtree below is preserved all the way up.
        assert t.meta["trunk_width"] == {1: 4, 2: 16}
        leaf_bw = t.links[("gpu0", "sw1_0")].bytes_per_ns
        trunk1 = t.links[("sw1_0", "sw2_0")].bytes_per_ns
        trunk2 = t.links[("sw2_0", "sw3_0")].bytes_per_ns
        assert trunk1 == pytest.approx(4 * leaf_bw)
        assert trunk2 == pytest.approx(16 * leaf_bw)

    def test_oversubscription_thins_trunks(self):
        t = fat_tree(n_gpus=64, fanout=4, oversubscription=4.0)
        assert t.meta["trunk_width"] == {1: 1, 2: 4}
        full = fat_tree(n_gpus=64, fanout=4)
        edge = ("sw1_0", "sw2_0")
        assert (
            t.links[edge].bytes_per_ns
            == full.links[edge].bytes_per_ns / 4
        )

    def test_oversubscription_below_one_rejected(self):
        with pytest.raises(ValueError, match="oversubscription"):
            fat_tree(n_gpus=8, oversubscription=0.5)

    def test_partial_leaf_allowed(self):
        t = fat_tree(n_gpus=10, fanout=4)
        assert nx.is_connected(t.graph)
        assert t.route(msg(0, 9), 0.0) > 0

    def test_oversubscribed_cross_traffic_slower(self):
        full = fat_tree(n_gpus=16, fanout=4)
        thin = fat_tree(n_gpus=16, fanout=4, oversubscription=4.0)
        t_full = full.route(msg(0, 15), 0.0)
        t_thin = thin.route(msg(0, 15), 0.0)
        assert t_thin > t_full


class TestSwitchedMesh:
    def test_structure(self):
        m = switched_mesh(n_gpus=8, planes=2)
        assert m.meta == {
            "kind": "switched_mesh",
            "planes": 2,
            "max_hops": 2,
            "n_switches": 2,
        }
        # 8 GPUs x 2 planes duplex pairs.
        assert len(m.links) == 32

    def test_all_pairs_two_hops_and_symmetric(self):
        m = switched_mesh(n_gpus=16, planes=4)
        for s in range(16):
            for d in range(16):
                if s == d:
                    continue
                path = m._path(s, d)
                assert len(path) == 3
                assert path == m._path(d, s)[::-1]

    def test_pairs_spread_across_planes(self):
        m = switched_mesh(n_gpus=8, planes=2)
        used = {m._path(s, d)[1] for s in range(8) for d in range(8) if s != d}
        assert used == {"sw0", "sw1"}

    def test_distinct_plane_no_contention(self):
        m = switched_mesh(n_gpus=4, planes=2)
        # (0->1) pins to sw1, (0->2) pins to sw0: different egress
        # links, so the second message does not queue behind the first.
        t1 = m.route(msg(0, 1), 0.0)
        t2 = m.route(msg(0, 2), 0.0)
        assert t2 == pytest.approx(t1)


def _fail_link_schedule(link: str) -> FaultSchedule:
    return FaultSchedule.from_dict(
        {
            "name": "kill-one-link",
            "faults": [{"type": "link_fail", "link": link, "start_ns": 0.0}],
        }
    )


class TestFaultAwareRerouting:
    def test_64_gpu_tree_blocked_route_terminates(self):
        """A dead trunk on a tree leaves no alternate path; rerouting
        must conclude (RouteBlockedError), not wander or hang."""
        t = fat_tree(n_gpus=64)
        FaultInjector(_fail_link_schedule("sw1_0->sw2_0")).arm(t)
        with pytest.raises(RouteBlockedError):
            t.route(msg(0, 63), 0.0)

    def test_64_gpu_tree_unaffected_pairs_still_route(self):
        t = fat_tree(n_gpus=64)
        FaultInjector(_fail_link_schedule("sw1_0->sw2_0")).arm(t)
        # Intra-leaf traffic under the dead trunk, and all traffic in
        # other subtrees, keep flowing.
        assert t.route(msg(0, 1), 0.0) > 0
        assert t.route(msg(8, 63), 0.0) > 0
        # The reverse direction of the duplex trunk is alive too.
        assert t.route(msg(63, 0), 0.0) > 0

    def test_mesh_reroutes_through_surviving_plane(self):
        m = switched_mesh(n_gpus=8, planes=2)
        pinned = m._path(0, 1)[1]
        FaultInjector(_fail_link_schedule(f"gpu0->{pinned}")).arm(m)
        before = m.rerouted_messages
        assert m.route(msg(0, 1), 0.0) > 0
        assert m.rerouted_messages == before + 1
