"""WireMessage tests."""

import pytest

from repro.interconnect.message import MessageKind, WireMessage


def make(payload=64, overhead=32, **kw):
    return WireMessage(src=0, dst=1, payload_bytes=payload, overhead_bytes=overhead, **kw)


class TestWireMessage:
    def test_wire_bytes(self):
        assert make().wire_bytes == 96

    def test_goodput(self):
        assert make().goodput == pytest.approx(64 / 96)

    def test_goodput_empty(self):
        assert make(payload=0, overhead=0).goodput == 0.0

    def test_negative_payload_rejected(self):
        with pytest.raises(ValueError):
            make(payload=-1)

    def test_negative_overhead_rejected(self):
        with pytest.raises(ValueError):
            make(overhead=-1)

    def test_default_kind_is_store(self):
        assert make().kind is MessageKind.STORE

    def test_meta_is_per_instance(self):
        a, b = make(), make()
        a.meta["x"] = 1
        assert "x" not in b.meta

    def test_all_kinds_distinct(self):
        values = [k.value for k in MessageKind]
        assert len(values) == len(set(values))
