"""PCIe protocol cost model tests."""

import pytest

from repro.interconnect.pcie import (
    GENERATIONS,
    PCIE_GEN3,
    PCIE_GEN4,
    PCIE_GEN5,
    PCIE_GEN6,
    PCIeProtocol,
)


class TestGenerations:
    def test_bandwidth_doubles_per_generation(self):
        assert PCIE_GEN4.bandwidth_gbps == 2 * PCIE_GEN3.bandwidth_gbps
        assert PCIE_GEN5.bandwidth_gbps == 2 * PCIE_GEN4.bandwidth_gbps
        assert PCIE_GEN6.bandwidth_gbps == 2 * PCIE_GEN5.bandwidth_gbps

    def test_paper_bandwidths(self):
        """Paper Sec. V: 32 GB/s (Gen4) to 128 GB/s (Gen6)."""
        assert PCIE_GEN4.bandwidth_gbps == 32.0
        assert PCIE_GEN6.bandwidth_gbps == 128.0

    def test_registry_by_generation_number(self):
        assert GENERATIONS[4] is PCIE_GEN4
        assert sorted(GENERATIONS) == [3, 4, 5, 6]

    def test_bytes_per_ns_equals_gbps(self):
        assert PCIE_GEN4.bytes_per_ns == 32.0

    def test_max_payload_default(self):
        assert PCIE_GEN4.max_payload == 4096


class TestPerTLPOverhead:
    def test_default_overhead_composition(self, protocol):
        # framing 4 + seq 2 + header 16 + LCRC 4 + ECRC 4 + DLLP 2
        assert protocol.per_tlp_overhead == 32

    def test_without_ecrc(self):
        p = PCIeProtocol(PCIE_GEN4, ecrc=False)
        assert p.per_tlp_overhead == 28

    def test_without_amortized_dllp(self):
        p = PCIeProtocol(PCIE_GEN4, amortized_dllp=False)
        assert p.per_tlp_overhead == 30

    def test_paper_dll_crc_bytes(self):
        """Sec. VI-B: sequence number + ECRC + LCRC cost 10 bytes."""
        from repro.interconnect.pcie import ECRC_BYTES, LCRC_BYTES, SEQUENCE_BYTES

        assert SEQUENCE_BYTES + LCRC_BYTES + ECRC_BYTES == 10


class TestStoreCost:
    def test_dw_padding_counts_as_overhead(self, protocol):
        payload, overhead = protocol.store_wire_cost(5)
        assert payload == 5
        assert overhead == protocol.per_tlp_overhead + 3  # pad 5 -> 8

    def test_aligned_store_no_padding(self, protocol):
        payload, overhead = protocol.store_wire_cost(32)
        assert (payload, overhead) == (32, protocol.per_tlp_overhead)

    @pytest.mark.parametrize("size", [0, -4])
    def test_rejects_non_positive(self, protocol, size):
        with pytest.raises(ValueError):
            protocol.store_wire_cost(size)

    def test_rejects_oversized(self, protocol):
        with pytest.raises(ValueError):
            protocol.store_wire_cost(4097)

    def test_goodput_32B_roughly_half_of_128B(self, protocol):
        """Paper Fig. 2: 32 B transfers ~half as efficient as 128 B."""
        g32 = protocol.store_goodput(32)
        g128 = protocol.store_goodput(128)
        assert g32 == pytest.approx(0.5, abs=0.03)
        assert g32 / g128 == pytest.approx(0.625, abs=0.1)

    def test_goodput_monotonic_in_aligned_sizes(self, protocol):
        sizes = [4, 8, 16, 32, 64, 128, 256, 512, 1024, 4096]
        goodputs = [protocol.store_goodput(s) for s in sizes]
        assert goodputs == sorted(goodputs)

    def test_goodput_approaches_one(self, protocol):
        assert protocol.store_goodput(4096) > 0.99


class TestBulkCost:
    def test_zero_bytes(self, protocol):
        assert protocol.bulk_transfer_cost(0) == (0, 0)

    def test_negative_rejected(self, protocol):
        with pytest.raises(ValueError):
            protocol.bulk_transfer_cost(-1)

    def test_exact_multiple_of_max_payload(self, protocol):
        payload, overhead = protocol.bulk_transfer_cost(4096 * 3)
        assert payload == 4096 * 3
        assert overhead == 3 * protocol.per_tlp_overhead

    def test_remainder_tail_tlp(self, protocol):
        payload, overhead = protocol.bulk_transfer_cost(4096 + 10)
        assert payload == 4106
        # 10 B tail pads to 12 B.
        assert overhead == 2 * protocol.per_tlp_overhead + 2

    def test_bulk_goodput_beats_small_stores(self, protocol):
        bulk_p, bulk_o = protocol.bulk_transfer_cost(1 << 20)
        assert bulk_p / (bulk_p + bulk_o) > protocol.store_goodput(128)


class TestTiming:
    def test_transfer_time_scales_with_generation(self):
        g4 = PCIeProtocol(PCIE_GEN4)
        g6 = PCIeProtocol(PCIE_GEN6)
        assert g4.transfer_time_ns(4096) == pytest.approx(
            4 * g6.transfer_time_ns(4096)
        )

    def test_transfer_time_linear(self, protocol):
        assert protocol.transfer_time_ns(64) == pytest.approx(2.0)
