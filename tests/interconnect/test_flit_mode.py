"""PCIe 6.0 FLIT-mode cost model tests."""

import pytest

from repro.interconnect.pcie import PCIE_GEN4, PCIE_GEN6, PCIeProtocol


@pytest.fixture
def flit():
    return PCIeProtocol(PCIE_GEN6, flit_mode=True)


@pytest.fixture
def classic():
    return PCIeProtocol(PCIE_GEN6, flit_mode=False)


class TestFlitMode:
    def test_no_per_tlp_framing(self, flit, classic):
        """FLIT mode drops framing/sequence/LCRC from the TLP itself."""
        assert flit.per_tlp_overhead < classic.per_tlp_overhead
        assert flit.per_tlp_overhead == 16 + 4  # header + ECRC

    def test_small_store_helped(self, flit, classic):
        """The per-packet savings outweigh the flit tax for tiny TLPs."""
        assert flit.store_goodput(8) > classic.store_goodput(8)

    def test_flit_tax_on_bulk(self, flit, classic):
        """Bulk transfers pay the fixed ~8.5% flit CRC/FEC share, so
        classic encoding has the edge at large payloads."""
        fp, fo = flit.bulk_transfer_cost(1 << 20)
        cp, co = classic.bulk_transfer_cost(1 << 20)
        assert fo > co
        assert fp / (fp + fo) == pytest.approx(236 / 256, rel=0.01)

    def test_goodput_still_monotonic(self, flit):
        sizes = [4, 8, 16, 32, 64, 128, 512, 4096]
        goodputs = [flit.store_goodput(s) for s in sizes]
        assert goodputs == sorted(goodputs)

    def test_finepack_still_wins_under_flit_mode(self, flit):
        """FLIT mode narrows but does not remove the small-store
        penalty -- FinePack remains beneficial on Gen6 links."""
        from repro.core.config import FinePackConfig
        from repro.core.packet import FinePackPacket, SubTransaction

        packet = FinePackPacket(
            base_addr=0,
            subs=[SubTransaction(offset=i * 128, length=8) for i in range(42)],
            stores_absorbed=42,
        )
        fp_total = sum(packet.wire_cost(FinePackConfig(), flit))
        raw_total = 42 * sum(flit.store_wire_cost(8))
        assert raw_total / fp_total > 1.8

    def test_default_is_classic(self):
        assert not PCIeProtocol(PCIE_GEN4).flit_mode
