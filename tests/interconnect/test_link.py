"""Link serialization timing and statistics tests."""

import pytest

from repro.interconnect.flowcontrol import CreditPool
from repro.interconnect.link import Link
from repro.interconnect.message import MessageKind, WireMessage


def msg(payload=64, overhead=32, kind=MessageKind.STORE, packed=1):
    return WireMessage(
        src=0, dst=1, payload_bytes=payload, overhead_bytes=overhead,
        kind=kind, stores_packed=packed,
    )


@pytest.fixture
def link() -> Link:
    return Link(name="t", bytes_per_ns=32.0, propagation_ns=50.0)


class TestTransmit:
    def test_serialization_time(self, link):
        start, delivered = link.transmit(msg(), ready_time=0.0)
        assert start == 0.0
        assert delivered == pytest.approx(96 / 32 + 50)

    def test_back_to_back_queues(self, link):
        link.transmit(msg(), 0.0)
        start, _ = link.transmit(msg(), 0.0)
        assert start == pytest.approx(3.0)  # after first finishes

    def test_idle_gap_respected(self, link):
        link.transmit(msg(), 0.0)
        start, _ = link.transmit(msg(), 100.0)
        assert start == 100.0

    def test_zero_bandwidth_rejected(self):
        with pytest.raises(ValueError):
            Link(name="bad", bytes_per_ns=0.0)


class TestStats:
    def test_accumulation(self, link):
        link.transmit(msg(payload=100, overhead=28), 0.0)
        link.transmit(msg(payload=28, overhead=36, kind=MessageKind.FINEPACK, packed=10), 0.0)
        s = link.stats
        assert s.messages == 2
        assert s.payload_bytes == 128
        assert s.overhead_bytes == 64
        assert s.stores_packed == 11
        assert s.by_kind[MessageKind.FINEPACK] == 1
        assert s.wire_bytes == 192
        assert s.goodput == pytest.approx(128 / 192)

    def test_busy_time(self, link):
        link.transmit(msg(), 0.0)
        assert link.stats.busy_time_ns == pytest.approx(3.0)

    def test_reset(self, link):
        link.transmit(msg(), 0.0)
        link.reset()
        assert link.busy_until == 0.0
        assert link.stats.messages == 0


class TestCredits:
    def test_stalls_when_receiver_full(self):
        pool = CreditPool(
            header_credits=1, data_credit_bytes=128, drain_bytes_per_ns=1.0
        )
        link = Link(name="c", bytes_per_ns=1000.0, propagation_ns=0.0, credits=pool)
        _, d1 = link.transmit(msg(payload=128, overhead=0), 0.0)
        # Second message must wait for the first to drain (128 ns).
        start2, _ = link.transmit(msg(payload=128, overhead=0), 0.0)
        assert start2 >= d1 + 128 - 1e-9

    def test_no_stall_with_room(self):
        pool = CreditPool(
            header_credits=8, data_credit_bytes=4096, drain_bytes_per_ns=1000.0
        )
        link = Link(name="c", bytes_per_ns=1000.0, propagation_ns=0.0, credits=pool)
        link.transmit(msg(), 0.0)
        start, _ = link.transmit(msg(), 0.0)
        assert start < 1.0


class TestErrorRate:
    def test_clean_link_never_replays(self, link):
        link.transmit(msg(payload=1 << 20, overhead=0), 0.0)
        assert link.stats.replays == 0

    def test_replays_counted_and_deterministic(self):
        def one_run():
            l = Link(name="noisy", bytes_per_ns=32.0, error_rate=1e-4)
            for i in range(50):
                l.transmit(msg(payload=4096, overhead=0), float(i))
            return l.stats.replays, l.stats.replay_bytes

        first, again = one_run(), one_run()
        assert first == again
        assert first[0] > 0
        assert first[1] >= first[0] * 4096

    def test_extreme_rate_saturates_replay_cap(self):
        from repro.interconnect.link import MAX_REPLAYS

        l = Link(name="broken", bytes_per_ns=32.0, error_rate=0.9)
        link_msg = msg(payload=4096, overhead=0)
        l.transmit(link_msg, 0.0)
        assert l.stats.replays == MAX_REPLAYS
        assert l.stats.replay_saturations == 1
        # The replay accounting survives in the fault summary.
        assert l.stats.fault_summary()["replay_saturations"] == 1

    def test_invalid_rate_rejected(self):
        with pytest.raises(ValueError):
            Link(name="bad", bytes_per_ns=1.0, error_rate=1.5)

    def test_oversized_payload_streams_through_credited_link(self):
        pool = CreditPool(
            header_credits=4, data_credit_bytes=256, drain_bytes_per_ns=1.0
        )
        link = Link(name="c", bytes_per_ns=1000.0, propagation_ns=0.0, credits=pool)
        # Larger than the whole pool: admitted by streaming, not rejected.
        _, delivery = link.transmit(msg(payload=1024, overhead=0), 0.0)
        assert delivery > 0.0
