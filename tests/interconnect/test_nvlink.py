"""NVLink flit model tests (Figure 2's second protocol)."""

import pytest

from repro.interconnect.nvlink import FLIT_BYTES, SECTOR_BYTES, NVLinkProtocol


@pytest.fixture
def nvlink() -> NVLinkProtocol:
    return NVLinkProtocol()


class TestStoreCost:
    def test_aligned_sector_write_needs_no_be_flit(self, nvlink):
        payload, overhead = nvlink.store_wire_cost(32, addr=0)
        assert payload == 32
        assert overhead == FLIT_BYTES  # header only

    def test_sub_sector_write_needs_be_flit(self, nvlink):
        payload, overhead = nvlink.store_wire_cost(24, addr=0)
        assert payload == 24
        # header + BE flit + 8 B padding to the 2nd data flit.
        assert overhead == FLIT_BYTES * 2 + 8

    def test_misaligned_full_sector_needs_be_flit(self, nvlink):
        assert nvlink.needs_byte_enable_flit(32, addr=8)
        assert not nvlink.needs_byte_enable_flit(32, addr=32)

    def test_goodput_spikes_non_monotonic(self, nvlink):
        """The Fig. 2 caption's byte-enable-flit 'spikes': a 32 B
        aligned store beats some larger unaligned sizes."""
        g32 = nvlink.store_goodput(32, addr=0)
        g40 = nvlink.store_goodput(40, addr=0)
        assert g32 > g40

    def test_full_packet_goodput(self, nvlink):
        assert nvlink.store_goodput(256, addr=0) == pytest.approx(256 / 272)

    @pytest.mark.parametrize("size", [0, -8])
    def test_rejects_non_positive(self, nvlink, size):
        with pytest.raises(ValueError):
            nvlink.store_wire_cost(size)

    def test_rejects_oversized(self, nvlink):
        with pytest.raises(ValueError):
            nvlink.store_wire_cost(257)


class TestBulk:
    def test_zero(self, nvlink):
        assert nvlink.bulk_transfer_cost(0) == (0, 0)

    def test_negative(self, nvlink):
        with pytest.raises(ValueError):
            nvlink.bulk_transfer_cost(-1)

    def test_full_packets_one_header_each(self, nvlink):
        payload, overhead = nvlink.bulk_transfer_cost(512)
        assert (payload, overhead) == (512, 2 * FLIT_BYTES)

    def test_sector_constant(self):
        assert SECTOR_BYTES == 32
