"""Determinism: identical fault runs byte-for-byte, in- and cross-process."""

import json
import os
import subprocess
import sys
import textwrap

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.faults import DegradedRunError, FaultInjector, FaultSchedule
from repro.faults.scenarios import load_scenario
from repro.sim.runner import ExperimentConfig, _paradigm_instance
from repro.sim.system import MultiGPUSystem
from repro.workloads import JacobiWorkload

SCENARIO = {
    "name": "det",
    "faults": [
        {"type": "link_flap", "link": "gpu0->sw0",
         "start_ns": 50_000.0, "end_ns": 90_000.0},
        {"type": "crc_burst", "link": "*",
         "start_ns": 0.0, "end_ns": 1e9, "error_rate": 5e-5},
    ],
}


def _fingerprint(n_gpus=2, iterations=2, scenario=SCENARIO, runs=1):
    """Summary + raw per-link stats after the last of ``runs`` runs."""
    config = ExperimentConfig(n_gpus=n_gpus, iterations=iterations)
    system = MultiGPUSystem.build(
        n_gpus=n_gpus,
        topology_kind="single_switch",
        fault_injector=FaultInjector(FaultSchedule.from_dict(scenario)),
    )
    trace = JacobiWorkload().generate_trace(
        n_gpus=n_gpus, iterations=iterations, seed=11
    )
    paradigm = _paradigm_instance("finepack", config)
    for _ in range(runs):
        metrics = system.run(trace, paradigm)
    raw = {
        f"{a}->{b}": repr(stats)
        for (a, b), stats in system.topology.all_stats().items()
    }
    return {"summary": metrics.summary(), "links": raw}


class TestInProcess:
    def test_rerun_after_reset_is_byte_identical(self):
        assert _fingerprint(runs=1) == _fingerprint(runs=3)

    def test_fresh_system_is_byte_identical(self):
        assert _fingerprint() == _fingerprint()

    def test_shipped_scenarios_are_reproducible(self):
        for name in ("flaky-retimer", "lane-retraining"):
            sched = load_scenario(name)
            first = _fingerprint(scenario=sched.to_dict())
            again = _fingerprint(scenario=sched.to_dict())
            assert first == again, name


class TestCrossProcess:
    def test_link_stats_identical_across_processes(self, tmp_path):
        script = textwrap.dedent(
            """
            import json, sys
            sys.path.insert(0, {src!r})
            from tests.faults.test_determinism import _fingerprint
            print(json.dumps(_fingerprint(), sort_keys=True))
            """
        ).format(src=os.path.join(os.path.dirname(__file__), "..", ".."))
        env = dict(os.environ)
        repo = os.path.abspath(os.path.join(os.path.dirname(__file__), "..", ".."))
        env["PYTHONPATH"] = os.pathsep.join(
            [os.path.join(repo, "src"), repo, env.get("PYTHONPATH", "")]
        )
        outputs = [
            subprocess.run(
                [sys.executable, "-c", script],
                capture_output=True, text=True, check=True, env=env, cwd=repo,
            ).stdout
            for _ in range(2)
        ]
        assert outputs[0] == outputs[1]
        assert json.loads(outputs[0]) == json.loads(
            json.dumps(_fingerprint(), sort_keys=True)
        )


_LINKS = st.sampled_from(["*", "gpu0->*", "*->gpu1", "gpu0->sw0", "sw0->gpu1"])
_START = st.floats(min_value=0.0, max_value=200_000.0, allow_nan=False)
_DURATION = st.floats(min_value=1.0, max_value=100_000.0, allow_nan=False)


@st.composite
def _fault(draw):
    kind = draw(st.sampled_from(
        ["link_degrade", "link_flap", "link_fail", "crc_burst",
         "drain_slowdown", "credit_leak"]
    ))
    start = draw(_START)
    f = {"type": kind, "link": draw(_LINKS), "start_ns": start}
    if kind != "link_fail":
        f["end_ns"] = start + draw(_DURATION)
    if kind == "link_degrade":
        f["factor"] = draw(st.floats(min_value=0.05, max_value=1.0))
    elif kind == "crc_burst":
        f["error_rate"] = draw(st.floats(min_value=0.0, max_value=1e-4))
    elif kind == "drain_slowdown":
        f["factor"] = draw(st.floats(min_value=0.05, max_value=1.0))
    elif kind == "credit_leak":
        f["leak_bytes"] = draw(st.integers(min_value=0, max_value=4096))
    return f


class TestScheduleProperty:
    @settings(max_examples=25, deadline=None)
    @given(faults=st.lists(_fault(), max_size=4))
    def test_any_valid_schedule_terminates(self, faults):
        """Every parseable schedule either completes or degrades cleanly."""
        schedule = FaultSchedule.from_dict({"name": "prop", "faults": faults})
        config = ExperimentConfig(n_gpus=2, iterations=1)
        system = MultiGPUSystem.build(
            n_gpus=2,
            topology_kind="single_switch",
            with_credits=True,
            fault_injector=FaultInjector(schedule),
        )
        trace = JacobiWorkload().generate_trace(n_gpus=2, iterations=1, seed=3)
        try:
            metrics = system.run(trace, _paradigm_instance("finepack", config))
        except DegradedRunError as err:
            metrics = err.metrics
            assert metrics.degraded
            assert metrics.faults.dropped_messages > 0
        assert metrics.total_time_ns > 0
