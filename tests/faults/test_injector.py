"""FaultInjector: compiling schedules onto live topologies."""

import pytest

from repro.faults import FOREVER, FaultInjector, FaultSchedule
from repro.interconnect.topology import single_switch
from repro.obs import Tracer
from repro.obs.events import EventKind


@pytest.fixture
def schedule() -> FaultSchedule:
    return FaultSchedule.from_dict(
        {
            "name": "mix",
            "faults": [
                {"type": "link_degrade", "link": "gpu0->*",
                 "start_ns": 10.0, "end_ns": 20.0, "factor": 0.5},
                {"type": "link_fail", "link": "gpu1->sw0", "start_ns": 30.0},
                {"type": "crc_burst", "link": "gpu0->*",
                 "start_ns": 0.0, "end_ns": 50.0, "error_rate": 1e-5},
                {"type": "drain_slowdown", "link": "sw0->gpu1",
                 "start_ns": 0.0, "end_ns": 100.0, "factor": 0.25},
            ],
        }
    )


class TestCompile:
    def test_link_state_collects_matching_windows(self, schedule):
        inj = FaultInjector(schedule, retry_timeout_ns=7.0, max_retries=3)
        fs = inj.compile_link_state("gpu0->sw0")
        assert [w.value for w in fs.degrade] == [0.5]
        assert [w.value for w in fs.crc] == [1e-5]
        assert fs.down == ()
        assert (fs.retry_timeout_ns, fs.max_retries) == (7.0, 3)

    def test_link_fail_becomes_permanent_window(self, schedule):
        fs = FaultInjector(schedule).compile_link_state("gpu1->sw0")
        assert [w.end_ns for w in fs.down] == [FOREVER]

    def test_clean_link_compiles_to_none(self, schedule):
        inj = FaultInjector(schedule)
        assert inj.compile_link_state("gpu3->sw0") is None
        assert inj.compile_pool_state("gpu3->sw0") is None

    def test_pool_state(self, schedule):
        ps = FaultInjector(schedule).compile_pool_state("sw0->gpu1")
        assert [w.value for w in ps.drain] == [0.25]


class TestArm:
    def test_arm_attaches_state_and_rebuilds_cache(self, schedule):
        top = single_switch(n_gpus=4, with_credits=True)
        inj = FaultInjector(schedule)
        inj.arm(top)
        assert top.links[("gpu0", "sw0")].fault_state is not None
        assert top.links[("gpu3", "sw0")].fault_state is None
        assert top.links[("sw0", "gpu1")].credits.fault_state is not None
        assert sorted(inj.armed_links) == ["gpu0->sw0", "gpu1->sw0", "sw0->gpu1"]
        # The fail cache knows about the one link with a down window.
        assert [e for e, _ in top._fail_links] == [("gpu1", "sw0")]
        assert top.dead_edges_at(40.0) == frozenset({("gpu1", "sw0")})
        assert top.dead_edges_at(20.0) == frozenset()

    def test_arm_survives_topology_reset(self, schedule):
        top = single_switch(n_gpus=4)
        inj = FaultInjector(schedule)
        inj.arm(top)
        top.reset()
        assert top.links[("gpu0", "sw0")].fault_state is not None
        assert top.dead_edges_at(40.0) == frozenset({("gpu1", "sw0")})

    def test_disarm_cleans_everything(self, schedule):
        top = single_switch(n_gpus=4, with_credits=True)
        inj = FaultInjector(schedule)
        inj.arm(top)
        inj.disarm(top)
        assert all(l.fault_state is None for l in top.links.values())
        assert top._fail_links == ()
        assert inj.armed_links == []

    def test_arm_declares_faults_on_tracer(self, schedule):
        top = single_switch(n_gpus=4)
        tracer = Tracer()
        FaultInjector(schedule).arm(top, tracer=tracer)
        declared = [
            e for e in tracer.events if e.kind is EventKind.FAULT_INJECTED
        ]
        assert len(declared) == len(schedule)
        by_kind = {e.attrs["fault"] for e in declared}
        assert by_kind == {"link_degrade", "link_fail", "crc_burst", "drain_slowdown"}
        fail = next(e for e in declared if e.attrs["fault"] == "link_fail")
        # Permanent faults must not leak JSON-hostile infinities.
        assert "end_ns" not in fail.attrs
        assert fail.attrs["links"] == ["gpu1->sw0"]
