"""End-to-end resilience: retransmits, rerouting, graceful degradation."""

import pytest

from repro.faults import (
    DegradedRunError,
    FaultInjector,
    FaultSchedule,
    LinkDownError,
)
from repro.interconnect.link import MAX_REPLAYS, Link
from repro.interconnect.message import MessageKind, WireMessage
from repro.interconnect.flowcontrol import CreditPool
from repro.obs import Tracer
from repro.obs.events import EventKind
from repro.obs.invariants import InvariantChecker, InvariantViolation
from repro.sim.runner import ExperimentConfig, _paradigm_instance
from repro.sim.system import MultiGPUSystem
from repro.workloads import JacobiWorkload


def _msg(payload=256) -> WireMessage:
    return WireMessage(
        src=0, dst=1, kind=MessageKind.STORE,
        payload_bytes=payload, overhead_bytes=24,
    )


def _schedule(*faults, **kw) -> FaultSchedule:
    return FaultSchedule.from_dict({"name": "t", "faults": list(faults), **kw})


def _run(schedule, paradigm="finepack", topology_kind="single_switch",
         n_gpus=2, iterations=2, with_credits=False, tracer=None):
    config = ExperimentConfig(n_gpus=n_gpus, iterations=iterations)
    system = MultiGPUSystem.build(
        n_gpus=n_gpus,
        topology_kind=topology_kind,
        with_credits=with_credits,
        fault_injector=FaultInjector(schedule) if len(schedule) else None,
    )
    trace = JacobiWorkload().generate_trace(
        n_gpus=n_gpus, iterations=iterations, seed=7
    )
    return system.run(trace, _paradigm_instance(paradigm, config), tracer=tracer)


@pytest.fixture(scope="module")
def healthy_total() -> float:
    """Fault-free run time, for placing fault windows mid-run."""
    return _run(_schedule()).total_time_ns


class TestLinkFaults:
    def test_degrade_stretches_serialization(self):
        link = Link(name="l", bytes_per_ns=10.0)
        fs = FaultInjector(
            _schedule({"type": "link_degrade", "link": "l",
                       "start_ns": 0.0, "end_ns": 1e9, "factor": 0.5})
        ).compile_link_state("l")
        link.arm_faults(fs)
        start, delivery = link.transmit(_msg(), 0.0)
        # 280 wire bytes at 5 B/ns instead of 10 B/ns.
        assert delivery - start - link.propagation_ns == pytest.approx(56.0)

    def test_flap_retransmits_and_completes(self, healthy_total):
        tracer = Tracer()
        m = _run(_schedule(
            {"type": "link_flap", "link": "gpu0->sw0",
             "start_ns": healthy_total / 3, "end_ns": healthy_total * 2 / 3},
        ), tracer=tracer)
        assert m.faults.retransmits > 0
        assert m.faults.fault_stall_ns > 0
        assert not m.degraded
        assert m.total_time_ns > healthy_total
        # The outage window is announced as a link_state down event.
        assert EventKind.LINK_STATE in {e.kind for e in tracer.events}

    def test_crc_burst_replays(self):
        m = _run(_schedule(
            {"type": "crc_burst", "link": "gpu0->*",
             "start_ns": 0.0, "end_ns": 1e9, "error_rate": 1e-4},
        ))
        assert m.faults.replays > 0
        assert m.faults.replay_bytes > 0
        assert "replays" in m.summary()

    def test_replay_saturation_counted_and_warned(self):
        link = Link(name="l", bytes_per_ns=10.0, error_rate=0.5)
        link.transmit(_msg(4096), 0.0)
        assert link.stats.replay_saturations == 1
        assert link.stats.replays == MAX_REPLAYS

        from repro.analysis import format_link_stats_table
        from repro.sim.metrics import RunMetrics

        metrics = RunMetrics(workload="w", paradigm="p", n_gpus=2)
        metrics.link_stats["l"] = {
            "messages": 1, "wire_bytes": 4120, "busy_time_ns": 1.0,
            "utilization": 0.5, **link.stats.fault_summary(),
        }
        table = format_link_stats_table(metrics)
        assert "WARNING" in table and "lower bound" in table

    def test_oversized_transfer_streams_through_credits(self):
        pool = CreditPool(header_credits=4, data_credit_bytes=1024)
        link = Link(name="l", bytes_per_ns=10.0, credits=pool)
        # Twice the pool: admitted (streams), occupies it for the full
        # drain so a follow-up message stalls behind it.
        _, first_delivery = link.transmit(_msg(2048), 0.0)
        start2, _ = link.transmit(_msg(1024), first_delivery)
        assert start2 > first_delivery


class TestRerouting:
    def test_fail_with_alternate_path_reroutes(self, healthy_total):
        m = _run(
            _schedule(
                {"type": "link_fail", "link": "gpu0->gpu1",
                 "start_ns": healthy_total / 3},
            ),
            topology_kind="fully_connected",
            n_gpus=4,
        )
        assert m.faults.rerouted_messages > 0
        assert m.faults.dropped_messages == 0
        assert not m.degraded

    def test_mid_run_fail_on_reroutable_path_is_deterministic(self, healthy_total):
        sched = _schedule(
            {"type": "link_fail", "link": "gpu0->gpu1",
             "start_ns": healthy_total / 3},
        )
        runs = [
            _run(sched, topology_kind="fully_connected", n_gpus=4).summary()
            for _ in range(2)
        ]
        assert runs[0] == runs[1]


class TestGracefulDegradation:
    def test_partition_raises_with_partial_metrics(self, healthy_total):
        with pytest.raises(DegradedRunError) as exc_info:
            _run(_schedule(
                {"type": "link_fail", "link": "gpu0->sw0",
                 "start_ns": healthy_total / 3},
            ))
        err = exc_info.value
        assert err.metrics is not None
        assert err.metrics.degraded
        assert err.metrics.faults.dropped_messages > 0
        assert err.metrics.faults.dropped_bytes > 0
        assert 0 < err.metrics.total_time_ns < healthy_total
        assert err.metrics.link_stats  # partial per-link stats survive
        assert err.reasons and "no live path" in err.reasons[0]

    def test_degraded_summary_flags(self, healthy_total):
        with pytest.raises(DegradedRunError) as exc_info:
            _run(_schedule(
                {"type": "link_fail", "link": "gpu0->sw0",
                 "start_ns": healthy_total / 3},
            ))
        summary = exc_info.value.metrics.summary()
        assert summary["degraded"] is True
        assert summary["dropped"] > 0

    def test_traced_degraded_run_passes_invariants(self, healthy_total):
        tracer = Tracer()  # check_invariants=True: raises on violation
        with pytest.raises(DegradedRunError):
            _run(
                _schedule(
                    {"type": "link_fail", "link": "gpu0->sw0",
                     "start_ns": healthy_total / 3},
                ),
                tracer=tracer,
            )
        kinds = {e.kind for e in tracer.events}
        assert EventKind.FAULT_INJECTED in kinds
        assert EventKind.MSG_DROPPED in kinds
        # The stream also replays clean offline.
        InvariantChecker.replay(tracer.events)

    def test_drop_without_declared_fault_is_violation(self):
        tracer = Tracer(check_invariants=False)
        mid = tracer.message_injected(_msg(), 0.0)
        tracer.message_dropped(mid, _msg(), 5.0)
        with pytest.raises(InvariantViolation, match="no declared faults"):
            InvariantChecker.replay(tracer.events)


class TestReceiverFaults:
    def test_drain_slowdown_backpressures_follow_up(self):
        def next_start(fault_state):
            pool = CreditPool(header_credits=4, data_credit_bytes=8192)
            pool.fault_state = fault_state
            pool.commit(0.0, 8192)  # buffer is now full until it drains
            return pool.earliest_start(0.0, 8192)

        inj = FaultInjector(_schedule(
            {"type": "drain_slowdown", "link": "l",
             "start_ns": 0.0, "end_ns": 1e6, "factor": 0.05},
        ))
        fast = next_start(None)
        slow = next_start(inj.compile_pool_state("l"))
        assert slow == pytest.approx(fast / 0.05)

    def test_credit_leak_defers_then_releases(self):
        pool = CreditPool(header_credits=4, data_credit_bytes=1024)
        inj = FaultInjector(_schedule(
            {"type": "credit_leak", "link": "l",
             "start_ns": 0.0, "end_ns": 500.0, "leak_bytes": 1024},
        ))
        pool.fault_state = inj.compile_pool_state("l")
        # The whole buffer is leaked until t=500: a transfer cannot
        # start before the leak closes.
        assert pool.earliest_start(0.0, 512) == pytest.approx(500.0)
        assert pool.earliest_start(600.0, 512) == pytest.approx(600.0)


class TestLinkDownEscalation:
    def test_transmit_raises_when_permanently_down(self):
        link = Link(name="gpu0->sw0", bytes_per_ns=32.0)
        link.arm_faults(
            FaultInjector(
                _schedule({"type": "link_fail", "link": "gpu0->sw0",
                           "start_ns": 100.0})
            ).compile_link_state("gpu0->sw0")
        )
        link.transmit(_msg(), 0.0)  # before the failure: fine
        with pytest.raises(LinkDownError):
            link.transmit(_msg(), 200.0)
