"""Chaos sweeps: the library API and the ``repro chaos`` CLI."""

import io
import json

import pytest

from repro.faults import FaultSchedule, chaos_sweep, format_chaos_table
from repro.faults.scenarios import SCENARIOS, list_scenarios, load_scenario
from repro.sim.runner import ExperimentConfig
from repro.workloads import JacobiWorkload
from tests.test_cli import run_cli


@pytest.fixture(scope="module")
def sweep():
    schedule = load_scenario("flaky-retimer")
    config = ExperimentConfig(n_gpus=2, iterations=1)
    return chaos_sweep(
        JacobiWorkload(),
        schedule,
        intensities=(0.0, 1.0),
        paradigms=("p2p", "finepack"),
        config=config,
    )


class TestScenarios:
    def test_all_presets_parse(self):
        for name in list_scenarios():
            sched = load_scenario(name)
            assert sched.name == name
            assert len(sched) > 0

    def test_load_by_path(self, tmp_path):
        path = tmp_path / "custom.json"
        path.write_text(load_scenario("lane-retraining").to_json())
        assert load_scenario(str(path)) == load_scenario("lane-retraining")

    def test_unknown_scenario(self):
        with pytest.raises(Exception, match="nope"):
            load_scenario("nope")


class TestChaosSweep:
    def test_grid_of_points(self, sweep):
        assert len(sweep.points) == 4
        assert {(p.intensity, p.paradigm) for p in sweep.points} == {
            (0.0, "p2p"), (0.0, "finepack"), (1.0, "p2p"), (1.0, "finepack"),
        }

    def test_zero_intensity_is_clean_baseline(self, sweep):
        for paradigm in ("p2p", "finepack"):
            base = sweep.baseline(paradigm)
            assert base is not None
            assert not base.degraded
            assert not base.metrics.faults.any
            assert sweep.slowdown(base) == pytest.approx(1.0)

    def test_full_intensity_shows_fault_activity(self, sweep):
        # At this tiny config the stalls hide behind compute, so assert
        # the fault accounting rather than a wall-clock slowdown.
        for p in sweep.points:
            if p.intensity == 1.0:
                assert p.metrics.faults.retransmits > 0
                assert p.metrics.faults.fault_stall_ns > 0
                assert sweep.slowdown(p) >= 1.0

    def test_as_dict_and_json(self, sweep):
        obj = sweep.as_dict()
        assert obj["scenario"] == "flaky-retimer"
        assert obj["workload"] == "jacobi"
        assert all("slowdown" in p for p in obj["points"])
        buf = io.StringIO()
        sweep.write_json(buf)
        assert json.loads(buf.getvalue()) == json.loads(json.dumps(obj))

    def test_table(self, sweep):
        table = format_chaos_table(sweep)
        for col in ("intensity", "status", "slowdown", "rtx"):
            assert col in table
        assert "flaky-retimer" in table

    def test_degraded_points_are_rows_not_crashes(self):
        result = chaos_sweep(
            JacobiWorkload(),
            load_scenario("partition"),
            intensities=(0.0, 1.0),
            paradigms=("finepack",),
            config=ExperimentConfig(n_gpus=2, iterations=1),
        )
        broken = [p for p in result.points if p.degraded]
        assert len(broken) == 1
        assert broken[0].intensity == 1.0
        assert broken[0].reasons and "no live path" in broken[0].reasons[0]
        assert "DEGRADED" in format_chaos_table(result)


class TestChaosCli:
    def test_list_scenarios(self):
        text = run_cli("chaos", "--list")
        for name in SCENARIOS:
            assert name in text

    def test_workload_required_without_list(self):
        with pytest.raises(SystemExit, match="name a workload"):
            run_cli("chaos")

    def test_sweep_table(self):
        text = run_cli(
            "chaos", "jacobi", "--scenario", "flaky-retimer",
            "--gpus", "2", "--iterations", "1",
            "--intensities", "0", "1", "--paradigms", "p2p", "finepack",
        )
        assert "chaos: jacobi under 'flaky-retimer'" in text
        assert "1.00x" in text  # the fault-free baselines

    def test_partition_reports_degraded(self):
        text = run_cli(
            "chaos", "jacobi", "--scenario", "partition",
            "--gpus", "2", "--iterations", "1", "--intensities", "0", "1",
            "--paradigms", "finepack",
        )
        assert "DEGRADED" in text
        assert "no live path" in text

    def test_json_export(self, tmp_path):
        path = tmp_path / "chaos.json"
        run_cli(
            "chaos", "jacobi", "--scenario", "flaky-retimer",
            "--gpus", "2", "--iterations", "1", "--intensities", "0", "1",
            "--paradigms", "finepack", "--json", str(path),
        )
        obj = json.loads(path.read_text())
        assert obj["scenario"] == "flaky-retimer"
        assert len(obj["points"]) == 2

    def test_traced_sweep_writes_valid_chrome_trace(self, tmp_path):
        from repro.obs.export import validate_chrome_trace_file

        path = tmp_path / "chaos-trace.json"
        text = run_cli(
            "chaos", "jacobi", "--scenario", "flaky-retimer",
            "--gpus", "2", "--iterations", "1", "--intensities", "0", "1",
            "--paradigms", "finepack", "--trace-out", str(path),
        )
        assert "chaos points" in text
        validate_chrome_trace_file(str(path))
