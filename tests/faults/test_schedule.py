"""FaultSchedule parsing, validation and intensity scaling."""

import math

import pytest

from repro.faults import (
    FAULT_TYPES,
    CrcBurst,
    CreditLeak,
    DrainSlowdown,
    FaultSchedule,
    LinkDegrade,
    LinkFail,
    LinkFlap,
    ScenarioError,
)

FLAP = {"type": "link_flap", "link": "gpu0->sw0", "start_ns": 100.0, "end_ns": 200.0}


class TestParsing:
    def test_registry_covers_all_types(self):
        assert set(FAULT_TYPES) == {
            "link_degrade", "link_flap", "link_fail", "crc_burst",
            "drain_slowdown", "credit_leak",
        }

    def test_from_dict_builds_typed_events(self):
        sched = FaultSchedule.from_dict({"name": "s", "faults": [FLAP]})
        assert len(sched) == 1
        (flap,) = sched
        assert isinstance(flap, LinkFlap)
        assert (flap.start_ns, flap.end_ns) == (100.0, 200.0)

    def test_json_round_trip(self):
        sched = FaultSchedule.from_dict(
            {
                "name": "rt",
                "description": "round trip",
                "topology": "single_switch",
                "with_credits": False,
                "faults": [
                    FLAP,
                    {"type": "crc_burst", "link": "*", "start_ns": 0.0,
                     "end_ns": 50.0, "error_rate": 1e-4},
                    {"type": "link_fail", "link": "gpu1->sw0", "start_ns": 10.0},
                ],
            }
        )
        again = FaultSchedule.from_json(sched.to_json())
        assert again == sched

    def test_infinite_end_survives_round_trip_without_json_infinity(self):
        sched = FaultSchedule(
            faults=(LinkFail(link="gpu0->sw0", start_ns=5.0),)
        )
        text = sched.to_json()
        assert "Infinity" not in text
        assert FaultSchedule.from_json(text).faults[0].end_ns == math.inf

    def test_faults_sorted_deterministically(self):
        a = LinkFlap(link="b", start_ns=50.0, end_ns=60.0)
        b = LinkFlap(link="a", start_ns=50.0, end_ns=60.0)
        c = LinkDegrade(link="z", start_ns=10.0, end_ns=20.0)
        assert FaultSchedule(faults=(a, b, c)).faults == (c, b, a)

    def test_unknown_type_rejected(self):
        with pytest.raises(ScenarioError, match="unknown fault type"):
            FaultSchedule.from_dict(
                {"faults": [{"type": "gremlins", "link": "*", "start_ns": 0.0}]}
            )

    def test_unknown_scenario_key_rejected(self):
        with pytest.raises(ScenarioError, match="unknown scenario keys"):
            FaultSchedule.from_dict({"faults": [], "oops": 1})

    def test_unknown_fault_field_rejected(self):
        with pytest.raises(ScenarioError, match="link_flap"):
            FaultSchedule.from_dict({"faults": [{**FLAP, "oops": 1}]})

    def test_invalid_json_rejected(self):
        with pytest.raises(ScenarioError, match="invalid scenario JSON"):
            FaultSchedule.from_json("{not json")


class TestValidation:
    def test_negative_start_rejected(self):
        with pytest.raises(ScenarioError):
            LinkFail(link="*", start_ns=-1.0)

    def test_empty_link_pattern_rejected(self):
        with pytest.raises(ScenarioError):
            LinkFail(link="", start_ns=0.0)

    def test_empty_window_rejected(self):
        with pytest.raises(ScenarioError):
            LinkFlap(link="*", start_ns=10.0, end_ns=10.0)

    def test_flap_needs_finite_end(self):
        with pytest.raises(ScenarioError, match="finite end_ns"):
            LinkFlap(link="*", start_ns=0.0)

    def test_degrade_factor_bounds(self):
        with pytest.raises(ScenarioError):
            LinkDegrade(link="*", start_ns=0.0, end_ns=1.0, factor=0.0)
        with pytest.raises(ScenarioError):
            LinkDegrade(link="*", start_ns=0.0, end_ns=1.0, factor=1.5)

    def test_crc_rate_bounds(self):
        with pytest.raises(ScenarioError):
            CrcBurst(link="*", start_ns=0.0, end_ns=1.0, error_rate=1.0)

    def test_drain_and_leak_need_finite_windows(self):
        with pytest.raises(ScenarioError):
            DrainSlowdown(link="*", start_ns=0.0)
        with pytest.raises(ScenarioError):
            CreditLeak(link="*", start_ns=0.0)


class TestMatching:
    def test_fnmatch_patterns(self):
        flap = LinkFlap(link="gpu0->*", start_ns=0.0, end_ns=1.0)
        assert flap.matches("gpu0->sw0")
        assert not flap.matches("sw0->gpu0")
        sched = FaultSchedule(faults=(flap,))
        assert sched.for_link("gpu0->sw0") == [flap]
        assert sched.for_link("gpu1->sw0") == []


class TestScaling:
    def test_zero_intensity_is_fault_free(self):
        sched = FaultSchedule.from_dict({"faults": [FLAP]})
        assert len(sched.scaled(0.0)) == 0

    def test_full_intensity_is_identity(self):
        sched = FaultSchedule.from_dict({"faults": [FLAP]})
        assert sched.scaled(1.0) == sched

    def test_degrade_interpolates_toward_one(self):
        d = LinkDegrade(link="*", start_ns=0.0, end_ns=1.0, factor=0.5)
        assert d.scaled(0.5).factor == pytest.approx(0.75)

    def test_flap_duration_scales(self):
        f = LinkFlap(link="*", start_ns=100.0, end_ns=300.0)
        assert f.scaled(0.25).end_ns == pytest.approx(150.0)

    def test_link_fail_only_at_full_intensity(self):
        f = LinkFail(link="*", start_ns=0.0)
        assert f.scaled(0.99) is None
        assert f.scaled(1.0) is f

    def test_crc_and_leak_scale_linearly(self):
        c = CrcBurst(link="*", start_ns=0.0, end_ns=1.0, error_rate=4e-5)
        assert c.scaled(0.5).error_rate == pytest.approx(2e-5)
        leak = CreditLeak(link="*", start_ns=0.0, end_ns=1.0, leak_bytes=1000)
        assert leak.scaled(0.5).leak_bytes == 500

    def test_negative_intensity_rejected(self):
        with pytest.raises(ScenarioError):
            FaultSchedule().scaled(-0.1)
