"""Runtime fault-state mechanics: windows, admit/backoff, pool faults."""

import pytest

from repro.faults import (
    FOREVER,
    LinkDownError,
    LinkFaultState,
    PoolFaultState,
    Window,
)
from repro.interconnect.link import Link


@pytest.fixture
def link() -> Link:
    return Link(name="gpu0->sw0", bytes_per_ns=32.0)


class TestWindow:
    def test_contains_is_half_open(self):
        w = Window(10.0, 20.0)
        assert w.contains(10.0)
        assert w.contains(19.999)
        assert not w.contains(20.0)
        assert not w.contains(9.999)

    def test_invalid_windows_rejected(self):
        with pytest.raises(ValueError):
            Window(-1.0, 5.0)
        with pytest.raises(ValueError):
            Window(5.0, 5.0)


class TestLinkFaultState:
    def test_degrade_compounds_multiplicatively(self):
        fs = LinkFaultState(
            degrade=(Window(0.0, 100.0, 0.5), Window(50.0, 80.0, 0.5))
        )
        assert fs.bandwidth_factor(10.0) == pytest.approx(0.5)
        assert fs.bandwidth_factor(60.0) == pytest.approx(0.25)
        assert fs.bandwidth_factor(90.0) == pytest.approx(0.5)
        assert fs.bandwidth_factor(100.0) == pytest.approx(1.0)

    def test_crc_windows_add(self):
        fs = LinkFaultState(
            crc=(Window(0.0, 100.0, 1e-5), Window(40.0, 60.0, 2e-5))
        )
        assert fs.error_rate_extra(50.0) == pytest.approx(3e-5)
        assert fs.error_rate_extra(70.0) == pytest.approx(1e-5)
        assert fs.has_crc()

    def test_validation(self):
        with pytest.raises(ValueError):
            LinkFaultState(degrade=(Window(0.0, 1.0, 0.0),))
        with pytest.raises(ValueError):
            LinkFaultState(crc=(Window(0.0, 1.0, 1.0),))
        with pytest.raises(ValueError):
            LinkFaultState(retry_timeout_ns=0.0)

    def test_admit_outside_window_is_free(self, link):
        fs = LinkFaultState(down=(Window(100.0, 200.0),))
        assert fs.admit(50.0, link) == 50.0
        assert link.stats.retransmits == 0

    def test_admit_backoff_escapes_finite_window(self, link):
        # Attempts at t + T, t + 3T, t + 7T, ... until one lands after
        # the window closes.
        fs = LinkFaultState(down=(Window(100.0, 500.0),), retry_timeout_ns=100.0)
        out = fs.admit(150.0, link)
        # 150 -> 250 -> 450 -> 850; 850 is past end (500).
        assert out == pytest.approx(850.0)
        assert link.stats.retransmits == 3
        assert link.stats.fault_stall_ns == pytest.approx(700.0)

    def test_admit_permanent_raises(self, link):
        fs = LinkFaultState(down=(Window(100.0, FOREVER),))
        with pytest.raises(LinkDownError) as exc_info:
            fs.admit(150.0, link)
        assert exc_info.value.permanent
        assert exc_info.value.link_name == "gpu0->sw0"

    def test_admit_retry_budget_exhausted(self, link):
        fs = LinkFaultState(
            down=(Window(0.0, 1e12),), retry_timeout_ns=1.0, max_retries=3
        )
        with pytest.raises(LinkDownError) as exc_info:
            fs.admit(0.0, link)
        assert not exc_info.value.permanent
        assert link.stats.retransmits == 3

    def test_cut_after_finds_window_opening_mid_span(self):
        fs = LinkFaultState(down=(Window(100.0, 200.0),))
        assert fs.cut_after(50.0, 150.0).start_ns == 100.0
        # Window opening exactly at the end does not cut the packet.
        assert fs.cut_after(50.0, 100.0) is None
        # A packet starting inside the window is admit()'s problem.
        assert fs.cut_after(150.0, 180.0) is None


class TestPoolFaultState:
    def test_drain_factor_compounds(self):
        ps = PoolFaultState(drain=(Window(0.0, 100.0, 0.5), Window(0.0, 50.0, 0.5)))
        assert ps.drain_factor(10.0) == pytest.approx(0.25)
        assert ps.drain_factor(75.0) == pytest.approx(0.5)
        assert ps.drain_factor(100.0) == pytest.approx(1.0)

    def test_leaked_bytes_sum(self):
        ps = PoolFaultState(leak=(Window(0.0, 100.0, 1024), Window(50.0, 80.0, 512)))
        assert ps.leaked_bytes(60.0) == 1536
        assert ps.leaked_bytes(90.0) == 1024
        assert ps.leaked_bytes(100.0) == 0

    def test_leak_relief(self):
        ps = PoolFaultState(leak=(Window(0.0, 100.0, 1024), Window(50.0, 80.0, 512)))
        assert ps.leak_relief_after(60.0) == 80.0

    def test_infinite_leak_rejected(self):
        with pytest.raises(ValueError):
            PoolFaultState(leak=(Window(0.0, FOREVER, 64),))
