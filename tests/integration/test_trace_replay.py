"""Trace save/load replay must be bit-identical in simulation results."""

import pytest

from repro.sim.paradigms import make_paradigm
from repro.sim.system import MultiGPUSystem
from repro.trace.tracefile import load_trace, save_trace
from repro.workloads import DiffusionWorkload, SSSPWorkload


@pytest.mark.parametrize(
    "workload", [DiffusionWorkload(n=24), SSSPWorkload(n=8_000)], ids=["diffusion", "sssp"]
)
@pytest.mark.parametrize("paradigm", ["p2p", "finepack", "dma"])
def test_replay_identical(tmp_path, workload, paradigm):
    trace = workload.generate_trace(n_gpus=4, iterations=2, seed=5)
    path = tmp_path / "trace.npz"
    save_trace(trace, path)
    loaded = load_trace(path)

    a = MultiGPUSystem.build(n_gpus=4).run(trace, make_paradigm(paradigm))
    b = MultiGPUSystem.build(n_gpus=4).run(loaded, make_paradigm(paradigm))

    assert a.total_time_ns == pytest.approx(b.total_time_ns)
    assert a.wire_bytes == b.wire_bytes
    assert a.bytes.as_dict() == b.bytes.as_dict()
    assert a.packets.messages == b.packets.messages
