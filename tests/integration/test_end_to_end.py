"""End-to-end integration: the paper's qualitative claims must hold on
the scaled-down suite."""

import pytest

from repro.sim.runner import ExperimentConfig, compare_paradigms, geomean
from repro.workloads import (
    CTWorkload,
    JacobiWorkload,
    PagerankWorkload,
    SSSPWorkload,
)

CFG = ExperimentConfig(iterations=2)


@pytest.fixture(scope="module")
def jacobi():
    return compare_paradigms(JacobiWorkload(n=512), config=CFG)


@pytest.fixture(scope="module")
def pagerank():
    # Evaluation scale: the scaled-down variants are launch-overhead
    # dominated and compress the paradigm gaps.
    return compare_paradigms(
        PagerankWorkload(), paradigms=("p2p", "dma", "finepack", "wc", "infinite"),
        config=CFG,
    )


@pytest.fixture(scope="module")
def sssp():
    return compare_paradigms(SSSPWorkload(n=16_000), config=CFG)


@pytest.fixture(scope="module")
def ct():
    return compare_paradigms(CTWorkload(), config=CFG)


class TestRegularApplications:
    def test_p2p_scales_well(self, jacobi):
        """Fig. 9: P2P stores achieve considerable speedups for the
        regular (full-cacheline-store) applications -- essentially the
        whole infinite-bandwidth opportunity."""
        assert jacobi.speedup("p2p") > 0.95 * jacobi.speedup("infinite")

    def test_finepack_matches_p2p(self, jacobi):
        assert jacobi.speedup("finepack") == pytest.approx(
            jacobi.speedup("p2p"), rel=0.05
        )

    def test_dma_below_store_paradigms(self, jacobi):
        assert jacobi.speedup("dma") < jacobi.speedup("p2p")


class TestIrregularApplications:
    def test_p2p_near_or_below_single_gpu(self, pagerank):
        """Fig. 9: raw P2P stores can be a net slowdown."""
        assert pagerank.speedup("p2p") < 1.2

    def test_finepack_recovers_scaling(self, pagerank):
        assert pagerank.speedup("finepack") > 1.5 * pagerank.speedup("p2p")

    def test_ordering_p2p_dma_finepack(self, sssp):
        sp = sssp.speedups()
        assert sp["p2p"] < sp["finepack"]
        assert sp["dma"] < sp["finepack"]

    def test_finepack_within_opportunity(self, pagerank):
        assert pagerank.speedup("finepack") <= pagerank.speedup("infinite") + 1e-9


class TestDataVolume:
    def test_finepack_moves_less_than_p2p(self, pagerank, sssp):
        for result in (pagerank, sssp):
            fp = result.runs["finepack"].wire_bytes
            assert result.runs["p2p"].wire_bytes > 1.5 * fp

    def test_finepack_beats_write_combining(self, pagerank):
        """Sec. VI-A: FinePack reduces wire data vs WC alone (~24%)."""
        fp = pagerank.runs["finepack"].wire_bytes
        wc = pagerank.runs["wc"].wire_bytes
        assert wc / fp > 1.1

    def test_p2p_overhead_share_is_large(self, sssp):
        b = sssp.runs["p2p"].bytes
        assert b.overhead > b.useful  # tiny stores: headers dominate


class TestCTOutlier:
    def test_low_coalescing(self, ct):
        """Fig. 11: CT packs far fewer stores per packet."""
        assert ct.runs["finepack"].packets.mean_stores_per_packet < 15

    def test_still_scales(self, ct):
        """Fig. 9: CT scales well anyway -- it is compute bound."""
        assert ct.speedup("finepack") > 2.5
        assert ct.speedup("dma") > 1.8

    def test_finepack_close_to_p2p(self, ct):
        """With no spatial locality FinePack cannot beat raw stores."""
        assert ct.speedup("finepack") == pytest.approx(ct.speedup("p2p"), rel=0.1)


class TestAggregate:
    def test_geomean_sanity(self, jacobi, pagerank, sssp, ct):
        results = [jacobi, pagerank, sssp, ct]
        fp = geomean([r.speedup("finepack") for r in results])
        inf = geomean([r.speedup("infinite") for r in results])
        assert 1.5 < fp <= inf
        # FinePack captures a large share of the opportunity (paper: 71%).
        assert fp / inf > 0.5
