"""Sensitivity studies must reproduce the paper's directional claims."""

import pytest

from repro.core.config import FinePackConfig
from repro.interconnect.pcie import PCIE_GEN4, PCIE_GEN6
from repro.sim.paradigms import FinePackParadigm, make_paradigm
from repro.sim.runner import ExperimentConfig, run_workload
from repro.sim.system import MultiGPUSystem
from repro.workloads import PagerankWorkload, SSSPWorkload


@pytest.fixture(scope="module")
def pagerank_trace():
    # Evaluation scale: the sweep's sweet spot only emerges when the
    # aggregation window actually limits packing.
    return PagerankWorkload().generate_trace(n_gpus=4, iterations=2, seed=7)


class TestSubheaderSweep:
    """Figure 12: performance peaks at 4-5 sub-header bytes."""

    @pytest.fixture(scope="class")
    def sweep(self, pagerank_trace):
        times = {}
        for b in (2, 3, 4, 5, 6):
            system = MultiGPUSystem.build(
                n_gpus=4, finepack_config=FinePackConfig(subheader_bytes=b)
            )
            paradigm = FinePackParadigm(FinePackConfig(subheader_bytes=b))
            times[b] = system.run(pagerank_trace, paradigm).total_time_ns
        return times

    def test_tiny_window_is_worst(self, sweep):
        """2-byte headers give a 64 B window: constant thrash."""
        assert sweep[2] == max(sweep.values())

    def test_sweet_spot_at_4_or_5(self, sweep):
        best = min(sweep, key=sweep.get)
        assert best in (4, 5)

    def test_4_and_5_nearly_equal(self, sweep):
        """Fig. 12: 'virtually no change at 5 bytes'."""
        assert abs(sweep[4] - sweep[5]) / sweep[5] < 0.10


class TestBandwidthSweep:
    """Figure 13: more bandwidth helps, but baselines never catch
    FinePack at any step."""

    def test_gen6_faster_than_gen4_for_comm_bound(self):
        w = SSSPWorkload(n=16_000)
        t4 = run_workload(w, "p2p", ExperimentConfig(generation=PCIE_GEN4, iterations=2))
        t6 = run_workload(w, "p2p", ExperimentConfig(generation=PCIE_GEN6, iterations=2))
        assert t6.total_time_ns < t4.total_time_ns

    def test_finepack_not_behind_at_gen6(self):
        """At Gen6 both may become compute-bound; FinePack must still
        move far fewer bytes and not lose time beyond the flush tail."""
        w = SSSPWorkload(n=16_000)
        cfg = ExperimentConfig(generation=PCIE_GEN6, iterations=2)
        trace = w.generate_trace(4, 2, cfg.seed)
        p2p = run_workload(w, "p2p", cfg, trace=trace)
        fp = run_workload(w, "finepack", cfg, trace=trace)
        assert fp.total_time_ns <= p2p.total_time_ns * 1.02
        assert fp.wire_bytes < p2p.wire_bytes


class TestScaling16GPU:
    """Sec. VI-B: FinePack keeps its advantage at 16 GPUs on PCIe 6."""

    def test_16_gpu_ordering(self):
        w = PagerankWorkload(n=64_000, band_fraction=0.12)
        cfg = ExperimentConfig(
            n_gpus=16, generation=PCIE_GEN6, iterations=2, two_level=True
        )
        trace = w.generate_trace(16, 2, cfg.seed)
        p2p = run_workload(w, "p2p", cfg, trace=trace)
        fp = run_workload(w, "finepack", cfg, trace=trace)
        # At this (scaled-down) size Gen6 makes the run compute-bound;
        # FinePack must still slash wire traffic and at worst pay the
        # release-flush tail.
        assert fp.total_time_ns <= p2p.total_time_ns * 1.05
        assert fp.wire_bytes < 0.6 * p2p.wire_bytes
