"""Golden-number regression tests.

The simulator is fully deterministic for a fixed seed, so the headline
metrics of every workload are pinned here (captured from a verified
run) with a tolerance band.  A failure means the model's behaviour
changed -- re-run the benches, review EXPERIMENTS.md, and re-pin
deliberately if the change is intentional.
"""

import io

import pytest

from repro.sim.runner import ExperimentConfig, compare_paradigms, run_workload
from repro.workloads import WORKLOADS

#: Captured with ExperimentConfig(iterations=2), seed 7.
GOLDEN = {
    "jacobi": {
        "speedups": {"p2p": 3.51, "dma": 2.81, "finepack": 3.50, "infinite": 3.53},
        "finepack_wire": 206_304,
        "stores_per_packet": 25.6,
    },
    "pagerank": {
        "speedups": {"p2p": 0.47, "dma": 0.73, "finepack": 1.34, "infinite": 2.23},
        "finepack_wire": 2_697_984,
        "stores_per_packet": 68.3,
    },
    "sssp": {
        "speedups": {"p2p": 0.45, "dma": 0.78, "finepack": 1.29, "infinite": 2.75},
        "finepack_wire": 6_070_844,
        "stores_per_packet": 63.9,
    },
    "als": {
        "speedups": {"p2p": 0.97, "dma": 0.73, "finepack": 1.35, "infinite": 2.04},
        "finepack_wire": 2_238_792,
        "stores_per_packet": 66.3,
    },
    "ct": {
        "speedups": {"p2p": 3.82, "dma": 3.27, "finepack": 3.82, "infinite": 3.83},
        "finepack_wire": 1_012_464,
        "stores_per_packet": 3.6,
    },
    "eqwp": {
        "speedups": {"p2p": 3.59, "dma": 2.45, "finepack": 3.57, "infinite": 3.60},
        "finepack_wire": 2_575_632,
        "stores_per_packet": 29.6,
    },
    "diffusion": {
        "speedups": {"p2p": 3.35, "dma": 2.07, "finepack": 3.32, "infinite": 3.37},
        "finepack_wire": 2_086_368,
        "stores_per_packet": 29.5,
    },
    "hit": {
        "speedups": {"p2p": 1.50, "dma": 1.04, "finepack": 1.78, "infinite": 3.45},
        "finepack_wire": 11_126_208,
        "stores_per_packet": 29.8,
    },
}

TOLERANCE = 0.15


@pytest.mark.parametrize("name", sorted(GOLDEN))
def test_golden_metrics(name):
    result = compare_paradigms(
        WORKLOADS[name](),
        paradigms=("p2p", "dma", "finepack", "infinite"),
        config=ExperimentConfig(iterations=2),
    )
    golden = GOLDEN[name]
    for paradigm, expected in golden["speedups"].items():
        got = result.speedup(paradigm)
        assert got == pytest.approx(expected, rel=TOLERANCE), (
            f"{name}/{paradigm}: speedup {got:.2f} drifted from "
            f"golden {expected:.2f}"
        )
    fp = result.runs["finepack"]
    assert fp.wire_bytes == pytest.approx(golden["finepack_wire"], rel=TOLERANCE)
    assert fp.packets.mean_stores_per_packet == pytest.approx(
        golden["stores_per_packet"], rel=TOLERANCE
    )


class TestDeterminism:
    """Beyond matching golden numbers within tolerance, two runs of the
    same (workload, seed, config) must agree exactly -- including the
    full event stream the observability layer records."""

    @staticmethod
    def _traced_run():
        from repro.obs import Tracer, write_chrome_trace

        tracer = Tracer()
        metrics = run_workload(
            WORKLOADS["jacobi"](),
            "finepack",
            ExperimentConfig(n_gpus=4, iterations=2),
            tracer=tracer,
        )
        export = io.StringIO()
        write_chrome_trace(export, tracer)
        return metrics, export.getvalue()

    def test_repeated_runs_are_byte_identical(self):
        m1, trace1 = self._traced_run()
        m2, trace2 = self._traced_run()
        assert trace1 == trace2, "Chrome-trace exports diverged between runs"
        assert m1.summary() == m2.summary()
        assert m1.total_time_ns == m2.total_time_ns
        assert m1.wire_bytes == m2.wire_bytes

    def test_tracing_does_not_perturb_metrics(self):
        """A traced run and an untraced run report identical metrics --
        observation must not change the physics."""
        from repro.obs import Tracer

        config = ExperimentConfig(n_gpus=2, iterations=2)
        plain = run_workload(WORKLOADS["jacobi"](), "finepack", config)
        traced = run_workload(
            WORKLOADS["jacobi"](), "finepack", config, tracer=Tracer()
        )
        assert plain.summary() == traced.summary()
        assert plain.total_time_ns == traced.total_time_ns
