"""Report formatting and breakdown helper tests."""

from repro.analysis.report import format_speedup_table, format_table


class TestFormatTable:
    def test_basic_layout(self):
        text = format_table("T", ["a", "bb"], [[1, 2.5], ["xx", 3.25]])
        lines = text.splitlines()
        assert lines[0] == "=== T ==="
        assert "a" in lines[1] and "bb" in lines[1]
        assert "2.500" in text and "3.250" in text

    def test_empty_rows(self):
        text = format_table("T", ["col"], [])
        assert "col" in text

    def test_speedup_matrix(self):
        text = format_speedup_table(
            "S", {"jacobi": {"p2p": 3.5, "dma": 2.8}, "sssp": {"p2p": 0.7}}
        )
        assert "jacobi" in text and "sssp" in text
        assert "3.50" in text
        assert "nan" in text  # missing paradigm renders as nan
