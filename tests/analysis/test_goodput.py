"""Goodput analysis tests (Figure 2 properties)."""

import pytest

from repro.analysis.goodput import FIG2_SIZES, efficiency_ratio, goodput_curve


class TestGoodputCurve:
    def test_covers_requested_sizes(self):
        points = goodput_curve()
        assert [p.size for p in points] == list(FIG2_SIZES)

    def test_pcie_monotonic(self):
        points = goodput_curve()
        pcie = [p.pcie for p in points]
        assert pcie == sorted(pcie)

    def test_measured_flag(self):
        points = goodput_curve()
        assert all(p.measured == (p.size <= 128) for p in points)

    def test_small_transfers_waste_half_or_more(self):
        """Fig. 2: sub-32 B stores achieve <= ~50% goodput on PCIe."""
        by_size = {p.size: p for p in goodput_curve()}
        assert by_size[32].pcie <= 0.55
        assert by_size[8].pcie <= 0.25

    def test_bulk_approaches_unity(self):
        by_size = {p.size: p for p in goodput_curve()}
        assert by_size[16384].pcie > 0.98

    def test_nvlink_spike_at_aligned_sector(self):
        """The byte-enable flit makes NVLink goodput non-monotonic."""
        by_size = {p.size: p for p in goodput_curve(sizes=(32, 40))}
        assert by_size[32].nvlink > by_size[40].nvlink

    def test_efficiency_ratio_paper_claim(self):
        """32 B roughly half as efficient as 128 B (paper Sec. I)."""
        assert efficiency_ratio(32, 128) == pytest.approx(1.6, abs=0.25)
