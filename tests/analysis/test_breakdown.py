"""Breakdown analysis tests on a real (small) comparison."""

import pytest

from repro.analysis.breakdown import (
    breakdown_rows,
    data_reduction_factors,
    wasted_fraction,
)
from repro.sim.runner import ExperimentConfig, compare_paradigms
from repro.workloads import PagerankWorkload


@pytest.fixture(scope="module")
def comparison():
    return compare_paradigms(
        PagerankWorkload(n=8_000, avg_degree=8),
        paradigms=("p2p", "dma", "finepack", "infinite"),
        config=ExperimentConfig(iterations=2),
    )


class TestBreakdown:
    def test_rows_exclude_infinite(self, comparison):
        rows = breakdown_rows(comparison)
        assert {r[1] for r in rows} == {"p2p", "dma", "finepack"}

    def test_rows_sum_consistent(self, comparison):
        for row in breakdown_rows(comparison):
            _, _, useful, overhead, wasted, total = row
            assert useful + overhead + wasted == pytest.approx(total)

    def test_finepack_reduces_data_vs_p2p(self, comparison):
        factors = data_reduction_factors(comparison)
        assert factors["p2p"] > 1.2

    def test_wasted_fraction_bounds(self, comparison):
        for run in comparison.runs.values():
            assert 0.0 <= wasted_fraction(run) <= 1.0
