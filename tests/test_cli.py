"""CLI tests (``python -m repro``)."""

import io

import pytest

from repro.cli import main


def run_cli(*argv) -> str:
    out = io.StringIO()
    assert main(list(argv), out=out) == 0
    return out.getvalue()


class TestList:
    def test_lists_workloads_and_paradigms(self):
        text = run_cli("list")
        for name in ("jacobi", "pagerank", "sssp", "als", "ct", "eqwp", "diffusion", "hit"):
            assert name in text
        for paradigm in ("p2p", "dma", "finepack", "gps", "wc", "infinite"):
            assert paradigm in text


class TestRun:
    def test_run_small(self):
        text = run_cli(
            "run", "jacobi", "finepack", "--gpus", "2", "--iterations", "1"
        )
        assert "jacobi / finepack" in text
        assert "total_time_ms" in text

    def test_unknown_workload(self):
        with pytest.raises(SystemExit):
            run_cli("run", "nosuch", "finepack")

    def test_unknown_paradigm_rejected_by_argparse(self):
        with pytest.raises(SystemExit):
            run_cli("run", "jacobi", "warp-drive")


class TestCompare:
    def test_compare_table(self):
        text = run_cli(
            "compare", "diffusion", "--gpus", "2", "--iterations", "1",
            "--paradigms", "p2p", "finepack",
        )
        assert "speedup" in text
        assert "p2p" in text and "finepack" in text


class TestTraceReplay:
    def test_roundtrip(self, tmp_path):
        path = tmp_path / "trace.npz"
        text = run_cli(
            "trace", "jacobi", str(path), "--gpus", "2", "--iterations", "1"
        )
        assert "remote stores" in text
        text = run_cli("replay", str(path), "finepack")
        assert "jacobi / finepack" in text

    def test_replay_respects_subheader_config(self, tmp_path):
        path = tmp_path / "trace.npz"
        run_cli("trace", "pagerank", str(path), "--gpus", "2", "--iterations", "1")
        a = run_cli("replay", str(path), "finepack", "--subheader-bytes", "2")
        b = run_cli("replay", str(path), "finepack", "--subheader-bytes", "5")
        assert a != b


class TestGoodput:
    def test_table(self):
        text = run_cli("goodput")
        assert "pcie" in text and "nvlink" in text
        assert "16384" in text


class TestTimelineFlag:
    def test_run_with_timeline(self):
        text = run_cli(
            "run", "diffusion", "finepack", "--gpus", "2", "--iterations", "1",
            "--timeline",
        )
        assert "iteration timeline" in text
        assert "egress link utilization" in text


class TestTraceOut:
    def test_run_emits_valid_chrome_trace(self, tmp_path):
        """The acceptance command: ``repro run --workload jacobi --gpus 4
        --trace-out FILE`` must emit valid traceEvents JSON."""
        from repro.obs import validate_chrome_trace_file

        path = tmp_path / "t.json"
        text = run_cli(
            "run", "--workload", "jacobi", "--gpus", "4", "--iterations", "1",
            "--trace-out", str(path),
        )
        assert "per-link timeline" in text
        assert f"wrote {path}" in text
        obj = validate_chrome_trace_file(str(path))
        assert obj["traceEvents"]
        assert obj["metadata"]["gpus"] == 4

    def test_run_positional_workload_with_trace_out(self, tmp_path):
        from repro.obs import validate_chrome_trace_file

        path = tmp_path / "t.json"
        run_cli(
            "run", "jacobi", "finepack", "--gpus", "2", "--iterations", "1",
            "--trace-out", str(path),
        )
        validate_chrome_trace_file(str(path))

    def test_run_jsonl_extension_switches_format(self, tmp_path):
        from repro.obs import InvariantChecker, read_jsonl

        path = tmp_path / "events.jsonl"
        run_cli(
            "run", "jacobi", "finepack", "--gpus", "2", "--iterations", "1",
            "--trace-out", str(path),
        )
        events = read_jsonl(str(path))
        assert events
        InvariantChecker.replay(events)  # recorded stream replays cleanly

    def test_run_requires_some_workload(self):
        with pytest.raises(SystemExit):
            run_cli("run")

    def test_sweep_merges_points_into_one_trace(self, tmp_path):
        from repro.obs import validate_chrome_trace_file

        path = tmp_path / "sweep.json"
        text = run_cli(
            "sweep", "jacobi", "subheader", "--gpus", "2", "--iterations", "1",
            "--trace-out", str(path),
        )
        assert "sweep points" in text
        obj = validate_chrome_trace_file(str(path))
        assert {e["pid"] for e in obj["traceEvents"]} == {0, 1, 2, 3, 4}
        assert set(obj["metadata"]["runs"]) == {"2B", "3B", "4B", "5B", "6B"}


class TestSweep:
    def test_subheader_sweep(self):
        text = run_cli(
            "sweep", "diffusion", "subheader", "--gpus", "2", "--iterations", "1"
        )
        assert "subheader sweep" in text
        for label in ("2B", "4B", "6B"):
            assert label in text

    def test_generation_sweep(self):
        text = run_cli(
            "sweep", "diffusion", "generation", "--paradigm", "p2p",
            "--gpus", "2", "--iterations", "1",
        )
        for label in ("gen3", "gen6"):
            assert label in text

    def test_paradigm_sweep_reports_goodput(self):
        text = run_cli(
            "sweep", "allreduce_ring", "paradigm", "--gpus", "2",
            "--iterations", "1",
        )
        assert "goodput" in text
        for label in ("p2p", "dma", "finepack"):
            assert label in text

    def test_collectives_family_alias_expands(self):
        text = run_cli(
            "sweep", "collectives", "paradigm", "--gpus", "2",
            "--iterations", "1", "--paradigms", "finepack",
        )
        for name in (
            "allreduce_ring", "allreduce_tree", "allgather", "alltoall",
            "pipeline",
        ):
            assert f"{name}:finepack" in text

    def test_comma_separated_workloads(self):
        text = run_cli(
            "sweep", "alltoall,allgather", "paradigm", "--gpus", "2",
            "--iterations", "1", "--paradigms", "dma",
        )
        assert "alltoall:dma" in text and "allgather:dma" in text

    def test_sweep_on_fat_tree(self):
        text = run_cli(
            "sweep", "allgather", "paradigm", "--topology", "fat_tree",
            "--fanout", "2", "--gpus", "4", "--iterations", "1",
            "--paradigms", "finepack",
        )
        assert "finepack" in text


class TestCollectiveWorkloads:
    def test_list_includes_collectives_and_topologies(self):
        text = run_cli("list")
        for name in (
            "allreduce_ring", "allreduce_tree", "allgather", "alltoall",
            "pipeline",
        ):
            assert name in text
        for topo in ("fat_tree", "switched_mesh", "two_level"):
            assert topo in text

    def test_run_collective_on_switched_mesh(self):
        text = run_cli(
            "run", "alltoall", "finepack", "--gpus", "4", "--iterations", "1",
            "--topology", "switched_mesh", "--planes", "2",
        )
        assert "alltoall / finepack" in text

    def test_run_collective_on_fat_tree(self):
        text = run_cli(
            "run", "allreduce_tree", "dma", "--gpus", "8", "--iterations", "1",
            "--topology", "fat_tree",
        )
        assert "allreduce_tree / dma" in text


class TestDidYouMean:
    """Registry resolution errors must carry actionable suggestions."""

    def test_misspelled_collective_workload(self):
        with pytest.raises(SystemExit) as exc:
            run_cli("run", "allreduce_rng", "finepack")
        message = str(exc.value)
        assert "did you mean" in message
        assert "allreduce_ring" in message

    def test_misspelled_workload_alltoal(self):
        with pytest.raises(SystemExit) as exc:
            run_cli("sweep", "alltoal", "paradigm", "--gpus", "2")
        assert "alltoall" in str(exc.value)

    def test_misspelled_topology(self):
        with pytest.raises(SystemExit) as exc:
            run_cli(
                "run", "jacobi", "finepack", "--gpus", "2",
                "--topology", "fat_teee",
            )
        message = str(exc.value)
        assert "did you mean" in message
        assert "fat_tree" in message

    def test_misspelled_topology_switched_mess(self):
        with pytest.raises(SystemExit) as exc:
            run_cli(
                "sweep", "allgather", "paradigm", "--gpus", "2",
                "--topology", "switched_mess",
            )
        assert "switched_mesh" in str(exc.value)

    def test_unknown_topology_lists_known_kinds(self):
        with pytest.raises(SystemExit) as exc:
            run_cli(
                "run", "jacobi", "finepack", "--topology", "hypercube"
            )
        message = str(exc.value)
        assert "known" in message
        assert "fat_tree" in message and "switched_mesh" in message

    def test_topology_params_require_topology(self):
        with pytest.raises(SystemExit) as exc:
            run_cli("run", "jacobi", "finepack", "--fanout", "2")
        assert "--topology" in str(exc.value)
