"""CLI tests (``python -m repro``)."""

import io

import pytest

from repro.cli import main


def run_cli(*argv) -> str:
    out = io.StringIO()
    assert main(list(argv), out=out) == 0
    return out.getvalue()


class TestList:
    def test_lists_workloads_and_paradigms(self):
        text = run_cli("list")
        for name in ("jacobi", "pagerank", "sssp", "als", "ct", "eqwp", "diffusion", "hit"):
            assert name in text
        for paradigm in ("p2p", "dma", "finepack", "gps", "wc", "infinite"):
            assert paradigm in text


class TestRun:
    def test_run_small(self):
        text = run_cli(
            "run", "jacobi", "finepack", "--gpus", "2", "--iterations", "1"
        )
        assert "jacobi / finepack" in text
        assert "total_time_ms" in text

    def test_unknown_workload(self):
        with pytest.raises(SystemExit):
            run_cli("run", "nosuch", "finepack")

    def test_unknown_paradigm_rejected_by_argparse(self):
        with pytest.raises(SystemExit):
            run_cli("run", "jacobi", "warp-drive")


class TestCompare:
    def test_compare_table(self):
        text = run_cli(
            "compare", "diffusion", "--gpus", "2", "--iterations", "1",
            "--paradigms", "p2p", "finepack",
        )
        assert "speedup" in text
        assert "p2p" in text and "finepack" in text


class TestTraceReplay:
    def test_roundtrip(self, tmp_path):
        path = tmp_path / "trace.npz"
        text = run_cli(
            "trace", "jacobi", str(path), "--gpus", "2", "--iterations", "1"
        )
        assert "remote stores" in text
        text = run_cli("replay", str(path), "finepack")
        assert "jacobi / finepack" in text

    def test_replay_respects_subheader_config(self, tmp_path):
        path = tmp_path / "trace.npz"
        run_cli("trace", "pagerank", str(path), "--gpus", "2", "--iterations", "1")
        a = run_cli("replay", str(path), "finepack", "--subheader-bytes", "2")
        b = run_cli("replay", str(path), "finepack", "--subheader-bytes", "5")
        assert a != b


class TestGoodput:
    def test_table(self):
        text = run_cli("goodput")
        assert "pcie" in text and "nvlink" in text
        assert "16384" in text


class TestTimelineFlag:
    def test_run_with_timeline(self):
        text = run_cli(
            "run", "diffusion", "finepack", "--gpus", "2", "--iterations", "1",
            "--timeline",
        )
        assert "iteration timeline" in text
        assert "egress link utilization" in text


class TestTraceOut:
    def test_run_emits_valid_chrome_trace(self, tmp_path):
        """The acceptance command: ``repro run --workload jacobi --gpus 4
        --trace-out FILE`` must emit valid traceEvents JSON."""
        from repro.obs import validate_chrome_trace_file

        path = tmp_path / "t.json"
        text = run_cli(
            "run", "--workload", "jacobi", "--gpus", "4", "--iterations", "1",
            "--trace-out", str(path),
        )
        assert "per-link timeline" in text
        assert f"wrote {path}" in text
        obj = validate_chrome_trace_file(str(path))
        assert obj["traceEvents"]
        assert obj["metadata"]["gpus"] == 4

    def test_run_positional_workload_with_trace_out(self, tmp_path):
        from repro.obs import validate_chrome_trace_file

        path = tmp_path / "t.json"
        run_cli(
            "run", "jacobi", "finepack", "--gpus", "2", "--iterations", "1",
            "--trace-out", str(path),
        )
        validate_chrome_trace_file(str(path))

    def test_run_jsonl_extension_switches_format(self, tmp_path):
        from repro.obs import InvariantChecker, read_jsonl

        path = tmp_path / "events.jsonl"
        run_cli(
            "run", "jacobi", "finepack", "--gpus", "2", "--iterations", "1",
            "--trace-out", str(path),
        )
        events = read_jsonl(str(path))
        assert events
        InvariantChecker.replay(events)  # recorded stream replays cleanly

    def test_run_requires_some_workload(self):
        with pytest.raises(SystemExit):
            run_cli("run")

    def test_sweep_merges_points_into_one_trace(self, tmp_path):
        from repro.obs import validate_chrome_trace_file

        path = tmp_path / "sweep.json"
        text = run_cli(
            "sweep", "jacobi", "subheader", "--gpus", "2", "--iterations", "1",
            "--trace-out", str(path),
        )
        assert "sweep points" in text
        obj = validate_chrome_trace_file(str(path))
        assert {e["pid"] for e in obj["traceEvents"]} == {0, 1, 2, 3, 4}
        assert set(obj["metadata"]["runs"]) == {"2B", "3B", "4B", "5B", "6B"}


class TestSweep:
    def test_subheader_sweep(self):
        text = run_cli(
            "sweep", "diffusion", "subheader", "--gpus", "2", "--iterations", "1"
        )
        assert "subheader sweep" in text
        for label in ("2B", "4B", "6B"):
            assert label in text

    def test_generation_sweep(self):
        text = run_cli(
            "sweep", "diffusion", "generation", "--paradigm", "p2p",
            "--gpus", "2", "--iterations", "1",
        )
        for label in ("gen3", "gen6"):
            assert label in text
