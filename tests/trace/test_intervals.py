"""IntervalSet algebra tests, verified against a brute-force set model."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.trace.intervals import IntervalSet


def iset(*ranges):
    starts = [r[0] for r in ranges]
    lens = [r[1] for r in ranges]
    return IntervalSet.from_ranges(starts, lens)


def as_set(s: IntervalSet) -> set[int]:
    out: set[int] = set()
    for a, b in zip(s.starts.tolist(), s.ends.tolist()):
        out.update(range(a, b))
    return out


class TestNormalization:
    def test_empty(self):
        s = IntervalSet.empty()
        assert not s
        assert s.total_bytes == 0
        assert len(s) == 0

    def test_zero_length_dropped(self):
        assert not iset((5, 0))

    def test_negative_length_rejected(self):
        with pytest.raises(ValueError):
            iset((0, -1))

    def test_overlaps_merge(self):
        s = iset((0, 10), (5, 10))
        assert len(s) == 1
        assert s.total_bytes == 15

    def test_adjacent_merge(self):
        s = iset((0, 4), (4, 4))
        assert len(s) == 1
        assert s.total_bytes == 8

    def test_disjoint_kept(self):
        s = iset((0, 4), (8, 4))
        assert len(s) == 2

    def test_unsorted_input(self):
        s = iset((100, 4), (0, 4), (50, 4))
        assert s.starts.tolist() == [0, 50, 100]


class TestOperations:
    def test_union(self):
        u = iset((0, 8)).union(iset((4, 8)))
        assert as_set(u) == set(range(12))

    def test_intersect(self):
        i = iset((0, 10), (20, 10)).intersect(iset((5, 20)))
        assert as_set(i) == set(range(5, 10)) | set(range(20, 25))

    def test_intersect_empty(self):
        assert not iset((0, 4)).intersect(iset((8, 4)))
        assert not IntervalSet.empty().intersect(iset((0, 4)))

    def test_difference(self):
        d = iset((0, 20)).difference(iset((5, 5)))
        assert as_set(d) == set(range(5)) | set(range(10, 20))

    def test_difference_disjoint(self):
        d = iset((0, 4)).difference(iset((100, 4)))
        assert as_set(d) == set(range(4))

    def test_contains(self):
        s = iset((10, 5))
        assert s.contains(10) and s.contains(14)
        assert not s.contains(9) and not s.contains(15)

    def test_shift(self):
        s = iset((0, 4)).shift(100)
        assert as_set(s) == set(range(100, 104))


@st.composite
def interval_sets(draw):
    n = draw(st.integers(0, 12))
    ranges = [
        (draw(st.integers(0, 200)), draw(st.integers(1, 30))) for _ in range(n)
    ]
    return iset(*ranges) if ranges else IntervalSet.empty()


class TestHypothesisVsSetModel:
    @given(interval_sets(), interval_sets())
    @settings(max_examples=150, deadline=None)
    def test_union(self, a, b):
        assert as_set(a.union(b)) == as_set(a) | as_set(b)

    @given(interval_sets(), interval_sets())
    @settings(max_examples=150, deadline=None)
    def test_intersect(self, a, b):
        assert as_set(a.intersect(b)) == as_set(a) & as_set(b)

    @given(interval_sets(), interval_sets())
    @settings(max_examples=150, deadline=None)
    def test_difference(self, a, b):
        assert as_set(a.difference(b)) == as_set(a) - as_set(b)

    @given(interval_sets())
    @settings(max_examples=80, deadline=None)
    def test_total_bytes_matches_cardinality(self, a):
        assert a.total_bytes == len(as_set(a))

    @given(interval_sets())
    @settings(max_examples=80, deadline=None)
    def test_normalized_invariants(self, a):
        starts, ends = a.starts, a.ends
        assert (ends > starts).all()
        # Sorted, disjoint and non-adjacent.
        assert (starts[1:] > ends[:-1]).all()
