"""Trace container tests."""

import numpy as np
import pytest

from repro.gpu.compute import KernelWork
from repro.trace.stream import (
    DMATransfer,
    IterationTrace,
    KernelPhase,
    RemoteStoreBatch,
    WorkloadTrace,
)


def batch(addrs, sizes, dsts):
    return RemoteStoreBatch(
        np.asarray(addrs, np.int64),
        np.asarray(sizes, np.int64),
        np.asarray(dsts, np.int64),
    )


def phase(gpu, stores=None):
    return KernelPhase(
        gpu=gpu,
        work=KernelWork(flops=1.0, dram_bytes=1.0),
        stores=stores or RemoteStoreBatch.empty(),
    )


class TestRemoteStoreBatch:
    def test_counts_and_bytes(self):
        b = batch([0, 8], [8, 16], [1, 2])
        assert b.count == 2
        assert b.total_bytes == 24

    def test_mismatched_arrays(self):
        with pytest.raises(ValueError):
            batch([0], [8, 8], [1, 1])

    def test_non_positive_size(self):
        with pytest.raises(ValueError):
            batch([0], [0], [1])

    def test_for_dst(self):
        b = batch([0, 8, 16], [8, 8, 8], [1, 2, 1])
        sub = b.for_dst(1)
        assert sub.count == 2
        assert sub.addrs.tolist() == [0, 16]

    def test_destinations_sorted(self):
        b = batch([0, 8], [8, 8], [3, 1])
        assert b.destinations() == [1, 3]

    def test_concat(self):
        b = RemoteStoreBatch.concat(
            [batch([0], [8], [1]), RemoteStoreBatch.empty(), batch([8], [8], [2])]
        )
        assert b.count == 2

    def test_concat_all_empty(self):
        assert RemoteStoreBatch.concat([]).count == 0

    def test_footprint_merges_overlaps(self):
        b = batch([0, 4, 100], [8, 8, 8], [1, 1, 1])
        assert b.footprint().total_bytes == 20


class TestDMATransfer:
    def test_positive_only(self):
        with pytest.raises(ValueError):
            DMATransfer(dst=1, dst_addr=0, nbytes=0)

    def test_region(self):
        t = DMATransfer(dst=1, dst_addr=100, nbytes=50)
        assert t.region().total_bytes == 50
        assert not t.aggregated


class TestIterationTrace:
    def test_requires_ordered_phases(self):
        with pytest.raises(ValueError):
            IterationTrace([phase(1), phase(0)])

    def test_n_gpus(self):
        it = IterationTrace([phase(0), phase(1)])
        assert it.n_gpus == 2


class TestWorkloadTrace:
    def test_iteration_gpu_count_checked(self):
        with pytest.raises(ValueError):
            WorkloadTrace(
                name="x", n_gpus=2, iterations=[IterationTrace([phase(0)])]
            )

    def test_aggregates(self):
        it = IterationTrace([phase(0, batch([0, 8], [8, 16], [1, 1])), phase(1)])
        trace = WorkloadTrace(name="x", n_gpus=2, iterations=[it, it])
        assert trace.n_iterations == 2
        assert trace.total_remote_stores() == 4
        assert trace.total_remote_bytes() == 48
        assert sorted(trace.all_store_sizes().tolist()) == [8, 8, 16, 16]

    def test_all_store_sizes_empty(self):
        trace = WorkloadTrace(
            name="x", n_gpus=1, iterations=[IterationTrace([phase(0)])]
        )
        assert trace.all_store_sizes().size == 0
