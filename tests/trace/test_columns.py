"""Chunked column-block streaming: builder semantics + byte identity.

The contract under test is the tentpole invariant of the streaming
pipeline: *chunking never changes the trace*.  Whatever ``chunk_ops``
the generator streams with -- including sizes that force a flush in the
middle of an iteration -- reassembling the blocks yields arrays equal
element-for-element to whole-trace generation, and the serialized
directories are byte-identical.
"""

import hashlib
from pathlib import Path

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gpu.compute import KernelWork
from repro.trace.columns import (
    COLUMNS,
    ColumnBlockBuilder,
    blocks_to_trace,
    drain_blocks,
    phase_columns,
)
from repro.trace.intervals import IntervalSet
from repro.trace.stream import KernelPhase, RemoteStoreBatch
from repro.workloads import CTWorkload, JacobiWorkload, PagerankWorkload


def make_phase(gpu: int, n_stores: int, base: int = 0) -> KernelPhase:
    addrs = np.arange(base, base + n_stores * 8, 8, dtype=np.int64)
    return KernelPhase(
        gpu=gpu,
        work=KernelWork(flops=1.0, dram_bytes=2.0),
        stores=RemoteStoreBatch(
            addrs,
            np.full(n_stores, 8, dtype=np.int64),
            np.full(n_stores, (gpu + 1) % 2, dtype=np.int64),
        ),
        reads=IntervalSet.from_ranges([base], [8 * max(1, n_stores)]),
    )


def assert_traces_equal(a, b) -> None:
    assert a.name == b.name
    assert a.n_gpus == b.n_gpus
    assert a.metadata == b.metadata
    assert a.n_iterations == b.n_iterations
    for ita, itb in zip(a.iterations, b.iterations):
        assert len(ita.phases) == len(itb.phases)
        for pa, pb in zip(ita.phases, itb.phases):
            assert pa.gpu == pb.gpu
            assert pa.work == pb.work
            assert list(pa.dma) == list(pb.dma)
            ca, cb = phase_columns(pa), phase_columns(pb)
            for col in COLUMNS:
                assert np.array_equal(ca[col], cb[col]), col


class TestBuilder:
    def test_buffers_until_chunk_ops(self):
        builder = ColumnBlockBuilder(chunk_ops=50)
        assert builder.add(0, make_phase(0, 3)) is None
        block = builder.add(0, make_phase(1, 50))
        assert block is not None
        # Phases are never split: both buffered phases flush together.
        assert len(block.phases) == 2
        assert builder.finish() is None

    def test_oversized_phase_gets_own_block(self):
        builder = ColumnBlockBuilder(chunk_ops=10)
        block = builder.add(0, make_phase(0, 1000))
        assert block is not None and len(block.phases) == 1
        assert block.columns["addrs"].size == 1000

    def test_finish_flushes_tail(self):
        builder = ColumnBlockBuilder(chunk_ops=10**6)
        assert builder.add(0, make_phase(0, 5)) is None
        tail = builder.finish()
        assert tail is not None and len(tail.phases) == 1

    def test_rejects_decreasing_iteration(self):
        builder = ColumnBlockBuilder(chunk_ops=10**6)
        builder.add(1, make_phase(0, 2))
        with pytest.raises(ValueError):
            builder.add(0, make_phase(0, 2))

    def test_block_round_trip_is_zero_copy(self):
        builder = ColumnBlockBuilder(chunk_ops=4)
        block = builder.add(0, make_phase(0, 6))
        (header,) = block.phases
        view = block.phase_view(header)
        assert view.stores.addrs.base is block.columns["addrs"]


class TestTrustedBatches:
    def test_post_init_does_not_copy_int64(self):
        addrs = np.array([8, 16], dtype=np.int64)
        sizes = np.array([4, 4], dtype=np.int64)
        dsts = np.array([1, 1], dtype=np.int64)
        batch = RemoteStoreBatch(addrs, sizes, dsts)
        assert batch.addrs is addrs
        assert batch.sizes is sizes
        assert batch.dsts is dsts

    def test_post_init_still_converts_lists(self):
        batch = RemoteStoreBatch([8], [4], [0])
        assert batch.addrs.dtype == np.int64

    def test_trusted_skips_validation_and_shares(self):
        sizes = np.array([-1], dtype=np.int64)  # would fail __post_init__
        batch = RemoteStoreBatch.trusted(
            np.array([8], dtype=np.int64), sizes, np.array([0], dtype=np.int64)
        )
        assert batch.sizes is sizes
        with pytest.raises(ValueError):
            RemoteStoreBatch(np.array([8]), sizes, np.array([0]))


WORKLOADS = {
    # Phase sharing across iterations (stencil family).
    "jacobi": lambda: JacobiWorkload(n=48),
    # Per-iteration metadata accumulated through the generator return.
    "pagerank": lambda: PagerankWorkload(n=600),
    # Fresh RNG draws per phase: true constant-memory streaming.
    "ct": lambda: CTWorkload(
        volume_voxels=100_000, total_corrections=2_000, cluster=2
    ),
}


def streamed_trace(workload, chunk_ops, n_gpus=3, iterations=3):
    blocks, metadata = drain_blocks(
        workload.iter_columns(
            n_gpus, iterations=iterations, chunk_ops=chunk_ops
        )
    )
    return blocks_to_trace(workload.name, n_gpus, blocks, metadata)


class TestChunkedStreamingByteIdentity:
    @settings(max_examples=25, deadline=None)
    @given(
        name=st.sampled_from(sorted(WORKLOADS)),
        chunk_ops=st.one_of(
            # Tiny chunks force flushes at every phase boundary; the
            # mid-range values land flushes mid-iteration (the phases of
            # one iteration straddle two blocks); huge chunks buffer the
            # whole trace into a single block.
            st.integers(min_value=1, max_value=8),
            st.integers(min_value=9, max_value=5_000),
            st.just(10**9),
        ),
    )
    def test_identical_across_chunk_sizes(self, name, chunk_ops):
        workload = WORKLOADS[name]()
        whole = workload.generate_trace(3, iterations=3)
        chunked = streamed_trace(workload, chunk_ops)
        assert_traces_equal(whole, chunked)

    def test_mid_phase_chunk_boundary(self):
        # chunk_ops below one phase's op count: every phase flushes as
        # its own oversized block, exercising the never-split guarantee
        # on the block path end to end.
        workload = JacobiWorkload(n=48)
        whole = workload.generate_trace(2, iterations=2)
        chunked = streamed_trace(workload, 1, n_gpus=2, iterations=2)
        assert_traces_equal(whole, chunked)


def dir_digest(path: Path) -> str:
    digest = hashlib.sha256()
    for f in sorted(Path(path).iterdir()):
        digest.update(f.name.encode())
        digest.update(f.read_bytes())
    return digest.hexdigest()


class TestStreamedDiskByteIdentity:
    @pytest.mark.parametrize("chunk_ops", [7, 500, 10**9])
    def test_writer_matches_whole_trace_save(self, tmp_path, chunk_ops):
        from repro.trace.tracefile import TraceDirWriter, save_trace_dir

        workload = PagerankWorkload(n=600)
        whole = workload.generate_trace(3, iterations=3)
        save_trace_dir(whole, tmp_path / "whole")

        gen = workload.iter_columns(3, iterations=3, chunk_ops=chunk_ops)
        with TraceDirWriter(
            tmp_path / "streamed", name=workload.name, n_gpus=3
        ) as writer:
            while True:
                try:
                    block = next(gen)
                except StopIteration as stop:
                    writer.finalize(dict(stop.value or {}))
                    break
                writer.add_block(block)

        assert dir_digest(tmp_path / "whole") == dir_digest(
            tmp_path / "streamed"
        )
