"""Trace serialization round-trip tests."""

import numpy as np
import pytest

from repro.gpu.compute import KernelWork
from repro.trace.intervals import IntervalSet
from repro.trace.stream import (
    DMATransfer,
    IterationTrace,
    KernelPhase,
    RemoteStoreBatch,
    WorkloadTrace,
)
from repro.trace.tracefile import (
    load_trace,
    load_trace_dir,
    save_trace,
    save_trace_dir,
)
from repro.workloads import JacobiWorkload


def small_trace() -> WorkloadTrace:
    stores = RemoteStoreBatch(
        np.array([100, 200], dtype=np.int64),
        np.array([8, 16], dtype=np.int64),
        np.array([1, 1], dtype=np.int64),
    )
    phases = [
        KernelPhase(
            gpu=0,
            work=KernelWork(flops=10.0, dram_bytes=20.0, precision="fp32"),
            stores=stores,
            reads=IntervalSet.from_ranges([50], [10]),
            dma=[DMATransfer(dst=1, dst_addr=100, nbytes=64, aggregated=True)],
        ),
        KernelPhase(gpu=1, work=KernelWork(flops=5.0, dram_bytes=5.0)),
    ]
    return WorkloadTrace(
        name="toy",
        n_gpus=2,
        iterations=[IterationTrace(phases)],
        metadata={"k": 3},
    )


class TestRoundTrip:
    def test_manual_trace(self, tmp_path):
        path = tmp_path / "t.npz"
        original = small_trace()
        save_trace(original, path)
        loaded = load_trace(path)

        assert loaded.name == original.name
        assert loaded.n_gpus == original.n_gpus
        assert loaded.metadata == {"k": 3}
        p0, q0 = original.iterations[0].phases[0], loaded.iterations[0].phases[0]
        assert np.array_equal(p0.stores.addrs, q0.stores.addrs)
        assert np.array_equal(p0.stores.sizes, q0.stores.sizes)
        assert np.array_equal(p0.reads.starts, q0.reads.starts)
        assert q0.work.precision == "fp32"
        assert q0.dma == p0.dma

    def test_workload_trace(self, tmp_path):
        original = JacobiWorkload(n=64).generate_trace(n_gpus=2, iterations=2)
        path = tmp_path / "jacobi.npz"
        save_trace(original, path)
        loaded = load_trace(path)
        assert loaded.total_remote_stores() == original.total_remote_stores()
        assert loaded.total_remote_bytes() == original.total_remote_bytes()
        assert loaded.n_iterations == 2

    def test_version_check(self, tmp_path):
        import json

        path = tmp_path / "bad.npz"
        header = {"version": 99, "phases": []}
        np.savez(
            path,
            __header__=np.frombuffer(json.dumps(header).encode(), dtype=np.uint8),
        )
        with pytest.raises(ValueError, match="version"):
            load_trace(path)


class TestColumnarDirectory:
    def test_manual_trace_round_trip(self, tmp_path):
        path = tmp_path / "t"
        original = small_trace()
        save_trace_dir(original, path)
        loaded = load_trace_dir(path)

        assert loaded.name == original.name
        assert loaded.n_gpus == original.n_gpus
        assert loaded.metadata == {"k": 3}
        p0, q0 = original.iterations[0].phases[0], loaded.iterations[0].phases[0]
        assert np.array_equal(p0.stores.addrs, q0.stores.addrs)
        assert np.array_equal(p0.stores.sizes, q0.stores.sizes)
        assert np.array_equal(p0.reads.starts, q0.reads.starts)
        assert q0.work.precision == "fp32"
        assert q0.dma == p0.dma
        # Empty phases survive: gpu 1 has no stores/atomics/reads.
        q1 = loaded.iterations[0].phases[1]
        assert q1.stores.count == 0 and q1.atomics.count == 0

    def test_matches_npz_round_trip(self, tmp_path):
        """Both formats reconstruct identical traces."""
        original = JacobiWorkload(n=64).generate_trace(n_gpus=2, iterations=2)
        save_trace(original, tmp_path / "t.npz")
        save_trace_dir(original, tmp_path / "t")
        a = load_trace(tmp_path / "t.npz")
        b = load_trace_dir(tmp_path / "t")
        assert a.total_remote_stores() == b.total_remote_stores()
        assert a.total_remote_bytes() == b.total_remote_bytes()
        for it_a, it_b in zip(a.iterations, b.iterations):
            for pa, pb in zip(it_a.phases, it_b.phases):
                assert pa.stores.addrs.tobytes() == pb.stores.addrs.tobytes()
                assert pa.reads.ends.tobytes() == pb.reads.ends.tobytes()

    def test_mmap_loads_are_read_only_views(self, tmp_path):
        original = JacobiWorkload(n=64).generate_trace(n_gpus=2, iterations=1)
        save_trace_dir(original, tmp_path / "t")
        loaded = load_trace_dir(tmp_path / "t", mmap=True)
        phase = loaded.iterations[0].phases[0]
        base = phase.stores.addrs.base
        while base is not None and not isinstance(base, np.memmap):
            base = base.base
        assert isinstance(base, np.memmap)
        with pytest.raises(ValueError):
            phase.stores.addrs[0] = 1

    def test_layout_check(self, tmp_path):
        import json

        path = tmp_path / "bad"
        path.mkdir()
        (path / "header.json").write_text(
            json.dumps({"version": 2, "layout": "rowwise", "phases": []})
        )
        with pytest.raises(ValueError, match="layout"):
            load_trace_dir(path)
