"""Trace serialization round-trip tests."""

import numpy as np
import pytest

from repro.gpu.compute import KernelWork
from repro.trace.intervals import IntervalSet
from repro.trace.stream import (
    DMATransfer,
    IterationTrace,
    KernelPhase,
    RemoteStoreBatch,
    WorkloadTrace,
)
from repro.trace.tracefile import load_trace, save_trace
from repro.workloads import JacobiWorkload


def small_trace() -> WorkloadTrace:
    stores = RemoteStoreBatch(
        np.array([100, 200], dtype=np.int64),
        np.array([8, 16], dtype=np.int64),
        np.array([1, 1], dtype=np.int64),
    )
    phases = [
        KernelPhase(
            gpu=0,
            work=KernelWork(flops=10.0, dram_bytes=20.0, precision="fp32"),
            stores=stores,
            reads=IntervalSet.from_ranges([50], [10]),
            dma=[DMATransfer(dst=1, dst_addr=100, nbytes=64, aggregated=True)],
        ),
        KernelPhase(gpu=1, work=KernelWork(flops=5.0, dram_bytes=5.0)),
    ]
    return WorkloadTrace(
        name="toy",
        n_gpus=2,
        iterations=[IterationTrace(phases)],
        metadata={"k": 3},
    )


class TestRoundTrip:
    def test_manual_trace(self, tmp_path):
        path = tmp_path / "t.npz"
        original = small_trace()
        save_trace(original, path)
        loaded = load_trace(path)

        assert loaded.name == original.name
        assert loaded.n_gpus == original.n_gpus
        assert loaded.metadata == {"k": 3}
        p0, q0 = original.iterations[0].phases[0], loaded.iterations[0].phases[0]
        assert np.array_equal(p0.stores.addrs, q0.stores.addrs)
        assert np.array_equal(p0.stores.sizes, q0.stores.sizes)
        assert np.array_equal(p0.reads.starts, q0.reads.starts)
        assert q0.work.precision == "fp32"
        assert q0.dma == p0.dma

    def test_workload_trace(self, tmp_path):
        original = JacobiWorkload(n=64).generate_trace(n_gpus=2, iterations=2)
        path = tmp_path / "jacobi.npz"
        save_trace(original, path)
        loaded = load_trace(path)
        assert loaded.total_remote_stores() == original.total_remote_stores()
        assert loaded.total_remote_bytes() == original.total_remote_bytes()
        assert loaded.n_iterations == 2

    def test_version_check(self, tmp_path):
        import json

        path = tmp_path / "bad.npz"
        header = {"version": 99, "phases": []}
        np.savez(
            path,
            __header__=np.frombuffer(json.dumps(header).encode(), dtype=np.uint8),
        )
        with pytest.raises(ValueError, match="version"):
            load_trace(path)
