"""Trace event vocabulary tests."""

import pytest

from repro.gpu.consistency import Scope
from repro.trace.events import EventKind, StoreEvent, fence, store


class TestEvents:
    def test_store_constructor(self):
        ev = store(gpu=0, addr=128, size=8, dst=2, time=5.0)
        assert ev.kind is EventKind.STORE
        assert (ev.addr, ev.size, ev.dst, ev.time) == (128, 8, 2, 5.0)

    def test_store_size_validated(self):
        with pytest.raises(ValueError):
            StoreEvent(kind=EventKind.STORE, gpu=0, addr=0, size=0, dst=1)

    def test_fence_default_scope(self):
        assert fence(gpu=1).scope is Scope.SYSTEM

    def test_events_are_frozen(self):
        ev = store(0, 0, 8, 1)
        with pytest.raises(AttributeError):
            ev.addr = 5
