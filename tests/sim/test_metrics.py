"""Byte-accounting ledger tests (Figure 10 classification)."""

import numpy as np
import pytest

from repro.interconnect.message import MessageKind, WireMessage
from repro.sim.metrics import ByteBreakdown, PacketStats, RunMetrics, classify_messages
from repro.trace.intervals import IntervalSet


def msg(ranges, overhead=32, kind=MessageKind.STORE, packed=1):
    starts = np.asarray([r[0] for r in ranges], dtype=np.int64)
    lens = np.asarray([r[1] for r in ranges], dtype=np.int64)
    return WireMessage(
        src=0,
        dst=1,
        payload_bytes=int(lens.sum()),
        overhead_bytes=overhead,
        kind=kind,
        stores_packed=packed,
        meta={"ranges": (starts, lens)},
    )


def iset(*ranges):
    return IntervalSet.from_ranges([r[0] for r in ranges], [r[1] for r in ranges])


class TestClassification:
    def test_all_useful(self):
        b = classify_messages([msg([(0, 8)])], iset((0, 8)), iset((0, 8)))
        assert (b.useful, b.wasted, b.overhead) == (8, 0, 32)

    def test_redundant_same_address_twice(self):
        """Two deliveries of the same byte: one is redundant."""
        b = classify_messages(
            [msg([(0, 8)]), msg([(0, 8)])], iset((0, 8)), iset((0, 8))
        )
        assert b.useful == 8
        assert b.wasted_redundant == 8
        assert b.wasted_unread == 0

    def test_unread_bytes(self):
        b = classify_messages([msg([(0, 16)])], iset((0, 16)), iset((0, 4)))
        assert b.useful == 4
        assert b.wasted_unread == 12

    def test_overtransfer_outside_footprint(self):
        """DMA copying un-updated bytes: read but never written."""
        b = classify_messages([msg([(0, 100)])], iset((0, 20)), iset((0, 100)))
        assert b.useful == 20
        assert b.wasted_unread == 80

    def test_empty_messages(self):
        b = classify_messages([], iset((0, 8)), iset((0, 8)))
        assert b.total == 0

    def test_range_annotation_required(self):
        bad = WireMessage(src=0, dst=1, payload_bytes=8, overhead_bytes=0)
        with pytest.raises(ValueError, match="range"):
            classify_messages([bad], iset((0, 8)), iset((0, 8)))

    def test_range_payload_mismatch_detected(self):
        m = msg([(0, 8)])
        m.payload_bytes = 99
        with pytest.raises(ValueError, match="claim"):
            classify_messages([m], iset((0, 8)), iset((0, 8)))


class TestByteBreakdown:
    def test_add_and_totals(self):
        a = ByteBreakdown(useful=10, wasted_redundant=2, wasted_unread=3, overhead=5)
        b = ByteBreakdown(useful=1, wasted_redundant=1, wasted_unread=1, overhead=1)
        a.add(b)
        assert a.payload == 18
        assert a.wasted == 7
        assert a.total == 24
        assert a.as_dict()["total"] == 24


class TestPacketStats:
    def test_mean_stores_per_packet(self):
        s = PacketStats()
        s.record(msg([(0, 8)], kind=MessageKind.FINEPACK, packed=10))
        s.record(msg([(0, 8)], kind=MessageKind.FINEPACK, packed=20))
        s.record(msg([(0, 8)], kind=MessageKind.DMA_CHUNK, packed=0))
        assert s.mean_stores_per_packet == 15.0
        assert s.messages == 3
        assert s.by_kind[MessageKind.FINEPACK] == 2

    def test_empty(self):
        assert PacketStats().mean_stores_per_packet == 0.0


class TestRunMetrics:
    def test_derived_quantities(self):
        m = RunMetrics(workload="w", paradigm="p", n_gpus=4)
        m.bytes = ByteBreakdown(useful=60, wasted_redundant=20, wasted_unread=0, overhead=20)
        assert m.goodput == pytest.approx(0.8)
        assert m.efficiency == pytest.approx(0.6)
        assert m.summary()["workload"] == "w"

    def test_zero_traffic(self):
        m = RunMetrics(workload="w", paradigm="infinite", n_gpus=4)
        assert m.goodput == 0.0 and m.efficiency == 0.0
