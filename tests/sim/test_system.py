"""MultiGPUSystem integration tests on hand-built traces."""

import numpy as np
import pytest

from repro.gpu.compute import ComputeModel, KernelWork
from repro.interconnect.pcie import PCIE_GEN4, PCIE_GEN6
from repro.sim.paradigms import make_paradigm
from repro.sim.system import MultiGPUSystem
from repro.trace.intervals import IntervalSet
from repro.trace.stream import (
    DMATransfer,
    IterationTrace,
    KernelPhase,
    RemoteStoreBatch,
    WorkloadTrace,
)


def toy_trace(n_gpus=2, n_stores=64, iterations=2, dram=9_000_000) -> WorkloadTrace:
    """GPU 0 scatters 8 B stores into GPU 1's aperture each iteration."""
    base = 1 << 34
    addrs = base + np.arange(n_stores, dtype=np.int64) * 256
    phases = [
        KernelPhase(
            gpu=0,
            work=KernelWork(flops=0, dram_bytes=dram),
            stores=RemoteStoreBatch(
                addrs, np.full(n_stores, 8, np.int64), np.ones(n_stores, np.int64)
            ),
            dma=[DMATransfer(dst=1, dst_addr=int(base), nbytes=int(n_stores * 256))],
        ),
        KernelPhase(
            gpu=1,
            work=KernelWork(flops=0, dram_bytes=dram),
            reads=IntervalSet.from_ranges(addrs, np.full(n_stores, 8, np.int64)),
        ),
    ] + [
        KernelPhase(gpu=g, work=KernelWork(flops=0, dram_bytes=dram))
        for g in range(2, n_gpus)
    ]
    return WorkloadTrace(
        name="toy", n_gpus=n_gpus, iterations=[IterationTrace(phases)] * iterations
    )


def run(paradigm_name, trace=None, **build_kw):
    trace = trace or toy_trace()
    system = MultiGPUSystem.build(n_gpus=trace.n_gpus, **build_kw)
    return system.run(trace, make_paradigm(paradigm_name))


class TestTiming:
    def test_infinite_is_fastest(self):
        times = {p: run(p).total_time_ns for p in ("p2p", "dma", "finepack", "infinite")}
        assert min(times, key=times.get) == "infinite"

    def test_finepack_beats_p2p_when_comm_bound(self):
        trace = toy_trace(n_stores=8192, dram=500_000)
        assert run("finepack", trace=trace).total_time_ns < run("p2p", trace=trace).total_time_ns

    def test_finepack_flush_tail_is_small_when_compute_bound(self):
        """The release-flush drain after the kernel costs at most a few
        percent (the paper argues it is dwarfed by the barrier)."""
        fp, p2p = run("finepack"), run("p2p")
        assert fp.total_time_ns <= p2p.total_time_ns * 1.02

    def test_iteration_times_sum_to_total(self):
        m = run("finepack")
        assert sum(m.iteration_times_ns) == pytest.approx(m.total_time_ns)

    def test_faster_interconnect_helps_comm_bound(self):
        trace = toy_trace(n_stores=512)
        slow = run("p2p", trace=trace, generation=PCIE_GEN4)
        fast = run("p2p", trace=trace, generation=PCIE_GEN6)
        assert fast.total_time_ns <= slow.total_time_ns

    def test_dma_pays_call_overhead(self):
        m = run("dma")
        assert m.total_time_ns > m.compute_time_ns


class TestByteAccounting:
    def test_p2p_all_stores_useful_when_read(self):
        m = run("p2p")
        assert m.bytes.useful == 2 * 64 * 8  # every byte read, 2 iters
        assert m.bytes.wasted == 0

    def test_dma_overtransfer_classified(self):
        m = run("dma")
        # Copies 256 B-strided region but only 8 B per 256 B are written+read.
        assert m.bytes.useful == 2 * 64 * 8
        assert m.bytes.wasted_unread > 0

    def test_finepack_wire_bytes_below_p2p(self):
        assert run("finepack").wire_bytes < run("p2p").wire_bytes

    def test_infinite_moves_nothing(self):
        assert run("infinite").wire_bytes == 0

    def test_packet_counts(self):
        m = run("p2p")
        assert m.packets.messages == 2 * 64
        fp = run("finepack")
        assert fp.packets.messages < 2 * 64
        assert fp.packets.stores_carried == 2 * 64


class TestValidation:
    def test_gpu_count_mismatch(self):
        system = MultiGPUSystem.build(n_gpus=4)
        with pytest.raises(ValueError, match="GPUs"):
            system.run(toy_trace(n_gpus=2), make_paradigm("p2p"))

    def test_single_gpu_system_runs_compute_only(self):
        trace = WorkloadTrace(
            name="solo",
            n_gpus=1,
            iterations=[
                IterationTrace(
                    [KernelPhase(gpu=0, work=KernelWork(flops=0, dram_bytes=9e6))]
                )
            ],
        )
        system = MultiGPUSystem.build(n_gpus=1)
        m = system.run(trace, make_paradigm("infinite"))
        assert m.total_time_ns > 0
        assert m.wire_bytes == 0

    def test_two_level_topology_build(self):
        system = MultiGPUSystem.build(n_gpus=16, two_level=True)
        assert system.topology is not None
        assert system.topology.n_gpus == 16

    def test_fully_connected_build_and_run(self):
        system = MultiGPUSystem.build(n_gpus=4, topology_kind="fully_connected")
        trace4 = toy_trace(n_gpus=4)
        m = system.run(trace4, make_paradigm("p2p"))
        assert m.wire_bytes > 0

    def test_fully_connected_beats_switch_for_contended_traffic(self):
        trace = toy_trace(n_gpus=2, n_stores=4096, dram=500_000)
        switched = MultiGPUSystem.build(n_gpus=2).run(trace, make_paradigm("p2p"))
        flat = MultiGPUSystem.build(
            n_gpus=2, topology_kind="fully_connected"
        ).run(trace, make_paradigm("p2p"))
        assert flat.total_time_ns <= switched.total_time_ns

    def test_unknown_topology_rejected(self):
        with pytest.raises(ValueError, match="topology"):
            MultiGPUSystem.build(n_gpus=4, topology_kind="torus")

    def test_custom_compute_model(self):
        fast = MultiGPUSystem.build(
            n_gpus=2, compute=ComputeModel(efficiency=1.0, launch_overhead_ns=0)
        )
        slow = MultiGPUSystem.build(
            n_gpus=2, compute=ComputeModel(efficiency=0.25, launch_overhead_ns=0)
        )
        t = toy_trace()
        assert (
            fast.run(t, make_paradigm("infinite")).total_time_ns
            < slow.run(t, make_paradigm("infinite")).total_time_ns
        )
