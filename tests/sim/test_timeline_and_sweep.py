"""Timeline rendering, link utilization, and sweep utility tests."""

import pytest

from repro.core.config import FinePackConfig
from repro.interconnect.pcie import GENERATIONS, PCIE_GEN4, PCIE_GEN6
from repro.sim.metrics import LinkUtilization, RunMetrics
from repro.sim.paradigms import FinePackParadigm, make_paradigm
from repro.sim.runner import ExperimentConfig, run_workload
from repro.sim.sweep import generation_sweep, single_gpu_time, sweep
from repro.sim.system import MultiGPUSystem
from repro.sim.timeline import render_comparison, render_timeline
from repro.workloads import PagerankWorkload


@pytest.fixture(scope="module")
def workload():
    return PagerankWorkload(n=12_000)


@pytest.fixture(scope="module")
def metrics(workload):
    return run_workload(workload, "p2p", ExperimentConfig(iterations=2))


class TestLinkUtilization:
    def test_populated_after_run(self, metrics):
        assert metrics.links.by_link
        assert 0.0 < metrics.links.peak <= 1.0
        assert 0.0 < metrics.links.mean <= metrics.links.peak

    def test_gpu_egress_subset(self, metrics):
        egress = metrics.links.gpu_egress()
        assert egress
        assert all(name.startswith("gpu") for name in egress)

    def test_empty_default(self):
        assert LinkUtilization().peak == 0.0
        assert LinkUtilization().mean == 0.0

    def test_comm_bound_paradigm_busier(self, workload):
        cfg = ExperimentConfig(iterations=2)
        p2p = run_workload(workload, "p2p", cfg)
        fp = run_workload(workload, "finepack", cfg)
        assert p2p.links.peak > fp.links.peak


class TestTimeline:
    def test_render_contains_iterations(self, metrics):
        text = render_timeline(metrics)
        assert "it 0" in text and "it 1" in text
        assert "egress link utilization" in text

    def test_render_empty_run(self):
        m = RunMetrics(workload="x", paradigm="y", n_gpus=2)
        assert "(no iterations)" in render_timeline(m)

    def test_render_comparison_bars(self, workload):
        cfg = ExperimentConfig(iterations=2)
        runs = {p: run_workload(workload, p, cfg) for p in ("p2p", "finepack")}
        text = render_comparison(runs)
        assert "p2p" in text and "finepack" in text
        assert "ms" in text


class TestSweep:
    def test_subheader_sweep(self, workload):
        def factory(b):
            def make():
                cfg = FinePackConfig(subheader_bytes=b)
                return (
                    MultiGPUSystem.build(n_gpus=4, finepack_config=cfg),
                    FinePackParadigm(cfg),
                )

            return make

        result = sweep(
            workload, {f"{b}B": factory(b) for b in (2, 4, 5)}, iterations=2
        )
        assert {p.label for p in result.points} == {"2B", "4B", "5B"}
        assert all(p.speedup > 0 for p in result.points)
        # best() selects the maximum-speedup point.  (At this reduced
        # scale the physics of the sweet spot is exercised by the
        # integration suite and Fig. 12 bench, not here.)
        assert result.best().speedup == max(p.speedup for p in result.points)

    def test_generation_sweep(self, workload):
        result = generation_sweep(
            workload,
            {"gen4": PCIE_GEN4, "gen6": PCIE_GEN6},
            paradigm_name="p2p",
            iterations=2,
        )
        by = result.by_label()
        assert by["gen6"].speedup >= by["gen4"].speedup

    def test_single_gpu_time_positive(self, workload):
        assert single_gpu_time(workload) > 0

    def test_empty_sweep_best_raises(self, workload):
        from repro.sim.sweep import SweepResult

        with pytest.raises(ValueError):
            SweepResult(workload="x").best()

    def test_best_breaks_ties_by_label(self):
        """Exact speedup ties must resolve deterministically by label,
        not by the insertion order of the configurations dict."""
        from repro.sim.sweep import SweepPoint, SweepResult

        def point(label, speedup):
            return SweepPoint(
                label=label,
                metrics=RunMetrics(workload="x", paradigm="y", n_gpus=2),
                speedup=speedup,
            )

        # Adversarial insertion order: the tied winners arrive with the
        # lexicographically larger label first.
        result = SweepResult(
            workload="x",
            points=[point("zeta", 2.0), point("alpha", 2.0), point("mid", 1.5)],
        )
        assert result.best().label == "alpha"
        reversed_result = SweepResult(
            workload="x", points=list(reversed(result.points))
        )
        assert reversed_result.best().label == "alpha"

    def test_best_prefers_higher_speedup_over_label(self):
        from repro.sim.sweep import SweepPoint, SweepResult

        result = SweepResult(
            workload="x",
            points=[
                SweepPoint(
                    label="aaa",
                    metrics=RunMetrics(workload="x", paradigm="y", n_gpus=2),
                    speedup=1.0,
                ),
                SweepPoint(
                    label="zzz",
                    metrics=RunMetrics(workload="x", paradigm="y", n_gpus=2),
                    speedup=3.0,
                ),
            ],
        )
        assert result.best().label == "zzz"
