"""Communication paradigm tests."""

import numpy as np
import pytest

from repro.gpu.compute import KernelWork
from repro.interconnect.message import MessageKind
from repro.interconnect.pcie import PCIE_GEN4, PCIeProtocol
from repro.sim.paradigms import (
    PARADIGMS,
    BulkDMAParadigm,
    FinePackParadigm,
    GPSParadigm,
    InfiniteBandwidthParadigm,
    P2PStoreParadigm,
    make_paradigm,
)
from repro.trace.intervals import IntervalSet
from repro.trace.stream import DMATransfer, KernelPhase, RemoteStoreBatch

BASE = 1 << 34


def phase(addrs=(), sizes=(), dsts=(), dma=()):
    stores = RemoteStoreBatch(
        np.asarray(addrs, np.int64), np.asarray(sizes, np.int64), np.asarray(dsts, np.int64)
    ) if len(addrs) else RemoteStoreBatch.empty()
    return KernelPhase(
        gpu=0,
        work=KernelWork(flops=1, dram_bytes=1),
        stores=stores,
        dma=list(dma),
    )


@pytest.fixture
def proto():
    return PCIeProtocol(PCIE_GEN4)


class TestRegistry:
    def test_all_names(self):
        assert set(PARADIGMS) == {
            "p2p", "wc", "gps", "finepack", "dma", "dma_sliced", "infinite",
        }

    def test_make_by_name(self):
        assert isinstance(make_paradigm("finepack"), FinePackParadigm)

    def test_unknown_name(self):
        with pytest.raises(KeyError):
            make_paradigm("carrier-pigeon")


class TestStoreParadigms:
    def test_p2p_issue_times_spread_across_kernel(self, proto):
        p = P2PStoreParadigm()
        p.attach(2, proto)
        ph = phase([BASE, BASE + 256, BASE + 512], [8, 8, 8], [1, 1, 1])
        msgs = p.phase_messages(ph, 0.0, 300.0, {})
        times = [m.issue_time for m in msgs]
        assert times == [100.0, 200.0, 300.0]

    def test_finepack_flushes_at_kernel_end(self, proto):
        p = FinePackParadigm()
        p.attach(2, proto)
        ph = phase([BASE, BASE + 256], [8, 8], [1, 1])
        msgs = p.phase_messages(ph, 0.0, 100.0, {})
        assert len(msgs) == 1
        assert msgs[0].kind is MessageKind.FINEPACK
        assert msgs[0].issue_time == 100.0

    def test_gps_subscription_filter(self, proto):
        p = GPSParadigm(subscription="oracle")
        p.attach(2, proto)
        ph = phase([BASE, BASE + 4096], [8, 8], [1, 1])
        reads = {1: IntervalSet.from_ranges([BASE], [8])}
        msgs = p.phase_messages(ph, 0.0, 100.0, reads)
        # Only the subscribed (read) store survives; its 8 B round out
        # to a full 32 B sector.
        assert sum(m.payload_bytes for m in msgs) == 32
        assert msgs[0].meta["range1"] == (BASE, 32)

    def test_gps_drops_everything_without_readers(self, proto):
        p = GPSParadigm(subscription="oracle")
        p.attach(2, proto)
        ph = phase([BASE], [8], [1])
        assert p.phase_messages(ph, 0.0, 100.0, {}) == []


class TestDMA:
    def test_messages_after_compute_with_overhead(self, proto):
        p = BulkDMAParadigm(per_call_overhead_ns=1000.0)
        p.attach(2, proto)
        ph = phase(dma=[
            DMATransfer(dst=1, dst_addr=BASE, nbytes=4096),
            DMATransfer(dst=1, dst_addr=BASE + 8192, nbytes=4096),
        ])
        msgs = p.phase_messages(ph, 0.0, 500.0, {})
        assert [m.issue_time for m in msgs] == [1500.0, 2500.0]
        assert all(m.kind is MessageKind.DMA_CHUNK for m in msgs)
        assert msgs[0].payload_bytes == 4096

    def test_no_overlap_flag(self):
        assert BulkDMAParadigm.overlaps_compute is False


class TestInfinite:
    def test_no_messages(self, proto):
        p = InfiniteBandwidthParadigm()
        p.attach(2, proto)
        ph = phase([BASE], [8], [1], dma=[DMATransfer(dst=1, dst_addr=BASE, nbytes=64)])
        assert p.phase_messages(ph, 0.0, 100.0, {}) == []
