"""Validation harness tests."""

import pytest

from repro.sim.paradigms import FinePackParadigm, GPSParadigm, make_paradigm
from repro.sim.validation import ValidationError, validate
from repro.workloads import DiffusionWorkload, PagerankWorkload


@pytest.fixture(scope="module")
def trace():
    return PagerankWorkload(n=6_000).generate_trace(4, 2)


class TestValidate:
    @pytest.mark.parametrize("paradigm", ["p2p", "finepack", "wc", "dma"])
    def test_stock_paradigms_pass(self, trace, paradigm):
        report = validate(trace, paradigm)
        assert report.passed, report.failures()

    def test_gps_passes_with_subscription_semantics(self, trace):
        report = validate(trace, GPSParadigm())
        assert report.passed, report.failures()

    def test_multiwindow_finepack_passes(self):
        trace = DiffusionWorkload(n=24).generate_trace(2, 2)
        report = validate(trace, FinePackParadigm(windows=2))
        assert report.passed, report.failures()

    def test_summary_readable(self, trace):
        report = validate(trace, "finepack")
        text = report.summary()
        assert "[PASS]" in text
        assert "ledger-partition" in text

    def test_broken_engine_detected(self, trace):
        """An engine that drops every second store must fail coverage."""

        class LossyParadigm(FinePackParadigm):
            name = "lossy"

            def _make_engine(self, gpu, n_gpus, protocol):
                engine = super()._make_engine(gpu, n_gpus, protocol)
                original = engine.on_store
                state = {"n": 0}

                def lossy(addr, size, dst, time, data=None):
                    state["n"] += 1
                    if state["n"] % 2 == 0:
                        return []  # silently dropped!
                    return original(addr, size, dst, time, data)

                engine.on_store = lossy
                return engine

        report = validate(trace, LossyParadigm())
        assert not report.passed
        with pytest.raises(ValidationError):
            validate(trace, LossyParadigm(), raise_on_failure=True)

    def test_infinite_is_trivially_consistent(self, trace):
        report = validate(trace, make_paradigm("infinite"))
        assert report.passed, report.failures()
