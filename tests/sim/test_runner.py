"""Experiment runner tests on a scaled-down workload."""

import pytest

from repro.sim.runner import (
    ComparisonResult,
    ExperimentConfig,
    compare_paradigms,
    geomean,
    run_workload,
)
from repro.workloads import JacobiWorkload


@pytest.fixture(scope="module")
def comparison() -> ComparisonResult:
    cfg = ExperimentConfig(iterations=2)
    return compare_paradigms(
        JacobiWorkload(n=256), paradigms=("p2p", "dma", "finepack", "infinite"),
        config=cfg,
    )


class TestCompareParadigms:
    def test_all_paradigms_present(self, comparison):
        assert set(comparison.runs) == {"p2p", "dma", "finepack", "infinite"}

    def test_speedups_positive(self, comparison):
        assert all(v > 0 for v in comparison.speedups().values())

    def test_infinite_is_upper_bound(self, comparison):
        sp = comparison.speedups()
        assert sp["infinite"] >= max(sp["p2p"], sp["dma"], sp["finepack"]) - 1e-9

    def test_bytes_normalized_reference_is_one(self, comparison):
        norm = comparison.bytes_normalized_to("dma")
        assert norm["dma"]["total"] == pytest.approx(1.0)

    def test_bytes_categories_sum(self, comparison):
        norm = comparison.bytes_normalized_to("dma")
        for row in norm.values():
            assert row["useful"] + row["protocol_overhead"] + row["wasted"] == pytest.approx(
                row["total"]
            )

    def test_normalize_to_empty_reference_rejected(self, comparison):
        with pytest.raises(ValueError):
            comparison.bytes_normalized_to("infinite")


class TestRunWorkload:
    def test_explicit_trace_reuse(self):
        w = JacobiWorkload(n=256)
        cfg = ExperimentConfig(iterations=2)
        trace = w.generate_trace(n_gpus=4, iterations=2, seed=cfg.seed)
        a = run_workload(w, "finepack", config=cfg, trace=trace)
        b = run_workload(w, "finepack", config=cfg, trace=trace)
        assert a.total_time_ns == b.total_time_ns
        assert a.wire_bytes == b.wire_bytes

    def test_paradigm_instance_accepted(self):
        from repro.sim.paradigms import FinePackParadigm

        m = run_workload(
            JacobiWorkload(n=256), FinePackParadigm(), config=ExperimentConfig(iterations=1)
        )
        assert m.paradigm == "finepack"


class TestGeomean:
    def test_value(self):
        assert geomean([1.0, 4.0]) == pytest.approx(2.0)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            geomean([])

    def test_non_positive_rejected(self):
        with pytest.raises(ValueError):
            geomean([1.0, 0.0])
