"""Discrete-event engine tests."""

import pytest

from repro.sim.engine import Engine


class TestEngine:
    def test_time_order(self):
        e = Engine()
        log = []
        e.schedule(5.0, log.append, "b")
        e.schedule(1.0, log.append, "a")
        e.schedule(9.0, log.append, "c")
        e.run()
        assert log == ["a", "b", "c"]
        assert e.now == 9.0

    def test_ties_break_by_schedule_order(self):
        e = Engine()
        log = []
        e.schedule(1.0, log.append, "first")
        e.schedule(1.0, log.append, "second")
        e.run()
        assert log == ["first", "second"]

    def test_schedule_in_past_rejected(self):
        e = Engine()
        e.schedule(5.0, lambda: None)
        e.run()
        with pytest.raises(ValueError):
            e.schedule(3.0, lambda: None)

    def test_schedule_after(self):
        e = Engine()
        log = []
        e.schedule(2.0, lambda: e.schedule_after(3.0, lambda: log.append(e.now)))
        e.run()
        assert log == [5.0]

    def test_run_until(self):
        e = Engine()
        log = []
        e.schedule(1.0, log.append, 1)
        e.schedule(10.0, log.append, 10)
        e.run(until=5.0)
        assert log == [1]
        assert e.now == 5.0
        assert e.pending == 1

    def test_events_scheduled_during_run(self):
        e = Engine()
        log = []

        def cascade(depth):
            log.append(depth)
            if depth < 3:
                e.schedule_after(1.0, cascade, depth + 1)

        e.schedule(0.0, cascade, 0)
        e.run()
        assert log == [0, 1, 2, 3]
        assert e.events_processed == 4

    def test_step_empty(self):
        assert not Engine().step()

    def test_reset(self):
        e = Engine()
        e.schedule(1.0, lambda: None)
        e.run()
        e.reset()
        assert e.now == 0.0
        assert e.pending == 0
