"""Atomics through the full simulation stack (paper Sec. IV-C)."""

import numpy as np
import pytest

from repro.gpu.compute import KernelWork
from repro.interconnect.message import MessageKind
from repro.interconnect.pcie import PCIE_GEN4, PCIeProtocol
from repro.sim.paradigms import FinePackParadigm, P2PStoreParadigm
from repro.sim.runner import ExperimentConfig, compare_paradigms
from repro.trace.stream import IterationTrace, KernelPhase, RemoteStoreBatch, WorkloadTrace
from repro.workloads import PagerankWorkload

BASE = 1 << 34


def batch(addrs, dsts=None, size=8):
    addrs = np.asarray(addrs, np.int64)
    dsts = np.asarray(dsts if dsts is not None else addrs >> 34, np.int64)
    return RemoteStoreBatch(addrs, np.full(addrs.size, size, np.int64), dsts)


def phase_with_atomics(n_stores=8, n_atomics=4):
    return KernelPhase(
        gpu=0,
        work=KernelWork(flops=0, dram_bytes=1e6),
        stores=batch(BASE + np.arange(n_stores) * 256),
        atomics=batch(BASE + (1 << 20) + np.arange(n_atomics) * 256),
    )


class TestParadigmAtomicHandling:
    def test_atomics_emitted_as_atomic_messages(self):
        p = FinePackParadigm()
        p.attach(2, PCIeProtocol(PCIE_GEN4))
        msgs = p.phase_messages(phase_with_atomics(), 0.0, 100.0, {})
        kinds = [m.kind for m in msgs]
        assert kinds.count(MessageKind.ATOMIC) == 4
        assert MessageKind.FINEPACK in kinds  # stores still pack

    def test_atomics_interleaved_in_time(self):
        p = P2PStoreParadigm()
        p.attach(2, PCIeProtocol(PCIE_GEN4))
        msgs = p.phase_messages(phase_with_atomics(8, 4), 0.0, 120.0, {})
        atomic_times = [m.issue_time for m in msgs if m.kind is MessageKind.ATOMIC]
        store_times = [m.issue_time for m in msgs if m.kind is MessageKind.STORE]
        # Atomics are spread through the kernel, not bunched at the end.
        assert min(atomic_times) < max(store_times)

    def test_issue_times_cover_all_ops(self):
        p = P2PStoreParadigm()
        p.attach(2, PCIeProtocol(PCIE_GEN4))
        msgs = p.phase_messages(phase_with_atomics(6, 6), 0.0, 120.0, {})
        assert len(msgs) == 12
        assert max(m.issue_time for m in msgs) <= 120.0


class TestAtomicPagerank:
    @pytest.fixture(scope="class")
    def comparison(self):
        return compare_paradigms(
            PagerankWorkload(n=16_000, use_atomics=True),
            paradigms=("p2p", "finepack", "infinite"),
            config=ExperimentConfig(iterations=2),
        )

    def test_finepack_cannot_help_atomics(self, comparison):
        """Sec. IV-C: atomics are never coalesced, so the atomic port
        sees zero benefit from FinePack."""
        fp = comparison.runs["finepack"]
        p2p = comparison.runs["p2p"]
        assert fp.wire_bytes == p2p.wire_bytes
        assert fp.total_time_ns == pytest.approx(p2p.total_time_ns, rel=0.01)

    def test_trace_contains_atomics_not_stores(self):
        trace = PagerankWorkload(n=8_000, use_atomics=True).generate_trace(4, 1)
        it = trace.iterations[0]
        assert all(p.stores.count == 0 for p in it.phases)
        assert any(p.atomics.count > 0 for p in it.phases)

    def test_atomic_bytes_counted_useful(self, comparison):
        """Atomic targets are in the consumer's accumulator read set."""
        assert comparison.runs["p2p"].bytes.useful > 0


class TestAtomicTraceReplay:
    def test_save_load_roundtrip(self, tmp_path):
        from repro.trace.tracefile import load_trace, save_trace

        trace = PagerankWorkload(n=8_000, use_atomics=True).generate_trace(2, 1)
        save_trace(trace, tmp_path / "t.npz")
        loaded = load_trace(tmp_path / "t.npz")
        orig = trace.iterations[0].phases[0].atomics
        got = loaded.iterations[0].phases[0].atomics
        assert np.array_equal(orig.addrs, got.addrs)
