"""Tests for the GPS learned-subscription model, sliced DMA, and
link error injection."""

import numpy as np
import pytest

from repro.interconnect.link import Link
from repro.interconnect.message import WireMessage
from repro.sim.gps import SubscriptionTable
from repro.sim.paradigms import GPSParadigm, SlicedDMAParadigm, make_paradigm
from repro.sim.runner import ExperimentConfig, compare_paradigms, run_workload
from repro.trace.intervals import IntervalSet
from repro.workloads import ALSWorkload, DiffusionWorkload

BASE = 1 << 34
PAGE = 4096


def arr(values):
    return np.asarray(values, dtype=np.int64)


class TestSubscriptionTable:
    def test_epoch0_broadcasts(self):
        t = SubscriptionTable()
        keep = t.filter_stores(arr([BASE, BASE + PAGE]), arr([8, 8]), arr([1, 1]))
        assert keep.all()

    def test_unread_pages_unsubscribed(self):
        t = SubscriptionTable()
        t.filter_stores(arr([BASE, BASE + PAGE]), arr([8, 8]), arr([1, 1]))
        # The consumer only reads the first page.
        t.learn_epoch({1: IntervalSet.from_ranges([BASE], [64])})
        keep = t.filter_stores(arr([BASE, BASE + PAGE]), arr([8, 8]), arr([1, 1]))
        assert keep.tolist() == [True, False]
        assert t.stats.stores_elided == 1
        assert t.stats.pages_unsubscribed == 1

    def test_read_pages_resubscribe(self):
        t = SubscriptionTable()
        t.filter_stores(arr([BASE + PAGE]), arr([8]), arr([1]))
        t.learn_epoch({1: IntervalSet.empty()})  # page goes dead
        t.filter_stores(arr([BASE + PAGE]), arr([8]), arr([1]))  # elided
        t.learn_epoch({1: IntervalSet.from_ranges([BASE + PAGE], [8])})
        keep = t.filter_stores(arr([BASE + PAGE]), arr([8]), arr([1]))
        assert keep.all()

    def test_per_destination_isolation(self):
        t = SubscriptionTable()
        t.filter_stores(arr([BASE, BASE]), arr([8, 8]), arr([1, 2]))
        t.learn_epoch({1: IntervalSet.empty(), 2: IntervalSet.from_ranges([BASE], [8])})
        keep = t.filter_stores(arr([BASE, BASE]), arr([8, 8]), arr([1, 2]))
        assert keep.tolist() == [False, True]

    def test_page_size_validated(self):
        with pytest.raises(ValueError):
            SubscriptionTable(page_bytes=1000)


class TestLearnedGPS:
    def test_learned_trails_oracle_in_epoch0_only(self):
        """Learned subscription broadcasts epoch 0 and converges to the
        oracle's steady state afterwards."""
        w = ALSWorkload(n_users=2_000, n_items=500, avg_ratings=8)
        cfg = ExperimentConfig(iterations=4)
        trace = w.generate_trace(4, 4, cfg.seed)
        learned = run_workload(w, GPSParadigm(subscription="learned"), cfg, trace=trace)
        oracle = run_workload(w, GPSParadigm(subscription="oracle"), cfg, trace=trace)
        assert learned.wire_bytes >= oracle.wire_bytes

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError):
            GPSParadigm(subscription="psychic")


class TestSlicedDMA:
    def test_registry(self):
        assert isinstance(make_paradigm("dma_sliced"), SlicedDMAParadigm)

    def test_overlap_beats_plain_dma_when_transfer_bound(self):
        """Slicing overlaps most of the transfer with compute.  (The
        win requires the transfer to dominate the per-call software
        overhead -- the paper's point that fine slicing is only worth
        the effort for heavy exchanges.)"""
        from repro.sim.paradigms import BulkDMAParadigm
        from repro.workloads import HITWorkload

        w = HITWorkload(n=64)
        cfg = ExperimentConfig(iterations=2)
        trace = w.generate_trace(4, 2, cfg.seed)
        plain = run_workload(
            w, BulkDMAParadigm(per_call_overhead_ns=500.0), cfg, trace=trace
        )
        sliced = run_workload(
            w,
            SlicedDMAParadigm(slices=4, per_call_overhead_ns=500.0),
            cfg,
            trace=trace,
        )
        assert sliced.total_time_ns < plain.total_time_ns

    def test_slicing_overhead_dominates_tiny_exchanges(self):
        """For halo-sized transfers the extra memcpy calls cost more
        than the overlap saves -- why naive programmers don't slice."""
        w = DiffusionWorkload(n=48)
        cfg = ExperimentConfig(iterations=2)
        trace = w.generate_trace(4, 2, cfg.seed)
        plain = run_workload(w, "dma", cfg, trace=trace)
        sliced = run_workload(w, SlicedDMAParadigm(slices=8), cfg, trace=trace)
        assert sliced.total_time_ns > plain.total_time_ns

    def test_same_bytes_delivered(self):
        w = DiffusionWorkload(n=48)
        cfg = ExperimentConfig(iterations=2)
        trace = w.generate_trace(4, 2, cfg.seed)
        plain = run_workload(w, "dma", cfg, trace=trace)
        sliced = run_workload(w, SlicedDMAParadigm(slices=4), cfg, trace=trace)
        assert sliced.bytes.payload == plain.bytes.payload
        assert sliced.bytes.useful == plain.bytes.useful

    def test_more_calls_more_overhead_bytes_equal(self):
        p = SlicedDMAParadigm(slices=8)
        assert p.slices == 8
        with pytest.raises(ValueError):
            SlicedDMAParadigm(slices=0)

    def test_still_loses_to_finepack_on_irregular(self):
        """The paper's point stands: even expert-overlapped memcpy
        over-transfers what FinePack never sends."""
        from repro.workloads import PagerankWorkload

        w = PagerankWorkload(n=24_000)
        cfg = ExperimentConfig(iterations=2)
        res = compare_paradigms(w, ("finepack",), cfg)
        sliced = run_workload(
            w, SlicedDMAParadigm(), cfg,
            trace=w.generate_trace(4, 2, cfg.seed),
        )
        assert res.runs["finepack"].wire_bytes < sliced.wire_bytes


class TestLinkErrorInjection:
    def _msg(self):
        return WireMessage(src=0, dst=1, payload_bytes=4096, overhead_bytes=32)

    def test_replays_slow_the_link(self):
        clean = Link("clean", 32.0, propagation_ns=0.0)
        dirty = Link("dirty", 32.0, propagation_ns=0.0, error_rate=5e-4)
        t_clean = sum(clean.transmit(self._msg(), 0.0)[1] for _ in range(1))
        for _ in range(50):
            dirty.transmit(self._msg(), 0.0)
        assert dirty.stats.replays > 0
        assert dirty.stats.replay_bytes == dirty.stats.replays * 4128
        assert dirty.busy_until > 50 * (4128 / 32.0)
        assert t_clean <= 4128 / 32.0 + 1e-9

    def test_deterministic_by_name(self):
        a = Link("same", 32.0, error_rate=1e-4)
        b = Link("same", 32.0, error_rate=1e-4)
        for _ in range(100):
            a.transmit(self._msg(), 0.0)
            b.transmit(self._msg(), 0.0)
        assert a.stats.replays == b.stats.replays

    def test_reset_reseeds(self):
        a = Link("x", 32.0, error_rate=1e-4)
        for _ in range(100):
            a.transmit(self._msg(), 0.0)
        first = a.stats.replays
        a.reset()
        for _ in range(100):
            a.transmit(self._msg(), 0.0)
        assert a.stats.replays == first

    def test_error_rate_validated(self):
        with pytest.raises(ValueError):
            Link("bad", 32.0, error_rate=1.5)

    def test_zero_rate_no_rng(self):
        link = Link("clean", 32.0)
        assert link._rng is None
