"""Execution-driven event replay tests."""

import pytest

from repro.gpu.consistency import Scope
from repro.sim.paradigms import FinePackParadigm, P2PStoreParadigm
from repro.sim.replay import EventReplaySession, ReplayError, phase_events
from repro.sim.system import MultiGPUSystem
from repro.trace.events import (
    EventKind,
    FenceEvent,
    LoadEvent,
    MemcpyPeerEvent,
    StoreEvent,
    fence,
    store,
)
from repro.workloads import DiffusionWorkload

BASE = 1 << 34


@pytest.fixture
def session():
    return EventReplaySession(
        MultiGPUSystem.build(n_gpus=2), FinePackParadigm()
    )


class TestEventIntake:
    def test_store_then_fence_produces_packet(self, session):
        session.feed(store(0, BASE, 8, dst=1, time=10.0))
        session.feed(store(0, BASE + 256, 8, dst=1, time=20.0))
        session.feed(fence(0, Scope.SYSTEM, time=30.0))
        report = session.finish()
        assert report.stores == 2
        assert report.fences == 1
        assert report.packets.messages == 1
        assert report.packets.stores_carried == 2

    def test_local_store_no_traffic(self, session):
        session.feed(store(0, 64, 8, dst=0, time=1.0))
        assert session.finish().wire_bytes == 0

    def test_owner_inferred_from_address(self, session):
        ev = StoreEvent(kind=EventKind.STORE, gpu=0, time=1.0, addr=BASE, size=8)
        session.feed(ev)  # dst defaults to -1: inferred as GPU 1
        assert session.finish().packets.messages == 1

    def test_remote_load_flushes_conflicts(self, session):
        session.feed(store(0, BASE, 8, dst=1, time=1.0))
        session.feed(
            LoadEvent(kind=EventKind.LOAD, gpu=0, time=2.0, addr=BASE, size=4, dst=1)
        )
        report = session.finish()
        assert report.loads == 1
        assert report.packets.messages == 1  # load forced the flush

    def test_memcpy_event(self, session):
        session.feed(
            MemcpyPeerEvent(
                kind=EventKind.MEMCPY_PEER,
                gpu=0,
                time=5.0,
                dst=1,
                src_addr=0,
                dst_addr=BASE,
                nbytes=4096,
            )
        )
        report = session.finish()
        assert report.copies == 1
        assert report.wire_payload_bytes == 4096

    def test_kernel_end_is_release(self, session):
        from repro.trace.events import TraceEvent

        session.feed(store(0, BASE, 8, dst=1, time=1.0))
        session.feed(TraceEvent(kind=EventKind.KERNEL_END, gpu=0, time=2.0))
        assert session.report.packets.messages == 1

    def test_finish_flushes(self, session):
        session.feed(store(0, BASE, 8, dst=1, time=1.0))
        assert session.finish().packets.messages == 1

    def test_finish_idempotent(self, session):
        session.feed(store(0, BASE, 8, dst=1, time=1.0))
        a = session.finish()
        b = session.finish()
        assert a is b


class TestContract:
    def test_time_must_be_monotonic_per_gpu(self, session):
        session.feed(store(0, BASE, 8, dst=1, time=10.0))
        with pytest.raises(ReplayError, match="backwards"):
            session.feed(store(0, BASE + 8, 8, dst=1, time=5.0))

    def test_other_gpus_independent_clocks(self, session):
        session.feed(store(0, BASE, 8, dst=1, time=10.0))
        session.feed(store(1, 64, 8, dst=0, time=1.0))  # fine: own clock

    def test_gpu_range_checked(self, session):
        with pytest.raises(ReplayError):
            session.feed(store(7, BASE, 8, dst=1, time=0.0))

    def test_feed_after_finish_rejected(self, session):
        session.finish()
        with pytest.raises(ReplayError):
            session.feed(store(0, BASE, 8, dst=1, time=1.0))

    def test_single_gpu_system_rejected(self):
        with pytest.raises(ValueError):
            EventReplaySession(MultiGPUSystem.build(n_gpus=1), FinePackParadigm())


class TestEquivalenceWithBulkPath:
    def test_same_wire_bytes_as_phase_run(self):
        """Expanding a phase trace to events reproduces the bulk path's
        wire traffic exactly (P2P and FinePack)."""
        trace = DiffusionWorkload(n=24).generate_trace(n_gpus=2, iterations=1)
        phase0, phase1 = trace.iterations[0].phases

        for paradigm_cls in (P2PStoreParadigm, FinePackParadigm):
            system = MultiGPUSystem.build(n_gpus=2)
            bulk = system.run(trace, paradigm_cls())

            session = EventReplaySession(
                MultiGPUSystem.build(n_gpus=2), paradigm_cls()
            )
            for phase in (phase0, phase1):
                for ev in phase_events(phase, 0.0, 1000.0):
                    session.feed(ev)
            report = session.finish()
            assert report.wire_bytes == bulk.wire_bytes
            assert report.packets.messages == bulk.packets.messages
