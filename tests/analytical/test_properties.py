"""Byte-conservation properties of the analytical tier over collective
schedules.

Collective workloads carry a closed-form traffic oracle in their trace
metadata (``total_wire_payload = schedule.total_bytes() * iterations``),
so Hypothesis can sweep the algorithm/rank/size/granularity space and
check the analytical predictor against it with no simulator in the
loop: p2p and DMA ship exactly the schedule's bytes, FinePack never
ships more than p2p (deduplication can only help), and the
useful/redundant/unread byte classification always partitions the
payload.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analytical import predict_metrics
from repro.run import RunSpec
from repro.workloads.collectives import (
    AllGatherWorkload,
    AllToAllWorkload,
    PipelineWorkload,
    RingAllReduceWorkload,
    TreeAllReduceWorkload,
)

WORKLOAD_CLASSES = (
    RingAllReduceWorkload,
    TreeAllReduceWorkload,
    AllGatherWorkload,
    AllToAllWorkload,
    PipelineWorkload,
)

collective_s = st.builds(
    lambda cls, msg, chunk, fine: cls(
        message_bytes=msg, chunk_bytes=chunk, fine_grained=fine
    ),
    st.sampled_from(WORKLOAD_CLASSES),
    st.integers(min_value=256, max_value=16_384),
    st.sampled_from([1024, 4096]),
    st.booleans(),
)
n_gpus_s = st.sampled_from([2, 4, 8])


def _predict(workload, paradigm: str, n_gpus: int):
    trace = workload.generate_trace(n_gpus, iterations=1)
    spec = RunSpec.for_workload(
        workload, paradigm, n_gpus=n_gpus, iterations=1, fidelity="analytical"
    )
    metrics = predict_metrics(spec, trace)
    return trace, metrics


@settings(max_examples=20, deadline=None)
@given(workload=collective_s, n_gpus=n_gpus_s)
def test_p2p_ships_exactly_the_schedule_bytes(workload, n_gpus):
    trace, metrics = _predict(workload, "p2p", n_gpus)
    assert metrics.bytes.payload == trace.metadata["total_wire_payload"]


@settings(max_examples=20, deadline=None)
@given(workload=collective_s, n_gpus=n_gpus_s)
def test_dma_ships_exactly_the_schedule_bytes(workload, n_gpus):
    trace, metrics = _predict(workload, "dma", n_gpus)
    assert metrics.bytes.payload == trace.metadata["total_wire_payload"]


@settings(max_examples=20, deadline=None)
@given(workload=collective_s, n_gpus=n_gpus_s)
def test_finepack_never_ships_more_than_p2p(workload, n_gpus):
    trace, fp = _predict(workload, "finepack", n_gpus)
    _, p2p = _predict(workload, "p2p", n_gpus)
    assert 0 <= fp.bytes.payload <= p2p.bytes.payload
    # Packing only batches stores; it cannot manufacture or lose
    # delivered data, so the useful bytes agree with p2p exactly.
    assert fp.bytes.useful == p2p.bytes.useful


@settings(max_examples=20, deadline=None)
@given(
    workload=collective_s,
    n_gpus=n_gpus_s,
    paradigm=st.sampled_from(["p2p", "dma", "finepack", "wc"]),
)
def test_byte_categories_partition_the_payload(workload, n_gpus, paradigm):
    _, metrics = _predict(workload, paradigm, n_gpus)
    b = metrics.bytes
    assert b.useful >= 0
    assert b.wasted_redundant >= 0
    assert b.wasted_unread >= 0
    assert b.overhead >= 0
    assert b.payload == pytest.approx(
        b.useful + b.wasted_redundant + b.wasted_unread
    )
    assert b.useful <= b.payload + 1e-9
    assert 0.0 <= metrics.goodput <= 1.0
    assert metrics.fidelity == "analytical"
