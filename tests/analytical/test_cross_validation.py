"""Cross-validation of the analytical predictor against the DES.

A small slice of the calibration grid (`tools/calibrate_analytical.py`
runs the full 39-cell version and gates the medians in CI): for each
cell, replay the trace through the discrete-event simulator and predict
the same spec analytically, then hold the headline metrics to the
documented error budget.  Useful bytes are exact by construction --
both tiers classify the identical delivered-interval algebra -- so any
drift there is a bug, not model error.
"""

from __future__ import annotations

import pytest

from repro.run import RunContext, RunSpec

BUDGET = 0.10  # documented per-cell budget for these metrics
CELLS = [
    (workload, paradigm)
    for workload in ("jacobi", "diffusion", "allgather")
    for paradigm in ("p2p", "dma", "finepack")
]


def _rel_err(predicted: float, measured: float) -> float:
    if measured == 0:
        return 0.0 if predicted == 0 else float("inf")
    return abs(predicted - measured) / measured


@pytest.fixture(scope="module")
def grid():
    out = {}
    for workload, paradigm in CELLS:
        spec = RunSpec(workload=workload, paradigm=paradigm, iterations=2)
        des = RunContext(spec).run()
        ana = RunContext(spec.with_options(fidelity="analytical")).run()
        out[(workload, paradigm)] = (des, ana)
    return out


@pytest.mark.parametrize("cell", CELLS, ids=lambda c: f"{c[0]}-{c[1]}")
def test_wire_bytes_within_budget(grid, cell):
    des, ana = grid[cell]
    assert _rel_err(ana.wire_bytes, des.wire_bytes) <= BUDGET


@pytest.mark.parametrize("cell", CELLS, ids=lambda c: f"{c[0]}-{c[1]}")
def test_payload_within_budget(grid, cell):
    des, ana = grid[cell]
    assert _rel_err(ana.bytes.payload, des.bytes.payload) <= BUDGET


@pytest.mark.parametrize("cell", CELLS, ids=lambda c: f"{c[0]}-{c[1]}")
def test_goodput_within_budget(grid, cell):
    des, ana = grid[cell]
    assert _rel_err(ana.goodput, des.goodput) <= BUDGET


@pytest.mark.parametrize("cell", CELLS, ids=lambda c: f"{c[0]}-{c[1]}")
def test_useful_bytes_exact(grid, cell):
    des, ana = grid[cell]
    assert ana.bytes.useful == pytest.approx(des.bytes.useful)


@pytest.mark.parametrize("cell", CELLS, ids=lambda c: f"{c[0]}-{c[1]}")
def test_fidelity_labels(grid, cell):
    des, ana = grid[cell]
    assert des.fidelity == "des"
    assert ana.fidelity == "analytical"
