"""Unit tests for the per-paradigm cost terms against hand-computed
micro-traces (derivations in ``docs/analytical.md``)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analytical.protocol import dma_cost, finepack_cost, p2p_cost, wc_cost
from repro.analytical.stats import (
    DistanceProfile,
    DstOps,
    _build_pack_profile,
    _prev_producer_distance,
    line_geometry,
    overlap_count,
    sector_expand,
)
from repro.core.config import FinePackConfig
from repro.interconnect.message import MessageKind
from repro.interconnect.pcie import DW_BYTES
from repro.trace.intervals import IntervalSet
from repro.trace.stream import DMATransfer


def ops(addr_size_pairs) -> DstOps:
    addrs = np.asarray([a for a, _ in addr_size_pairs], dtype=np.int64)
    sizes = np.asarray([s for _, s in addr_size_pairs], dtype=np.int64)
    return DstOps(addrs, sizes)


class TestP2P:
    def test_one_tlp_per_store_with_dw_padding(self, protocol):
        # Two stores of 4 and 7 bytes: payload 11, DW padding 1 byte on
        # the 7 B store, one TLP header each.
        st = ops([(0, 4), (100, 7)])
        cost = p2p_cost(protocol, st, None)
        assert cost.payload == 11
        assert cost.overhead == 2 * protocol.per_tlp_overhead + 1
        assert cost.messages == 2
        assert cost.stores_carried == 2
        assert cost.by_kind == {MessageKind.STORE: 2}
        assert cost.delivered.total_bytes == 11

    def test_duplicate_stores_ship_twice_but_deliver_once(self, protocol):
        st = ops([(0, 8), (0, 8)])
        cost = p2p_cost(protocol, st, None)
        assert cost.payload == 16
        assert cost.delivered.total_bytes == 8  # footprint collapses

    def test_atomics_one_tlp_each(self, protocol):
        at = ops([(0, 4), (64, 8)])
        cost = p2p_cost(protocol, None, at)
        assert cost.payload == 12
        assert cost.overhead == 2 * protocol.per_tlp_overhead
        assert cost.by_kind == {MessageKind.ATOMIC: 2}


class TestWC:
    def test_one_combined_store_per_line_run(self, protocol):
        # Footprint [0, 8) + [256, 264): two runs in 128 B lines, no
        # DW padding (both runs are DW multiples).
        st = ops([(0, 4), (4, 4), (256, 8)])
        cost = wc_cost(protocol, st, None)
        assert cost.payload == 16
        assert cost.overhead == 2 * protocol.per_tlp_overhead
        assert cost.messages == 2
        assert cost.by_kind == {MessageKind.COMBINED_STORE: 2}

    def test_run_spanning_a_line_boundary_splits(self, protocol):
        # [120, 136) crosses the 128 B boundary: two runs.
        st = ops([(120, 16)])
        cost = wc_cost(protocol, st, None)
        assert cost.messages == 2
        assert cost.payload == 16

    def test_sector_expansion_overtransfers(self, protocol):
        # One 4 B store in a 32 B sector ships the whole sector.
        st = ops([(100, 4)])
        cost = wc_cost(protocol, st, None, sector_bytes=32)
        assert cost.payload == 32
        assert cost.delivered.total_bytes == 32


class TestFinePack:
    def test_single_epoch_is_exact(self, protocol, config):
        # 32 contiguous 4 B stores: one 128 B footprint run, well under
        # the 64-entry and 4 KB payload budgets -> exactly one packet
        # with one sub-header.
        st = ops([(i * 4, 4) for i in range(32)])
        cost = finepack_cost(config, protocol, st, None)
        assert cost.messages == 1
        assert cost.payload == 128
        subs = 1
        pad = (-(128 + config.subheader_bytes * subs)) % DW_BYTES
        assert cost.overhead == (
            protocol.per_tlp_overhead + config.subheader_bytes * subs + pad
        )
        assert cost.packed_stores == 32

    def test_window_transitions_force_flushes(self, protocol):
        # Sub-header of 2 B -> 64 B window.  Alternating between two
        # windows forces a flush per transition: 4 segments = 4 packets.
        config = FinePackConfig(subheader_bytes=2)
        st = ops([(0, 4), (256, 4), (4, 4), (260, 4)])
        cost = finepack_cost(config, protocol, st, None)
        assert cost.messages == 4

    def test_payload_capacity_forces_flushes(self, protocol, config):
        # 8 KB of unique bytes cannot fit one 4 KB payload: >= 2 packets.
        st = ops([(i * 64, 64) for i in range(128)])
        cost = finepack_cost(config, protocol, st, None)
        assert cost.messages >= 2
        assert cost.payload == 8192  # no duplicates to re-ship

    def test_entry_capacity_forces_flushes(self, protocol):
        # 128 distinct lines through 16 queue entries, each line
        # revisited from far away: allocations >> entries -> many epochs.
        config = FinePackConfig(queue_entries_per_partition=16)
        st = ops([(i * 128, 4) for i in range(128)])
        cost = finepack_cost(config, protocol, st, None)
        assert cost.messages >= 128 // 16

    def test_atomic_conflicts_add_epochs(self, protocol, config):
        st = ops([(i * 4, 4) for i in range(32)])
        base = finepack_cost(config, protocol, st, None)
        at = ops([(0, 4)])  # overlaps buffered store bytes
        conflicted = finepack_cost(config, protocol, st, at)
        # One extra flush epoch plus the atomic's own TLP.
        assert conflicted.by_kind[MessageKind.FINEPACK] == (
            base.by_kind[MessageKind.FINEPACK] + 1
        )
        assert conflicted.by_kind[MessageKind.ATOMIC] == 1


class TestDMA:
    def test_matches_bulk_transfer_cost(self, protocol):
        tr = DMATransfer(dst=1, dst_addr=0, nbytes=10_000)
        cost = dma_cost(protocol, [tr])
        payload, overhead = protocol.bulk_transfer_cost(10_000)
        assert (cost.payload, cost.overhead) == (payload, overhead)
        assert cost.delivered.total_bytes == 10_000

    def test_slicing_pays_extra_tail_tlps(self, protocol):
        tr = DMATransfer(dst=1, dst_addr=0, nbytes=10_000)
        whole = dma_cost(protocol, [tr])
        sliced = dma_cost(protocol, [tr], slices=4)
        assert sliced.payload == whole.payload
        assert sliced.overhead >= whole.overhead
        assert sliced.messages >= whole.messages


class TestDistanceProfile:
    """O(log n) evaluations against brute-force expectations."""

    d = np.asarray([1, 2, 5, 10, 40], dtype=np.int64)

    @pytest.mark.parametrize("span", [0.5, 1.0, 3.0, 7.5, 100.0])
    def test_crossings_matches_brute_force(self, span):
        prof = DistanceProfile.build(self.d, n_first=2)
        expected = 2 + sum(min(1.0, di / span) for di in self.d)
        assert prof.crossings(span) == pytest.approx(expected)

    @pytest.mark.parametrize("span", [0.5, 1.0, 3.0, 7.5, 100.0])
    def test_merges_matches_brute_force(self, span):
        prof = DistanceProfile.build(self.d)
        expected = sum(max(0.0, 1.0 - di / span) for di in self.d)
        assert prof.merges(span) == pytest.approx(expected)

    @pytest.mark.parametrize("span", [0.5, 3.0, 100.0])
    def test_weighted_crossing_fraction(self, span):
        w = np.asarray([4, 8, 4, 16, 8], dtype=np.int64)
        prof = DistanceProfile.build(self.d, weights=w)
        num = sum(wi * min(1.0, di / span) for di, wi in zip(self.d, w))
        assert prof.weighted_crossing_fraction(span) == pytest.approx(
            num / w.sum()
        )


class TestPackProfile:
    def test_contiguous_stream_merges_fully(self):
        # 4 B stores walking one 128 B line: 1 allocation, every later
        # op merges at distance 1, no duplicates.
        addrs = np.arange(0, 128, 4, dtype=np.int64)
        sizes = np.full(32, 4, dtype=np.int64)
        prof = _build_pack_profile(addrs, sizes, 128)
        assert prof.pieces == 32
        assert prof.alloc.n_first == 1
        assert prof.merge.d_sorted.size == 31
        assert (prof.merge.d_sorted == 1).all()
        assert prof.dup.d_sorted.size == 0

    def test_duplicate_writes_recorded_with_weights(self):
        addrs = np.asarray([0, 512, 0], dtype=np.int64)
        sizes = np.asarray([8, 4, 8], dtype=np.int64)
        prof = _build_pack_profile(addrs, sizes, 128)
        assert prof.dup.d_sorted.tolist() == [2]
        assert prof.dup.cum_w[-1] == 8  # size-weighted

    def test_adjacency_across_line_boundary_never_merges(self):
        # Second store starts exactly on a line boundary: different
        # queue entry, so no merge distance is recorded.
        addrs = np.asarray([120, 128], dtype=np.int64)
        sizes = np.asarray([8, 8], dtype=np.int64)
        prof = _build_pack_profile(addrs, sizes, 128)
        assert prof.merge.d_sorted.size == 0

    def test_prev_producer_distance_reference(self):
        # The O(n log n) reference sweep the d == 1 fast path was
        # derived from: latest j < i with p_keys[j] == q_keys[i].
        p = np.asarray([10, 20, 10, 30], dtype=np.int64)
        q = np.asarray([99, 10, 20, 10], dtype=np.int64)
        d = _prev_producer_distance(q, p)
        assert d[0] > 1 << 60  # no producer of 99
        assert d[1] == 1  # q[1]=10 <- p[0]
        assert d[2] == 1  # q[2]=20 <- p[1]
        assert d[3] == 1  # q[3]=10 <- p[2] (latest, not p[0])


class TestStatsHelpers:
    def test_line_geometry_runs_lines_pad(self):
        fp = IntervalSet.from_ranges([0, 250], [8, 10])
        geo = line_geometry(fp, 128)
        # [0,8) is one run; [250,260) crosses the 256 boundary: 2 runs.
        assert geo.runs == 3
        assert geo.lines == 3
        # run lengths 8, 6, 4 -> DW pad 0 + 2 + 0.
        assert geo.pad_bytes == 2

    def test_sector_expand_rounds_out(self):
        fp = IntervalSet.from_ranges([100], [4])
        assert sector_expand(fp, 32).total_bytes == 32

    def test_overlap_count(self):
        fp = IntervalSet.from_ranges([0, 1000], [100, 100])
        addrs = np.asarray([50, 500, 1099, 1100], dtype=np.int64)
        sizes = np.asarray([10, 10, 1, 50], dtype=np.int64)
        assert overlap_count(addrs, sizes, fp) == 2
