"""Plumbing of ``fidelity="analytical"`` through spec, context,
executor, and CLI."""

from __future__ import annotations

import io
import pickle

import pytest

from repro.cli import main
from repro.run import RunContext, RunSpec, labeled_sweep, refine_top_k
from repro.sim.metrics import RunMetrics


def run_cli(*argv) -> str:
    out = io.StringIO()
    assert main(list(argv), out=out) == 0
    return out.getvalue()


PARTITION_SCENARIO = (
    '{"events": [{"at_ms": 0.0, "kind": "link_down", "src": 0, "dst": 1}]}'
)


class TestSpec:
    def test_rejects_unknown_fidelity(self):
        with pytest.raises(ValueError, match="fidelity"):
            RunSpec(workload="jacobi", fidelity="approximate")

    def test_rejects_analytical_with_scenario(self):
        with pytest.raises(ValueError, match="event-ordered"):
            RunSpec(
                workload="jacobi",
                scenario=PARTITION_SCENARIO,
                fidelity="analytical",
            )

    def test_key_distinguishes_fidelity(self):
        des = RunSpec(workload="jacobi")
        ana = des.with_options(fidelity="analytical")
        assert des.key() != ana.key()
        # ...but the trace is fidelity-independent: same workload
        # events feed both tiers, so cached traces are shared.
        assert des.trace_key() == ana.trace_key()

    def test_baseline_inherits_fidelity(self):
        ana = RunSpec(workload="jacobi", fidelity="analytical")
        assert ana.single_gpu_baseline().fidelity == "analytical"


class TestContext:
    def test_analytical_dispatch_builds_no_system(self):
        spec = RunSpec(
            workload="jacobi", paradigm="p2p", n_gpus=2, iterations=1,
            fidelity="analytical",
        )
        ctx = RunContext(spec)
        metrics = ctx.run()
        assert metrics.fidelity == "analytical"
        assert ctx._system is None  # no event loop was constructed

    def test_tracer_rejected(self):
        spec = RunSpec(
            workload="jacobi", n_gpus=2, iterations=1, fidelity="analytical"
        )
        with pytest.raises(ValueError, match="discrete events"):
            RunContext(spec, tracer=object()).run()


class TestMetricsAttribute:
    def test_instance_override_survives_pickle(self):
        spec = RunSpec(
            workload="jacobi", paradigm="p2p", n_gpus=2, iterations=1,
            fidelity="analytical",
        )
        metrics = RunContext(spec).run()
        clone = pickle.loads(pickle.dumps(metrics))
        assert clone.fidelity == "analytical"

    def test_class_default_is_des(self):
        assert RunMetrics.fidelity == "des"

    def test_summary_tags_non_default_fidelity_only(self):
        spec = RunSpec(workload="jacobi", n_gpus=2, iterations=1)
        des = RunContext(spec).run()
        ana = RunContext(spec.with_options(fidelity="analytical")).run()
        assert "fidelity" not in des.summary()
        assert ana.summary()["fidelity"] == "analytical"


class TestRefineTopK:
    def test_top_point_refined_to_des(self):
        labeled = {
            p: RunSpec(
                workload="jacobi", paradigm=p, n_gpus=2, iterations=1,
                fidelity="analytical",
            )
            for p in ("p2p", "finepack")
        }
        sweep = labeled_sweep(labeled)
        assert all(p.metrics.fidelity == "analytical" for p in sweep.result.points)
        refined_run, refined_labels = refine_top_k(sweep, labeled, 1)
        assert len(refined_labels) == 1
        assert len(refined_run.result.points) == len(sweep.result.points)
        by_label = {p.label: p for p in refined_run.result.points}
        for label, point in by_label.items():
            expected = "des" if label in refined_labels else "analytical"
            assert point.metrics.fidelity == expected
        # The refined baseline is a DES run too, so speedups compare
        # like against like for the winners.
        assert refined_run.baseline.spec.fidelity == "des"

    def test_k_zero_is_identity(self):
        labeled = {
            "p2p": RunSpec(
                workload="jacobi", paradigm="p2p", n_gpus=2, iterations=1,
                fidelity="analytical",
            )
        }
        sweep = labeled_sweep(labeled)
        same, refined = refine_top_k(sweep, labeled, 0)
        assert same is sweep
        assert refined == set()


class TestCLI:
    def test_run_reports_fidelity(self):
        text = run_cli(
            "run", "jacobi", "finepack", "--gpus", "2", "--iterations", "1",
            "--fidelity", "analytical",
        )
        assert "analytical" in text

    def test_sweep_refine_labels_rows(self):
        text = run_cli(
            "sweep", "jacobi", "paradigm", "--gpus", "2", "--iterations", "1",
            "--fidelity", "analytical", "--refine-top", "1",
        )
        assert "des (refined)" in text
        assert "analytical" in text

    def test_compare_has_fidelity_column(self):
        text = run_cli(
            "compare", "jacobi", "--gpus", "2", "--iterations", "1",
            "--paradigms", "p2p", "finepack", "--fidelity", "analytical",
        )
        assert "fidelity" in text
        assert "analytical" in text

    def test_refine_requires_analytical(self):
        with pytest.raises(SystemExit):
            run_cli(
                "sweep", "jacobi", "paradigm", "--gpus", "2",
                "--iterations", "1", "--refine-top", "1",
            )

    def test_trace_out_requires_des(self, tmp_path):
        with pytest.raises(SystemExit):
            run_cli(
                "run", "jacobi", "finepack", "--gpus", "2",
                "--iterations", "1", "--fidelity", "analytical",
                "--trace-out", str(tmp_path / "t.json"),
            )

    def test_error_rate_requires_des(self):
        with pytest.raises(SystemExit):
            run_cli(
                "run", "jacobi", "finepack", "--gpus", "2",
                "--iterations", "1", "--fidelity", "analytical",
                "--error-rate", "0.1",
            )

    def test_chaos_requires_des(self):
        with pytest.raises(SystemExit):
            run_cli(
                "chaos", "jacobi", "--gpus", "2", "--iterations", "1",
                "--fidelity", "analytical",
            )
