#!/usr/bin/env python3
"""Record a traced run and export it for Chrome/Perfetto.

Attaches a :class:`repro.obs.Tracer` to one simulation, prints the
per-link activity table, and writes two files:

* ``trace.json``  -- Chrome ``trace_event`` format; open it at
  ``chrome://tracing`` or https://ui.perfetto.dev to see kernels,
  barriers, link occupancy, remote-write-queue flushes and counter
  tracks on a common timeline.
* ``trace.jsonl`` -- the native event stream, one JSON object per
  line, for ``jq``/pandas analysis or offline invariant replay.

    python examples/trace_export.py [workload] [paradigm]

(defaults: jacobi under finepack).  The same exports are available from
the CLI as ``python -m repro run jacobi finepack --trace-out trace.json``.
"""

import sys

from repro.analysis import format_link_timeline
from repro.obs import InvariantChecker, Tracer, read_jsonl, write_chrome_trace, write_jsonl
from repro.run import RunContext, RunSpec
from repro.sim.paradigms import PARADIGMS
from repro.workloads import WORKLOADS


def main() -> None:
    workload = sys.argv[1] if len(sys.argv) > 1 else "jacobi"
    paradigm = sys.argv[2] if len(sys.argv) > 2 else "finepack"
    if workload not in WORKLOADS:
        raise SystemExit(f"unknown workload {workload!r}; pick from {sorted(WORKLOADS)}")
    if paradigm not in PARADIGMS:
        raise SystemExit(f"unknown paradigm {paradigm!r}; pick from {sorted(PARADIGMS)}")

    # The tracer records typed events and checks conservation invariants
    # online (byte conservation, link exclusivity, empty queues at
    # barriers); a violation raises InvariantViolation immediately.
    # (Legacy form: run_workload(w, paradigm, config, tracer=tracer) --
    # see the migration table in docs/architecture.md.)
    tracer = Tracer()
    spec = RunSpec(
        workload=workload, paradigm=paradigm, n_gpus=4, iterations=2
    )
    metrics = RunContext(spec, tracer=tracer).run()
    print(f"{workload}/{paradigm}: {metrics.total_time_ns / 1e6:.3f} ms, "
          f"{len(tracer.events)} events recorded")
    print(format_link_timeline(tracer))

    write_chrome_trace("trace.json", {f"{workload}/{paradigm}": tracer})
    write_jsonl("trace.jsonl", tracer)
    print("wrote trace.json (chrome://tracing) and trace.jsonl")

    # The JSONL stream round-trips into typed events, so a recorded run
    # can be re-checked offline -- e.g. in CI, against a stream from a
    # modified simulator build.
    checker = InvariantChecker.replay(read_jsonl("trace.jsonl"))
    print(f"offline replay: {checker.events_checked} events, "
          f"{checker.barriers_checked} barriers, all invariants hold")


if __name__ == "__main__":
    main()
