#!/usr/bin/env python3
"""FinePack hardware walkthrough: follow stores through the pipeline.

Drives a handful of remote stores through each FinePack component and
prints what the hardware does at every step:

  remote write queue  ->  packetizer  ->  wire bytes  ->  de-packetizer

This exercises the same classes the simulator uses, at human scale.

    python examples/packet_walkthrough.py
"""

from repro.core import (
    Depacketizer,
    FinePackConfig,
    FlushReason,
    Packetizer,
    QueuePartition,
)
from repro.interconnect import PCIE_GEN4, PCIeProtocol


def main() -> None:
    config = FinePackConfig()  # Table III: 5 B sub-headers, 1 GB window
    protocol = PCIeProtocol(PCIE_GEN4)
    partition = QueuePartition(config, dst=1)

    base = 1 << 34  # somewhere in GPU 1's memory
    stores = [
        (base + 0x000, 8, b"AAAAAAAA"),
        (base + 0x008, 8, b"BBBBBBBB"),   # adjacent: joins A's run
        (base + 0x140, 4, b"CCCC"),       # different cache line
        (base + 0x000, 8, b"DDDDDDDD"),   # overwrites A in place
        (base + 0x9000, 16, b"E" * 16),   # far away, same 1 GB window
    ]

    print(f"FinePack config: {config.subheader_bytes} B sub-headers, "
          f"{config.offset_bits}-bit offsets, {config.window_bytes >> 20} MB+ window\n")

    print("--- remote write queue ---")
    for addr, size, data in stores:
        flushed = partition.insert(addr, size, data)
        status = "flushed!" if flushed else (
            f"buffered (entries={partition.entry_count}, "
            f"available payload={partition.available_payload} B)"
        )
        print(f"store {size:2d} B @ +{addr - base:#07x}: {status}")
    print(f"queue hits from same-address overwrite: {partition.stats.store_hits}")

    print("\n--- kernel-end release: flush + packetize ---")
    window = partition.flush(FlushReason.RELEASE)
    packetizer = Packetizer(config, protocol)
    packet = packetizer.packetize(window)
    print(f"base address: {packet.base_addr:#x}")
    for sub in packet.subs:
        print(f"  sub-transaction: offset +{sub.offset:#07x}, {sub.length} B "
              f"-> {sub.data!r}")
    print(f"stores absorbed: {packet.stores_absorbed}")

    payload, overhead = packet.wire_cost(config, protocol)
    single = sum(sum(protocol.store_wire_cost(s)) for _, s, _ in stores)
    print(f"\n--- on the wire ---")
    print(f"FinePack: {payload} B payload + {overhead} B overhead "
          f"= {payload + overhead} B")
    print(f"raw P2P stores would cost {single} B "
          f"({single / (payload + overhead):.2f}x more)")

    print("\n--- de-packetizer at the destination ---")
    raw = packet.encode_payload(config)
    depack = Depacketizer(config)
    for s in depack.decode_wire_payload(packet.base_addr, raw):
        print(f"  write {s.size:2d} B @ +{s.addr - base:#07x}: {s.data!r}")
    print("\nNote: the first store's 'AAAAAAAA' never crossed the wire -- "
          "it was overwritten in the queue (weak memory model, Fig. 5).")


if __name__ == "__main__":
    main()
