#!/usr/bin/env python3
"""Execution-driven integration: couple live code to the simulator.

The paper's NVAS substrate is trace- *and execution*-driven.  This
example shows the execution-driven front end: an actual (toy) producer
/consumer program runs in Python, and every remote store / fence it
performs is fed to :class:`repro.sim.EventReplaySession` as it happens
-- no trace file in between.

The program is a two-GPU pipeline: GPU 0 runs a sparse update kernel
whose writes stream to GPU 1's replica, with a fence per tile.  We run
it twice -- raw P2P stores vs FinePack -- and compare the wire traffic
the *same execution* produced.

    python examples/event_driven_integration.py
"""

import numpy as np

from repro.analysis import format_table
from repro.gpu.consistency import Scope
from repro.sim import EventReplaySession, MultiGPUSystem
from repro.sim.paradigms import FinePackParadigm, P2PStoreParadigm
from repro.trace.events import fence, store

BASE = 1 << 34  # GPU 1's aperture


def run_program(session: EventReplaySession) -> None:
    """The 'application': sparse tile updates with per-tile fences."""
    rng = np.random.default_rng(42)
    t = 0.0
    for tile in range(20):
        tile_base = BASE + tile * 65_536
        # Each tile updates ~100 scattered 8-byte entries.
        offsets = np.unique(rng.integers(0, 8_000, 100)) * 8
        for off in offsets:
            t += 12.0  # the program's own pacing
            session.feed(store(gpu=0, addr=int(tile_base + off), size=8, dst=1, time=t))
        t += 500.0
        session.feed(fence(gpu=0, scope=Scope.SYSTEM, time=t))


def main() -> None:
    rows = []
    reports = {}
    for paradigm in (P2PStoreParadigm(), FinePackParadigm()):
        session = EventReplaySession(MultiGPUSystem.build(n_gpus=2), paradigm)
        run_program(session)
        report = session.finish()
        reports[paradigm.name] = report
        rows.append(
            [
                paradigm.name,
                report.stores,
                report.packets.messages,
                report.wire_bytes / 1e3,
                report.last_delivery_ns / 1e3,
            ]
        )
    print(
        format_table(
            "same execution, two interconnect designs",
            ["paradigm", "stores", "packets", "wire_kB", "last delivery us"],
            rows,
            float_fmt="{:.1f}",
        )
    )
    ratio = reports["p2p"].wire_bytes / reports["finepack"].wire_bytes
    print(f"\nFinePack moved {ratio:.2f}x less data for the identical "
          f"event stream, transparently.")


if __name__ == "__main__":
    main()
