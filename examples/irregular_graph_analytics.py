#!/usr/bin/env python3
"""Irregular graph analytics: why fine-grained stores hurt, and how
FinePack fixes them.

Walks through the paper's motivation on PageRank and SSSP:

1. the store-size distribution leaving the L1 (Figure 4),
2. the byte breakdown on the wire under each paradigm (Figure 10),
3. coalescing statistics (Figure 11),
4. the resulting strong-scaling speedups (Figure 9).

    python examples/irregular_graph_analytics.py
"""

# compare_paradigms/ExperimentConfig are maintained shims over the run
# layer (RunSpec + execute_grid); see docs/architecture.md, "Migration
# from the legacy entry points".
from repro import ExperimentConfig, compare_paradigms
from repro.analysis import breakdown_rows, format_table
from repro.gpu import size_histogram
from repro.workloads import PagerankWorkload, SSSPWorkload


def main() -> None:
    config = ExperimentConfig(n_gpus=4, iterations=3)
    for workload in (PagerankWorkload(), SSSPWorkload()):
        trace = workload.generate_trace(
            n_gpus=config.n_gpus, iterations=config.iterations, seed=config.seed
        )
        hist = size_histogram(trace.all_store_sizes())
        print(
            format_table(
                f"{workload.name}: remote-store sizes leaving the L1 (Fig. 4)",
                ["bucket", "fraction"],
                [[k, v] for k, v in hist.items()],
            )
        )
        small = sum(v for k, v in hist.items() if k in ("<=4B", "<=8B", "<=16B", "<=32B"))
        print(f"  -> {small:.0%} of transfers carry <= 32 B payloads\n")

        result = compare_paradigms(
            workload,
            paradigms=("p2p", "dma", "finepack", "infinite"),
            config=config,
        )
        print(
            format_table(
                f"{workload.name}: wire bytes normalized to bulk DMA (Fig. 10)",
                ["workload", "paradigm", "useful", "overhead", "wasted", "total"],
                breakdown_rows(result),
            )
        )
        fp = result.runs["finepack"]
        print(
            f"\n  FinePack packs {fp.packets.mean_stores_per_packet:.1f} "
            f"stores per transaction on average (Fig. 11)\n"
        )
        print(
            format_table(
                f"{workload.name}: 4-GPU speedups (Fig. 9)",
                ["paradigm", "speedup"],
                [[p, result.speedup(p)] for p in result.runs],
                float_fmt="{:.2f}",
            )
        )
        print("\n" + "=" * 60 + "\n")


if __name__ == "__main__":
    main()
