#!/usr/bin/env python3
"""Design-space exploration: sub-header size and link bandwidth.

Reproduces the paper's two sensitivity studies on one workload:

* Figure 12 -- sweep the FinePack sub-transaction header from 2 to 6
  bytes (64 B to 256 GB aggregation windows) and watch the sweet spot
  appear at 4-5 bytes.
* Figure 13 -- sweep the interconnect from PCIe 3.0 to the projected
  PCIe 6.0 and watch FinePack stay ahead of both baselines at every
  bandwidth step.

    python examples/design_space_exploration.py
"""

from repro import ExperimentConfig, FinePackConfig, MultiGPUSystem
from repro.analysis import format_table
from repro.interconnect import GENERATIONS
from repro.sim.paradigms import FinePackParadigm, make_paradigm
from repro.workloads import SSSPWorkload


def main() -> None:
    workload = SSSPWorkload()
    trace = workload.generate_trace(n_gpus=4, iterations=3, seed=7)
    single = workload.generate_trace(n_gpus=1, iterations=3, seed=7)
    t1 = (
        MultiGPUSystem.build(n_gpus=1)
        .run(single, make_paradigm("infinite"))
        .total_time_ns
    )

    rows = []
    for b in (2, 3, 4, 5, 6):
        cfg = FinePackConfig(subheader_bytes=b)
        system = MultiGPUSystem.build(n_gpus=4, finepack_config=cfg)
        m = system.run(trace, FinePackParadigm(cfg))
        rows.append(
            [
                b,
                f"{cfg.window_bytes:,} B",
                t1 / m.total_time_ns,
                m.wire_bytes / 1e6,
                m.packets.mean_stores_per_packet,
            ]
        )
    print(
        format_table(
            f"{workload.name}: sub-header size sweep (Fig. 12)",
            ["subheader_B", "window", "speedup", "wire_MB", "stores/pkt"],
            rows,
            float_fmt="{:.2f}",
        )
    )

    print()
    rows = []
    for gen in sorted(GENERATIONS):
        generation = GENERATIONS[gen]
        per_paradigm = []
        for paradigm in ("p2p", "dma", "finepack"):
            system = MultiGPUSystem.build(n_gpus=4, generation=generation)
            m = system.run(trace, make_paradigm(paradigm))
            per_paradigm.append(t1 / m.total_time_ns)
        rows.append([generation.name, *per_paradigm])
    print(
        format_table(
            f"{workload.name}: interconnect bandwidth sweep (Fig. 13)",
            ["link", "p2p", "dma", "finepack"],
            rows,
            float_fmt="{:.2f}",
        )
    )
    print("\nFinePack leads at every bandwidth step -- more link bandwidth "
          "narrows but never closes the gap (paper Sec. VI-A).")


if __name__ == "__main__":
    main()
