#!/usr/bin/env python3
"""Reproduce the paper's headline evaluation in one run.

Runs the full application suite under the four Figure 9 paradigms,
prints the speedup matrix, byte breakdown summary, and coalescing
statistics, and writes a consolidated REPORT.md next to this script.

This is the expensive, everything-at-once version of what the
per-figure benches do; expect a couple of minutes.

    python examples/reproduce_paper.py [--fast]
"""

import sys
import time
from pathlib import Path

from repro.analysis import (
    breakdown_rows,
    data_reduction_factors,
    format_speedup_table,
    format_table,
)
# compare_paradigms/ExperimentConfig are maintained shims over the run
# layer (RunSpec + execute_grid); see docs/architecture.md, "Migration
# from the legacy entry points".
from repro.sim.runner import ExperimentConfig, compare_paradigms, geomean
from repro.workloads import default_suite, small_suite

PARADIGMS = ("p2p", "dma", "finepack", "infinite")


def main() -> None:
    fast = "--fast" in sys.argv
    suite = small_suite() if fast else default_suite()
    config = ExperimentConfig(iterations=2 if fast else 3)

    sections = []
    speedups: dict[str, dict[str, float]] = {}
    reductions = []
    coalescing = []
    breakdown = []
    t0 = time.time()
    for workload in suite:
        print(f"running {workload.name} ...", flush=True)
        result = compare_paradigms(workload, PARADIGMS, config)
        speedups[workload.name] = {p: result.speedup(p) for p in PARADIGMS}
        reductions.append(data_reduction_factors(result))
        coalescing.append(
            [workload.name, result.runs["finepack"].packets.mean_stores_per_packet]
        )
        breakdown.extend(breakdown_rows(result))
    elapsed = time.time() - t0

    sections.append(format_speedup_table("Figure 9: 4-GPU speedups", speedups))
    geo = {p: geomean([s[p] for s in speedups.values()]) for p in PARADIGMS}
    sections.append(
        format_table(
            "geomeans vs paper",
            ["paradigm", "measured", "paper"],
            [
                ["p2p", geo["p2p"], "~0.8"],
                ["dma", geo["dma"], "~1.7"],
                ["finepack", geo["finepack"], "~2.4"],
                ["infinite", geo["infinite"], "~3.4"],
            ],
            float_fmt="{:.2f}",
        )
    )
    sections.append(
        format_table(
            "FinePack data reduction (geomean; paper: 2.7x/1.3x)",
            ["vs p2p", "vs dma"],
            [[
                geomean([r["p2p"] for r in reductions]),
                geomean([r["dma"] for r in reductions]),
            ]],
            float_fmt="{:.2f}",
        )
    )
    sections.append(
        format_table(
            "Figure 11: stores per packet (paper mean: 42)",
            ["workload", "stores/pkt"],
            coalescing,
            float_fmt="{:.1f}",
        )
    )
    sections.append(
        format_table(
            "Figure 10: bytes normalized to DMA",
            ["workload", "paradigm", "useful", "overhead", "wasted", "total"],
            breakdown,
        )
    )
    captured = geo["finepack"] / geo["infinite"]
    sections.append(
        f"FinePack captures {captured:.0%} of the infinite-bandwidth "
        f"opportunity (paper: 71%).  Total run time: {elapsed:.0f}s."
    )

    report = "\n\n".join(sections)
    print("\n" + report)
    out = Path(__file__).parent / "REPORT.md"
    out.write_text("# Reproduction report\n\n```\n" + report + "\n```\n")
    print(f"\nwrote {out}")


if __name__ == "__main__":
    main()
