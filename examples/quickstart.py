#!/usr/bin/env python3
"""Quickstart: reproduce the paper's core experiment on one workload.

Runs the Jacobi solver on a simulated 4x GV100 / PCIe 4.0 system under
every communication paradigm and prints 4-GPU speedups over a single
GPU (the paper's Figure 9 bars) plus the wire-traffic comparison.

    python examples/quickstart.py [workload]

where ``workload`` is one of jacobi, pagerank, sssp, als, ct, eqwp,
diffusion, hit (default: jacobi).
"""

import sys

# compare_paradigms/ExperimentConfig are maintained shims over the run
# layer (RunSpec + execute_grid); see docs/architecture.md, "Migration
# from the legacy entry points".
from repro import ExperimentConfig, compare_paradigms
from repro.analysis import format_table
from repro.workloads import WORKLOADS


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "jacobi"
    if name not in WORKLOADS:
        raise SystemExit(f"unknown workload {name!r}; pick from {sorted(WORKLOADS)}")
    workload = WORKLOADS[name]()

    print(f"Tracing '{name}' ({workload.comm_pattern} communication) ...")
    result = compare_paradigms(
        workload,
        paradigms=("p2p", "dma", "finepack", "infinite"),
        config=ExperimentConfig(n_gpus=4, iterations=3),
    )

    rows = []
    for paradigm, run in result.runs.items():
        rows.append(
            [
                paradigm,
                result.speedup(paradigm),
                run.total_time_ns / 1e6,
                run.wire_bytes / 1e6,
                run.goodput,
                run.packets.mean_stores_per_packet,
            ]
        )
    print()
    print(
        format_table(
            f"{name}: 4-GPU results (single-GPU time "
            f"{result.single_gpu.total_time_ns / 1e6:.3f} ms)",
            ["paradigm", "speedup", "time_ms", "wire_MB", "goodput", "stores/pkt"],
            rows,
        )
    )
    fp = result.runs["finepack"]
    p2p = result.runs["p2p"]
    if fp.wire_bytes:
        print(
            f"\nFinePack moved {p2p.wire_bytes / fp.wire_bytes:.2f}x less "
            f"data than raw peer-to-peer stores and ran "
            f"{result.speedup('finepack') / result.speedup('p2p'):.2f}x faster."
        )


if __name__ == "__main__":
    main()
