#!/usr/bin/env python3
"""Chaos sweep: how much of FinePack's advantage survives a broken fabric?

Sweeps a fault scenario's intensity from 0 (clean fabric) to 1 (the
scenario verbatim) across the communication paradigms and prints the
degradation curve, then demonstrates graceful degradation: a permanent
link failure with no alternate path raises ``DegradedRunError``
carrying the partial metrics instead of hanging the simulation.

    python examples/chaos_sweep.py [scenario]

where ``scenario`` is a preset name (see ``python -m repro chaos
--list``) or a scenario JSON file (default: flaky-retimer).
"""

import sys

from repro import ExperimentConfig
from repro.faults import (
    DegradedRunError,
    FaultInjector,
    chaos_sweep,
    format_chaos_table,
    list_scenarios,
    load_scenario,
)
from repro.run import RunSpec
from repro.sim.system import MultiGPUSystem
from repro.workloads import JacobiWorkload


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "flaky-retimer"
    schedule = load_scenario(name)
    print(f"Sweeping '{schedule.name}' ({schedule.description or 'no description'})")
    print(f"Presets available: {', '.join(list_scenarios())}\n")

    # The degradation curve: every paradigm, five intensity rungs.
    config = ExperimentConfig(n_gpus=4, iterations=3)
    result = chaos_sweep(JacobiWorkload(), schedule, config=config)
    print(format_chaos_table(result))

    for point in result.points:
        if point.degraded:
            print(f"\n  DEGRADED at intensity {point.intensity:g} "
                  f"({point.paradigm}): {point.reasons[0]}")

    # Graceful degradation, driven by hand: partition the topology and
    # catch the partial metrics.
    print("\nPartitioning gpu0 off the switch mid-run ...")
    system = MultiGPUSystem.build(
        n_gpus=4,
        topology_kind="single_switch",
        fault_injector=FaultInjector(load_scenario("partition")),
    )
    trace = JacobiWorkload().generate_trace(n_gpus=4, iterations=3, seed=0)
    try:
        paradigm = RunSpec.for_workload(
            JacobiWorkload(), "finepack", **config.spec_fields()
        ).build_paradigm()
        system.run(trace, paradigm)
        raise AssertionError("partition scenario should degrade the run")
    except DegradedRunError as err:
        m = err.metrics
        print(f"  {err}")
        print(f"  completed iterations: {len(m.iteration_times_ns)}, "
              f"dropped {m.faults.dropped_messages} messages "
              f"({m.faults.dropped_bytes} B); partial metrics survive:")
        print(f"  {m.summary()}")


if __name__ == "__main__":
    main()
