#!/usr/bin/env python3
"""Tutorial: bring your own workload to the simulator.

Shows everything a new multi-GPU application needs to be evaluated
under every communication paradigm: subclass
:class:`~repro.workloads.MultiGPUWorkload`, partition your problem,
and describe each iteration's kernel (compute work, remote stores,
read sets, and the memcpy plan).

The example models a distributed histogram: each GPU processes a shard
of samples and pushes 8-byte bin updates into the peer replicas of a
shared histogram -- scattered fine-grained stores, the exact pattern
FinePack targets.

    python examples/custom_workload.py
"""

import numpy as np

# compare_paradigms/ExperimentConfig are maintained shims over the run
# layer (RunSpec + execute_grid); see docs/architecture.md, "Migration
# from the legacy entry points".
from repro import ExperimentConfig, compare_paradigms
from repro.analysis import format_table
from repro.gpu.compute import KernelWork
from repro.gpu.memory import MemorySpace
from repro.sim import render_comparison
from repro.trace.stream import (
    DMATransfer,
    IterationTrace,
    KernelPhase,
    RemoteStoreBatch,
    WorkloadTrace,
)
from repro.workloads import MultiGPUWorkload, contiguous_interval, push_elements
from repro.workloads.base import interleave
from repro.workloads.datasets import partition_bounds


class HistogramWorkload(MultiGPUWorkload):
    """Distributed histogram with replicated bins.

    Each GPU owns a shard of the samples and a partition of the bins.
    After accumulating locally, it pushes the bins it touched into the
    owning GPU's replica (one 8 B counter each).  Heavy-tailed sample
    values concentrate on popular bins, so pushes are scattered and
    repeat across iterations.
    """

    name = "histogram"
    comm_pattern = "many-to-many"

    def __init__(self, n_bins: int = 200_000, total_samples: int = 240_000) -> None:
        self.n_bins = n_bins
        self.total_samples = total_samples

    def generate_trace(self, n_gpus, iterations=3, seed=7):
        rng = np.random.default_rng(seed)
        bounds = partition_bounds(self.n_bins, n_gpus)
        memory = MemorySpace(n_gpus)
        hist = memory.alloc_replicated("histogram.bins", self.n_bins * 8)
        # Strong scaling: the sample set is fixed, each GPU gets a shard.
        shard = self.total_samples // n_gpus

        iteration_traces = []
        for _ in range(iterations):
            phases = []
            for g in range(n_gpus):
                # Heavy-tailed bin popularity (Zipf-ish).
                u = rng.random(shard)
                bins = np.minimum(
                    (self.n_bins * u**3).astype(np.int64), self.n_bins - 1
                )
                owners = np.searchsorted(bounds, bins, side="right") - 1
                work = KernelWork(flops=4.0 * shard, dram_bytes=16.0 * shard)
                batches, dma = [], []
                for d in range(n_gpus):
                    if d == g:
                        continue
                    touched = np.unique(bins[owners == d])
                    if touched.size == 0:
                        continue
                    batches.append(
                        push_elements(
                            interleave(touched, 64), 8, d, hist.replicas[d]
                        )
                    )
                    # The memcpy port copies the whole remote bin block.
                    lo = int(bounds[d])
                    dma.append(
                        DMATransfer(
                            dst=d,
                            dst_addr=hist.replicas[d] + lo * 8,
                            nbytes=(int(bounds[d + 1]) - lo) * 8,
                        )
                    )
                reads = contiguous_interval(
                    hist.replicas[g] + int(bounds[g]) * 8,
                    (int(bounds[g + 1]) - int(bounds[g])) * 8,
                )
                phases.append(
                    KernelPhase(
                        gpu=g,
                        work=work,
                        stores=RemoteStoreBatch.concat(batches),
                        reads=reads,
                        dma=dma,
                    )
                )
            iteration_traces.append(IterationTrace(phases))
        return WorkloadTrace(
            name=self.name,
            n_gpus=n_gpus,
            iterations=iteration_traces,
            metadata={"n_bins": self.n_bins},
        )


def main() -> None:
    workload = HistogramWorkload()
    result = compare_paradigms(
        workload,
        paradigms=("p2p", "dma", "finepack", "infinite"),
        config=ExperimentConfig(iterations=3),
    )
    print(
        format_table(
            "histogram: 4-GPU speedups",
            ["paradigm", "speedup", "wire_MB", "stores/pkt"],
            [
                [
                    p,
                    result.speedup(p),
                    result.runs[p].wire_bytes / 1e6,
                    result.runs[p].packets.mean_stores_per_packet,
                ]
                for p in result.runs
            ],
            float_fmt="{:.2f}",
        )
    )
    print()
    print(render_comparison(result.runs))


if __name__ == "__main__":
    main()
