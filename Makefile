# Convenience targets for the FinePack reproduction.

.PHONY: install test bench quick docs report clean

install:
	python setup.py develop

test:
	pytest tests/

quick:
	pytest tests/ -x -q -m "not slow"

bench:
	pytest benchmarks/ --benchmark-only

docs:
	python tools/gen_api_docs.py

report:
	python examples/reproduce_paper.py

clean:
	rm -rf .pytest_cache .hypothesis src/repro.egg-info
	find . -name __pycache__ -type d -exec rm -rf {} +
