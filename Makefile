# Convenience targets for the FinePack reproduction.

.PHONY: install test bench bench-smoke quick verify docs report clean

install:
	python setup.py develop

test:
	pytest tests/

quick:
	pytest tests/ -x -q -m "not slow"

# Full gate: tier-1 tests, a smoke traced run, and schema validation of
# the exported Chrome trace.  PYTHONPATH=src so it works without
# 'make install'.
verify: export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH))
verify:
	python -m pytest tests/ -x -q
	python -m repro run jacobi finepack --gpus 2 --iterations 1 \
		--trace-out /tmp/repro_verify_trace.json
	python -c "from repro.obs import validate_chrome_trace_file; \
		obj = validate_chrome_trace_file('/tmp/repro_verify_trace.json'); \
		print('trace schema OK:', len(obj['traceEvents']), 'events')"
	rm -f /tmp/repro_verify_trace.json

bench:
	pytest benchmarks/ --benchmark-only

# Tiny sweep through the parallel executor + trace cache; asserts
# serial == parallel metrics and that a warm cache skips generation.
# Emits BENCH_sweep.json with the wall-clock comparison.
bench-smoke:
	python tools/bench_smoke.py --jobs 2 --out BENCH_sweep.json

docs:
	python tools/gen_api_docs.py

report:
	python examples/reproduce_paper.py

clean:
	rm -rf .pytest_cache .hypothesis src/repro.egg-info
	find . -name __pycache__ -type d -exec rm -rf {} +
