# Convenience targets for the FinePack reproduction.

.PHONY: install test bench bench-smoke bench-perf calibrate quick verify docs report clean

install:
	pip install -e .

# PYTHONPATH=src so the suite runs without 'make install'.
test: export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH))
test:
	pytest tests/

quick: export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH))
quick:
	pytest tests/ -x -q -m "not slow"

# Full gate: tier-1 tests, a smoke traced run, and schema validation of
# the exported Chrome trace.  PYTHONPATH=src so it works without
# 'make install'.
verify: export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH))
verify:
	python -m pytest tests/ -x -q
	python -m repro run jacobi finepack --gpus 2 --iterations 1 \
		--trace-out /tmp/repro_verify_trace.json
	python -c "from repro.obs import validate_chrome_trace_file; \
		obj = validate_chrome_trace_file('/tmp/repro_verify_trace.json'); \
		print('trace schema OK:', len(obj['traceEvents']), 'events')"
	rm -f /tmp/repro_verify_trace.json

bench:
	pytest benchmarks/ --benchmark-only

# Tiny sweep through the parallel executor + trace cache; asserts
# serial == parallel metrics and that a warm cache skips generation.
# Emits BENCH_sweep.json with the wall-clock comparison.
bench-smoke:
	python tools/bench_smoke.py --jobs 2 --out BENCH_sweep.json

# Fast-path perf benchmark: full workload suite under vectorized and
# scalar configurations, asserting byte-identical metrics.  Emits
# BENCH_core.json and gates against the committed baseline's speedup.
bench-perf:
	python tools/bench_perf.py --out BENCH_core.json --check BENCH_core.json

# Analytical-fidelity calibration: cross-validates predict_metrics
# against the DES over the calibration grid, gates the error budget
# (median wire/payload/goodput error <= 10%) and the design-sweep
# speedup floor (>= 50x), and records the error table into
# BENCH_core.json under the "analytical" key.
calibrate: export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH))
calibrate:
	python tools/calibrate_analytical.py --out BENCH_core.json

# PYTHONPATH=src so docs regenerate without 'make install'.
docs: export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH))
docs:
	python tools/gen_api_docs.py

report:
	python examples/reproduce_paper.py

clean:
	rm -rf .pytest_cache .hypothesis src/repro.egg-info
	find . -name __pycache__ -type d -exec rm -rf {} +
