"""Run orchestration: one composition root for every experiment surface.

Layering (see ``docs/architecture.md``)::

    repro.registry          names -> components (workloads, paradigms,
                            topologies, fault scenarios)
          |
    repro.run.RunSpec       one frozen, hashable description of a run
          |
    repro.run.RunContext    composition root: builds workload, trace,
                            system, paradigm, injector from a spec
          |
    repro.run.executor      fans RunSpec grids over processes with a
                            content-addressed trace cache

Everything the CLI, the sweeps, the chaos harness and the benchmarks
previously hand-assembled (``MultiGPUSystem.build`` + paradigm +
tracer + injector plumbing) now flows through :class:`RunContext`, so a
new knob is plumbed in exactly one place: add a :class:`RunSpec` field
and consume it in the context.

Quick start::

    from repro.run import RunSpec, RunContext, execute_grid

    spec = RunSpec(workload="jacobi", paradigm="finepack", n_gpus=4)
    metrics = RunContext(spec).run()

    grid = [spec.with_options(paradigm=p) for p in ("p2p", "dma", "finepack")]
    outcomes = execute_grid(grid, jobs=4)      # parallel, order-preserving

The executor is *supervised* (:mod:`repro.run.resilience`): per-cell
futures with wall-clock timeouts, retry/backoff/quarantine for crashed
or hung workers, ``strict=False`` partial-grid degradation
(:class:`GridOutcome` of ``RunOutcome | CellFailure``), plus durability
via the content-addressed :class:`OutcomeStore` and a resumable
:class:`GridJournal`::

    grid = execute_grid(specs, jobs=4, strict=False,
                        timeout=120.0, retries=2,
                        journal="runs/", resume=True)
    for failure in grid.failures():
        print(failure.as_dict())
"""

from .cache import CACHE_ENV, TraceCache
from .context import RunContext, RunOutcome
from .executor import (
    CellExecutionError,
    SweepRun,
    aggregate_cache_stats,
    execute_grid,
    labeled_sweep,
    refine_top_k,
)
from .outcomes import OUTCOME_ENV, OutcomeStore
from .resilience import (
    CellFailure,
    GridExecutionError,
    GridJournal,
    GridOutcome,
    RetryPolicy,
    grid_key,
)
from .spec import RunSpec, freeze_params

__all__ = [
    "RunSpec",
    "RunContext",
    "RunOutcome",
    "TraceCache",
    "CACHE_ENV",
    "SweepRun",
    "aggregate_cache_stats",
    "execute_grid",
    "labeled_sweep",
    "refine_top_k",
    "freeze_params",
    "OutcomeStore",
    "OUTCOME_ENV",
    "RetryPolicy",
    "CellFailure",
    "CellExecutionError",
    "GridOutcome",
    "GridExecutionError",
    "GridJournal",
    "grid_key",
]
