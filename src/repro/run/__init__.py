"""Run orchestration: one composition root for every experiment surface.

Layering (see ``docs/architecture.md``)::

    repro.registry          names -> components (workloads, paradigms,
                            topologies, fault scenarios)
          |
    repro.run.RunSpec       one frozen, hashable description of a run
          |
    repro.run.RunContext    composition root: builds workload, trace,
                            system, paradigm, injector from a spec
          |
    repro.run.executor      fans RunSpec grids over processes with a
                            content-addressed trace cache

Everything the CLI, the sweeps, the chaos harness and the benchmarks
previously hand-assembled (``MultiGPUSystem.build`` + paradigm +
tracer + injector plumbing) now flows through :class:`RunContext`, so a
new knob is plumbed in exactly one place: add a :class:`RunSpec` field
and consume it in the context.

Quick start::

    from repro.run import RunSpec, RunContext, execute_grid

    spec = RunSpec(workload="jacobi", paradigm="finepack", n_gpus=4)
    metrics = RunContext(spec).run()

    grid = [spec.with_options(paradigm=p) for p in ("p2p", "dma", "finepack")]
    outcomes = execute_grid(grid, jobs=4)      # parallel, order-preserving
"""

from .cache import CACHE_ENV, TraceCache
from .context import RunContext, RunOutcome
from .executor import SweepRun, aggregate_cache_stats, execute_grid, labeled_sweep
from .spec import RunSpec, freeze_params

__all__ = [
    "RunSpec",
    "RunContext",
    "RunOutcome",
    "TraceCache",
    "CACHE_ENV",
    "SweepRun",
    "aggregate_cache_stats",
    "execute_grid",
    "labeled_sweep",
    "freeze_params",
]
