"""The :class:`RunContext` composition root.

A context turns one :class:`~repro.run.spec.RunSpec` into live
components -- workload, trace, system, paradigm, fault injector,
tracer -- and executes the run.  This is the *single* place where the
pieces are wired together; ``runner.py``, ``sweep.py``, ``chaos.py``,
the CLI and the benchmarks are all thin layers over it, so a new knob
is added by (1) giving :class:`RunSpec` a field and (2) consuming it
here.

In-process callers may override individual components (a pre-generated
trace, a hand-built :class:`Paradigm` instance, a
:class:`~repro.obs.Tracer`); overrides are deliberately *not* part of
the spec, so the spec stays hashable and picklable for the parallel
executor.

Two execution surfaces:

* :meth:`RunContext.run` returns :class:`RunMetrics` and lets
  :class:`~repro.faults.errors.DegradedRunError` propagate -- the
  legacy ``runner.run_workload`` contract.
* :meth:`RunContext.execute` returns a :class:`RunOutcome` that
  captures degradation as data (what grids and the chaos harness
  need) plus the run's trace-cache counter deltas.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..faults.errors import DegradedRunError
from ..sim.metrics import RunMetrics
from .cache import TraceCache
from .spec import RunSpec


@dataclass
class RunOutcome:
    """One executed spec: metrics plus degradation and cache accounting.

    ``metrics`` is partial when ``degraded`` is set (accumulated up to
    the iteration the fabric lost a destination), mirroring
    :class:`DegradedRunError`.
    """

    spec: RunSpec
    metrics: RunMetrics
    degraded: bool = False
    reasons: tuple[str, ...] = ()
    #: ``{"hits": h, "misses": m, "corrupt": c}`` trace-cache deltas
    #: attributable to this run.  Accounting only -- excluded from
    #: equality so serial, parallel, cached and resumed runs of the same
    #: spec compare equal on what the simulation actually produced.
    cache_stats: dict[str, int] = field(default_factory=dict, compare=False)
    #: Pid of the worker process that executed the run (``None``
    #: in-process).  Accounting only, like everything below.
    worker_pid: int | None = field(default=None, compare=False)
    #: Attempts the supervised executor spent on this cell (>= 1).
    attempts: int = field(default=1, compare=False)
    #: True when this outcome was served from an
    #: :class:`~repro.run.outcomes.OutcomeStore` instead of simulated.
    cached: bool = field(default=False, compare=False)


class RunContext:
    """Builds and runs the components described by a spec.

    Parameters
    ----------
    spec:
        The run description.
    trace_cache:
        Optional :class:`TraceCache`; a private memory-only cache is
        created when omitted.
    workload, trace, paradigm, tracer:
        In-process component overrides (see module docstring).
    """

    def __init__(
        self,
        spec: RunSpec,
        trace_cache: TraceCache | None = None,
        *,
        workload=None,
        trace=None,
        paradigm=None,
        tracer=None,
    ) -> None:
        self.spec = spec
        self.trace_cache = trace_cache if trace_cache is not None else TraceCache()
        self.tracer = tracer
        self._workload = workload
        self._trace = trace
        self._paradigm = paradigm
        self._system = None
        self._injector_built = False
        self._injector = None

    # -- component accessors (built once, on demand) ----------------

    @property
    def workload(self):
        if self._workload is None:
            self._workload = self.spec.build_workload()
        return self._workload

    @property
    def trace(self):
        if self._trace is None:
            self._trace = self.trace_cache.get_or_generate(
                self.spec, workload=self._workload
            )
        return self._trace

    @property
    def paradigm(self):
        if self._paradigm is None:
            self._paradigm = self.spec.build_paradigm()
        return self._paradigm

    @property
    def injector(self):
        """The armed-on-run :class:`FaultInjector`, or ``None``."""
        if not self._injector_built:
            self._injector_built = True
            schedule = self.spec.build_schedule()
            if schedule is not None and len(schedule):
                from ..faults.injector import FaultInjector

                self._injector = FaultInjector(
                    schedule,
                    retry_timeout_ns=self.spec.fabric.retry_timeout_ns,
                    max_retries=self.spec.fabric.max_retries,
                )
        return self._injector

    @property
    def system(self):
        if self._system is None:
            from ..sim.system import MultiGPUSystem

            spec = self.spec
            self._system = MultiGPUSystem.build(
                n_gpus=spec.n_gpus,
                generation=spec.generation,
                compute=spec.compute,
                finepack_config=spec.finepack,
                barrier_ns=spec.barrier_ns,
                topology_kind=spec.topology,
                topology_params=dict(spec.topology_params),
                with_credits=spec.with_credits,
                error_rate=spec.fabric.error_rate,
                fault_injector=self.injector,
            )
        return self._system

    # -- execution --------------------------------------------------

    def run(self) -> RunMetrics:
        """Replay the trace; raises :class:`DegradedRunError` like
        :meth:`MultiGPUSystem.run` does.

        At ``fidelity="analytical"`` the trace is never replayed: the
        metrics come from :func:`repro.analytical.predict_metrics`
        (closed form, no event loop, no system built).
        """
        if self.spec.fidelity == "analytical":
            if self.tracer is not None:
                raise ValueError(
                    "tracers observe discrete events; analytical fidelity "
                    "produces none (use fidelity='des' to trace this run)"
                )
            from ..analytical import predict_metrics

            return predict_metrics(self.spec, self.trace)
        return self.system.run(self.trace, self.paradigm, tracer=self.tracer)

    def execute(self) -> RunOutcome:
        """Replay the trace, capturing degradation as data."""
        before = self.trace_cache.stats()
        try:
            metrics = self.run()
            outcome = RunOutcome(spec=self.spec, metrics=metrics)
        except DegradedRunError as exc:
            outcome = RunOutcome(
                spec=self.spec,
                metrics=exc.metrics,
                degraded=True,
                reasons=exc.reasons,
            )
        after = self.trace_cache.stats()
        outcome.cache_stats = {k: after[k] - before[k] for k in after}
        return outcome
