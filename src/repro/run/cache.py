"""Content-addressed workload-trace cache.

Trace generation (running the real algorithm) dominates sweep wall
time, and every cell of a sweep/chaos grid replays the *same* trace.
The cache keys a serialized :class:`~repro.trace.stream.WorkloadTrace`
by :meth:`RunSpec.trace_key` -- the hash of ``(workload, params,
n_gpus, iterations, seed)`` -- so identical traces are generated once
per machine instead of once per process per sweep.

Two storage layers:

* an in-process memory layer (always on), giving serial sweeps the
  same generate-once behavior the old hand-rolled code had;
* an optional on-disk layer (``root`` directory of columnar
  ``trace-<key>`` directories via :mod:`repro.trace.tracefile`),
  shared by worker processes and across invocations.  Entries are
  loaded with ``mmap_mode="r"`` by default, so parallel
  ``execute_grid`` workers replaying the same trace share its pages
  read-only instead of each materializing a private copy.  Writes are
  atomic (temp directory + ``os.replace``) so concurrent workers
  racing on the same key are safe; corrupted or truncated entries are
  deleted and regenerated, never fatal.  Legacy single-file
  ``trace-<key>.npz`` entries written by earlier versions are still
  read.

Cache traffic is counted in an :class:`~repro.obs.counters.CounterRegistry`
(``trace_cache.hits`` / ``.misses`` / ``.corrupt``), which the executor
aggregates into run outcomes -- the observable proof that a warm cache
skipped generation.
"""

from __future__ import annotations

import os
import shutil
import tempfile
from pathlib import Path

from ..obs.counters import CounterRegistry
from ..perf import profiler as _prof
from ..trace.columns import DEFAULT_CHUNK_OPS
from ..trace.stream import WorkloadTrace
from ..trace.tracefile import (
    TraceDirWriter,
    load_trace,
    load_trace_dir,
    save_trace_dir,
)

#: Environment variable naming a persistent default cache directory.
CACHE_ENV = "REPRO_TRACE_CACHE"

#: Set (to anything non-empty) to verify columnar entries against their
#: recorded SHA-256 checksums on every disk load.  Off by default: the
#: mmap fast path stays zero-copy, and atomic publishes already protect
#: against torn writes -- verification is for long-lived shared caches
#: on storage you do not fully trust.
VERIFY_ENV = "REPRO_TRACE_VERIFY"

#: Set to ``0``/``false``/``off`` to disable streamed (spill-while-
#: generating) disk writes and fall back to materializing whole traces
#: before persisting them.  Streaming is the default: the streamed and
#: whole-trace entries are byte-identical, streaming just caps peak
#: memory at one column chunk.
STREAM_ENV = "REPRO_TRACE_STREAM"

#: Override the streaming chunk size (store-ops per spilled block).
CHUNK_OPS_ENV = "REPRO_TRACE_CHUNK_OPS"

_FALSE_WORDS = frozenset({"0", "false", "off", "no"})


def _stream_default() -> bool:
    return os.environ.get(STREAM_ENV, "").strip().lower() not in _FALSE_WORDS


def _chunk_ops_default() -> int:
    raw = os.environ.get(CHUNK_OPS_ENV, "").strip()
    return int(raw) if raw else DEFAULT_CHUNK_OPS


class TraceCache:
    """Memory + optional-disk cache of generated workload traces.

    ``root=None`` gives a memory-only cache (one process, one
    invocation); a directory path adds the shared on-disk layer.
    ``mmap=False`` materializes disk loads instead of memory-mapping
    them (for callers that mutate trace arrays in place).
    ``verify=True`` (or ``$REPRO_TRACE_VERIFY``) checks columnar
    entries against their recorded checksums on load; mismatches count
    as corrupt and regenerate.

    ``stream`` controls spill-while-generating: with a disk root, cache
    misses stream the workload's column chunks straight into the entry
    directory and hand back the memory-mapped result, so peak memory is
    one chunk (``chunk_ops`` store-ops, ``$REPRO_TRACE_CHUNK_OPS``)
    instead of the whole trace.  On by default (``stream=None`` reads
    ``$REPRO_TRACE_STREAM``); the resulting entry is byte-identical to
    a whole-trace write either way.  Memory-only caches have nowhere to
    spill and always materialize.
    """

    def __init__(
        self,
        root: str | Path | None = None,
        mmap: bool = True,
        verify: bool | None = None,
        stream: bool | None = None,
        chunk_ops: int | None = None,
    ) -> None:
        self.root = Path(root).expanduser() if root is not None else None
        self.mmap = mmap
        self.verify = (
            bool(os.environ.get(VERIFY_ENV)) if verify is None else verify
        )
        self.stream = _stream_default() if stream is None else stream
        self.chunk_ops = (
            _chunk_ops_default() if chunk_ops is None else int(chunk_ops)
        )
        self._memory: dict[str, WorkloadTrace] = {}
        self.counters = CounterRegistry()

    @classmethod
    def from_env(cls) -> "TraceCache":
        """A cache rooted at ``$REPRO_TRACE_CACHE`` (memory-only if unset)."""
        return cls(os.environ.get(CACHE_ENV) or None)

    # -- addressing -------------------------------------------------

    def path_for(self, trace_key: str) -> Path | None:
        """The columnar directory an entry lives in (``None`` memory-only)."""
        if self.root is None:
            return None
        return self.root / f"trace-{trace_key}"

    def _legacy_path_for(self, trace_key: str) -> Path | None:
        if self.root is None:
            return None
        return self.root / f"trace-{trace_key}.npz"

    # -- the one entry point ----------------------------------------

    def get_or_generate(self, spec, workload=None) -> WorkloadTrace:
        """The trace for ``spec``, from cache or freshly generated.

        ``workload`` optionally supplies a pre-built instance (the
        in-process override path); otherwise the spec's registry name
        is instantiated.  Every return path leaves the trace in the
        memory layer; fresh generations are also persisted to disk.
        """
        key = spec.trace_key()
        trace = self._memory.get(key)
        if trace is not None:
            self.counters.counter("trace_cache.hits").inc()
            return trace

        trace = self._load_disk(key)
        if trace is not None:
            self.counters.counter("trace_cache.hits").inc()
            self._memory[key] = trace
            return trace

        self.counters.counter("trace_cache.misses").inc()
        if workload is None:
            workload = spec.build_workload()
        path = self.path_for(key)
        prof = _prof.ACTIVE
        if prof is not None:
            prof.begin("trace_generation")
        try:
            if path is not None and self.stream:
                trace = self._generate_streamed(path, workload, spec)
            else:
                trace = workload.generate_trace(
                    n_gpus=spec.n_gpus,
                    iterations=spec.iterations,
                    seed=spec.seed,
                )
                if path is not None:
                    self._write_atomic(path, trace)
        finally:
            if prof is not None:
                prof.end()
        self._memory[key] = trace
        return trace

    def _load_disk(self, key: str) -> WorkloadTrace | None:
        path = self.path_for(key)
        if path is not None and path.is_dir():
            try:
                return load_trace_dir(path, mmap=self.mmap, verify=self.verify)
            except Exception:
                # Truncated/corrupted entry (e.g. a killed worker):
                # regenerate, never crash.
                self.counters.counter("trace_cache.corrupt").inc()
                shutil.rmtree(path, ignore_errors=True)
        legacy = self._legacy_path_for(key)
        if legacy is not None and legacy.exists():
            try:
                return load_trace(legacy)
            except Exception:
                self.counters.counter("trace_cache.corrupt").inc()
                try:
                    legacy.unlink()
                except OSError:
                    pass
        return None

    def _generate_streamed(self, path: Path, workload, spec) -> WorkloadTrace:
        """Generate ``spec``'s trace, spilling chunks to disk as produced.

        The workload's :meth:`iter_columns` stream is appended block by
        block to a temp :class:`TraceDirWriter` and published with the
        same atomic ``os.replace`` as whole-trace writes; the caller
        gets the (memory-mapped by default) disk entry back.  Nothing
        ever holds more than one column chunk, so generating a trace
        ~100x larger than RAM works in constant memory.
        """
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = tempfile.mkdtemp(dir=path.parent, prefix=path.name + ".tmp.")
        try:
            with TraceDirWriter(
                tmp, name=workload.name, n_gpus=spec.n_gpus
            ) as writer:
                gen = workload.iter_columns(
                    n_gpus=spec.n_gpus,
                    iterations=spec.iterations,
                    seed=spec.seed,
                    chunk_ops=self.chunk_ops,
                )
                while True:
                    try:
                        block = next(gen)
                    except StopIteration as stop:
                        metadata = dict(stop.value or {})
                        break
                    writer.add_block(block)
                writer.finalize(metadata)
            try:
                os.replace(tmp, path)
            except OSError:
                # Lost the publish race; the winner's entry is
                # byte-identical (same spec, same writer path).
                pass
        finally:
            shutil.rmtree(tmp, ignore_errors=True)
        return load_trace_dir(path, mmap=self.mmap, verify=self.verify)

    def _write_atomic(self, path: Path, trace: WorkloadTrace) -> None:
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = tempfile.mkdtemp(dir=path.parent, prefix=path.name + ".tmp.")
        try:
            save_trace_dir(trace, tmp)
            try:
                os.replace(tmp, path)
            except OSError:
                # Lost a race against a concurrent worker that already
                # published this key (non-empty target on some
                # platforms): their entry is equivalent, keep it.
                pass
        finally:
            shutil.rmtree(tmp, ignore_errors=True)

    # -- introspection ----------------------------------------------

    def stats(self) -> dict[str, int]:
        """``{"hits": h, "misses": m, "corrupt": c}`` so far."""
        snap = self.counters.snapshot()
        return {
            "hits": int(snap.get("trace_cache.hits", 0)),
            "misses": int(snap.get("trace_cache.misses", 0)),
            "corrupt": int(snap.get("trace_cache.corrupt", 0)),
        }

    def clear_memory(self) -> None:
        """Drop the in-process layer (disk files stay)."""
        self._memory.clear()
