"""Grid execution: serial or process-parallel, always deterministic.

:func:`execute_grid` maps a sequence of :class:`RunSpec` onto
:class:`RunOutcome` results **in input order**, either in-process
(``jobs=1``) or fanned over a :class:`ProcessPoolExecutor`.  Each grid
cell is an isolated simulation (its own system, paradigm and injector
built by a fresh :class:`RunContext`), which is what makes the fan-out
safe: serial and parallel execution produce byte-identical metrics,
and the test suite holds us to that.

Worker processes share traces through the content-addressed
:class:`TraceCache`: parallel runs get a shared on-disk cache (the
caller's, ``$REPRO_TRACE_CACHE``, or an ephemeral temp directory), so
a grid generates each distinct trace once per machine rather than once
per process.

:func:`labeled_sweep` is the sweep-shaped convenience used by the CLI
and benchmarks: labeled specs plus an automatically derived single-GPU
baseline, folded into the familiar
:class:`~repro.sim.sweep.SweepResult`.
"""

from __future__ import annotations

import os
import shutil
import tempfile
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Mapping, Sequence

from .cache import CACHE_ENV, TraceCache
from .context import RunContext, RunOutcome
from .spec import RunSpec


def _coerce_cache(trace_cache) -> TraceCache:
    if trace_cache is None:
        return TraceCache(os.environ.get(CACHE_ENV) or None)
    if isinstance(trace_cache, TraceCache):
        return trace_cache
    return TraceCache(trace_cache)


def _execute_one(payload: tuple[RunSpec, str | None]) -> RunOutcome:
    """Worker entry point: one spec against a (shared-root) cache."""
    spec, cache_root = payload
    return RunContext(spec, TraceCache(cache_root)).execute()


def execute_grid(
    specs: Sequence[RunSpec],
    jobs: int = 1,
    trace_cache: TraceCache | str | Path | None = None,
    tracer_factory: Callable[[str], object] | None = None,
    labels: Sequence[str] | None = None,
) -> list[RunOutcome]:
    """Execute every spec; results are ordered exactly like ``specs``.

    Parameters
    ----------
    jobs:
        Worker process count; ``1`` (the default) runs in-process.
    trace_cache:
        A :class:`TraceCache`, a cache directory, or ``None`` (use
        ``$REPRO_TRACE_CACHE`` if set).  Parallel runs need a shared
        *directory*; a memory-only cache is replaced by an ephemeral
        temp directory that is removed afterwards.
    tracer_factory:
        Optional ``label -> Tracer`` callable observing each run
        (labels come from ``labels`` or the spec index).  Tracers are
        in-process objects, so this requires ``jobs=1``.
    """
    if labels is not None and len(labels) != len(specs):
        raise ValueError(f"{len(labels)} labels for {len(specs)} specs")
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1: {jobs}")
    if jobs > 1 and tracer_factory is not None:
        raise ValueError(
            "tracer_factory observes in-process state and requires jobs=1"
        )

    if jobs == 1 or len(specs) <= 1:
        cache = _coerce_cache(trace_cache)
        outcomes = []
        for i, spec in enumerate(specs):
            tracer = None
            if tracer_factory is not None:
                tracer = tracer_factory(labels[i] if labels else str(i))
            outcomes.append(RunContext(spec, cache, tracer=tracer).execute())
        return outcomes

    cache = _coerce_cache(trace_cache)
    tmp_root: str | None = None
    if cache.root is None:
        tmp_root = tempfile.mkdtemp(prefix="repro-trace-cache-")
        root: str | None = tmp_root
    else:
        root = str(cache.root)
    try:
        payloads = [(spec, root) for spec in specs]
        with ProcessPoolExecutor(max_workers=min(jobs, len(specs))) as pool:
            return list(pool.map(_execute_one, payloads))
    finally:
        if tmp_root is not None:
            shutil.rmtree(tmp_root, ignore_errors=True)


def aggregate_cache_stats(outcomes: Sequence[RunOutcome]) -> dict[str, int]:
    """Sum the per-run trace-cache deltas of a grid."""
    total = {"hits": 0, "misses": 0, "corrupt": 0}
    for o in outcomes:
        for k in total:
            total[k] += o.cache_stats.get(k, 0)
    return total


@dataclass
class SweepRun:
    """A labeled grid plus its baseline, shaped like the legacy sweep.

    ``result`` is a :class:`~repro.sim.sweep.SweepResult` (same
    ``best()`` tie-break semantics as always); ``outcomes`` align with
    ``result.points``; ``baseline`` is the 1-GPU normalization run.
    """

    result: object
    baseline: RunOutcome
    outcomes: list[RunOutcome] = field(default_factory=list)

    def cache_stats(self) -> dict[str, int]:
        """Aggregate trace-cache traffic, baseline included."""
        return aggregate_cache_stats([self.baseline, *self.outcomes])


def labeled_sweep(
    labeled_specs: Mapping[str, RunSpec],
    jobs: int = 1,
    trace_cache: TraceCache | str | Path | None = None,
    tracer_factory: Callable[[str], object] | None = None,
    baseline: RunSpec | None = None,
) -> SweepRun:
    """Run labeled specs plus a single-GPU baseline; report speedups.

    The baseline defaults to the first spec's
    :meth:`~RunSpec.single_gpu_baseline`.  The baseline run is never
    traced (matching the legacy ``sweep()``, whose ``tracer_factory``
    only observed sweep points).
    """
    from ..sim.sweep import SweepPoint, SweepResult

    if not labeled_specs:
        raise ValueError("empty sweep: no specs given")
    labels = list(labeled_specs)
    specs = [labeled_specs[label] for label in labels]
    if baseline is None:
        baseline = specs[0].single_gpu_baseline()

    if tracer_factory is None:
        outcomes = execute_grid(
            [baseline, *specs], jobs=jobs, trace_cache=trace_cache
        )
        baseline_outcome, point_outcomes = outcomes[0], outcomes[1:]
    else:
        # Traced sweeps are in-process; keep the baseline untraced.
        baseline_outcome = execute_grid(
            [baseline], jobs=1, trace_cache=trace_cache
        )[0]
        point_outcomes = execute_grid(
            specs,
            jobs=jobs,
            trace_cache=trace_cache,
            tracer_factory=tracer_factory,
            labels=labels,
        )

    t1 = baseline_outcome.metrics.total_time_ns
    result = SweepResult(workload=specs[0].workload)
    for label, outcome in zip(labels, point_outcomes):
        result.points.append(
            SweepPoint(
                label=label,
                metrics=outcome.metrics,
                speedup=t1 / outcome.metrics.total_time_ns,
            )
        )
    return SweepRun(result=result, baseline=baseline_outcome, outcomes=point_outcomes)
