"""Grid execution: supervised, resumable, serial or process-parallel.

:func:`execute_grid` maps a sequence of :class:`RunSpec` onto results
**in input order**, either in-process (``jobs=1``) or fanned over a
worker-process pool.  Each grid cell is an isolated simulation (its own
system, paradigm and injector built by a fresh :class:`RunContext`),
which is what makes the fan-out safe: serial and parallel execution
produce byte-identical metrics, and the test suite holds us to that.

Unlike a bare ``pool.map``, the parallel path is *supervised*
(:mod:`repro.run.resilience`): every cell is an individual future with

* a per-attempt wall-clock timeout -- a hung worker is detected, the
  pool killed and replaced, and the cell charged a failed attempt;
* retry with exponential backoff and deterministic jitter for crashed,
  hung, or raising cells, escalating to *quarantine* once the attempt
  budget (:class:`RetryPolicy`) is spent;
* graceful partial-grid degradation: with ``strict=False`` the grid
  returns a :class:`GridOutcome` whose cells are ``RunOutcome |
  CellFailure`` instead of raising -- the executor-level mirror of
  :class:`~repro.faults.errors.DegradedRunError`.

Durability comes from two optional pieces: a content-addressed
:class:`~repro.run.outcomes.OutcomeStore` persisting completed
outcomes under ``RunSpec.key()`` (identical cells are never simulated
twice, across processes and invocations), and a
:class:`~repro.run.resilience.GridJournal` of cell lifecycle events so
an interrupted grid resumes (``resume=True``) by re-running only
unfinished or quarantined cells -- with final results byte-identical
to an uninterrupted run.

Worker processes share traces through the content-addressed
:class:`TraceCache`: parallel runs get a shared on-disk cache (the
caller's, ``$REPRO_TRACE_CACHE``, or an ephemeral temp directory whose
cleanup is also registered with :mod:`atexit`, so an interrupt cannot
strand it).

:func:`labeled_sweep` is the sweep-shaped convenience used by the CLI
and benchmarks: labeled specs plus an automatically derived single-GPU
baseline, folded into the familiar
:class:`~repro.sim.sweep.SweepResult`.
"""

from __future__ import annotations

import atexit
import os
import shutil
import tempfile
import time
import traceback
from collections import deque
from concurrent.futures import FIRST_COMPLETED, BrokenExecutor, ProcessPoolExecutor
from concurrent.futures import wait as _futures_wait
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Mapping, Sequence

from .cache import CACHE_ENV, TraceCache
from .context import RunContext, RunOutcome
from .outcomes import OutcomeStore
from .resilience import (
    CellFailure,
    GridExecutionError,
    GridJournal,
    GridOutcome,
    RetryPolicy,
    grid_key,
)
from .spec import RunSpec

#: Ephemeral shared-cache directories are created under this prefix;
#: cleanup is registered with :mod:`atexit` as well as ``finally`` so
#: interrupts cannot strand them.
EPHEMERAL_CACHE_PREFIX = "repro-trace-cache-"


class CellExecutionError(Exception):
    """Pickle-safe wrapper for an exception raised inside a worker.

    Worker exceptions must cross the process boundary; arbitrary
    exception types may not unpickle (or may unpickle with their
    payload silently dropped), so the worker entry point wraps them in
    this flat record: original type name, message, the worker's pid,
    and the formatted traceback.
    """

    def __init__(
        self,
        error_type: str,
        message: str,
        worker_pid: int | None = None,
        traceback_text: str = "",
    ) -> None:
        self.error_type = error_type
        self.message = message
        self.worker_pid = worker_pid
        self.traceback_text = traceback_text
        super().__init__(f"{error_type}: {message} (worker pid {worker_pid})")

    def __reduce__(self):
        return (
            CellExecutionError,
            (self.error_type, self.message, self.worker_pid, self.traceback_text),
        )


def _coerce_cache(trace_cache) -> TraceCache:
    if trace_cache is None:
        return TraceCache(os.environ.get(CACHE_ENV) or None)
    if isinstance(trace_cache, TraceCache):
        return trace_cache
    return TraceCache(trace_cache)


def _coerce_store(outcome_store) -> OutcomeStore | None:
    if outcome_store is None or isinstance(outcome_store, OutcomeStore):
        return outcome_store
    return OutcomeStore(outcome_store)


def _execute_one(payload: tuple[RunSpec, str | None]) -> RunOutcome:
    """Worker entry point: one spec against a (shared-root) cache."""
    spec, cache_root = payload
    try:
        outcome = RunContext(spec, TraceCache(cache_root)).execute()
    except Exception as exc:
        raise CellExecutionError(
            type(exc).__name__, str(exc), os.getpid(), traceback.format_exc()
        ) from None
    outcome.worker_pid = os.getpid()
    return outcome


@contextmanager
def _shared_cache_root(cache: TraceCache):
    """The on-disk root worker processes share.

    A memory-only cache gets an ephemeral temp directory.  Its removal
    is both in the ``finally`` (covers exceptions and
    ``KeyboardInterrupt``) *and* registered with :mod:`atexit` (covers
    ``sys.exit`` / interpreter teardown while the pool is mid-flight),
    so interrupted grids do not strand temp directories.
    """
    if cache.root is not None:
        yield str(cache.root)
        return
    tmp = tempfile.mkdtemp(prefix=EPHEMERAL_CACHE_PREFIX)

    def _cleanup(path: str = tmp) -> None:
        shutil.rmtree(path, ignore_errors=True)

    atexit.register(_cleanup)
    try:
        yield tmp
    finally:
        _cleanup()
        atexit.unregister(_cleanup)


@dataclass
class _Cell:
    """Supervisor-side state of one grid cell."""

    index: int
    spec: RunSpec
    attempts: int = 0  # completed (failed) attempts so far
    not_before: float = 0.0  # monotonic instant the next attempt may start
    started: float = 0.0  # monotonic submit instant of the attempt in flight
    deadline: float | None = None
    key: str = field(default="")

    def __post_init__(self) -> None:
        self.key = self.spec.key()


class _Supervisor:
    """Shared accounting for the serial and parallel execution paths."""

    def __init__(
        self,
        specs: Sequence[RunSpec],
        policy: RetryPolicy,
        store: OutcomeStore | None,
        journal: GridJournal | None,
        resume: bool,
        grid_tracer=None,
    ) -> None:
        self.specs = specs
        self.policy = policy
        self.store = store
        self.journal = journal
        self.resume = resume
        self.tracer = grid_tracer
        self.results: list = [None] * len(specs)
        self.stats = {
            "attempts": 0,
            "retried": 0,
            "quarantined": 0,
            "timeouts": 0,
            "crashes": 0,
            "errors": 0,
            "pool_breaks": 0,
        }
        self._store_before = store.stats() if store is not None else None
        self._t0 = time.monotonic()

    def _now_ns(self) -> float:
        return (time.monotonic() - self._t0) * 1e9

    # -- store / resume pre-pass ------------------------------------

    def prefill(self) -> list[_Cell]:
        """Satisfy cells from the journal + outcome store; return the rest."""
        pending: list[_Cell] = []
        for i, spec in enumerate(self.specs):
            if self.store is not None:
                resumed = (
                    self.resume
                    and self.journal is not None
                    and self.journal.finished(i, spec)
                )
                outcome = self.store.get(spec)
                if outcome is not None:
                    self.results[i] = outcome
                    if self.tracer is not None:
                        self.tracer.outcome_cache("hit", spec.key(), self._now_ns())
                    if self.journal is not None and not resumed:
                        self.journal.record_cached(i, spec)
                    continue
                if self.tracer is not None:
                    self.tracer.outcome_cache("miss", spec.key(), self._now_ns())
            pending.append(_Cell(index=i, spec=spec))
        return pending

    # -- per-cell transitions ---------------------------------------

    def succeed(self, cell: _Cell, outcome: RunOutcome) -> None:
        self.stats["attempts"] += 1
        outcome.attempts = cell.attempts + 1
        if self.store is not None:
            self.store.put(outcome)
        if self.journal is not None:
            self.journal.record_finish(cell.index, cell.spec)
        self.results[cell.index] = outcome

    def fail(
        self,
        cell: _Cell,
        kind: str,
        error_type: str,
        message: str,
        duration_s: float,
        worker_pid: int | None = None,
    ) -> bool:
        """Charge a failed attempt; returns True when the cell may retry."""
        cell.attempts += 1
        self.stats["attempts"] += 1
        self.stats[
            {"timeout": "timeouts", "crash": "crashes"}.get(kind, "errors")
        ] += 1
        if self.journal is not None:
            self.journal.record_fail(
                cell.index, cell.spec, cell.attempts, kind, error_type, message
            )
        if cell.attempts < self.policy.max_attempts:
            self.stats["retried"] += 1
            if self.tracer is not None:
                self.tracer.cell_retried(
                    cell.index, cell.key, cell.attempts, kind, error_type,
                    self._now_ns(),
                )
            return True
        self.stats["quarantined"] += 1
        if self.journal is not None:
            self.journal.record_quarantine(cell.index, cell.spec, cell.attempts)
        if self.tracer is not None:
            self.tracer.cell_quarantined(
                cell.index, cell.key, cell.attempts, kind, error_type,
                self._now_ns(),
            )
        self.results[cell.index] = CellFailure(
            spec=cell.spec,
            index=cell.index,
            error_type=error_type,
            message=message,
            attempts=cell.attempts,
            duration_s=duration_s,
            kind=kind,
            worker_pid=worker_pid,
            quarantined=True,
        )
        return False

    # -- roll-up ----------------------------------------------------

    def grid_outcome(self) -> GridOutcome:
        if self.store is not None and self._store_before is not None:
            after = self.store.stats()
            cache = {k: after[k] - self._store_before[k] for k in after}
        else:
            cache = {"hits": 0, "misses": 0, "corrupt": 0}
        return GridOutcome(
            cells=list(self.results),
            retry_stats=dict(self.stats),
            outcome_cache=cache,
            journal_path=(
                str(self.journal.path) if self.journal is not None else None
            ),
        )


def _kill_pool(pool: ProcessPoolExecutor) -> None:
    """Forcefully stop a pool: hung or orphaned workers are killed.

    ``ProcessPoolExecutor`` has no public per-worker kill, so this
    reaches for the (stable-across-CPython) ``_processes`` map; a
    hung worker ignores graceful shutdown by definition.
    """
    for proc in list((getattr(pool, "_processes", None) or {}).values()):
        try:
            proc.kill()
        except Exception:  # pragma: no cover - best effort
            pass
    try:
        pool.shutdown(wait=False, cancel_futures=True)
    except Exception:  # pragma: no cover - best effort
        pass


def _run_serial(
    sup: _Supervisor,
    pending: list[_Cell],
    cache: TraceCache,
    tracer_factory,
    labels,
) -> None:
    """In-process execution with retry/journal/store (no preemption:
    per-attempt timeouts require worker processes)."""
    for cell in pending:
        while True:
            tracer = None
            if tracer_factory is not None:
                tracer = tracer_factory(
                    labels[cell.index] if labels else str(cell.index)
                )
            if sup.journal is not None:
                sup.journal.record_start(cell.index, cell.spec, cell.attempts + 1)
            start = time.monotonic()
            try:
                outcome = RunContext(cell.spec, cache, tracer=tracer).execute()
            except Exception as exc:
                retry = sup.fail(
                    cell,
                    kind="error",
                    error_type=type(exc).__name__,
                    message=str(exc),
                    duration_s=time.monotonic() - start,
                    worker_pid=os.getpid(),
                )
                if not retry:
                    break
                time.sleep(sup.policy.backoff(cell.key, cell.attempts))
                continue
            sup.succeed(cell, outcome)
            break


def _run_parallel(
    sup: _Supervisor, pending: list[_Cell], jobs: int, cache_root: str | None
) -> None:
    """The supervised pool: per-cell futures, hung-worker replacement.

    Crash attribution: when a worker process dies, *every* in-flight
    future breaks with it and ``ProcessPoolExecutor`` cannot say whose
    cell killed the worker.  Charging everyone would let one permanent
    crasher quarantine innocent neighbours, so an ambiguous pool break
    charges nobody -- the broken cells become *suspects*, re-run one at
    a time so the next crash is unambiguously attributable.  Timeouts
    are always per-cell (each has its own deadline), so only overdue
    cells are charged and the rest requeue uncharged.
    """
    workers = min(jobs, len(pending))
    policy = sup.policy
    ready: deque[_Cell] = deque(pending)
    waiting: list[_Cell] = []
    suspects: deque[_Cell] = deque()
    inflight: dict = {}
    pool = ProcessPoolExecutor(max_workers=workers)

    def _submit(cell: _Cell) -> None:
        now = time.monotonic()
        cell.started = now
        cell.deadline = (
            now + policy.timeout_s if policy.timeout_s is not None else None
        )
        if sup.journal is not None:
            sup.journal.record_start(cell.index, cell.spec, cell.attempts + 1)
        inflight[pool.submit(_execute_one, (cell.spec, cache_root))] = cell

    def _after_failure(cell: _Cell, retry: bool, kind: str, now: float) -> None:
        if retry:
            cell.not_before = now + policy.backoff(cell.key, cell.attempts)
            # A charged crash retries solo: if it crashes again the
            # attribution stays unambiguous.
            (suspects if kind == "crash" else waiting).append(cell)

    try:
        while ready or waiting or suspects or inflight:
            now = time.monotonic()
            for cell in [c for c in waiting if c.not_before <= now]:
                waiting.remove(cell)
                ready.append(cell)
            if suspects:
                # Suspect mode: exactly one future in flight at a time.
                if not inflight:
                    cell = suspects[0]
                    if cell.not_before <= now:
                        suspects.popleft()
                        _submit(cell)
            else:
                # Cap in-flight futures at the worker count: a
                # submitted cell is actually *running*, so timeout
                # accounting charges cells that consumed an attempt.
                while ready and len(inflight) < workers:
                    _submit(ready.popleft())
            if not inflight:
                horizons = [c.not_before for c in waiting]
                horizons += [c.not_before for c in suspects]
                time.sleep(max(min(horizons) - time.monotonic(), 0.0) + 0.001)
                continue

            horizons = [c.deadline for c in inflight.values() if c.deadline is not None]
            horizons += [c.not_before for c in waiting]
            wait_s = (
                max(min(horizons) - time.monotonic(), 0.0) + 0.005
                if horizons
                else None
            )
            done, _ = _futures_wait(
                set(inflight), timeout=wait_s, return_when=FIRST_COMPLETED
            )

            now = time.monotonic()
            pool_broken = False
            broken: list[_Cell] = []
            for fut in done:
                cell = inflight.pop(fut)
                duration = now - cell.started
                try:
                    outcome = fut.result()
                except BrokenExecutor:
                    # The worker process died (OOM kill, segfault,
                    # os._exit ...); guilt is resolved below once the
                    # full broken set is known.
                    pool_broken = True
                    broken.append(cell)
                except CellExecutionError as exc:
                    retry = sup.fail(
                        cell,
                        kind="error",
                        error_type=exc.error_type,
                        message=exc.message,
                        duration_s=duration,
                        worker_pid=exc.worker_pid,
                    )
                    _after_failure(cell, retry, "error", now)
                except Exception as exc:
                    retry = sup.fail(
                        cell,
                        kind="error",
                        error_type=type(exc).__name__,
                        message=str(exc),
                        duration_s=duration,
                    )
                    _after_failure(cell, retry, "error", now)
                else:
                    sup.succeed(cell, outcome)

            overdue = [
                (fut, cell)
                for fut, cell in inflight.items()
                if cell.deadline is not None and now >= cell.deadline
            ]
            if overdue:
                # Hung worker(s): the only portable preemption is
                # killing the pool, so every overdue cell is charged a
                # timeout and the pool is rebuilt below.
                pool_broken = True
                for fut, cell in overdue:
                    del inflight[fut]
                    retry = sup.fail(
                        cell,
                        kind="timeout",
                        error_type="CellTimeout",
                        message=(
                            f"attempt exceeded the {policy.timeout_s:g}s "
                            f"wall-clock budget"
                        ),
                        duration_s=now - cell.started,
                    )
                    _after_failure(cell, retry, "timeout", now)

            if pool_broken:
                sup.stats["pool_breaks"] += 1
                # Whatever is still in flight died with the pool too.
                broken += list(inflight.values())
                inflight.clear()
                if len(broken) == 1:
                    # Unambiguous: this cell's worker died on it.
                    cell = broken[0]
                    retry = sup.fail(
                        cell,
                        kind="crash",
                        error_type="WorkerCrash",
                        message="worker process died executing this cell",
                        duration_s=now - cell.started,
                    )
                    _after_failure(cell, retry, "crash", now)
                else:
                    # Ambiguous: charge nobody; re-run the broken set
                    # one cell at a time to localize the crasher.
                    suspects.extend(broken)
                _kill_pool(pool)
                pool = ProcessPoolExecutor(max_workers=workers)
    finally:
        if inflight:
            _kill_pool(pool)
        else:
            try:
                pool.shutdown(wait=True, cancel_futures=True)
            except Exception:  # pragma: no cover - best effort
                pass


def _resolve_journal(
    journal: str | Path | None, specs: Sequence[RunSpec]
) -> Path | None:
    """A journal file path; directories get a grid-keyed file inside."""
    if journal is None:
        return None
    path = Path(journal).expanduser()
    if path.is_dir() or (not path.suffix and not path.exists()):
        # Directory (possibly not yet created): derive a stable,
        # grid-addressed file name so repeated invocations of the same
        # grid find their journal.
        return path / f"journal-{grid_key(specs)}.jsonl"
    return path


def execute_grid(
    specs: Sequence[RunSpec],
    jobs: int = 1,
    trace_cache: TraceCache | str | Path | None = None,
    tracer_factory: Callable[[str], object] | None = None,
    labels: Sequence[str] | None = None,
    *,
    strict: bool = True,
    retry: RetryPolicy | None = None,
    timeout: float | None = None,
    retries: int | None = None,
    outcome_store: OutcomeStore | str | Path | None = None,
    journal: str | Path | None = None,
    resume: bool = False,
    grid_tracer=None,
) -> list[RunOutcome] | GridOutcome:
    """Execute every spec; results are ordered exactly like ``specs``.

    Parameters
    ----------
    jobs:
        Worker process count; ``1`` (the default) runs in-process.
    trace_cache:
        A :class:`TraceCache`, a cache directory, or ``None`` (use
        ``$REPRO_TRACE_CACHE`` if set).  Parallel runs need a shared
        *directory*; a memory-only cache is replaced by an ephemeral
        temp directory that is removed afterwards.
    tracer_factory:
        Optional ``label -> Tracer`` callable observing each run
        (labels come from ``labels`` or the spec index).  Tracers are
        in-process objects, so this requires ``jobs=1``.
    strict:
        With the default ``True``, returns ``list[RunOutcome]`` and
        raises :class:`GridExecutionError` (after the whole grid has
        drained) if any cell exhausted its retry budget.  With
        ``False``, returns a :class:`GridOutcome` whose cells are
        ``RunOutcome | CellFailure`` -- graceful partial-grid
        degradation.
    retry, timeout, retries:
        Resilience knobs.  Pass a full :class:`RetryPolicy` as
        ``retry``, or the common scalars: ``timeout`` (per-attempt
        wall-clock seconds, parallel mode only) and ``retries``
        (re-attempts after the first; ``retries=2`` means up to 3
        attempts).
    outcome_store:
        An :class:`OutcomeStore` (or its directory) consulted before
        and populated after every cell; completed specs are never
        re-simulated.  Defaults to a store colocated with the trace
        cache's disk root when journaling is on, else no store.
    journal:
        JSONL journal file (or a directory, which gets a grid-keyed
        file name) recording cell start/finish/fail/quarantine events.
    resume:
        Re-use a previous invocation's journal: cells it finished are
        reloaded from the outcome store, everything else (including
        quarantined cells) is re-run.  Requires ``journal`` and a
        disk-backed outcome store.
    """
    if labels is not None and len(labels) != len(specs):
        raise ValueError(f"{len(labels)} labels for {len(specs)} specs")
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1: {jobs}")
    if jobs > 1 and tracer_factory is not None:
        raise ValueError(
            "tracer_factory observes in-process state and requires jobs=1"
        )
    if retry is not None and (timeout is not None or retries is not None):
        raise ValueError("pass either retry= or timeout=/retries=, not both")
    if retries is not None and retries < 0:
        raise ValueError(f"retries must be >= 0: {retries}")
    if retry is None:
        retry = RetryPolicy(
            max_attempts=(retries + 1) if retries is not None else 3,
            timeout_s=timeout,
        )
    if resume and journal is None:
        raise ValueError("resume=True requires a journal path")

    cache = _coerce_cache(trace_cache)
    store = _coerce_store(outcome_store)
    journal_path = _resolve_journal(journal, specs)
    if store is None and journal_path is not None:
        store = OutcomeStore.colocated(cache)
    if resume and (store is None or store.root is None):
        raise ValueError(
            "resume=True requires a disk-backed outcome store (pass "
            "outcome_store= or a trace cache directory to colocate with)"
        )

    grid_journal = (
        GridJournal(journal_path, specs, resume=resume)
        if journal_path is not None
        else None
    )
    sup = _Supervisor(specs, retry, store, grid_journal, resume, grid_tracer)
    try:
        pending = sup.prefill()
        if pending:
            if jobs == 1 or len(pending) <= 1:
                _run_serial(sup, pending, cache, tracer_factory, labels)
            else:
                with _shared_cache_root(cache) as root:
                    _run_parallel(sup, pending, jobs, root)
    finally:
        if grid_journal is not None:
            grid_journal.close()

    grid = sup.grid_outcome()
    if not strict:
        return grid
    if not grid.ok:
        raise GridExecutionError(grid)
    return grid.cells


def aggregate_cache_stats(outcomes: Sequence[RunOutcome]) -> dict[str, int]:
    """Sum the per-run trace-cache deltas of a grid.

    Accepts a sequence of outcomes or a :class:`GridOutcome` (failed
    cells contribute nothing).
    """
    if isinstance(outcomes, GridOutcome):
        outcomes = outcomes.outcomes()
    total = {"hits": 0, "misses": 0, "corrupt": 0}
    for o in outcomes:
        if isinstance(o, CellFailure):
            continue
        for k in total:
            total[k] += o.cache_stats.get(k, 0)
    return total


@dataclass
class SweepRun:
    """A labeled grid plus its baseline, shaped like the legacy sweep.

    ``result`` is a :class:`~repro.sim.sweep.SweepResult` (same
    ``best()`` tie-break semantics as always); ``outcomes`` align with
    ``result.points``; ``baseline`` is the 1-GPU normalization run.
    ``failures`` holds the :class:`CellFailure` records of points that
    exhausted their retry budget in a non-strict sweep (such points are
    omitted from ``result``/``outcomes``).
    """

    result: object
    baseline: RunOutcome
    outcomes: list[RunOutcome] = field(default_factory=list)
    failures: list[CellFailure] = field(default_factory=list)
    #: Outcome-store traffic for the whole sweep (zeros with no store).
    outcome_cache: dict = field(default_factory=dict)
    #: Executor retry/quarantine accounting for the whole sweep.
    retry_stats: dict = field(default_factory=dict)

    def cache_stats(self) -> dict[str, int]:
        """Aggregate trace-cache traffic, baseline included."""
        return aggregate_cache_stats([self.baseline, *self.outcomes])


def labeled_sweep(
    labeled_specs: Mapping[str, RunSpec],
    jobs: int = 1,
    trace_cache: TraceCache | str | Path | None = None,
    tracer_factory: Callable[[str], object] | None = None,
    baseline: RunSpec | None = None,
    **resilience,
) -> SweepRun:
    """Run labeled specs plus a single-GPU baseline; report speedups.

    The baseline defaults to the first spec's
    :meth:`~RunSpec.single_gpu_baseline`.  The baseline run is never
    traced (matching the legacy ``sweep()``, whose ``tracer_factory``
    only observed sweep points).

    Extra keyword arguments (``strict``, ``timeout``, ``retries``,
    ``retry``, ``outcome_store``, ``journal``, ``resume``) pass through
    to :func:`execute_grid`.  A failing baseline is always fatal --
    speedups cannot be normalized without it -- while with
    ``strict=False`` failing sweep points are reported in
    :attr:`SweepRun.failures` and omitted from the result table.
    """
    from ..sim.sweep import SweepPoint, SweepResult

    if not labeled_specs:
        raise ValueError("empty sweep: no specs given")
    labels = list(labeled_specs)
    specs = [labeled_specs[label] for label in labels]
    if baseline is None:
        baseline = specs[0].single_gpu_baseline()

    strict = resilience.pop("strict", True)
    if tracer_factory is None:
        grid = execute_grid(
            [baseline, *specs],
            jobs=jobs,
            trace_cache=trace_cache,
            strict=False,
            **resilience,
        )
        baseline_cell, point_cells = grid.cells[0], grid.cells[1:]
    else:
        # Traced sweeps are in-process; keep the baseline untraced.
        base_grid = execute_grid(
            [baseline], jobs=1, trace_cache=trace_cache, strict=False,
            **resilience,
        )
        point_grid = execute_grid(
            specs,
            jobs=jobs,
            trace_cache=trace_cache,
            tracer_factory=tracer_factory,
            labels=labels,
            strict=False,
            **resilience,
        )
        baseline_cell, point_cells = base_grid.cells[0], point_grid.cells
        grid = GridOutcome(
            cells=[baseline_cell, *point_cells],
            retry_stats={
                k: base_grid.retry_stats.get(k, 0) + point_grid.retry_stats.get(k, 0)
                for k in base_grid.retry_stats
            },
            outcome_cache={
                k: base_grid.outcome_cache.get(k, 0)
                + point_grid.outcome_cache.get(k, 0)
                for k in base_grid.outcome_cache
            },
            journal_path=point_grid.journal_path,
        )

    if isinstance(baseline_cell, CellFailure):
        raise GridExecutionError(grid)
    failures = [c for c in point_cells if isinstance(c, CellFailure)]
    if strict and failures:
        raise GridExecutionError(grid)

    baseline_outcome = baseline_cell
    t1 = baseline_outcome.metrics.total_time_ns
    result = SweepResult(workload=specs[0].workload)
    point_outcomes = []
    for label, cell in zip(labels, point_cells):
        if isinstance(cell, CellFailure):
            continue
        point_outcomes.append(cell)
        result.points.append(
            SweepPoint(
                label=label,
                metrics=cell.metrics,
                speedup=t1 / cell.metrics.total_time_ns,
            )
        )
    return SweepRun(
        result=result,
        baseline=baseline_outcome,
        outcomes=point_outcomes,
        failures=failures,
        outcome_cache=dict(grid.outcome_cache),
        retry_stats=dict(grid.retry_stats),
    )


def _sum_counters(a: Mapping[str, int], b: Mapping[str, int]) -> dict:
    """Key-wise sum of two counter dicts (union of keys)."""
    return {k: a.get(k, 0) + b.get(k, 0) for k in {*a, *b}}


def refine_top_k(
    sweep: SweepRun,
    labeled_specs: Mapping[str, RunSpec],
    k: int,
    jobs: int = 1,
    trace_cache: TraceCache | str | Path | None = None,
    **resilience,
) -> tuple[SweepRun, set[str]]:
    """Re-run a sweep's top-``k`` points (by speedup) at DES fidelity.

    The cheap-fidelity sweep ranks the design space; the winners are
    then confirmed at full fidelity: the top ``k`` labels and a fresh
    single-GPU baseline are re-executed with ``fidelity="des"`` and
    their rows substituted into the returned :class:`SweepRun` (same
    label order as the input sweep).  Refined points' speedups are
    normalized against the DES baseline; unrefined points keep their
    original (cheap-fidelity) numbers.

    Returns ``(merged sweep, refined labels)``.  ``k <= 0`` is a no-op.
    """
    from ..sim.sweep import SweepResult

    if k <= 0 or not sweep.result.points:
        return sweep, set()
    ranked = sorted(
        sweep.result.points, key=lambda p: p.speedup, reverse=True
    )
    top = [p.label for p in ranked[:k]]
    des_specs = {
        label: labeled_specs[label].with_options(fidelity="des")
        for label in top
    }
    refined = labeled_sweep(
        des_specs,
        jobs=jobs,
        trace_cache=trace_cache,
        baseline=sweep.baseline.spec.with_options(fidelity="des"),
        **resilience,
    )
    refined_points = {p.label: p for p in refined.result.points}
    refined_outcomes = {o.spec.key(): o for o in refined.outcomes}
    merged = SweepResult(workload=sweep.result.workload)
    merged_outcomes: list[RunOutcome] = []
    for point, outcome in zip(sweep.result.points, sweep.outcomes):
        replacement = refined_points.get(point.label)
        if replacement is not None:
            merged.points.append(replacement)
            merged_outcomes.append(
                refined_outcomes.get(
                    des_specs[point.label].key(), outcome
                )
            )
        else:
            merged.points.append(point)
            merged_outcomes.append(outcome)
    return (
        SweepRun(
            result=merged,
            baseline=refined.baseline,
            outcomes=merged_outcomes,
            failures=[*sweep.failures, *refined.failures],
            outcome_cache=_sum_counters(sweep.outcome_cache, refined.outcome_cache),
            retry_stats=_sum_counters(sweep.retry_stats, refined.retry_stats),
        ),
        set(refined_points),
    )
