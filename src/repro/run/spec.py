"""The :class:`RunSpec`: one frozen, hashable description of a run.

A spec captures *everything* that determines a simulation's result:
experiment shape (workload + parameters, GPU count, iterations, seed),
the communication paradigm, the fabric (PCIe generation, topology,
credits, error rate), the FinePack hardware configuration, the compute
model, and an optional fault scenario at an intensity.  Because the
spec is deeply frozen it can be hashed, deduplicated, pickled to worker
processes, and content-addressed:

* :meth:`RunSpec.key` identifies the full run -- equal keys mean
  byte-identical metrics (the simulator is deterministic).
* :meth:`RunSpec.trace_key` identifies only the workload-trace inputs
  ``(workload, params, n_gpus, iterations, seed)`` -- the trace cache's
  address, shared by every paradigm/fabric variation replaying the
  same trace.

Sub-configurations are *deep-frozen*: only the frozen dataclasses
(:class:`FinePackConfig`, :class:`FabricConfig`, :class:`ComputeModel`,
:class:`PCIeGeneration`) are accepted, and loose parameter mappings are
normalized to sorted tuples, so a spec can never alias mutable state
across sweep cells (the ``field(default_factory=...)`` sharing hazard
the old ``ExperimentConfig`` plumbing was prone to).
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass, field, fields, replace
from typing import Any, Mapping

from ..core.config import FabricConfig, FinePackConfig
from ..gpu.compute import ComputeModel
from ..interconnect.pcie import GENERATIONS, PCIE_GEN4, PCIeGeneration

#: Normalized parameter mapping: sorted ``(name, value)`` pairs.
Params = tuple[tuple[str, Any], ...]

_SCALARS = (type(None), bool, int, float, str)


def freeze_params(params: Mapping[str, Any] | Params | None) -> Params:
    """Normalize a parameter mapping to a sorted, hashable tuple.

    Values must be JSON scalars (None/bool/int/float/str) so specs stay
    canonically serializable and content-addressable.
    """
    if params is None:
        return ()
    items = params.items() if isinstance(params, Mapping) else params
    out = []
    for name, value in items:
        if not isinstance(name, str) or not name:
            raise TypeError(f"parameter names must be non-empty strings: {name!r}")
        if not isinstance(value, _SCALARS):
            raise TypeError(
                f"parameter {name!r} must be a JSON scalar for spec "
                f"hashing, got {type(value).__name__}"
            )
        out.append((name, value))
    out.sort(key=lambda kv: kv[0])
    if len({k for k, _ in out}) != len(out):
        raise ValueError(f"duplicate parameter names in {out!r}")
    return tuple(out)


def _require(value: Any, cls: type, what: str) -> Any:
    if not isinstance(value, cls):
        raise TypeError(
            f"{what} must be a frozen {cls.__name__}, got {type(value).__name__}"
        )
    return value


@dataclass(frozen=True, slots=True)
class RunSpec:
    """Frozen description of one simulation run.

    Attributes
    ----------
    workload, workload_params:
        Registry name (:data:`repro.registry.workloads`) plus the
        constructor kwargs; together with ``n_gpus``/``iterations``/
        ``seed`` they address the workload trace.
    paradigm, paradigm_params:
        Registry name (:data:`repro.registry.paradigms`) plus
        constructor kwargs.  The ``finepack`` paradigm implicitly
        receives :attr:`finepack` unless ``config`` is overridden.
    generation:
        PCIe link parameters (a frozen :class:`PCIeGeneration`).
    topology, topology_params:
        Topology registry kind, or ``None`` for the system default
        (``single_switch``; single-GPU runs build no fabric at all),
        plus factory-specific keywords (``fanout``, ``planes``,
        ``oversubscription``, ...) as a normalized parameter tuple.
    scenario, intensity:
        Optional fault scenario as canonical JSON (the
        :class:`~repro.faults.schedule.FaultSchedule` schema) and the
        intensity the schedule is scaled to at run time.
    fidelity:
        ``"des"`` (default) runs the discrete-event simulator;
        ``"analytical"`` predicts the metrics in closed form via
        :func:`repro.analytical.predict_metrics` (no event loop; see
        ``docs/analytical.md`` for the cost model and its calibrated
        error budget).  Fault scenarios require ``"des"``.
    """

    workload: str
    paradigm: str = "finepack"
    workload_params: Params = ()
    paradigm_params: Params = ()
    n_gpus: int = 4
    iterations: int = 3
    seed: int = 7
    generation: PCIeGeneration = PCIE_GEN4
    finepack: FinePackConfig = field(default_factory=FinePackConfig)
    fabric: FabricConfig = field(default_factory=FabricConfig)
    compute: ComputeModel = field(default_factory=ComputeModel)
    barrier_ns: float = 2_000.0
    topology: str | None = None
    topology_params: Params = ()
    with_credits: bool = False
    scenario: str | None = None
    intensity: float = 1.0
    fidelity: str = "des"

    def __post_init__(self) -> None:
        if not self.workload:
            raise ValueError("spec needs a workload name")
        if self.fidelity not in ("des", "analytical"):
            raise ValueError(
                f"fidelity must be 'des' or 'analytical': {self.fidelity!r}"
            )
        if self.fidelity == "analytical" and self.scenario is not None:
            raise ValueError(
                "fault scenarios are event-ordered and cannot be modeled "
                "analytically; use fidelity='des' for this spec"
            )
        if self.n_gpus < 1:
            raise ValueError(f"n_gpus must be >= 1: {self.n_gpus}")
        if self.iterations < 1:
            raise ValueError(f"iterations must be >= 1: {self.iterations}")
        if self.intensity < 0:
            raise ValueError(f"intensity must be >= 0: {self.intensity}")
        # Deep-freeze: normalize loose mappings, reject mutable
        # stand-ins for the frozen sub-configs.
        object.__setattr__(self, "workload_params", freeze_params(self.workload_params))
        object.__setattr__(self, "paradigm_params", freeze_params(self.paradigm_params))
        object.__setattr__(self, "topology_params", freeze_params(self.topology_params))
        _require(self.generation, PCIeGeneration, "generation")
        _require(self.finepack, FinePackConfig, "finepack")
        _require(self.fabric, FabricConfig, "fabric")
        _require(self.compute, ComputeModel, "compute")
        if self.scenario is not None:
            # Canonicalize so equal schedules hash equally regardless
            # of the caller's JSON formatting.
            from ..faults.schedule import FaultSchedule

            canonical = FaultSchedule.from_json(self.scenario).to_json(indent=None)
            object.__setattr__(self, "scenario", canonical)

    # -- derived constructors ---------------------------------------

    @classmethod
    def for_workload(
        cls,
        workload,
        paradigm: str = "finepack",
        *,
        paradigm_params: Mapping[str, Any] | Params = (),
        **overrides,
    ) -> "RunSpec":
        """Spec for a workload instance, class, or registry name.

        Instances contribute their :meth:`spec_params`; classes and
        names use constructor defaults.  Remaining keyword arguments
        are spec fields (``n_gpus=2, seed=11, ...``).
        """
        name, params = _workload_identity(workload)
        return cls(
            workload=name,
            workload_params=freeze_params(params),
            paradigm=paradigm,
            paradigm_params=freeze_params(paradigm_params),
            **overrides,
        )

    def with_options(self, **overrides) -> "RunSpec":
        """A copy with the given fields replaced (params may be dicts)."""
        for key in ("workload_params", "paradigm_params", "topology_params"):
            if key in overrides:
                overrides[key] = freeze_params(overrides[key])
        return replace(self, **overrides)

    def single_gpu_baseline(self) -> "RunSpec":
        """The 1-GPU infinite-bandwidth run speedups normalize against."""
        return self.with_options(
            n_gpus=1,
            paradigm="infinite",
            paradigm_params=(),
            topology=None,
            topology_params=(),
            with_credits=False,
            scenario=None,
            intensity=0.0,
            fabric=FabricConfig(),
        )

    # -- content addressing -----------------------------------------

    def canonical(self) -> dict:
        """JSON-able dict of every field (stable key order)."""
        out = {}
        for f in fields(self):
            v = getattr(self, f.name)
            if isinstance(v, (PCIeGeneration, FinePackConfig, FabricConfig, ComputeModel)):
                v = asdict(v)
            elif isinstance(v, tuple):
                v = [list(kv) for kv in v]
            out[f.name] = v
        return out

    def trace_inputs(self) -> dict:
        """The sub-dict that determines the workload trace."""
        return {
            "workload": self.workload,
            "workload_params": [list(kv) for kv in self.workload_params],
            "n_gpus": self.n_gpus,
            "iterations": self.iterations,
            "seed": self.seed,
        }

    def key(self) -> str:
        """Content hash of the full run description."""
        return _digest(self.canonical())

    def trace_key(self) -> str:
        """Content hash of the trace inputs (the trace-cache address)."""
        return _digest(self.trace_inputs())

    # -- component construction (used by RunContext) ----------------

    def build_workload(self):
        """Instantiate the workload via the registry."""
        from .. import registry

        return registry.workloads.resolve(self.workload)(
            **dict(self.workload_params)
        )

    def build_paradigm(self):
        """Instantiate the paradigm via the registry.

        ``finepack`` receives the spec's :attr:`finepack` config unless
        ``paradigm_params`` overrides ``config``.
        """
        from .. import registry
        from ..sim.paradigms import FinePackParadigm

        cls = registry.paradigms.resolve(self.paradigm)
        kwargs = dict(self.paradigm_params)
        if issubclass(cls, FinePackParadigm) and "config" not in kwargs:
            kwargs["config"] = self.finepack
        return cls(**kwargs)

    def build_schedule(self):
        """The scenario scaled to :attr:`intensity`, or ``None``."""
        if self.scenario is None:
            return None
        from ..faults.schedule import FaultSchedule

        return FaultSchedule.from_json(self.scenario).scaled(self.intensity)


def _workload_identity(workload) -> tuple[str, Params]:
    """``(registry name, constructor params)`` for name/class/instance."""
    from .. import registry
    from ..workloads.base import MultiGPUWorkload

    if isinstance(workload, str):
        registry.workloads.resolve(workload)  # raise early, with suggestions
        return workload, ()
    if isinstance(workload, type):
        name = getattr(workload, "name", None)
        if not name or registry.workloads.get(name) is not workload:
            raise ValueError(
                f"workload class {workload.__name__} is not registered; "
                f"add @registry.workloads.register(...)"
            )
        return name, ()
    if isinstance(workload, MultiGPUWorkload):
        name = workload.name
        if registry.workloads.get(name) is not type(workload):
            raise ValueError(
                f"workload instance {workload!r} is not the registered "
                f"{name!r} class; register it to build specs from it"
            )
        return name, freeze_params(workload.spec_params())
    raise TypeError(f"cannot build a spec from {workload!r}")


def _digest(obj: dict) -> str:
    payload = json.dumps(obj, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:24]
