"""Resilient grid execution primitives: retry policy, failure records,
journaled resume.

:mod:`repro.faults` made the *simulated* fabric survive faults; this
module makes the *execution layer* survive them.  The supervised
executor (:func:`repro.run.executor.execute_grid`) uses these pieces to
turn a crashed, hung, or flaky worker process into data instead of an
aborted sweep:

* :class:`RetryPolicy` -- per-cell wall-clock timeout plus retry with
  exponential backoff and deterministic jitter, escalating to
  *quarantine* after the attempt budget is spent;
* :class:`CellFailure` -- the degraded-cell record (exception type,
  attempts, duration, worker pid) a ``strict=False`` grid returns in
  place of a :class:`~repro.run.context.RunOutcome`, mirroring the
  ``DegradedRunError`` philosophy one layer up;
* :class:`GridOutcome` -- the full ``RunOutcome | CellFailure`` cell
  vector with retry/quarantine/outcome-cache accounting;
* :class:`GridJournal` -- an append-only JSONL log of cell
  start/finish/fail/quarantine events.  Together with the
  content-addressed :class:`~repro.run.outcomes.OutcomeStore` it makes
  grids resumable: an interrupted invocation re-runs only unfinished or
  quarantined cells and produces results byte-identical to an
  uninterrupted run.

Everything here is executor-side (parent process) and deterministic:
backoff jitter is seeded on ``(cell key, attempt)``, journals record
the grid's content key so a resume against a different grid fails
loudly, and accounting fields never participate in outcome equality.
"""

from __future__ import annotations

import hashlib
import json
import random
from dataclasses import dataclass, field
from pathlib import Path
from typing import Sequence

from .spec import RunSpec


@dataclass(frozen=True)
class RetryPolicy:
    """How the supervised executor treats a misbehaving grid cell.

    Attributes
    ----------
    max_attempts:
        Total tries per cell (first run included) before the cell is
        quarantined.  ``1`` disables retry.
    timeout_s:
        Per-attempt wall-clock budget.  In parallel mode an attempt
        exceeding it is treated as a hung worker: the pool is killed
        and replaced, the cell charged a failed attempt.  ``None``
        disables timeouts.  In-process (``jobs=1``) execution cannot
        preempt a hung cell, so timeouts require worker processes.
    backoff_base_s, backoff_factor, backoff_max_s:
        Exponential backoff between a cell's attempts:
        ``base * factor**(attempt-1)`` capped at ``backoff_max_s``.
    jitter:
        Fractional jitter added to each backoff, drawn from a PRNG
        seeded on ``(cell key, attempt)`` so schedules are reproducible.
    """

    max_attempts: int = 3
    timeout_s: float | None = None
    backoff_base_s: float = 0.05
    backoff_factor: float = 2.0
    backoff_max_s: float = 5.0
    jitter: float = 0.25

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1: {self.max_attempts}")
        if self.timeout_s is not None and self.timeout_s <= 0:
            raise ValueError(f"timeout_s must be positive: {self.timeout_s}")
        if self.backoff_base_s < 0 or self.backoff_max_s < 0:
            raise ValueError("backoff durations must be >= 0")
        if self.jitter < 0:
            raise ValueError(f"jitter must be >= 0: {self.jitter}")

    def backoff(self, key: str, attempt: int) -> float:
        """Delay before retry number ``attempt`` (1-based) of cell ``key``.

        Deterministic: equal ``(key, attempt)`` pairs always produce
        the same delay, so retry schedules are reproducible run to run.
        """
        base = min(
            self.backoff_base_s * self.backoff_factor ** max(attempt - 1, 0),
            self.backoff_max_s,
        )
        if not self.jitter:
            return base
        return base * (1.0 + self.jitter * random.Random(f"{key}:{attempt}").random())


@dataclass
class CellFailure:
    """One grid cell that exhausted its retry budget.

    The executor-level analogue of
    :class:`~repro.faults.errors.DegradedRunError`: instead of aborting
    the grid, a ``strict=False`` run reports the failed cell as data.

    ``kind`` is the *last* failure mode observed: ``"error"`` (the
    worker raised), ``"crash"`` (the worker process died), or
    ``"timeout"`` (the attempt exceeded the policy's wall-clock budget
    and the worker was killed).
    """

    spec: RunSpec
    index: int
    error_type: str
    message: str
    attempts: int
    duration_s: float
    kind: str = "error"
    worker_pid: int | None = None
    quarantined: bool = True

    def as_dict(self) -> dict:
        return {
            "index": self.index,
            "key": self.spec.key(),
            "kind": self.kind,
            "error_type": self.error_type,
            "message": self.message,
            "attempts": self.attempts,
            "duration_s": round(self.duration_s, 6),
            "worker_pid": self.worker_pid,
            "quarantined": self.quarantined,
        }


class GridExecutionError(RuntimeError):
    """A strict grid had cells that failed past their retry budget.

    Carries the full :class:`GridOutcome` so callers can still inspect
    the surviving cells and the failure accounting.
    """

    def __init__(self, grid: "GridOutcome") -> None:
        self.grid = grid
        failures = grid.failures()
        detail = "; ".join(
            f"cell {f.index} ({f.spec.workload}/{f.spec.paradigm}): "
            f"{f.kind} {f.error_type} after {f.attempts} attempt(s)"
            for f in failures[:3]
        )
        more = f" (+{len(failures) - 3} more)" if len(failures) > 3 else ""
        super().__init__(
            f"{len(failures)} of {len(grid.cells)} grid cell(s) failed: "
            f"{detail}{more}"
        )


@dataclass
class GridOutcome:
    """Everything a supervised grid produced, in input order.

    ``cells[i]`` is the :class:`~repro.run.context.RunOutcome` for
    ``specs[i]``, or a :class:`CellFailure` when the cell exhausted its
    retry budget under ``strict=False``.
    """

    cells: list = field(default_factory=list)
    #: Executor accounting: ``retried`` / ``quarantined`` / ``timeouts``
    #: / ``crashes`` / ``errors`` charged-event counts, ``pool_breaks``
    #: (worker-pool deaths observed, charged or not) and total
    #: ``attempts``.
    retry_stats: dict = field(default_factory=dict)
    #: ``{"hits": h, "misses": m, "corrupt": c}`` outcome-store traffic
    #: for this grid (all zeros when no store was attached).
    outcome_cache: dict = field(default_factory=dict)
    #: The journal file backing this grid, when journaling was on.
    journal_path: str | None = None

    @property
    def ok(self) -> bool:
        """True when every cell completed (no failures)."""
        return not self.failures()

    def outcomes(self) -> list:
        """The completed cells, input order preserved."""
        return [c for c in self.cells if not isinstance(c, CellFailure)]

    def failures(self) -> list[CellFailure]:
        """The failed cells, input order preserved."""
        return [c for c in self.cells if isinstance(c, CellFailure)]

    def quarantined(self) -> list[CellFailure]:
        """Failed cells that exhausted their retry budget."""
        return [f for f in self.failures() if f.quarantined]


def grid_key(specs: Sequence[RunSpec]) -> str:
    """Content hash of a grid: the ordered cell keys.

    Journals are stamped with it so ``--resume`` against a *different*
    grid is rejected instead of silently mismatching cell indices.
    """
    h = hashlib.sha256()
    for spec in specs:
        h.update(spec.key().encode("ascii"))
        h.update(b"\n")
    return h.hexdigest()[:24]


class GridJournal:
    """Append-only JSONL log of grid-cell lifecycle events.

    One line per event::

        {"e": "grid", "key": <grid key>, "cells": N}      (header)
        {"e": "start", "i": 3, "key": ..., "attempt": 1}
        {"e": "finish", "i": 3, "key": ...}
        {"e": "cached", "i": 4, "key": ...}               (store hit)
        {"e": "fail", "i": 5, "key": ..., "attempt": 1, "kind": "crash",
         "error": "BrokenProcessPool", ...}
        {"e": "quarantine", "i": 5, "key": ..., "attempts": 3}

    ``finish``/``cached`` events mark a cell *done*; a resumed grid
    re-runs everything else (including quarantined cells -- quarantine
    is an invitation to retry later, not a permanent verdict).  Events
    are flushed line-by-line so a killed process loses at most the
    event being written; a torn trailing line is ignored on load.
    """

    def __init__(
        self,
        path: str | Path,
        specs: Sequence[RunSpec],
        resume: bool = False,
    ) -> None:
        self.path = Path(path)
        self.key = grid_key(specs)
        self._done: dict[int, str] = {}
        existing = self._load(self.path) if resume else []
        if resume and existing:
            header = existing[0]
            if header.get("e") != "grid" or header.get("key") != self.key:
                raise ValueError(
                    f"journal {self.path} records grid "
                    f"{header.get('key')!r}, not this grid ({self.key}): "
                    f"refusing to resume against a different spec grid"
                )
            if header.get("cells") != len(specs):
                raise ValueError(
                    f"journal {self.path} records {header.get('cells')} "
                    f"cells, grid has {len(specs)}"
                )
            for ev in existing[1:]:
                if ev.get("e") in ("finish", "cached"):
                    self._done[int(ev["i"])] = ev["key"]
        self.path.parent.mkdir(parents=True, exist_ok=True)
        mode = "a" if resume and existing else "w"
        self._fh = open(self.path, mode, encoding="utf-8")
        if mode == "w":
            self._event({"e": "grid", "key": self.key, "cells": len(specs)})
        else:
            self._event({"e": "resume", "done": len(self._done)})

    @staticmethod
    def _load(path: Path) -> list[dict]:
        if not path.exists():
            return []
        events = []
        with open(path, encoding="utf-8") as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    events.append(json.loads(line))
                except json.JSONDecodeError:
                    break  # torn trailing write from a killed process
        return events

    # -- the resume contract ----------------------------------------

    def finished(self, index: int, spec: RunSpec) -> bool:
        """Whether a prior invocation completed this cell."""
        return self._done.get(index) == spec.key()

    # -- event recording --------------------------------------------

    def _event(self, obj: dict) -> None:
        self._fh.write(json.dumps(obj, separators=(",", ":")))
        self._fh.write("\n")
        self._fh.flush()

    def record_start(self, index: int, spec: RunSpec, attempt: int) -> None:
        self._event(
            {"e": "start", "i": index, "key": spec.key(), "attempt": attempt}
        )

    def record_finish(self, index: int, spec: RunSpec) -> None:
        self._done[index] = spec.key()
        self._event({"e": "finish", "i": index, "key": spec.key()})

    def record_cached(self, index: int, spec: RunSpec) -> None:
        self._done[index] = spec.key()
        self._event({"e": "cached", "i": index, "key": spec.key()})

    def record_fail(
        self,
        index: int,
        spec: RunSpec,
        attempt: int,
        kind: str,
        error_type: str,
        message: str,
    ) -> None:
        self._event(
            {
                "e": "fail",
                "i": index,
                "key": spec.key(),
                "attempt": attempt,
                "kind": kind,
                "error": error_type,
                "message": message[:200],
            }
        )

    def record_quarantine(self, index: int, spec: RunSpec, attempts: int) -> None:
        self._event(
            {"e": "quarantine", "i": index, "key": spec.key(), "attempts": attempts}
        )

    def close(self) -> None:
        try:
            self._fh.close()
        except OSError:  # pragma: no cover - close failures are benign
            pass

    def __enter__(self) -> "GridJournal":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
