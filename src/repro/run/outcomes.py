"""Content-addressed store of completed :class:`RunOutcome`\\ s.

The :class:`~repro.run.cache.TraceCache` deduplicates the *input* side
of a grid (workload traces); the :class:`OutcomeStore` deduplicates the
*output* side: a finished :class:`~repro.run.context.RunOutcome` is
persisted under :meth:`RunSpec.key() <repro.run.spec.RunSpec.key>` --
the content hash of everything that determines the result -- so an
identical spec is never simulated twice.  This is the durability layer
the resilient executor (:mod:`repro.run.resilience`) journals against:
an interrupted grid resumes by reloading finished cells from the store,
and a repeated sweep against a warm store skips simulation entirely.

Two storage layers, mirroring the trace cache:

* an in-process memory layer (always on), holding the *serialized*
  outcome bytes so every ``get`` returns a fresh object -- callers can
  never alias mutable metrics across grid cells;
* an optional on-disk layer (``root`` directory of
  ``outcome-<key>.pkl`` files), shared across processes and
  invocations.  Every file carries a leading SHA-256 line over its
  pickle payload; writes are atomic (temp file + ``os.replace``) and a
  checksum mismatch or unreadable entry is deleted and counted, never
  fatal -- exactly the trace cache's corruption contract.

Traffic is counted in a :class:`~repro.obs.counters.CounterRegistry`
(``outcome_cache.hits`` / ``.misses`` / ``.corrupt``), surfaced by the
executor as the grid's ``outcome_cache`` stats.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import tempfile
from pathlib import Path

from ..obs.counters import CounterRegistry

#: Environment variable naming a persistent default store directory.
OUTCOME_ENV = "REPRO_OUTCOME_STORE"

#: Magic first-line prefix of a store file (versioned for migrations).
_MAGIC = b"repro-outcome/1 sha256="


def _digest(payload: bytes) -> bytes:
    return hashlib.sha256(payload).hexdigest().encode("ascii")


class OutcomeStore:
    """Memory + optional-disk store of executed run outcomes.

    ``root=None`` gives a memory-only store (one process, one
    invocation); a directory path adds the shared, checksummed on-disk
    layer.
    """

    def __init__(self, root: str | Path | None = None) -> None:
        self.root = Path(root).expanduser() if root is not None else None
        self._memory: dict[str, bytes] = {}
        self.counters = CounterRegistry()

    @classmethod
    def from_env(cls) -> "OutcomeStore":
        """A store rooted at ``$REPRO_OUTCOME_STORE`` (memory-only if unset)."""
        return cls(os.environ.get(OUTCOME_ENV) or None)

    @classmethod
    def colocated(cls, trace_cache) -> "OutcomeStore":
        """A store living next to a :class:`TraceCache`'s disk layer.

        Disk-backed caches get ``<cache root>/outcomes``; memory-only
        caches get a memory-only store.
        """
        root = getattr(trace_cache, "root", None)
        return cls(None if root is None else Path(root) / "outcomes")

    # -- addressing -------------------------------------------------

    def path_for(self, key: str) -> Path | None:
        """The file an entry lives in (``None`` when memory-only)."""
        if self.root is None:
            return None
        return self.root / f"outcome-{key}.pkl"

    # -- lookup / insert --------------------------------------------

    def get(self, spec_or_key):
        """The stored :class:`RunOutcome` for a spec (or raw key), or
        ``None``.

        Returned outcomes are freshly deserialized (never aliased) and
        carry ``cached=True``.  Corrupted disk entries are deleted,
        counted, and treated as misses.
        """
        key = spec_or_key if isinstance(spec_or_key, str) else spec_or_key.key()
        payload = self._memory.get(key)
        if payload is None:
            payload = self._load_disk(key)
        if payload is None:
            self.counters.counter("outcome_cache.misses").inc()
            return None
        try:
            outcome = pickle.loads(payload)
        except Exception:
            self._drop_corrupt(key)
            self.counters.counter("outcome_cache.misses").inc()
            return None
        self.counters.counter("outcome_cache.hits").inc()
        outcome.cached = True
        # The original run's trace-cache deltas are history, not this
        # invocation's traffic -- a served outcome touched no traces.
        outcome.cache_stats = dict.fromkeys(outcome.cache_stats, 0)
        self._memory[key] = payload
        return outcome

    def put(self, outcome) -> str:
        """Persist a completed outcome under its spec's key; returns it."""
        key = outcome.spec.key()
        payload = pickle.dumps(outcome, protocol=pickle.HIGHEST_PROTOCOL)
        self._memory[key] = payload
        path = self.path_for(key)
        if path is not None:
            self._write_atomic(path, payload)
        return key

    def __contains__(self, spec_or_key) -> bool:
        key = spec_or_key if isinstance(spec_or_key, str) else spec_or_key.key()
        if key in self._memory:
            return True
        path = self.path_for(key)
        return path is not None and path.exists()

    # -- disk layer -------------------------------------------------

    def _load_disk(self, key: str) -> bytes | None:
        path = self.path_for(key)
        if path is None or not path.exists():
            return None
        try:
            raw = path.read_bytes()
            header, payload = raw.split(b"\n", 1)
        except (OSError, ValueError):
            self._drop_corrupt(key)
            return None
        if not header.startswith(_MAGIC) or header[len(_MAGIC):] != _digest(payload):
            self._drop_corrupt(key)
            return None
        return payload

    def _write_atomic(self, path: Path, payload: bytes) -> None:
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=path.parent, prefix=path.name + ".tmp.")
        try:
            with os.fdopen(fd, "wb") as fh:
                fh.write(_MAGIC + _digest(payload) + b"\n")
                fh.write(payload)
            os.replace(tmp, path)
        except OSError:
            try:
                os.unlink(tmp)
            except OSError:
                pass

    def _drop_corrupt(self, key: str) -> None:
        self.counters.counter("outcome_cache.corrupt").inc()
        self._memory.pop(key, None)
        path = self.path_for(key)
        if path is not None:
            try:
                path.unlink()
            except OSError:
                pass

    # -- introspection ----------------------------------------------

    def stats(self) -> dict[str, int]:
        """``{"hits": h, "misses": m, "corrupt": c}`` so far."""
        snap = self.counters.snapshot()
        return {
            "hits": int(snap.get("outcome_cache.hits", 0)),
            "misses": int(snap.get("outcome_cache.misses", 0)),
            "corrupt": int(snap.get("outcome_cache.corrupt", 0)),
        }

    def clear_memory(self) -> None:
        """Drop the in-process layer (disk files stay)."""
        self._memory.clear()
