"""Byte-breakdown analysis helpers (paper Figure 10)."""

from __future__ import annotations

from ..sim.metrics import RunMetrics
from ..sim.runner import ComparisonResult


def breakdown_rows(
    result: ComparisonResult, reference: str = "dma"
) -> list[list[object]]:
    """Figure 10 rows for one workload: byte categories normalized to
    the bulk-DMA paradigm's total."""
    norm = result.bytes_normalized_to(reference)
    rows = []
    for paradigm, cats in norm.items():
        if paradigm == "infinite":
            continue
        rows.append(
            [
                result.workload,
                paradigm,
                cats["useful"],
                cats["protocol_overhead"],
                cats["wasted"],
                cats["total"],
            ]
        )
    return rows


def data_reduction_factors(result: ComparisonResult) -> dict[str, float]:
    """FinePack's wire-byte reduction vs the baselines (the paper's
    headline '2.7x less data than P2P, 1.3x less than DMA')."""
    fp = result.runs["finepack"].wire_bytes
    out = {}
    for name in ("p2p", "dma", "wc"):
        if name in result.runs and fp:
            out[name] = result.runs[name].wire_bytes / fp
    return out


def wasted_fraction(metrics: RunMetrics) -> float:
    """Share of on-wire bytes that were wasted (redundant or unread)."""
    return metrics.bytes.wasted / metrics.bytes.total if metrics.bytes.total else 0.0
