"""Interconnect goodput analysis (paper Figure 2).

Computes the fraction of useful bytes vs. maximum theoretical
throughput as the per-store transfer size varies, for PCIe and NVLink.
The paper measures these curves on real systems up to 128 B (P2P stores
never exceed a cache line) and projects beyond; here the same per-packet
byte arithmetic produces the whole curve.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..interconnect.nvlink import NVLinkProtocol
from ..interconnect.pcie import PCIeProtocol

#: The store sizes swept in Figure 2 (bytes).
FIG2_SIZES = (4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096, 8192, 16384)


@dataclass(frozen=True)
class GoodputPoint:
    size: int
    pcie: float
    nvlink: float
    measured: bool  #: True up to 128 B (directly measurable), projected beyond


def goodput_curve(
    pcie: PCIeProtocol | None = None,
    nvlink: NVLinkProtocol | None = None,
    sizes: tuple[int, ...] = FIG2_SIZES,
) -> list[GoodputPoint]:
    """The Figure 2 series: goodput per transfer size for both protocols.

    Sizes above each protocol's max payload are carried as a train of
    max-payload packets (which is how a DMA engine would move them).
    """
    pcie = pcie or PCIeProtocol()
    nvlink = nvlink or NVLinkProtocol()
    points = []
    for size in sizes:
        if size <= pcie.max_payload:
            p_payload, p_overhead = pcie.store_wire_cost(size)
        else:
            p_payload, p_overhead = pcie.bulk_transfer_cost(size)
        if size <= nvlink.max_payload:
            n_payload, n_overhead = nvlink.store_wire_cost(size)
        else:
            n_payload, n_overhead = nvlink.bulk_transfer_cost(size)
        points.append(
            GoodputPoint(
                size=size,
                pcie=p_payload / (p_payload + p_overhead),
                nvlink=n_payload / (n_payload + n_overhead),
                measured=size <= 128,
            )
        )
    return points


def efficiency_ratio(small: int, large: int, pcie: PCIeProtocol | None = None) -> float:
    """Goodput(large) / goodput(small) on PCIe -- e.g. the paper's
    '32 B transfers are roughly half as efficient as 128 B'."""
    pcie = pcie or PCIeProtocol()
    return pcie.store_goodput(large) / pcie.store_goodput(small)
