"""Plain-text table formatting for the benchmark harness.

Every bench prints the rows/series the corresponding paper figure or
table reports, in a fixed-width format that is easy to diff across
runs and paste into EXPERIMENTS.md.
"""

from __future__ import annotations

from typing import Sequence


def format_table(
    title: str,
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    float_fmt: str = "{:.3f}",
) -> str:
    """Render a fixed-width table with a title banner."""

    def cell(v: object) -> str:
        if isinstance(v, float):
            return float_fmt.format(v)
        return str(v)

    rendered = [[cell(v) for v in row] for row in rows]
    widths = [
        max(len(h), *(len(r[i]) for r in rendered)) if rendered else len(h)
        for i, h in enumerate(headers)
    ]
    lines = [f"=== {title} ==="]
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rendered:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def format_link_timeline(tracer, title: str = "per-link timeline") -> str:
    """Per-link activity summary from a traced run (``repro.obs``).

    Aggregates the tracer's ``LINK_TX`` serialization spans into one row
    per link direction: transmissions, wire bytes, busy time, and the
    active window (first transmission start to last transmission end).
    """
    from ..obs.events import EventKind

    per_link: dict[str, list[float]] = {}
    for e in tracer.events:
        if e.kind is not EventKind.LINK_TX:
            continue
        row = per_link.get(e.track)
        if row is None:
            row = per_link[e.track] = [0, 0, 0.0, e.time_ns, e.end_ns]
        row[0] += 1
        row[1] += e.attrs["wire_bytes"]
        row[2] += e.dur_ns
        row[3] = min(row[3], e.time_ns)
        row[4] = max(row[4], e.end_ns)
    rows = [
        [link, int(n), int(nbytes), busy / 1e3, first / 1e3, last / 1e3]
        for link, (n, nbytes, busy, first, last) in sorted(per_link.items())
    ]
    return format_table(
        title,
        ["link", "msgs", "wire_B", "busy_us", "first_us", "last_us"],
        rows,
        float_fmt="{:.1f}",
    )


def format_link_stats_table(
    metrics, title: str = "per-link fabric stats"
) -> str:
    """Per-link traffic and fault counters from one run's metrics.

    Renders :attr:`RunMetrics.link_stats` (populated by every
    :meth:`MultiGPUSystem.run`) as one row per link direction, with the
    DLL-replay and retransmit attribution columns the fault subsystem
    maintains.  Appends a warning when any link hit the replay cap
    (``replay_saturations``): the analytic replay model under-counts
    wire bytes past that point, so the affected link's numbers are a
    lower bound.
    """
    rows = []
    for link, s in sorted(metrics.link_stats.items()):
        rows.append(
            [
                link,
                int(s["messages"]),
                int(s["wire_bytes"]),
                s["utilization"],
                int(s["replays"]),
                int(s["replay_bytes"]),
                int(s["retransmits"]),
                s["fault_stall_ns"] / 1e3,
            ]
        )
    table = format_table(
        title,
        ["link", "msgs", "wire_B", "util", "replays", "replay_B",
         "rtx", "stall_us"],
        rows,
        float_fmt="{:.3f}",
    )
    saturated = {
        link: int(s["replay_saturations"])
        for link, s in sorted(metrics.link_stats.items())
        if s["replay_saturations"]
    }
    if saturated:
        detail = ", ".join(f"{link} x{n}" for link, n in saturated.items())
        table += (
            "\nWARNING: replay cap (8) saturated on: "
            f"{detail} -- replay byte counts are a lower bound"
        )
    return table


def format_speedup_table(title: str, speedups: dict[str, dict[str, float]]) -> str:
    """Workload-by-paradigm speedup matrix (Figure 9 layout)."""
    paradigms = sorted({p for row in speedups.values() for p in row})
    headers = ["workload", *paradigms]
    rows = [
        [name, *(row.get(p, float("nan")) for p in paradigms)]
        for name, row in speedups.items()
    ]
    return format_table(title, headers, rows, float_fmt="{:.2f}")
