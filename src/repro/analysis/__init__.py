"""Analysis and reporting: goodput curves (Fig. 2), byte breakdowns
(Fig. 10), and the fixed-width table formatting the benches print."""

from .breakdown import breakdown_rows, data_reduction_factors, wasted_fraction
from .goodput import FIG2_SIZES, GoodputPoint, efficiency_ratio, goodput_curve
from .report import (
    format_link_stats_table,
    format_link_timeline,
    format_speedup_table,
    format_table,
)

__all__ = [
    "breakdown_rows",
    "data_reduction_factors",
    "wasted_fraction",
    "FIG2_SIZES",
    "GoodputPoint",
    "efficiency_ratio",
    "goodput_curve",
    "format_link_stats_table",
    "format_link_timeline",
    "format_speedup_table",
    "format_table",
]
