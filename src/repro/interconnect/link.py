"""Point-to-point link with serialization timing and byte accounting.

A :class:`Link` models one direction of a full-duplex interconnect lane
bundle: packets serialize one at a time at the link's byte rate, and the
link keeps cumulative per-category byte counters that the metrics layer
reads after a run.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field

import numpy as np

from .flowcontrol import CreditPool
from .message import MessageKind, WireMessage


@dataclass
class LinkStats:
    """Cumulative traffic counters for one link direction."""

    messages: int = 0
    payload_bytes: int = 0
    overhead_bytes: int = 0
    stores_packed: int = 0
    by_kind: dict[MessageKind, int] = field(default_factory=dict)
    busy_time_ns: float = 0.0
    #: DLL replays triggered by injected CRC errors, and the wire bytes
    #: the retransmissions consumed (not counted in ``wire_bytes``).
    replays: int = 0
    replay_bytes: int = 0

    @property
    def wire_bytes(self) -> int:
        return self.payload_bytes + self.overhead_bytes

    @property
    def goodput(self) -> float:
        return self.payload_bytes / self.wire_bytes if self.wire_bytes else 0.0

    def record(self, msg: WireMessage, duration_ns: float) -> None:
        self.messages += 1
        self.payload_bytes += msg.payload_bytes
        self.overhead_bytes += msg.overhead_bytes
        self.stores_packed += msg.stores_packed
        self.by_kind[msg.kind] = self.by_kind.get(msg.kind, 0) + 1
        self.busy_time_ns += duration_ns


@dataclass
class Link:
    """One direction of a link: serializes messages at a fixed byte rate.

    Parameters
    ----------
    name:
        Identifier for debugging/reporting (e.g. ``"gpu0->switch"``).
    bytes_per_ns:
        Serialization bandwidth (1 byte/ns == 1 GB/s).
    propagation_ns:
        Wire/retimer latency added to every message's delivery time.
    credits:
        Optional receiver credit pool; when present, messages stall
        until the receiver has buffer space.
    """

    name: str
    bytes_per_ns: float
    propagation_ns: float = 50.0
    credits: CreditPool | None = None
    #: Probability that any single wire byte of a packet is corrupted,
    #: triggering a data-link-layer replay of the whole packet.  Zero
    #: (default) disables error injection.  The per-link RNG is seeded
    #: from the link name so runs stay deterministic.
    error_rate: float = 0.0
    busy_until: float = 0.0
    stats: LinkStats = field(default_factory=LinkStats)
    #: Optional :class:`repro.obs.Tracer`; when set, every transmission
    #: emits a per-link serialization span (plus flow-control occupancy
    #: for credited links).  Set via :meth:`Topology.set_tracer`.
    tracer: object | None = field(default=None, repr=False, compare=False)
    _rng: np.random.Generator | None = field(default=None, repr=False)

    def __post_init__(self) -> None:
        if self.bytes_per_ns <= 0:
            raise ValueError(f"link bandwidth must be positive: {self.bytes_per_ns}")
        if not 0.0 <= self.error_rate < 1.0:
            raise ValueError(f"error_rate must be in [0, 1): {self.error_rate}")
        if self.error_rate:
            self._rng = np.random.default_rng(zlib.crc32(self.name.encode()))

    def serialization_ns(self, msg: WireMessage) -> float:
        return msg.wire_bytes / self.bytes_per_ns

    def transmit(self, msg: WireMessage, ready_time: float) -> tuple[float, float]:
        """Serialize ``msg``; returns (start_time, delivery_time).

        ``ready_time`` is when the message is available at the egress
        port.  Transmission starts at the later of readiness, link
        availability, and (with flow control) credit availability; it
        completes a serialization delay plus propagation later.  Calls
        must be made in non-decreasing ``ready_time`` order per link,
        which the event-driven system guarantees.
        """
        start = max(ready_time, self.busy_until)
        if self.credits is not None:
            start = max(start, self.credits.earliest_start(start, msg.payload_bytes))
        duration = self.serialization_ns(msg)
        if self._rng is not None:
            # Each corrupted packet is retransmitted in full (PCIe DLL
            # replay); repeated corruption is possible but bounded.
            p_corrupt = 1.0 - (1.0 - self.error_rate) ** msg.wire_bytes
            replays = 0
            while replays < 8 and self._rng.random() < p_corrupt:
                replays += 1
            if replays:
                self.stats.replays += replays
                self.stats.replay_bytes += replays * msg.wire_bytes
                duration *= 1 + replays
        end = start + duration
        self.busy_until = end
        delivery = end + self.propagation_ns
        if self.credits is not None:
            self.credits.commit(delivery, msg.payload_bytes)
        self.stats.record(msg, duration)
        if self.tracer is not None:
            credit_bytes = None
            if self.credits is not None:
                credit_bytes = self.credits.occupancy(start)[1]
            self.tracer.link_transmit(
                self.name, msg, start, end, credit_bytes=credit_bytes
            )
        return start, delivery

    def reset(self) -> None:
        """Clear timing state and counters (between runs)."""
        self.busy_until = 0.0
        self.stats = LinkStats()
        if self.credits is not None:
            self.credits._outstanding.clear()
        if self.error_rate:
            self._rng = np.random.default_rng(zlib.crc32(self.name.encode()))
