"""Point-to-point link with serialization timing and byte accounting.

A :class:`Link` models one direction of a full-duplex interconnect lane
bundle: packets serialize one at a time at the link's byte rate, and the
link keeps cumulative per-category byte counters that the metrics layer
reads after a run.

Links optionally carry a :class:`~repro.faults.state.LinkFaultState`
(armed by a :class:`~repro.faults.injector.FaultInjector`): scheduled
bandwidth degradation, outage windows and CRC bursts then shape every
transmission, with retransmit/stall costs accounted in
:class:`LinkStats`.  A link with no fault state pays a single ``None``
check.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field

import numpy as np

from ..faults.state import LinkFaultState
from .flowcontrol import CreditPool
from .message import KINDS_BY_CODE, MessageKind, WireMessage

#: DLL replay cap: a packet corrupted this many times in a row stops
#: being retried (the real DLL would retrain the link instead).  Hitting
#: the cap is counted in ``LinkStats.replay_saturations``.
MAX_REPLAYS = 8


@dataclass
class LinkStats:
    """Cumulative traffic counters for one link direction."""

    messages: int = 0
    payload_bytes: int = 0
    overhead_bytes: int = 0
    stores_packed: int = 0
    by_kind: dict[MessageKind, int] = field(default_factory=dict)
    busy_time_ns: float = 0.0
    #: DLL replays triggered by injected CRC errors, and the wire bytes
    #: the retransmissions consumed (not counted in ``wire_bytes``).
    replays: int = 0
    replay_bytes: int = 0
    #: Times a packet hit the ``MAX_REPLAYS`` replay cap while still
    #: corrupt -- nonzero means the configured error rate is beyond what
    #: the DLL replay model can faithfully express.
    replay_saturations: int = 0
    #: End-to-end timeout-driven retransmissions: packets that hit a
    #: scheduled outage window and were resent after backoff.
    retransmits: int = 0
    #: Simulated time lost to outage windows: backoff waits plus the
    #: partial serialization of packets killed mid-flight.
    fault_stall_ns: float = 0.0

    @property
    def wire_bytes(self) -> int:
        return self.payload_bytes + self.overhead_bytes

    @property
    def goodput(self) -> float:
        return self.payload_bytes / self.wire_bytes if self.wire_bytes else 0.0

    def record(self, msg: WireMessage, duration_ns: float) -> None:
        self.messages += 1
        self.payload_bytes += msg.payload_bytes
        self.overhead_bytes += msg.overhead_bytes
        self.stores_packed += msg.stores_packed
        self.by_kind[msg.kind] = self.by_kind.get(msg.kind, 0) + 1
        self.busy_time_ns += duration_ns

    def fault_summary(self) -> dict[str, float]:
        """The fault/replay counters, for reports and metrics roll-up."""
        return {
            "replays": self.replays,
            "replay_bytes": self.replay_bytes,
            "replay_saturations": self.replay_saturations,
            "retransmits": self.retransmits,
            "fault_stall_ns": self.fault_stall_ns,
        }


@dataclass
class Link:
    """One direction of a link: serializes messages at a fixed byte rate.

    Parameters
    ----------
    name:
        Identifier for debugging/reporting (e.g. ``"gpu0->switch"``).
    bytes_per_ns:
        Serialization bandwidth (1 byte/ns == 1 GB/s).
    propagation_ns:
        Wire/retimer latency added to every message's delivery time.
    credits:
        Optional receiver credit pool; when present, messages stall
        until the receiver has buffer space.
    """

    name: str
    bytes_per_ns: float
    propagation_ns: float = 50.0
    credits: CreditPool | None = None
    #: Probability that any single wire byte of a packet is corrupted,
    #: triggering a data-link-layer replay of the whole packet.  Zero
    #: (default) disables error injection.  The per-link RNG is seeded
    #: from the link name so runs stay deterministic.
    error_rate: float = 0.0
    busy_until: float = 0.0
    stats: LinkStats = field(default_factory=LinkStats)
    #: Optional :class:`repro.obs.Tracer`; when set, every transmission
    #: emits a per-link serialization span (plus flow-control occupancy
    #: for credited links).  Set via :meth:`Topology.set_tracer`.
    tracer: object | None = field(default=None, repr=False, compare=False)
    #: Scheduled faults shaping this link (armed by a FaultInjector).
    fault_state: LinkFaultState | None = field(
        default=None, repr=False, compare=False
    )
    _rng: np.random.Generator | None = field(default=None, repr=False)

    def __post_init__(self) -> None:
        if self.bytes_per_ns <= 0:
            raise ValueError(f"link bandwidth must be positive: {self.bytes_per_ns}")
        if not 0.0 <= self.error_rate < 1.0:
            raise ValueError(f"error_rate must be in [0, 1): {self.error_rate}")
        self._seed_rng()

    def _seed_rng(self) -> None:
        """(Re)seed the replay RNG from the link name, deterministically.

        An RNG exists whenever replays are possible: a base error rate,
        or armed CRC-burst windows.
        """
        if self.error_rate or (
            self.fault_state is not None and self.fault_state.has_crc()
        ):
            self._rng = np.random.default_rng(zlib.crc32(self.name.encode()))
        else:
            self._rng = None

    def arm_faults(self, state: LinkFaultState | None) -> None:
        """Attach (or clear, with ``None``) scheduled faults."""
        self.fault_state = state
        self._seed_rng()

    def serialization_ns(self, msg: WireMessage) -> float:
        return msg.wire_bytes / self.bytes_per_ns

    def _replay_duration(
        self, msg: WireMessage, duration: float, rate: float
    ) -> float:
        """Duration including DLL replays of corrupted packets.

        Each corrupted packet is retransmitted in full (PCIe DLL
        replay); repeated corruption is possible but bounded by
        ``MAX_REPLAYS``.
        """
        p_corrupt = 1.0 - (1.0 - rate) ** msg.wire_bytes
        replays = 0
        while self._rng.random() < p_corrupt:
            replays += 1
            if replays >= MAX_REPLAYS:
                self.stats.replay_saturations += 1
                break
        if replays:
            self.stats.replays += replays
            self.stats.replay_bytes += replays * msg.wire_bytes
            duration *= 1 + replays
        return duration

    def _faulted_serialization(
        self, msg: WireMessage, start: float
    ) -> tuple[float, float]:
        """(start, duration) under scheduled faults.

        Waits out outage windows via the retransmit/backoff model,
        applies the bandwidth degradation and CRC burst active at the
        transmission start (piecewise-constant per packet), and restarts
        packets killed by an outage opening mid-serialization.  Raises
        :class:`~repro.faults.state.LinkDownError` when the link cannot
        carry the message at all.
        """
        fs = self.fault_state
        assert fs is not None
        while True:
            start = fs.admit(start, self)
            rate = self.bytes_per_ns * fs.bandwidth_factor(start)
            duration = msg.wire_bytes / rate
            err = self.error_rate + fs.error_rate_extra(start)
            if err > 0.0 and self._rng is not None:
                duration = self._replay_duration(msg, duration, min(err, 0.999999))
            cut = fs.cut_after(start, start + duration)
            if cut is None:
                return start, duration
            # The outage killed this packet mid-serialization: the time
            # already spent is wasted, and the sender retransmits.
            self.stats.retransmits += 1
            self.stats.fault_stall_ns += cut.start_ns - start
            start = cut.start_ns

    def transmit(self, msg: WireMessage, ready_time: float) -> tuple[float, float]:
        """Serialize ``msg``; returns (start_time, delivery_time).

        ``ready_time`` is when the message is available at the egress
        port.  Transmission starts at the later of readiness, link
        availability, and (with flow control) credit availability; it
        completes a serialization delay plus propagation later.  Calls
        must be made in non-decreasing ``ready_time`` order per link,
        which the event-driven system guarantees.

        Raises
        ------
        LinkDownError
            When armed faults leave the link unable to carry the
            message (permanent failure, or retries exhausted); the
            topology layer reroutes or drops.
        """
        start = max(ready_time, self.busy_until)
        if self.credits is not None:
            # Transfers larger than the whole receiver buffer (bulk DMA
            # copies) stream through it: admission waits for a full
            # buffer's worth of space, while the commit below charges
            # the true byte count so the drain occupies the pool for
            # the right duration.
            need = min(msg.payload_bytes, self.credits.data_credit_bytes)
            start = max(start, self.credits.earliest_start(start, need))
        if self.fault_state is None:
            duration = self.serialization_ns(msg)
            if self._rng is not None:
                duration = self._replay_duration(msg, duration, self.error_rate)
        else:
            start, duration = self._faulted_serialization(msg, start)
        end = start + duration
        self.busy_until = end
        delivery = end + self.propagation_ns
        if self.credits is not None:
            self.credits.commit(delivery, msg.payload_bytes)
        self.stats.record(msg, duration)
        if self.tracer is not None:
            credit_bytes = None
            if self.credits is not None:
                credit_bytes = self.credits.occupancy(start)[1]
            self.tracer.link_transmit(
                self.name, msg, start, end, credit_bytes=credit_bytes
            )
        return start, delivery

    def transmit_batch(
        self,
        ready: np.ndarray,
        wire_bytes: np.ndarray,
        payload: np.ndarray,
        overhead: np.ndarray,
        stores_packed: np.ndarray,
        kinds: np.ndarray,
    ) -> np.ndarray:
        """Batched :meth:`transmit` for the fault-free, uncredited case.

        ``ready`` must be in the order the event engine would call
        :meth:`transmit` (global issue order).  Returns the delivery
        times.  The busy-time chain is a sequential Python loop over
        unboxed floats -- the identical additions in the identical
        order as the scalar path -- so timings are byte-identical, not
        merely close; only the stats summation and the final
        propagation add are vectorized (both order-insensitive or
        elementwise).
        """
        if (
            self.credits is not None
            or self.fault_state is not None
            or self._rng is not None
            or self.tracer is not None
        ):
            raise RuntimeError(
                f"link {self.name} is stateful (credits/faults/replay/tracer); "
                "batch transmission would not be byte-identical"
            )
        durations = wire_bytes / self.bytes_per_ns
        ends = np.empty_like(durations)
        busy = self.busy_until
        busy_time = self.stats.busy_time_ns
        i = 0
        for r, d in zip(ready.tolist(), durations.tolist()):
            start = r if r > busy else busy
            busy = start + d
            ends[i] = busy
            busy_time += d
            i += 1
        self.busy_until = busy
        st = self.stats
        st.busy_time_ns = busy_time
        st.messages += int(ready.size)
        st.payload_bytes += int(payload.sum())
        st.overhead_bytes += int(overhead.sum())
        st.stores_packed += int(stores_packed.sum())
        codes, first_seen, counts = np.unique(
            kinds, return_index=True, return_counts=True
        )
        for j in np.argsort(first_seen, kind="stable").tolist():
            kind = KINDS_BY_CODE[int(codes[j])]
            st.by_kind[kind] = st.by_kind.get(kind, 0) + int(counts[j])
        return ends + self.propagation_ns

    def reset(self) -> None:
        """Clear timing state and counters (between runs).

        Armed faults persist across resets -- they are part of the
        scenario, not of one run -- but their per-run bookkeeping and
        the replay RNG are restored to their pristine state so repeated
        runs are byte-identical.
        """
        self.busy_until = 0.0
        self.stats = LinkStats()
        if self.credits is not None:
            self.credits.reset()
        if self.fault_state is not None:
            self.fault_state.reset()
        self._seed_rng()
