"""Credit-based flow control for posted writes.

PCIe advertises receiver buffer space as *credits*: header credits (one
per TLP) and data credits (in 16-byte units).  A transmitter may only
start a TLP when enough credits are available; credits are returned as
the receiver drains its ingress buffer.

The simulator uses this to model ingress-buffer back-pressure: when a
receiver's de-packetizer (or L2 write path) cannot absorb packets as
fast as the link delivers them, the link stalls.  The paper sizes the
FinePack de-packetizer buffer at 64 entries of 128 B for exactly this
reason (Sec. IV-B).

A pool optionally carries a :class:`~repro.faults.state.PoolFaultState`
(armed by a :class:`~repro.faults.injector.FaultInjector`): scheduled
drain slowdowns stretch credit-return times, and credit leaks make part
of the receiver buffer temporarily unavailable.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..faults.state import PoolFaultState

#: PCIe data credits are granted in 16-byte units.
DATA_CREDIT_BYTES = 16


@dataclass
class CreditPool:
    """Tracks posted-write credits for one link direction.

    The pool is time-aware but not event-driven: callers ask *when* a
    transaction of a given size could start given the receiver's drain
    rate, which keeps the link model simple while still producing
    correct stall timing.

    Parameters
    ----------
    header_credits:
        Maximum TLPs the receiver can buffer.
    data_credit_bytes:
        Maximum payload bytes the receiver can buffer.
    drain_bytes_per_ns:
        Rate at which the receiver consumes buffered data (its memory
        system write bandwidth), returning credits.
    """

    header_credits: int = 64
    data_credit_bytes: int = 64 * 128
    drain_bytes_per_ns: float = 500.0
    #: Scheduled receiver faults (drain slowdown, credit leak).
    fault_state: PoolFaultState | None = field(
        default=None, repr=False, compare=False
    )
    _outstanding: list[tuple[float, int]] = field(default_factory=list)

    def _drain_until(self, now: float) -> None:
        """Retire buffered transactions fully drained by time ``now``."""
        self._outstanding = [
            (done, nbytes) for done, nbytes in self._outstanding if done > now
        ]

    def occupancy(self, now: float) -> tuple[int, int]:
        """(tlps, bytes) still occupying the receiver buffer at ``now``."""
        self._drain_until(now)
        return len(self._outstanding), sum(b for _, b in self._outstanding)

    def earliest_start(self, now: float, nbytes: int) -> float:
        """Earliest time a TLP with ``nbytes`` payload may start.

        Returns ``now`` when credits are already available, otherwise
        the time at which enough prior transactions will have drained
        (and, under an armed credit leak, the leak to have closed).
        """
        if nbytes > self.data_credit_bytes:
            raise ValueError(
                f"transaction of {nbytes} B exceeds total credit "
                f"capacity {self.data_credit_bytes} B"
            )
        self._drain_until(now)
        pending = sorted(self._outstanding)
        tlps = len(pending)
        occupied = sum(b for _, b in pending)
        start = now
        i = 0
        fs = self.fault_state
        if fs is None:
            while tlps >= self.header_credits or occupied + nbytes > self.data_credit_bytes:
                if i >= len(pending):  # pragma: no cover - guarded by capacity check
                    raise RuntimeError("credit accounting inconsistency")
                done, freed = pending[i]
                start = max(start, done)
                occupied -= freed
                tlps -= 1
                i += 1
            return start
        while True:
            capacity = self.data_credit_bytes - fs.leaked_bytes(start)
            if tlps < self.header_credits and occupied + nbytes <= capacity:
                return start
            if i < len(pending):
                done, freed = pending[i]
                start = max(start, done)
                occupied -= freed
                tlps -= 1
                i += 1
                continue
            # Everything drainable has drained; only a leak can still be
            # squeezing the buffer.  Leak windows are finite, so waiting
            # for the next one to close always makes progress.
            if occupied + nbytes <= self.data_credit_bytes:
                start = max(start, fs.leak_relief_after(start))
                continue
            raise RuntimeError(  # pragma: no cover - guarded by capacity check
                "credit accounting inconsistency"
            )

    def commit(self, arrival: float, nbytes: int) -> float:
        """Record a transaction arriving at ``arrival``; returns drain time.

        The receiver begins draining the payload on arrival at its drain
        rate (scaled down by any armed drain-slowdown window); credits
        return when the drain completes.
        """
        self._drain_until(arrival)
        rate = self.drain_bytes_per_ns
        if self.fault_state is not None:
            rate *= self.fault_state.drain_factor(arrival)
        drain_done = arrival + nbytes / rate
        self._outstanding.append((drain_done, nbytes))
        return drain_done

    def reset(self) -> None:
        """Forget all buffered transactions (between runs).

        Armed fault state persists, like on :class:`Link`.
        """
        self._outstanding.clear()
