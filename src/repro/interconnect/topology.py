"""Interconnect topologies: switched PCIe trees and scaled-up fabrics.

Four topology families are provided:

* :func:`single_switch` -- the paper's 4-GPU testbed: every GPU hangs
  off one PCIe switch with a full-duplex x16 link.
* :func:`two_level_tree` -- the projected 16-GPU system of Sec. VI-B:
  leaf switches of ``fanout`` GPUs joined by a root switch.
* :func:`fat_tree` -- parameterized multi-level fat trees at 8-64+
  GPUs: switch levels are built bottom-up by ``fanout``-way grouping,
  and each uplink trunk aggregates enough parallel links to preserve
  (or deliberately oversubscribe, via ``oversubscription``) the
  bisection bandwidth of the subtree below it.
* :func:`switched_mesh` -- fully-switched multi-plane rail fabrics:
  every GPU attaches to every one of ``planes`` central switches and
  each GPU pair is deterministically pinned to one plane, NVSwitch
  style.

A :class:`Topology` owns all links and switches, routes messages along
the unique tree path, and aggregates link statistics for the metrics
layer.  ``networkx`` backs the structural representation so tests can
assert connectivity/path properties independently of the timing model.

Routing is fault-aware: when a link is permanently down (an armed
``LinkFail``), messages route around it where the graph offers an
alternate path -- including store-and-forward through a peer GPU on
NVSwitch-class topologies, the way collective libraries fall back to
proxy rings.  When no live path remains, :meth:`Topology.route` raises
:class:`~repro.faults.state.RouteBlockedError` and the system layer
accounts the message as dropped.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import networkx as nx

from ..faults.state import LinkDownError, RouteBlockedError
from ..registry import topologies as _registry
from .flowcontrol import CreditPool
from .link import Link, LinkStats
from .message import WireMessage
from .pcie import PCIE_GEN4, PCIeGeneration


@dataclass
class Topology:
    """A tree of switches carrying inter-GPU traffic.

    The object exposes a single :meth:`route` entry point used by the
    simulation engine; everything else is introspection for tests and
    reports.
    """

    n_gpus: int
    generation: PCIeGeneration
    graph: nx.Graph
    #: ``links[(a, b)]`` carries traffic from node ``a`` to node ``b``;
    #: nodes are "gpuN" and "swN" strings.
    links: dict[tuple[str, str], Link]
    forwarding_ns: float = 100.0
    #: Messages that were rerouted around a dead link this run.
    rerouted_messages: int = 0
    #: Structural facts the factory wants to expose to tests/reports
    #: (switch levels, oversubscription ratio, trunk multiplicity, hop
    #: bounds, ...).  Purely descriptive; routing never consults it.
    meta: dict = field(default_factory=dict)
    _paths: dict[tuple[int, int], list[str]] = field(default_factory=dict)
    _detours: dict[tuple, list[str] | None] = field(default_factory=dict)
    #: Links armed with outage windows that can turn permanent; cached
    #: so fault-free routing never scans the link table.
    _fail_links: tuple[tuple[tuple[str, str], Link], ...] = ()

    def _path(self, src: int, dst: int) -> list[str]:
        key = (src, dst)
        if key not in self._paths:
            self._paths[key] = nx.shortest_path(
                self.graph, f"gpu{src}", f"gpu{dst}"
            )
        return self._paths[key]

    # -- fault-aware path selection ---------------------------------

    def rebuild_fault_cache(self) -> None:
        """Re-scan links for armed outage windows.

        Called by :meth:`FaultInjector.arm`/``disarm`` and by
        :meth:`reset`; keeps :meth:`dead_edges_at` free for unfaulted
        topologies.
        """
        self._fail_links = tuple(
            (edge, link)
            for edge, link in self.links.items()
            if link.fault_state is not None and link.fault_state.down
        )
        self._detours.clear()

    def dead_edges_at(self, t: float) -> frozenset[tuple[str, str]]:
        """Directed edges whose link is permanently down at time ``t``."""
        if not self._fail_links:
            return frozenset()
        return frozenset(
            edge
            for edge, link in self._fail_links
            if link.fault_state.permanently_down_at(t)
        )

    def _live_path(
        self, src: int, dst: int, avoid: frozenset[tuple[str, str]]
    ) -> list[str] | None:
        """Shortest path avoiding ``avoid`` edges; ``None`` if cut off.

        Built on the directed link set, so one direction of a duplex
        pair can die while the other keeps carrying traffic.
        """
        if not avoid:
            return self._path(src, dst)
        key = (src, dst, avoid)
        if key not in self._detours:
            digraph = nx.DiGraph()
            digraph.add_nodes_from(self.graph.nodes)
            digraph.add_edges_from(e for e in self.links if e not in avoid)
            try:
                self._detours[key] = nx.shortest_path(
                    digraph, f"gpu{src}", f"gpu{dst}"
                )
            except nx.NetworkXNoPath:
                self._detours[key] = None
        return self._detours[key]

    def route(self, msg: WireMessage, ready_time: float) -> float:
        """Carry ``msg`` hop by hop; returns delivery time at ``msg.dst``.

        If a hop's link is (or goes) permanently down, the message is
        retransmitted end-to-end over an alternate path avoiding every
        link observed dead so far.  Bytes already serialized on earlier
        hops stay accounted on those links -- they really were sent.

        Raises
        ------
        RouteBlockedError
            When no live path to the destination remains.
        """
        if msg.src == msg.dst:
            raise ValueError("local traffic must not enter the interconnect")
        t = ready_time
        avoid = self.dead_edges_at(t)
        path = self._live_path(msg.src, msg.dst, avoid)
        if path is None:
            raise RouteBlockedError(
                msg.src, msg.dst, t, tuple(sorted("->".join(e) for e in avoid))
            )
        if avoid and path != self._path(msg.src, msg.dst):
            # Known-dead links are avoided up front; that is still a
            # detour worth accounting, not just mid-flight escapes.
            self.rerouted_messages += 1
        while True:
            try:
                tt = t
                for hop, (a, b) in enumerate(zip(path, path[1:])):
                    if hop > 0:
                        tt += self.forwarding_ns
                    _, tt = self.links[(a, b)].transmit(msg, tt)
                return tt
            except LinkDownError as exc:
                t = exc.at_ns
                a, _, b = exc.link_name.partition("->")
                avoid = (avoid | self.dead_edges_at(t)) | {(a, b)}
                path = self._live_path(msg.src, msg.dst, avoid)
                if path is None:
                    raise RouteBlockedError(
                        msg.src,
                        msg.dst,
                        t,
                        tuple(sorted("->".join(e) for e in avoid)),
                    ) from exc
                self.rerouted_messages += 1

    def egress_stats(self, gpu: int) -> LinkStats:
        """Aggregated traffic counters of ``gpu``'s outgoing link(s)."""
        total = LinkStats()
        for neighbor in self.graph.neighbors(f"gpu{gpu}"):
            stats = self.links[(f"gpu{gpu}", neighbor)].stats
            total.messages += stats.messages
            total.payload_bytes += stats.payload_bytes
            total.overhead_bytes += stats.overhead_bytes
            total.stores_packed += stats.stores_packed
            total.busy_time_ns += stats.busy_time_ns
            for kind, count in stats.by_kind.items():
                total.by_kind[kind] = total.by_kind.get(kind, 0) + count
        return total

    def all_stats(self) -> dict[tuple[str, str], LinkStats]:
        return {edge: link.stats for edge, link in self.links.items()}

    def total_wire_bytes(self) -> int:
        return sum(s.wire_bytes for s in self.all_stats().values())

    def set_tracer(self, tracer) -> None:
        """Attach (or detach, with ``None``) a tracer on every link."""
        for link in self.links.values():
            link.tracer = tracer

    def reset(self) -> None:
        for link in self.links.values():
            link.reset()
        self.rerouted_messages = 0
        self.rebuild_fault_cache()


def _add_duplex(
    links: dict[tuple[str, str], Link],
    graph: nx.Graph,
    a: str,
    b: str,
    generation: PCIeGeneration,
    propagation_ns: float,
    with_credits: bool,
    error_rate: float = 0.0,
    width: int = 1,
) -> None:
    """Add a duplex link pair; ``width`` parallel physical links are
    modeled as one logical link of ``width``-fold bandwidth (striped
    trunks, the way switch vendors aggregate uplink ports)."""
    graph.add_edge(a, b)
    for u, v in ((a, b), (b, a)):
        credits = CreditPool() if with_credits and v.startswith("gpu") else None
        links[(u, v)] = Link(
            name=f"{u}->{v}",
            bytes_per_ns=generation.bytes_per_ns * width,
            propagation_ns=propagation_ns,
            credits=credits,
            error_rate=error_rate,
        )


@_registry.register("single_switch")
def single_switch(
    n_gpus: int = 4,
    generation: PCIeGeneration = PCIE_GEN4,
    propagation_ns: float = 50.0,
    with_credits: bool = False,
    error_rate: float = 0.0,
) -> Topology:
    """The paper's testbed: ``n_gpus`` GPUs under one PCIe switch."""
    if n_gpus < 2:
        raise ValueError("a multi-GPU topology needs at least 2 GPUs")
    graph: nx.Graph = nx.Graph()
    links: dict[tuple[str, str], Link] = {}
    for i in range(n_gpus):
        _add_duplex(
            links, graph, f"gpu{i}", "sw0", generation, propagation_ns,
            with_credits, error_rate,
        )
    return Topology(n_gpus=n_gpus, generation=generation, graph=graph, links=links)


@_registry.register("fully_connected")
def fully_connected(
    n_gpus: int = 4,
    generation: PCIeGeneration = PCIE_GEN4,
    propagation_ns: float = 50.0,
    with_credits: bool = False,
    error_rate: float = 0.0,
) -> Topology:
    """NVSwitch-class connectivity: a dedicated duplex link per GPU pair.

    Models NVLink/NVSwitch systems where every GPU reaches every peer
    in one hop with no shared egress port.  Used for what-if studies
    beyond the paper's switched-PCIe testbed (the per-packet byte costs
    still come from whichever protocol the system is built with).  The
    pairwise links also give fault-injection experiments an alternate
    path: a dead link reroutes store-and-forward through a peer GPU.
    """
    if n_gpus < 2:
        raise ValueError("a multi-GPU topology needs at least 2 GPUs")
    graph: nx.Graph = nx.Graph()
    links: dict[tuple[str, str], Link] = {}
    for i in range(n_gpus):
        graph.add_node(f"gpu{i}")
    for i in range(n_gpus):
        for j in range(i + 1, n_gpus):
            _add_duplex(
                links,
                graph,
                f"gpu{i}",
                f"gpu{j}",
                generation,
                propagation_ns,
                with_credits,
                error_rate,
            )
    return Topology(n_gpus=n_gpus, generation=generation, graph=graph, links=links)


@_registry.register("two_level_tree")
@_registry.register("two_level")
def two_level_tree(
    n_gpus: int = 16,
    fanout: int = 4,
    generation: PCIeGeneration = PCIE_GEN4,
    propagation_ns: float = 50.0,
    with_credits: bool = False,
    error_rate: float = 0.0,
) -> Topology:
    """A 16-GPU-class system: leaf switches joined by a root switch."""
    if n_gpus % fanout:
        raise ValueError(f"n_gpus={n_gpus} must be a multiple of fanout={fanout}")
    graph: nx.Graph = nx.Graph()
    links: dict[tuple[str, str], Link] = {}
    n_leaves = n_gpus // fanout
    for leaf in range(n_leaves):
        sw = f"sw{leaf + 1}"
        for j in range(fanout):
            gpu = leaf * fanout + j
            _add_duplex(
                links, graph, f"gpu{gpu}", sw, generation, propagation_ns,
                with_credits, error_rate,
            )
        _add_duplex(links, graph, sw, "sw0", generation, propagation_ns, False)
    return Topology(n_gpus=n_gpus, generation=generation, graph=graph, links=links)


@_registry.register("fat_tree")
def fat_tree(
    n_gpus: int = 16,
    fanout: int = 4,
    oversubscription: float = 1.0,
    generation: PCIeGeneration = PCIE_GEN4,
    propagation_ns: float = 50.0,
    with_credits: bool = False,
    error_rate: float = 0.0,
) -> Topology:
    """A multi-level fat tree scaling to 8/16/32/64+ GPUs.

    GPUs are grouped ``fanout`` at a time under leaf switches; switch
    levels are then built bottom-up by repeated ``fanout``-way grouping
    until a single root remains.  The uplink trunk of a switch at level
    ``l`` (leaves are level 1) aggregates
    ``max(1, round(fanout**l / oversubscription))`` parallel links --
    ``oversubscription=1`` preserves the full bisection bandwidth of
    the subtree below (a true fat tree), larger values thin the upper
    trunks the way cost-reduced deployments do.

    Worst-case GPU-to-GPU hop count is ``2 * levels`` link traversals
    (up to the root and back down); ``meta`` records the level count,
    per-level trunk multiplicity, and hop bound for tests.

    Batch-transport note: leaf links serve different hop positions for
    intra-leaf vs. cross-leaf traffic, but the tree's route adjacency
    is acyclic (up-edges order by ascending level, down-edges by
    descending level), so the event-ordered plan of ``repro.perf``
    keeps fat trees on the vectorized fast path at every scale.
    """
    if n_gpus < 2:
        raise ValueError("a multi-GPU topology needs at least 2 GPUs")
    if fanout < 2:
        raise ValueError(f"fanout must be >= 2, got {fanout}")
    if oversubscription < 1.0:
        raise ValueError(
            f"oversubscription must be >= 1 (1 = full bisection), "
            f"got {oversubscription}"
        )
    graph: nx.Graph = nx.Graph()
    links: dict[tuple[str, str], Link] = {}

    # Level 1: GPUs under leaf switches (ceil-divided; the last leaf
    # may be partially populated when fanout does not divide n_gpus).
    n_leaves = -(-n_gpus // fanout)
    leaves = [f"sw1_{i}" for i in range(n_leaves)]
    for g in range(n_gpus):
        _add_duplex(
            links, graph, f"gpu{g}", leaves[g // fanout], generation,
            propagation_ns, with_credits, error_rate,
        )

    # Upper levels: group switches fanout at a time until one remains.
    trunk_width: dict[int, int] = {}
    level, nodes = 1, leaves
    while len(nodes) > 1:
        width = max(1, round(fanout**level / oversubscription))
        trunk_width[level] = width
        parents = [
            f"sw{level + 1}_{i}" for i in range(-(-len(nodes) // fanout))
        ]
        for i, node in enumerate(nodes):
            _add_duplex(
                links, graph, node, parents[i // fanout], generation,
                propagation_ns, False, error_rate, width=width,
            )
        level += 1
        nodes = parents

    return Topology(
        n_gpus=n_gpus,
        generation=generation,
        graph=graph,
        links=links,
        meta={
            "kind": "fat_tree",
            "levels": level,
            "fanout": fanout,
            "oversubscription": oversubscription,
            "trunk_width": trunk_width,
            "max_hops": 2 * level,
            "n_switches": sum(
                1 for n in graph.nodes if not n.startswith("gpu")
            ),
        },
    )


@_registry.register("switched_mesh")
def switched_mesh(
    n_gpus: int = 8,
    planes: int = 2,
    generation: PCIeGeneration = PCIE_GEN4,
    propagation_ns: float = 50.0,
    with_credits: bool = False,
    error_rate: float = 0.0,
) -> Topology:
    """A fully-switched multi-plane fabric (NVSwitch-style rails).

    Every GPU attaches to all ``planes`` central switches; every pair
    is two hops apart on every plane.  Each ordered GPU pair is pinned
    to plane ``(src + dst) % planes`` up front -- deterministic,
    symmetric (both directions of a pair share a plane), and spreading
    pairs across rails the way NVSwitch port maps stripe traffic.  The
    pin is installed in the route cache, so routing, the vectorized
    batch transport, and the scalar engine all agree on it; fault-aware
    rerouting still detours through the surviving planes when a pinned
    link dies.
    """
    if n_gpus < 2:
        raise ValueError("a multi-GPU topology needs at least 2 GPUs")
    if planes < 1:
        raise ValueError(f"planes must be >= 1, got {planes}")
    graph: nx.Graph = nx.Graph()
    links: dict[tuple[str, str], Link] = {}
    for p in range(planes):
        for g in range(n_gpus):
            _add_duplex(
                links, graph, f"gpu{g}", f"sw{p}", generation,
                propagation_ns, with_credits, error_rate,
            )
    paths = {
        (s, d): [f"gpu{s}", f"sw{(s + d) % planes}", f"gpu{d}"]
        for s in range(n_gpus)
        for d in range(n_gpus)
        if s != d
    }
    return Topology(
        n_gpus=n_gpus,
        generation=generation,
        graph=graph,
        links=links,
        _paths=paths,
        meta={
            "kind": "switched_mesh",
            "planes": planes,
            "max_hops": 2,
            "n_switches": planes,
        },
    )
