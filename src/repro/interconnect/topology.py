"""Interconnect topologies: switched PCIe trees.

Two topologies are provided:

* :func:`single_switch` -- the paper's 4-GPU testbed: every GPU hangs
  off one PCIe switch with a full-duplex x16 link.
* :func:`two_level_tree` -- the projected 16-GPU system of Sec. VI-B:
  leaf switches of ``fanout`` GPUs joined by a root switch.

A :class:`Topology` owns all links and switches, routes messages along
the unique tree path, and aggregates link statistics for the metrics
layer.  ``networkx`` backs the structural representation so tests can
assert connectivity/path properties independently of the timing model.

Routing is fault-aware: when a link is permanently down (an armed
``LinkFail``), messages route around it where the graph offers an
alternate path -- including store-and-forward through a peer GPU on
NVSwitch-class topologies, the way collective libraries fall back to
proxy rings.  When no live path remains, :meth:`Topology.route` raises
:class:`~repro.faults.state.RouteBlockedError` and the system layer
accounts the message as dropped.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import networkx as nx

from ..faults.state import LinkDownError, RouteBlockedError
from ..registry import topologies as _registry
from .flowcontrol import CreditPool
from .link import Link, LinkStats
from .message import WireMessage
from .pcie import PCIE_GEN4, PCIeGeneration


@dataclass
class Topology:
    """A tree of switches carrying inter-GPU traffic.

    The object exposes a single :meth:`route` entry point used by the
    simulation engine; everything else is introspection for tests and
    reports.
    """

    n_gpus: int
    generation: PCIeGeneration
    graph: nx.Graph
    #: ``links[(a, b)]`` carries traffic from node ``a`` to node ``b``;
    #: nodes are "gpuN" and "swN" strings.
    links: dict[tuple[str, str], Link]
    forwarding_ns: float = 100.0
    #: Messages that were rerouted around a dead link this run.
    rerouted_messages: int = 0
    _paths: dict[tuple[int, int], list[str]] = field(default_factory=dict)
    _detours: dict[tuple, list[str] | None] = field(default_factory=dict)
    #: Links armed with outage windows that can turn permanent; cached
    #: so fault-free routing never scans the link table.
    _fail_links: tuple[tuple[tuple[str, str], Link], ...] = ()

    def _path(self, src: int, dst: int) -> list[str]:
        key = (src, dst)
        if key not in self._paths:
            self._paths[key] = nx.shortest_path(
                self.graph, f"gpu{src}", f"gpu{dst}"
            )
        return self._paths[key]

    # -- fault-aware path selection ---------------------------------

    def rebuild_fault_cache(self) -> None:
        """Re-scan links for armed outage windows.

        Called by :meth:`FaultInjector.arm`/``disarm`` and by
        :meth:`reset`; keeps :meth:`dead_edges_at` free for unfaulted
        topologies.
        """
        self._fail_links = tuple(
            (edge, link)
            for edge, link in self.links.items()
            if link.fault_state is not None and link.fault_state.down
        )
        self._detours.clear()

    def dead_edges_at(self, t: float) -> frozenset[tuple[str, str]]:
        """Directed edges whose link is permanently down at time ``t``."""
        if not self._fail_links:
            return frozenset()
        return frozenset(
            edge
            for edge, link in self._fail_links
            if link.fault_state.permanently_down_at(t)
        )

    def _live_path(
        self, src: int, dst: int, avoid: frozenset[tuple[str, str]]
    ) -> list[str] | None:
        """Shortest path avoiding ``avoid`` edges; ``None`` if cut off.

        Built on the directed link set, so one direction of a duplex
        pair can die while the other keeps carrying traffic.
        """
        if not avoid:
            return self._path(src, dst)
        key = (src, dst, avoid)
        if key not in self._detours:
            digraph = nx.DiGraph()
            digraph.add_nodes_from(self.graph.nodes)
            digraph.add_edges_from(e for e in self.links if e not in avoid)
            try:
                self._detours[key] = nx.shortest_path(
                    digraph, f"gpu{src}", f"gpu{dst}"
                )
            except nx.NetworkXNoPath:
                self._detours[key] = None
        return self._detours[key]

    def route(self, msg: WireMessage, ready_time: float) -> float:
        """Carry ``msg`` hop by hop; returns delivery time at ``msg.dst``.

        If a hop's link is (or goes) permanently down, the message is
        retransmitted end-to-end over an alternate path avoiding every
        link observed dead so far.  Bytes already serialized on earlier
        hops stay accounted on those links -- they really were sent.

        Raises
        ------
        RouteBlockedError
            When no live path to the destination remains.
        """
        if msg.src == msg.dst:
            raise ValueError("local traffic must not enter the interconnect")
        t = ready_time
        avoid = self.dead_edges_at(t)
        path = self._live_path(msg.src, msg.dst, avoid)
        if path is None:
            raise RouteBlockedError(
                msg.src, msg.dst, t, tuple(sorted("->".join(e) for e in avoid))
            )
        if avoid and path != self._path(msg.src, msg.dst):
            # Known-dead links are avoided up front; that is still a
            # detour worth accounting, not just mid-flight escapes.
            self.rerouted_messages += 1
        while True:
            try:
                tt = t
                for hop, (a, b) in enumerate(zip(path, path[1:])):
                    if hop > 0:
                        tt += self.forwarding_ns
                    _, tt = self.links[(a, b)].transmit(msg, tt)
                return tt
            except LinkDownError as exc:
                t = exc.at_ns
                a, _, b = exc.link_name.partition("->")
                avoid = (avoid | self.dead_edges_at(t)) | {(a, b)}
                path = self._live_path(msg.src, msg.dst, avoid)
                if path is None:
                    raise RouteBlockedError(
                        msg.src,
                        msg.dst,
                        t,
                        tuple(sorted("->".join(e) for e in avoid)),
                    ) from exc
                self.rerouted_messages += 1

    def egress_stats(self, gpu: int) -> LinkStats:
        """Aggregated traffic counters of ``gpu``'s outgoing link(s)."""
        total = LinkStats()
        for neighbor in self.graph.neighbors(f"gpu{gpu}"):
            stats = self.links[(f"gpu{gpu}", neighbor)].stats
            total.messages += stats.messages
            total.payload_bytes += stats.payload_bytes
            total.overhead_bytes += stats.overhead_bytes
            total.stores_packed += stats.stores_packed
            total.busy_time_ns += stats.busy_time_ns
            for kind, count in stats.by_kind.items():
                total.by_kind[kind] = total.by_kind.get(kind, 0) + count
        return total

    def all_stats(self) -> dict[tuple[str, str], LinkStats]:
        return {edge: link.stats for edge, link in self.links.items()}

    def total_wire_bytes(self) -> int:
        return sum(s.wire_bytes for s in self.all_stats().values())

    def set_tracer(self, tracer) -> None:
        """Attach (or detach, with ``None``) a tracer on every link."""
        for link in self.links.values():
            link.tracer = tracer

    def reset(self) -> None:
        for link in self.links.values():
            link.reset()
        self.rerouted_messages = 0
        self.rebuild_fault_cache()


def _add_duplex(
    links: dict[tuple[str, str], Link],
    graph: nx.Graph,
    a: str,
    b: str,
    generation: PCIeGeneration,
    propagation_ns: float,
    with_credits: bool,
    error_rate: float = 0.0,
) -> None:
    graph.add_edge(a, b)
    for u, v in ((a, b), (b, a)):
        credits = CreditPool() if with_credits and v.startswith("gpu") else None
        links[(u, v)] = Link(
            name=f"{u}->{v}",
            bytes_per_ns=generation.bytes_per_ns,
            propagation_ns=propagation_ns,
            credits=credits,
            error_rate=error_rate,
        )


@_registry.register("single_switch")
def single_switch(
    n_gpus: int = 4,
    generation: PCIeGeneration = PCIE_GEN4,
    propagation_ns: float = 50.0,
    with_credits: bool = False,
    error_rate: float = 0.0,
) -> Topology:
    """The paper's testbed: ``n_gpus`` GPUs under one PCIe switch."""
    if n_gpus < 2:
        raise ValueError("a multi-GPU topology needs at least 2 GPUs")
    graph: nx.Graph = nx.Graph()
    links: dict[tuple[str, str], Link] = {}
    for i in range(n_gpus):
        _add_duplex(
            links, graph, f"gpu{i}", "sw0", generation, propagation_ns,
            with_credits, error_rate,
        )
    return Topology(n_gpus=n_gpus, generation=generation, graph=graph, links=links)


@_registry.register("fully_connected")
def fully_connected(
    n_gpus: int = 4,
    generation: PCIeGeneration = PCIE_GEN4,
    propagation_ns: float = 50.0,
    with_credits: bool = False,
    error_rate: float = 0.0,
) -> Topology:
    """NVSwitch-class connectivity: a dedicated duplex link per GPU pair.

    Models NVLink/NVSwitch systems where every GPU reaches every peer
    in one hop with no shared egress port.  Used for what-if studies
    beyond the paper's switched-PCIe testbed (the per-packet byte costs
    still come from whichever protocol the system is built with).  The
    pairwise links also give fault-injection experiments an alternate
    path: a dead link reroutes store-and-forward through a peer GPU.
    """
    if n_gpus < 2:
        raise ValueError("a multi-GPU topology needs at least 2 GPUs")
    graph: nx.Graph = nx.Graph()
    links: dict[tuple[str, str], Link] = {}
    for i in range(n_gpus):
        graph.add_node(f"gpu{i}")
    for i in range(n_gpus):
        for j in range(i + 1, n_gpus):
            _add_duplex(
                links,
                graph,
                f"gpu{i}",
                f"gpu{j}",
                generation,
                propagation_ns,
                with_credits,
                error_rate,
            )
    return Topology(n_gpus=n_gpus, generation=generation, graph=graph, links=links)


@_registry.register("two_level_tree")
@_registry.register("two_level")
def two_level_tree(
    n_gpus: int = 16,
    fanout: int = 4,
    generation: PCIeGeneration = PCIE_GEN4,
    propagation_ns: float = 50.0,
    with_credits: bool = False,
    error_rate: float = 0.0,
) -> Topology:
    """A 16-GPU-class system: leaf switches joined by a root switch."""
    if n_gpus % fanout:
        raise ValueError(f"n_gpus={n_gpus} must be a multiple of fanout={fanout}")
    graph: nx.Graph = nx.Graph()
    links: dict[tuple[str, str], Link] = {}
    n_leaves = n_gpus // fanout
    for leaf in range(n_leaves):
        sw = f"sw{leaf + 1}"
        for j in range(fanout):
            gpu = leaf * fanout + j
            _add_duplex(
                links, graph, f"gpu{gpu}", sw, generation, propagation_ns,
                with_credits, error_rate,
            )
        _add_duplex(links, graph, sw, "sw0", generation, propagation_ns, False)
    return Topology(n_gpus=n_gpus, generation=generation, graph=graph, links=links)
