"""NVLink flit-level cost model (used for the Figure 2 goodput study).

NVLink transfers data in 16-byte *flits*.  A write request packet is

* one header flit (16 B) carrying command, address and routing,
* ``ceil(size / 16)`` data flits,
* an *optional* byte-enable flit: writes that are not a multiple of the
  32-byte sector size, or are misaligned, need a flit of byte enables.

The conditional byte-enable flit is what produces the "spikes" in
NVLink's measured goodput curve that the paper's Figure 2 footnote
mentions: a naturally aligned 32 B store needs no BE flit (48 B on the
wire) while a 24 B store does (64 B on the wire), so goodput is not
monotonic in store size.
"""

from __future__ import annotations

from dataclasses import dataclass

#: Flow-control unit of the NVLink physical layer.
FLIT_BYTES = 16

#: Granularity at which writes avoid the byte-enable flit.
SECTOR_BYTES = 32


@dataclass(frozen=True, slots=True)
class NVLinkProtocol:
    """Computes on-wire byte costs for NVLink write packets.

    Parameters
    ----------
    bandwidth_gbps:
        Per-direction link bandwidth (NVLink2 brick: 25 GB/s; a V100
        with 6 bricks reaches 150 GB/s aggregate).
    max_payload:
        Largest write a single packet can carry (256 B = 16 data flits).
    """

    bandwidth_gbps: float = 25.0
    max_payload: int = 256

    @property
    def bytes_per_ns(self) -> float:
        return self.bandwidth_gbps

    def needs_byte_enable_flit(self, nbytes: int, addr: int = 0) -> bool:
        """True when the write requires an explicit byte-enable flit."""
        return nbytes % SECTOR_BYTES != 0 or addr % SECTOR_BYTES != 0

    def store_wire_cost(self, nbytes: int, addr: int = 0) -> tuple[int, int]:
        """(payload, overhead) bytes for one write of ``nbytes`` at ``addr``."""
        if nbytes <= 0:
            raise ValueError(f"store must carry at least 1 byte, got {nbytes}")
        if nbytes > self.max_payload:
            raise ValueError(
                f"store of {nbytes} B exceeds max payload {self.max_payload}"
            )
        data_flits = -(-nbytes // FLIT_BYTES)
        overhead = FLIT_BYTES  # header flit
        overhead += data_flits * FLIT_BYTES - nbytes  # padding to flits
        if self.needs_byte_enable_flit(nbytes, addr):
            overhead += FLIT_BYTES
        return nbytes, overhead

    def store_goodput(self, nbytes: int, addr: int = 0) -> float:
        payload, overhead = self.store_wire_cost(nbytes, addr)
        return payload / (payload + overhead)

    def bulk_transfer_cost(self, nbytes: int) -> tuple[int, int]:
        """(payload, overhead) for a copy split into max-payload packets."""
        if nbytes < 0:
            raise ValueError(f"negative transfer: {nbytes}")
        if nbytes == 0:
            return 0, 0
        full, rem = divmod(nbytes, self.max_payload)
        overhead = full * FLIT_BYTES  # one header flit per full packet
        if rem:
            _, tail = self.store_wire_cost(rem)
            overhead += tail
        return nbytes, overhead
