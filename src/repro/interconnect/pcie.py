"""Byte-accurate PCI Express link-protocol cost model.

The model follows the packet anatomy in the paper's Figure 3 / Table I:
a posted memory-write transaction on the wire consists of

* physical-layer framing (the STP token on Gen3+),
* the data-link layer prefix: a 2-byte sequence number,
* the transaction-layer packet (TLP) header -- 4 DW (16 B) for a 64-bit
  address memory write,
* the data payload, carried in 4-byte DW units (sub-DW writes are padded
  to a DW boundary; byte enables in the header select the valid bytes),
* an optional 4-byte end-to-end CRC (ECRC),
* the 4-byte link CRC (LCRC).

The paper's Sec. VI-B quotes "sequence number, ECRC and LCRC" as a
10-byte per-TLP cost, so ECRC is enabled by default here.

Generation parameters cover PCIe 3.0 through the projected 6.0 used in
the paper's Figure 13 bandwidth sweep (32 GB/s for Gen4 x16 up to
128 GB/s for Gen6 x16, per direction).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

#: Bytes per doubleword; TLP payloads are DW-granular on the wire.
DW_BYTES = 4

#: Physical framing bytes per TLP (STP framing token, Gen3+ encoding).
FRAMING_BYTES = 4

#: Data-link layer sequence number prepended to every TLP.
SEQUENCE_BYTES = 2

#: Link CRC appended to every TLP.
LCRC_BYTES = 4

#: Optional end-to-end CRC (TLP digest).
ECRC_BYTES = 4

#: 4-DW TLP header used by 64-bit-address memory writes.
MEM_WRITE_HEADER_BYTES = 16

#: Amortized DLLP cost (flow-control credit updates / acks) charged per
#: TLP.  DLLPs are 8 bytes and are emitted roughly once per few TLPs.
AMORTIZED_DLLP_BYTES = 2

#: PCIe 6.0 FLIT-mode parameters: the link carries fixed 256-byte
#: flits, each with 236 bytes of TLP payload capacity and 20 bytes of
#: CRC/FEC/DLP overhead.  TLPs pack back to back inside flits with no
#: per-TLP framing, sequence number or LCRC.
FLIT_MODE_FLIT_BYTES = 256
FLIT_MODE_PAYLOAD_BYTES = 236


@dataclass(frozen=True, slots=True)
class PCIeGeneration:
    """Link parameters for one PCIe generation at a given width.

    ``bandwidth_gbps`` is the post-encoding data bandwidth per direction
    in gigabytes per second (1 GB/s == 1 byte/ns in simulator units).
    """

    name: str
    gen: int
    lanes: int
    bandwidth_gbps: float
    max_payload: int = 4096

    @property
    def bytes_per_ns(self) -> float:
        """Per-direction link bandwidth in simulator units (B/ns)."""
        return self.bandwidth_gbps


#: The generations used in the paper's Figure 13 sweep (x16 links).
PCIE_GEN3 = PCIeGeneration("PCIe 3.0 x16", 3, 16, 16.0)
PCIE_GEN4 = PCIeGeneration("PCIe 4.0 x16", 4, 16, 32.0)
PCIE_GEN5 = PCIeGeneration("PCIe 5.0 x16", 5, 16, 64.0)
PCIE_GEN6 = PCIeGeneration("PCIe 6.0 x16", 6, 16, 128.0)

GENERATIONS = {g.gen: g for g in (PCIE_GEN3, PCIE_GEN4, PCIE_GEN5, PCIE_GEN6)}


@dataclass(frozen=True, slots=True)
class PCIeProtocol:
    """Computes on-wire byte costs for PCIe transactions.

    Parameters
    ----------
    generation:
        Link-speed parameters; affects timing, not per-packet bytes.
    ecrc:
        Whether the optional end-to-end CRC is carried (default on, to
        match the paper's 10-byte DLL/CRC figure).
    amortized_dllp:
        Whether to charge the amortized flow-control DLLP cost.
    flit_mode:
        Model PCIe 6.0's FLIT encoding: TLPs lose their per-packet
        framing/sequence/LCRC and instead pay an amortized share of the
        fixed per-flit CRC/FEC overhead (20 B per 256 B flit).  The
        paper's Fig. 13 projects Gen6 with the classic packetization;
        this option quantifies how FLIT mode shifts the small-store
        penalty (default off to match the paper).
    """

    generation: PCIeGeneration = PCIE_GEN4
    ecrc: bool = True
    amortized_dllp: bool = True
    flit_mode: bool = False

    @property
    def max_payload(self) -> int:
        return self.generation.max_payload

    @property
    def flit_overhead_factor(self) -> float:
        """FLIT mode: wire bytes per byte of TLP stream."""
        return FLIT_MODE_FLIT_BYTES / FLIT_MODE_PAYLOAD_BYTES

    @property
    def per_tlp_overhead(self) -> int:
        """Fixed protocol bytes added to every memory-write TLP.

        Classic (non-FLIT) encoding: framing + sequence + 4-DW header +
        LCRC (+ ECRC, + amortized DLLP share).  With defaults this is
        4+2+16+4+4+2 = 32 bytes.

        FLIT mode (Gen6): the TLP carries only its header (+ ECRC);
        framing/sequence/LCRC disappear and the fixed per-flit CRC/FEC
        cost is charged as an amortized multiplicative factor in
        :meth:`store_wire_cost`, rounded here into an equivalent
        per-TLP byte count for a header-only share.
        """
        if self.flit_mode:
            cost = MEM_WRITE_HEADER_BYTES
            if self.ecrc:
                cost += ECRC_BYTES
            return cost
        cost = FRAMING_BYTES + SEQUENCE_BYTES + MEM_WRITE_HEADER_BYTES + LCRC_BYTES
        if self.ecrc:
            cost += ECRC_BYTES
        if self.amortized_dllp:
            cost += AMORTIZED_DLLP_BYTES
        return cost

    def padded_payload(self, nbytes: int) -> int:
        """Payload bytes on the wire: DW-aligned (byte enables mask the rest)."""
        if nbytes < 0:
            raise ValueError(f"negative payload: {nbytes}")
        return -(-nbytes // DW_BYTES) * DW_BYTES

    def store_wire_cost(self, nbytes: int) -> tuple[int, int]:
        """(payload_on_wire, overhead) for a single memory-write TLP.

        The DW padding added beyond the requested bytes is counted as
        overhead, not payload, so goodput reflects only requested bytes.
        In FLIT mode the whole TLP stream additionally pays the
        amortized per-flit CRC/FEC share.
        """
        if nbytes <= 0:
            raise ValueError(f"store must carry at least 1 byte, got {nbytes}")
        if nbytes > self.max_payload:
            raise ValueError(
                f"store of {nbytes} B exceeds max payload {self.max_payload}"
            )
        padded = self.padded_payload(nbytes)
        overhead = self.per_tlp_overhead + (padded - nbytes)
        if self.flit_mode:
            stream = padded + self.per_tlp_overhead
            overhead += round(stream * (self.flit_overhead_factor - 1.0))
        return nbytes, overhead

    def store_wire_cost_batch(self, sizes) -> tuple[np.ndarray, np.ndarray]:
        """Vectorized :meth:`store_wire_cost` over an int array.

        Returns ``(payload, overhead)`` int64 arrays; element ``i``
        equals ``store_wire_cost(sizes[i])`` exactly (``np.rint`` and
        Python's ``round`` share half-even rounding, so FLIT mode
        matches too).  Invalid sizes raise the scalar path's error for
        the first offender, in order.
        """
        sizes = np.asarray(sizes, dtype=np.int64)
        bad = np.flatnonzero((sizes <= 0) | (sizes > self.max_payload))
        if bad.size:
            self.store_wire_cost(int(sizes[bad[0]]))  # raises
        padded = -(-sizes // DW_BYTES) * DW_BYTES
        overhead = self.per_tlp_overhead + (padded - sizes)
        if self.flit_mode:
            stream = padded + self.per_tlp_overhead
            overhead = overhead + np.rint(
                stream * (self.flit_overhead_factor - 1.0)
            ).astype(np.int64)
        return sizes, overhead

    def store_goodput(self, nbytes: int) -> float:
        """Fraction of on-wire bytes that are useful for an nbytes store."""
        payload, overhead = self.store_wire_cost(nbytes)
        return payload / (payload + overhead)

    def bulk_transfer_cost(self, nbytes: int) -> tuple[int, int]:
        """(payload, overhead) for a DMA copy split into max-payload TLPs."""
        if nbytes < 0:
            raise ValueError(f"negative transfer: {nbytes}")
        if nbytes == 0:
            return 0, 0
        full, rem = divmod(nbytes, self.max_payload)
        overhead = full * self.per_tlp_overhead
        if self.flit_mode and full:
            stream = full * (self.max_payload + self.per_tlp_overhead)
            overhead += round(stream * (self.flit_overhead_factor - 1.0))
        if rem:
            _, tail_overhead = self.store_wire_cost(rem)
            overhead += tail_overhead
        return nbytes, overhead

    def transfer_time_ns(self, wire_bytes: int) -> float:
        """Serialization time of ``wire_bytes`` at this generation's rate."""
        return wire_bytes / self.generation.bytes_per_ns
