"""Wire-level message representation shared by all interconnect models.

A :class:`WireMessage` is one transaction-layer packet as it appears on a
link: a payload (the bytes the sender wants delivered) plus the protocol
overhead bytes (headers, CRCs, framing) charged by the link protocol that
carries it.  Byte accounting throughout the simulator is done in terms of
the three categories the paper's Figure 10 uses:

* ``useful``   -- payload bytes that carry a final value which the
  destination GPU actually reads,
* ``wasted``   -- payload bytes that are either overwritten by a later
  store before the consumer reads them (redundant transfer) or never read
  at all (over-transfer),
* ``overhead`` -- protocol bytes: headers, sub-headers, CRCs, framing,
  padding.

The split of payload bytes into useful/wasted is decided later by the
metrics layer (it needs the destination's read set); a message only knows
its raw payload size and overhead size.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class MessageKind(enum.Enum):
    """Transaction types that traverse the inter-GPU interconnect."""

    # Enum members are singletons, so identity hashing is safe and
    # avoids Python-level ``Enum.__hash__`` in the per-message hot path.
    __hash__ = object.__hash__

    #: A single posted memory-write TLP produced by one remote store.
    STORE = "store"
    #: A write-combined cacheline-granularity write (GPS-style buffers).
    COMBINED_STORE = "combined_store"
    #: A FinePack outer transaction carrying many packed sub-stores.
    FINEPACK = "finepack"
    #: One max-payload chunk of a bulk DMA copy.
    DMA_CHUNK = "dma_chunk"
    #: A stateful configuration packet (the alternate design of Sec. VI-B).
    CONFIG = "config"
    #: A remote atomic operation (never coalesced, Sec. IV-C).
    ATOMIC = "atomic"


#: Stable small-integer codes for :class:`MessageKind`, used by the
#: vectorized fast paths (``repro.perf``) to carry kinds in uint8
#: arrays instead of object arrays.  ``KINDS_BY_CODE[code]`` inverts.
KINDS_BY_CODE: tuple[MessageKind, ...] = tuple(MessageKind)
KIND_CODES: dict[MessageKind, int] = {
    kind: code for code, kind in enumerate(KINDS_BY_CODE)
}


@dataclass(slots=True)
class WireMessage:
    """One transaction-layer packet occupying an interconnect link.

    Attributes
    ----------
    src, dst:
        GPU indices of the producing and consuming endpoints.
    payload_bytes:
        Data bytes carried (before any useful/wasted classification).
    overhead_bytes:
        Protocol bytes added by the carrying link protocol (TLP header,
        DLL sequence number, CRCs, physical framing, DW padding and, for
        FinePack, the sub-transaction headers).
    kind:
        The transaction type, used by metrics and the receiving endpoint.
    issue_time:
        Simulated time (ns) at which the message became ready to leave
        the source endpoint's egress port.
    stores_packed:
        Number of program-level store operations this message carries
        (1 for a plain store TLP; the coalescing count for FinePack --
        the quantity plotted in the paper's Figure 11).
    meta:
        Free-form per-message annotations (e.g. the address ranges
        covered, used by the byte-accounting ledger).
    """

    src: int
    dst: int
    payload_bytes: int
    overhead_bytes: int
    kind: MessageKind = MessageKind.STORE
    issue_time: float = 0.0
    stores_packed: int = 1
    meta: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.payload_bytes < 0:
            raise ValueError(f"negative payload: {self.payload_bytes}")
        if self.overhead_bytes < 0:
            raise ValueError(f"negative overhead: {self.overhead_bytes}")

    @property
    def wire_bytes(self) -> int:
        """Total bytes this message occupies on the link."""
        return self.payload_bytes + self.overhead_bytes

    @property
    def goodput(self) -> float:
        """Fraction of on-wire bytes that are payload."""
        if self.wire_bytes == 0:
            return 0.0
        return self.payload_bytes / self.wire_bytes
