"""Interconnect substrate: byte-accurate PCIe/NVLink models, links,
flow control, switches and topologies.

The public surface other packages use:

* :class:`~repro.interconnect.message.WireMessage` / ``MessageKind`` --
  the unit of traffic.
* :class:`~repro.interconnect.pcie.PCIeProtocol` and the
  ``PCIE_GEN3..6`` generation constants.
* :class:`~repro.interconnect.nvlink.NVLinkProtocol`.
* :func:`~repro.interconnect.topology.single_switch` /
  :func:`~repro.interconnect.topology.two_level_tree` /
  :func:`~repro.interconnect.topology.fat_tree` /
  :func:`~repro.interconnect.topology.switched_mesh` producing a
  :class:`~repro.interconnect.topology.Topology`.
"""

from .flowcontrol import CreditPool
from .link import Link, LinkStats
from .message import MessageKind, WireMessage
from .nvlink import NVLinkProtocol
from .pcie import (
    GENERATIONS,
    PCIE_GEN3,
    PCIE_GEN4,
    PCIE_GEN5,
    PCIE_GEN6,
    PCIeGeneration,
    PCIeProtocol,
)
from .switch import Switch
from .topology import (
    Topology,
    fat_tree,
    fully_connected,
    single_switch,
    switched_mesh,
    two_level_tree,
)

__all__ = [
    "CreditPool",
    "Link",
    "LinkStats",
    "MessageKind",
    "WireMessage",
    "NVLinkProtocol",
    "GENERATIONS",
    "PCIE_GEN3",
    "PCIE_GEN4",
    "PCIE_GEN5",
    "PCIE_GEN6",
    "PCIeGeneration",
    "PCIeProtocol",
    "Switch",
    "Topology",
    "fat_tree",
    "fully_connected",
    "single_switch",
    "switched_mesh",
    "two_level_tree",
]
