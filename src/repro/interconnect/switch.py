"""Store-and-forward PCIe switch model.

The paper's testbed connects 4 GPUs under a single PCIe switch.  A
message from GPU *s* to GPU *d* serializes on *s*'s upstream (TX) link,
incurs the switch forwarding latency, then serializes again on *d*'s
downstream (RX) link.  Contention arises naturally when multiple
sources target one destination: the destination's downstream link is a
shared resource with its own ``busy_until``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .link import Link
from .message import WireMessage


@dataclass
class Switch:
    """A crossbar switch joining per-endpoint up/down links.

    Parameters
    ----------
    up_links:
        ``up_links[i]`` carries traffic from endpoint *i* into the
        switch.
    down_links:
        ``down_links[i]`` carries traffic from the switch to endpoint
        *i*.
    forwarding_ns:
        Cut-through/queuing latency inside the switch.
    """

    up_links: list[Link]
    down_links: list[Link]
    forwarding_ns: float = 100.0
    _pending_down: dict[int, list[tuple[float, WireMessage]]] = field(
        default_factory=dict
    )

    def __post_init__(self) -> None:
        if len(self.up_links) != len(self.down_links):
            raise ValueError("switch needs matching up/down link counts")

    @property
    def n_ports(self) -> int:
        return len(self.up_links)

    def route(self, msg: WireMessage, ready_time: float) -> float:
        """Carry ``msg`` from its source to its destination port.

        Returns the delivery time at the destination endpoint.  The
        source's up-link is used in caller order; the destination's
        down-link arbitration is FIFO by switch-arrival time, which the
        per-link ``busy_until`` already provides because the engine
        processes events in time order.
        """
        if not (0 <= msg.src < self.n_ports and 0 <= msg.dst < self.n_ports):
            raise ValueError(
                f"message endpoints {msg.src}->{msg.dst} outside switch "
                f"port range 0..{self.n_ports - 1}"
            )
        if msg.src == msg.dst:
            raise ValueError("local traffic must not enter the switch")
        _, at_switch = self.up_links[msg.src].transmit(msg, ready_time)
        _, delivered = self.down_links[msg.dst].transmit(
            msg, at_switch + self.forwarding_ns
        )
        return delivered

    def reset(self) -> None:
        for link in (*self.up_links, *self.down_links):
            link.reset()
