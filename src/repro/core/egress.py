"""Egress engines: the GPU-to-interconnect interface for each paradigm.

Three engines implement :class:`repro.gpu.gpu.EgressEngine`:

* :class:`PassthroughEgress` -- today's hardware: every remote store
  leaves immediately as its own memory-write TLP (the paper's "P2P
  stores" baseline).
* :class:`WriteCombiningEgress` -- a conventional write-combining
  buffer at cache-line granularity (the "write combining alone" point
  the paper compares against: FinePack moves ~24% less data).  Each
  flushed line still emits one TLP per contiguous run; there is no
  header sharing across lines.
* :class:`FinePackEgress` -- the paper's design: the partitioned remote
  write queue feeding the packetizer.

All engines emit :class:`WireMessage` objects annotated with the byte
ranges delivered (``meta["range1"]``/``meta["ranges"]``) so the metrics ledger can classify
payload bytes as useful or wasted.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field, replace

import numpy as np

from ..interconnect.message import MessageKind, WireMessage
from ..interconnect.pcie import PCIeProtocol
from ..perf import profiler as _prof
from ..perf.batch import ATOMIC_CODE, STORE_CODE, MessageBatch
from .config import FinePackConfig
from .packetizer import Packetizer
from .remote_write_queue import FlushedWindow, FlushReason, RemoteWriteQueue


@dataclass
class EgressStats:
    stores_in: int = 0
    atomics_in: int = 0
    messages_out: int = 0
    releases: int = 0

    def stores_per_message(self) -> float:
        return self.stores_in / self.messages_out if self.messages_out else 0.0


def _single_range(addr: int, size: int) -> dict:
    """Scalar range annotation: cheaper than per-message numpy arrays.

    The metrics ledger accepts either ``meta["range1"] = (addr, size)``
    for single-range messages or ``meta["ranges"] = (starts, lengths)``
    arrays for packed ones.
    """
    return {"range1": (addr, size)}


@dataclass
class PassthroughEgress:
    """Raw peer-to-peer stores: one TLP per store, no buffering."""

    protocol: PCIeProtocol
    src: int
    stats: EgressStats = field(default_factory=EgressStats)

    def on_store(
        self, addr: int, size: int, dst: int, time: float, data: bytes | None = None
    ) -> list[WireMessage]:
        self.stats.stores_in += 1
        payload, overhead = self.protocol.store_wire_cost(size)
        self.stats.messages_out += 1
        return [
            WireMessage(
                src=self.src,
                dst=dst,
                payload_bytes=payload,
                overhead_bytes=overhead,
                kind=MessageKind.STORE,
                issue_time=time,
                stores_packed=1,
                meta=_single_range(addr, size),
            )
        ]

    def on_atomic(self, addr: int, size: int, dst: int, time: float) -> list[WireMessage]:
        self.stats.atomics_in += 1
        payload, overhead = self.protocol.store_wire_cost(size)
        self.stats.messages_out += 1
        return [
            WireMessage(
                src=self.src,
                dst=dst,
                payload_bytes=payload,
                overhead_bytes=overhead,
                kind=MessageKind.ATOMIC,
                issue_time=time,
                stores_packed=1,
                meta=_single_range(addr, size),
            )
        ]

    def on_remote_load(self, addr: int, size: int, dst: int, time: float) -> list[WireMessage]:
        return []

    def on_release(self, time: float) -> list[WireMessage]:
        self.stats.releases += 1
        return []

    def batch_ops(
        self,
        addrs: np.ndarray,
        sizes: np.ndarray,
        dsts: np.ndarray,
        times: np.ndarray,
        is_atomic: np.ndarray,
    ) -> MessageBatch | None:
        """Whole-phase store/atomic stream as one :class:`MessageBatch`.

        Semantically one :meth:`on_store`/:meth:`on_atomic` call per
        element, in order; the engine is stateless so the batch is just
        the concatenation of the per-op messages.  Returns ``None``
        when any size is invalid -- the caller then replays the ops
        through the scalar path so the error (and the stats mutated
        before it) match the scalar run exactly.
        """
        n = int(sizes.size)
        if n and (
            int(sizes.min()) <= 0 or int(sizes.max()) > self.protocol.max_payload
        ):
            return None
        payload, overhead = self.protocol.store_wire_cost_batch(sizes)
        n_atomic = int(is_atomic.sum())
        self.stats.stores_in += n - n_atomic
        self.stats.atomics_in += n_atomic
        self.stats.messages_out += n
        return MessageBatch(
            src=self.src,
            dst=np.asarray(dsts, dtype=np.int64),
            payload=payload,
            overhead=overhead,
            kind=np.where(is_atomic, ATOMIC_CODE, STORE_CODE).astype(np.uint8),
            issue=np.asarray(times, dtype=np.float64),
            packed=np.ones(n, dtype=np.int64),
            starts=np.asarray(addrs, dtype=np.int64),
            lengths=np.asarray(sizes, dtype=np.int64),
        )


class WriteCombiningEgress:
    """Cache-line-granularity write combining (no FinePack packing).

    Per destination, a FIFO of up to ``entries`` open 128 B lines; a
    store to an open line merges, a store to a new line evicts the
    oldest when full.  An evicted/flushed line emits one TLP per
    contiguous run of touched bytes.  Two transfer-granularity options
    model GPS-style replication (paper Sec. VI-B):

    * ``sector_bytes`` rounds every run out to sector boundaries before
      transmission, over-transferring the untouched bytes within each
      touched sector ("unneeded transfers within a cacheline");
    * ``full_line=True`` ships the whole 128 B line as one TLP.
    """

    def __init__(
        self,
        protocol: PCIeProtocol,
        src: int,
        n_gpus: int,
        entries: int = 64,
        line_bytes: int = 128,
        full_line: bool = False,
        sector_bytes: int = 1,
    ) -> None:
        if line_bytes % sector_bytes:
            raise ValueError(
                f"sector_bytes {sector_bytes} must divide line_bytes {line_bytes}"
            )
        self.protocol = protocol
        self.src = src
        self.entries = entries
        self.line_bytes = line_bytes
        self.full_line = full_line
        self.sector_bytes = sector_bytes
        # dst -> {line_addr: (mask, stores_absorbed)}
        self._open: dict[int, dict[int, tuple[int, int]]] = {
            d: {} for d in range(n_gpus) if d != src
        }
        self.stats = EgressStats()

    def _expand_to_sectors(self, mask: int) -> int:
        """Round the byte-enable mask out to sector boundaries."""
        if self.sector_bytes == 1:
            return mask
        sector_mask = (1 << self.sector_bytes) - 1
        out = 0
        for s in range(self.line_bytes // self.sector_bytes):
            if mask & (sector_mask << (s * self.sector_bytes)):
                out |= sector_mask << (s * self.sector_bytes)
        return out

    def _runs(self, mask: int) -> list[tuple[int, int]]:
        out = []
        starts = mask & ~(mask << 1)
        while starts:
            s = (starts & -starts).bit_length() - 1
            n = 0
            while s + n < self.line_bytes and (mask >> (s + n)) & 1:
                n += 1
            out.append((s, n))
            starts &= starts - 1
        return out

    def _emit_line(
        self, dst: int, line_addr: int, mask: int, absorbed: int, time: float
    ) -> list[WireMessage]:
        msgs = []
        if self.full_line:
            payload, overhead = self.protocol.store_wire_cost(self.line_bytes)
            self.stats.messages_out += 1
            return [
                WireMessage(
                    src=self.src,
                    dst=dst,
                    payload_bytes=payload,
                    overhead_bytes=overhead,
                    kind=MessageKind.COMBINED_STORE,
                    issue_time=time,
                    stores_packed=absorbed,
                    meta=_single_range(line_addr, self.line_bytes),
                )
            ]
        runs = self._runs(self._expand_to_sectors(mask))
        for i, (off, length) in enumerate(runs):
            payload, overhead = self.protocol.store_wire_cost(length)
            self.stats.messages_out += 1
            msgs.append(
                WireMessage(
                    src=self.src,
                    dst=dst,
                    payload_bytes=payload,
                    overhead_bytes=overhead,
                    kind=MessageKind.COMBINED_STORE,
                    issue_time=time,
                    # Attribute the absorbed stores to the first run.
                    stores_packed=absorbed if i == 0 else 0,
                    meta=_single_range(line_addr + off, length),
                )
            )
        return msgs

    def on_store(
        self, addr: int, size: int, dst: int, time: float, data: bytes | None = None
    ) -> list[WireMessage]:
        msgs: list[WireMessage] = []
        pos = 0
        while pos < size:
            line_off = (addr + pos) % self.line_bytes
            chunk = min(size - pos, self.line_bytes - line_off)
            msgs.extend(self._store_within_line(addr + pos, chunk, dst, time))
            pos += chunk
        return msgs

    def _store_within_line(
        self, addr: int, size: int, dst: int, time: float
    ) -> list[WireMessage]:
        self.stats.stores_in += 1
        open_lines = self._open[dst]
        line = addr & ~(self.line_bytes - 1)
        off = addr - line
        msgs: list[WireMessage] = []
        if line not in open_lines and len(open_lines) >= self.entries:
            victim = next(iter(open_lines))
            mask, absorbed = open_lines.pop(victim)
            msgs.extend(self._emit_line(dst, victim, mask, absorbed, time))
        mask, absorbed = open_lines.get(line, (0, 0))
        mask |= ((1 << size) - 1) << off
        open_lines[line] = (mask, absorbed + 1)
        return msgs

    def on_atomic(self, addr: int, size: int, dst: int, time: float) -> list[WireMessage]:
        self.stats.atomics_in += 1
        msgs: list[WireMessage] = []
        line = addr & ~(self.line_bytes - 1)
        entry = self._open[dst].pop(line, None)
        if entry is not None:
            msgs.extend(self._emit_line(dst, line, entry[0], entry[1], time))
        payload, overhead = self.protocol.store_wire_cost(size)
        self.stats.messages_out += 1
        msgs.append(
            WireMessage(
                src=self.src,
                dst=dst,
                payload_bytes=payload,
                overhead_bytes=overhead,
                kind=MessageKind.ATOMIC,
                issue_time=time,
                stores_packed=1,
                meta=_single_range(addr, size),
            )
        )
        return msgs

    def on_remote_load(self, addr: int, size: int, dst: int, time: float) -> list[WireMessage]:
        msgs: list[WireMessage] = []
        first = addr & ~(self.line_bytes - 1)
        last = (addr + size - 1) & ~(self.line_bytes - 1)
        for line in range(first, last + self.line_bytes, self.line_bytes):
            entry = self._open[dst].pop(line, None)
            if entry is not None:
                msgs.extend(self._emit_line(dst, line, entry[0], entry[1], time))
        return msgs

    def on_release(self, time: float) -> list[WireMessage]:
        self.stats.releases += 1
        msgs: list[WireMessage] = []
        for dst, open_lines in self._open.items():
            for line, (mask, absorbed) in sorted(open_lines.items()):
                msgs.extend(self._emit_line(dst, line, mask, absorbed, time))
            open_lines.clear()
        return msgs


@dataclass(frozen=True)
class _PartitionDelta:
    """One phase's stat mutations on a single destination partition."""

    stores_in: int
    store_hits: int
    packets: int
    #: (reason, count) pairs in the order new reasons first appeared,
    #: so replaying preserves the flushes dict's insertion order.
    flushes: tuple[tuple[FlushReason, int], ...]
    stores_per_packet: tuple[int, ...]


@dataclass(frozen=True)
class _PhaseTemplate:
    """The recorded outcome of packetizing one phase's op columns.

    FinePack egress output is a pure function of the op columns within
    one phase: a system-scoped release bounds every phase, flushing all
    partitions and clearing activity state, so no aggregation window
    survives across phases.  Issue times enter only as message stamps
    -- each message records which op slot stamped it (``-1`` for
    release-flushed messages, stamped with the release time), and a
    replay re-stamps fresh times onto structurally identical messages.
    """

    #: (op slot, message) pairs in emission order; slot ``-1`` means
    #: the message was flushed by the end-of-phase release.
    messages: tuple[tuple[int, WireMessage], ...]
    stores_in: int
    atomics_in: int
    messages_out: int
    packets_built: int
    partition_deltas: tuple[tuple[int, _PartitionDelta], ...]


#: Retained phase templates per engine; enough for every distinct
#: phase shape of the shipped workloads with room to spare.
_MEMO_MAX_ENTRIES = 128


class FinePackEgress:
    """The FinePack engine: remote write queue + packetizer."""

    def __init__(
        self,
        config: FinePackConfig,
        protocol: PCIeProtocol,
        src: int,
        n_gpus: int,
        flush_timeout_ns: float | None = None,
        windows: int = 1,
    ) -> None:
        """``flush_timeout_ns`` enables the optional inactivity-timeout
        flush of Sec. IV-B (the paper evaluates without it); ``windows``
        selects the multi-window partition design of Sec. IV-C."""
        if flush_timeout_ns is not None and flush_timeout_ns <= 0:
            raise ValueError(f"flush_timeout_ns must be positive: {flush_timeout_ns}")
        self.config = config
        self.protocol = protocol
        self.src = src
        self.flush_timeout_ns = flush_timeout_ns
        self.queue = RemoteWriteQueue(config, src, n_gpus, windows=windows)
        self.packetizer = Packetizer(config, protocol)
        self.stats = EgressStats()
        self._last_activity: dict[int, float] = {}
        self._windows = windows
        #: Content-addressed phase templates (see :meth:`phase_ops`).
        self._memo: dict[bytes, _PhaseTemplate] = {}
        #: Optional :class:`repro.obs.Tracer`; set by the system when a
        #: run is traced.  Every hook below is guarded by a None check.
        self.tracer = None

    def _windows_to_messages(
        self, windows: list[tuple[int, FlushedWindow]], time: float
    ) -> list[WireMessage]:
        msgs = []
        prof = _prof.ACTIVE
        if prof is not None and windows:
            prof.begin("packetizer_rwq")
        for dst, window in windows:
            packet = self.packetizer.packetize(window)
            msgs.append(self.packetizer.to_wire_message(packet, self.src, dst, time))
            self.stats.messages_out += 1
            if self.tracer is not None:
                self.tracer.rwq_flush(
                    self.src,
                    dst,
                    window,
                    data_bytes=sum(e.enabled_bytes() for e in window.entries),
                    time_ns=time,
                    pending_entries=self.queue.partition(dst).entry_count,
                )
        if prof is not None and windows:
            prof.end()
        return msgs

    def _expire_idle(self, now: float) -> list[WireMessage]:
        """Flush partitions idle past the timeout, stamped at the time
        the hardware's timer would actually have fired."""
        if self.flush_timeout_ns is None:
            return []
        msgs: list[WireMessage] = []
        for dst, last in list(self._last_activity.items()):
            deadline = last + self.flush_timeout_ns
            if deadline <= now and not self.queue.partition(dst).empty:
                msgs.extend(
                    self._windows_to_messages(
                        self.queue.flush_destination(dst, FlushReason.TIMEOUT),
                        deadline,
                    )
                )
                del self._last_activity[dst]
        return msgs

    def on_store(
        self, addr: int, size: int, dst: int, time: float, data: bytes | None = None
    ) -> list[WireMessage]:
        self.stats.stores_in += 1
        msgs = self._expire_idle(time)
        self._last_activity[dst] = time
        prof = _prof.ACTIVE
        if prof is not None:
            prof.begin("packetizer_rwq")
        windows = self.queue.insert(addr, size, dst, data)
        if prof is not None:
            prof.end()
        msgs.extend(self._windows_to_messages(windows, time))
        if self.tracer is not None:
            self.tracer.rwq_enqueue(
                self.src,
                dst,
                addr,
                size,
                time_ns=time,
                pending_entries=self.queue.partition(dst).entry_count,
            )
        return msgs

    def on_atomic(self, addr: int, size: int, dst: int, time: float) -> list[WireMessage]:
        """Atomics are never coalesced (Sec. IV-C): flush any buffered
        store to the same address, then forward the atomic directly."""
        self.stats.atomics_in += 1
        msgs: list[WireMessage] = self._expire_idle(time)
        partition = self.queue.partition(dst)
        if partition.matches_load(addr, size):
            msgs.extend(
                self._windows_to_messages(
                    self.queue.flush_destination(dst, FlushReason.ATOMIC_CONFLICT),
                    time,
                )
            )
        payload, overhead = self.protocol.store_wire_cost(size)
        self.stats.messages_out += 1
        msgs.append(
            WireMessage(
                src=self.src,
                dst=dst,
                payload_bytes=payload,
                overhead_bytes=overhead,
                kind=MessageKind.ATOMIC,
                issue_time=time,
                stores_packed=1,
                meta=_single_range(addr, size),
            )
        )
        return msgs

    def on_remote_load(self, addr: int, size: int, dst: int, time: float) -> list[WireMessage]:
        return self._windows_to_messages(
            self.queue.flush_on_load(addr, size, dst), time
        )

    def on_release(self, time: float) -> list[WireMessage]:
        self.stats.releases += 1
        msgs = self._expire_idle(time)
        self._last_activity.clear()
        msgs.extend(
            self._windows_to_messages(self.queue.flush_all(FlushReason.RELEASE), time)
        )
        return msgs

    # -- columnar phase entry + memoization -------------------------

    def phase_ops(
        self,
        addrs: np.ndarray,
        sizes: np.ndarray,
        dsts: np.ndarray,
        times: np.ndarray,
        is_atomic: np.ndarray,
        release_time: float,
    ) -> list[WireMessage] | None:
        """One whole phase's op columns, ended by a release.

        Semantically identical to calling :meth:`on_store` /
        :meth:`on_atomic` per element in order followed by
        :meth:`on_release` at ``release_time`` -- same messages, same
        stats mutation order, same float stamps.  Phases whose op
        columns were already packetized this run replay the recorded
        template with fresh issue times (content-addressed
        memoization; collectives and stencil workloads repeat the same
        store stream every iteration).

        Returns ``None`` when this engine cannot guarantee phase-scoped
        purity -- an inactivity-timeout flush policy, a multi-window
        partition design (its LRU state survives releases), an attached
        tracer, buffered state left over from a non-release flush, or
        instance-patched per-op hooks (validation harnesses wrap
        ``on_store`` to inject faults) -- and the caller must use the
        scalar per-op path.
        """
        if (
            self.tracer is not None
            or self.flush_timeout_ns is not None
            or self._windows != 1
            or self.queue.pending_entries()
            or {"on_store", "on_atomic", "on_release"} & self.__dict__.keys()
        ):
            return None
        digest = hashlib.blake2b(digest_size=16)
        # hashlib consumes buffer-protocol objects directly, so feeding
        # the (C-contiguous) columns avoids a tobytes() copy per array
        # -- and never faults mmap-backed pages twice.
        digest.update(np.ascontiguousarray(addrs, dtype=np.int64))
        digest.update(np.ascontiguousarray(sizes, dtype=np.int64))
        digest.update(np.ascontiguousarray(dsts, dtype=np.int64))
        digest.update(np.ascontiguousarray(is_atomic, dtype=bool))
        key = digest.digest()
        template = self._memo.get(key)
        if template is None:
            msgs, template = self._record_phase(
                addrs, sizes, dsts, times, is_atomic, release_time
            )
            if len(self._memo) >= _MEMO_MAX_ENTRIES:
                self._memo.pop(next(iter(self._memo)))
            self._memo[key] = template
            return msgs
        return self._replay_phase(template, times, release_time)

    def _record_phase(
        self,
        addrs: np.ndarray,
        sizes: np.ndarray,
        dsts: np.ndarray,
        times: np.ndarray,
        is_atomic: np.ndarray,
        release_time: float,
    ) -> tuple[list[WireMessage], _PhaseTemplate]:
        """Run the phase through the real queue/packetizer, recording
        which op slot stamped each emitted message and the stat deltas.

        The loop inlines :meth:`on_store`/:meth:`on_atomic` minus the
        timeout bookkeeping (``_expire_idle`` is a no-op and
        ``_last_activity`` is cleared by the release, both guaranteed
        by the :meth:`phase_ops` eligibility gate), with the profiler
        stage hoisted out of the per-op path.
        """
        queue = self.queue
        packetizer = self.packetizer
        protocol = self.protocol
        stats = self.stats
        src = self.src
        before = {
            d: (
                p.stats.stores_in,
                p.stats.store_hits,
                p.stats.packets,
                len(p.stats.stores_per_packet),
                dict(p.stats.flushes),
            )
            for d, p in queue.partitions.items()
        }
        packets_before = packetizer.packets_built
        msgs: list[WireMessage] = []
        slots: list[int] = []
        n_atomics = 0
        prof = _prof.ACTIVE
        if prof is not None:
            prof.begin("packetizer_rwq")
        ops = zip(
            addrs.tolist(),
            sizes.tolist(),
            dsts.tolist(),
            times.tolist(),
            is_atomic.tolist(),
        )
        for slot, (addr, size, dst, time, atomic) in enumerate(ops):
            if atomic:
                n_atomics += 1
                stats.atomics_in += 1
                if queue.partition(dst).matches_load(addr, size):
                    flushed = queue.flush_destination(
                        dst, FlushReason.ATOMIC_CONFLICT
                    )
                    for flush_dst, window in flushed:
                        packet = packetizer.packetize(window)
                        msgs.append(
                            packetizer.to_wire_message(packet, src, flush_dst, time)
                        )
                        slots.append(slot)
                        stats.messages_out += 1
                payload, overhead = protocol.store_wire_cost(size)
                stats.messages_out += 1
                msgs.append(
                    WireMessage(
                        src=src,
                        dst=dst,
                        payload_bytes=payload,
                        overhead_bytes=overhead,
                        kind=MessageKind.ATOMIC,
                        issue_time=time,
                        stores_packed=1,
                        meta=_single_range(addr, size),
                    )
                )
                slots.append(slot)
            else:
                stats.stores_in += 1
                for flush_dst, window in queue.insert(addr, size, dst):
                    packet = packetizer.packetize(window)
                    msgs.append(
                        packetizer.to_wire_message(packet, src, flush_dst, time)
                    )
                    slots.append(slot)
                    stats.messages_out += 1
        stats.releases += 1
        for flush_dst, window in queue.flush_all(FlushReason.RELEASE):
            packet = packetizer.packetize(window)
            msgs.append(
                packetizer.to_wire_message(packet, src, flush_dst, release_time)
            )
            slots.append(-1)
            stats.messages_out += 1
        if prof is not None:
            prof.end()
        deltas: list[tuple[int, _PartitionDelta]] = []
        for d, partition in queue.partitions.items():
            s_in, hits, packets, n_spp, flushes = before[d]
            after = partition.stats
            if (after.stores_in, after.store_hits, after.packets) == (
                s_in,
                hits,
                packets,
            ):
                continue
            deltas.append(
                (
                    d,
                    _PartitionDelta(
                        stores_in=after.stores_in - s_in,
                        store_hits=after.store_hits - hits,
                        packets=after.packets - packets,
                        flushes=tuple(
                            (reason, count - flushes.get(reason, 0))
                            for reason, count in after.flushes.items()
                            if count != flushes.get(reason, 0)
                        ),
                        stores_per_packet=tuple(after.stores_per_packet[n_spp:]),
                    ),
                )
            )
        template = _PhaseTemplate(
            messages=tuple(zip(slots, msgs)),
            stores_in=int(addrs.size) - n_atomics,
            atomics_in=n_atomics,
            messages_out=len(msgs),
            packets_built=packetizer.packets_built - packets_before,
            partition_deltas=tuple(deltas),
        )
        return msgs, template

    def _replay_phase(
        self,
        template: _PhaseTemplate,
        times: np.ndarray,
        release_time: float,
    ) -> list[WireMessage]:
        """Re-emit a recorded phase with fresh issue times.

        Messages are structurally identical to a fresh packetization
        (packets are immutable once built and every downstream consumer
        -- depacketizer, byte ledger -- only reads them), so only the
        issue stamps differ between replays.
        """
        stats = self.stats
        stats.stores_in += template.stores_in
        stats.atomics_in += template.atomics_in
        stats.messages_out += template.messages_out
        stats.releases += 1
        self.packetizer.packets_built += template.packets_built
        for dst, delta in template.partition_deltas:
            pstats = self.queue.partition(dst).stats
            pstats.stores_in += delta.stores_in
            pstats.store_hits += delta.store_hits
            pstats.packets += delta.packets
            for reason, count in delta.flushes:
                pstats.flushes[reason] = pstats.flushes.get(reason, 0) + count
            pstats.stores_per_packet.extend(delta.stores_per_packet)
        stamps = times.tolist()
        return [
            replace(
                msg,
                issue_time=release_time if slot < 0 else stamps[slot],
            )
            for slot, msg in template.messages
        ]
