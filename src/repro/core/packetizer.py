"""FinePack packetizer (paper Sec. IV-B).

Converts a flushed remote-write-queue window into one outer FinePack
transaction: each queue entry contributes one sub-transaction per
maximal contiguous run of enabled bytes (the sub-header has no byte
enables, so non-contiguous bytes in an entry must split -- exactly the
behaviour the paper describes).
"""

from __future__ import annotations

import numpy as np

from ..interconnect.message import MessageKind, WireMessage
from ..interconnect.pcie import PCIeProtocol
from ..perf.batch import masks_to_runs
from ..perf.config import get_perf_config
from .config import FinePackConfig
from .packet import FinePackPacket, SubTransaction
from .remote_write_queue import FlushedWindow


class Packetizer:
    """Builds FinePack packets and their wire messages."""

    def __init__(self, config: FinePackConfig, protocol: PCIeProtocol) -> None:
        self.config = config
        self.protocol = protocol
        self.packets_built = 0
        # masks_to_runs packs masks into whole bytes, so the vectorized
        # path needs byte-aligned entries (the default 128 qualifies).
        self._fast = get_perf_config().vector_rwq and config.entry_bytes % 8 == 0

    def packetize(self, window: FlushedWindow) -> FinePackPacket:
        """Turn one flushed window into a FinePack packet."""
        cfg = self.config
        if self._fast and all(e.data is None for e in window.entries):
            rows, starts, lengths = masks_to_runs(
                [e.mask for e in window.entries], cfg.entry_bytes
            )
            line_addrs = np.asarray(
                [e.line_addr for e in window.entries], dtype=np.int64
            )
            offsets = line_addrs[rows] + starts - window.base_addr
            self.packets_built += 1
            # Column-native packet: downstream accounting consumes the
            # (offset, length) arrays; SubTransaction objects are only
            # materialized if something asks for them.
            return FinePackPacket(
                base_addr=window.base_addr,
                columns=(offsets, lengths),
                stores_absorbed=window.stores_absorbed,
            )
        subs: list[SubTransaction] = []
        for entry in window.entries:
            for start, length in entry.runs(cfg.entry_bytes):
                offset = entry.line_addr + start - window.base_addr
                data = None
                if entry.data is not None:
                    data = bytes(entry.data[start : start + length])
                subs.append(
                    SubTransaction(offset=offset, length=length, data=data)
                )
        self.packets_built += 1
        return FinePackPacket(
            base_addr=window.base_addr,
            subs=subs,
            stores_absorbed=window.stores_absorbed,
        )

    def to_wire_message(
        self, packet: FinePackPacket, src: int, dst: int, time: float
    ) -> WireMessage:
        """Wrap a packet in a wire message with byte-exact costs.

        The message's ``meta["ranges"]`` records the absolute byte
        ranges delivered, for the useful/wasted byte ledger.
        """
        payload, overhead = packet.wire_cost(self.config, self.protocol)
        offsets, lengths = packet.sub_columns()
        starts = packet.base_addr + offsets
        return WireMessage(
            src=src,
            dst=dst,
            payload_bytes=payload,
            overhead_bytes=overhead,
            kind=MessageKind.FINEPACK,
            issue_time=time,
            stores_packed=packet.stores_absorbed,
            meta={"ranges": (starts, lengths), "packet": packet},
        )
