"""FinePack configuration (paper Tables II and III).

The central design parameter is the *sub-transaction header size*: each
packed store carries a small header containing a 10-bit length field
(mirroring PCIe) and an address-offset field occupying the remaining
bits.  More header bytes widen the addressable window of one outer
transaction (allowing more stores to be packed) but cost more overhead
per packed store -- the trade-off swept in the paper's Figure 12.

+----------------+----+------+-----+-----+-------+
| header bytes   |  2 |   3  |  4  |  5  |   6   |
+----------------+----+------+-----+-----+-------+
| length bits    | 10 |  10  | 10  | 10  |  10   |
| offset bits    |  6 |  14  | 22  | 30  |  38   |
| window         |64B | 16KB | 4MB | 1GB | 256GB |
+----------------+----+------+-----+-----+-------+
"""

from __future__ import annotations

from dataclasses import dataclass

#: Bits reserved for the sub-transaction length field (Table II).
LENGTH_FIELD_BITS = 10

#: Cache-line granularity of remote write queue entries (Table III).
QUEUE_ENTRY_DATA_BYTES = 128

#: Queue entry size including tag/byte-enable metadata (Table III).
QUEUE_ENTRY_TOTAL_BYTES = 144


def offset_bits_for(subheader_bytes: int) -> int:
    """Address-offset bits available in a sub-header of given size."""
    bits = subheader_bytes * 8 - LENGTH_FIELD_BITS
    if bits <= 0:
        raise ValueError(
            f"sub-header of {subheader_bytes} B cannot hold the "
            f"{LENGTH_FIELD_BITS}-bit length field"
        )
    return bits


def addressable_window(subheader_bytes: int) -> int:
    """Bytes addressable by one outer transaction (Table II row 3)."""
    return 1 << offset_bits_for(subheader_bytes)


@dataclass(frozen=True, slots=True)
class FinePackConfig:
    """Parameters of one FinePack deployment (defaults: paper Table III).

    Attributes
    ----------
    subheader_bytes:
        Size of each sub-transaction header (paper default: 5, giving a
        30-bit offset / 1 GB window).
    max_payload_bytes:
        PCIe maximum payload the outer transaction may carry (4096).
    queue_entries_per_partition:
        Fully-associative entries in each remote-write-queue partition.
        Sized so a partition can buffer a full 4 KB payload of 128 B
        lines: 64 entries, hence 192 entries total on a 4-GPU system
        (3 peer partitions), matching Table III.
    entry_bytes:
        Data bytes per queue entry (one cache line).
    """

    subheader_bytes: int = 5
    max_payload_bytes: int = 4096
    queue_entries_per_partition: int = 64
    entry_bytes: int = QUEUE_ENTRY_DATA_BYTES

    def __post_init__(self) -> None:
        if not 2 <= self.subheader_bytes <= 8:
            raise ValueError(
                f"subheader_bytes must be in [2, 8], got {self.subheader_bytes}"
            )
        if self.max_payload_bytes <= 0:
            raise ValueError("max_payload_bytes must be positive")
        if self.queue_entries_per_partition <= 0:
            raise ValueError("queue_entries_per_partition must be positive")
        if self.entry_bytes & (self.entry_bytes - 1):
            raise ValueError(f"entry_bytes must be a power of two: {self.entry_bytes}")
        if self.entry_bytes + self.subheader_bytes > self.max_payload_bytes:
            raise ValueError("one entry must fit in the maximum payload")
        if self.max_length_value < self.entry_bytes:
            raise ValueError(
                "length field cannot express a full queue entry; "
                "increase subheader_bytes"
            )

    @property
    def offset_bits(self) -> int:
        """Address-offset bits in each sub-header (Table III: 30)."""
        return offset_bits_for(self.subheader_bytes)

    @property
    def window_bytes(self) -> int:
        """Addressable range of one outer transaction."""
        return 1 << self.offset_bits

    @property
    def max_length_value(self) -> int:
        """Largest payload length one sub-transaction can describe."""
        return (1 << LENGTH_FIELD_BITS) - 1

    @property
    def partition_data_bytes(self) -> int:
        """SRAM data capacity of one queue partition."""
        return self.queue_entries_per_partition * self.entry_bytes

    def window_base(self, addr: int) -> int:
        """Outer-transaction base address covering ``addr``.

        The paper's "simplest approach" (Sec. IV-C): mask off the
        low-order offset bits of the first store's address.
        """
        return addr & ~(self.window_bytes - 1)

    def in_window(self, base: int, addr: int) -> bool:
        """Whether ``addr`` falls inside the window rooted at ``base``."""
        return base <= addr < base + self.window_bytes

    def queue_sram_bytes(self, n_gpus: int) -> int:
        """Total remote-write-queue SRAM on one GPU of an n-GPU system.

        Data bytes only ("not counting tags or byte enables").  With the
        default geometry this reproduces the paper's 16-GPU figure of
        120 kB per GPU (15 partitions x 64 entries x 128 B, Sec. VI-B).
        """
        if n_gpus < 2:
            raise ValueError("a multi-GPU system needs at least 2 GPUs")
        return (n_gpus - 1) * self.partition_data_bytes


@dataclass(frozen=True, slots=True)
class FabricConfig:
    """Interconnect-health parameters of one deployment.

    Complements :class:`FinePackConfig` (which describes the packing
    hardware) with the fabric-reliability knobs the fault subsystem and
    the ``--error-rate`` CLI plumbing use.

    Attributes
    ----------
    error_rate:
        Baseline per-byte corruption probability on every link (DLL
        replay injection); 0 disables it.  Scenario ``crc_burst``
        windows add on top of this.
    retry_timeout_ns:
        End-to-end retransmit timeout for packets lost to link outages;
        doubles on every attempt (exponential backoff).
    max_retries:
        Retransmit attempts before a sender gives up on a link and the
        message escalates to rerouting.
    """

    error_rate: float = 0.0
    retry_timeout_ns: float = 1_000.0
    max_retries: int = 10

    def __post_init__(self) -> None:
        if not 0.0 <= self.error_rate < 1.0:
            raise ValueError(f"error_rate must be in [0, 1): {self.error_rate}")
        if self.retry_timeout_ns <= 0:
            raise ValueError(
                f"retry_timeout_ns must be positive: {self.retry_timeout_ns}"
            )
        if self.max_retries < 1:
            raise ValueError(f"max_retries must be >= 1: {self.max_retries}")


#: The evaluation configuration of the paper (Table III).
DEFAULT_CONFIG = FinePackConfig()

#: A healthy fabric: no injected errors.
DEFAULT_FABRIC = FabricConfig()
