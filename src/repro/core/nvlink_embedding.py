"""FinePack embedded in NVLink (paper Sec. IV-C, "Applicability Beyond
PCIe").

NVLink carries byte-enable information for the whole payload, so the
FinePack payload needs a slightly different embedding than on PCIe: the
outer write's byte enables are unused (each sub-header carries its own
1-byte-granular length), the sub-header + data stream simply packs into
16-byte data flits, and the packet pays one header flit.

The practical difference from PCIe is the *maximum payload*: a single
NVLink write carries at most 256 B (16 data flits), so a FinePack
window must be emitted as a train of NVLink packets, each paying its
own header flit.  Aggregation still amortizes the per-store address
cost (base+offset compression) even though the framing amortization is
weaker than PCIe's 4 KB payloads.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..interconnect.nvlink import FLIT_BYTES, NVLinkProtocol
from .config import FinePackConfig
from .packet import FinePackPacket


@dataclass(frozen=True, slots=True)
class NVLinkFinePackEmbedding:
    """Wire-cost model for FinePack transactions on NVLink."""

    config: FinePackConfig
    nvlink: NVLinkProtocol = NVLinkProtocol()

    def max_inner_payload(self) -> int:
        """Inner payload bytes one NVLink packet can carry."""
        return self.nvlink.max_payload

    def wire_cost(self, packet: FinePackPacket) -> tuple[int, int]:
        """(payload, overhead) to ship one FinePack window over NVLink.

        Sub-transactions are packed greedily into 256 B NVLink packets;
        a sub-transaction never splits across packets (its header and
        data travel together), mirroring how the PCIe embedding keeps
        sub-transactions contiguous.
        """
        payload = packet.payload_data_bytes
        overhead = 0
        open_bytes = 0
        packets = 0
        for sub in packet.subs:
            need = sub.wire_bytes(self.config)
            if need > self.max_inner_payload():
                raise ValueError(
                    f"sub-transaction of {need} B cannot fit an NVLink packet"
                )
            if packets == 0 or open_bytes + need > self.max_inner_payload():
                # Close the open packet (pad to flits) and start fresh.
                if packets:
                    overhead += -(-open_bytes // FLIT_BYTES) * FLIT_BYTES - open_bytes
                overhead += FLIT_BYTES  # header flit of the new packet
                packets += 1
                open_bytes = 0
            open_bytes += need
            overhead += self.config.subheader_bytes
        if packets:
            overhead += -(-open_bytes // FLIT_BYTES) * FLIT_BYTES - open_bytes
        return payload, overhead

    def goodput(self, packet: FinePackPacket) -> float:
        payload, overhead = self.wire_cost(packet)
        return payload / (payload + overhead) if payload + overhead else 0.0

    def raw_store_cost(self, packet: FinePackPacket) -> tuple[int, int]:
        """What the same stores would cost as individual NVLink writes."""
        payload = 0
        overhead = 0
        for sub in packet.subs:
            p, o = self.nvlink.store_wire_cost(
                min(sub.length, self.nvlink.max_payload),
                addr=packet.base_addr + sub.offset,
            )
            scale = -(-sub.length // self.nvlink.max_payload)
            if scale > 1:  # long runs ship as packet trains
                p, o = self.nvlink.bulk_transfer_cost(sub.length)
            payload += p
            overhead += o
        return payload, overhead

    def improvement_over_raw(self, packet: FinePackPacket) -> float:
        """Wire-byte ratio raw-stores / FinePack-embedded (>1 = win)."""
        fp = sum(self.wire_cost(packet))
        raw = sum(self.raw_store_cost(packet))
        return raw / fp if fp else 0.0
