"""FinePack core: the paper's contribution.

Public surface:

* :class:`FinePackConfig` (Tables II/III), :data:`DEFAULT_CONFIG`.
* :class:`FinePackPacket` / :class:`SubTransaction` (Table I, Fig. 6).
* :class:`RemoteWriteQueue` / :class:`QueuePartition` (Fig. 8).
* :class:`Packetizer`, :class:`Depacketizer` (Fig. 7).
* Egress engines: :class:`FinePackEgress`, :class:`PassthroughEgress`,
  :class:`WriteCombiningEgress`.
* :class:`ConfigPacketDesign` -- the Sec. VI-B alternate design.
"""

from .alt_designs import ConfigPacketDesign
from .config import (
    DEFAULT_CONFIG,
    LENGTH_FIELD_BITS,
    FinePackConfig,
    addressable_window,
    offset_bits_for,
)
from .depacketizer import Depacketizer, DepacketizerStats, DisaggregatedStore
from .nvlink_embedding import NVLinkFinePackEmbedding
from .egress import (
    EgressStats,
    FinePackEgress,
    PassthroughEgress,
    WriteCombiningEgress,
)
from .packet import FinePackPacket, SubTransaction
from .packetizer import Packetizer
from .remote_write_queue import (
    FlushedWindow,
    FlushReason,
    MultiWindowPartition,
    PartitionStats,
    QueueEntry,
    QueuePartition,
    RemoteWriteQueue,
)

__all__ = [
    "ConfigPacketDesign",
    "DEFAULT_CONFIG",
    "LENGTH_FIELD_BITS",
    "FinePackConfig",
    "addressable_window",
    "offset_bits_for",
    "Depacketizer",
    "DepacketizerStats",
    "DisaggregatedStore",
    "EgressStats",
    "FinePackEgress",
    "PassthroughEgress",
    "WriteCombiningEgress",
    "FinePackPacket",
    "SubTransaction",
    "Packetizer",
    "FlushedWindow",
    "FlushReason",
    "MultiWindowPartition",
    "NVLinkFinePackEmbedding",
    "PartitionStats",
    "QueueEntry",
    "QueuePartition",
    "RemoteWriteQueue",
]
