"""The FinePack remote write queue (paper Sec. IV-B, Figure 8).

A dedicated SRAM between the intra-GPU crossbar and the network egress
port.  It is partitioned per destination GPU; each partition is a
fully-associative structure indexed by address at 128-byte granularity.
Each entry holds an address tag, up to 128 B of data, and per-byte
enables.  Behaviour on an incoming store:

1. If the partition is empty, the store sets the partition's base
   address (its own address with the low ``offset_bits`` masked off)
   and occupies a fresh entry.
2. Otherwise the partition checks (a) the store falls inside the
   ``[base, base + 2**offset_bits)`` window and (b) the store plus one
   sub-header still fits the remaining payload budget.  If either
   fails, the partition *flushes* (hands its contents to the
   packetizer) and the store starts a new aggregation window.
3. On a tag hit the byte enables are OR-ed and the data overwritten in
   place -- this is the same-address coalescing the weak memory model
   permits, and the source of the "wasted bytes" savings in Fig. 10.
4. On a miss a new entry is allocated; a full partition flushes first.

Flushes are also forced by system-scoped releases (fence/kernel end),
by remote loads or atomics that overlap a buffered store, and -- in
alternative configurations -- by an inactivity timeout (not used in the
paper's evaluation, nor by default here).
"""

from __future__ import annotations

import dataclasses
import enum
from dataclasses import dataclass, field

from ..perf.config import get_perf_config
from .config import FinePackConfig


class FlushReason(enum.Enum):
    """Why a partition handed its contents to the packetizer."""

    PAYLOAD_FULL = "payload_full"
    ENTRIES_FULL = "entries_full"
    WINDOW_MISS = "window_miss"
    RELEASE = "release"
    LOAD_CONFLICT = "load_conflict"
    ATOMIC_CONFLICT = "atomic_conflict"
    #: Inactivity timeout (the optional policy of Sec. IV-B; off by
    #: default, as in the paper's evaluation).
    TIMEOUT = "timeout"
    #: A multi-window design evicted its least-recently-used window to
    #: make room for a new aggregation range (Sec. IV-C).
    WINDOW_EVICTION = "window_eviction"


@dataclass
class QueueEntry:
    """One 128-byte-granularity entry: tag, byte enables, data."""

    line_addr: int
    #: Byte-enable bitmask: bit ``i`` set means byte ``line_addr + i``
    #: holds valid (pending) data.
    mask: int = 0
    data: bytearray | None = None

    def enabled_bytes(self) -> int:
        return self.mask.bit_count()

    def runs(self, entry_bytes: int) -> list[tuple[int, int]]:
        """Maximal contiguous enabled runs as (start_offset, length)."""
        out: list[tuple[int, int]] = []
        mask = self.mask
        run_starts = mask & ~(mask << 1)
        while run_starts:
            start = (run_starts & -run_starts).bit_length() - 1
            length = 0
            while start + length < entry_bytes and (mask >> (start + length)) & 1:
                length += 1
            out.append((start, length))
            run_starts &= run_starts - 1
        return out


@dataclass
class PartitionStats:
    stores_in: int = 0
    store_hits: int = 0
    flushes: dict[FlushReason, int] = field(default_factory=dict)
    packets: int = 0
    stores_per_packet: list[int] = field(default_factory=list)

    def record_flush(self, reason: FlushReason, absorbed: int) -> None:
        self.flushes[reason] = self.flushes.get(reason, 0) + 1
        self.packets += 1
        self.stores_per_packet.append(absorbed)

    @property
    def mean_stores_per_packet(self) -> float:
        if not self.stores_per_packet:
            return 0.0
        return sum(self.stores_per_packet) / len(self.stores_per_packet)


@dataclass
class FlushedWindow:
    """The contents of one partition flush, ready for the packetizer."""

    base_addr: int
    entries: list[QueueEntry]
    stores_absorbed: int
    reason: FlushReason


class QueuePartition:
    """One per-destination partition of the remote write queue."""

    def __init__(self, config: FinePackConfig, dst: int) -> None:
        self.config = config
        self.dst = dst
        self.base_addr: int | None = None
        self._entries: dict[int, QueueEntry] = {}
        # Mirrors the paper's "available payload length register":
        # payload budget already committed (sub-headers + data bytes).
        self._payload_cost = 0
        self._stores_absorbed = 0
        self.stats = PartitionStats()
        # The config's derived values are computed properties; the
        # insert path touches them per store, so cache them here.
        self._entry_bytes = config.entry_bytes
        self._subheader = config.subheader_bytes
        self._max_payload = config.max_payload_bytes
        self._max_entries = config.queue_entries_per_partition
        self._window_bytes = config.window_bytes
        self._fast_cost = get_perf_config().vector_rwq

    # -- inspection -------------------------------------------------

    @property
    def empty(self) -> bool:
        return not self._entries

    @property
    def entry_count(self) -> int:
        return len(self._entries)

    def pending_bytes(self) -> int:
        """Valid (pending) data bytes currently buffered."""
        return sum(e.enabled_bytes() for e in self._entries.values())

    @property
    def available_payload(self) -> int:
        """Remaining payload budget (max payload minus committed cost)."""
        return self._max_payload - self._payload_cost

    def _entry_cost(self, entry: QueueEntry) -> int:
        if self._fast_cost:
            # Enabled bytes plus one sub-header per maximal run, without
            # materializing the run list: popcount counts the data
            # bytes, and ``mask & ~(mask << 1)`` keeps exactly each
            # run's lowest set bit (masks never exceed entry_bytes
            # bits, so the shift cannot fabricate a run start).
            mask = entry.mask
            return (
                mask.bit_count()
                + (mask & ~(mask << 1)).bit_count() * self._subheader
            )
        runs = entry.runs(self._entry_bytes)
        return sum(length for _, length in runs) + len(runs) * self._subheader

    def matches_load(self, addr: int, size: int) -> bool:
        """Whether a load of [addr, addr+size) overlaps buffered bytes."""
        line_bytes = self.config.entry_bytes
        first = addr & ~(line_bytes - 1)
        last = (addr + size - 1) & ~(line_bytes - 1)
        for line in range(first, last + line_bytes, line_bytes):
            entry = self._entries.get(line)
            if entry is None:
                continue
            lo = max(addr, line) - line
            hi = min(addr + size, line + line_bytes) - line
            span_mask = ((1 << (hi - lo)) - 1) << lo
            if entry.mask & span_mask:
                return True
        return False

    # -- mutation ---------------------------------------------------

    def insert(
        self, addr: int, size: int, data: bytes | None = None
    ) -> list[FlushedWindow]:
        """Buffer one store; returns any flushes it forced.

        Stores that span a 128 B line boundary are split (the L1
        coalescer never emits such stores, but the queue stays correct
        if fed raw traces).
        """
        if size <= 0:
            raise ValueError(f"store size must be positive: {size}")
        line_bytes = self._entry_bytes
        flushes: list[FlushedWindow] = []
        pos = 0
        while pos < size:
            line_off = (addr + pos) % line_bytes
            chunk = min(size - pos, line_bytes - line_off)
            piece = None if data is None else data[pos : pos + chunk]
            flushes.extend(self._insert_within_line(addr + pos, chunk, piece))
            pos += chunk
        return flushes

    def _insert_within_line(
        self, addr: int, size: int, data: bytes | None
    ) -> list[FlushedWindow]:
        flushes: list[FlushedWindow] = []
        self.stats.stores_in += 1

        base = self.base_addr
        if base is not None:
            in_window = base <= addr < base + self._window_bytes
            # The paper's conservative admission check: incoming length
            # plus one sub-header must fit the available payload.
            fits = size + self._subheader <= self._max_payload - self._payload_cost
            line = addr & ~(self._entry_bytes - 1)
            has_room = line in self._entries or len(self._entries) < self._max_entries
            if not in_window:
                flushes.append(self._flush(FlushReason.WINDOW_MISS))
            elif not fits:
                flushes.append(self._flush(FlushReason.PAYLOAD_FULL))
            elif not has_room:
                flushes.append(self._flush(FlushReason.ENTRIES_FULL))

        if self.base_addr is None:
            self.base_addr = addr & ~(self._window_bytes - 1)

        line = addr & ~(self._entry_bytes - 1)
        off = addr - line
        entry = self._entries.get(line)
        if entry is None:
            entry = QueueEntry(line_addr=line)
            self._entries[line] = entry
        else:
            self.stats.store_hits += 1

        old_cost = self._entry_cost(entry) if entry.mask else 0
        span_mask = ((1 << size) - 1) << off
        entry.mask |= span_mask
        if data is not None:
            if entry.data is None:
                entry.data = bytearray(self._entry_bytes)
            entry.data[off : off + size] = data
        self._payload_cost += self._entry_cost(entry) - old_cost
        self._stores_absorbed += 1
        return flushes

    def _flush(self, reason: FlushReason) -> FlushedWindow:
        assert self.base_addr is not None
        entries = sorted(self._entries.values(), key=lambda e: e.line_addr)
        window = FlushedWindow(
            base_addr=self.base_addr,
            entries=entries,
            stores_absorbed=self._stores_absorbed,
            reason=reason,
        )
        self.stats.record_flush(reason, self._stores_absorbed)
        self.base_addr = None
        self._entries = {}
        self._payload_cost = 0
        self._stores_absorbed = 0
        return window

    def flush(self, reason: FlushReason) -> FlushedWindow | None:
        """Flush the partition if non-empty."""
        if self.empty:
            return None
        return self._flush(reason)


class MultiWindowPartition:
    """A partition holding several concurrent aggregation windows.

    The Sec. IV-C extension: "maintain multiple open outer transactions
    for each target GPU so that accesses to data structures spanning
    two aligned regions do not thrash the remote write queue."  The
    partition's entry budget is divided evenly among ``windows``
    sub-partitions; an incoming store joins the window covering its
    address, opens an idle one, or -- when all are busy -- evicts the
    least-recently-used window.
    """

    def __init__(self, config: FinePackConfig, dst: int, windows: int) -> None:
        if windows < 1:
            raise ValueError(f"windows must be >= 1, got {windows}")
        per_window = config.queue_entries_per_partition // windows
        if per_window < 1:
            raise ValueError(
                f"{windows} windows leave no entries per window "
                f"(partition has {config.queue_entries_per_partition})"
            )
        sub_config = dataclasses.replace(
            config, queue_entries_per_partition=per_window
        )
        self.config = config
        self.dst = dst
        self._subs = [QueuePartition(sub_config, dst) for _ in range(windows)]
        self._lru: list[int] = list(range(windows))
        self._window_bytes = config.window_bytes
        self.stats = PartitionStats()

    @property
    def empty(self) -> bool:
        return all(s.empty for s in self._subs)

    @property
    def entry_count(self) -> int:
        return sum(s.entry_count for s in self._subs)

    def pending_bytes(self) -> int:
        return sum(s.pending_bytes() for s in self._subs)

    def _touch(self, idx: int) -> None:
        self._lru.remove(idx)
        self._lru.append(idx)

    def _absorb_stats(self) -> None:
        self.stats.stores_in = sum(s.stats.stores_in for s in self._subs)
        self.stats.store_hits = sum(s.stats.store_hits for s in self._subs)

    def insert(
        self, addr: int, size: int, data: bytes | None = None
    ) -> list[FlushedWindow]:
        # Split at window boundaries before routing: deciding by the
        # start address alone would let the tail of a boundary-spanning
        # store reopen a base some other sub-window already covers, and
        # two windows holding the same line deliver same-address stores
        # out of order at flush time.
        flushes: list[FlushedWindow] = []
        window_bytes = self._window_bytes
        pos = 0
        while pos < size:
            offset = (addr + pos) % window_bytes
            chunk = min(size - pos, window_bytes - offset)
            piece = None if data is None else data[pos : pos + chunk]
            flushes.extend(self._insert_in_window(addr + pos, chunk, piece))
            pos += chunk
        for w in flushes:
            self.stats.record_flush(w.reason, w.stores_absorbed)
        self._absorb_stats()
        return flushes

    def _insert_in_window(
        self, addr: int, size: int, data: bytes | None
    ) -> list[FlushedWindow]:
        """Route one window-contained piece to its aggregation window."""
        flushes: list[FlushedWindow] = []
        # A window already covering this address wins.
        for idx, sub in enumerate(self._subs):
            if sub.base_addr is not None and self.config.in_window(
                sub.base_addr, addr
            ):
                self._touch(idx)
                flushes = sub.insert(addr, size, data)
                break
        else:
            # Otherwise an idle window, else evict the LRU one.
            for idx in self._lru:
                if self._subs[idx].empty:
                    break
            else:
                idx = self._lru[0]
                window = self._subs[idx].flush(FlushReason.WINDOW_EVICTION)
                if window is not None:
                    flushes.append(window)
            self._touch(idx)
            flushes.extend(self._subs[idx].insert(addr, size, data))
        return flushes

    def flush(self, reason: FlushReason) -> list[FlushedWindow]:
        out = []
        for sub in self._subs:
            window = sub.flush(reason)
            if window is not None:
                out.append(window)
                self.stats.record_flush(window.reason, window.stores_absorbed)
        self._absorb_stats()
        return out

    def matches_load(self, addr: int, size: int) -> bool:
        return any(s.matches_load(addr, size) for s in self._subs)


def _as_windows(result) -> list[FlushedWindow]:
    """Normalize a flush result: single partitions return one window or
    ``None``; multi-window partitions return a list."""
    if result is None:
        return []
    if isinstance(result, FlushedWindow):
        return [result]
    return list(result)


class RemoteWriteQueue:
    """The per-GPU remote write queue: one partition per peer GPU.

    With ``windows > 1`` each per-destination partition becomes a
    :class:`MultiWindowPartition` holding that many concurrent
    aggregation windows (Sec. IV-C), with the same total entry budget.
    """

    def __init__(
        self, config: FinePackConfig, gpu: int, n_gpus: int, windows: int = 1
    ) -> None:
        if not 0 <= gpu < n_gpus:
            raise ValueError(f"gpu {gpu} outside system of {n_gpus}")
        self.config = config
        self.gpu = gpu
        if windows == 1:
            self.partitions = {
                d: QueuePartition(config, d) for d in range(n_gpus) if d != gpu
            }
        else:
            self.partitions = {
                d: MultiWindowPartition(config, d, windows)
                for d in range(n_gpus)
                if d != gpu
            }

    def partition(self, dst: int):
        p = self.partitions.get(dst)
        if p is None:
            raise KeyError(
                f"GPU {self.gpu} has no partition for destination {dst}"
            )
        return p

    def insert(
        self, addr: int, size: int, dst: int, data: bytes | None = None
    ) -> list[tuple[int, FlushedWindow]]:
        """Buffer a store to ``dst``; returns (dst, flush) pairs."""
        return [(dst, w) for w in self.partition(dst).insert(addr, size, data)]

    def flush_all(self, reason: FlushReason) -> list[tuple[int, FlushedWindow]]:
        """Flush every partition (system-scoped release semantics)."""
        out: list[tuple[int, FlushedWindow]] = []
        for dst in sorted(self.partitions):
            for window in _as_windows(self.partitions[dst].flush(reason)):
                out.append((dst, window))
        return out

    def flush_destination(
        self, dst: int, reason: FlushReason
    ) -> list[tuple[int, FlushedWindow]]:
        """Flush one destination's partition (timeout / conflict paths)."""
        return [
            (dst, w) for w in _as_windows(self.partition(dst).flush(reason))
        ]

    def flush_on_load(self, addr: int, size: int, dst: int) -> list[tuple[int, FlushedWindow]]:
        """Same-address load-store ordering: flush if the load hits.

        The paper allows either individual-store flushing or a whole
        partition flush; we implement the partition flush.
        """
        p = self.partition(dst)
        if p.matches_load(addr, size):
            return self.flush_destination(dst, FlushReason.LOAD_CONFLICT)
        return []

    def pending_entries(self) -> int:
        """Occupied entries across all partitions (observability hook)."""
        return sum(p.entry_count for p in self.partitions.values())

    def pending_bytes(self) -> int:
        """Buffered data bytes across all partitions (observability hook)."""
        return sum(p.pending_bytes() for p in self.partitions.values())

    def total_sram_data_bytes(self) -> int:
        return len(self.partitions) * self.config.partition_data_bytes
