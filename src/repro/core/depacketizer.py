"""FinePack de-packetizer (paper Sec. IV-B).

At the destination GPU's ingress port, a FinePack transaction is
disaggregated back into individual stores: each sub-transaction's
offset is added to the outer packet's base address and the store is
forwarded into the local memory system.  Because the L2 cannot absorb
all disaggregated stores in the cycle they arrive, the de-packetizer
buffers them in a 64-entry x 128 B ingress buffer that drains at the
local memory write bandwidth.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .config import FinePackConfig
from .packet import FinePackPacket


@dataclass(frozen=True, slots=True)
class DisaggregatedStore:
    """One store recovered from a FinePack packet."""

    addr: int
    size: int
    data: bytes | None = None


@dataclass
class DepacketizerStats:
    packets: int = 0
    stores_out: int = 0
    bytes_out: int = 0
    peak_buffer_entries: int = 0


@dataclass
class Depacketizer:
    """Receiver-side disaggregation with a bounded ingress buffer.

    Parameters
    ----------
    config:
        Must match the sender's configuration (sub-header geometry is a
        link-level agreement).
    buffer_entries:
        Ingress buffer capacity in 128 B entries (paper: 64).
    drain_bytes_per_ns:
        Local memory write bandwidth draining the buffer.
    """

    config: FinePackConfig
    buffer_entries: int = 64
    drain_bytes_per_ns: float = 900.0
    stats: DepacketizerStats = field(default_factory=DepacketizerStats)
    #: (drain_completion_time, entries) of in-flight buffered packets.
    _occupancy: list[tuple[float, int]] = field(default_factory=list)

    def buffer_bytes(self) -> int:
        return self.buffer_entries * self.config.entry_bytes

    def disaggregate(self, packet: FinePackPacket) -> list[DisaggregatedStore]:
        """Split a packet into individual stores (address reconstruction)."""
        stores = [
            DisaggregatedStore(addr=a, size=n, data=d) for a, n, d in packet.stores()
        ]
        self.stats.packets += 1
        self.stats.stores_out += len(stores)
        self.stats.bytes_out += sum(s.size for s in stores)
        return stores

    def decode_wire_payload(
        self, base_addr: int, raw: bytes
    ) -> list[DisaggregatedStore]:
        """Full receive path: parse raw payload bytes, then disaggregate."""
        packet = FinePackPacket.decode_payload(base_addr, raw, self.config)
        return self.disaggregate(packet)

    def admit(self, packet: FinePackPacket, arrival: float) -> float:
        """Model buffer occupancy; returns when the packet is drained.

        If the buffer is full at ``arrival``, admission waits for prior
        packets to drain (this back-pressure feeds the link-level credit
        model).
        """
        entries_needed = max(
            1, -(-packet.inner_payload_bytes(self.config) // self.config.entry_bytes)
        )
        if entries_needed > self.buffer_entries:
            raise ValueError(
                f"packet needs {entries_needed} buffer entries, "
                f"capacity is {self.buffer_entries}"
            )
        self._occupancy = [(t, n) for t, n in self._occupancy if t > arrival]
        pending = sorted(self._occupancy)
        occupied = sum(n for _, n in pending)
        start = arrival
        i = 0
        while occupied + entries_needed > self.buffer_entries:
            t, n = pending[i]
            start = max(start, t)
            occupied -= n
            i += 1
        drain_done = start + packet.payload_data_bytes / self.drain_bytes_per_ns
        self._occupancy.append((drain_done, entries_needed))
        self.stats.peak_buffer_entries = max(
            self.stats.peak_buffer_entries, occupied + entries_needed
        )
        return drain_done
