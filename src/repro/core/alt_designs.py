"""Alternate FinePack design: stateful configuration packets (Sec. VI-B).

The paper's opportunity study considered a virtual-circuit-style design:
a special *configuration packet* carries the common header fields (base
address etc.) once, and subsequent stores travel as independent small
TLPs whose headers are slimmed down to an offset.  Because each store
remains an independent PCIe packet, it still pays its own sequence
number, LCRC and ECRC (10 bytes) plus framing -- overhead FinePack
amortizes across a whole packed payload.  The paper finds this design
~18% less efficient for packets of 32-64 packed stores.

This module provides the analytic cost model used by the ablation
bench, operating on the same flushed windows the real packetizer sees,
so both designs are charged for identical store streams.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..interconnect.pcie import (
    DW_BYTES,
    ECRC_BYTES,
    FRAMING_BYTES,
    LCRC_BYTES,
    MEM_WRITE_HEADER_BYTES,
    SEQUENCE_BYTES,
    PCIeProtocol,
)
from .config import FinePackConfig
from .packet import FinePackPacket


@dataclass(frozen=True, slots=True)
class ConfigPacketDesign:
    """Cost model for the stateful config-packet alternative.

    Parameters
    ----------
    config:
        Shares the sub-header geometry with FinePack: after a config
        packet establishes the window, each store's slim header is the
        same ``subheader_bytes`` (offset + length).
    protocol:
        Underlying PCIe link parameters.
    """

    config: FinePackConfig
    protocol: PCIeProtocol

    @property
    def config_packet_bytes(self) -> int:
        """Wire cost of one configuration packet.

        A full memory-write-TLP-sized packet: it carries the base
        address and the shared transaction-layer fields.
        """
        return (
            FRAMING_BYTES
            + SEQUENCE_BYTES
            + MEM_WRITE_HEADER_BYTES
            + LCRC_BYTES
            + (ECRC_BYTES if self.protocol.ecrc else 0)
        )

    def per_store_overhead(self, length: int) -> int:
        """Wire overhead of one slim store packet (excluding payload).

        Each store is still an independent TLP: framing + sequence +
        slim header (the sub-header fields) + LCRC (+ ECRC) + DW
        padding of its payload.
        """
        padded = -(-(length + self.config.subheader_bytes) // DW_BYTES) * DW_BYTES
        pad = padded - (length + self.config.subheader_bytes)
        cost = (
            FRAMING_BYTES
            + SEQUENCE_BYTES
            + self.config.subheader_bytes
            + LCRC_BYTES
            + pad
        )
        if self.protocol.ecrc:
            cost += ECRC_BYTES
        return cost

    def wire_cost(self, packet: FinePackPacket) -> tuple[int, int]:
        """(payload, overhead) to move one FinePack window's stores.

        One config packet opens the window, then each sub-transaction
        ships as an independent slim packet.
        """
        payload = packet.payload_data_bytes
        overhead = self.config_packet_bytes
        for sub in packet.subs:
            overhead += self.per_store_overhead(sub.length)
        return payload, overhead

    def efficiency_vs_finepack(self, packet: FinePackPacket) -> float:
        """Wire-byte ratio (config-packet design / FinePack) for a window.

        Values above 1 mean the alternative moves more bytes; the paper
        reports ~1.18 for typical 32-64-store windows.
        """
        fp_payload, fp_overhead = packet.wire_cost(self.config, self.protocol)
        cp_payload, cp_overhead = self.wire_cost(packet)
        return (cp_payload + cp_overhead) / (fp_payload + fp_overhead)
