"""FinePack packet format: outer transaction + sub-transactions.

Implements the logical packet structure of the paper's Figure 6 and
Tables I/II.  The outer packet reuses the PCIe memory-write TLP header
(same size, one repurposed type encoding); its address field carries the
*base address* shared by every packed store, and the payload is a
concatenation of sub-transactions, each

* a sub-header of ``subheader_bytes``: a 10-bit length plus an
  address-offset field in the remaining bits (byte-aligned, unlike the
  DW-aligned outer fields), followed by
* the store's payload bytes.

Encoding/decoding is byte-exact so the de-packetizer round-trip and the
wire-cost accounting are the same arithmetic.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..interconnect.pcie import DW_BYTES, PCIeProtocol
from .config import LENGTH_FIELD_BITS, FinePackConfig


@dataclass(frozen=True, slots=True)
class SubTransaction:
    """One packed store: offset from the outer base address + payload.

    ``data`` is optional: timing-only simulations pass ``None`` and only
    ``length`` is used; functional tests carry real bytes.
    """

    offset: int
    length: int
    data: bytes | None = None

    def __post_init__(self) -> None:
        if self.offset < 0:
            raise ValueError(f"negative offset: {self.offset}")
        if self.length <= 0:
            raise ValueError(f"sub-transaction length must be positive: {self.length}")
        if self.data is not None and len(self.data) != self.length:
            raise ValueError(
                f"data length {len(self.data)} != declared length {self.length}"
            )

    def encode_header(self, config: FinePackConfig) -> bytes:
        """Pack (length, offset) into ``config.subheader_bytes`` bytes."""
        if self.length > config.max_length_value:
            raise ValueError(
                f"length {self.length} exceeds the {LENGTH_FIELD_BITS}-bit field"
            )
        if self.offset >= config.window_bytes:
            raise ValueError(
                f"offset {self.offset:#x} outside the "
                f"{config.window_bytes}-byte window"
            )
        word = (self.length << config.offset_bits) | self.offset
        return word.to_bytes(config.subheader_bytes, "little")

    @staticmethod
    def decode_header(raw: bytes, config: FinePackConfig) -> tuple[int, int]:
        """Inverse of :meth:`encode_header`; returns (length, offset)."""
        if len(raw) != config.subheader_bytes:
            raise ValueError(
                f"expected {config.subheader_bytes} header bytes, got {len(raw)}"
            )
        word = int.from_bytes(raw, "little")
        offset = word & (config.window_bytes - 1)
        length = word >> config.offset_bits
        return length, offset

    def wire_bytes(self, config: FinePackConfig) -> int:
        """Bytes this sub-transaction occupies inside the outer payload."""
        return config.subheader_bytes + self.length


class FinePackPacket:
    """An outer FinePack transaction embedded in a PCIe TLP.

    Attributes
    ----------
    base_addr:
        Window base carried in the outer TLP address field (Table I).
    subs:
        Packed sub-transactions, in the order the packetizer emitted
        them (ascending address).
    stores_absorbed:
        Program-level stores merged into this packet, including
        same-address overwrites (the Figure 11 statistic).

    The packet holds its sub-transactions in one of two forms: the
    ``subs`` object list, or (from the vectorized packetizer path) a
    pair of ``(offset, length)`` int64 columns.  Either form derives
    the other on demand -- timing-only replays never materialize the
    per-sub objects, which is the bulk path's hot-loop saving.
    """

    __slots__ = ("base_addr", "stores_absorbed", "_subs", "_columns")

    def __init__(
        self,
        base_addr: int,
        subs: list[SubTransaction] | None = None,
        stores_absorbed: int = 0,
        columns: tuple[np.ndarray, np.ndarray] | None = None,
    ) -> None:
        self.base_addr = base_addr
        self.stores_absorbed = stores_absorbed
        if subs is None and columns is None:
            subs = []
        self._subs = subs
        self._columns = columns

    @property
    def subs(self) -> list[SubTransaction]:
        if self._subs is None:
            offsets, lengths = self._columns
            self._subs = [
                SubTransaction(offset=o, length=n)
                for o, n in zip(offsets.tolist(), lengths.tolist())
            ]
        return self._subs

    def sub_columns(self) -> tuple[np.ndarray, np.ndarray]:
        """The ``(offset, length)`` columns (data bytes, if any, stay
        on :attr:`subs`)."""
        if self._columns is None:
            self._columns = (
                np.asarray([s.offset for s in self._subs], dtype=np.int64),
                np.asarray([s.length for s in self._subs], dtype=np.int64),
            )
        return self._columns

    @property
    def n_subs(self) -> int:
        return (
            len(self._subs)
            if self._subs is not None
            else int(self._columns[0].size)
        )

    @property
    def payload_data_bytes(self) -> int:
        """Actual store bytes carried (excludes sub-headers)."""
        if self._subs is None:
            return int(self._columns[1].sum())
        return sum(s.length for s in self._subs)

    def inner_payload_bytes(self, config: FinePackConfig) -> int:
        """Total outer-TLP payload: sub-headers plus data."""
        return self.n_subs * config.subheader_bytes + self.payload_data_bytes

    def wire_cost(
        self, config: FinePackConfig, protocol: PCIeProtocol
    ) -> tuple[int, int]:
        """(payload, overhead) bytes on the wire.

        Payload counts only real store data; sub-headers, the outer TLP
        overhead, and DW padding of the inner payload all count as
        protocol overhead (this is the accounting behind Fig. 10's
        "protocol overhead" wedge).
        """
        data = self.payload_data_bytes
        inner = self.inner_payload_bytes(config)
        if inner > config.max_payload_bytes:
            raise ValueError(
                f"inner payload {inner} exceeds max {config.max_payload_bytes}"
            )
        padded = -(-inner // DW_BYTES) * DW_BYTES
        overhead = protocol.per_tlp_overhead + (padded - inner) + (inner - data)
        return data, overhead

    def encode_payload(self, config: FinePackConfig) -> bytes:
        """Serialize all sub-transactions into the outer payload bytes."""
        out = bytearray()
        for s in self.subs:
            out += s.encode_header(config)
            out += s.data if s.data is not None else bytes(s.length)
        return bytes(out)

    @staticmethod
    def decode_payload(
        base_addr: int, raw: bytes, config: FinePackConfig
    ) -> "FinePackPacket":
        """Parse outer payload bytes back into a packet."""
        subs: list[SubTransaction] = []
        pos = 0
        while pos < len(raw):
            if pos + config.subheader_bytes > len(raw):
                raise ValueError(
                    f"truncated sub-header at byte {pos} of {len(raw)}"
                )
            length, offset = SubTransaction.decode_header(
                raw[pos : pos + config.subheader_bytes], config
            )
            pos += config.subheader_bytes
            if pos + length > len(raw):
                raise ValueError(
                    f"sub-transaction at offset {offset:#x} overruns payload"
                )
            subs.append(
                SubTransaction(offset=offset, length=length, data=raw[pos : pos + length])
            )
            pos += length
        return FinePackPacket(base_addr=base_addr, subs=subs, stores_absorbed=len(subs))

    def stores(self) -> list[tuple[int, int, bytes | None]]:
        """Disaggregated (addr, length, data) triples."""
        return [(self.base_addr + s.offset, s.length, s.data) for s in self.subs]
