"""Command-line interface: ``python -m repro <command>``.

Commands
--------

``list``
    Show available workloads and paradigms.
``run``
    Trace one workload and replay it under one paradigm.
``compare``
    The paper's core experiment for one workload: all paradigms plus
    the single-GPU baseline, with speedups and byte breakdowns.
``trace``
    Generate a workload trace and save it to an ``.npz`` file.
``replay``
    Replay a saved trace under a paradigm.
``goodput``
    Print the Figure 2 goodput table.
``profile``
    Run one workload/paradigm under the stage profiler
    (:mod:`repro.perf`) and print where the wall clock went; with
    ``--scalar`` the vectorized fast paths are disabled so the two
    modes can be compared (their metrics are byte-identical).
``chaos``
    Sweep a fault scenario's intensity across paradigms and print the
    degradation curve (see :mod:`repro.faults`).

``run``, ``compare`` and ``sweep`` accept ``--error-rate P`` to give
every link a baseline per-byte corruption probability (DLL replay
injection); nonzero fault activity adds a per-link fabric-stats table
to ``run`` output.  They also accept ``--topology KIND`` (any
registered topology: ``fat_tree``, ``switched_mesh``, ``two_level``,
``fully_connected``) plus factory knobs ``--fanout``,
``--oversubscription`` and ``--planes``.

``run``, ``compare`` and ``sweep`` also accept ``--fidelity
{des,analytical}``.  The default ``des`` replays every event through
the discrete-event simulator; ``analytical`` predicts each run's
metrics in closed form from trace statistics (orders of magnitude
faster; calibrated against the DES, see ``docs/analytical.md``).
``sweep --fidelity analytical --refine-top K`` confirms a cheap
sweep's winners by re-running the K fastest points per workload at
DES fidelity; every report table labels which model produced each row
(``des``, ``analytical``, or ``des (refined)``).

``sweep`` takes a workload name, a comma-separated list, or the
``collectives`` family alias (ring/tree all-reduce, all-gather,
all-to-all, pipeline), and with the ``paradigm`` sweep parameter
reports FinePack-vs-DMA-vs-p2p speedup and goodput per workload::

    repro sweep collectives paradigm --topology fat_tree --gpus 8

``sweep``, ``compare`` and ``chaos`` accept ``--jobs N`` to fan the
run grid over worker processes (results are byte-identical to the
serial run) and ``--trace-cache DIR`` to share generated workload
traces across processes and invocations through the content-addressed
cache (:mod:`repro.run`); cache traffic is reported after the table.

``run`` and ``sweep`` accept ``--trace-out FILE`` to record the run's
structured event stream (``repro.obs``) and export it -- as Chrome
``trace_event`` JSON loadable in ``chrome://tracing``/Perfetto, or as
compact JSONL when the file name ends in ``.jsonl``.  Traced runs check
runtime invariants (byte conservation, link exclusivity, empty remote
write queues at barriers) as they go.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import Sequence

from .analysis import format_table, goodput_curve
from .core.config import FabricConfig, FinePackConfig
from .interconnect.pcie import GENERATIONS
from .sim.metrics import RunMetrics
from .sim.paradigms import PARADIGMS, FinePackParadigm, make_paradigm
from .sim.runner import ExperimentConfig, compare_paradigms, run_workload
from .sim.system import MultiGPUSystem
from .trace.tracefile import load_trace, save_trace
from .workloads import WORKLOADS


def _add_system_args(p: argparse.ArgumentParser) -> None:
    p.add_argument("--gpus", type=int, default=4, help="GPU count (default 4)")
    p.add_argument(
        "--iterations", type=int, default=3, help="iterations to trace (default 3)"
    )
    p.add_argument("--seed", type=int, default=7, help="dataset seed (default 7)")
    p.add_argument(
        "--gen",
        type=int,
        default=4,
        choices=sorted(GENERATIONS),
        help="PCIe generation (default 4)",
    )
    p.add_argument(
        "--subheader-bytes",
        type=int,
        default=5,
        help="FinePack sub-header size, 2-6 (default 5)",
    )
    p.add_argument(
        "--error-rate",
        type=float,
        default=0.0,
        metavar="P",
        help="per-byte corruption probability on every link; corrupted "
        "packets pay DLL replays (default 0)",
    )
    p.add_argument(
        "--fidelity",
        default="des",
        choices=("des", "analytical"),
        help="execution fidelity: 'des' replays every event through the "
        "discrete-event simulator; 'analytical' predicts the metrics "
        "in closed form from trace statistics (orders of magnitude "
        "faster; see docs/analytical.md for the calibrated error "
        "budget; default des)",
    )


def _add_topology_args(p: argparse.ArgumentParser) -> None:
    p.add_argument(
        "--topology",
        default=None,
        metavar="KIND",
        help="topology registry kind (single_switch, two_level, "
        "fat_tree, switched_mesh, fully_connected; default "
        "single_switch)",
    )
    p.add_argument(
        "--fanout",
        type=int,
        default=None,
        help="GPUs per leaf switch (fat_tree/two_level; factory default 4)",
    )
    p.add_argument(
        "--oversubscription",
        type=float,
        default=None,
        help="fat-tree uplink oversubscription ratio (1 = full "
        "bisection; factory default 1)",
    )
    p.add_argument(
        "--planes",
        type=int,
        default=None,
        help="switch planes of a switched_mesh (factory default 2)",
    )


def _topology_fields(args: argparse.Namespace) -> tuple[str | None, tuple]:
    """``(kind, frozen params)`` from the topology flags, registry-checked."""
    kind = getattr(args, "topology", None)
    params = {
        name: value
        for name in ("fanout", "oversubscription", "planes")
        if (value := getattr(args, name, None)) is not None
    }
    if params and kind is None:
        raise SystemExit(
            "--fanout/--oversubscription/--planes require --topology"
        )
    if kind is not None:
        from .registry import RegistryError, topologies

        try:
            topologies.resolve(kind)
        except RegistryError as exc:
            raise SystemExit(str(exc)) from None
    return kind, tuple(sorted(params.items()))


def _add_trace_args(p: argparse.ArgumentParser) -> None:
    p.add_argument(
        "--trace-out",
        default=None,
        metavar="FILE",
        help="export the run's event trace (Chrome trace_event JSON; "
        "use a .jsonl extension for the compact JSONL stream)",
    )


def _add_parallel_args(p: argparse.ArgumentParser) -> None:
    p.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="worker processes for the run grid (default 1: in-process; "
        "results are identical either way)",
    )
    p.add_argument(
        "--trace-cache",
        default=None,
        metavar="DIR",
        help="directory for the content-addressed workload-trace cache "
        "(shared across processes and invocations; default: "
        "$REPRO_TRACE_CACHE if set, else in-memory only)",
    )
    p.add_argument(
        "--no-trace-stream",
        action="store_true",
        help="materialize whole traces before writing cache entries "
        "instead of streaming column chunks to disk as they are "
        "generated (entries are byte-identical either way; streaming "
        "just bounds peak memory)",
    )
    p.add_argument(
        "--trace-chunk-ops",
        type=int,
        default=None,
        metavar="N",
        help="store-ops per streamed trace chunk (default "
        "$REPRO_TRACE_CHUNK_OPS or 262144)",
    )
    p.add_argument(
        "--timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="per-run wall-clock budget; a hung worker is killed, the "
        "cell retried (requires --jobs > 1)",
    )
    p.add_argument(
        "--retries",
        type=int,
        default=None,
        metavar="N",
        help="re-attempts per grid cell after a crash/hang/error before "
        "it is quarantined (default 2, i.e. up to 3 attempts)",
    )
    p.add_argument(
        "--no-strict",
        action="store_true",
        help="finish the grid even if cells exhaust their retry budget; "
        "failed cells are reported and omitted from the table",
    )
    p.add_argument(
        "--resume",
        action="store_true",
        help="resume an interrupted invocation from its grid journal, "
        "re-running only unfinished or quarantined cells (requires "
        "--trace-cache DIR, where the journal and outcome store live)",
    )


def _resilience_kwargs(args: argparse.Namespace) -> dict:
    """`execute_grid` resilience knobs from the parallel CLI flags.

    Journaling (and with it the colocated outcome store) switches on
    whenever a disk trace cache gives it a durable home -- that is what
    makes a killed ``repro sweep --trace-cache DIR ...`` resumable by
    re-running the same command with ``--resume``.
    """
    if args.resume and not args.trace_cache:
        raise SystemExit("--resume requires --trace-cache DIR")
    if args.timeout is not None and args.timeout <= 0:
        raise SystemExit(f"--timeout must be positive, got {args.timeout:g}")
    if args.retries is not None and args.retries < 0:
        raise SystemExit(f"--retries must be >= 0, got {args.retries}")
    kwargs: dict = {"strict": not args.no_strict}
    if args.timeout is not None:
        kwargs["timeout"] = args.timeout
    if args.retries is not None:
        kwargs["retries"] = args.retries
    if args.trace_cache:
        kwargs["journal"] = args.trace_cache
        kwargs["resume"] = args.resume
    return kwargs


def _print_resilience_stats(
    retry_stats: dict | None,
    outcome_cache: dict | None,
    failures,
    args: argparse.Namespace,
    out,
) -> None:
    """Surface executor retry/quarantine accounting and outcome-store
    traffic; failed cells are always reported."""
    if retry_stats and (retry_stats.get("retried") or retry_stats.get("quarantined")):
        print(
            f"executor: {retry_stats['attempts']} attempt(s), "
            f"{retry_stats['retried']} retried, "
            f"{retry_stats['quarantined']} quarantined "
            f"({retry_stats['crashes']} crash(es), "
            f"{retry_stats['timeouts']} timeout(s), "
            f"{retry_stats['errors']} error(s))",
            file=out,
        )
    if outcome_cache and args.trace_cache and (
        outcome_cache.get("hits") or outcome_cache.get("misses")
    ):
        print(
            f"outcome store: {outcome_cache['hits']} hit(s), "
            f"{outcome_cache['misses']} miss(es), "
            f"{outcome_cache['corrupt']} corrupt",
            file=out,
        )
    for f in failures or ():
        print(
            f"FAILED cell {f.index} [{f.spec.workload}/{f.spec.paradigm}]: "
            f"{f.kind} {f.error_type} after {f.attempts} attempt(s): "
            f"{f.message}",
            file=out,
        )


def _check_jobs(args: argparse.Namespace) -> int:
    if args.jobs < 1:
        raise SystemExit(f"--jobs must be >= 1, got {args.jobs}")
    if args.jobs > 1 and getattr(args, "trace_out", None):
        raise SystemExit(
            "--trace-out records in-process event streams and requires "
            "--jobs 1"
        )
    return args.jobs


def _print_cache_stats(stats: dict | None, args: argparse.Namespace, out) -> None:
    """Surface trace-cache traffic when the user opted into the new
    execution machinery (the observable proof a warm cache skipped
    trace generation)."""
    if stats is None:
        return
    if args.jobs > 1 or args.trace_cache:
        print(
            f"trace cache: {stats['hits']} hit(s), {stats['misses']} "
            f"miss(es), {stats['corrupt']} corrupt",
            file=out,
        )


def _trace_metadata(args: argparse.Namespace) -> dict:
    meta = {
        "gpus": args.gpus,
        "iterations": args.iterations,
        "seed": args.seed,
        "generation": args.gen,
    }
    if getattr(args, "error_rate", 0.0):
        meta["error_rate"] = args.error_rate
    return meta


def _config(args: argparse.Namespace) -> ExperimentConfig:
    topology, topology_params = _topology_fields(args)
    return ExperimentConfig(
        n_gpus=args.gpus,
        iterations=args.iterations,
        seed=args.seed,
        generation=GENERATIONS[args.gen],
        finepack_config=FinePackConfig(subheader_bytes=args.subheader_bytes),
        fabric=FabricConfig(error_rate=args.error_rate),
        topology=topology,
        topology_params=topology_params,
        fidelity=getattr(args, "fidelity", "des"),
    )


def _check_fidelity(args: argparse.Namespace) -> str:
    """Reject flag combinations the analytical tier cannot serve."""
    fidelity = getattr(args, "fidelity", "des")
    if fidelity == "analytical":
        if getattr(args, "trace_out", None):
            raise SystemExit(
                "--trace-out records discrete events and requires "
                "--fidelity des"
            )
        if getattr(args, "error_rate", 0.0):
            raise SystemExit(
                "--error-rate injects event-ordered faults and requires "
                "--fidelity des"
            )
    return fidelity


def _fidelity_label(metrics: RunMetrics, refined: bool = False) -> str:
    """Table label for which model produced a row's metrics."""
    if refined:
        return "des (refined)"
    return metrics.fidelity


def _workload(name: str):
    from .registry import RegistryError, workloads

    try:
        return workloads.resolve(name)()
    except RegistryError as exc:
        raise SystemExit(str(exc)) from None


def _print_metrics(m: RunMetrics, out) -> None:
    rows = [[k, v] for k, v in m.summary().items()]
    print(format_table(f"{m.workload} / {m.paradigm}", ["metric", "value"], rows), file=out)


def cmd_list(args, out) -> int:
    from .registry import topologies

    rows = [
        [name, cls().comm_pattern] for name, cls in sorted(WORKLOADS.items())
    ]
    print(format_table("workloads", ["name", "communication"], rows), file=out)
    print(file=out)
    rows = [[name] for name in sorted(PARADIGMS)]
    print(format_table("paradigms", ["name"], rows), file=out)
    print(file=out)
    rows = [[name] for name, _ in sorted(topologies.items())]
    print(format_table("topologies", ["name"], rows), file=out)
    return 0


def cmd_run(args, out) -> int:
    workload_name = args.workload_flag or args.workload
    if workload_name is None:
        raise SystemExit("run: name a workload (positionally or via --workload)")
    _check_fidelity(args)
    tracer = None
    if args.trace_out:
        from .obs import Tracer

        tracer = Tracer()
    metrics = run_workload(
        _workload(workload_name), args.paradigm, _config(args), tracer=tracer
    )
    _print_metrics(metrics, out)
    if metrics.faults.any:
        from .analysis import format_link_stats_table

        print(format_link_stats_table(metrics), file=out)
    if args.timeline:
        from .sim.timeline import render_timeline

        print(render_timeline(metrics), file=out)
    if tracer is not None:
        from .analysis import format_link_timeline
        from .obs import write_chrome_trace, write_jsonl

        if args.trace_out.endswith(".jsonl"):
            write_jsonl(args.trace_out, tracer)
        else:
            write_chrome_trace(
                args.trace_out,
                {f"{workload_name}/{args.paradigm}": tracer},
                metadata=_trace_metadata(args),
            )
        print(format_link_timeline(tracer), file=out)
        print(
            f"wrote {args.trace_out}: {len(tracer.events)} events, "
            f"invariants OK",
            file=out,
        )
    return 0


#: ``repro sweep collectives ...`` expands to the full collective family.
COLLECTIVE_WORKLOADS = (
    "allreduce_ring",
    "allreduce_tree",
    "allgather",
    "alltoall",
    "pipeline",
)


def _expand_workloads(spec: str) -> list[str]:
    """Split a comma-separated workload list, expanding family aliases."""
    names: list[str] = []
    for part in spec.split(","):
        part = part.strip()
        if not part:
            continue
        if part == "collectives":
            names.extend(COLLECTIVE_WORKLOADS)
        else:
            names.append(part)
    if not names:
        raise SystemExit("sweep: name at least one workload")
    return names


def cmd_sweep(args, out) -> int:
    from .run import RunSpec, labeled_sweep, refine_top_k

    jobs = _check_jobs(args)
    fidelity = _check_fidelity(args)
    if args.refine_top:
        if args.refine_top < 0:
            raise SystemExit(
                f"--refine-top must be >= 0, got {args.refine_top}"
            )
        if fidelity != "analytical":
            raise SystemExit(
                "--refine-top confirms a cheap sweep's winners at DES "
                "fidelity and requires --fidelity analytical"
            )
    names = _expand_workloads(args.workload)
    config = _config(args)
    tracers: dict[str, object] = {}
    tracer_factory = None
    if args.trace_out:
        from .obs import Tracer

        def tracer_factory(label: str):
            tracers[label] = Tracer()
            return tracers[label]

    rows = []
    cache_stats = {"hits": 0, "misses": 0, "corrupt": 0}
    retry_stats: dict = {}
    outcome_cache: dict = {}
    failures = []
    resilience = _resilience_kwargs(args)
    for name in names:
        base = RunSpec.for_workload(_workload(name), **config.spec_fields())
        prefix = f"{name}:" if len(names) > 1 else ""
        if args.param == "subheader":
            labeled = {
                f"{prefix}{b}B": base.with_options(
                    paradigm="finepack",
                    finepack=FinePackConfig(subheader_bytes=b),
                )
                for b in (2, 3, 4, 5, 6)
            }
        elif args.param == "generation":
            labeled = {
                f"{prefix}gen{g}": base.with_options(
                    paradigm=args.paradigm, generation=GENERATIONS[g]
                )
                for g in sorted(GENERATIONS)
            }
        else:  # paradigm
            labeled = {
                f"{prefix}{p}": base.with_options(paradigm=p)
                for p in args.paradigms
            }
        # One labeled_sweep per workload so each gets its own 1-GPU
        # baseline (speedups across different workloads must not share
        # a normalization run).
        run = labeled_sweep(
            labeled,
            jobs=jobs,
            trace_cache=args.trace_cache,
            tracer_factory=tracer_factory,
            **resilience,
        )
        refined_labels: set[str] = set()
        if args.refine_top:
            run, refined_labels = refine_top_k(
                run,
                labeled,
                args.refine_top,
                jobs=jobs,
                trace_cache=args.trace_cache,
                **resilience,
            )
        for k, v in run.cache_stats().items():
            cache_stats[k] += v
        for k, v in run.retry_stats.items():
            retry_stats[k] = retry_stats.get(k, 0) + v
        for k, v in run.outcome_cache.items():
            outcome_cache[k] = outcome_cache.get(k, 0) + v
        failures += run.failures
        rows += [
            [p.label, _fidelity_label(p.metrics, p.label in refined_labels),
             p.speedup, p.metrics.goodput,
             p.metrics.wire_bytes / 1e6,
             p.metrics.packets.mean_stores_per_packet]
            for p in run.result.points
        ]
    print(
        format_table(
            f"{args.workload}: {args.param} sweep",
            ["config", "fidelity", "speedup", "goodput", "wire_MB",
             "stores/pkt"],
            rows,
            float_fmt="{:.2f}",
        ),
        file=out,
    )
    _print_cache_stats(cache_stats, args, out)
    _print_resilience_stats(retry_stats, outcome_cache, failures, args, out)
    if tracers:
        from .obs import write_chrome_trace

        write_chrome_trace(args.trace_out, tracers, metadata=_trace_metadata(args))
        total_events = sum(len(t.events) for t in tracers.values())
        print(
            f"wrote {args.trace_out}: {len(tracers)} sweep points, "
            f"{total_events} events",
            file=out,
        )
    return 0


def cmd_compare(args, out) -> int:
    jobs = _check_jobs(args)
    _check_fidelity(args)
    result = compare_paradigms(
        _workload(args.workload),
        tuple(args.paradigms),
        _config(args),
        jobs=jobs,
        trace_cache=args.trace_cache,
        **_resilience_kwargs(args),
    )
    rows = [
        [
            p,
            _fidelity_label(result.runs[p]),
            result.speedup(p),
            result.runs[p].total_time_ns / 1e6,
            result.runs[p].wire_bytes / 1e6,
            result.runs[p].packets.mean_stores_per_packet,
        ]
        for p in result.runs
    ]
    print(
        format_table(
            f"{args.workload}: {args.gpus}-GPU comparison "
            f"(1-GPU time {result.single_gpu.total_time_ns / 1e6:.3f} ms)",
            ["paradigm", "fidelity", "speedup", "time_ms", "wire_MB",
             "stores/pkt"],
            rows,
            float_fmt="{:.2f}",
        ),
        file=out,
    )
    _print_cache_stats(result.cache_stats, args, out)
    return 0


def cmd_trace(args, out) -> int:
    trace = _workload(args.workload).generate_trace(
        n_gpus=args.gpus, iterations=args.iterations, seed=args.seed
    )
    save_trace(trace, args.output)
    print(
        f"wrote {args.output}: {trace.n_iterations} iterations, "
        f"{trace.total_remote_stores()} remote stores, "
        f"{trace.total_remote_bytes() / 1e6:.2f} MB pushed",
        file=out,
    )
    return 0


def cmd_replay(args, out) -> int:
    trace = load_trace(args.trace)
    config = _config(args)
    system = MultiGPUSystem.build(
        n_gpus=trace.n_gpus,
        generation=config.generation,
        finepack_config=config.finepack_config,
    )
    if args.paradigm == "finepack":
        paradigm = FinePackParadigm(config.finepack_config)
    else:
        paradigm = make_paradigm(args.paradigm)
    _print_metrics(system.run(trace, paradigm), out)
    return 0


def cmd_validate(args, out) -> int:
    from .sim.validation import validate

    trace = _workload(args.workload).generate_trace(
        n_gpus=args.gpus, iterations=args.iterations, seed=args.seed
    )
    report = validate(trace, args.paradigm)
    print(report.summary(), file=out)
    print(
        ("all checks passed" if report.passed else "FAILURES DETECTED"), file=out
    )
    return 0 if report.passed else 1


def cmd_chaos(args, out) -> int:
    from .faults import chaos_sweep, format_chaos_table, list_scenarios, load_scenario

    if args.list:
        from .faults.scenarios import SCENARIOS

        rows = [
            [name, SCENARIOS[name].get("description", "")]
            for name in list_scenarios()
        ]
        print(format_table("chaos scenarios", ["name", "description"], rows), file=out)
        return 0
    if args.workload is None:
        raise SystemExit("chaos: name a workload (or use --list)")
    if getattr(args, "fidelity", "des") == "analytical":
        raise SystemExit(
            "chaos sweeps inject event-ordered faults and require "
            "--fidelity des"
        )
    schedule = load_scenario(args.scenario)
    tracers: dict[str, object] = {}
    tracer_factory = None
    if args.trace_out:
        from .obs import Tracer

        def tracer_factory(label: str):
            tracers[label] = Tracer()
            return tracers[label]

    jobs = _check_jobs(args)
    result = chaos_sweep(
        _workload(args.workload),
        schedule,
        intensities=tuple(args.intensities),
        paradigms=tuple(args.paradigms),
        config=_config(args),
        topology_kind=args.topology,
        tracer_factory=tracer_factory,
        jobs=jobs,
        trace_cache=args.trace_cache,
        **_resilience_kwargs(args),
    )
    print(format_chaos_table(result), file=out)
    _print_cache_stats(result.cache_stats, args, out)
    _print_resilience_stats(
        result.retry_stats, result.outcome_cache, result.failures, args, out
    )
    degraded = [p for p in result.points if p.degraded]
    if degraded:
        print(
            f"{len(degraded)} run(s) degraded gracefully "
            f"(partial metrics above); first reason: {degraded[0].reasons[0]}",
            file=out,
        )
    if args.json:
        result.write_json(args.json)
        print(f"wrote {args.json}", file=out)
    if tracers:
        from .obs import write_chrome_trace

        meta = _trace_metadata(args)
        meta["scenario"] = schedule.name
        write_chrome_trace(args.trace_out, tracers, metadata=meta)
        total_events = sum(len(t.events) for t in tracers.values())
        print(
            f"wrote {args.trace_out}: {len(tracers)} chaos points, "
            f"{total_events} events, invariants OK",
            file=out,
        )
    return 0


def cmd_profile(args, out) -> int:
    import json

    from .perf.harness import profile_run
    from .run import RunSpec, TraceCache

    if args.repeat < 1:
        raise SystemExit(f"--repeat must be >= 1, got {args.repeat}")
    spec = RunSpec.for_workload(
        _workload(args.workload), args.paradigm, **_config(args).spec_fields()
    )
    # One in-memory cache across repeats: the first run pays trace
    # generation, later ones profile the simulator alone.
    cache = TraceCache(args.trace_cache) if args.trace_cache else TraceCache()
    results = [
        profile_run(spec, scalar=args.scalar, trace_cache=cache)
        for _ in range(args.repeat)
    ]
    best = min(results, key=lambda r: r.wall_ns)
    mode = "scalar" if args.scalar else "fast"
    if args.repeat > 1:
        walls = ", ".join(f"{r.wall_ns / 1e6:.1f}" for r in results)
        print(f"wall_ms per repeat ({mode}): {walls}  (best shown)", file=out)
    print(
        f"{args.workload}/{args.paradigm} [{mode}]: "
        f"{best.wall_ns / 1e6:.1f} ms wall, "
        f"{best.profiler.total_ns() / 1e6:.1f} ms instrumented",
        file=out,
    )
    print(best.profiler.report(), file=out)
    print(f"metrics fingerprint: {best.fingerprint}", file=out)
    if args.json:
        with open(args.json, "w", encoding="utf-8") as fh:
            json.dump(best.as_dict(), fh, indent=2)
            fh.write("\n")
        print(f"wrote {args.json}", file=out)
    return 0


def cmd_goodput(args, out) -> int:
    rows = [
        [p.size, p.pcie, p.nvlink, "measured" if p.measured else "projected"]
        for p in goodput_curve()
    ]
    print(
        format_table(
            "goodput vs transfer size (paper Fig. 2)",
            ["size_B", "pcie", "nvlink", "regime"],
            rows,
        ),
        file=out,
    )
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="FinePack (HPCA 2023) reproduction experiments",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="show workloads and paradigms").set_defaults(
        fn=cmd_list
    )

    p = sub.add_parser("run", help="run one workload under one paradigm")
    p.add_argument("workload", nargs="?", default=None)
    p.add_argument(
        "paradigm", nargs="?", default="finepack", choices=sorted(PARADIGMS)
    )
    p.add_argument(
        "--workload",
        dest="workload_flag",
        default=None,
        help="workload name (alternative to the positional form)",
    )
    p.add_argument(
        "--timeline", action="store_true", help="render the iteration timeline"
    )
    _add_system_args(p)
    _add_topology_args(p)
    _add_trace_args(p)
    p.set_defaults(fn=cmd_run)

    p = sub.add_parser("sweep", help="sweep a design parameter")
    p.add_argument(
        "workload",
        help="workload name, comma-separated list, or the 'collectives' "
        "family alias",
    )
    p.add_argument("param", choices=("subheader", "generation", "paradigm"))
    p.add_argument(
        "--paradigm",
        default="finepack",
        choices=sorted(PARADIGMS),
        help="paradigm for generation sweeps (default finepack)",
    )
    p.add_argument(
        "--paradigms",
        nargs="+",
        default=["p2p", "dma", "finepack"],
        choices=sorted(PARADIGMS),
        help="paradigm ladder for paradigm sweeps (default p2p dma "
        "finepack)",
    )
    p.add_argument(
        "--refine-top",
        type=int,
        default=0,
        metavar="K",
        help="after an analytical sweep, re-run the K fastest points "
        "per workload (plus the baseline) at DES fidelity and report "
        "the confirmed numbers; rows show 'des (refined)' (requires "
        "--fidelity analytical)",
    )
    _add_system_args(p)
    _add_topology_args(p)
    _add_trace_args(p)
    _add_parallel_args(p)
    p.set_defaults(fn=cmd_sweep)

    p = sub.add_parser("compare", help="compare paradigms on one workload")
    p.add_argument("workload")
    p.add_argument(
        "--paradigms",
        nargs="+",
        default=["p2p", "dma", "finepack", "infinite"],
        choices=sorted(PARADIGMS),
    )
    _add_system_args(p)
    _add_topology_args(p)
    _add_parallel_args(p)
    p.set_defaults(fn=cmd_compare)

    p = sub.add_parser("trace", help="generate and save a workload trace")
    p.add_argument("workload")
    p.add_argument("output")
    _add_system_args(p)
    p.set_defaults(fn=cmd_trace)

    p = sub.add_parser("replay", help="replay a saved trace")
    p.add_argument("trace")
    p.add_argument("paradigm", choices=sorted(PARADIGMS))
    _add_system_args(p)
    p.set_defaults(fn=cmd_replay)

    p = sub.add_parser("validate", help="run the invariant battery")
    p.add_argument("workload")
    p.add_argument("paradigm", choices=sorted(PARADIGMS))
    _add_system_args(p)
    p.set_defaults(fn=cmd_validate)

    p = sub.add_parser(
        "chaos", help="sweep fault-scenario intensity across paradigms"
    )
    p.add_argument("workload", nargs="?", default=None)
    p.add_argument(
        "--scenario",
        default="flaky-retimer",
        help="preset name or scenario JSON file (default flaky-retimer; "
        "see --list)",
    )
    p.add_argument(
        "--list", action="store_true", help="list preset scenarios and exit"
    )
    p.add_argument(
        "--paradigms",
        nargs="+",
        default=["p2p", "dma", "finepack"],
        choices=sorted(PARADIGMS),
    )
    p.add_argument(
        "--intensities",
        nargs="+",
        type=float,
        default=[0.0, 0.25, 0.5, 0.75, 1.0],
        help="fault intensity ladder (default 0 0.25 0.5 0.75 1)",
    )
    p.add_argument(
        "--topology",
        default=None,
        choices=(
            "single_switch",
            "two_level",
            "fully_connected",
            "fat_tree",
            "switched_mesh",
        ),
        help="override the scenario's topology hint",
    )
    p.add_argument(
        "--json", default=None, metavar="FILE", help="write the sweep as JSON"
    )
    _add_system_args(p)
    _add_trace_args(p)
    _add_parallel_args(p)
    p.set_defaults(fn=cmd_chaos)

    p = sub.add_parser(
        "profile", help="attribute one run's wall clock to simulator stages"
    )
    p.add_argument("workload")
    p.add_argument(
        "paradigm", nargs="?", default="finepack", choices=sorted(PARADIGMS)
    )
    p.add_argument(
        "--scalar",
        action="store_true",
        help="disable the vectorized fast paths (profile the scalar "
        "reference implementation)",
    )
    p.add_argument(
        "--repeat",
        type=int,
        default=1,
        metavar="N",
        help="profile N times and report the fastest (default 1)",
    )
    p.add_argument(
        "--json", default=None, metavar="FILE", help="write the report as JSON"
    )
    p.add_argument(
        "--trace-cache",
        default=None,
        metavar="DIR",
        help="directory for the workload-trace cache (default: in-memory "
        "for this invocation)",
    )
    _add_system_args(p)
    _add_topology_args(p)
    p.set_defaults(fn=cmd_profile)

    sub.add_parser("goodput", help="print the Fig. 2 goodput table").set_defaults(
        fn=cmd_goodput
    )
    return parser


def _apply_stream_flags(args: argparse.Namespace) -> None:
    """Propagate streaming toggles through the environment.

    :class:`~repro.run.cache.TraceCache` reads its streaming defaults
    from the environment at construction, and grid worker processes
    inherit it -- one mechanism covers the in-process cache and every
    ``--jobs N`` worker.
    """
    from .run.cache import CHUNK_OPS_ENV, STREAM_ENV

    if getattr(args, "no_trace_stream", False):
        os.environ[STREAM_ENV] = "0"
    chunk_ops = getattr(args, "trace_chunk_ops", None)
    if chunk_ops is not None:
        if chunk_ops <= 0:
            raise SystemExit(
                f"--trace-chunk-ops must be positive, got {chunk_ops}"
            )
        os.environ[CHUNK_OPS_ENV] = str(chunk_ops)


def main(argv: Sequence[str] | None = None, out=None) -> int:
    args = build_parser().parse_args(argv)
    _apply_stream_flags(args)
    return args.fn(args, out if out is not None else sys.stdout)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
