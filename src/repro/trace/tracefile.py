"""Trace serialization.

Workload trace generation (running the real algorithm) dominates
experiment wall time, so traces can be captured once and replayed under
every paradigm/configuration.  The format is a single ``.npz`` archive:
flat numpy arrays keyed by iteration/GPU, plus a JSON metadata blob.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from ..gpu.compute import KernelWork
from .intervals import IntervalSet
from .stream import (
    DMATransfer,
    IterationTrace,
    KernelPhase,
    RemoteStoreBatch,
    WorkloadTrace,
)

_FORMAT_VERSION = 2


def save_trace(trace: WorkloadTrace, path: str | Path) -> None:
    """Write ``trace`` to ``path`` as a compressed npz archive."""
    arrays: dict[str, np.ndarray] = {}
    header = {
        "version": _FORMAT_VERSION,
        "name": trace.name,
        "n_gpus": trace.n_gpus,
        "n_iterations": trace.n_iterations,
        "metadata": trace.metadata,
        "phases": [],
    }
    for i, it in enumerate(trace.iterations):
        for p in it.phases:
            key = f"it{i}_gpu{p.gpu}"
            arrays[f"{key}_addrs"] = p.stores.addrs
            arrays[f"{key}_sizes"] = p.stores.sizes
            arrays[f"{key}_dsts"] = p.stores.dsts
            arrays[f"{key}_aaddrs"] = p.atomics.addrs
            arrays[f"{key}_asizes"] = p.atomics.sizes
            arrays[f"{key}_adsts"] = p.atomics.dsts
            arrays[f"{key}_rstarts"] = p.reads.starts
            arrays[f"{key}_rends"] = p.reads.ends
            header["phases"].append(
                {
                    "key": key,
                    "iteration": i,
                    "gpu": p.gpu,
                    "flops": p.work.flops,
                    "dram_bytes": p.work.dram_bytes,
                    "precision": p.work.precision,
                    "dma": [
                        [t.dst, t.dst_addr, t.nbytes, t.aggregated] for t in p.dma
                    ],
                }
            )
    arrays["__header__"] = np.frombuffer(
        json.dumps(header).encode("utf-8"), dtype=np.uint8
    )
    np.savez_compressed(Path(path), **arrays)


def load_trace(path: str | Path) -> WorkloadTrace:
    """Read a trace written by :func:`save_trace`."""
    with np.load(Path(path)) as data:
        header = json.loads(bytes(data["__header__"]).decode("utf-8"))
        if header["version"] != _FORMAT_VERSION:
            raise ValueError(
                f"unsupported trace format version {header['version']}"
            )
        phases_by_iter: dict[int, list[KernelPhase]] = {}
        for ph in header["phases"]:
            key = ph["key"]
            stores = RemoteStoreBatch(
                data[f"{key}_addrs"], data[f"{key}_sizes"], data[f"{key}_dsts"]
            )
            atomics = RemoteStoreBatch(
                data[f"{key}_aaddrs"], data[f"{key}_asizes"], data[f"{key}_adsts"]
            )
            reads = IntervalSet(
                data[f"{key}_rstarts"].astype(np.int64),
                data[f"{key}_rends"].astype(np.int64),
            )
            phase = KernelPhase(
                gpu=ph["gpu"],
                work=KernelWork(
                    flops=ph["flops"],
                    dram_bytes=ph["dram_bytes"],
                    precision=ph["precision"],
                ),
                stores=stores,
                atomics=atomics,
                reads=reads,
                dma=[DMATransfer(*t) for t in ph["dma"]],
            )
            phases_by_iter.setdefault(ph["iteration"], []).append(phase)
    iterations = [
        IterationTrace(sorted(phases_by_iter[i], key=lambda p: p.gpu))
        for i in sorted(phases_by_iter)
    ]
    return WorkloadTrace(
        name=header["name"],
        n_gpus=header["n_gpus"],
        iterations=iterations,
        metadata=header["metadata"],
    )
