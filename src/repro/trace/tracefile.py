"""Trace serialization.

Workload trace generation (running the real algorithm) dominates
experiment wall time, so traces can be captured once and replayed under
every paradigm/configuration.  Two on-disk formats over one column
schema (:data:`repro.trace.columns.COLUMNS`):

* :func:`save_trace` / :func:`load_trace` -- a single ``.npz`` archive
  (flat numpy arrays keyed by iteration/GPU plus a JSON metadata blob);
  compact and portable, the CLI's capture format.
* :class:`TraceDirWriter` (with :func:`save_trace_dir` /
  :func:`load_trace_dir` wrappers) -- a *columnar directory*: one flat
  ``.npy`` file per column (every phase concatenated, ``header.json``
  recording each phase's slice) loaded with ``np.load(..., mmap_mode="r")``.
  Compressed zip members cannot be memory-mapped, so this is the layout
  the :class:`~repro.run.cache.TraceCache` disk layer uses: parallel
  ``execute_grid`` workers replaying the same trace share the pages
  read-only instead of each materializing a copy.  The writer appends
  :class:`~repro.trace.columns.ColumnBlock` chunks incrementally
  (spill-while-generating), so a trace far larger than RAM is written
  in constant memory; writing a whole trace goes through the same code
  path, making streamed and whole-trace entries byte-identical.

Both loaders share one phase-assembly path
(:func:`repro.trace.columns.phase_from_columns`): phases are zero-copy
views over the loaded columns, validated once at write time rather than
re-scanned on every load.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path

import numpy as np
from numpy.lib import format as _npy_format

from ..gpu.compute import KernelWork
from .columns import COLUMNS, ColumnBlock, phase_columns, phase_from_columns
from .stream import (
    DMATransfer,
    IterationTrace,
    KernelPhase,
    WorkloadTrace,
)

_FORMAT_VERSION = 2

#: Legacy alias of the shared schema (kept for external callers).
_COLUMNS = COLUMNS


# -- shared schema helpers ------------------------------------------


def _phase_header_entry(iteration: int, phase: KernelPhase) -> dict:
    """The JSON header record of one phase (sans column slices)."""
    return {
        "iteration": iteration,
        "gpu": phase.gpu,
        "flops": phase.work.flops,
        "dram_bytes": phase.work.dram_bytes,
        "precision": phase.work.precision,
        "dma": [
            [t.dst, t.dst_addr, t.nbytes, t.aggregated] for t in phase.dma
        ],
    }


def _phase_from_entry(ph: dict, columns: dict[str, np.ndarray]) -> KernelPhase:
    """One zero-copy :class:`KernelPhase` from a header entry."""
    return phase_from_columns(
        gpu=ph["gpu"],
        work=KernelWork(
            flops=ph["flops"],
            dram_bytes=ph["dram_bytes"],
            precision=ph["precision"],
        ),
        dma=[DMATransfer(*t) for t in ph["dma"]],
        columns=columns,
    )


def _check_version(header: dict, *, layout: str | None = None) -> None:
    if header.get("version") != _FORMAT_VERSION or (
        layout is not None and header.get("layout") != layout
    ):
        raise ValueError(
            f"unsupported trace format: version {header.get('version')}, "
            f"layout {header.get('layout')!r}"
        )


def _as_validated_int64(arr: np.ndarray) -> np.ndarray:
    """``int64`` view without copying already-int64 arrays (keeps
    memory-mapped slices zero-copy)."""
    if isinstance(arr, np.ndarray) and arr.dtype == np.int64:
        return arr
    return np.asarray(arr, dtype=np.int64)


def _assemble(header: dict, phases: list[KernelPhase]) -> WorkloadTrace:
    phases_by_iter: dict[int, list[KernelPhase]] = {}
    for ph, phase in zip(header["phases"], phases):
        phases_by_iter.setdefault(ph["iteration"], []).append(phase)
    iterations = [
        IterationTrace(sorted(phases_by_iter[i], key=lambda p: p.gpu))
        for i in sorted(phases_by_iter)
    ]
    return WorkloadTrace(
        name=header["name"],
        n_gpus=header["n_gpus"],
        iterations=iterations,
        metadata=header["metadata"],
    )


def _file_sha256(path: Path, chunk_bytes: int = 1 << 20) -> str:
    """Whole-file SHA-256 streamed in chunks (constant memory)."""
    digest = hashlib.sha256()
    with open(path, "rb") as fh:
        while True:
            chunk = fh.read(chunk_bytes)
            if not chunk:
                break
            digest.update(chunk)
    return digest.hexdigest()


# -- single-file .npz archive ---------------------------------------


def save_trace(trace: WorkloadTrace, path: str | Path) -> None:
    """Write ``trace`` to ``path`` as a compressed npz archive."""
    arrays: dict[str, np.ndarray] = {}
    header = {
        "version": _FORMAT_VERSION,
        "name": trace.name,
        "n_gpus": trace.n_gpus,
        "n_iterations": trace.n_iterations,
        "metadata": trace.metadata,
        "phases": [],
    }
    for i, it in enumerate(trace.iterations):
        for p in it.phases:
            key = f"it{i}_gpu{p.gpu}"
            cols = phase_columns(p)
            for col in COLUMNS:
                arrays[f"{key}_{col}"] = cols[col]
            header["phases"].append({"key": key, **_phase_header_entry(i, p)})
    arrays["__header__"] = np.frombuffer(
        json.dumps(header).encode("utf-8"), dtype=np.uint8
    )
    np.savez_compressed(Path(path), **arrays)


def load_trace(path: str | Path) -> WorkloadTrace:
    """Read a trace written by :func:`save_trace`."""
    with np.load(Path(path)) as data:
        header = json.loads(bytes(data["__header__"]).decode("utf-8"))
        _check_version(header)
        phases = [
            _phase_from_entry(
                ph,
                {
                    c: _as_validated_int64(data[f"{ph['key']}_{c}"])
                    for c in COLUMNS
                },
            )
            for ph in header["phases"]
        ]
    return _assemble(header, phases)


# -- columnar directory ---------------------------------------------


def _write_npy_header(fh, count: int) -> None:
    """(Re)write the npy v1 header for a flat int64 array of ``count``.

    The header numpy emits for a 1-D int64 array is a fixed 128 bytes
    for any realistic length (padded to 64-byte alignment), so it can
    be written with a placeholder count while data streams in and
    rewritten in place once the final count is known.
    """
    start = fh.tell()
    _npy_format.write_array_header_1_0(
        fh, {"descr": "<i8", "fortran_order": False, "shape": (count,)}
    )
    if fh.tell() - start != _NPY_HEADER_BYTES:  # pragma: no cover
        raise RuntimeError(
            f"npy header for count {count} was {fh.tell() - start} bytes, "
            f"expected {_NPY_HEADER_BYTES}"
        )


_NPY_HEADER_BYTES = 128


class TraceDirWriter:
    """Incremental columnar-directory writer (spill-while-generating).

    Opens one ``.npy`` stream per schema column with a placeholder
    header, appends each :class:`ColumnBlock`'s phases as they are
    produced, and on :meth:`finalize` rewrites the headers with the
    final counts, records streamed SHA-256 checksums, and writes
    ``header.json`` last -- so a directory with a readable header is
    complete (the cache layer additionally publishes whole directories
    atomically via ``os.replace``).

    Peak memory is one block, independent of trace length.
    """

    def __init__(self, path: str | Path, name: str, n_gpus: int) -> None:
        self.path = Path(path)
        self.path.mkdir(parents=True, exist_ok=True)
        self.name = name
        self.n_gpus = n_gpus
        self._files = {}
        for col in COLUMNS:
            fh = open(self.path / f"{col}.npy", "wb")
            _write_npy_header(fh, 0)
            self._files[col] = fh
        self._counts = dict.fromkeys(COLUMNS, 0)
        self._phase_entries: list[dict] = []
        self._n_iterations = 0
        self._finalized = False

    # -- intake -----------------------------------------------------

    def add_phase(self, iteration: int, phase: KernelPhase) -> None:
        """Append one phase's columns and index entry."""
        cols = phase_columns(phase)
        slices: dict[str, list[int]] = {}
        for col in COLUMNS:
            arr = np.ascontiguousarray(cols[col], dtype=np.int64)
            start = self._counts[col]
            self._files[col].write(arr)
            self._counts[col] = start + int(arr.size)
            slices[col] = [start, self._counts[col]]
        entry = _phase_header_entry(iteration, phase)
        entry["slices"] = slices
        self._phase_entries.append(entry)
        self._n_iterations = max(self._n_iterations, iteration + 1)

    def add_block(self, block: ColumnBlock) -> None:
        """Append every phase of a streamed :class:`ColumnBlock`."""
        for iteration, phase in block.kernel_phases():
            self.add_phase(iteration, phase)

    # -- completion -------------------------------------------------

    def finalize(self, metadata: dict) -> None:
        """Rewrite final array headers, checksum, and publish the header."""
        if self._finalized:
            raise RuntimeError("trace directory already finalized")
        self._finalized = True
        for col, fh in self._files.items():
            fh.flush()
            fh.seek(0)
            _write_npy_header(fh, self._counts[col])
            fh.close()
        # Integrity record: verified on load only when asked
        # (verify=True / $REPRO_TRACE_VERIFY through the cache) so the
        # default zero-copy mmap path stays untouched.
        checksums = {
            col: _file_sha256(self.path / f"{col}.npy") for col in COLUMNS
        }
        header = {
            "version": _FORMAT_VERSION,
            "layout": "columnar",
            "name": self.name,
            "n_gpus": self.n_gpus,
            "n_iterations": self._n_iterations,
            "metadata": metadata,
            "phases": self._phase_entries,
            "checksums": checksums,
        }
        (self.path / "header.json").write_text(json.dumps(header))

    def abort(self) -> None:
        """Close streams without publishing (caller removes the dir)."""
        if not self._finalized:
            self._finalized = True
            for fh in self._files.values():
                fh.close()

    def __enter__(self) -> "TraceDirWriter":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is not None:
            self.abort()


def save_trace_dir(trace: WorkloadTrace, path: str | Path) -> None:
    """Write ``trace`` as a columnar directory (see module docstring).

    A thin wrapper over :class:`TraceDirWriter` -- whole-trace saves
    and streamed spills share one code path, so their bytes match.
    """
    with TraceDirWriter(path, name=trace.name, n_gpus=trace.n_gpus) as writer:
        for i, it in enumerate(trace.iterations):
            for p in it.phases:
                writer.add_phase(i, p)
        writer.finalize(trace.metadata)


def load_trace_dir(
    path: str | Path, mmap: bool = True, verify: bool = False
) -> WorkloadTrace:
    """Read a columnar trace directory written by :class:`TraceDirWriter`.

    With ``mmap=True`` (the default) every column is memory-mapped
    read-only: phase arrays are zero-copy slices backed by the page
    cache, shared across any number of reader processes.

    With ``verify=True`` every column file is checked against the
    SHA-256 recorded in the header before use; a mismatch raises
    ``ValueError`` (the cache layer treats that as corruption and
    regenerates).  Directories written before checksums existed verify
    trivially.
    """
    path = Path(path)
    header = json.loads((path / "header.json").read_text())
    _check_version(header, layout="columnar")
    if verify:
        for col, expected in (header.get("checksums") or {}).items():
            if _file_sha256(path / f"{col}.npy") != expected:
                raise ValueError(
                    f"trace column {col}.npy failed its integrity check "
                    f"in {path}"
                )
    mode = "r" if mmap else None
    columns = {
        col: _as_validated_int64(np.load(path / f"{col}.npy", mmap_mode=mode))
        for col in COLUMNS
    }
    phases = [
        _phase_from_entry(
            ph,
            {
                col: columns[col][ph["slices"][col][0] : ph["slices"][col][1]]
                for col in COLUMNS
            },
        )
        for ph in header["phases"]
    ]
    return _assemble(header, phases)
