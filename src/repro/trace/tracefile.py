"""Trace serialization.

Workload trace generation (running the real algorithm) dominates
experiment wall time, so traces can be captured once and replayed under
every paradigm/configuration.  Two on-disk formats:

* :func:`save_trace` / :func:`load_trace` -- a single ``.npz`` archive
  (flat numpy arrays keyed by iteration/GPU plus a JSON metadata blob);
  compact and portable, the CLI's capture format.
* :func:`save_trace_dir` / :func:`load_trace_dir` -- a *columnar
  directory*: one flat ``.npy`` file per store/atomic/read column
  (every phase concatenated, ``header.json`` recording each phase's
  slice) loaded with ``np.load(..., mmap_mode="r")``.  Compressed zip
  members cannot be memory-mapped, so this is the layout the
  :class:`~repro.run.cache.TraceCache` disk layer uses: parallel
  ``execute_grid`` workers replaying the same trace share the pages
  read-only instead of each materializing a copy.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path

import numpy as np

from ..gpu.compute import KernelWork
from .intervals import IntervalSet
from .stream import (
    DMATransfer,
    IterationTrace,
    KernelPhase,
    RemoteStoreBatch,
    WorkloadTrace,
)

_FORMAT_VERSION = 2

#: Per-phase columns of the columnar directory layout, in file order.
_COLUMNS = (
    "addrs",
    "sizes",
    "dsts",
    "aaddrs",
    "asizes",
    "adsts",
    "rstarts",
    "rends",
)


def save_trace(trace: WorkloadTrace, path: str | Path) -> None:
    """Write ``trace`` to ``path`` as a compressed npz archive."""
    arrays: dict[str, np.ndarray] = {}
    header = {
        "version": _FORMAT_VERSION,
        "name": trace.name,
        "n_gpus": trace.n_gpus,
        "n_iterations": trace.n_iterations,
        "metadata": trace.metadata,
        "phases": [],
    }
    for i, it in enumerate(trace.iterations):
        for p in it.phases:
            key = f"it{i}_gpu{p.gpu}"
            arrays[f"{key}_addrs"] = p.stores.addrs
            arrays[f"{key}_sizes"] = p.stores.sizes
            arrays[f"{key}_dsts"] = p.stores.dsts
            arrays[f"{key}_aaddrs"] = p.atomics.addrs
            arrays[f"{key}_asizes"] = p.atomics.sizes
            arrays[f"{key}_adsts"] = p.atomics.dsts
            arrays[f"{key}_rstarts"] = p.reads.starts
            arrays[f"{key}_rends"] = p.reads.ends
            header["phases"].append(
                {
                    "key": key,
                    "iteration": i,
                    "gpu": p.gpu,
                    "flops": p.work.flops,
                    "dram_bytes": p.work.dram_bytes,
                    "precision": p.work.precision,
                    "dma": [
                        [t.dst, t.dst_addr, t.nbytes, t.aggregated] for t in p.dma
                    ],
                }
            )
    arrays["__header__"] = np.frombuffer(
        json.dumps(header).encode("utf-8"), dtype=np.uint8
    )
    np.savez_compressed(Path(path), **arrays)


def _as_int64(arr: np.ndarray) -> np.ndarray:
    """``int64`` view without copying already-int64 arrays (keeps
    memory-mapped slices zero-copy)."""
    return arr if arr.dtype == np.int64 else arr.astype(np.int64)


def _build_phase(ph: dict, columns: dict[str, np.ndarray]) -> KernelPhase:
    """One :class:`KernelPhase` from a header entry plus its columns."""
    return KernelPhase(
        gpu=ph["gpu"],
        work=KernelWork(
            flops=ph["flops"],
            dram_bytes=ph["dram_bytes"],
            precision=ph["precision"],
        ),
        stores=RemoteStoreBatch(
            columns["addrs"], columns["sizes"], columns["dsts"]
        ),
        atomics=RemoteStoreBatch(
            columns["aaddrs"], columns["asizes"], columns["adsts"]
        ),
        reads=IntervalSet(
            _as_int64(columns["rstarts"]), _as_int64(columns["rends"])
        ),
        dma=[DMATransfer(*t) for t in ph["dma"]],
    )


def _assemble(header: dict, phases: list[KernelPhase]) -> WorkloadTrace:
    phases_by_iter: dict[int, list[KernelPhase]] = {}
    for ph, phase in zip(header["phases"], phases):
        phases_by_iter.setdefault(ph["iteration"], []).append(phase)
    iterations = [
        IterationTrace(sorted(phases_by_iter[i], key=lambda p: p.gpu))
        for i in sorted(phases_by_iter)
    ]
    return WorkloadTrace(
        name=header["name"],
        n_gpus=header["n_gpus"],
        iterations=iterations,
        metadata=header["metadata"],
    )


def load_trace(path: str | Path) -> WorkloadTrace:
    """Read a trace written by :func:`save_trace`."""
    with np.load(Path(path)) as data:
        header = json.loads(bytes(data["__header__"]).decode("utf-8"))
        if header["version"] != _FORMAT_VERSION:
            raise ValueError(
                f"unsupported trace format version {header['version']}"
            )
        phases = [
            _build_phase(
                ph,
                {c: data[f"{ph['key']}_{c}"] for c in _COLUMNS},
            )
            for ph in header["phases"]
        ]
    return _assemble(header, phases)


def save_trace_dir(trace: WorkloadTrace, path: str | Path) -> None:
    """Write ``trace`` as a columnar directory (see module docstring).

    Layout: ``<col>.npy`` per column in :data:`_COLUMNS` -- every
    phase's arrays concatenated in header order -- plus ``header.json``
    whose per-phase entries record ``slices[col] = [start, stop)``.
    The header is written last, so a directory with a readable header
    is complete (the cache layer additionally publishes whole
    directories atomically via ``os.replace``).
    """
    path = Path(path)
    path.mkdir(parents=True, exist_ok=True)
    header = {
        "version": _FORMAT_VERSION,
        "layout": "columnar",
        "name": trace.name,
        "n_gpus": trace.n_gpus,
        "n_iterations": trace.n_iterations,
        "metadata": trace.metadata,
        "phases": [],
    }
    parts: dict[str, list[np.ndarray]] = {c: [] for c in _COLUMNS}
    offsets = dict.fromkeys(_COLUMNS, 0)
    for i, it in enumerate(trace.iterations):
        for p in it.phases:
            arrays = {
                "addrs": p.stores.addrs,
                "sizes": p.stores.sizes,
                "dsts": p.stores.dsts,
                "aaddrs": p.atomics.addrs,
                "asizes": p.atomics.sizes,
                "adsts": p.atomics.dsts,
                "rstarts": p.reads.starts,
                "rends": p.reads.ends,
            }
            slices = {}
            for col in _COLUMNS:
                arr = np.asarray(arrays[col], dtype=np.int64)
                parts[col].append(arr)
                slices[col] = [offsets[col], offsets[col] + int(arr.size)]
                offsets[col] += int(arr.size)
            header["phases"].append(
                {
                    "iteration": i,
                    "gpu": p.gpu,
                    "flops": p.work.flops,
                    "dram_bytes": p.work.dram_bytes,
                    "precision": p.work.precision,
                    "dma": [
                        [t.dst, t.dst_addr, t.nbytes, t.aggregated]
                        for t in p.dma
                    ],
                    "slices": slices,
                }
            )
    checksums = {}
    for col in _COLUMNS:
        flat = (
            np.concatenate(parts[col])
            if parts[col]
            else np.empty(0, dtype=np.int64)
        )
        file = path / f"{col}.npy"
        np.save(file, flat)
        checksums[col] = hashlib.sha256(file.read_bytes()).hexdigest()
    # Integrity record: verified on load only when asked (verify=True /
    # $REPRO_TRACE_VERIFY through the cache) so the default zero-copy
    # mmap path stays untouched.
    header["checksums"] = checksums
    (path / "header.json").write_text(json.dumps(header))


def load_trace_dir(
    path: str | Path, mmap: bool = True, verify: bool = False
) -> WorkloadTrace:
    """Read a columnar trace directory written by :func:`save_trace_dir`.

    With ``mmap=True`` (the default) every column is memory-mapped
    read-only: phase arrays are zero-copy slices backed by the page
    cache, shared across any number of reader processes.

    With ``verify=True`` every column file is checked against the
    SHA-256 recorded in the header before use; a mismatch raises
    ``ValueError`` (the cache layer treats that as corruption and
    regenerates).  Directories written before checksums existed verify
    trivially.
    """
    path = Path(path)
    header = json.loads((path / "header.json").read_text())
    if header["version"] != _FORMAT_VERSION or header.get("layout") != "columnar":
        raise ValueError(
            f"unsupported trace directory format: version "
            f"{header.get('version')}, layout {header.get('layout')!r}"
        )
    if verify:
        for col, expected in (header.get("checksums") or {}).items():
            actual = hashlib.sha256((path / f"{col}.npy").read_bytes()).hexdigest()
            if actual != expected:
                raise ValueError(
                    f"trace column {col}.npy failed its integrity check "
                    f"in {path}"
                )
    mode = "r" if mmap else None
    columns = {
        col: np.load(path / f"{col}.npy", mmap_mode=mode) for col in _COLUMNS
    }
    phases = [
        _build_phase(
            ph,
            {
                col: columns[col][ph["slices"][col][0] : ph["slices"][col][1]]
                for col in _COLUMNS
            },
        )
        for ph in header["phases"]
    ]
    return _assemble(header, phases)
