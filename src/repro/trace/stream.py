"""Phase-level trace containers produced by the workload suite.

Workloads run their real algorithm partitioned over N virtual GPUs and
record, per iteration and per GPU, one :class:`KernelPhase`: the
kernel's compute work, the remote-store transaction stream it emitted
(already warp/L1-coalesced), the local byte ranges it *read* (used to
classify transferred bytes as useful vs wasted), and the bulk-copy plan
a memcpy-paradigm port of the program would issue at the kernel
boundary.

All bulk data is numpy-backed so million-store traces stay cheap.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..gpu.compute import KernelWork
from .intervals import IntervalSet


@dataclass
class RemoteStoreBatch:
    """Remote store transactions issued by one GPU in one phase.

    Arrays are parallel and in issue order.  ``dsts[i]`` is the
    destination GPU of the store at ``addrs[i]`` (an address inside the
    destination's aperture).
    """

    addrs: np.ndarray
    sizes: np.ndarray
    dsts: np.ndarray

    def __post_init__(self) -> None:
        # Already-int64 ndarrays (cache hits, column slices) pass
        # through untouched -- no conversion, no subclass demotion.
        if not (
            isinstance(self.addrs, np.ndarray) and self.addrs.dtype == np.int64
        ):
            self.addrs = np.asarray(self.addrs, dtype=np.int64)
        if not (
            isinstance(self.sizes, np.ndarray) and self.sizes.dtype == np.int64
        ):
            self.sizes = np.asarray(self.sizes, dtype=np.int64)
        if not (
            isinstance(self.dsts, np.ndarray) and self.dsts.dtype == np.int64
        ):
            self.dsts = np.asarray(self.dsts, dtype=np.int64)
        if not (self.addrs.shape == self.sizes.shape == self.dsts.shape):
            raise ValueError("store batch arrays must be parallel")
        if self.sizes.size and (self.sizes <= 0).any():
            raise ValueError("store sizes must be positive")

    @classmethod
    def trusted(
        cls, addrs: np.ndarray, sizes: np.ndarray, dsts: np.ndarray
    ) -> "RemoteStoreBatch":
        """Wrap already-validated int64 columns as a batch *view*.

        Skips ``__post_init__`` entirely: no dtype conversion and --
        crucially for memory-mapped trace columns -- no positivity scan
        touching every page.  Callers guarantee the arrays are parallel
        int64 with positive sizes (slices of previously validated
        columns qualify).
        """
        self = object.__new__(cls)
        self.addrs = addrs
        self.sizes = sizes
        self.dsts = dsts
        return self

    @staticmethod
    def empty() -> "RemoteStoreBatch":
        z = np.empty(0, dtype=np.int64)
        return RemoteStoreBatch.trusted(z, z.copy(), z.copy())

    @staticmethod
    def concat(batches: list["RemoteStoreBatch"]) -> "RemoteStoreBatch":
        batches = [b for b in batches if b.count]
        if not batches:
            return RemoteStoreBatch.empty()
        return RemoteStoreBatch.trusted(
            np.concatenate([b.addrs for b in batches]),
            np.concatenate([b.sizes for b in batches]),
            np.concatenate([b.dsts for b in batches]),
        )

    @property
    def count(self) -> int:
        return int(self.addrs.size)

    @property
    def total_bytes(self) -> int:
        return int(self.sizes.sum())

    def for_dst(self, dst: int) -> "RemoteStoreBatch":
        mask = self.dsts == dst
        return RemoteStoreBatch.trusted(
            self.addrs[mask], self.sizes[mask], self.dsts[mask]
        )

    def destinations(self) -> list[int]:
        return sorted(int(d) for d in np.unique(self.dsts)) if self.count else []

    def footprint(self) -> IntervalSet:
        """Union of all bytes stored (the final-value byte set)."""
        return IntervalSet.from_ranges(self.addrs, self.sizes)


@dataclass(frozen=True, slots=True)
class DMATransfer:
    """One bulk copy a memcpy-paradigm port would issue at a kernel end.

    ``dst_addr`` is the base of the copied region inside the destination
    GPU's aperture; the region is ``[dst_addr, dst_addr + nbytes)``.

    ``aggregated`` marks software-aggregated copies (a staged
    value+index buffer rather than an in-place region): the producer
    genuinely writes every byte of the staged region, so the byte
    ledger counts the region as producer-written when classifying
    useful vs. wasted bytes.
    """

    dst: int
    dst_addr: int
    nbytes: int
    aggregated: bool = False

    def __post_init__(self) -> None:
        if self.nbytes <= 0:
            raise ValueError(f"DMA transfer must be positive, got {self.nbytes}")

    def region(self) -> IntervalSet:
        return IntervalSet.from_ranges([self.dst_addr], [self.nbytes])


@dataclass
class KernelPhase:
    """One GPU's kernel execution in one iteration."""

    gpu: int
    work: KernelWork
    stores: RemoteStoreBatch = field(default_factory=RemoteStoreBatch.empty)
    #: Remote atomic operations (read-modify-writes).  FinePack never
    #: coalesces these (paper Sec. IV-C); they interleave with the
    #: store stream in issue order.
    atomics: RemoteStoreBatch = field(default_factory=RemoteStoreBatch.empty)
    #: Local byte ranges this GPU reads during the phase -- the consumer
    #: side of the useful-byte classification.
    reads: IntervalSet = field(default_factory=IntervalSet.empty)
    #: Bulk copies the memcpy paradigm issues when this phase ends.
    dma: list[DMATransfer] = field(default_factory=list)


@dataclass
class IterationTrace:
    """All GPUs' phases for one bulk-synchronous iteration."""

    phases: list[KernelPhase]

    def __post_init__(self) -> None:
        gpus = [p.gpu for p in self.phases]
        if gpus != list(range(len(gpus))):
            raise ValueError(f"phases must be one per GPU in order, got {gpus}")

    @property
    def n_gpus(self) -> int:
        return len(self.phases)


@dataclass
class WorkloadTrace:
    """A full multi-GPU execution trace of one workload."""

    name: str
    n_gpus: int
    iterations: list[IterationTrace]
    metadata: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        for it in self.iterations:
            if it.n_gpus != self.n_gpus:
                raise ValueError(
                    f"iteration has {it.n_gpus} phases, expected {self.n_gpus}"
                )

    @property
    def n_iterations(self) -> int:
        return len(self.iterations)

    def total_remote_stores(self) -> int:
        return sum(p.stores.count for it in self.iterations for p in it.phases)

    def total_remote_bytes(self) -> int:
        return sum(p.stores.total_bytes for it in self.iterations for p in it.phases)

    def all_store_sizes(self) -> np.ndarray:
        parts = [
            p.stores.sizes
            for it in self.iterations
            for p in it.phases
            if p.stores.count
        ]
        if not parts:
            return np.empty(0, dtype=np.int64)
        return np.concatenate(parts)
