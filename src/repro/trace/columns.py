"""Chunked column blocks: the streaming form of a workload trace.

A :class:`~repro.trace.stream.WorkloadTrace` is phase-oriented; its
native *storage* (both in the columnar trace directories and inside
every vectorized consumer) is struct-of-arrays.  This module is the
bridge between the two for **generation**: workloads emit their phases
into a :class:`ColumnBlockBuilder`, which packs them into bounded-size
:class:`ColumnBlock` chunks -- one flat int64 array per column plus a
phase index recording each phase's slice.  Blocks can be spilled to
disk as they are produced (see :class:`repro.trace.tracefile.TraceDirWriter`),
so a trace far larger than RAM is generated in constant memory, or
assembled back into a :class:`WorkloadTrace` whose phases are zero-copy
views over the block columns.

The column schema (:data:`COLUMNS`) is shared verbatim with the trace
serialization layer: addrs/sizes/dsts for stores, aaddrs/asizes/adsts
for atomics, rstarts/rends for the consumer read intervals.  A phase is
never split across blocks -- a phase larger than ``chunk_ops`` simply
gets a block of its own -- so chunking can never change replay
semantics, only memory shape (property-tested byte-identical across
chunk sizes).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..gpu.compute import KernelWork
from .intervals import IntervalSet
from .stream import (
    DMATransfer,
    IterationTrace,
    KernelPhase,
    RemoteStoreBatch,
    WorkloadTrace,
)

#: Per-phase int64 columns, in canonical (file) order.  The same table
#: drives the ``.npz`` archive keys, the columnar-directory file names
#: and the in-memory block layout -- one schema, every layer.
COLUMNS = (
    "addrs",
    "sizes",
    "dsts",
    "aaddrs",
    "asizes",
    "adsts",
    "rstarts",
    "rends",
)

#: Default block-size target: total column elements buffered before a
#: block is flushed (~2 MiB of int64 per column stream at 262144).
DEFAULT_CHUNK_OPS = 262_144


def phase_columns(phase: KernelPhase) -> dict[str, np.ndarray]:
    """The eight schema columns of one phase, by name."""
    return {
        "addrs": phase.stores.addrs,
        "sizes": phase.stores.sizes,
        "dsts": phase.stores.dsts,
        "aaddrs": phase.atomics.addrs,
        "asizes": phase.atomics.sizes,
        "adsts": phase.atomics.dsts,
        "rstarts": phase.reads.starts,
        "rends": phase.reads.ends,
    }


def phase_from_columns(
    gpu: int,
    work: KernelWork,
    dma: list[DMATransfer],
    columns: dict[str, np.ndarray],
) -> KernelPhase:
    """A :class:`KernelPhase` whose arrays are *views* of ``columns``.

    The columns are trusted (already validated at generation or write
    time), so no dtype conversion, copy, or page-touching scan happens
    here -- the loader stays zero-copy over memory-mapped files.
    """
    return KernelPhase(
        gpu=gpu,
        work=work,
        stores=RemoteStoreBatch.trusted(
            columns["addrs"], columns["sizes"], columns["dsts"]
        ),
        atomics=RemoteStoreBatch.trusted(
            columns["aaddrs"], columns["asizes"], columns["adsts"]
        ),
        reads=IntervalSet(columns["rstarts"], columns["rends"]),
        dma=dma,
    )


@dataclass(frozen=True, slots=True)
class PhaseHeader:
    """Index entry locating one phase inside a :class:`ColumnBlock`."""

    iteration: int
    gpu: int
    work: KernelWork
    dma: tuple[DMATransfer, ...]
    #: ``col -> (start, stop)`` slice into the block's columns.
    slices: dict[str, tuple[int, int]]


@dataclass(frozen=True, slots=True)
class ColumnBlock:
    """A bounded run of whole phases in struct-of-arrays form."""

    phases: tuple[PhaseHeader, ...]
    columns: dict[str, np.ndarray]

    @property
    def n_ops(self) -> int:
        """Total column elements held (the chunking measure)."""
        return sum(int(c.size) for c in self.columns.values())

    def phase_view(self, header: PhaseHeader) -> KernelPhase:
        """The zero-copy :class:`KernelPhase` for one index entry."""
        cols = {
            col: self.columns[col][header.slices[col][0] : header.slices[col][1]]
            for col in COLUMNS
        }
        return phase_from_columns(
            header.gpu, header.work, list(header.dma), cols
        )

    def kernel_phases(self):
        """Yield ``(iteration, KernelPhase)`` views in emission order."""
        for header in self.phases:
            yield header.iteration, self.phase_view(header)


class ColumnBlockBuilder:
    """Packs emitted phases into bounded :class:`ColumnBlock` chunks.

    ``add`` returns a flushed block whenever the buffered column
    elements reach ``chunk_ops`` (a phase never splits, so a single
    oversized phase flushes as its own block); ``finish`` returns the
    final partial block.  Phases must arrive iteration-major with
    non-decreasing iteration indices -- per-iteration GPU ordering is
    validated downstream by :class:`IterationTrace`.
    """

    def __init__(self, chunk_ops: int = DEFAULT_CHUNK_OPS) -> None:
        if chunk_ops <= 0:
            raise ValueError(f"chunk_ops must be positive: {chunk_ops}")
        self.chunk_ops = chunk_ops
        self._parts: dict[str, list[np.ndarray]] = {c: [] for c in COLUMNS}
        self._offsets = dict.fromkeys(COLUMNS, 0)
        self._headers: list[PhaseHeader] = []
        self._buffered_ops = 0
        self._last_iteration = -1

    def add(self, iteration: int, phase: KernelPhase) -> ColumnBlock | None:
        """Buffer one phase; returns a full block when one flushes."""
        if iteration < self._last_iteration:
            raise ValueError(
                f"phases must be emitted iteration-major: got iteration "
                f"{iteration} after {self._last_iteration}"
            )
        self._last_iteration = iteration
        slices: dict[str, tuple[int, int]] = {}
        cols = phase_columns(phase)
        for col in COLUMNS:
            arr = cols[col]
            if not (isinstance(arr, np.ndarray) and arr.dtype == np.int64):
                arr = np.asarray(arr, dtype=np.int64)
            start = self._offsets[col]
            self._parts[col].append(arr)
            self._offsets[col] = start + int(arr.size)
            slices[col] = (start, self._offsets[col])
            self._buffered_ops += int(arr.size)
        self._headers.append(
            PhaseHeader(
                iteration=iteration,
                gpu=phase.gpu,
                work=phase.work,
                dma=tuple(phase.dma),
                slices=slices,
            )
        )
        if self._buffered_ops >= self.chunk_ops:
            return self._flush()
        return None

    def finish(self) -> ColumnBlock | None:
        """The final partial block, or ``None`` if nothing is buffered."""
        if not self._headers:
            return None
        return self._flush()

    def _flush(self) -> ColumnBlock:
        columns = {
            col: (
                np.concatenate(parts)
                if parts
                else np.empty(0, dtype=np.int64)
            )
            for col, parts in self._parts.items()
        }
        block = ColumnBlock(phases=tuple(self._headers), columns=columns)
        self._parts = {c: [] for c in COLUMNS}
        self._offsets = dict.fromkeys(COLUMNS, 0)
        self._headers = []
        self._buffered_ops = 0
        return block


def drain_blocks(block_gen) -> tuple[list[ColumnBlock], dict]:
    """Exhaust an ``iter_columns`` generator, capturing its metadata.

    The generator's ``return`` value (PEP 380) is the workload's
    metadata dict -- computed *after* generation for workloads whose
    metadata summarizes the run (e.g. SSSP's reached-vertex count).
    """
    blocks: list[ColumnBlock] = []
    while True:
        try:
            blocks.append(next(block_gen))
        except StopIteration as stop:
            return blocks, dict(stop.value or {})


def blocks_to_trace(
    name: str,
    n_gpus: int,
    blocks: list[ColumnBlock],
    metadata: dict,
) -> WorkloadTrace:
    """Assemble streamed blocks back into a :class:`WorkloadTrace`.

    Phases are zero-copy views over the block columns; iteration
    grouping and per-GPU ordering are validated by the trace
    containers themselves.
    """
    phases_by_iter: dict[int, list[KernelPhase]] = {}
    for block in blocks:
        for iteration, phase in block.kernel_phases():
            phases_by_iter.setdefault(iteration, []).append(phase)
    if sorted(phases_by_iter) != list(range(len(phases_by_iter))):
        raise ValueError(
            f"streamed iterations must be contiguous from 0, got "
            f"{sorted(phases_by_iter)}"
        )
    iterations = [
        IterationTrace(phases_by_iter[i]) for i in range(len(phases_by_iter))
    ]
    return WorkloadTrace(
        name=name, n_gpus=n_gpus, iterations=iterations, metadata=metadata
    )
