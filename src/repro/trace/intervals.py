"""Vectorized byte-interval algebra.

Byte accounting (paper Fig. 10) needs set operations over address
ranges: the union of all bytes a GPU stored remotely, its intersection
with what the consumer read, differences for over-transfer, and so on.
An :class:`IntervalSet` is a normalized (sorted, disjoint, non-adjacent)
set of half-open ``[start, start+length)`` byte ranges backed by numpy
arrays, with union/intersection/difference in O(n log n).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


def _as_arrays(starts, lengths) -> tuple[np.ndarray, np.ndarray]:
    s = np.asarray(starts, dtype=np.int64).ravel()
    l = np.asarray(lengths, dtype=np.int64).ravel()
    if s.shape != l.shape:
        raise ValueError("starts and lengths must have equal shapes")
    if (l < 0).any():
        raise ValueError("interval lengths must be non-negative")
    keep = l > 0
    return s[keep], l[keep]


@dataclass(frozen=True)
class IntervalSet:
    """A normalized set of half-open byte intervals."""

    starts: np.ndarray
    ends: np.ndarray

    @staticmethod
    def from_ranges(starts, lengths) -> "IntervalSet":
        """Build from possibly-overlapping, unordered ranges."""
        s, l = _as_arrays(starts, lengths)
        if s.size == 0:
            return IntervalSet.empty()
        order = np.argsort(s, kind="stable")
        s, e = s[order], (s + l)[order]
        running = np.maximum.accumulate(e)
        new_run = np.empty(s.size, dtype=bool)
        new_run[0] = True
        # Strictly-greater keeps adjacent ranges merged ([0,4)+[4,8) -> [0,8)).
        np.greater(s[1:], running[:-1], out=new_run[1:])
        run_id = np.cumsum(new_run) - 1
        out_starts = s[new_run]
        out_ends = np.zeros(out_starts.size, dtype=np.int64)
        np.maximum.at(out_ends, run_id, e)
        return IntervalSet(out_starts, out_ends)

    @staticmethod
    def empty() -> "IntervalSet":
        z = np.empty(0, dtype=np.int64)
        return IntervalSet(z, z.copy())

    @property
    def total_bytes(self) -> int:
        return int((self.ends - self.starts).sum())

    def __len__(self) -> int:
        return int(self.starts.size)

    def __bool__(self) -> bool:
        return self.starts.size > 0

    def union(self, other: "IntervalSet") -> "IntervalSet":
        starts = np.concatenate([self.starts, other.starts])
        lengths = np.concatenate(
            [self.ends - self.starts, other.ends - other.starts]
        )
        return IntervalSet.from_ranges(starts, lengths)

    def intersect(self, other: "IntervalSet") -> "IntervalSet":
        if not self or not other:
            return IntervalSet.empty()
        # For each interval in self, find overlapping intervals in other
        # via searchsorted on the normalized arrays.
        lo = np.searchsorted(other.ends, self.starts, side="right")
        hi = np.searchsorted(other.starts, self.ends, side="left")
        counts = hi - lo
        total = int(counts.sum())
        if total == 0:
            return IntervalSet.empty()
        self_idx = np.repeat(np.arange(self.starts.size), counts)
        offsets = np.concatenate(([0], np.cumsum(counts)[:-1]))
        within = np.arange(total) - offsets[self_idx]
        other_idx = lo[self_idx] + within
        s = np.maximum(self.starts[self_idx], other.starts[other_idx])
        e = np.minimum(self.ends[self_idx], other.ends[other_idx])
        return IntervalSet.from_ranges(s, e - s)

    def difference(self, other: "IntervalSet") -> "IntervalSet":
        """Bytes in self but not in other."""
        overlap = self.intersect(other)
        if not overlap:
            return self
        # Sweep: subtract overlap (a subset of self) interval by interval.
        out_s: list[int] = []
        out_e: list[int] = []
        oi = 0
        os_, oe_ = overlap.starts, overlap.ends
        for s, e in zip(self.starts.tolist(), self.ends.tolist()):
            cur = s
            while oi < os_.size and os_[oi] < e:
                if oe_[oi] <= cur:
                    oi += 1
                    continue
                if os_[oi] > cur:
                    out_s.append(cur)
                    out_e.append(int(os_[oi]))
                cur = int(oe_[oi])
                if cur >= e:
                    break
                oi += 1
            if cur < e:
                out_s.append(cur)
                out_e.append(e)
            # An overlap interval can span into the next self interval
            # only if self intervals are adjacent, which normalization
            # forbids, so advancing oi greedily is safe.
        return IntervalSet(
            np.asarray(out_s, dtype=np.int64), np.asarray(out_e, dtype=np.int64)
        )

    def contains(self, addr: int) -> bool:
        i = int(np.searchsorted(self.starts, addr, side="right")) - 1
        return i >= 0 and addr < self.ends[i]

    def shift(self, delta: int) -> "IntervalSet":
        return IntervalSet(self.starts + delta, self.ends + delta)
