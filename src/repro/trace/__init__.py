"""Trace substrate: interval algebra, event vocabulary, phase-level
trace containers and trace (de)serialization."""

from .events import (
    AtomicEvent,
    EventKind,
    FenceEvent,
    LoadEvent,
    MemcpyPeerEvent,
    StoreEvent,
    TraceEvent,
    fence,
    store,
)
from .intervals import IntervalSet
from .stream import (
    DMATransfer,
    IterationTrace,
    KernelPhase,
    RemoteStoreBatch,
    WorkloadTrace,
)
from .tracefile import load_trace, save_trace

__all__ = [
    "AtomicEvent",
    "EventKind",
    "FenceEvent",
    "LoadEvent",
    "MemcpyPeerEvent",
    "StoreEvent",
    "TraceEvent",
    "fence",
    "store",
    "IntervalSet",
    "DMATransfer",
    "IterationTrace",
    "KernelPhase",
    "RemoteStoreBatch",
    "WorkloadTrace",
    "load_trace",
    "save_trace",
]
