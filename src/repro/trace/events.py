"""Event-level trace vocabulary.

These are the fine-grained events an instrumented GPU binary would
produce (the role NVBit traces play in the paper): kernel boundaries,
remote stores/loads/atomics, fences, and bulk copies.  The egress
engines and the memory-model conformance tests consume this vocabulary;
bulk workload traces use the array-based phase containers in
``repro.trace.stream`` instead for efficiency.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from ..gpu.consistency import Scope


class EventKind(enum.Enum):
    KERNEL_BEGIN = "kernel_begin"
    KERNEL_END = "kernel_end"
    STORE = "store"
    LOAD = "load"
    ATOMIC = "atomic"
    FENCE = "fence"
    MEMCPY_PEER = "memcpy_peer"


@dataclass(frozen=True, slots=True)
class TraceEvent:
    """Base fields common to all trace events."""

    kind: EventKind
    gpu: int
    time: float = 0.0


@dataclass(frozen=True, slots=True)
class StoreEvent(TraceEvent):
    """A (possibly remote) store transaction leaving the L1."""

    addr: int = 0
    size: int = 0
    dst: int = -1  #: destination GPU; -1 for local

    def __post_init__(self) -> None:
        if self.size <= 0:
            raise ValueError(f"store size must be positive, got {self.size}")


@dataclass(frozen=True, slots=True)
class LoadEvent(TraceEvent):
    addr: int = 0
    size: int = 0
    dst: int = -1


@dataclass(frozen=True, slots=True)
class AtomicEvent(TraceEvent):
    addr: int = 0
    size: int = 0
    dst: int = -1


@dataclass(frozen=True, slots=True)
class FenceEvent(TraceEvent):
    scope: Scope = Scope.SYSTEM


@dataclass(frozen=True, slots=True)
class MemcpyPeerEvent(TraceEvent):
    dst: int = -1
    src_addr: int = 0
    dst_addr: int = 0
    nbytes: int = 0


def store(gpu: int, addr: int, size: int, dst: int, time: float = 0.0) -> StoreEvent:
    """Convenience constructor for a remote store event."""
    return StoreEvent(
        kind=EventKind.STORE, gpu=gpu, time=time, addr=addr, size=size, dst=dst
    )


def fence(gpu: int, scope: Scope = Scope.SYSTEM, time: float = 0.0) -> FenceEvent:
    return FenceEvent(kind=EventKind.FENCE, gpu=gpu, time=time, scope=scope)
