"""EQWP: 3-D earthquake wave propagation (Tartan suite).

A 4th-order finite-difference seismic wave model: the wider stencil
needs a two-plane halo per side, doubling the per-iteration exchange
volume relative to the 2nd-order stencils.  Partitioning and
communication follow the same slab/halo pattern as Diffusion (paper
Sec. V: peer-to-peer halo exchange, originally via MPI).
"""

from __future__ import annotations

from ..registry import workloads as _registry
from .base import MultiGPUWorkload
from .grids import StencilSpec, iter_stencil_phases


@_registry.register("eqwp")
class EQWPWorkload(MultiGPUWorkload):
    """4th-order 3-D wave-propagation stencil over an ``n^3`` volume."""

    name = "eqwp"
    comm_pattern = "peer-to-peer"

    def __init__(self, n: int = 160) -> None:
        if n < 16:
            raise ValueError(f"volume too small: {n}")
        self.n = n

    def iter_phases(self, n_gpus: int, iterations: int = 3, seed: int = 7):
        spec = StencilSpec(
            name=self.name,
            grid=(self.n, self.n, self.n),
            elem_bytes=4,
            halo_depth=2,
            # 4th-order stencil in 3 dimensions: 13-point star plus the
            # velocity/stress update terms.
            flops_per_point=34.0,
            # Pressure + velocity fields, fp32: ~5 streams per point.
            dram_bytes_per_point=20.0,
            precision="fp32",
        )
        return (yield from iter_stencil_phases(spec, n_gpus, iterations))
