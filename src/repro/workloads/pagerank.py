"""PageRank (paper Sec. V).

Synchronous power iteration ``x' = d * A x + (1-d)/n`` over a
cage-like banded matrix.  Vertices are range-partitioned.  Each GPU
owns the ranks of its vertex range; after computing them it makes them
visible to the peers whose rows reference them by walking its out-edge
list and storing ``x[u]`` into the consumer's replica *per edge* -- the
natural push-style port of the kernel.  This produces the fine-grained
traffic the paper characterizes:

* 8-byte stores scattered across the consumer's replica (Fig. 4),
* repeated stores of the same rank when a vertex has several out-edges
  into the same partition -- redundant transfers that FinePack's write
  queue coalesces away (Fig. 10),
* banded structure keeps traffic between neighbouring partitions (the
  paper calls cage's pattern peer-to-peer).

The memcpy port instead copies each owner's whole contiguous rank
block: it cannot cheaply enumerate the referenced subset, so it
over-transfers (Fig. 10's wasted bytes for DMA).
"""

from __future__ import annotations

import numpy as np

from ..gpu.compute import KernelWork
from ..gpu.memory import MemorySpace
from ..trace.intervals import IntervalSet
from ..trace.stream import (
    DMATransfer,
    KernelPhase,
    RemoteStoreBatch,
)
from ..registry import workloads as _registry
from .base import (
    MultiGPUWorkload,
    element_intervals,
    interleave,
    push_elements,
)
from .datasets import banded_matrix, owner_of_vertex, partition_bounds


@_registry.register("pagerank")
class PagerankWorkload(MultiGPUWorkload):
    """Push-style synchronous PageRank on a banded (cage-like) matrix."""

    name = "pagerank"
    comm_pattern = "peer-to-peer"

    def __init__(
        self,
        n: int = 100_000,
        avg_degree: int = 10,
        band_fraction: float = 0.07,
        damping: float = 0.85,
        use_atomics: bool = False,
    ) -> None:
        """With ``use_atomics=True`` the port pushes per-edge
        ``atomicAdd`` contributions into the consumer's accumulator
        instead of storing final rank values -- the alternative
        fine-grained port the paper's Sec. IV-C declines to coalesce
        (atomics always bypass the remote write queue)."""
        if not 0 < damping < 1:
            raise ValueError(f"damping must be in (0,1), got {damping}")
        self.n = n
        self.avg_degree = avg_degree
        self.band_fraction = band_fraction
        self.band = max(1, int(n * band_fraction))
        self.damping = damping
        self.use_atomics = use_atomics

    def _reference_ranks(self, graph, iterations: int) -> np.ndarray:
        """Run the actual power iteration (validates the algorithm)."""
        n = graph.n
        x = np.full(n, 1.0 / n)
        out_deg = np.maximum(graph.out_degree(), 1)
        src = np.repeat(np.arange(n), graph.out_degree())
        for _ in range(iterations):
            contrib = x[src] / out_deg[src]
            y = np.zeros(n)
            np.add.at(y, graph.dst, contrib)
            x = self.damping * y + (1 - self.damping) / n
        return x

    def iter_phases(self, n_gpus: int, iterations: int = 3, seed: int = 7):
        graph = banded_matrix(self.n, self.band, self.avg_degree, seed)
        ranks = self._reference_ranks(graph, iterations)
        bounds = partition_bounds(self.n, n_gpus)
        memory = MemorySpace(n_gpus)
        xbuf = memory.alloc_replicated("pagerank.x", self.n * 8)

        # Edge (u -> v): the rank of v depends on x[u], so the owner of
        # u pushes x[u] to the owner of v, once per out-edge, in CSR
        # (ascending u) order.
        src = np.repeat(np.arange(self.n), graph.out_degree())
        producer = owner_of_vertex(src, bounds)
        consumer = owner_of_vertex(graph.dst, bounds)
        cross = producer != consumer

        phases: list[KernelPhase] = []
        edges_per_consumer = np.zeros(n_gpus, dtype=np.int64)
        np.add.at(edges_per_consumer, consumer, 1)
        for g in range(n_gpus):
            owned = int(bounds[g + 1] - bounds[g])
            e_g = int(edges_per_consumer[g])
            work = KernelWork(
                flops=2.0 * e_g + 3.0 * owned,
                # Rank reads are strongly cache-resident within the
                # band, so the DRAM stream is the 4 B column index per
                # edge plus spill, and the owned rank vector write.
                dram_bytes=8.0 * e_g + 8.0 * owned,
                precision="fp64",
            )
            batches = []
            pushed_atomics: list[RemoteStoreBatch] | None = (
                [] if self.use_atomics else None
            )
            dma = []
            for d in range(n_gpus):
                if d == g:
                    continue
                mask = cross & (producer == g) & (consumer == d)
                # Per-edge pushes, duplicates included; dynamic CTA
                # scheduling interleaves many blocks' streams, so
                # neighbouring vertices neither coalesce in the L1 nor
                # arrive window-adjacent at the remote write queue.
                if pushed_atomics is None:
                    pushed = interleave(src[mask], ways=256)
                    if pushed.size == 0:
                        continue
                    batches.append(push_elements(pushed, 8, d, xbuf.replicas[d]))
                else:
                    # Atomic port: contributions accumulate into the
                    # consumer's copy per destination vertex.
                    targets = interleave(graph.dst[mask], ways=256)
                    if targets.size == 0:
                        continue
                    pushed_atomics.append(
                        RemoteStoreBatch(
                            xbuf.replicas[d] + targets * 8,
                            np.full(targets.size, 8, dtype=np.int64),
                            np.full(targets.size, d, dtype=np.int64),
                        )
                    )
                dma.append(
                    DMATransfer(
                        dst=d,
                        dst_addr=xbuf.replicas[d] + int(bounds[g]) * 8,
                        nbytes=owned * 8,
                    )
                )
            if self.use_atomics:
                # The atomic port's consumer reads its own accumulator.
                reads = IntervalSet.from_ranges(
                    [xbuf.replicas[g] + int(bounds[g]) * 8], [owned * 8]
                )
            else:
                reads = IntervalSet.empty()
                referenced = np.unique(src[cross & (consumer == g)])
                if referenced.size:
                    reads = element_intervals(referenced, 8, xbuf.replicas[g])
            phases.append(
                KernelPhase(
                    gpu=g,
                    work=work,
                    stores=RemoteStoreBatch.concat(batches),
                    atomics=(
                        RemoteStoreBatch.concat(pushed_atomics)
                        if pushed_atomics is not None
                        else RemoteStoreBatch.empty()
                    ),
                    reads=reads,
                    dma=dma,
                )
            )

        # The push pattern is identical every power iteration; only the
        # rank *values* change, and the trace carries addresses.
        for i in range(iterations):
            for p in phases:
                yield i, p
        return {
            "n": self.n,
            "nnz": graph.nnz,
            "band": self.band,
            "rank_sum": float(ranks.sum()),
            "comm_pattern": self.comm_pattern,
        }
