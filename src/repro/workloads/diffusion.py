"""Diffusion: heat equation / inviscid Burgers solver (Tartan suite).

A 3-D 7-point stencil advanced explicitly in time; each GPU owns a slab
of the volume and exchanges one halo plane with each neighbour per step
(paper Sec. V: peer-to-peer, MPI communication replaced by the studied
paradigms).  Like Jacobi, the halo planes are contiguous, so this is
the paper's second "regular" application.
"""

from __future__ import annotations

from ..trace.stream import WorkloadTrace
from ..registry import workloads as _registry
from .base import MultiGPUWorkload
from .grids import StencilSpec, build_stencil_trace


@_registry.register("diffusion")
class DiffusionWorkload(MultiGPUWorkload):
    """3-D heat/Burgers stencil over an ``n^3`` fp64 volume."""

    name = "diffusion"
    comm_pattern = "peer-to-peer"

    def __init__(self, n: int = 144) -> None:
        if n < 8:
            raise ValueError(f"volume too small: {n}")
        self.n = n

    def generate_trace(
        self, n_gpus: int, iterations: int = 3, seed: int = 7
    ) -> WorkloadTrace:
        spec = StencilSpec(
            name=self.name,
            grid=(self.n, self.n, self.n),
            elem_bytes=8,
            halo_depth=1,
            # 7-point Laplacian + advection terms.
            flops_per_point=11.0,
            dram_bytes_per_point=16.0,
            precision="fp64",
        )
        return build_stencil_trace(spec, n_gpus, iterations)
