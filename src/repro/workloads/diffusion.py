"""Diffusion: heat equation / inviscid Burgers solver (Tartan suite).

A 3-D 7-point stencil advanced explicitly in time; each GPU owns a slab
of the volume and exchanges one halo plane with each neighbour per step
(paper Sec. V: peer-to-peer, MPI communication replaced by the studied
paradigms).  Like Jacobi, the halo planes are contiguous, so this is
the paper's second "regular" application.
"""

from __future__ import annotations

from ..registry import workloads as _registry
from .base import MultiGPUWorkload
from .grids import StencilSpec, iter_stencil_phases


@_registry.register("diffusion")
class DiffusionWorkload(MultiGPUWorkload):
    """3-D heat/Burgers stencil over an ``n^3`` fp64 volume."""

    name = "diffusion"
    comm_pattern = "peer-to-peer"

    def __init__(self, n: int = 144) -> None:
        if n < 8:
            raise ValueError(f"volume too small: {n}")
        self.n = n

    def iter_phases(self, n_gpus: int, iterations: int = 3, seed: int = 7):
        spec = StencilSpec(
            name=self.name,
            grid=(self.n, self.n, self.n),
            elem_bytes=8,
            halo_depth=1,
            # 7-point Laplacian + advection terms.
            flops_per_point=11.0,
            dram_bytes_per_point=16.0,
            precision="fp64",
        )
        return (yield from iter_stencil_phases(spec, n_gpus, iterations))
