"""Jacobi iterative solver (paper Sec. V).

Solves ``Ax = b`` for a banded coefficient matrix arising from a 2-D
finite-element discretization.  Partitioned by row blocks; the values
each neighbour needs are the boundary rows, exchanged peer-to-peer.
Boundary rows are contiguous, so P2P stores coalesce to full cache
lines -- Jacobi is one of the two "regular" applications where raw P2P
stores already scale well (paper Fig. 9).
"""

from __future__ import annotations

from ..registry import workloads as _registry
from .base import MultiGPUWorkload
from .grids import StencilSpec, iter_stencil_phases


@_registry.register("jacobi")
class JacobiWorkload(MultiGPUWorkload):
    """2-D 5-point Jacobi sweep over an ``n x n`` fp64 grid."""

    name = "jacobi"
    comm_pattern = "peer-to-peer"

    def __init__(self, n: int = 2048) -> None:
        if n < 8:
            raise ValueError(f"grid too small: {n}")
        self.n = n

    def iter_phases(self, n_gpus: int, iterations: int = 3, seed: int = 7):
        spec = StencilSpec(
            name=self.name,
            grid=(self.n, self.n),
            elem_bytes=8,
            halo_depth=1,
            # 5-point stencil: 4 adds + 1 multiply + residual update.
            flops_per_point=6.0,
            # Read x (well-cached neighbours) + write x_new: ~2 fp64
            # streams per point.
            dram_bytes_per_point=16.0,
            precision="fp64",
        )
        return (yield from iter_stencil_phases(spec, n_gpus, iterations))
