"""Numeric reference implementations of the workload algorithms.

The trace generators model *communication*; these functions run the
same algorithms *numerically*, so tests can validate them against
independent implementations (networkx, scipy) and convergence
properties.  They share the dataset generators with the trace layer,
anchoring the traces to genuinely executable algorithms.
"""

from __future__ import annotations

import numpy as np

from .datasets import Graph, RatingMatrix


def pagerank(graph: Graph, damping: float = 0.85, iterations: int = 50) -> np.ndarray:
    """Power-iteration PageRank; returns the rank vector (sums to ~1)."""
    n = graph.n
    x = np.full(n, 1.0 / n)
    out_deg = graph.out_degree()
    src = np.repeat(np.arange(n), out_deg)
    safe_deg = np.maximum(out_deg, 1)
    for _ in range(iterations):
        contrib = x[src] / safe_deg[src]
        y = np.zeros(n)
        np.add.at(y, graph.dst, contrib)
        # Dangling mass is redistributed uniformly.
        dangling = x[out_deg == 0].sum()
        x = damping * (y + dangling / n) + (1 - damping) / n
    return x


def bellman_ford(
    graph: Graph, weights: np.ndarray, source: int = 0, max_rounds: int | None = None
) -> np.ndarray:
    """Synchronous Bellman-Ford; returns int64 distances (INF = unreached)."""
    if weights.shape != (graph.nnz,):
        raise ValueError("one weight per edge required")
    inf = np.iinfo(np.int64).max // 4
    dist = np.full(graph.n, inf, dtype=np.int64)
    dist[source] = 0
    src = np.repeat(np.arange(graph.n), graph.out_degree())
    rounds = max_rounds if max_rounds is not None else graph.n - 1
    for _ in range(rounds):
        candidate = dist[src] + weights
        improving = candidate < dist[graph.dst]
        if not improving.any():
            break
        np.minimum.at(dist, graph.dst[improving], candidate[improving])
    return dist


def jacobi_poisson_2d(
    n: int, iterations: int, rng: np.random.Generator | None = None
) -> tuple[np.ndarray, list[float]]:
    """Jacobi sweeps on a 2-D Poisson problem (the workload's stencil).

    Returns the final field and the residual-norm history, which must
    decrease monotonically for a diagonally dominant system.
    """
    rng = rng or np.random.default_rng(0)
    f = rng.standard_normal((n, n))
    u = np.zeros((n, n))
    residuals: list[float] = []
    for _ in range(iterations):
        interior = (
            u[:-2, 1:-1] + u[2:, 1:-1] + u[1:-1, :-2] + u[1:-1, 2:]
        )
        new_u = u.copy()
        new_u[1:-1, 1:-1] = (interior - f[1:-1, 1:-1]) / 4.0
        lap = (
            new_u[:-2, 1:-1]
            + new_u[2:, 1:-1]
            + new_u[1:-1, :-2]
            + new_u[1:-1, 2:]
            - 4 * new_u[1:-1, 1:-1]
        )
        residuals.append(float(np.linalg.norm(lap - f[1:-1, 1:-1])))
        u = new_u
    return u, residuals


def als_factorize(
    ratings: RatingMatrix,
    values: np.ndarray,
    rank: int = 8,
    iterations: int = 5,
    reg: float = 0.1,
    rng: np.random.Generator | None = None,
) -> tuple[np.ndarray, np.ndarray, list[float]]:
    """Alternating least squares; returns (U, V, rmse history)."""
    if values.shape != (ratings.nnz,):
        raise ValueError("one value per rating required")
    rng = rng or np.random.default_rng(0)
    U = rng.standard_normal((ratings.n_users, rank)) * 0.1
    V = rng.standard_normal((ratings.n_items, rank)) * 0.1
    users = np.repeat(np.arange(ratings.n_users), np.diff(ratings.user_indptr))
    items_by_user = ratings.item_ids
    vals_by_user = values
    # CSC view for the item solves.
    order = np.lexsort((users, items_by_user))
    items_sorted = items_by_user[order]
    users_sorted = users[order]
    vals_sorted = values[order]
    eye = reg * np.eye(rank)

    def solve_side(fix, n_rows, row_of, col_of, vals):
        out = np.zeros((n_rows, rank))
        start = 0
        while start < row_of.size:
            end = start
            r = row_of[start]
            while end < row_of.size and row_of[end] == r:
                end += 1
            F = fix[col_of[start:end]]
            A = F.T @ F + eye
            b = F.T @ vals[start:end]
            out[r] = np.linalg.solve(A, b)
            start = end
        return out

    history: list[float] = []
    for _ in range(iterations):
        U = solve_side(V, ratings.n_users, users, items_by_user, vals_by_user)
        V = solve_side(U, ratings.n_items, items_sorted, users_sorted, vals_sorted)
        pred = np.einsum("ij,ij->i", U[users], V[items_by_user])
        history.append(float(np.sqrt(np.mean((pred - values) ** 2))))
    return U, V, history


def spectral_roundtrip(n: int, rng: np.random.Generator | None = None) -> float:
    """HIT's core operation: a 3-D FFT round trip; returns max abs error."""
    rng = rng or np.random.default_rng(0)
    field = rng.standard_normal((n, n, n)) + 1j * rng.standard_normal((n, n, n))
    back = np.fft.ifftn(np.fft.fftn(field))
    return float(np.max(np.abs(back - field)))
