"""A deliberately misbehaving workload: the resilience test fixture.

The supervised executor (:func:`repro.run.executor.execute_grid`) has
to survive worker processes that raise, die, or hang.  Reproducing
those failure modes needs a workload the *worker* process can resolve
-- test-module registrations only exist in the parent -- so this
fixture is registered in the package itself, under the name
``"faulty"``.  With default parameters it is completely benign (a tiny
stencil run), so listing or instantiating every registered workload
stays safe; tests and the CI crash-injection smoke opt into misbehavior
explicitly.

Failure is injected at the start of :meth:`FaultyWorkload.iter_phases`
-- trace generation, i.e. a trace-cache *miss* -- exactly where a real
workload would OOM or wedge.  A crash (``os._exit``) or an exception prevents the trace from
being cached, so a retry of the same cell re-enters the faulty path
until its failure ``budget`` is spent.

Cross-process attempt accounting uses claim files in ``token_dir``:
each generation attempt atomically claims the next slot (``O_EXCL``
create), and slots below ``budget`` misbehave.  That makes failures
*transient* -- attempt ``budget + 1`` succeeds -- which is what retry
tests need.  With no ``token_dir``, a non-zero budget misbehaves on
*every* attempt: a permanent failure, which is what quarantine tests
need.  ``token_dir``/``token`` participate in the spec key, so distinct
grid cells never share a failure budget by accident.
"""

from __future__ import annotations

import itertools
import os
import time
from pathlib import Path

from ..registry import workloads as _registry
from .base import MultiGPUWorkload
from .grids import StencilSpec, iter_stencil_phases

#: Exit status of a ``mode="crash"`` worker (visible in CI logs).
CRASH_EXIT_CODE = 13


@_registry.register("faulty")
class FaultyWorkload(MultiGPUWorkload):
    """Tiny stencil workload that can raise, crash, or hang on demand.

    Parameters
    ----------
    n:
        Stencil grid edge (kept small -- the simulation is not the
        point of this workload).
    mode:
        ``"ok"`` (default, benign), ``"raise"`` (raise RuntimeError),
        ``"crash"`` (``os._exit`` -- the worker process dies without
        cleanup, like an OOM kill), or ``"hang"`` (sleep ``hang_s``
        before proceeding, tripping per-attempt timeouts).
    budget:
        How many trace-generation attempts misbehave before the
        workload starts succeeding.  ``0`` never misbehaves.
    token_dir, token:
        Directory (and per-cell label) for cross-process attempt claim
        files.  Empty ``token_dir`` with a non-zero budget means
        *every* attempt misbehaves.
    hang_s:
        Sleep duration of ``mode="hang"``.
    """

    name = "faulty"
    comm_pattern = "peer-to-peer"

    def __init__(
        self,
        n: int = 64,
        mode: str = "ok",
        budget: int = 0,
        token_dir: str = "",
        token: str = "cell",
        hang_s: float = 30.0,
    ) -> None:
        if mode not in ("ok", "raise", "crash", "hang"):
            raise ValueError(f"unknown failure mode: {mode!r}")
        if budget < 0:
            raise ValueError(f"budget must be >= 0: {budget}")
        self.n = max(int(n), 8)
        self.mode = mode
        self.budget = budget
        self.token_dir = token_dir
        self.token = token
        self.hang_s = hang_s

    # -- attempt accounting -----------------------------------------

    def _claim_attempt(self) -> int:
        """Atomically claim the next attempt slot (0-based) across
        processes; without a token dir every attempt is slot 0."""
        if not self.token_dir:
            return 0
        root = Path(self.token_dir)
        root.mkdir(parents=True, exist_ok=True)
        for slot in itertools.count():
            try:
                fd = os.open(
                    root / f"attempt-{self.token}-{slot}",
                    os.O_CREAT | os.O_EXCL | os.O_WRONLY,
                )
            except FileExistsError:
                continue
            os.close(fd)
            return slot

    def _misbehave(self) -> None:
        if self.mode == "ok" or self.budget == 0:
            return
        slot = self._claim_attempt()
        if self.token_dir and slot >= self.budget:
            return
        if self.mode == "raise":
            raise RuntimeError(
                f"injected failure (attempt {slot + 1}/{self.budget})"
            )
        if self.mode == "crash":
            # Die the way an OOM-killed or segfaulting worker dies: no
            # exception, no cleanup, no cache write.
            os._exit(CRASH_EXIT_CODE)
        if self.mode == "hang":
            time.sleep(self.hang_s)

    # -- workload contract ------------------------------------------

    def iter_phases(self, n_gpus: int, iterations: int = 3, seed: int = 7):
        # Misbehave when generation *starts* (the stream's first pull):
        # exactly where a real workload would OOM or wedge, whether the
        # cache materializes the trace or spills it while generating.
        self._misbehave()
        spec = StencilSpec(
            name=self.name,
            grid=(self.n, self.n),
            elem_bytes=8,
            halo_depth=1,
            flops_per_point=6.0,
            dram_bytes_per_point=16.0,
            precision="fp64",
        )
        return (yield from iter_stencil_phases(spec, n_gpus, iterations))
