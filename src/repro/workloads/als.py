"""ALS: alternating least squares matrix factorization (paper Sec. V).

Factorizes an rgg-like rating matrix into rank-``k`` user and item
factors.  ALS alternates two sub-iterations (paper Sec. V): fix the
item factors and re-solve every user factor, then fix the users and
re-solve every item factor.  The trace models each sub-iteration as one
bulk-synchronous phase: the owning GPU solves its factors and pushes
each updated factor vector (``k`` fp32 values) to *all* peer replicas
-- the programmer cannot cheaply know which peers' solves will touch a
given factor, so the P2P port broadcasts (the paper's all-to-all
pattern).  Consumers actually read only the factors referenced by their
local ratings, which gives the GPS comparison its subscription savings
and FinePack a non-zero "wasted bytes" wedge (paper Figs. 9/10).

Factors are solved in load-balanced order (owned rows sorted by rating
count), so the push stream is a 32-byte scatter -- the mid-granularity
point of the paper's Figure 2 efficiency curve.
"""

from __future__ import annotations

import numpy as np

from ..gpu.compute import KernelWork
from ..gpu.memory import MemorySpace
from ..trace.intervals import IntervalSet
from ..trace.stream import (
    DMATransfer,
    KernelPhase,
    RemoteStoreBatch,
)
from ..registry import workloads as _registry
from .base import MultiGPUWorkload, element_intervals, push_elements
from .datasets import bipartite_ratings, owner_of_vertex, partition_bounds


@_registry.register("als")
class ALSWorkload(MultiGPUWorkload):
    """Alternating least squares on an rgg-like rating matrix."""

    name = "als"
    comm_pattern = "all-to-all"

    def __init__(
        self,
        n_users: int = 16_000,
        n_items: int = 4_000,
        rank: int = 8,
        avg_ratings: int = 45,
    ) -> None:
        if rank <= 0:
            raise ValueError(f"rank must be positive, got {rank}")
        self.n_users = n_users
        self.n_items = n_items
        self.rank = rank
        self.avg_ratings = avg_ratings

    @property
    def factor_bytes(self) -> int:
        return self.rank * 4  # fp32 factors

    def iter_phases(self, n_gpus: int, iterations: int = 3, seed: int = 7):
        ratings = bipartite_ratings(
            self.n_users, self.n_items, self.avg_ratings, seed
        )
        ubounds = partition_bounds(self.n_users, n_gpus)
        ibounds = partition_bounds(self.n_items, n_gpus)
        memory = MemorySpace(n_gpus)
        ufac = memory.alloc_replicated("als.user", self.n_users * self.factor_bytes)
        ifac = memory.alloc_replicated("als.item", self.n_items * self.factor_bytes)

        k = self.rank
        fb = self.factor_bytes
        item_owner_of_rating = owner_of_vertex(
            np.repeat(np.arange(self.n_items), np.diff(ratings.item_indptr)),
            ibounds,
        )
        user_owner_of_rating = owner_of_vertex(
            np.repeat(np.arange(self.n_users), np.diff(ratings.user_indptr)),
            ubounds,
        )
        users_needed_by = {
            g: np.unique(ratings.user_ids[item_owner_of_rating == g])
            for g in range(n_gpus)
        }
        items_needed_by = {
            g: np.unique(ratings.item_ids[user_owner_of_rating == g])
            for g in range(n_gpus)
        }

        tie_break = np.random.default_rng(seed + 17)

        def sub_iteration(user_phase: bool) -> list[KernelPhase]:
            """One ALS half-step: solve users (or items), broadcast."""
            if user_phase:
                bounds, buf = ubounds, ufac
                ratings_of = user_owner_of_rating
                indptr = ratings.user_indptr
            else:
                bounds, buf = ibounds, ifac
                ratings_of = item_owner_of_rating
                indptr = ratings.item_indptr
            phases = []
            for g in range(n_gpus):
                lo, hi = int(bounds[g]), int(bounds[g + 1])
                owned = hi - lo
                n_ratings = int((ratings_of == g).sum())
                work = KernelWork(
                    # Normal-equation assembly (k^2 per rating) plus the
                    # k x k solve per factor.
                    flops=n_ratings * k * k + owned * (k**3) / 3.0,
                    # Popular counterpart factors are cache-hot; the
                    # DRAM stream is ids+values per rating plus the
                    # owned factor read-modify-write.
                    dram_bytes=n_ratings * 12.0 + owned * 2.0 * fb,
                    precision="fp32",
                )
                ids = np.arange(lo, hi, dtype=np.int64)
                # Load-balanced solve order: by descending rating count,
                # equal-cost rows in arbitrary (scheduler) order -- so
                # the push stream is a scatter, not an ascending sweep.
                ids = tie_break.permutation(ids)
                costs = np.diff(indptr)[ids]
                ids = ids[np.argsort(-costs, kind="stable")]
                batches = []
                dma = []
                for d in range(n_gpus):
                    if d == g:
                        continue
                    batches.append(push_elements(ids, fb, d, buf.replicas[d]))
                    dma.append(
                        DMATransfer(
                            dst=d,
                            dst_addr=buf.replicas[d] + lo * fb,
                            nbytes=owned * fb,
                        )
                    )
                # During this phase the GPU reads the counterpart
                # factors its ratings reference (pushed last phase).
                if user_phase:
                    reads = element_intervals(
                        items_needed_by[g], fb, ifac.replicas[g]
                    )
                else:
                    reads = element_intervals(
                        users_needed_by[g], fb, ufac.replicas[g]
                    )
                phases.append(
                    KernelPhase(
                        gpu=g,
                        work=work,
                        stores=RemoteStoreBatch.concat(batches),
                        reads=reads,
                        dma=dma,
                    )
                )
            return phases

        user_phases = sub_iteration(user_phase=True)
        item_phases = sub_iteration(user_phase=False)
        for i in range(iterations):
            for p in user_phases if i % 2 == 0 else item_phases:
                yield i, p
        return {
            "n_users": self.n_users,
            "n_items": self.n_items,
            "rank": self.rank,
            "nnz": ratings.nnz,
            "comm_pattern": self.comm_pattern,
        }
