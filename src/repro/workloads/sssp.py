"""SSSP: Bellman-Ford single-source shortest paths (paper Sec. V).

The synchronous Bellman-Ford variant on an indochina-like power-law web
graph.  Vertices are range-partitioned and each GPU *owns* the
distances of its range: every round it relaxes the in-edges of its
owned vertices against its local replica of the distance vector, then
makes each *improved* distance visible to the peers whose relaxations
reference it -- one 8-byte store per (vertex, referencing peer), in the
interleaved order the CTAs discover improvements.  Heavy-tailed edges
reference hub vertices from every partition, so the communication
pattern is many-to-many (paper Sec. V).

The memcpy port cannot know which distances improved in a round, so it
copies each owner's whole contiguous distance block to every peer --
the over-transfer that dominates DMA's wasted bytes in Figure 10.

The trace records the algorithm's genuine dynamics: the relaxation
wavefront grows over the first hops, so traffic differs per iteration.
"""

from __future__ import annotations

import numpy as np

from ..gpu.compute import KernelWork
from ..gpu.memory import MemorySpace
from ..trace.intervals import IntervalSet
from ..trace.stream import (
    DMATransfer,
    KernelPhase,
    RemoteStoreBatch,
)
from ..registry import workloads as _registry
from .base import MultiGPUWorkload, element_intervals, interleave, push_elements
from .datasets import owner_of_vertex, partition_bounds, powerlaw_graph


@_registry.register("sssp")
class SSSPWorkload(MultiGPUWorkload):
    """Synchronous Bellman-Ford on a power-law (indochina-like) graph."""

    name = "sssp"
    comm_pattern = "many-to-many"

    def __init__(
        self,
        n: int = 120_000,
        avg_degree: int = 12,
        max_weight: int = 1_000_000,
        warmup_iterations: int = 4,
        source: int = 0,
    ) -> None:
        if max_weight <= 1:
            raise ValueError(f"max_weight must exceed 1, got {max_weight}")
        self.n = n
        self.avg_degree = avg_degree
        self.max_weight = max_weight
        self.warmup_iterations = warmup_iterations
        self.source = source

    def iter_phases(self, n_gpus: int, iterations: int = 3, seed: int = 7):
        graph = powerlaw_graph(self.n, self.avg_degree, seed=seed)
        rng = np.random.default_rng(seed + 1)
        weights = rng.integers(1, self.max_weight, size=graph.nnz).astype(np.int64)
        # Edge (u -> v): relaxing v reads dist[u]; the owner of v is the
        # consumer of u, the owner of u the producer.
        src = np.repeat(np.arange(self.n), graph.out_degree())
        bounds = partition_bounds(self.n, n_gpus)
        producer = owner_of_vertex(src, bounds)
        consumer = owner_of_vertex(graph.dst, bounds)
        cross = producer != consumer

        memory = MemorySpace(n_gpus)
        dbuf = memory.alloc_replicated("sssp.dist", self.n * 8)

        # Which source vertices each GPU's relaxations reference.
        needs: dict[tuple[int, int], np.ndarray] = {}
        for g in range(n_gpus):
            for d in range(n_gpus):
                if d == g:
                    continue
                needs[(g, d)] = np.unique(src[cross & (producer == g) & (consumer == d)])

        edges_per_consumer = np.zeros(n_gpus, dtype=np.int64)
        np.add.at(edges_per_consumer, consumer, 1)

        inf = np.iinfo(np.int64).max // 4
        dist = np.full(self.n, inf, dtype=np.int64)
        dist[self.source] = 0

        total_rounds = self.warmup_iterations + iterations
        for rnd in range(total_rounds):
            # Synchronous relaxation against the previous round's dist.
            candidate = dist[src] + weights
            improving = candidate < dist[graph.dst]
            improved = np.unique(graph.dst[improving])
            record = rnd >= self.warmup_iterations
            if record:
                improved_mask = np.zeros(self.n, dtype=bool)
                improved_mask[improved] = True
                for g in range(n_gpus):
                    e_g = int(edges_per_consumer[g])
                    owned = int(bounds[g + 1] - bounds[g])
                    work = KernelWork(
                        flops=3.0 * e_g,
                        # Edge weight + target index per edge; distance
                        # reads of hub vertices are cache-resident.
                        dram_bytes=14.0 * e_g + 8.0 * owned,
                        precision="fp64",
                    )
                    batches = []
                    dma = []
                    for d in range(n_gpus):
                        if d == g:
                            continue
                        referenced = needs[(g, d)]
                        pushed = referenced[improved_mask[referenced]]
                        if pushed.size == 0:
                            continue
                        # CTAs discover improvements interleaved, so the
                        # push stream scatters across the owned range.
                        batches.append(
                            push_elements(
                                interleave(pushed, ways=64), 8, d, dbuf.replicas[d]
                            )
                        )
                        # The memcpy port copies the whole owned block:
                        # it cannot know which distances improved.
                        dma.append(
                            DMATransfer(
                                dst=d,
                                dst_addr=dbuf.replicas[d] + int(bounds[g]) * 8,
                                nbytes=owned * 8,
                            )
                        )
                    # This GPU's relaxations read the source distances
                    # its in-edges reference.
                    reads = IntervalSet.empty()
                    ref_parts = [
                        needs[(o, g)] for o in range(n_gpus) if o != g
                    ]
                    ref_parts = [r for r in ref_parts if r.size]
                    if ref_parts:
                        reads = element_intervals(
                            np.unique(np.concatenate(ref_parts)),
                            8,
                            dbuf.replicas[g],
                        )
                    # Rounds stream as they are relaxed; the wavefront
                    # state (dist) is all that generation retains.
                    yield rnd - self.warmup_iterations, KernelPhase(
                        gpu=g,
                        work=work,
                        stores=RemoteStoreBatch.concat(batches),
                        reads=reads,
                        dma=dma,
                    )
            # Commit this round's relaxations.
            np.minimum.at(dist, graph.dst[improving], candidate[improving])

        # Metadata summarizes the finished run, so it rides the
        # generator's return value (captured after the last phase).
        reached = int((dist < inf).sum())
        return {
            "n": self.n,
            "nnz": graph.nnz,
            "reached": reached,
            "comm_pattern": self.comm_pattern,
        }
