"""CT: model-based iterative reconstruction (MBIR, paper Sec. V).

Models the alternating-dual-updates MBIR structure of the GE Veo-class
reconstruction the paper studies: the projection set is partitioned
across GPUs, each iteration every GPU back-projects its views and
pushes voxel corrections into the peer replicas of the (large) volume
-- an all-to-all pattern.

Two properties the paper highlights are reproduced structurally:

* Corrections from interleaved rays land all over a multi-GB volume, so
  *consecutive* stores exhibit minimal spatial locality: FinePack's
  aggregation window keeps missing and its packets carry few stores
  (the Figure 11 outlier), leaving FinePack little advantage.
* Reconstruction is compute-dominated (thousands of flops per
  correction), so the application scales well under every paradigm
  (Fig. 9) despite the inefficient stores.

The bulk-DMA port uses software aggregation: corrections are staged
into a (value, voxel-index) buffer and shipped with one copy per peer
-- the realistic way a memcpy programmer handles scattered updates, at
the cost of doubling each correction's payload.
"""

from __future__ import annotations

import numpy as np

from ..gpu.compute import KernelWork
from ..gpu.memory import MemorySpace
from ..trace.intervals import IntervalSet
from ..trace.stream import (
    DMATransfer,
    KernelPhase,
    RemoteStoreBatch,
)
from ..registry import workloads as _registry
from .base import MultiGPUWorkload, contiguous_interval, push_elements
from .datasets import partition_bounds


@_registry.register("ct")
class CTWorkload(MultiGPUWorkload):
    """MBIR-style CT reconstruction with scattered voxel corrections."""

    name = "ct"
    comm_pattern = "all-to-all"

    def __init__(
        self,
        volume_voxels: int = 1_500_000_000,
        total_corrections: int = 96_000,
        cluster: int = 6,
        flops_per_correction: float = 4_000.0,
        dram_bytes_per_correction: float = 2_200.0,
    ) -> None:
        if cluster <= 0 or total_corrections <= 0:
            raise ValueError("cluster and total_corrections must be positive")
        self.volume_voxels = volume_voxels
        self.total_corrections = total_corrections
        self.cluster = cluster
        self.flops_per_correction = flops_per_correction
        self.dram_bytes_per_correction = dram_bytes_per_correction

    def _targets(self, rng: np.random.Generator, count: int) -> np.ndarray:
        """Voxel indices one GPU corrects, in ray-interleaved order.

        Rays produce short clusters of adjacent voxels, but rays are
        processed interleaved across warps, so consecutive clusters
        jump across the whole volume (minimal spatial locality in issue
        order -- deliberately *not* sorted).
        """
        n_clusters = max(1, count // self.cluster)
        hi = max(2, self.volume_voxels - self.cluster)
        starts = rng.integers(0, hi, n_clusters)
        offsets = np.arange(self.cluster)
        return (starts[:, None] + offsets[None, :]).ravel()

    def iter_phases(self, n_gpus: int, iterations: int = 3, seed: int = 7):
        rng = np.random.default_rng(seed)
        bounds = partition_bounds(self.volume_voxels, n_gpus)
        memory = MemorySpace(n_gpus)
        # fp32 voxel volume, one replica per GPU (multi-GB but virtual).
        vol = memory.alloc_replicated("ct.volume", self.volume_voxels * 4)
        # Staging buffers for the software-aggregated DMA port: one per
        # ordered (src, dst) pair, sized for a full correction set.
        per_gpu = self.total_corrections // n_gpus
        staging = {
            (g, d): memory.alloc_local(f"ct.stage.{g}->{d}", per_gpu * 8, gpu=d)
            for g in range(n_gpus)
            for d in range(n_gpus)
            if d != g
        }

        # Each iteration's corrections are fresh RNG draws, so phases
        # stream one at a time: generation never holds more than one
        # iteration's arrays (the constant-memory case).
        for i in range(iterations):
            for g in range(n_gpus):
                targets = self._targets(rng, per_gpu)
                owners = np.searchsorted(bounds, targets, side="right") - 1
                work = KernelWork(
                    flops=targets.size * self.flops_per_correction,
                    dram_bytes=targets.size * self.dram_bytes_per_correction,
                    precision="fp32",
                )
                batches = []
                dma = []
                for d in range(n_gpus):
                    if d == g:
                        continue
                    dst_targets = targets[owners == d]
                    if dst_targets.size == 0:
                        continue
                    batches.append(
                        push_elements(dst_targets, 4, d, vol.replicas[d])
                    )
                    # Software-aggregated copy: (value, index) pairs.
                    dma.append(
                        DMATransfer(
                            dst=d,
                            dst_addr=staging[(g, d)],
                            nbytes=int(dst_targets.size) * 8,
                            aggregated=True,
                        )
                    )
                # The regularization pass reads the whole owned slab, so
                # every correction landing in this GPU's replica (and
                # any staged aggregation buffer) is consumed.
                reads = contiguous_interval(
                    vol.replicas[g] + int(bounds[g]) * 4,
                    (int(bounds[g + 1]) - int(bounds[g])) * 4,
                )
                for (src, dst), addr in staging.items():
                    if dst == g:
                        reads = reads.union(
                            contiguous_interval(addr, per_gpu * 8)
                        )
                yield i, KernelPhase(
                    gpu=g,
                    work=work,
                    stores=RemoteStoreBatch.concat(batches),
                    reads=reads,
                    dma=dma,
                )

        return {
            "volume_voxels": self.volume_voxels,
            "total_corrections": self.total_corrections,
            "comm_pattern": self.comm_pattern,
        }
