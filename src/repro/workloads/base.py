"""Workload framework: base class and trace-building helpers.

A workload runs its real algorithm partitioned over N virtual GPUs and
records what each GPU's kernels would do: compute work, remote stores
(at warp/L1-coalesced transaction granularity), consumer read sets, and
the bulk-copy plan of a memcpy-paradigm port.  The same object produces
the 1-GPU baseline trace (no remote traffic, full problem per kernel).
"""

from __future__ import annotations

import abc

import numpy as np

from ..gpu.coalescer import coalesce_stream
from ..gpu.memory import MemorySpace, ReplicatedBuffer
from ..trace.columns import (
    DEFAULT_CHUNK_OPS,
    ColumnBlockBuilder,
    blocks_to_trace,
    drain_blocks,
)
from ..trace.intervals import IntervalSet
from ..trace.stream import RemoteStoreBatch, WorkloadTrace


class MultiGPUWorkload(abc.ABC):
    """Base class for the eight applications of paper Sec. V.

    The native emission interface is :meth:`iter_phases`: a generator
    yielding ``(iteration, KernelPhase)`` pairs iteration-major (every
    iteration exactly one phase per GPU, in GPU order) and *returning*
    the trace metadata dict -- metadata may summarize the finished run
    (SSSP's reached count), so it only exists once the stream ends.
    :meth:`iter_columns` packs that stream into bounded
    :class:`~repro.trace.columns.ColumnBlock` chunks for streaming
    consumers (the spill-while-generating trace cache), and
    :meth:`generate_trace` is a thin adapter assembling the blocks into
    a whole :class:`WorkloadTrace`.

    Subclasses implement :meth:`iter_phases`; legacy subclasses that
    override only :meth:`generate_trace` keep working -- the default
    :meth:`iter_phases` falls back to replaying the materialized trace.
    """

    #: Short identifier used in reports ("jacobi", "sssp", ...).
    name: str = "abstract"
    #: The paper's characterization of the communication pattern.
    comm_pattern: str = "unknown"

    def iter_phases(self, n_gpus: int, iterations: int = 3, seed: int = 7):
        """Yield ``(iteration, KernelPhase)``; return the metadata dict.

        Default implementation streams a materialized
        :meth:`generate_trace` result, for subclasses that only
        override the legacy whole-trace method.
        """
        if type(self).generate_trace is MultiGPUWorkload.generate_trace:
            raise TypeError(
                f"{type(self).__name__} must override iter_phases() "
                f"or generate_trace()"
            )
        trace = self.generate_trace(n_gpus, iterations=iterations, seed=seed)
        for i, it in enumerate(trace.iterations):
            for p in it.phases:
                yield i, p
        return dict(trace.metadata)

    def iter_columns(
        self,
        n_gpus: int,
        iterations: int = 3,
        seed: int = 7,
        chunk_ops: int = DEFAULT_CHUNK_OPS,
    ):
        """Yield :class:`ColumnBlock` chunks; return the metadata dict.

        The streamed chunks carry exactly the phases
        :meth:`iter_phases` emits -- chunking never splits a phase, so
        any chunk size reassembles to the identical trace (the
        property the trace cache's spill-while-generating path and the
        Hypothesis identity test both rely on).
        """
        builder = ColumnBlockBuilder(chunk_ops)
        gen = self.iter_phases(n_gpus, iterations=iterations, seed=seed)
        while True:
            try:
                iteration, phase = next(gen)
            except StopIteration as stop:
                metadata = dict(stop.value or {})
                break
            block = builder.add(iteration, phase)
            if block is not None:
                yield block
        tail = builder.finish()
        if tail is not None:
            yield tail
        return metadata

    def generate_trace(
        self, n_gpus: int, iterations: int = 3, seed: int = 7
    ) -> WorkloadTrace:
        """Execute the workload and return its whole trace (an adapter
        over :meth:`iter_columns`)."""
        blocks, metadata = drain_blocks(
            self.iter_columns(n_gpus, iterations=iterations, seed=seed)
        )
        return blocks_to_trace(self.name, n_gpus, blocks, metadata)

    def spec_params(self) -> dict:
        """Constructor kwargs that recreate this instance.

        The run layer (:class:`repro.run.RunSpec`) identifies a
        workload by registry name plus these parameters, so traces can
        be content-addressed and runs rebuilt in worker processes.  The
        default introspects ``__init__`` and reads the same-named
        attributes; workloads that transform an argument before storing
        it must keep the original under the parameter's name (see
        ``PagerankWorkload.band_fraction``) or override this method.
        """
        import inspect

        params: dict = {}
        for p in inspect.signature(type(self).__init__).parameters.values():
            if p.name == "self" or p.kind in (
                inspect.Parameter.VAR_POSITIONAL,
                inspect.Parameter.VAR_KEYWORD,
            ):
                continue
            if not hasattr(self, p.name):
                raise TypeError(
                    f"{type(self).__name__} does not store constructor "
                    f"parameter {p.name!r}; override spec_params()"
                )
            params[p.name] = getattr(self, p.name)
        return params

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} name={self.name!r} pattern={self.comm_pattern!r}>"


def push_elements(
    element_ids: np.ndarray,
    elem_bytes: int,
    dst_gpu: int,
    dst_base: int,
    warp_size: int = 32,
) -> RemoteStoreBatch:
    """Build the store batch for pushing elements into a peer replica.

    ``element_ids`` are indices into the destination buffer, in the
    order the kernel's threads emit them (one element per thread).  The
    thread-level stream is passed through the warp/L1 coalescer, so
    adjacent element ids merge into wider transactions exactly as the
    hardware would merge them.
    """
    element_ids = np.asarray(element_ids, dtype=np.int64)
    if element_ids.size == 0:
        return RemoteStoreBatch.empty()
    addrs = dst_base + element_ids * elem_bytes
    sizes = np.full(element_ids.size, elem_bytes, dtype=np.int64)
    tx_addrs, tx_sizes, _ = coalesce_stream(addrs, sizes, warp_size=warp_size)
    dsts = np.full(tx_addrs.size, dst_gpu, dtype=np.int64)
    return RemoteStoreBatch(tx_addrs, tx_sizes, dsts)


def interleave(element_ids: np.ndarray, ways: int = 32) -> np.ndarray:
    """Reorder a push stream as ``ways`` round-robin CTA streams.

    GPU thread blocks are scheduled dynamically, so the global store
    order interleaves many CTAs' streams: elements that are adjacent in
    index space end up far apart in *issue* order.  This is what keeps
    irregular pushes at their natural 4-8 B granularity instead of
    artificially merging in the L1 because a trace was generated in
    sorted order.
    """
    element_ids = np.asarray(element_ids, dtype=np.int64)
    if ways <= 1 or element_ids.size <= ways:
        return element_ids
    pad = (-element_ids.size) % ways
    padded = np.concatenate([element_ids, np.full(pad, -1, dtype=np.int64)])
    out = padded.reshape(-1, ways).T.ravel()
    return out[out >= 0]


def element_intervals(
    element_ids: np.ndarray, elem_bytes: int, base: int
) -> IntervalSet:
    """Byte intervals covering the given elements of a buffer."""
    element_ids = np.asarray(element_ids, dtype=np.int64)
    if element_ids.size == 0:
        return IntervalSet.empty()
    starts = base + element_ids * elem_bytes
    return IntervalSet.from_ranges(starts, np.full(element_ids.size, elem_bytes))


def contiguous_interval(base: int, nbytes: int) -> IntervalSet:
    return IntervalSet.from_ranges([base], [nbytes])


def replicate(
    memory: MemorySpace, name: str, nbytes: int
) -> ReplicatedBuffer:
    """Allocate one replica of a buffer on every GPU."""
    return memory.alloc_replicated(name, nbytes)
