"""Collective-communication workloads (distributed-AI traffic).

The paper's eight HPC applications exchange *algorithm-shaped* traffic;
the traffic that dominates modern multi-GPU systems is collective
communication from distributed training -- ring/tree all-reduce over
gradient buckets, all-gather/all-to-all from tensor and expert
parallelism, and point-to-point activation transfers between pipeline
stages.  This module brings that scenario space into the simulator
without touching the replay machinery: each collective first builds an
explicit :class:`CollectiveSchedule` -- the rank/step/peer/chunk
structure a real communication library would execute -- and then lowers
it onto the existing trace interface, one bulk-synchronous iteration
per schedule step.

The schedule layer is deliberately separate from the trace lowering so
tests can assert algebraic properties (per-step byte conservation, no
self-sends, the ring all-reduce ``2*(N-1)/N * size`` wire total)
directly on the data structure, independent of the simulator.

Granularity is configurable down to the fine-grained stores FinePack
targets: ``message_bytes`` sets the per-rank collective payload,
``chunk_bytes`` the pipelining granularity (which is also the bulk-DMA
call granularity), ``elem_bytes`` the element size, and
``fine_grained=True`` interleaves the store stream across CTAs so
elements stay at their natural 4-8 B size instead of coalescing to
128 B lines -- the regime where FinePack-vs-DMA conclusions get stress
tested at scale.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field

import numpy as np

from ..gpu.compute import KernelWork
from ..gpu.memory import MemorySpace
from ..registry import workloads as _registry
from ..trace.intervals import IntervalSet
from ..trace.stream import (
    DMATransfer,
    KernelPhase,
    RemoteStoreBatch,
)
from .base import MultiGPUWorkload, interleave, push_elements


@dataclass(frozen=True, slots=True)
class CollectiveTransfer:
    """One chunk sent from ``src`` to ``dst`` during schedule step ``step``.

    ``dst_offset`` locates the chunk inside the collective buffer on the
    destination rank (every rank's replica of the buffer has identical
    layout, the way NCCL-style libraries register symmetric buffers).
    """

    step: int
    src: int
    dst: int
    nbytes: int
    dst_offset: int

    def __post_init__(self) -> None:
        if self.src == self.dst:
            raise ValueError(f"self-send in schedule: rank {self.src}")
        if self.nbytes <= 0:
            raise ValueError(f"transfer bytes must be positive: {self.nbytes}")
        if self.step < 0 or self.dst_offset < 0:
            raise ValueError("step and dst_offset must be non-negative")


@dataclass(frozen=True)
class CollectiveSchedule:
    """The full rank/step/peer structure of one collective invocation.

    Attributes
    ----------
    op:
        Operation name ("allreduce_ring", "alltoall", ...).
    n_ranks:
        Participating ranks (== GPUs).
    nbytes:
        The per-rank collective payload after element/rank padding --
        the ``size`` in the closed-form traffic formulas.
    buffer_bytes:
        Size of the symmetric buffer every ``dst_offset`` indexes into.
    transfers:
        All chunk sends, ordered by (step, src, dst_offset).
    reduce_steps:
        Steps whose received data is combined arithmetically (an add
        per element) rather than just forwarded/copied; drives the
        roofline work attached to each lowered phase.
    """

    op: str
    n_ranks: int
    nbytes: int
    buffer_bytes: int
    transfers: tuple[CollectiveTransfer, ...]
    reduce_steps: frozenset[int] = frozenset()

    def __post_init__(self) -> None:
        if self.n_ranks < 2:
            raise ValueError(f"a collective needs >= 2 ranks: {self.n_ranks}")
        steps = [t.step for t in self.transfers]
        if steps != sorted(steps):
            raise ValueError(f"{self.op}: transfers must be step-ordered")
        for t in self.transfers:
            if not (0 <= t.src < self.n_ranks and 0 <= t.dst < self.n_ranks):
                raise ValueError(f"{self.op}: rank out of range in {t}")
            if t.dst_offset + t.nbytes > self.buffer_bytes:
                raise ValueError(
                    f"{self.op}: transfer exceeds buffer: {t} vs "
                    f"{self.buffer_bytes} B"
                )

    @property
    def n_steps(self) -> int:
        return max((t.step for t in self.transfers), default=-1) + 1

    def outgoing(self, rank: int, step: int) -> list[CollectiveTransfer]:
        return [t for t in self.transfers if t.src == rank and t.step == step]

    def incoming(self, rank: int, step: int) -> list[CollectiveTransfer]:
        return [t for t in self.transfers if t.dst == rank and t.step == step]

    def sent_bytes(self, rank: int | None = None, step: int | None = None) -> int:
        """Total bytes sent, optionally filtered by rank and/or step."""
        return sum(
            t.nbytes
            for t in self.transfers
            if (rank is None or t.src == rank)
            and (step is None or t.step == step)
        )

    def received_bytes(
        self, rank: int | None = None, step: int | None = None
    ) -> int:
        return sum(
            t.nbytes
            for t in self.transfers
            if (rank is None or t.dst == rank)
            and (step is None or t.step == step)
        )

    def total_bytes(self) -> int:
        return sum(t.nbytes for t in self.transfers)


def _padded_elems(message_bytes: int, elem_bytes: int, multiple: int) -> int:
    """Element count covering ``message_bytes``, padded up to a multiple.

    Real libraries pad the last chunk; padding the element count keeps
    every chunk equal-sized so the closed-form traffic totals hold
    exactly (tested against ``2*(N-1)/N * size``).
    """
    elems = -(-message_bytes // elem_bytes)
    return -(-elems // multiple) * multiple


def _chunks(offset: int, nbytes: int, chunk_bytes: int):
    """Split ``[offset, offset + nbytes)`` into chunk-sized pieces."""
    pos = offset
    end = offset + nbytes
    while pos < end:
        size = min(chunk_bytes, end - pos)
        yield pos, size
        pos += size


def _sorted_schedule(transfers: list[CollectiveTransfer]):
    return tuple(sorted(transfers, key=lambda t: (t.step, t.src, t.dst_offset)))


def ring_allreduce_schedule(
    n_ranks: int,
    message_bytes: int,
    chunk_bytes: int = 16_384,
    elem_bytes: int = 4,
) -> CollectiveSchedule:
    """Ring all-reduce: reduce-scatter then all-gather, 2*(N-1) steps.

    The message is split into one chunk per rank.  During reduce-scatter
    step ``s`` rank ``r`` sends chunk ``(r - s) mod N`` to its ring
    successor, accumulating partial sums; after ``N-1`` steps rank ``r``
    owns the fully-reduced chunk ``(r + 1) mod N``, which the all-gather
    phase circulates for another ``N-1`` steps.  Per-rank wire traffic
    is exactly ``2*(N-1)/N * size``.
    """
    n = n_ranks
    elems = _padded_elems(message_bytes, elem_bytes, n)
    size = elems * elem_bytes
    per_rank = size // n
    transfers: list[CollectiveTransfer] = []
    for s in range(n - 1):  # reduce-scatter
        for r in range(n):
            chunk = (r - s) % n
            for off, nb in _chunks(chunk * per_rank, per_rank, chunk_bytes):
                transfers.append(
                    CollectiveTransfer(s, r, (r + 1) % n, nb, off)
                )
    for s in range(n - 1):  # all-gather
        for r in range(n):
            chunk = (r + 1 - s) % n
            for off, nb in _chunks(chunk * per_rank, per_rank, chunk_bytes):
                transfers.append(
                    CollectiveTransfer(n - 1 + s, r, (r + 1) % n, nb, off)
                )
    return CollectiveSchedule(
        op="allreduce_ring",
        n_ranks=n,
        nbytes=size,
        buffer_bytes=size,
        transfers=_sorted_schedule(transfers),
        reduce_steps=frozenset(range(n - 1)),
    )


def tree_allreduce_schedule(
    n_ranks: int,
    message_bytes: int,
    chunk_bytes: int = 16_384,
    elem_bytes: int = 4,
) -> CollectiveSchedule:
    """Binomial-tree all-reduce: reduce to rank 0, then broadcast back.

    During reduce step ``s`` (distance ``d = 2**s``) every rank with
    lowest set bit ``d`` sends its full partial sum to ``rank - d``;
    the broadcast phase mirrors the reduce phase in reverse.  Works for
    any rank count, not just powers of two.
    """
    n = n_ranks
    elems = _padded_elems(message_bytes, elem_bytes, 1)
    size = elems * elem_bytes
    reduce_pairs: list[list[tuple[int, int]]] = []
    d, step = 1, 0
    while d < n:
        pairs = [(r, r - d) for r in range(n) if r % (2 * d) == d]
        reduce_pairs.append(pairs)
        d *= 2
        step += 1
    transfers: list[CollectiveTransfer] = []
    for s, pairs in enumerate(reduce_pairs):
        for src, dst in pairs:
            for off, nb in _chunks(0, size, chunk_bytes):
                transfers.append(CollectiveTransfer(s, src, dst, nb, off))
    n_reduce = len(reduce_pairs)
    for i, pairs in enumerate(reversed(reduce_pairs)):  # broadcast mirror
        for src, dst in pairs:
            for off, nb in _chunks(0, size, chunk_bytes):
                transfers.append(
                    CollectiveTransfer(n_reduce + i, dst, src, nb, off)
                )
    return CollectiveSchedule(
        op="allreduce_tree",
        n_ranks=n,
        nbytes=size,
        buffer_bytes=size,
        transfers=_sorted_schedule(transfers),
        reduce_steps=frozenset(range(n_reduce)),
    )


def allgather_schedule(
    n_ranks: int,
    message_bytes: int,
    chunk_bytes: int = 16_384,
    elem_bytes: int = 4,
) -> CollectiveSchedule:
    """Ring all-gather: every rank's contribution circulates N-1 steps.

    Rank ``r`` contributes ``size`` bytes at slot ``r`` of an
    ``N * size`` output buffer; at step ``s`` it forwards slot
    ``(r - s) mod N`` to its successor.
    """
    n = n_ranks
    elems = _padded_elems(message_bytes, elem_bytes, 1)
    size = elems * elem_bytes
    transfers: list[CollectiveTransfer] = []
    for s in range(n - 1):
        for r in range(n):
            slot = (r - s) % n
            for off, nb in _chunks(slot * size, size, chunk_bytes):
                transfers.append(
                    CollectiveTransfer(s, r, (r + 1) % n, nb, off)
                )
    return CollectiveSchedule(
        op="allgather",
        n_ranks=n,
        nbytes=size,
        buffer_bytes=n * size,
        transfers=_sorted_schedule(transfers),
    )


def alltoall_schedule(
    n_ranks: int,
    message_bytes: int,
    chunk_bytes: int = 16_384,
    elem_bytes: int = 4,
) -> CollectiveSchedule:
    """Pairwise-exchange all-to-all: N-1 steps, peer ``(r + s) mod N``.

    Every rank holds one ``size/N`` slice for every peer; at step ``s``
    (``s`` in ``1..N-1``) rank ``r`` exchanges slices with rank
    ``(r + s) mod N``, landing its slice at slot ``r`` of the
    destination's buffer -- the congestion-avoiding schedule MPI and
    expert-parallel dispatch layers use.
    """
    n = n_ranks
    elems = _padded_elems(message_bytes, elem_bytes, n)
    size = elems * elem_bytes
    slice_bytes = size // n
    transfers: list[CollectiveTransfer] = []
    for s in range(1, n):
        for r in range(n):
            dst = (r + s) % n
            for off, nb in _chunks(r * slice_bytes, slice_bytes, chunk_bytes):
                transfers.append(CollectiveTransfer(s - 1, r, dst, nb, off))
    return CollectiveSchedule(
        op="alltoall",
        n_ranks=n,
        nbytes=size,
        buffer_bytes=size,
        transfers=_sorted_schedule(transfers),
    )


def pipeline_schedule(
    n_ranks: int,
    message_bytes: int,
    microbatches: int = 4,
    chunk_bytes: int = 16_384,
    elem_bytes: int = 4,
) -> CollectiveSchedule:
    """Pipeline-parallel stage-to-stage traffic: forward then backward.

    Ranks are pipeline stages.  For each of ``microbatches`` forward
    steps every stage but the last sends its activations (``size``
    bytes) downstream; the backward phase sends gradients upstream.
    The steady-state schedule (all stages active every step) models the
    1F1B regime rather than the fill/drain ramps.
    """
    n = n_ranks
    elems = _padded_elems(message_bytes, elem_bytes, 1)
    size = elems * elem_bytes
    if microbatches < 1:
        raise ValueError(f"microbatches must be >= 1: {microbatches}")
    transfers: list[CollectiveTransfer] = []
    for m in range(microbatches):  # forward: activations downstream
        for r in range(n - 1):
            for off, nb in _chunks(0, size, chunk_bytes):
                transfers.append(CollectiveTransfer(m, r, r + 1, nb, off))
    for m in range(microbatches):  # backward: gradients upstream
        for r in range(1, n):
            for off, nb in _chunks(0, size, chunk_bytes):
                transfers.append(
                    CollectiveTransfer(microbatches + m, r, r - 1, nb, off)
                )
    return CollectiveSchedule(
        op="pipeline",
        n_ranks=n,
        nbytes=size,
        buffer_bytes=size,
        transfers=_sorted_schedule(transfers),
    )


class CollectiveWorkload(MultiGPUWorkload):
    """Base class lowering a :class:`CollectiveSchedule` onto the trace.

    Each schedule step becomes one bulk-synchronous iteration: the
    dependency structure of ring/tree algorithms (step ``s+1`` consumes
    what step ``s`` delivered) maps exactly onto the simulator's
    produce-in-``k``/consume-in-``k+1`` contract, so the useful-byte
    classification is meaningful -- everything received is read by the
    next step's kernel.  One requested trace ``iteration`` is one full
    collective invocation (one gradient bucket / microbatch group).
    """

    comm_pattern = "collective"

    def __init__(
        self,
        message_bytes: int = 65_536,
        chunk_bytes: int = 16_384,
        elem_bytes: int = 4,
        fine_grained: bool = False,
    ) -> None:
        if message_bytes <= 0:
            raise ValueError(f"message_bytes must be positive: {message_bytes}")
        if chunk_bytes <= 0:
            raise ValueError(f"chunk_bytes must be positive: {chunk_bytes}")
        if elem_bytes not in (1, 2, 4, 8):
            raise ValueError(f"elem_bytes must be 1/2/4/8: {elem_bytes}")
        self.message_bytes = message_bytes
        self.chunk_bytes = chunk_bytes
        self.elem_bytes = elem_bytes
        self.fine_grained = fine_grained

    @abc.abstractmethod
    def build_schedule(self, n_ranks: int) -> CollectiveSchedule:
        """The rank/step/peer schedule for ``n_ranks`` participants."""

    # -- trace lowering ---------------------------------------------

    def _phase_work(
        self, schedule: CollectiveSchedule, rank: int, step: int
    ) -> KernelWork:
        """Roofline work of one step: combine what the previous step
        delivered, stage what this step sends."""
        prev = (step - 1) % schedule.n_steps
        recv = schedule.received_bytes(rank, prev)
        sent = schedule.sent_bytes(rank, step)
        reducing = prev in schedule.reduce_steps
        return KernelWork(
            flops=float(recv // self.elem_bytes) if reducing else 0.0,
            dram_bytes=2.0 * sent + (3.0 if reducing else 2.0) * recv,
            precision="fp32" if self.elem_bytes <= 4 else "fp64",
        )

    def iter_phases(self, n_gpus: int, iterations: int = 3, seed: int = 7):
        if iterations <= 0:
            raise ValueError("iterations must be positive")
        if n_gpus == 1:
            return (yield from self._iter_single_gpu(iterations))
        schedule = self.build_schedule(n_gpus)
        memory = MemorySpace(n_gpus)
        buf = memory.alloc_replicated(f"{self.name}.buf", schedule.buffer_bytes)
        eb = self.elem_bytes

        step_phases: list[list[KernelPhase]] = []
        for step in range(schedule.n_steps):
            phases: list[KernelPhase] = []
            for rank in range(n_gpus):
                batches: list[RemoteStoreBatch] = []
                dma: list[DMATransfer] = []
                for tr in schedule.outgoing(rank, step):
                    first = tr.dst_offset // eb
                    elems = np.arange(
                        first, first + tr.nbytes // eb, dtype=np.int64
                    )
                    if self.fine_grained:
                        # Dynamic CTA scheduling scatters issue order, so
                        # stores stay at element granularity (cf.
                        # pagerank's per-edge pushes).
                        elems = interleave(elems, ways=32)
                    batches.append(
                        push_elements(elems, eb, tr.dst, buf.replicas[tr.dst])
                    )
                    dma.append(
                        DMATransfer(
                            dst=tr.dst,
                            dst_addr=buf.replicas[tr.dst] + tr.dst_offset,
                            nbytes=tr.nbytes,
                        )
                    )
                # This step's kernel consumes what the previous step
                # delivered (step 0 consumes the final step's output:
                # the application reading the finished collective).
                prev = (step - 1) % schedule.n_steps
                received = schedule.incoming(rank, prev)
                if received:
                    reads = IntervalSet.from_ranges(
                        [buf.replicas[rank] + t.dst_offset for t in received],
                        [t.nbytes for t in received],
                    )
                else:
                    reads = IntervalSet.empty()
                phases.append(
                    KernelPhase(
                        gpu=rank,
                        work=self._phase_work(schedule, rank, step),
                        stores=RemoteStoreBatch.concat(batches),
                        reads=reads,
                        dma=dma,
                    )
                )
            step_phases.append(phases)

        # One trace iteration per schedule step, repeated per requested
        # invocation (the bulk-synchronous lowering of step dependence).
        it = 0
        for _ in range(iterations):
            for phases in step_phases:
                for p in phases:
                    yield it, p
                it += 1
        return {
            "op": schedule.op,
            "comm_pattern": self.comm_pattern,
            "message_bytes": schedule.nbytes,
            "chunk_bytes": self.chunk_bytes,
            "elem_bytes": eb,
            "fine_grained": self.fine_grained,
            "steps_per_invocation": schedule.n_steps,
            "invocations": iterations,
            "schedule_transfers": len(schedule.transfers),
            "total_wire_payload": schedule.total_bytes() * iterations,
        }

    def _iter_single_gpu(self, iterations: int):
        """1-GPU baseline: the local reduction/copy, no communication."""
        elems = _padded_elems(self.message_bytes, self.elem_bytes, 1)
        size = elems * self.elem_bytes
        work = KernelWork(
            flops=float(elems),
            dram_bytes=3.0 * size,
            precision="fp32" if self.elem_bytes <= 4 else "fp64",
        )
        phase = KernelPhase(gpu=0, work=work)
        for i in range(iterations):
            yield i, phase
        return {"op": self.name, "comm_pattern": self.comm_pattern}


@_registry.register("allreduce_ring")
class RingAllReduceWorkload(CollectiveWorkload):
    """Ring all-reduce over one gradient bucket per iteration."""

    name = "allreduce_ring"

    def build_schedule(self, n_ranks: int) -> CollectiveSchedule:
        return ring_allreduce_schedule(
            n_ranks, self.message_bytes, self.chunk_bytes, self.elem_bytes
        )


@_registry.register("allreduce_tree")
class TreeAllReduceWorkload(CollectiveWorkload):
    """Binomial-tree all-reduce (latency-optimal for small buckets)."""

    name = "allreduce_tree"

    def build_schedule(self, n_ranks: int) -> CollectiveSchedule:
        return tree_allreduce_schedule(
            n_ranks, self.message_bytes, self.chunk_bytes, self.elem_bytes
        )


@_registry.register("allgather")
class AllGatherWorkload(CollectiveWorkload):
    """Ring all-gather (tensor-parallel weight/activation collection)."""

    name = "allgather"

    def build_schedule(self, n_ranks: int) -> CollectiveSchedule:
        return allgather_schedule(
            n_ranks, self.message_bytes, self.chunk_bytes, self.elem_bytes
        )


@_registry.register("alltoall")
class AllToAllWorkload(CollectiveWorkload):
    """Pairwise-exchange all-to-all (expert-parallel dispatch)."""

    name = "alltoall"

    def build_schedule(self, n_ranks: int) -> CollectiveSchedule:
        return alltoall_schedule(
            n_ranks, self.message_bytes, self.chunk_bytes, self.elem_bytes
        )


@_registry.register("pipeline")
class PipelineWorkload(CollectiveWorkload):
    """Pipeline-parallel point-to-point activation/gradient stages."""

    name = "pipeline"

    def __init__(
        self,
        message_bytes: int = 65_536,
        chunk_bytes: int = 16_384,
        elem_bytes: int = 4,
        fine_grained: bool = False,
        microbatches: int = 4,
    ) -> None:
        super().__init__(message_bytes, chunk_bytes, elem_bytes, fine_grained)
        if microbatches < 1:
            raise ValueError(f"microbatches must be >= 1: {microbatches}")
        self.microbatches = microbatches

    def build_schedule(self, n_ranks: int) -> CollectiveSchedule:
        return pipeline_schedule(
            n_ranks,
            self.message_bytes,
            self.microbatches,
            self.chunk_bytes,
            self.elem_bytes,
        )


def collectives_suite(**overrides) -> list[CollectiveWorkload]:
    """Every registered collective workload at its default scale.

    Keyword overrides (``message_bytes=...``, ``fine_grained=True``)
    apply to all members -- handy for scaled-down test grids.
    """
    return [
        RingAllReduceWorkload(**overrides),
        TreeAllReduceWorkload(**overrides),
        AllGatherWorkload(**overrides),
        AllToAllWorkload(**overrides),
        PipelineWorkload(**overrides),
    ]
