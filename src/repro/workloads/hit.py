"""HIT: homogeneous isotropic turbulence via 3-D FFTs (Tartan suite).

The spectral solver partitions the ``n^3`` volume in slabs along X and
computes FFTs as a series of 1-D transforms separated by *transposes*:
each GPU must send the sub-block destined for every other GPU --
an all-to-all exchange of contiguous tiles (paper Sec. V).

Because transpose tiles are contiguous, P2P stores coalesce to full
cache lines; HIT's pain point is raw exchange *volume*: the transpose
moves ``(G-1)/G`` of the whole volume every step, which the memcpy
paradigm cannot overlap with the FFT compute.
"""

from __future__ import annotations

import math

import numpy as np

from ..gpu.compute import KernelWork
from ..gpu.memory import MemorySpace
from ..trace.intervals import IntervalSet
from ..trace.stream import (
    DMATransfer,
    KernelPhase,
    RemoteStoreBatch,
)
from ..registry import workloads as _registry
from .base import MultiGPUWorkload, push_elements
from .datasets import partition_bounds


@_registry.register("hit")
class HITWorkload(MultiGPUWorkload):
    """Slab-decomposed 3-D FFT with all-to-all transposes."""

    name = "hit"
    comm_pattern = "all-to-all"

    def __init__(self, n: int = 96, dram_passes: int = 8) -> None:
        if n < 8:
            raise ValueError(f"volume too small: {n}")
        self.n = n
        self.dram_passes = dram_passes

    def iter_phases(self, n_gpus: int, iterations: int = 3, seed: int = 7):
        n = self.n
        total = n**3
        memory = MemorySpace(n_gpus)
        # Complex fp32 field: 8 bytes per point.
        field = memory.alloc_replicated("hit.spectral", total * 8)
        bounds = partition_bounds(n, n_gpus)
        # Pack-and-send staging buffers for the memcpy port: the
        # transpose tile for one peer is strided in memory, so the
        # realistic port packs it into a contiguous buffer and issues a
        # single copy per peer (one MPI_Alltoall-style exchange).
        max_tile = (int(bounds[1]) * n) * (int(bounds[1])) * 8 * 4
        staging = {
            (g, d): memory.alloc_local(f"hit.stage.{g}->{d}", max_tile, gpu=d)
            for g in range(n_gpus)
            for d in range(n_gpus)
            if d != g
        }

        phases: list[KernelPhase] = []
        for g in range(n_gpus):
            my_planes = int(bounds[g + 1] - bounds[g])
            points = my_planes * n * n
            # FFT work: 5 N log2 N over owned points, plus the
            # transpose/update memory passes.
            work = KernelWork(
                flops=5.0 * points * math.log2(max(n, 2)) * 3,
                dram_bytes=points * 8.0 * self.dram_passes,
                precision="fp32",
            )
            batches = []
            dma = []
            reads = IntervalSet.empty()
            for d in range(n_gpus):
                if d == g:
                    continue
                # Transpose tile: for each of my planes, the row range
                # owned by d -- contiguous runs of (bounds[d+1]-bounds[d])
                # * n points within each plane.
                d_rows = int(bounds[d + 1] - bounds[d])
                tile_elems = []
                for plane in range(int(bounds[g]), int(bounds[g + 1])):
                    start = plane * n * n + int(bounds[d]) * n
                    tile_elems.append(
                        np.arange(start, start + d_rows * n, dtype=np.int64)
                    )
                elems = np.concatenate(tile_elems)
                batches.append(push_elements(elems, 8, d, field.replicas[d]))
                # The memcpy port packs the strided tile and ships it as
                # one aggregated copy into the peer's staging buffer.
                dma.append(
                    DMATransfer(
                        dst=d,
                        dst_addr=staging[(g, d)],
                        nbytes=int(elems.size) * 8,
                        aggregated=True,
                    )
                )
            # After the exchange this GPU reads every tile pushed into
            # its replica: the rows it owns across all remote planes.
            read_starts = []
            read_lens = []
            my_rows = my_planes  # symmetric partition of rows
            for plane in range(n):
                if int(bounds[g]) <= plane < int(bounds[g + 1]):
                    continue
                start = plane * n * n + int(bounds[g]) * n
                read_starts.append(field.replicas[g] + start * 8)
                read_lens.append(my_rows * n * 8)
            # Staged tiles arriving from peers are unpacked (read) too.
            for (src, dst), addr in staging.items():
                if dst == g:
                    read_starts.append(addr)
                    read_lens.append(max_tile)
            if read_starts:
                reads = IntervalSet.from_ranges(read_starts, read_lens)
            phases.append(
                KernelPhase(
                    gpu=g,
                    work=work,
                    stores=RemoteStoreBatch.concat(batches),
                    reads=reads,
                    dma=dma,
                )
            )

        # Every FFT step performs the same transpose exchange.
        for i in range(iterations):
            for p in phases:
                yield i, p
        return {"n": n, "comm_pattern": self.comm_pattern}
