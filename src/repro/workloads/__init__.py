"""The eight multi-GPU applications of paper Sec. V, plus the
synthetic dataset generators and the workload framework."""

from .als import ALSWorkload
from .base import (
    MultiGPUWorkload,
    contiguous_interval,
    element_intervals,
    push_elements,
)
from .collectives import (
    AllGatherWorkload,
    AllToAllWorkload,
    CollectiveSchedule,
    CollectiveTransfer,
    CollectiveWorkload,
    PipelineWorkload,
    RingAllReduceWorkload,
    TreeAllReduceWorkload,
    allgather_schedule,
    alltoall_schedule,
    collectives_suite,
    pipeline_schedule,
    ring_allreduce_schedule,
    tree_allreduce_schedule,
)
from .ct import CTWorkload
from .datasets import (
    Graph,
    RatingMatrix,
    banded_matrix,
    bipartite_ratings,
    owner_of_vertex,
    partition_bounds,
    powerlaw_graph,
)
from .diffusion import DiffusionWorkload
from .eqwp import EQWPWorkload
from .faulty import FaultyWorkload
from .grids import StencilSpec, build_stencil_trace
from .hit import HITWorkload
from .jacobi import JacobiWorkload
from .pagerank import PagerankWorkload
from .sssp import SSSPWorkload


def default_suite() -> list[MultiGPUWorkload]:
    """The paper's full application suite at evaluation scale."""
    return [
        JacobiWorkload(),
        PagerankWorkload(),
        SSSPWorkload(),
        ALSWorkload(),
        CTWorkload(),
        EQWPWorkload(),
        DiffusionWorkload(),
        HITWorkload(),
    ]


def small_suite() -> list[MultiGPUWorkload]:
    """Scaled-down suite for tests and quick demos."""
    return [
        JacobiWorkload(n=256),
        PagerankWorkload(n=8_000, avg_degree=8),
        SSSPWorkload(n=6_000, avg_degree=8),
        ALSWorkload(n_users=2_000, n_items=500, avg_ratings=8),
        CTWorkload(total_corrections=8_000),
        EQWPWorkload(n=32),
        DiffusionWorkload(n=32),
        HITWorkload(n=32),
    ]


from ..registry import workloads as workload_registry

#: Legacy name -> class view of :data:`repro.registry.workloads`; the
#: submodule imports above performed the registrations.  Prefer
#: ``registry.workloads.resolve(name)`` for lookups with suggestions.
WORKLOADS = dict(workload_registry.items())

__all__ = [
    "ALSWorkload",
    "AllGatherWorkload",
    "AllToAllWorkload",
    "CollectiveSchedule",
    "CollectiveTransfer",
    "CollectiveWorkload",
    "PipelineWorkload",
    "RingAllReduceWorkload",
    "TreeAllReduceWorkload",
    "allgather_schedule",
    "alltoall_schedule",
    "collectives_suite",
    "pipeline_schedule",
    "ring_allreduce_schedule",
    "tree_allreduce_schedule",
    "MultiGPUWorkload",
    "contiguous_interval",
    "element_intervals",
    "push_elements",
    "CTWorkload",
    "Graph",
    "RatingMatrix",
    "banded_matrix",
    "bipartite_ratings",
    "owner_of_vertex",
    "partition_bounds",
    "powerlaw_graph",
    "DiffusionWorkload",
    "EQWPWorkload",
    "FaultyWorkload",
    "StencilSpec",
    "build_stencil_trace",
    "HITWorkload",
    "JacobiWorkload",
    "PagerankWorkload",
    "SSSPWorkload",
    "default_suite",
    "small_suite",
    "WORKLOADS",
]
