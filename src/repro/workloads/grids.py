"""Shared machinery for structured-grid (stencil) workloads.

Jacobi, Diffusion and EQWP all follow the same multi-GPU idiom (paper
Sec. V): the grid is partitioned into slabs along its first axis, each
iteration every GPU updates its slab, and the boundary planes ("halos")
are pushed to the neighbouring GPUs' replicas with peer-to-peer stores
(or copied with two memcpys per neighbour under the bulk-DMA paradigm).
Stores over a contiguous plane coalesce into full 128 B transactions in
the L1 -- these are the paper's "regular" applications where raw P2P
stores already perform well.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..gpu.compute import KernelWork
from ..gpu.memory import MemorySpace
from ..trace.intervals import IntervalSet
from ..trace.stream import (
    DMATransfer,
    IterationTrace,
    KernelPhase,
    RemoteStoreBatch,
    WorkloadTrace,
)
from .base import push_elements
from .datasets import partition_bounds


@dataclass(frozen=True)
class StencilSpec:
    """Static description of one stencil workload.

    Attributes
    ----------
    grid:
        Grid extents; the first axis is partitioned across GPUs.
    elem_bytes:
        Bytes per grid point (8 for fp64 fields, 4 for fp32).
    halo_depth:
        Boundary planes exchanged per side (1 for 2nd-order stencils,
        2 for the 4th-order EQWP scheme).
    flops_per_point / dram_bytes_per_point:
        Roofline inputs per updated grid point.
    precision:
        Compute roof selector.
    """

    name: str
    grid: tuple[int, ...]
    elem_bytes: int
    halo_depth: int
    flops_per_point: float
    dram_bytes_per_point: float
    precision: str = "fp64"

    @property
    def plane_points(self) -> int:
        return math.prod(self.grid[1:])

    @property
    def total_points(self) -> int:
        return math.prod(self.grid)


def _stencil_phases(spec: StencilSpec, n_gpus: int) -> list[KernelPhase]:
    """One iteration's halo-exchange phases (identical every iteration)."""
    memory = MemorySpace(n_gpus)
    field = memory.alloc_replicated(
        f"{spec.name}.field", spec.total_points * spec.elem_bytes
    )
    bounds = partition_bounds(spec.grid[0], n_gpus)
    pp = spec.plane_points

    def plane_elements(first_plane: int, n_planes: int) -> np.ndarray:
        start = first_plane * pp
        return np.arange(start, start + n_planes * pp, dtype=np.int64)

    phases: list[KernelPhase] = []
    for g in range(n_gpus):
        planes = int(bounds[g + 1] - bounds[g])
        points = planes * pp
        work = KernelWork(
            flops=points * spec.flops_per_point,
            dram_bytes=points * spec.dram_bytes_per_point,
            precision=spec.precision,
        )
        batches: list[RemoteStoreBatch] = []
        dma: list[DMATransfer] = []
        read_parts: list[IntervalSet] = []
        depth = min(spec.halo_depth, planes)
        for neighbor, first_plane in (
            (g - 1, int(bounds[g])),
            (g + 1, int(bounds[g + 1]) - depth),
        ):
            if not 0 <= neighbor < n_gpus:
                continue
            elems = plane_elements(first_plane, depth)
            batches.append(
                push_elements(
                    elems,
                    spec.elem_bytes,
                    dst_gpu=neighbor,
                    dst_base=field.replicas[neighbor],
                )
            )
            dma.append(
                DMATransfer(
                    dst=neighbor,
                    dst_addr=field.replicas[neighbor]
                    + first_plane * pp * spec.elem_bytes,
                    nbytes=depth * pp * spec.elem_bytes,
                )
            )
            # This GPU, in turn, reads the halo planes its neighbours
            # push into its own replica.
            if neighbor == g - 1:
                recv_first = int(bounds[g]) - depth
            else:
                recv_first = int(bounds[g + 1])
            recv_first = max(0, min(recv_first, spec.grid[0] - depth))
            read_parts.append(
                IntervalSet.from_ranges(
                    [field.replicas[g] + recv_first * pp * spec.elem_bytes],
                    [depth * pp * spec.elem_bytes],
                )
            )
        reads = IntervalSet.empty()
        for part in read_parts:
            reads = reads.union(part)
        phases.append(
            KernelPhase(
                gpu=g,
                work=work,
                stores=RemoteStoreBatch.concat(batches),
                reads=reads,
                dma=dma,
            )
        )
    return phases


def _stencil_metadata(spec: StencilSpec) -> dict:
    return {
        "grid": list(spec.grid),
        "halo_depth": spec.halo_depth,
        "comm_pattern": "peer-to-peer",
    }


def iter_stencil_phases(spec: StencilSpec, n_gpus: int, iterations: int):
    """Stream the halo-exchange phases of a stencil workload.

    Every iteration is identical (the stencil touches the same halos),
    so phases are built once and re-emitted per iteration; returns the
    stencil metadata (the :meth:`MultiGPUWorkload.iter_phases`
    contract).
    """
    if iterations <= 0:
        raise ValueError("iterations must be positive")
    phases = _stencil_phases(spec, n_gpus)
    for i in range(iterations):
        for p in phases:
            yield i, p
    return _stencil_metadata(spec)


def build_stencil_trace(
    spec: StencilSpec, n_gpus: int, iterations: int
) -> WorkloadTrace:
    """Produce the whole halo-exchange trace for a stencil workload.

    Phases are built once and shared across iterations (the streaming
    form is :func:`iter_stencil_phases`).
    """
    if iterations <= 0:
        raise ValueError("iterations must be positive")
    iteration = IterationTrace(_stencil_phases(spec, n_gpus))
    return WorkloadTrace(
        name=spec.name,
        n_gpus=n_gpus,
        iterations=[iteration] * iterations,
        metadata=_stencil_metadata(spec),
    )
