"""Synthetic dataset generators standing in for the paper's inputs.

The paper evaluates on University of Florida sparse matrices (cage,
indochina, rgg) and structured grids.  Those exact files are not
redistributable here, so seeded generators reproduce the *structural*
properties that determine communication behaviour:

* :func:`banded_matrix`   -- banded band structure (cage-like): edges
  concentrate near the diagonal, so a row partition communicates mostly
  with neighbouring partitions (peer-to-peer pattern).
* :func:`powerlaw_graph`  -- heavy-tailed web graph (indochina-like):
  edges reach everywhere, giving the many-to-many pattern of SSSP.
* :func:`bipartite_ratings` -- an rgg-like user/item rating graph for
  ALS (all-to-all factor exchange).

All generators are deterministic in their seed and return plain numpy
CSR-style arrays.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class Graph:
    """CSR adjacency: edges of vertex v are ``dst[indptr[v]:indptr[v+1]]``."""

    n: int
    indptr: np.ndarray
    dst: np.ndarray

    def __post_init__(self) -> None:
        if self.indptr.shape != (self.n + 1,):
            raise ValueError("indptr must have n+1 entries")
        if self.indptr[-1] != self.dst.size:
            raise ValueError("indptr[-1] must equal the edge count")

    @property
    def nnz(self) -> int:
        return int(self.dst.size)

    def out_degree(self) -> np.ndarray:
        return np.diff(self.indptr)


def _to_csr(n: int, src: np.ndarray, dst: np.ndarray) -> Graph:
    order = np.argsort(src, kind="stable")
    src, dst = src[order], dst[order]
    indptr = np.zeros(n + 1, dtype=np.int64)
    np.add.at(indptr, src + 1, 1)
    np.cumsum(indptr, out=indptr)
    return Graph(n=n, indptr=indptr, dst=dst.astype(np.int64))


def banded_matrix(
    n: int, band: int, avg_degree: int, seed: int = 0
) -> Graph:
    """A banded sparse matrix/graph (cage-like locality).

    Each vertex gets ``avg_degree`` neighbours drawn from a window of
    ``+-band`` around itself (clipped to the vertex range), so a
    contiguous row partition exchanges data predominantly with its
    neighbouring partitions.
    """
    if band <= 0 or avg_degree <= 0 or n <= 1:
        raise ValueError("n > 1, band > 0 and avg_degree > 0 required")
    rng = np.random.default_rng(seed)
    src = np.repeat(np.arange(n, dtype=np.int64), avg_degree)
    offsets = rng.integers(-band, band + 1, size=src.size)
    dst = np.clip(src + offsets, 0, n - 1)
    keep = dst != src
    return _to_csr(n, src[keep], dst[keep])


def powerlaw_graph(
    n: int, avg_degree: int, alpha: float = 1.5, seed: int = 0
) -> Graph:
    """A heavy-tailed directed graph (indochina-like web structure).

    Edge targets follow a Zipf-like popularity distribution over a
    random vertex permutation, so hubs attract edges from every
    partition: the communication pattern becomes many-to-many.
    """
    if n <= 1 or avg_degree <= 0:
        raise ValueError("n > 1 and avg_degree > 0 required")
    if alpha <= 1.0:
        raise ValueError(f"alpha must exceed 1, got {alpha}")
    rng = np.random.default_rng(seed)
    m = n * avg_degree
    src = np.repeat(np.arange(n, dtype=np.int64), avg_degree)
    # Inverse-CDF sampling of a bounded zipf over popularity ranks.
    u = rng.random(m)
    ranks = np.floor(n * u ** (alpha / (alpha - 1.0))).astype(np.int64)
    ranks = np.clip(ranks, 0, n - 1)
    perm = rng.permutation(n)
    dst = perm[ranks]
    keep = dst != src
    return _to_csr(n, src[keep], dst[keep])


@dataclass(frozen=True)
class RatingMatrix:
    """Bipartite user-item ratings in CSR (by user) and CSC (by item)."""

    n_users: int
    n_items: int
    user_indptr: np.ndarray
    item_ids: np.ndarray
    item_indptr: np.ndarray
    user_ids: np.ndarray

    @property
    def nnz(self) -> int:
        return int(self.item_ids.size)


def bipartite_ratings(
    n_users: int, n_items: int, avg_ratings: int, seed: int = 0
) -> RatingMatrix:
    """An rgg-like rating matrix: mild popularity skew on items."""
    if min(n_users, n_items, avg_ratings) <= 0:
        raise ValueError("all dimensions must be positive")
    rng = np.random.default_rng(seed)
    users = np.repeat(np.arange(n_users, dtype=np.int64), avg_ratings)
    # Mild skew: squared-uniform concentrates ratings on popular items.
    items = np.floor(n_items * rng.random(users.size) ** 1.5).astype(np.int64)
    items = np.clip(items, 0, n_items - 1)

    order = np.argsort(users, kind="stable")
    user_indptr = np.zeros(n_users + 1, dtype=np.int64)
    np.add.at(user_indptr, users + 1, 1)
    np.cumsum(user_indptr, out=user_indptr)
    item_ids = items[order]

    order_i = np.argsort(items, kind="stable")
    item_indptr = np.zeros(n_items + 1, dtype=np.int64)
    np.add.at(item_indptr, items + 1, 1)
    np.cumsum(item_indptr, out=item_indptr)
    user_ids = users[order_i]

    return RatingMatrix(
        n_users=n_users,
        n_items=n_items,
        user_indptr=user_indptr,
        item_ids=item_ids,
        item_indptr=item_indptr,
        user_ids=user_ids,
    )


def dedup_edges(
    graph: Graph, weights: np.ndarray | None = None
) -> tuple[Graph, np.ndarray | None]:
    """Collapse duplicate (src, dst) edges, keeping the minimum weight.

    The generators can emit parallel edges (multigraph semantics);
    reference comparisons against simple-graph libraries need them
    collapsed.
    """
    src = np.repeat(np.arange(graph.n), graph.out_degree())
    key = src * graph.n + graph.dst
    if weights is None:
        uniq = np.unique(key)
        new_src = (uniq // graph.n).astype(np.int64)
        new_dst = (uniq % graph.n).astype(np.int64)
        return _to_csr(graph.n, new_src, new_dst), None
    order = np.lexsort((weights, key))
    key_sorted = key[order]
    first = np.ones(key_sorted.size, dtype=bool)
    first[1:] = key_sorted[1:] != key_sorted[:-1]
    kept = order[first]  # per key, the minimum weight comes first
    new_src = src[kept]
    new_dst = graph.dst[kept]
    new_w = weights[kept]
    # _to_csr re-sorts by src (stable), keeping weights aligned.
    sort2 = np.argsort(new_src, kind="stable")
    return (
        _to_csr(graph.n, new_src[sort2], new_dst[sort2]),
        new_w[sort2],
    )


def partition_bounds(n: int, n_parts: int) -> np.ndarray:
    """Contiguous partition boundaries: part p owns [b[p], b[p+1])."""
    if n_parts <= 0 or n < n_parts:
        raise ValueError(f"cannot split {n} elements into {n_parts} parts")
    return np.linspace(0, n, n_parts + 1).astype(np.int64)


def owner_of_vertex(v: np.ndarray, bounds: np.ndarray) -> np.ndarray:
    """Partition index owning each vertex in ``v``."""
    return np.searchsorted(bounds, v, side="right") - 1
