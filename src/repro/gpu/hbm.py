"""Local HBM memory model.

The paper's Sec. IV-C observation is structural: local memory bandwidth
(~900 GB/s on GV100) exceeds inter-GPU link bandwidth (32 GB/s for PCIe
4.0) by more than an order of magnitude, so disaggregated FinePack
stores arriving from the interconnect never bottleneck on local memory.
The model exposes that drain rate to the ingress flow-control path and
serves the roofline compute model.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True, slots=True)
class HBMModel:
    """Bandwidth/latency envelope of a GPU's locally attached memory."""

    #: Sustained bandwidth in bytes/ns (== GB/s).  GV100: ~900 GB/s.
    bandwidth_bytes_per_ns: float = 900.0
    #: Loaded access latency in ns.
    latency_ns: float = 350.0

    def access_time_ns(self, nbytes: int) -> float:
        """Time to stream ``nbytes`` through HBM."""
        if nbytes < 0:
            raise ValueError(f"negative size: {nbytes}")
        if nbytes == 0:
            return 0.0
        return self.latency_ns + nbytes / self.bandwidth_bytes_per_ns

    def drain_rate(self) -> float:
        """Sustained ingress write drain rate (bytes/ns)."""
        return self.bandwidth_bytes_per_ns
