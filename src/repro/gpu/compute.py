"""Kernel compute-time model (roofline) and GV100 parameters.

FinePack's evaluation never changes the compute pipeline -- every
communication paradigm runs the *same* kernels -- so the simulator needs
a compute model that is consistent across paradigms and scales with the
per-GPU partition size, not an instruction-level core model.  We use a
roofline: a kernel phase is characterized by its floating-point work and
its DRAM traffic, and its duration is the larger of the compute-bound
and bandwidth-bound times, derated by an achievable-fraction factor,
plus a fixed launch overhead (which is what caps strong scaling below
ideal in the paper's infinite-bandwidth bars).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True, slots=True)
class GPUParams:
    """GV100 simulation parameters (paper Table III)."""

    name: str = "GV100"
    cache_block_bytes: int = 128
    global_memory_bytes: int = 16 * 1024**3
    num_sms: int = 80
    cuda_cores_per_sm: int = 64
    l2_bytes: int = 6 * 1024 * 1024
    warp_size: int = 32
    max_threads_per_sm: int = 2048
    max_threads_per_cta: int = 1024
    #: Peak FP64 throughput in flop/ns (GV100: 7.8 TFLOP/s).
    fp64_flops_per_ns: float = 7800.0
    #: Peak FP32 throughput in flop/ns.
    fp32_flops_per_ns: float = 15700.0
    #: HBM2 bandwidth in bytes/ns.
    hbm_bytes_per_ns: float = 900.0


GV100 = GPUParams()


@dataclass(frozen=True, slots=True)
class KernelWork:
    """Work content of one kernel phase on one GPU.

    Attributes
    ----------
    flops:
        Floating-point operations executed.
    dram_bytes:
        Bytes moved between the SMs and local memory (post-cache).
    precision:
        ``"fp32"`` or ``"fp64"``; selects the compute roof.
    """

    flops: float
    dram_bytes: float
    precision: str = "fp64"

    def __post_init__(self) -> None:
        if self.flops < 0 or self.dram_bytes < 0:
            raise ValueError("work quantities must be non-negative")
        if self.precision not in ("fp32", "fp64"):
            raise ValueError(f"unknown precision {self.precision!r}")


@dataclass(frozen=True, slots=True)
class ComputeModel:
    """Roofline timing for kernel phases.

    Parameters
    ----------
    params:
        Peak rates of the modelled GPU.
    efficiency:
        Fraction of peak the kernel sustains (irregular kernels achieve
        well under peak; 0.5 is a representative default).
    launch_overhead_ns:
        Fixed per-kernel cost (driver + launch latency).  This is the
        serial term that keeps 4-GPU scaling below 4x even with
        infinite interconnect bandwidth.
    """

    params: GPUParams = GV100
    efficiency: float = 0.5
    launch_overhead_ns: float = 5_000.0

    def __post_init__(self) -> None:
        if not 0 < self.efficiency <= 1:
            raise ValueError(f"efficiency must be in (0, 1], got {self.efficiency}")

    def duration_ns(self, work: KernelWork) -> float:
        """Roofline duration of one kernel phase."""
        roof = (
            self.params.fp64_flops_per_ns
            if work.precision == "fp64"
            else self.params.fp32_flops_per_ns
        )
        compute_ns = work.flops / (roof * self.efficiency)
        memory_ns = work.dram_bytes / (self.params.hbm_bytes_per_ns * self.efficiency)
        return self.launch_overhead_ns + max(compute_ns, memory_ns)
