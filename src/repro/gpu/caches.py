"""GPU cache hierarchy model.

Two pieces matter for FinePack (paper Sec. III):

* The L1 coalesces warp accesses (``repro.gpu.coalescer``) but is
  write-through for remote data, so remote stores leave the SM at
  sub-cache-line granularity.
* The L2 is a *memory-side* cache -- the point of coherence for the
  GPU's locally attached memory only.  Writes to peer GPU memory bypass
  it entirely on egress, and remotely homed data is never cached, so no
  inter-GPU coherence traffic exists and FinePack may freely buffer and
  reorder remote stores.

:class:`SetAssociativeCache` is a conventional LRU cache model used by
the compute-timing layer to estimate local L2 hit rates, plus directly
by tests.  :class:`L2Cache` wraps it with the memory-side semantics.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field

from .memory import owner_of


@dataclass
class CacheStats:
    hits: int = 0
    misses: int = 0
    bypasses: int = 0

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.accesses if self.accesses else 0.0


class SetAssociativeCache:
    """An LRU set-associative cache over 128-byte lines."""

    def __init__(
        self, capacity_bytes: int, ways: int = 16, line_bytes: int = 128
    ) -> None:
        if capacity_bytes % (ways * line_bytes):
            raise ValueError(
                f"capacity {capacity_bytes} not divisible by "
                f"ways*line ({ways * line_bytes})"
            )
        self.line_bytes = line_bytes
        self.ways = ways
        self.n_sets = capacity_bytes // (ways * line_bytes)
        self._sets: list[OrderedDict[int, None]] = [
            OrderedDict() for _ in range(self.n_sets)
        ]
        self.stats = CacheStats()

    def _set_of(self, line: int) -> OrderedDict[int, None]:
        return self._sets[line % self.n_sets]

    def access(self, addr: int) -> bool:
        """Touch the line containing ``addr``; returns True on hit."""
        line = addr // self.line_bytes
        s = self._set_of(line)
        if line in s:
            s.move_to_end(line)
            self.stats.hits += 1
            return True
        self.stats.misses += 1
        if len(s) >= self.ways:
            s.popitem(last=False)
        s[line] = None
        return False

    def contains(self, addr: int) -> bool:
        return (addr // self.line_bytes) in self._set_of(addr // self.line_bytes)

    def flush(self) -> None:
        for s in self._sets:
            s.clear()


class L2Cache:
    """Memory-side L2: caches only lines homed in this GPU's memory."""

    def __init__(self, gpu: int, capacity_bytes: int = 6 * 1024 * 1024) -> None:
        self.gpu = gpu
        self._cache = SetAssociativeCache(capacity_bytes)
        self.stats = self._cache.stats

    def access(self, addr: int) -> bool:
        """Access ``addr``; remote-homed addresses bypass (paper Sec. III)."""
        if owner_of(addr) != self.gpu:
            self.stats.bypasses += 1
            return False
        return self._cache.access(addr)

    def flush(self) -> None:
        self._cache.flush()
