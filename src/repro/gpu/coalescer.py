"""Warp-level store coalescing (SM + L1 behaviour).

Per the paper's Sec. III, a warp of 32 threads issuing stores in one
instruction is coalesced by the L1 into transactions of up to 128 B: the
byte ranges touched by the warp are merged, and each maximal contiguous
run -- clipped at 128 B cache-line boundaries -- leaves the L1 as one
write transaction.  Remote (peer-GPU) stores receive *no further*
coalescing beyond this point on real hardware; the resulting transaction
stream is exactly what FinePack's remote write queue sees, and its size
distribution is what the paper's Figure 4 plots.

The implementation is fully vectorized: a whole trace of thread-level
stores (grouped into warps of ``warp_size`` consecutive entries) is
coalesced with a single sort + interval merge, using a per-warp address
offset trick to prevent merging across warp instructions.
"""

from __future__ import annotations

import numpy as np

from ..perf import profiler as _prof

#: L1/L2 cache line size (Table III).
LINE_BYTES = 128

#: Threads per warp (Table III).
WARP_SIZE = 32

#: Separation between warps in the virtual merge space.  Must be a
#: multiple of LINE_BYTES and exceed any real address.
_WARP_STRIDE = 1 << 48


def coalesce_stream(
    addrs: np.ndarray, sizes: np.ndarray, warp_size: int = WARP_SIZE
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Coalesce a thread-level store trace into L1 egress transactions.

    Every ``warp_size`` consecutive entries of ``addrs``/``sizes`` form
    one warp instruction (a trailing partial warp is allowed -- it
    models a partially active warp).

    Parameters
    ----------
    addrs, sizes:
        Per-thread store addresses and byte counts, in program order.

    Returns
    -------
    (txn_addrs, txn_sizes, txn_warp):
        Coalesced transaction start addresses, byte lengths, and the
        warp-instruction index each transaction came from, ordered by
        warp then address.  Each transaction is contiguous and lies
        within a single 128-byte line.
    """
    addrs = np.asarray(addrs, dtype=np.int64)
    sizes = np.asarray(sizes, dtype=np.int64)
    if addrs.shape != sizes.shape or addrs.ndim != 1:
        raise ValueError("addrs and sizes must be equal-length 1-D arrays")
    if addrs.size == 0:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty.copy(), empty.copy()
    if (sizes <= 0).any():
        raise ValueError("store sizes must be positive")
    if (addrs < 0).any():
        raise ValueError("addresses must be non-negative")
    if addrs.max() + sizes.max() >= _WARP_STRIDE:
        raise ValueError("addresses exceed the supported 48-bit range")

    prof = _prof.ACTIVE
    if prof is not None:
        prof.begin("coalescer")
    warp = np.arange(addrs.size, dtype=np.int64) // warp_size
    vstart = addrs + warp * _WARP_STRIDE
    vend = vstart + sizes

    order = np.argsort(vstart, kind="stable")
    vstart, vend = vstart[order], vend[order]

    # Merge overlapping/adjacent intervals: a new run begins wherever the
    # interval start exceeds the running maximum of previous ends.
    running_end = np.maximum.accumulate(vend)
    new_run = np.empty(vstart.size, dtype=bool)
    new_run[0] = True
    np.greater(vstart[1:], running_end[:-1], out=new_run[1:])
    run_id = np.cumsum(new_run) - 1
    n_runs = run_id[-1] + 1
    run_start = vstart[new_run]
    run_end = np.zeros(n_runs, dtype=np.int64)
    np.maximum.at(run_end, run_id, vend)

    # Split each merged run at 128 B line boundaries.  _WARP_STRIDE is a
    # multiple of LINE_BYTES so line boundaries are warp-consistent.
    first_line = run_start // LINE_BYTES
    last_line = (run_end - 1) // LINE_BYTES
    pieces = (last_line - first_line + 1).astype(np.int64)
    total = int(pieces.sum())
    run_of_piece = np.repeat(np.arange(n_runs), pieces)
    # Index of each piece within its run.
    offsets = np.concatenate(([0], np.cumsum(pieces)[:-1]))
    piece_idx = np.arange(total) - offsets[run_of_piece]

    line_base = (first_line[run_of_piece] + piece_idx) * LINE_BYTES
    tx_start = np.maximum(run_start[run_of_piece], line_base)
    tx_end = np.minimum(run_end[run_of_piece], line_base + LINE_BYTES)

    txn_warp = tx_start // _WARP_STRIDE
    txn_addrs = tx_start - txn_warp * _WARP_STRIDE
    txn_sizes = tx_end - tx_start
    if prof is not None:
        prof.end()
    return txn_addrs, txn_sizes, txn_warp


def size_histogram(
    sizes: np.ndarray, buckets: tuple[int, ...] = (4, 8, 16, 32, 64, 128)
) -> dict[str, float]:
    """Fraction of transactions in each size bucket (Figure 4 format).

    Bucket ``"<=k"`` counts transactions whose size is at most ``k`` and
    greater than the previous bucket bound.
    """
    sizes = np.asarray(sizes)
    if sizes.size == 0:
        return {f"<={b}B": 0.0 for b in buckets}
    out: dict[str, float] = {}
    prev = 0
    for b in buckets:
        frac = float(((sizes > prev) & (sizes <= b)).mean())
        out[f"<={b}B"] = frac
        prev = b
    bigger = float((sizes > prev).mean())
    if bigger:
        out[f">{prev}B"] = bigger
    return out
