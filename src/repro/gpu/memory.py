"""Shared virtual address space and per-GPU physical allocation.

Single-node multi-GPU systems map every GPU's memory into one shared
virtual address space (paper Sec. II-A).  We mirror that: GPU *i* owns a
16 GB aperture at ``i << APERTURE_BITS``, and a bump allocator hands out
buffer placements inside each aperture.

:class:`ReplicatedBuffer` captures the paper's data-replication idiom: a
logical buffer has one physical replica per GPU, reads go to the local
replica, and remote stores target the same offset in peer replicas.
Because all replicas of a buffer sit at the same aperture-relative
offset, the address stream leaving one GPU for one peer exhibits the
spatial locality (tens of MB windows) that FinePack's base+offset
compression exploits (paper Fig. 5).
"""

from __future__ import annotations

from dataclasses import dataclass, field

#: log2 of each GPU's aperture size (16 GB, matching Table III).
APERTURE_BITS = 34

APERTURE_BYTES = 1 << APERTURE_BITS


def gpu_base(gpu: int) -> int:
    """Base virtual address of ``gpu``'s memory aperture."""
    if gpu < 0:
        raise ValueError(f"negative GPU index: {gpu}")
    return gpu << APERTURE_BITS


def owner_of(addr: int) -> int:
    """GPU index whose aperture contains ``addr``."""
    if addr < 0:
        raise ValueError(f"negative address: {addr:#x}")
    return addr >> APERTURE_BITS


@dataclass
class Allocator:
    """Bump allocator for one GPU's aperture."""

    gpu: int
    #: Next free aperture-relative offset.
    cursor: int = 0

    def alloc(self, nbytes: int, align: int = 256) -> int:
        """Reserve ``nbytes`` and return the buffer's virtual address."""
        if nbytes <= 0:
            raise ValueError(f"allocation must be positive, got {nbytes}")
        if align & (align - 1):
            raise ValueError(f"alignment must be a power of two, got {align}")
        self.cursor = -(-self.cursor // align) * align
        if self.cursor + nbytes > APERTURE_BYTES:
            raise MemoryError(
                f"GPU {self.gpu} aperture exhausted: "
                f"{self.cursor + nbytes} > {APERTURE_BYTES}"
            )
        addr = gpu_base(self.gpu) + self.cursor
        self.cursor += nbytes
        return addr


@dataclass
class ReplicatedBuffer:
    """A logical buffer with one physical replica per GPU.

    Attributes
    ----------
    name:
        For diagnostics and the DMA region report.
    nbytes:
        Size of each replica.
    replicas:
        ``replicas[gpu]`` is the replica's base virtual address.
    """

    name: str
    nbytes: int
    replicas: dict[int, int]

    def addr(self, gpu: int, offset: int = 0) -> int:
        """Virtual address of byte ``offset`` in ``gpu``'s replica."""
        if not 0 <= offset < self.nbytes:
            raise IndexError(
                f"offset {offset} outside buffer '{self.name}' of {self.nbytes} B"
            )
        return self.replicas[gpu] + offset

    def offset_of(self, addr: int) -> int:
        """Inverse of :meth:`addr` for whichever replica contains ``addr``."""
        base = self.replicas.get(owner_of(addr))
        if base is None or not base <= addr < base + self.nbytes:
            raise ValueError(f"{addr:#x} is not inside buffer '{self.name}'")
        return addr - base


@dataclass
class MemorySpace:
    """Allocation front-end for a whole multi-GPU system."""

    n_gpus: int
    allocators: dict[int, Allocator] = field(default_factory=dict)
    buffers: list[ReplicatedBuffer] = field(default_factory=list)

    def __post_init__(self) -> None:
        for g in range(self.n_gpus):
            self.allocators.setdefault(g, Allocator(g))

    def alloc_replicated(
        self, name: str, nbytes: int, gpus: list[int] | None = None, align: int = 256
    ) -> ReplicatedBuffer:
        """Allocate one replica of ``nbytes`` on each GPU in ``gpus``."""
        gpus = list(range(self.n_gpus)) if gpus is None else gpus
        replicas = {g: self.allocators[g].alloc(nbytes, align) for g in gpus}
        buf = ReplicatedBuffer(name=name, nbytes=nbytes, replicas=replicas)
        self.buffers.append(buf)
        return buf

    def alloc_local(self, name: str, nbytes: int, gpu: int, align: int = 256) -> int:
        """Allocate a non-replicated buffer on one GPU; returns its address."""
        addr = self.allocators[gpu].alloc(nbytes, align)
        self.buffers.append(
            ReplicatedBuffer(name=name, nbytes=nbytes, replicas={gpu: addr})
        )
        return addr
