"""GPU device composition.

A :class:`GPU` bundles the per-device pieces the system simulator needs:
identity, architectural parameters, the compute-time model, the
memory-side L2, the HBM model, and a pluggable *egress engine* (set by
the active communication paradigm -- pass-through for raw P2P stores,
the FinePack engine, a write-combining buffer, ...).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Protocol

from ..interconnect.message import WireMessage
from .caches import L2Cache
from .compute import GV100, ComputeModel, GPUParams, KernelWork
from .hbm import HBMModel


class EgressEngine(Protocol):
    """Interface between a GPU and its network egress port.

    Implementations translate a stream of remote-store/sync events into
    :class:`WireMessage` objects.  All methods return the messages made
    ready by the event (possibly none).
    """

    def on_store(
        self, addr: int, size: int, dst: int, time: float, data: bytes | None = None
    ) -> list[WireMessage]:
        """A remote store reached the egress port."""
        ...

    def on_atomic(self, addr: int, size: int, dst: int, time: float) -> list[WireMessage]:
        """A remote atomic reached the egress port (never coalesced)."""
        ...

    def on_remote_load(self, addr: int, size: int, dst: int, time: float) -> list[WireMessage]:
        """A remote load passed the egress port (may force flushes)."""
        ...

    def on_release(self, time: float) -> list[WireMessage]:
        """A system-scoped release (fence or kernel end) executed."""
        ...


@dataclass
class GPU:
    """One simulated GPU device."""

    index: int
    params: GPUParams = GV100
    compute: ComputeModel = field(default_factory=ComputeModel)
    hbm: HBMModel = field(default_factory=HBMModel)
    l2: L2Cache = field(init=False)
    egress: EgressEngine | None = None

    def __post_init__(self) -> None:
        if self.index < 0:
            raise ValueError(f"negative GPU index: {self.index}")
        self.l2 = L2Cache(self.index, self.params.l2_bytes)

    def kernel_time_ns(self, work: KernelWork) -> float:
        """Duration of one kernel phase on this GPU."""
        return self.compute.duration_ns(work)
