"""GPU-side substrate: memory layout, warp coalescing, caches, HBM,
compute timing, the scoped weak memory model, and device composition."""

from .caches import CacheStats, L2Cache, SetAssociativeCache
from .coalescer import LINE_BYTES, WARP_SIZE, coalesce_stream, size_histogram
from .compute import GV100, ComputeModel, GPUParams, KernelWork
from .consistency import OrderingChecker, OrderingViolation, ProgramStore, Scope
from .gpu import GPU, EgressEngine
from .hbm import HBMModel
from .memory import (
    APERTURE_BITS,
    APERTURE_BYTES,
    Allocator,
    MemorySpace,
    ReplicatedBuffer,
    gpu_base,
    owner_of,
)

__all__ = [
    "CacheStats",
    "L2Cache",
    "SetAssociativeCache",
    "LINE_BYTES",
    "WARP_SIZE",
    "coalesce_stream",
    "size_histogram",
    "GV100",
    "ComputeModel",
    "GPUParams",
    "KernelWork",
    "OrderingChecker",
    "OrderingViolation",
    "ProgramStore",
    "Scope",
    "GPU",
    "EgressEngine",
    "HBMModel",
    "APERTURE_BITS",
    "APERTURE_BYTES",
    "Allocator",
    "MemorySpace",
    "ReplicatedBuffer",
    "gpu_base",
    "owner_of",
]
