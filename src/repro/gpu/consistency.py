"""GPU scoped weak memory model: scopes, release semantics, checkers.

The NVIDIA GPU memory model (paper Sec. II-A) is the license for
FinePack's entire design: weak stores need only become visible at
synchronization, so an egress engine may buffer, coalesce, overwrite and
reorder them *between* synchronization points.  The constraints it must
uphold are:

1. **Release flushing** -- all buffered remote stores must be on the
   wire (and eventually visible) before a system-scoped release (fence
   or kernel end) completes.
2. **Same-address ordering** -- two stores to overlapping bytes must
   become visible in program order (PCIe keeps posted writes ordered,
   and the write queue's overwrite-in-place preserves this).
3. **Load-store ordering** -- a remote load that overlaps a buffered
   store must flush the matching entries first (Sec. IV-B).

:class:`OrderingChecker` validates an observed visibility order against
these rules; the FinePack conformance tests drive random store/fence
streams through the egress engine and assert no violations.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class Scope(enum.Enum):
    """Synchronization scopes of the PTX memory model."""

    CTA = "cta"
    GPU = "gpu"
    SYSTEM = "sys"


class OrderingViolation(Exception):
    """An observed visibility order breaks the GPU memory model."""


@dataclass(frozen=True, slots=True)
class ProgramStore:
    """One store in program order on a single GPU."""

    seq: int
    addr: int
    size: int

    def overlaps(self, other: "ProgramStore") -> bool:
        return self.addr < other.addr + other.size and other.addr < self.addr + self.size


@dataclass
class OrderingChecker:
    """Checks a visibility order against the scoped weak memory model.

    Feed the checker the *program order* via :meth:`issue` /
    :meth:`release`, then the *observed order* via :meth:`observe_store`
    / :meth:`observe_release`.  Violations raise immediately, making
    failures point at the first offending event.
    """

    _issued: dict[int, ProgramStore] = field(default_factory=dict)
    _release_points: dict[int, set[int]] = field(default_factory=dict)
    _next_release: int = 0
    _pending: set[int] = field(default_factory=set)
    _visible: set[int] = field(default_factory=set)
    _last_visible_per_byte: dict[int, int] = field(default_factory=dict)

    def issue(self, store: ProgramStore) -> None:
        """Record a store entering the egress path, in program order."""
        if store.seq in self._issued:
            raise ValueError(f"duplicate store seq {store.seq}")
        self._issued[store.seq] = store
        self._pending.add(store.seq)

    def release(self) -> int:
        """Record a system-scoped release; returns its release id."""
        rid = self._next_release
        self._next_release += 1
        self._release_points[rid] = set(self._pending)
        return rid

    def observe_store(self, seq: int) -> None:
        """A store became visible at the destination."""
        store = self._issued.get(seq)
        if store is None:
            raise OrderingViolation(f"store seq {seq} visible but never issued")
        if seq in self._visible:
            raise OrderingViolation(f"store seq {seq} visible twice")
        # Same-address ordering: every byte this store writes must not
        # have been made visible by a *later* program-order store.
        for b in range(store.addr, store.addr + store.size):
            prev = self._last_visible_per_byte.get(b)
            if prev is not None and prev > seq:
                raise OrderingViolation(
                    f"store seq {seq} to byte {b:#x} visible after "
                    f"later store seq {prev} (same-address order broken)"
                )
            self._last_visible_per_byte[b] = max(prev or -1, seq)
        self._visible.add(seq)
        self._pending.discard(seq)

    def observe_coalesced(self, seqs: list[int]) -> None:
        """Several program stores became visible as one merged write.

        The merged write carries the final bytes; for the memory model
        it counts as the visibility point of every absorbed store.  The
        stores must be observed in program order within the merge.
        """
        for seq in sorted(seqs):
            self.observe_store(seq)

    def observe_release(self, rid: int) -> None:
        """A release completed; everything issued before it must be visible."""
        needed = self._release_points.get(rid)
        if needed is None:
            raise OrderingViolation(f"unknown release id {rid}")
        missing = needed - self._visible
        if missing:
            raise OrderingViolation(
                f"release {rid} completed with {len(missing)} store(s) "
                f"not yet visible, e.g. seq {min(missing)}"
            )

    @property
    def pending_count(self) -> int:
        return len(self._pending)
