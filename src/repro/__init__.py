"""FinePack reproduction library.

A full reimplementation of the system evaluated in *FinePack:
Transparently Improving the Efficiency of Fine-Grained Transfers in
Multi-GPU Systems* (HPCA 2023): the FinePack hardware (remote write
queue, packetizer, de-packetizer, packet format), the multi-GPU
simulation substrate (GPU compute/caches/coalescing, PCIe/NVLink
interconnects, discrete-event system model), the competing
communication paradigms, and the eight-application workload suite.

Quick start::

    from repro import compare_paradigms, JacobiWorkload

    result = compare_paradigms(JacobiWorkload())
    print(result.speedups())

Experiments are orchestrated through the run layer (see
``docs/architecture.md``)::

    from repro import RunSpec, RunContext, execute_grid

    spec = RunSpec(workload="jacobi", paradigm="finepack", n_gpus=4)
    metrics = RunContext(spec).run()
    outcomes = execute_grid(
        [spec.with_options(paradigm=p) for p in ("p2p", "dma", "finepack")],
        jobs=4,
    )

See ``examples/`` for complete scripts and ``benchmarks/`` for the
per-figure reproduction harness.
"""

from .core import (
    DEFAULT_CONFIG,
    Depacketizer,
    FinePackConfig,
    FinePackEgress,
    FinePackPacket,
    Packetizer,
    PassthroughEgress,
    RemoteWriteQueue,
    SubTransaction,
    WriteCombiningEgress,
)
from .interconnect import (
    PCIE_GEN3,
    PCIE_GEN4,
    PCIE_GEN5,
    PCIE_GEN6,
    NVLinkProtocol,
    PCIeProtocol,
    single_switch,
    two_level_tree,
)
from . import registry
from .run import (
    RunContext,
    RunOutcome,
    RunSpec,
    TraceCache,
    execute_grid,
    labeled_sweep,
)
from .sim import (
    ComparisonResult,
    ExperimentConfig,
    MultiGPUSystem,
    RunMetrics,
    compare_paradigms,
    geomean,
    make_paradigm,
    run_workload,
)
from .workloads import (
    ALSWorkload,
    CTWorkload,
    DiffusionWorkload,
    EQWPWorkload,
    HITWorkload,
    JacobiWorkload,
    PagerankWorkload,
    SSSPWorkload,
    default_suite,
    small_suite,
)

__version__ = "1.0.0"

__all__ = [
    "DEFAULT_CONFIG",
    "Depacketizer",
    "FinePackConfig",
    "FinePackEgress",
    "FinePackPacket",
    "Packetizer",
    "PassthroughEgress",
    "RemoteWriteQueue",
    "SubTransaction",
    "WriteCombiningEgress",
    "PCIE_GEN3",
    "PCIE_GEN4",
    "PCIE_GEN5",
    "PCIE_GEN6",
    "NVLinkProtocol",
    "PCIeProtocol",
    "single_switch",
    "two_level_tree",
    "registry",
    "RunSpec",
    "RunContext",
    "RunOutcome",
    "TraceCache",
    "execute_grid",
    "labeled_sweep",
    "ComparisonResult",
    "ExperimentConfig",
    "MultiGPUSystem",
    "RunMetrics",
    "compare_paradigms",
    "geomean",
    "make_paradigm",
    "run_workload",
    "ALSWorkload",
    "CTWorkload",
    "DiffusionWorkload",
    "EQWPWorkload",
    "HITWorkload",
    "JacobiWorkload",
    "PagerankWorkload",
    "SSSPWorkload",
    "default_suite",
    "small_suite",
    "__version__",
]
